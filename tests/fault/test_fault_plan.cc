/**
 * @file
 * FaultSpec parsing and FaultPlan compilation: the whole schedule is
 * fixed before the run, so the same (spec, chip, duration) must always
 * yield the same events, on the tick grid, inside the run window.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"

namespace ppm::fault {
namespace {

TEST(FaultSpecParse, ClassTokensAndKnobs)
{
    FaultSpec spec;
    std::string error;
    ASSERT_TRUE(parse_fault_spec(
        "seed=9,sensor,dvfs,rate=12,duration_ms=200,noise_w=0.25,"
        "delay_ms=16,stale_ms=300,staleness_ms=100,retries=2,"
        "backoff_ms=2",
        &spec, &error))
        << error;
    EXPECT_EQ(spec.seed, 9u);
    EXPECT_TRUE(spec.sensor);
    EXPECT_TRUE(spec.dvfs);
    EXPECT_FALSE(spec.migration);
    EXPECT_FALSE(spec.offline);
    EXPECT_DOUBLE_EQ(spec.rate_per_min, 12.0);
    EXPECT_EQ(spec.mean_duration, 200 * kMillisecond);
    EXPECT_DOUBLE_EQ(spec.noise_sigma_w, 0.25);
    EXPECT_EQ(spec.dvfs_delay, 16 * kMillisecond);
    EXPECT_EQ(spec.stale_age, 300 * kMillisecond);
    EXPECT_EQ(spec.staleness_bound, 100 * kMillisecond);
    EXPECT_EQ(spec.max_retries, 2);
    EXPECT_EQ(spec.retry_backoff, 2 * kMillisecond);
}

TEST(FaultSpecParse, AllEnablesEveryClass)
{
    FaultSpec spec;
    ASSERT_TRUE(parse_fault_spec("all", &spec, nullptr));
    EXPECT_TRUE(spec.sensor && spec.dvfs && spec.migration &&
                spec.offline);
    EXPECT_TRUE(spec.any());
}

TEST(FaultSpecParse, RejectsMalformedInput)
{
    FaultSpec spec;
    std::string error;
    // Unknown class.
    EXPECT_FALSE(parse_fault_spec("gamma_rays", &spec, &error));
    EXPECT_NE(error.find("gamma_rays"), std::string::npos);
    // Unknown key.
    EXPECT_FALSE(parse_fault_spec("sensor,frobnicate=3", &spec, &error));
    EXPECT_NE(error.find("frobnicate"), std::string::npos);
    // Non-numeric value.
    EXPECT_FALSE(parse_fault_spec("sensor,rate=abc", &spec, &error));
    // Out-of-range values.
    EXPECT_FALSE(parse_fault_spec("sensor,rate=0", &spec, &error));
    EXPECT_FALSE(parse_fault_spec("sensor,rate=-3", &spec, &error));
    EXPECT_FALSE(parse_fault_spec("sensor,seed=-1", &spec, &error));
    EXPECT_FALSE(parse_fault_spec("sensor,duration_ms=0", &spec,
                                  &error));
    // No class enabled.
    EXPECT_FALSE(parse_fault_spec("seed=4,rate=8", &spec, &error));
    EXPECT_FALSE(parse_fault_spec("", &spec, &error));
}

TEST(FaultSpecParse, FailureLeavesOutputUntouched)
{
    FaultSpec spec;
    spec.seed = 77;
    spec.sensor = true;
    EXPECT_FALSE(parse_fault_spec("bogus", &spec, nullptr));
    EXPECT_EQ(spec.seed, 77u);
    EXPECT_TRUE(spec.sensor);
}

FaultSpec
all_spec(std::uint64_t seed)
{
    FaultSpec spec;
    spec.sensor = spec.dvfs = spec.migration = spec.offline = true;
    spec.seed = seed;
    spec.rate_per_min = 20.0;
    return spec;
}

TEST(FaultPlanCompile, DeterministicForSameInputs)
{
    const FaultPlan a =
        FaultPlan::compile(all_spec(11), 2, 5, 10 * kSecond);
    const FaultPlan b =
        FaultPlan::compile(all_spec(11), 2, 5, 10 * kSecond);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        const FaultEvent& x = a.events()[i];
        const FaultEvent& y = b.events()[i];
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.start, y.start);
        EXPECT_EQ(x.end, y.end);
        EXPECT_EQ(x.target, y.target);
        EXPECT_DOUBLE_EQ(x.magnitude, y.magnitude);
        EXPECT_EQ(x.delay, y.delay);
        EXPECT_EQ(x.salt, y.salt);
    }
}

TEST(FaultPlanCompile, SeedChangesTheSchedule)
{
    const FaultPlan a =
        FaultPlan::compile(all_spec(1), 2, 5, 10 * kSecond);
    const FaultPlan b =
        FaultPlan::compile(all_spec(2), 2, 5, 10 * kSecond);
    ASSERT_EQ(a.events().size(), b.events().size());
    bool any_diff = false;
    for (std::size_t i = 0; i < a.events().size(); ++i)
        any_diff |= a.events()[i].start != b.events()[i].start;
    EXPECT_TRUE(any_diff);
}

TEST(FaultPlanCompile, ClassGatingSelectsKinds)
{
    FaultSpec spec;
    spec.sensor = true;
    spec.seed = 3;
    const FaultPlan plan =
        FaultPlan::compile(spec, 2, 5, 10 * kSecond);
    ASSERT_FALSE(plan.empty());
    for (const FaultEvent& ev : plan.events()) {
        EXPECT_TRUE(ev.kind == FaultKind::kSensorDrop ||
                    ev.kind == FaultKind::kSensorStuck ||
                    ev.kind == FaultKind::kSensorNoise ||
                    ev.kind == FaultKind::kSensorStale)
            << fault_kind_name(ev.kind);
    }
}

TEST(FaultPlanCompile, EventsLandOnTickGridInsideRun)
{
    constexpr SimTime kTick = kMillisecond;
    constexpr SimTime kDuration = 10 * kSecond;
    const FaultPlan plan =
        FaultPlan::compile(all_spec(5), 2, 5, kDuration, kTick);
    ASSERT_FALSE(plan.empty());
    SimTime prev_start = 0;
    for (const FaultEvent& ev : plan.events()) {
        EXPECT_GE(ev.start, kTick);
        EXPECT_GT(ev.end, ev.start);
        EXPECT_LE(ev.end, kDuration);
        EXPECT_EQ(ev.start % kTick, 0);
        EXPECT_EQ(ev.end % kTick, 0);
        EXPECT_GE(ev.start, prev_start);  // Sorted by start.
        prev_start = ev.start;
    }
}

TEST(FaultPlanCompile, OfflineTargetsAreValidCores)
{
    FaultSpec spec;
    spec.offline = true;
    spec.seed = 8;
    spec.rate_per_min = 30.0;
    const FaultPlan plan =
        FaultPlan::compile(spec, 2, 5, 10 * kSecond);
    for (const FaultEvent& ev : plan.events()) {
        ASSERT_EQ(ev.kind, FaultKind::kCoreOffline);
        EXPECT_GE(ev.target, 0);
        EXPECT_LT(ev.target, 5);
    }
}

} // namespace
} // namespace ppm::fault

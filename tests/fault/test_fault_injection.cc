/**
 * @file
 * End-to-end fault injection: determinism under macro-stepping, the
 * injector's actuation semantics (deferred/failed DVFS, migration
 * retry, core offlining), and graceful degradation of all three
 * governors (no crashes, no NaN telemetry, safe-mode entry/exit,
 * bounded cap violations while sensors lie).
 */

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm {
namespace {

std::unique_ptr<sim::Governor>
make_policy(const std::string& policy)
{
    if (policy == "PPM") {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = 3.5;
        cfg.market.w_th = 2.9;
        return std::make_unique<market::PpmGovernor>(cfg);
    }
    if (policy == "HPM") {
        baselines::HpmConfig cfg;
        cfg.tdp = 3.5;
        return std::make_unique<baselines::HpmGovernor>(cfg);
    }
    baselines::HlConfig cfg;
    cfg.tdp = 3.5;
    return std::make_unique<baselines::HlGovernor>(cfg);
}

std::vector<workload::TaskSpec>
standard_specs()
{
    return {
        test::steady_spec("encode", 2, 420.0, 1.7, 25.0),
        test::steady_spec("decode", 1, 250.0, 1.5, 20.0),
        test::steady_spec("background", 1, 120.0, 1.6, 10.0, 0.5),
    };
}

/** Full-precision rendering of one double. */
std::string
fmt_exact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

struct ScenarioResult {
    sim::RunSummary summary;
    std::string output;  ///< Summary fields + wide trace CSV, exact.
};

ScenarioResult
run_scenario(const std::string& policy, const fault::FaultPlan& plan,
             bool macro, SimTime duration = 6 * kSecond)
{
    sim::SimConfig cfg;
    cfg.duration = duration;
    cfg.warmup = kSecond;
    cfg.trace = true;
    cfg.trace_period = 500 * kMillisecond;
    cfg.tdp_for_metrics = 3.5;
    cfg.macro_step = macro;
    cfg.faults = plan;
    sim::Simulation sim(hw::tc2_chip(), standard_specs(),
                        make_policy(policy), cfg);
    ScenarioResult r;
    r.summary = sim.run();
    std::ostringstream out;
    const sim::RunSummary& s = r.summary;
    out << s.governor << '\n'
        << fmt_exact(s.any_below_miss) << '\n'
        << fmt_exact(s.any_outside_miss) << '\n'
        << fmt_exact(s.avg_power) << '\n'
        << fmt_exact(s.energy) << '\n'
        << s.migrations << ' ' << s.vf_transitions << '\n'
        << fmt_exact(s.over_tdp_fraction) << '\n'
        << fmt_exact(s.peak_temp_c) << '\n'
        << s.faults_injected << ' ' << s.sensor_fallbacks << ' '
        << s.fault_retries << ' ' << s.safe_mode_entries << ' '
        << s.watchdog_trips << '\n'
        << fmt_exact(s.safe_mode_seconds) << '\n'
        << fmt_exact(s.over_tdp_during_fault) << '\n';
    sim.recorder().write_csv(out);
    r.output = out.str();
    return r;
}

fault::FaultPlan
compiled_plan(const std::string& classes, SimTime duration,
              double rate = 30.0)
{
    fault::FaultSpec spec;
    std::string error;
    const std::string text = classes + ",seed=7,rate=" +
                             std::to_string(rate);
    EXPECT_TRUE(fault::parse_fault_spec(text, &spec, &error)) << error;
    return fault::FaultPlan::compile(spec, 2, 5, duration);
}

class FaultGovernanceTest
    : public ::testing::TestWithParam<const char*>
{
};

/**
 * The acceptance bar of the fault layer: with a seeded all-class plan
 * active, macro-stepping must replay the exact per-tick behaviour --
 * every summary field and every traced byte.
 */
TEST_P(FaultGovernanceTest, MacroStepMatchesPerTickUnderInjection)
{
    const fault::FaultPlan plan = compiled_plan("all", 6 * kSecond);
    const ScenarioResult macro = run_scenario(GetParam(), plan, true);
    const ScenarioResult tick = run_scenario(GetParam(), plan, false);
    EXPECT_EQ(macro.output, tick.output)
        << "fault edges must bound the event-horizon engine";
}

TEST_P(FaultGovernanceTest, EmptyPlanReportsZeroFaultActivity)
{
    const ScenarioResult r =
        run_scenario(GetParam(), fault::FaultPlan{}, true);
    EXPECT_EQ(r.summary.faults_injected, 0);
    EXPECT_EQ(r.summary.sensor_fallbacks, 0);
    EXPECT_EQ(r.summary.fault_retries, 0);
    EXPECT_EQ(r.summary.safe_mode_entries, 0);
    EXPECT_EQ(r.summary.watchdog_trips, 0);
    EXPECT_DOUBLE_EQ(r.summary.safe_mode_seconds, 0.0);
    EXPECT_DOUBLE_EQ(r.summary.over_tdp_during_fault, 0.0);
}

/**
 * Every fault class alone, against every governor: the run completes,
 * every summary number is finite, and no traced sample is NaN/inf.
 */
TEST_P(FaultGovernanceTest, EachFaultClassDegradesGracefully)
{
    for (const char* cls : {"sensor", "dvfs", "migration", "offline"}) {
        const ScenarioResult r = run_scenario(
            GetParam(), compiled_plan(cls, 6 * kSecond), true);
        SCOPED_TRACE(cls);
        EXPECT_GT(r.summary.faults_injected, 0);
        EXPECT_TRUE(std::isfinite(r.summary.avg_power));
        EXPECT_GE(r.summary.avg_power, 0.0);
        EXPECT_TRUE(std::isfinite(r.summary.any_below_miss));
        EXPECT_GE(r.summary.over_tdp_during_fault, 0.0);
        EXPECT_LE(r.summary.over_tdp_during_fault, 1.0);
        EXPECT_EQ(r.output.find("nan"), std::string::npos);
        EXPECT_EQ(r.output.find("inf"), std::string::npos);
    }
}

/**
 * A long total sensor blackout must push every governor through the
 * full degradation arc: fallback reads, safe-mode entry (clamp to the
 * lowest level), and safe-mode exit once fresh readings return --
 * with chip power held within a bounded duty cycle of the TDP while
 * the sensors were lying.
 */
TEST_P(FaultGovernanceTest, SensorBlackoutEntersAndExitsSafeMode)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kSensorDrop;
    ev.start = kSecond;
    ev.end = 4 * kSecond;
    ev.target = kInvalidId;  // All clusters.
    plan.add(ev);
    const ScenarioResult r =
        run_scenario(GetParam(), plan, true, 7 * kSecond);
    EXPECT_GT(r.summary.sensor_fallbacks, 0);
    EXPECT_GE(r.summary.safe_mode_entries, 1);
    EXPECT_GT(r.summary.safe_mode_seconds, 0.0);
    // Exit is recorded too: safe mode cannot outlast the blackout by
    // more than one decision epoch on each side.
    EXPECT_LT(r.summary.safe_mode_seconds, 3.5);
    // Clamped to the lowest level for most of the window, the chip
    // spends at most a small duty cycle above the TDP.
    EXPECT_LE(r.summary.over_tdp_during_fault, 0.25);
}

INSTANTIATE_TEST_SUITE_P(AllGovernors, FaultGovernanceTest,
                         ::testing::Values("PPM", "HPM", "HL"));

// ---------------------------------------------------------------------------
// Injector actuation semantics, driven directly (no governor in the
// loop): build a Simulation for its chip/scheduler wiring and poke the
// injector by hand.

struct InjectorRig {
    explicit InjectorRig(fault::FaultPlan plan)
    {
        sim::SimConfig cfg;
        cfg.duration = 20 * kSecond;
        cfg.faults = std::move(plan);
        sim = std::make_unique<sim::Simulation>(
            hw::tc2_chip(), standard_specs(), make_policy("HL"), cfg);
        inj = sim->fault_injector();
        EXPECT_NE(inj, nullptr);
    }
    std::unique_ptr<sim::Simulation> sim;
    fault::FaultInjector* inj = nullptr;
};

TEST(FaultInjector, DvfsDelayLandsExactlyLate)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kDvfsDelay;
    ev.start = kSecond;
    ev.end = 2 * kSecond;
    ev.target = 0;
    ev.delay = 50 * kMillisecond;
    plan.add(ev);
    InjectorRig rig(std::move(plan));
    hw::Cluster& cl = rig.sim->chip().cluster(0);
    const int before = cl.level();
    const int target = before == 0 ? 1 : 0;

    rig.inj->tick(kSecond);
    EXPECT_FALSE(rig.inj->request_level(0, target));
    EXPECT_EQ(cl.level(), before);  // Deferred, not applied.
    // The landing time is a horizon edge for the macro-step engine.
    EXPECT_EQ(rig.inj->next_edge(kSecond),
              kSecond + 50 * kMillisecond);

    rig.inj->tick(kSecond + 49 * kMillisecond);
    EXPECT_EQ(cl.level(), before);
    rig.inj->tick(kSecond + 50 * kMillisecond);
    EXPECT_EQ(cl.level(), target);  // Landed exactly `delay` late.
    EXPECT_GE(rig.inj->stats().dvfs_deferred, 1);
}

TEST(FaultInjector, DvfsFailDropsAfterRetryBudget)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kDvfsFail;
    ev.start = kSecond;
    ev.end = 10 * kSecond;  // Fails for the whole retry budget.
    ev.target = 0;
    plan.add(ev);
    plan.max_retries = 1;
    plan.retry_backoff = 4 * kMillisecond;
    InjectorRig rig(std::move(plan));
    hw::Cluster& cl = rig.sim->chip().cluster(0);
    const int before = cl.level();
    const int target = before == 0 ? 1 : 0;

    rig.inj->tick(kSecond);
    EXPECT_FALSE(rig.inj->request_level(0, target));
    // Attempts at +4 ms and (backoff doubled) +12 ms, then dropped.
    rig.inj->tick(kSecond + 4 * kMillisecond);
    rig.inj->tick(kSecond + 12 * kMillisecond);
    rig.inj->tick(kSecond + 100 * kMillisecond);
    EXPECT_EQ(cl.level(), before);
    EXPECT_GE(rig.inj->stats().dvfs_retries, 2);
    EXPECT_GE(rig.inj->stats().dropped_actions, 1);
}

TEST(FaultInjector, DvfsFailSucceedsOnceWindowCloses)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kDvfsFail;
    ev.start = kSecond;
    ev.end = kSecond + 6 * kMillisecond;
    ev.target = 0;
    plan.add(ev);
    InjectorRig rig(std::move(plan));
    hw::Cluster& cl = rig.sim->chip().cluster(0);
    const int target = cl.level() == 0 ? 1 : 0;

    rig.inj->tick(kSecond);
    EXPECT_FALSE(rig.inj->request_level(0, target));
    rig.inj->tick(kSecond + 4 * kMillisecond);   // Still failing.
    EXPECT_NE(cl.level(), target);
    rig.inj->tick(kSecond + 12 * kMillisecond);  // Window closed.
    EXPECT_EQ(cl.level(), target);  // Retry-with-backoff recovered.
}

TEST(FaultInjector, MigrationFailRetriesUntilItLands)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kMigrationFail;
    ev.start = kSecond;
    ev.end = kSecond + 6 * kMillisecond;
    plan.add(ev);
    InjectorRig rig(std::move(plan));
    sched::Scheduler& sched = rig.sim->scheduler();
    const CoreId from = sched.core_of(0);
    const CoreId to = from == 0 ? 1 : 0;

    rig.inj->tick(kSecond);
    EXPECT_FALSE(rig.inj->request_migration(0, to, kSecond));
    EXPECT_EQ(sched.core_of(0), from);  // Queued, not moved.
    rig.inj->tick(kSecond + 4 * kMillisecond);   // Retry inside window.
    EXPECT_EQ(sched.core_of(0), from);
    rig.inj->tick(kSecond + 12 * kMillisecond);  // Window closed.
    EXPECT_EQ(sched.core_of(0), to);
    EXPECT_GE(rig.inj->stats().migration_retries, 1);
}

TEST(FaultInjector, MigrationSlowMultipliesLatency)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kMigrationSlow;
    ev.start = kSecond;
    ev.end = 2 * kSecond;
    ev.magnitude = 5.0;
    plan.add(ev);
    InjectorRig rig(std::move(plan));
    EXPECT_DOUBLE_EQ(rig.inj->migration_cost_scale(500 * kMillisecond),
                     1.0);
    EXPECT_DOUBLE_EQ(
        rig.inj->migration_cost_scale(1500 * kMillisecond), 5.0);
    EXPECT_DOUBLE_EQ(rig.inj->migration_cost_scale(2 * kSecond), 1.0);
}

TEST(FaultInjector, OfflineEvacuatesAndRestores)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kCoreOffline;
    ev.start = kSecond;
    ev.end = 2 * kSecond;
    ev.target = 0;
    plan.add(ev);
    InjectorRig rig(std::move(plan));
    hw::Chip& chip = rig.sim->chip();
    sched::Scheduler& sched = rig.sim->scheduler();
    ASSERT_TRUE(chip.core_online(0));
    const bool had_tasks = !sched.tasks_on(0).empty();

    rig.inj->tick(kSecond);
    EXPECT_FALSE(chip.core_online(0));
    EXPECT_TRUE(sched.tasks_on(0).empty());  // Victims evacuated.
    if (had_tasks) {
        EXPECT_GE(rig.inj->stats().offline_events, 1);
    }
    // Restoration is a horizon edge.
    EXPECT_EQ(rig.inj->next_edge(kSecond + kMillisecond),
              2 * kSecond);

    rig.inj->tick(2 * kSecond);
    EXPECT_TRUE(chip.core_online(0));
}

TEST(FaultInjector, RejectsMigrationToOfflineCore)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kCoreOffline;
    ev.start = kSecond;
    ev.end = 2 * kSecond;
    ev.target = 1;
    plan.add(ev);
    InjectorRig rig(std::move(plan));
    rig.inj->tick(kSecond);
    const long dropped = rig.inj->stats().dropped_actions;
    EXPECT_FALSE(rig.inj->request_migration(0, 1, kSecond));
    EXPECT_EQ(rig.inj->stats().dropped_actions, dropped + 1);
}

TEST(FaultInjector, NoiseOffsetIsPureAndBounded)
{
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kSensorNoise;
    ev.start = kSecond;
    ev.end = 2 * kSecond;
    ev.magnitude = 0.5;
    ev.salt = 0xfeedface;
    fault::FaultPlan plan;
    plan.add(ev);
    InjectorRig rig(std::move(plan));
    for (SimTime t = kSecond; t < 2 * kSecond;
         t += 100 * kMillisecond) {
        const double a = rig.inj->noise_offset(ev, 0, t);
        const double b = rig.inj->noise_offset(ev, 0, t);
        EXPECT_EQ(a, b);  // Stateless: same inputs, same bits.
        EXPECT_LE(std::fabs(a), 3.0 * ev.magnitude + 1e-12);
    }
    // Different clusters and times decorrelate.
    EXPECT_NE(rig.inj->noise_offset(ev, 0, kSecond),
              rig.inj->noise_offset(ev, 1, kSecond));
}

TEST(FaultInjector, NextEdgeWalksTheSchedule)
{
    fault::FaultPlan plan;
    fault::FaultEvent a;
    a.kind = fault::FaultKind::kSensorDrop;
    a.start = kSecond;
    a.end = 2 * kSecond;
    plan.add(a);
    fault::FaultEvent b = a;
    b.start = 3 * kSecond;
    b.end = 4 * kSecond;
    plan.add(b);
    InjectorRig rig(std::move(plan));
    const auto* inj = rig.inj;
    EXPECT_EQ(inj->next_edge(0), kSecond);
    EXPECT_EQ(inj->next_edge(kSecond), 2 * kSecond);
    EXPECT_EQ(inj->next_edge(2 * kSecond), 3 * kSecond);
    EXPECT_EQ(inj->next_edge(3 * kSecond), 4 * kSecond);
    EXPECT_EQ(inj->next_edge(4 * kSecond),
              fault::FaultInjector::kNoEdge);
    EXPECT_FALSE(inj->any_fault_active(500 * kMillisecond));
    EXPECT_TRUE(inj->any_fault_active(kSecond));
    EXPECT_TRUE(inj->sensor_fault_active(3500 * kMillisecond));
    EXPECT_FALSE(inj->sensor_fault_active(2500 * kMillisecond));
}

// ---------------------------------------------------------------------------
// SensorGuard: fallback, safe-mode entry and exit.

TEST(SensorGuard, NullInjectorNeverEntersSafeMode)
{
    fault::SensorGuard guard;
    guard.init(2, nullptr);
    EXPECT_FALSE(guard.safe_mode());
    guard.update_safe_mode(kSecond);
    EXPECT_FALSE(guard.safe_mode());
}

TEST(SensorGuard, BlackoutTripsSafeModeAndRecovers)
{
    fault::FaultPlan plan;
    fault::FaultEvent ev;
    ev.kind = fault::FaultKind::kSensorDrop;
    ev.start = kSecond;
    ev.end = 2 * kSecond;
    ev.target = kInvalidId;
    plan.add(ev);  // staleness_bound stays at the 250 ms default.
    InjectorRig rig(std::move(plan));
    rig.sim->step();  // Prime the sensor bank.
    fault::SensorGuard guard;
    guard.init(2, rig.inj);
    const hw::SensorBank& bank = rig.sim->sensors();

    // Clean epoch: reads cache last-good values.
    const Watts clean = guard.read_chip_instantaneous(bank, 0);
    guard.update_safe_mode(0);
    EXPECT_FALSE(guard.safe_mode());

    // Early blackout: fallback served, age still under the bound.
    const Watts early =
        guard.read_chip_instantaneous(bank, kSecond + kMillisecond);
    EXPECT_EQ(early, clean);  // Last-good, bit for bit.
    guard.update_safe_mode(kSecond + kMillisecond);
    EXPECT_FALSE(guard.safe_mode());

    // Deep blackout: age exceeds the bound -> safe mode.
    guard.read_chip_instantaneous(bank,
                                  kSecond + 300 * kMillisecond);
    guard.update_safe_mode(kSecond + 300 * kMillisecond);
    EXPECT_TRUE(guard.safe_mode());
    EXPECT_GE(rig.inj->stats().safe_mode_entries, 1);

    // Fresh readings return -> safe mode exits, and the time spent
    // safe was accounted.
    guard.read_chip_instantaneous(bank, 2 * kSecond);
    guard.update_safe_mode(2 * kSecond);
    EXPECT_FALSE(guard.safe_mode());
    EXPECT_GT(rig.inj->stats().safe_mode_time, 0);
}

} // namespace
} // namespace ppm

/**
 * @file
 * Property sweeps over the hardware models: power monotonicity and
 * superposition across randomized operating points, migration-cost
 * interpolation bounds, and octa-core platform sanity.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hw/migration.hh"
#include "hw/power_model.hh"

namespace ppm::hw {
namespace {

class PowerPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(PowerPropertyTest, PowerMonotoneInLevelAndUtil)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337);
    Chip chip = GetParam() % 2 == 0 ? tc2_chip() : octa_big_little_chip();
    const ClusterId v = static_cast<ClusterId>(
        rng.uniform_int(0, chip.num_clusters() - 1));
    Cluster& cl = chip.cluster(v);
    std::vector<double> util(static_cast<std::size_t>(cl.num_cores()));
    for (auto& u : util)
        u = rng.uniform(0.0, 1.0);

    // Monotone in the V-F level at fixed utilization.
    Watts prev = -1.0;
    for (int l = 0; l < cl.vf().levels(); ++l) {
        cl.set_level(l);
        const Watts w = PowerModel::cluster_power(chip, v, util);
        EXPECT_GT(w, prev);
        prev = w;
    }

    // Monotone in any single core's utilization at a fixed level.
    cl.set_level(static_cast<int>(
        rng.uniform_int(0, cl.vf().levels() - 1)));
    const auto core = static_cast<std::size_t>(
        rng.uniform_int(0, cl.num_cores() - 1));
    const Watts before = PowerModel::cluster_power(chip, v, util);
    util[core] = std::min(1.0, util[core] + 0.25);
    const Watts after = PowerModel::cluster_power(chip, v, util);
    EXPECT_GE(after, before);

    // Bounded by the cluster's max power.
    std::vector<double> full(util.size(), 1.0);
    cl.set_level(cl.vf().levels() - 1);
    EXPECT_LE(PowerModel::cluster_power(chip, v, full),
              PowerModel::cluster_max_power(chip, v) + 1e-9);
}

TEST_P(PowerPropertyTest, ChipPowerIsSumOfClusters)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 65537);
    Chip chip = octa_big_little_chip();
    std::vector<double> util(static_cast<std::size_t>(chip.num_cores()));
    for (auto& u : util)
        u = rng.uniform(0.0, 1.0);
    for (ClusterId v = 0; v < chip.num_clusters(); ++v) {
        chip.cluster(v).set_level(static_cast<int>(rng.uniform_int(
            0, chip.cluster(v).vf().levels() - 1)));
    }
    Watts sum = 0.0;
    for (const Cluster& cl : chip.clusters()) {
        std::vector<double> cluster_util;
        for (CoreId c : cl.cores())
            cluster_util.push_back(util[static_cast<std::size_t>(c)]);
        sum += PowerModel::cluster_power(chip, cl.id(), cluster_util);
    }
    EXPECT_NEAR(PowerModel::chip_power(chip, util), sum, 1e-9);
}

TEST_P(PowerPropertyTest, MigrationCostsWithinConfiguredRanges)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
    Chip chip = tc2_chip();
    const MigrationModel model;
    for (ClusterId v = 0; v < chip.num_clusters(); ++v) {
        chip.cluster(v).set_level(static_cast<int>(rng.uniform_int(
            0, chip.cluster(v).vf().levels() - 1)));
    }
    // LITTLE cores are 0..2, big cores 3..4 on the TC2-like chip.
    const SimTime intra_l = model.cost(chip, 0, 1);
    EXPECT_GE(intra_l, 71);
    EXPECT_LE(intra_l, 167);
    const SimTime intra_b = model.cost(chip, 3, 4);
    EXPECT_GE(intra_b, 54);
    EXPECT_LE(intra_b, 105);
    const SimTime l2b = model.cost(chip, 2, 3);
    EXPECT_GE(l2b, 1880);
    EXPECT_LE(l2b, 2160);
    const SimTime b2l = model.cost(chip, 4, 0);
    EXPECT_GE(b2l, 3540);
    EXPECT_LE(b2l, 3830);
}

INSTANTIATE_TEST_SUITE_P(RandomOperatingPoints, PowerPropertyTest,
                         ::testing::Range(1, 13));

TEST(OctaChip, Topology)
{
    const Chip chip = octa_big_little_chip();
    EXPECT_EQ(chip.num_clusters(), 2);
    EXPECT_EQ(chip.num_cores(), 8);
    EXPECT_EQ(chip.cluster(0).num_cores(), 4);
    EXPECT_EQ(chip.cluster(1).num_cores(), 4);
    EXPECT_EQ(chip.cluster(1).type().core_class, CoreClass::kBig);
}


TEST(PowerModelRobustness, NeverNanOrNegative)
{
    Rng rng(2024);
    Chip chips[] = {tc2_chip(), octa_big_little_chip()};
    const double utils[] = {0.0, 1e-12, 0.25, 1.0};
    for (Chip& chip : chips) {
        for (ClusterId v = 0; v < chip.num_clusters(); ++v) {
            Cluster& cl = chip.cluster(v);
            for (int l = -2; l < cl.vf().levels() + 2; ++l) {
                cl.set_level(cl.vf().clamp_level(l));
                for (const double u : utils) {
                    std::vector<double> util(
                        static_cast<std::size_t>(cl.num_cores()), u);
                    const Watts w =
                        PowerModel::cluster_power(chip, v, util);
                    ASSERT_TRUE(std::isfinite(w));
                    ASSERT_GE(w, 0.0);
                }
            }
        }
        std::vector<double> all(
            static_cast<std::size_t>(chip.num_cores()));
        for (double& u : all)
            u = rng.uniform(0.0, 1.0);
        const Watts w = PowerModel::chip_power(chip, all);
        EXPECT_TRUE(std::isfinite(w));
        EXPECT_GE(w, 0.0);
    }
}

TEST(PowerModelRobustness, GatedClusterDrawsNothing)
{
    Chip chip = tc2_chip();
    chip.cluster(1).set_powered(false);
    std::vector<double> util(
        static_cast<std::size_t>(chip.cluster(1).num_cores()), 1.0);
    EXPECT_DOUBLE_EQ(PowerModel::cluster_power(chip, 1, util), 0.0);
}
} // namespace
} // namespace ppm::hw

/** @file Unit tests for the hwmon-style sensor bank. */

#include <gtest/gtest.h>

#include "hw/sensors.hh"

namespace ppm::hw {
namespace {

TEST(SensorBank, InstantaneousReadings)
{
    SensorBank bank(2);
    bank.record(0, 1.5, kMillisecond);
    bank.record(1, 3.0, kMillisecond);
    EXPECT_DOUBLE_EQ(bank.instantaneous(0), 1.5);
    EXPECT_DOUBLE_EQ(bank.instantaneous(1), 3.0);
    EXPECT_DOUBLE_EQ(bank.instantaneous_chip(), 4.5);
}

TEST(SensorBank, EnergyIntegration)
{
    SensorBank bank(1);
    // 2 W for 500 ms = 1 J.
    for (int i = 0; i < 500; ++i)
        bank.record(0, 2.0, kMillisecond);
    EXPECT_NEAR(bank.energy(0), 1.0, 1e-9);
    EXPECT_NEAR(bank.chip_energy(), 1.0, 1e-9);
}

TEST(SensorBank, AverageSinceMark)
{
    SensorBank bank(1);
    bank.record(0, 4.0, kMillisecond);
    bank.mark();
    // After the mark: 1 W for 10 ms then 3 W for 10 ms -> 2 W average.
    for (int i = 0; i < 10; ++i)
        bank.record(0, 1.0, kMillisecond);
    for (int i = 0; i < 10; ++i)
        bank.record(0, 3.0, kMillisecond);
    EXPECT_NEAR(bank.average_since_mark(0), 2.0, 1e-9);
    EXPECT_NEAR(bank.chip_average_since_mark(), 2.0, 1e-9);
}

TEST(SensorBank, AverageFallsBackToInstantaneous)
{
    SensorBank bank(1);
    bank.record(0, 5.0, kMillisecond);
    bank.mark();
    // No time elapsed since the mark.
    EXPECT_DOUBLE_EQ(bank.average_since_mark(0), 5.0);
}

TEST(SensorBank, PerClusterEnergySeparated)
{
    SensorBank bank(2);
    bank.record(0, 1.0, kSecond);
    bank.record(1, 2.0, kSecond);
    EXPECT_NEAR(bank.energy(0), 1.0, 1e-9);
    EXPECT_NEAR(bank.energy(1), 2.0, 1e-9);
    EXPECT_NEAR(bank.chip_energy(), 3.0, 1e-9);
}

TEST(SensorBank, SkippedChannelDoesNotCorruptOthers)
{
    // Channel time is tracked per channel: never recording channel 1
    // must not distort channel 0's average (the old implementation
    // advanced a single clock on channel-0 records only).
    SensorBank bank(2);
    bank.mark();
    for (int i = 0; i < 10; ++i)
        bank.record(0, 2.0, kMillisecond);
    EXPECT_NEAR(bank.average_since_mark(0), 2.0, 1e-9);
    // The idle channel has no elapsed time: falls back to its last
    // instantaneous reading (0 W), not a division by channel 0's time.
    EXPECT_DOUBLE_EQ(bank.average_since_mark(1), 0.0);
}

TEST(SensorBank, UnevenRecordCountsKeepAveragesExact)
{
    // Channels recorded at different cadences (e.g. a cluster gated
    // off mid-epoch) each average over their own elapsed time.
    SensorBank bank(2);
    bank.mark();
    for (int i = 0; i < 20; ++i)
        bank.record(0, 1.0, kMillisecond);
    for (int i = 0; i < 5; ++i)
        bank.record(1, 4.0, kMillisecond);
    EXPECT_NEAR(bank.average_since_mark(0), 1.0, 1e-9);
    EXPECT_NEAR(bank.average_since_mark(1), 4.0, 1e-9);
}

TEST(SensorBank, DoubleRecordCountsTwiceOnThatChannelOnly)
{
    SensorBank bank(2);
    bank.mark();
    // Channel 0 recorded twice per tick (2 x 10 ms), channel 1 once.
    for (int i = 0; i < 10; ++i) {
        bank.record(0, 3.0, kMillisecond);
        bank.record(0, 1.0, kMillisecond);
        bank.record(1, 2.0, kMillisecond);
    }
    EXPECT_NEAR(bank.average_since_mark(0), 2.0, 1e-9);
    EXPECT_NEAR(bank.average_since_mark(1), 2.0, 1e-9);
    EXPECT_NEAR(bank.energy(0), 0.04, 1e-9);
    EXPECT_NEAR(bank.energy(1), 0.02, 1e-9);
}

TEST(SensorBankDeath, RejectsBadChannel)
{
    SensorBank bank(1);
    EXPECT_DEATH(bank.record(3, 1.0, kMillisecond), "out of range");
}

} // namespace
} // namespace ppm::hw

/** @file Unit tests for the migration-cost model (paper Section 5.1). */

#include <gtest/gtest.h>

#include "hw/migration.hh"

namespace ppm::hw {
namespace {

class MigrationTest : public ::testing::Test
{
  protected:
    Chip chip_ = tc2_chip();
    MigrationModel model_;
};

TEST_F(MigrationTest, SameCoreIsFree)
{
    EXPECT_EQ(model_.cost(chip_, 0, 0), 0);
}

TEST_F(MigrationTest, IntraLittleRangeAtExtremes)
{
    // Paper: 71-167 us within the LITTLE cluster across frequencies.
    chip_.cluster(0).set_level(chip_.cluster(0).vf().levels() - 1);
    EXPECT_EQ(model_.cost(chip_, 0, 1), 71);
    chip_.cluster(0).set_level(0);
    EXPECT_EQ(model_.cost(chip_, 0, 1), 167);
}

TEST_F(MigrationTest, IntraBigRangeAtExtremes)
{
    // Paper: 54-105 us within the big cluster.
    chip_.cluster(1).set_level(chip_.cluster(1).vf().levels() - 1);
    EXPECT_EQ(model_.cost(chip_, 3, 4), 54);
    chip_.cluster(1).set_level(0);
    EXPECT_EQ(model_.cost(chip_, 3, 4), 105);
}

TEST_F(MigrationTest, LittleToBigRange)
{
    // Paper: 1.88-2.16 ms LITTLE -> big.
    chip_.cluster(0).set_level(chip_.cluster(0).vf().levels() - 1);
    EXPECT_EQ(model_.cost(chip_, 0, 3), 1880);
    chip_.cluster(0).set_level(0);
    EXPECT_EQ(model_.cost(chip_, 0, 3), 2160);
}

TEST_F(MigrationTest, BigToLittleRange)
{
    // Paper: 3.54-3.83 ms big -> LITTLE (the expensive direction).
    chip_.cluster(1).set_level(chip_.cluster(1).vf().levels() - 1);
    EXPECT_EQ(model_.cost(chip_, 3, 0), 3540);
    chip_.cluster(1).set_level(0);
    EXPECT_EQ(model_.cost(chip_, 3, 0), 3830);
}

TEST_F(MigrationTest, CrossClusterCostsDominateIntraCluster)
{
    const SimTime intra = model_.cost(chip_, 0, 1);
    const SimTime l2b = model_.cost(chip_, 0, 3);
    const SimTime b2l = model_.cost(chip_, 3, 0);
    EXPECT_GT(l2b, 10 * intra);
    EXPECT_GT(b2l, l2b);
}

TEST_F(MigrationTest, InterpolationIsMonotoneInFrequency)
{
    SimTime prev = 1 << 30;
    for (int l = 0; l < chip_.cluster(0).vf().levels(); ++l) {
        chip_.cluster(0).set_level(l);
        const SimTime cost = model_.cost(chip_, 0, 3);
        EXPECT_LE(cost, prev);  // Faster source -> cheaper migration.
        prev = cost;
    }
}

TEST_F(MigrationTest, CustomRangesRespected)
{
    const MigrationModel custom({10, 20}, {30, 40}, {50, 60}, {70, 80});
    chip_.cluster(0).set_level(chip_.cluster(0).vf().levels() - 1);
    EXPECT_EQ(custom.cost(chip_, 0, 1), 10);
    EXPECT_EQ(custom.cost(chip_, 0, 3), 50);
}

} // namespace
} // namespace ppm::hw

/** @file Unit tests for the analytic power model. */

#include <gtest/gtest.h>

#include "hw/power_model.hh"

namespace ppm::hw {
namespace {

TEST(PowerModel, IdleCoreDrawsOnlyLeakage)
{
    const CoreTypeParams t = big_core_params();
    const Watts idle = PowerModel::core_power(t, 1200, 1.3, 1.3, 0.0);
    EXPECT_DOUBLE_EQ(idle, t.leak_per_core_max);
}

TEST(PowerModel, DynamicScalesWithUtilization)
{
    const CoreTypeParams t = little_core_params();
    const Watts full = PowerModel::core_power(t, 1000, 1.2, 1.2, 1.0);
    const Watts half = PowerModel::core_power(t, 1000, 1.2, 1.2, 0.5);
    const Watts leak = t.leak_per_core_max;
    EXPECT_NEAR(half - leak, (full - leak) / 2.0, 1e-12);
}

TEST(PowerModel, DynamicScalesWithVSquaredF)
{
    const CoreTypeParams t = big_core_params();
    const Watts a = PowerModel::core_power(t, 1000, 1.0, 1.0, 1.0);
    const Watts b = PowerModel::core_power(t, 2000, 1.0, 1.0, 1.0);
    EXPECT_NEAR(b - t.leak_per_core_max,
                2.0 * (a - t.leak_per_core_max), 1e-9);
}

TEST(PowerModel, LeakageScalesWithVSquared)
{
    const CoreTypeParams t = big_core_params();
    const Watts at_v = PowerModel::core_power(t, 500, 0.65, 1.3, 0.0);
    EXPECT_NEAR(at_v, t.leak_per_core_max * 0.25, 1e-12);
}

TEST(PowerModel, ClusterEnvelopeMatchesPaper)
{
    // The paper reports ~2 W max for the A7 cluster and ~6 W for the
    // A15 cluster (8 W chip TDP).
    const Chip chip = tc2_chip();
    const Watts little_max = PowerModel::cluster_max_power(chip, 0);
    const Watts big_max = PowerModel::cluster_max_power(chip, 1);
    EXPECT_NEAR(little_max, 2.0, 0.2);
    EXPECT_NEAR(big_max, 6.0, 0.4);
    EXPECT_NEAR(little_max + big_max, 8.0, 0.5);
}

TEST(PowerModel, GatedClusterDrawsNothing)
{
    Chip chip = tc2_chip();
    chip.cluster(1).set_powered(false);
    const Watts w =
        PowerModel::cluster_power(chip, 1, {1.0, 1.0});
    EXPECT_DOUBLE_EQ(w, 0.0);
}

TEST(PowerModel, ChipPowerSumsClusters)
{
    Chip chip = tc2_chip();
    chip.cluster(0).set_level(7);
    chip.cluster(1).set_level(7);
    const std::vector<double> util(5, 1.0);
    const Watts total = PowerModel::chip_power(chip, util);
    const Watts little =
        PowerModel::cluster_power(chip, 0, {1.0, 1.0, 1.0});
    const Watts big = PowerModel::cluster_power(chip, 1, {1.0, 1.0});
    EXPECT_NEAR(total, little + big, 1e-12);
}

TEST(PowerModel, HigherLevelDrawsMorePower)
{
    Chip chip = tc2_chip();
    const std::vector<double> util{1.0, 1.0, 1.0};
    Watts prev = 0.0;
    for (int l = 0; l < chip.cluster(0).vf().levels(); ++l) {
        chip.cluster(0).set_level(l);
        const Watts w = PowerModel::cluster_power(chip, 0, util);
        EXPECT_GT(w, prev);
        prev = w;
    }
}

TEST(PowerModel, BigPuCostsMoreThanLittlePu)
{
    // The heterogeneity premise: one PU on the big cluster costs more
    // energy than one PU on the LITTLE cluster.
    const Chip chip = tc2_chip();
    const double little_wpp = PowerModel::cluster_max_power(chip, 0)
        / (3 * 1000.0);
    const double big_wpp = PowerModel::cluster_max_power(chip, 1)
        / (2 * 1200.0);
    EXPECT_GT(big_wpp, 2.0 * little_wpp);
}

} // namespace
} // namespace ppm::hw

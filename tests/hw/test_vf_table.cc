/** @file Unit tests for the discrete V-F tables. */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/vf_table.hh"

namespace ppm::hw {
namespace {

TEST(VfTable, DefaultLittleTable)
{
    const VfTable t = little_vf_table();
    EXPECT_EQ(t.levels(), 8);
    EXPECT_DOUBLE_EQ(t.min_mhz(), 350.0);
    EXPECT_DOUBLE_EQ(t.max_mhz(), 1000.0);
    EXPECT_DOUBLE_EQ(t.max_supply(), 1000.0);
}

TEST(VfTable, DefaultBigTable)
{
    const VfTable t = big_vf_table();
    EXPECT_EQ(t.levels(), 8);
    EXPECT_DOUBLE_EQ(t.min_mhz(), 500.0);
    EXPECT_DOUBLE_EQ(t.max_mhz(), 1200.0);
}

TEST(VfTable, VoltageMonotone)
{
    const VfTable t = big_vf_table();
    for (int l = 1; l < t.levels(); ++l)
        EXPECT_GE(t.volts(l), t.volts(l - 1));
}

TEST(VfTable, SupplyEqualsMhz)
{
    const VfTable t = little_vf_table();
    for (int l = 0; l < t.levels(); ++l)
        EXPECT_DOUBLE_EQ(t.supply(l), t.mhz(l));
}

TEST(VfTable, LevelForDemandRoundsUp)
{
    const VfTable t = little_vf_table();
    // The paper: "round up the demand to the next supply value".
    EXPECT_EQ(t.level_for_demand(0.0), 0);
    EXPECT_EQ(t.level_for_demand(350.0), 0);
    EXPECT_EQ(t.level_for_demand(351.0), 1);
    EXPECT_EQ(t.level_for_demand(850.0), 6);   // -> 900 MHz.
    EXPECT_EQ(t.level_for_demand(1000.0), 7);
}

TEST(VfTable, LevelForDemandClampsAtTop)
{
    const VfTable t = little_vf_table();
    EXPECT_EQ(t.level_for_demand(5000.0), t.levels() - 1);
}

TEST(VfTable, ClampLevel)
{
    const VfTable t = little_vf_table();
    EXPECT_EQ(t.clamp_level(-3), 0);
    EXPECT_EQ(t.clamp_level(3), 3);
    EXPECT_EQ(t.clamp_level(99), t.levels() - 1);
}

TEST(VfTable, CustomSingleLevel)
{
    const VfTable t(std::vector<VfPoint>{{300.0, 1.0}});
    EXPECT_EQ(t.levels(), 1);
    EXPECT_EQ(t.level_for_demand(9999.0), 0);
}

TEST(VfTableDeath, RejectsUnsortedPoints)
{
    EXPECT_DEATH(VfTable(std::vector<VfPoint>{{500, 1.0}, {400, 1.1}}),
                 "ascending");
}

TEST(VfTableDeath, RejectsEmptyTable)
{
    EXPECT_DEATH(VfTable(std::vector<VfPoint>{}), "at least one");
}


TEST(VfTable, OutOfRangeLookupsClampNeverNan)
{
    for (const VfTable& t : {little_vf_table(), big_vf_table()}) {
        EXPECT_DOUBLE_EQ(t.mhz(-5), t.mhz(0));
        EXPECT_DOUBLE_EQ(t.mhz(999), t.mhz(t.levels() - 1));
        EXPECT_DOUBLE_EQ(t.volts(-5), t.volts(0));
        EXPECT_DOUBLE_EQ(t.volts(999), t.volts(t.levels() - 1));
        EXPECT_DOUBLE_EQ(t.supply(-1), t.min_mhz());
        EXPECT_DOUBLE_EQ(t.supply(t.levels()), t.max_mhz());
        // level_for_demand clamps at both ends of the demand range.
        EXPECT_EQ(t.level_for_demand(-100.0), 0);
        EXPECT_EQ(t.level_for_demand(0.0), 0);
        EXPECT_EQ(t.level_for_demand(1e12), t.levels() - 1);
        for (int l = -3; l < t.levels() + 3; ++l) {
            EXPECT_TRUE(std::isfinite(t.mhz(l)));
            EXPECT_GT(t.mhz(l), 0.0);
            EXPECT_TRUE(std::isfinite(t.volts(l)));
            EXPECT_GT(t.volts(l), 0.0);
        }
    }
}
} // namespace
} // namespace ppm::hw

/** @file Unit tests for the discrete V-F tables. */

#include <gtest/gtest.h>

#include "hw/vf_table.hh"

namespace ppm::hw {
namespace {

TEST(VfTable, DefaultLittleTable)
{
    const VfTable t = little_vf_table();
    EXPECT_EQ(t.levels(), 8);
    EXPECT_DOUBLE_EQ(t.min_mhz(), 350.0);
    EXPECT_DOUBLE_EQ(t.max_mhz(), 1000.0);
    EXPECT_DOUBLE_EQ(t.max_supply(), 1000.0);
}

TEST(VfTable, DefaultBigTable)
{
    const VfTable t = big_vf_table();
    EXPECT_EQ(t.levels(), 8);
    EXPECT_DOUBLE_EQ(t.min_mhz(), 500.0);
    EXPECT_DOUBLE_EQ(t.max_mhz(), 1200.0);
}

TEST(VfTable, VoltageMonotone)
{
    const VfTable t = big_vf_table();
    for (int l = 1; l < t.levels(); ++l)
        EXPECT_GE(t.volts(l), t.volts(l - 1));
}

TEST(VfTable, SupplyEqualsMhz)
{
    const VfTable t = little_vf_table();
    for (int l = 0; l < t.levels(); ++l)
        EXPECT_DOUBLE_EQ(t.supply(l), t.mhz(l));
}

TEST(VfTable, LevelForDemandRoundsUp)
{
    const VfTable t = little_vf_table();
    // The paper: "round up the demand to the next supply value".
    EXPECT_EQ(t.level_for_demand(0.0), 0);
    EXPECT_EQ(t.level_for_demand(350.0), 0);
    EXPECT_EQ(t.level_for_demand(351.0), 1);
    EXPECT_EQ(t.level_for_demand(850.0), 6);   // -> 900 MHz.
    EXPECT_EQ(t.level_for_demand(1000.0), 7);
}

TEST(VfTable, LevelForDemandClampsAtTop)
{
    const VfTable t = little_vf_table();
    EXPECT_EQ(t.level_for_demand(5000.0), t.levels() - 1);
}

TEST(VfTable, ClampLevel)
{
    const VfTable t = little_vf_table();
    EXPECT_EQ(t.clamp_level(-3), 0);
    EXPECT_EQ(t.clamp_level(3), 3);
    EXPECT_EQ(t.clamp_level(99), t.levels() - 1);
}

TEST(VfTable, CustomSingleLevel)
{
    const VfTable t(std::vector<VfPoint>{{300.0, 1.0}});
    EXPECT_EQ(t.levels(), 1);
    EXPECT_EQ(t.level_for_demand(9999.0), 0);
}

TEST(VfTableDeath, RejectsUnsortedPoints)
{
    EXPECT_DEATH(VfTable(std::vector<VfPoint>{{500, 1.0}, {400, 1.1}}),
                 "ascending");
}

TEST(VfTableDeath, RejectsEmptyTable)
{
    EXPECT_DEATH(VfTable(std::vector<VfPoint>{}), "at least one");
}

} // namespace
} // namespace ppm::hw

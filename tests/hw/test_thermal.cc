/** @file Unit tests for the RC thermal model. */

#include <gtest/gtest.h>

#include "hw/thermal.hh"

namespace ppm::hw {
namespace {

ThermalParams
one_node(double r = 10.0, double c = 1.0, double ambient = 30.0)
{
    ThermalParams p;
    p.ambient_c = ambient;
    p.nodes.push_back({r, c});
    return p;
}

TEST(Thermal, StartsAtAmbient)
{
    ThermalModel m(one_node());
    EXPECT_DOUBLE_EQ(m.temperature(0), 30.0);
    EXPECT_DOUBLE_EQ(m.max_temperature(), 30.0);
    EXPECT_DOUBLE_EQ(m.peak_temperature(), 30.0);
}

TEST(Thermal, SteadyStateIsAmbientPlusPR)
{
    // 4 W x 10 K/W -> +40 K; run long past the 10 s time constant.
    ThermalModel m(one_node());
    for (int i = 0; i < 100000; ++i)
        m.step({4.0}, kMillisecond);
    EXPECT_NEAR(m.temperature(0), 70.0, 0.1);
}

TEST(Thermal, TimeConstantIs63PercentAtTau)
{
    ThermalModel m(one_node(10.0, 1.0));  // tau = 10 s.
    for (int i = 0; i < 10000; ++i)
        m.step({4.0}, kMillisecond);
    // After exactly tau, 63.2% of the 40 K rise.
    EXPECT_NEAR(m.temperature(0), 30.0 + 40.0 * 0.632, 0.2);
}

TEST(Thermal, CoolsBackToAmbient)
{
    ThermalModel m(one_node());
    for (int i = 0; i < 50000; ++i)
        m.step({4.0}, kMillisecond);
    for (int i = 0; i < 100000; ++i)
        m.step({0.0}, kMillisecond);
    EXPECT_NEAR(m.temperature(0), 30.0, 0.1);
    // The peak remembers the hot phase.
    EXPECT_NEAR(m.peak_temperature(), 70.0, 0.5);
}

TEST(Thermal, LargeStepIsStable)
{
    // The exponential integrator must not overshoot for dt >> tau.
    ThermalModel m(one_node());
    m.step({4.0}, 1000 * kSecond);
    EXPECT_NEAR(m.temperature(0), 70.0, 1e-6);
}

TEST(Thermal, CountsThermalCycles)
{
    ThermalModel m(one_node());
    m.set_cycle_threshold(3.0);
    // Alternate hot/cold long enough for >3 K swings.
    for (int cycle = 0; cycle < 5; ++cycle) {
        for (int i = 0; i < 5000; ++i)
            m.step({6.0}, kMillisecond);
        for (int i = 0; i < 5000; ++i)
            m.step({0.5}, kMillisecond);
    }
    EXPECT_GE(m.thermal_cycles(), 4);
    EXPECT_LE(m.thermal_cycles(), 5);
}

TEST(Thermal, SteadyPowerCausesNoCycles)
{
    ThermalModel m(one_node());
    for (int i = 0; i < 100000; ++i)
        m.step({3.0}, kMillisecond);
    EXPECT_EQ(m.thermal_cycles(), 0);
}

TEST(Thermal, Tc2DefaultsMatchEnvelope)
{
    ThermalModel m(ThermalModel::tc2_defaults());
    ASSERT_EQ(m.num_nodes(), 2);
    // Peak powers: LITTLE ~2 W, big ~6.2 W.
    for (int i = 0; i < 200000; ++i)
        m.step({2.0, 6.2}, kMillisecond);
    EXPECT_NEAR(m.temperature(0), 54.0, 1.0);
    EXPECT_NEAR(m.temperature(1), 79.6, 1.0);
}

TEST(ThermalDeath, RejectsEmptyNodes)
{
    EXPECT_DEATH(ThermalModel(ThermalParams{}), "at least one node");
}

} // namespace
} // namespace ppm::hw

/** @file Unit tests for the chip/cluster/core topology model. */

#include <gtest/gtest.h>

#include "hw/platform.hh"

namespace ppm::hw {
namespace {

TEST(Chip, Tc2Topology)
{
    const Chip chip = tc2_chip();
    ASSERT_EQ(chip.num_clusters(), 2);
    EXPECT_EQ(chip.num_cores(), 5);
    EXPECT_EQ(chip.cluster(0).num_cores(), 3);  // LITTLE.
    EXPECT_EQ(chip.cluster(1).num_cores(), 2);  // big.
    EXPECT_EQ(chip.cluster(0).type().core_class, CoreClass::kLittle);
    EXPECT_EQ(chip.cluster(1).type().core_class, CoreClass::kBig);
}

TEST(Chip, GlobalCoreIdsAreDense)
{
    const Chip chip = tc2_chip();
    for (CoreId c = 0; c < chip.num_cores(); ++c)
        EXPECT_EQ(chip.core(c).id, c);
    EXPECT_EQ(chip.cluster_of(0), 0);
    EXPECT_EQ(chip.cluster_of(2), 0);
    EXPECT_EQ(chip.cluster_of(3), 1);
    EXPECT_EQ(chip.cluster_of(4), 1);
}

TEST(Cluster, LevelStepsAndClamping)
{
    Chip chip = tc2_chip();
    Cluster& cl = chip.cluster(0);
    EXPECT_EQ(cl.level(), 0);
    EXPECT_TRUE(cl.step_level(+1));
    EXPECT_EQ(cl.level(), 1);
    EXPECT_TRUE(cl.step_level(-5));  // Clamped to 0; still a change.
    EXPECT_EQ(cl.level(), 0);
}

TEST(Cluster, StepAtBoundsReturnsFalse)
{
    Chip chip = tc2_chip();
    Cluster& cl = chip.cluster(0);
    cl.set_level(0);
    EXPECT_FALSE(cl.step_level(-1));
    cl.set_level(cl.vf().levels() - 1);
    EXPECT_FALSE(cl.step_level(+1));
}

TEST(Cluster, SupplyTracksLevelAndPower)
{
    Chip chip = tc2_chip();
    Cluster& cl = chip.cluster(0);
    cl.set_level(0);
    EXPECT_DOUBLE_EQ(cl.supply(), 350.0);
    cl.set_level(7);
    EXPECT_DOUBLE_EQ(cl.supply(), 1000.0);
    cl.set_powered(false);
    EXPECT_DOUBLE_EQ(cl.supply(), 0.0);
    EXPECT_DOUBLE_EQ(cl.mhz(), 0.0);
    EXPECT_DOUBLE_EQ(cl.volts(), 0.0);
}

TEST(Chip, TotalSupplySumsClusters)
{
    Chip chip = tc2_chip();
    chip.cluster(0).set_level(7);  // 1000.
    chip.cluster(1).set_level(7);  // 1200.
    EXPECT_DOUBLE_EQ(chip.total_supply(), 2200.0);
    chip.cluster(1).set_powered(false);
    EXPECT_DOUBLE_EQ(chip.total_supply(), 1000.0);
}

TEST(Chip, CoreSupplyEqualsClusterSupply)
{
    Chip chip = tc2_chip();
    chip.cluster(1).set_level(3);
    EXPECT_DOUBLE_EQ(chip.core_supply(3), chip.cluster(1).supply());
    EXPECT_DOUBLE_EQ(chip.core_supply(4), chip.core_supply(3));
}

TEST(SyntheticChip, DimensionsHonoured)
{
    const Chip chip = synthetic_chip(16, 4);
    EXPECT_EQ(chip.num_clusters(), 16);
    EXPECT_EQ(chip.num_cores(), 64);
}

TEST(SyntheticChip, SupplySpreadCoversPaperRange)
{
    const Chip chip = synthetic_chip(8, 2);
    // Max supplies spread across [350, 3000] PU as in Table 7's setup.
    EXPECT_DOUBLE_EQ(chip.cluster(0).vf().max_supply(), 350.0);
    EXPECT_DOUBLE_EQ(chip.cluster(7).vf().max_supply(), 3000.0);
    for (int v = 1; v < 8; ++v) {
        EXPECT_GT(chip.cluster(v).vf().max_supply(),
                  chip.cluster(v - 1).vf().max_supply());
    }
}

TEST(SyntheticChip, AlternatesCoreClasses)
{
    const Chip chip = synthetic_chip(4, 1);
    EXPECT_EQ(chip.cluster(0).type().core_class, CoreClass::kLittle);
    EXPECT_EQ(chip.cluster(1).type().core_class, CoreClass::kBig);
    EXPECT_EQ(chip.cluster(2).type().core_class, CoreClass::kLittle);
}

TEST(CoreClassName, Names)
{
    EXPECT_STREQ(core_class_name(CoreClass::kLittle), "LITTLE");
    EXPECT_STREQ(core_class_name(CoreClass::kBig), "big");
}

} // namespace
} // namespace ppm::hw

/** @file Unit tests for the Linux nice-weight table. */

#include <gtest/gtest.h>

#include "sched/nice.hh"

namespace ppm::sched {
namespace {

TEST(NiceWeights, KernelAnchors)
{
    EXPECT_DOUBLE_EQ(weight_for_nice(0), 1024.0);
    EXPECT_DOUBLE_EQ(weight_for_nice(-20), 88761.0);
    EXPECT_DOUBLE_EQ(weight_for_nice(19), 15.0);
}

TEST(NiceWeights, MonotoneDecreasing)
{
    for (int n = kMinNice; n < kMaxNice; ++n)
        EXPECT_GT(weight_for_nice(n), weight_for_nice(n + 1));
}

TEST(NiceWeights, EachStepIsRoughly25Percent)
{
    for (int n = kMinNice; n < kMaxNice; ++n) {
        const double ratio =
            weight_for_nice(n) / weight_for_nice(n + 1);
        EXPECT_NEAR(ratio, 1.25, 0.07);
    }
}

TEST(NiceWeights, OutOfRangeClamped)
{
    EXPECT_DOUBLE_EQ(weight_for_nice(-100), weight_for_nice(-20));
    EXPECT_DOUBLE_EQ(weight_for_nice(100), weight_for_nice(19));
}

TEST(NiceForShare, LargestShareGetsNiceZero)
{
    EXPECT_EQ(nice_for_relative_share(100.0, 100.0), 0);
    EXPECT_EQ(nice_for_relative_share(200.0, 100.0), 0);  // Clamped.
}

TEST(NiceForShare, HalfShareIsAboutThreeSteps)
{
    // 1.25^3 ~ 1.95, so a half share maps to nice 3.
    EXPECT_EQ(nice_for_relative_share(50.0, 100.0), 3);
}

TEST(NiceForShare, TinyShareClampsAtMaxNice)
{
    EXPECT_EQ(nice_for_relative_share(1e-9, 100.0), kMaxNice);
}

TEST(NiceForShare, RealizedRatioTracksRequest)
{
    // The realized weight ratio should be within one nice step of the
    // requested share ratio across the representable range.
    for (double share : {0.9, 0.7, 0.5, 0.3, 0.2, 0.1, 0.05}) {
        const int nice = nice_for_relative_share(share, 1.0);
        const double realized =
            weight_for_nice(nice) / weight_for_nice(0);
        EXPECT_LT(realized / share, 1.35) << "share " << share;
        EXPECT_GT(realized / share, 0.75) << "share " << share;
    }
}

} // namespace
} // namespace ppm::sched

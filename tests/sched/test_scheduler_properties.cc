/**
 * @file
 * Property tests for the proportional-share scheduler: conservation,
 * fairness and cap invariants over randomized task sets (TEST_P
 * sweeps, cf. the repository's testing conventions).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hw/platform.hh"
#include "sched/nice.hh"
#include "sched/scheduler.hh"
#include "tests/test_util.hh"

namespace ppm::sched {
namespace {

class SchedulerPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(SchedulerPropertyTest, ConservationAndFairness)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
    hw::Chip chip = hw::tc2_chip();
    for (ClusterId v = 0; v < chip.num_clusters(); ++v) {
        chip.cluster(v).set_level(static_cast<int>(rng.uniform_int(
            0, chip.cluster(v).vf().levels() - 1)));
    }
    Scheduler sched(&chip, {});

    const int n = 2 + static_cast<int>(rng.uniform_int(0, 8));
    std::vector<std::unique_ptr<workload::Task>> tasks;
    for (TaskId t = 0; t < n; ++t) {
        // Mix of greedy and self-paced tasks with random demands.
        const double demand = rng.uniform(50.0, 900.0);
        const double pace =
            rng.chance(0.4) ? rng.uniform(5.0, 30.0) : 0.0;
        std::string name = "t";
        name += std::to_string(t);
        tasks.push_back(std::make_unique<workload::Task>(
            t, test::steady_spec(name, 1, demand, 1.8, 20.0, pace)));
        sched.add_task(tasks.back().get(),
                       static_cast<CoreId>(
                           rng.uniform_int(0, chip.num_cores() - 1)));
        sched.set_nice(t, static_cast<int>(rng.uniform_int(-5, 10)));
        if (rng.chance(0.2))
            sched.set_active(t, false);
    }

    for (SimTime now = 0; now < kSecond; now += kMillisecond)
        sched.tick(now, kMillisecond);

    // Per-core conservation: granted cycles never exceed capacity,
    // and a core with a greedy active task is fully utilized.
    for (CoreId c = 0; c < chip.num_cores(); ++c) {
        EXPECT_LE(sched.core_utilization(c), 1.0 + 1e-9);
        EXPECT_GE(sched.core_utilization(c), 0.0);
        bool has_greedy = false;
        for (TaskId t : sched.tasks_on(c)) {
            if (tasks[static_cast<std::size_t>(t)]
                    ->spec().self_pace_hr <= 0.0)
                has_greedy = true;
        }
        if (has_greedy && chip.core_supply(c) > 0.0) {
            EXPECT_NEAR(sched.core_utilization(c), 1.0, 1e-6);
        }
    }

    // Inactive tasks never progress.
    for (TaskId t = 0; t < n; ++t) {
        if (!sched.active(t)) {
            EXPECT_DOUBLE_EQ(tasks[static_cast<std::size_t>(t)]
                                 ->total_cycles(), 0.0);
        }
    }

    // Weight fairness between greedy co-runners on the same core:
    // cycle ratios track nice-weight ratios.
    for (CoreId c = 0; c < chip.num_cores(); ++c) {
        std::vector<TaskId> greedy;
        for (TaskId t : sched.tasks_on(c)) {
            if (tasks[static_cast<std::size_t>(t)]
                    ->spec().self_pace_hr <= 0.0)
                greedy.push_back(t);
        }
        for (std::size_t i = 1; i < greedy.size(); ++i) {
            const double cyc_a = tasks[static_cast<std::size_t>(
                greedy[0])]->total_cycles();
            const double cyc_b = tasks[static_cast<std::size_t>(
                greedy[i])]->total_cycles();
            if (cyc_b <= 0.0)
                continue;
            const double weight_ratio =
                weight_for_nice(sched.nice_of(greedy[0]))
                / weight_for_nice(sched.nice_of(greedy[i]));
            EXPECT_NEAR(cyc_a / cyc_b, weight_ratio,
                        0.05 * weight_ratio)
                << "core " << c;
        }
    }
}

TEST_P(SchedulerPropertyTest, SelfPacedNeverExceedsPace)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
    hw::Chip chip = hw::tc2_chip();
    chip.cluster(0).set_level(7);
    Scheduler sched(&chip, {});
    const double pace = rng.uniform(5.0, 40.0);
    const double demand = rng.uniform(100.0, 600.0);
    workload::Task task(
        0, test::steady_spec("p", 1, demand, 1.8, 20.0, pace));
    sched.add_task(&task, 0);
    for (SimTime now = 0; now < 2 * kSecond; now += kMillisecond)
        sched.tick(now, kMillisecond);
    // Work per hb = demand/20 PU-s; pace hb/s for 2 s.
    const Cycles expected =
        pace * 2.0 * demand / 20.0 * kCyclesPerPuSecond;
    EXPECT_LE(task.total_cycles(), expected * 1.001);
    EXPECT_GE(task.total_cycles(), expected * 0.95);
}

INSTANTIATE_TEST_SUITE_P(RandomTaskSets, SchedulerPropertyTest,
                         ::testing::Range(1, 16));

} // namespace
} // namespace ppm::sched

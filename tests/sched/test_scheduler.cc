/** @file Unit tests for the proportional-share scheduler substrate. */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "sched/scheduler.hh"
#include "tests/test_util.hh"

namespace ppm::sched {
namespace {

class SchedulerTest : public ::testing::Test
{
  protected:
    SchedulerTest() : chip_(hw::tc2_chip()), sched_(&chip_, {}) {}

    workload::Task& add(const workload::TaskSpec& spec, CoreId core)
    {
        tasks_.push_back(std::make_unique<workload::Task>(
            static_cast<TaskId>(tasks_.size()), spec));
        sched_.add_task(tasks_.back().get(), core);
        return *tasks_.back();
    }

    void run(SimTime from, SimTime until, SimTime dt = kMillisecond)
    {
        for (SimTime t = from; t < until; t += dt)
            sched_.tick(t, dt);
    }

    hw::Chip chip_;
    Scheduler sched_;
    std::vector<std::unique_ptr<workload::Task>> tasks_;
};

TEST_F(SchedulerTest, SingleGreedyTaskConsumesWholeCore)
{
    add(test::steady_spec("t0", 1, 500.0), 0);
    chip_.cluster(0).set_level(7);  // 1000 PU.
    run(0, kSecond);
    // A greedy task alone eats the entire supply regardless of demand.
    EXPECT_NEAR(tasks_[0]->total_cycles(), 1000.0 * kCyclesPerPuSecond,
                1e6);
    EXPECT_NEAR(sched_.core_utilization(0), 1.0, 1e-9);
}

TEST_F(SchedulerTest, EqualWeightsSplitEvenly)
{
    add(test::steady_spec("a", 1, 600.0), 0);
    add(test::steady_spec("b", 1, 600.0), 0);
    chip_.cluster(0).set_level(7);
    run(0, kSecond);
    EXPECT_NEAR(tasks_[0]->total_cycles(), tasks_[1]->total_cycles(),
                1e3);
    EXPECT_NEAR(tasks_[0]->total_cycles(),
                500.0 * kCyclesPerPuSecond, 1e6);
}

TEST_F(SchedulerTest, NiceWeightsSkewShares)
{
    add(test::steady_spec("fav", 1, 900.0), 0);
    add(test::steady_spec("poor", 1, 900.0), 0);
    sched_.set_nice(0, 0);
    sched_.set_nice(1, 5);  // weight 335 vs 1024.
    chip_.cluster(0).set_level(7);
    run(0, kSecond);
    const double ratio =
        tasks_[0]->total_cycles() / tasks_[1]->total_cycles();
    EXPECT_NEAR(ratio, 1024.0 / 335.0, 0.01);
}

TEST_F(SchedulerTest, SelfPacedTaskReturnsSlack)
{
    // A self-paced task at its target rate leaves the rest to the
    // greedy co-runner (water-filling).
    add(test::steady_spec("paced", 1, 200.0, 1.6, 20.0,
                          /*self_pace=*/20.0), 0);
    add(test::steady_spec("greedy", 1, 900.0), 0);
    chip_.cluster(0).set_level(7);
    run(0, kSecond);
    // Paced task: 20 hb/s * (200/20) PU-s per hb = 200 PU-seconds.
    EXPECT_NEAR(tasks_[0]->total_cycles(),
                200.0 * kCyclesPerPuSecond, 2e6);
    EXPECT_NEAR(tasks_[1]->total_cycles(),
                800.0 * kCyclesPerPuSecond, 2e6);
}

TEST_F(SchedulerTest, SelfPacedAloneIdlesCore)
{
    add(test::steady_spec("paced", 1, 200.0, 1.6, 20.0, 20.0), 0);
    chip_.cluster(0).set_level(7);
    run(0, kSecond);
    EXPECT_NEAR(sched_.core_utilization(0), 0.2, 0.01);
}

TEST_F(SchedulerTest, MigrationChargesPenalty)
{
    add(test::steady_spec("t", 1, 500.0), 0);
    chip_.cluster(0).set_level(7);
    run(0, 100 * kMillisecond);
    const Cycles before = tasks_[0]->total_cycles();
    // Cross-cluster migration at min LITTLE frequency costs 2.16 ms.
    chip_.cluster(0).set_level(0);
    const SimTime cost = sched_.migrate(0, 3, 100 * kMillisecond);
    EXPECT_EQ(cost, 2160);
    EXPECT_EQ(sched_.core_of(0), 3);
    EXPECT_EQ(sched_.migrations(), 1);
    // The task is blocked during the penalty: tick 2 ms, no progress.
    sched_.tick(100 * kMillisecond, 2 * kMillisecond);
    EXPECT_DOUBLE_EQ(tasks_[0]->total_cycles(), before);
    // After the penalty elapses it runs on the big core.
    run(103 * kMillisecond, 203 * kMillisecond);
    EXPECT_GT(tasks_[0]->total_cycles(), before);
}

TEST_F(SchedulerTest, MigrateToSameCoreIsFree)
{
    add(test::steady_spec("t", 1, 500.0), 2);
    EXPECT_EQ(sched_.migrate(0, 2, 0), 0);
    EXPECT_EQ(sched_.migrations(), 0);
}

TEST_F(SchedulerTest, TasksOnReportsPlacement)
{
    add(test::steady_spec("a", 1, 100.0), 0);
    add(test::steady_spec("b", 1, 100.0), 0);
    add(test::steady_spec("c", 1, 100.0), 4);
    EXPECT_EQ(sched_.tasks_on(0).size(), 2u);
    EXPECT_EQ(sched_.tasks_on(4).size(), 1u);
    EXPECT_TRUE(sched_.tasks_on(1).empty());
}

TEST_F(SchedulerTest, GatedClusterStarvesTasks)
{
    add(test::steady_spec("t", 1, 500.0), 0);
    chip_.cluster(0).set_powered(false);
    run(0, 100 * kMillisecond);
    EXPECT_DOUBLE_EQ(tasks_[0]->total_cycles(), 0.0);
    EXPECT_DOUBLE_EQ(sched_.core_utilization(0), 0.0);
}

TEST_F(SchedulerTest, LoadSignalSaturatesForGreedyTask)
{
    add(test::steady_spec("t", 1, 500.0), 0);
    chip_.cluster(0).set_level(7);
    run(0, kSecond);
    EXPECT_GT(sched_.task_load(0), 0.99);
    EXPECT_GT(sched_.task_cpu_share(0), 0.99);
}

TEST_F(SchedulerTest, CpuShareReflectsContention)
{
    add(test::steady_spec("a", 1, 900.0), 0);
    add(test::steady_spec("b", 1, 900.0), 0);
    chip_.cluster(0).set_level(7);
    run(0, kSecond);
    EXPECT_NEAR(sched_.task_cpu_share(0), 0.5, 0.02);
    EXPECT_NEAR(sched_.task_cpu_share(1), 0.5, 0.02);
    // Both remain fully runnable.
    EXPECT_GT(sched_.task_load(0), 0.99);
}

TEST_F(SchedulerTest, SupplyLastTracksAllocation)
{
    add(test::steady_spec("a", 1, 900.0), 0);
    add(test::steady_spec("b", 1, 900.0), 0);
    chip_.cluster(0).set_level(7);  // 1000 PU.
    run(0, 100 * kMillisecond);
    EXPECT_NEAR(sched_.task_supply_last(0), 500.0, 1.0);
    EXPECT_NEAR(sched_.task_supply_last(1), 500.0, 1.0);
}

TEST_F(SchedulerTest, BigCoreRunsFasterPerHeartbeat)
{
    // Same spec on a LITTLE and a big core: the big core emits
    // speedup-times more heartbeats per cycle.
    add(test::steady_spec("little", 1, 500.0, 2.0), 0);
    add(test::steady_spec("big", 1, 500.0, 2.0), 3);
    chip_.cluster(0).set_level(7);  // 1000 PU.
    chip_.cluster(1).set_level(3);  // 800 PU.
    run(0, kSecond);
    const double hb_little = tasks_[0]->total_heartbeats();
    const double hb_big = tasks_[1]->total_heartbeats();
    // LITTLE: 1000 PU / (500/20) -> 40 hb; big: 800 / (250/20) -> 64.
    EXPECT_NEAR(hb_little, 40.0, 0.5);
    EXPECT_NEAR(hb_big, 64.0, 0.5);
}

} // namespace
} // namespace ppm::sched

/** @file Unit tests for the worker pool under the sweep runner. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hh"

namespace ppm {
namespace {

TEST(ThreadPool, ResolveJobsDefaultsToHardwareConcurrency)
{
    const int resolved = ThreadPool::resolve_jobs(0);
    EXPECT_GE(resolved, 1);
    EXPECT_EQ(ThreadPool::resolve_jobs(-3), resolved);
    EXPECT_EQ(ThreadPool::resolve_jobs(7), 7);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&counter]() { ++counter; }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, FuturesPreserveSubmissionOrderValues)
{
    // Completion order is arbitrary, but reading the futures in
    // submission order must yield each task's own result -- the
    // property the sweep's fixed-order reduction rests on.
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SingleThreadFallbackStillCompletes)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([i]() { return i; }));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 1; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("cell failed"); });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([&counter]() {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                ++counter;
            }));
        }
    }
    // Every future is satisfied even though the pool died right away.
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 32);
}

} // namespace
} // namespace ppm

/** @file Unit tests for the worker pool under the sweep runner. */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_pool.hh"

namespace ppm {
namespace {

TEST(ThreadPool, ResolveJobsDefaultsToHardwareConcurrency)
{
    const int resolved = ThreadPool::resolve_jobs(0);
    EXPECT_GE(resolved, 1);
    EXPECT_EQ(ThreadPool::resolve_jobs(-3), resolved);
    EXPECT_EQ(ThreadPool::resolve_jobs(7), 7);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 64; ++i)
        futures.push_back(pool.submit([&counter]() { ++counter; }));
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPool, FuturesPreserveSubmissionOrderValues)
{
    // Completion order is arbitrary, but reading the futures in
    // submission order must yield each task's own result -- the
    // property the sweep's fixed-order reduction rests on.
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPool, SingleThreadFallbackStillCompletes)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 16; ++i)
        futures.push_back(pool.submit([i]() { return i; }));
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto ok = pool.submit([]() { return 1; });
    auto bad = pool.submit(
        []() -> int { throw std::runtime_error("cell failed"); });
    EXPECT_EQ(ok.get(), 1);
    EXPECT_THROW(bad.get(), std::runtime_error);
    // The pool survives a throwing task.
    EXPECT_EQ(pool.submit([]() { return 2; }).get(), 2);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks)
{
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            futures.push_back(pool.submit([&counter]() {
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
                ++counter;
            }));
        }
    }
    // Every future is satisfied even though the pool died right away.
    for (auto& f : futures)
        f.get();
    EXPECT_EQ(counter.load(), 32);
}

/** Record the chunk ranges for_chunks() hands out, in call order. */
std::vector<std::pair<std::size_t, std::size_t>>
collect_chunks(ThreadPool* pool, std::size_t n, std::size_t grain)
{
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::mutex mu;
    ThreadPool::for_chunks(pool, n, grain,
                           [&](std::size_t begin, std::size_t end) {
                               std::lock_guard<std::mutex> lock(mu);
                               chunks.emplace_back(begin, end);
                           });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

TEST(ThreadPool, ForChunksCoversRangeExactlyOnce)
{
    ThreadPool pool(4);
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                          std::size_t{8}, std::size_t{100}}) {
        const auto chunks = collect_chunks(&pool, n, 8);
        std::size_t expect_begin = 0;
        for (const auto& [begin, end] : chunks) {
            EXPECT_EQ(begin, expect_begin);
            EXPECT_LT(begin, end);
            expect_begin = end;
        }
        EXPECT_EQ(expect_begin, n) << "n=" << n;
    }
    // A zero grain is normalized to 1 instead of dividing by zero.
    EXPECT_EQ(collect_chunks(&pool, 5, 0).size(), 5u);
}

TEST(ThreadPool, ForChunksBoundariesIndependentOfWorkerCount)
{
    // The determinism contract of the clearing engine: the chunk
    // decomposition is a pure function of (n, grain), so the inline
    // path and pools of any size hand out identical ranges.
    const auto inline_chunks = collect_chunks(nullptr, 100, 7);
    EXPECT_EQ(inline_chunks.size(), 15u);
    for (int jobs : {1, 2, 3, 8}) {
        ThreadPool pool(jobs);
        EXPECT_EQ(collect_chunks(&pool, 100, 7), inline_chunks)
            << "jobs=" << jobs;
    }
}

TEST(ThreadPool, ForChunksPropagatesWorkerException)
{
    ThreadPool pool(3);
    EXPECT_THROW(
        ThreadPool::for_chunks(&pool, 64, 4,
                               [](std::size_t begin, std::size_t) {
                                   if (begin == 32)
                                       throw std::runtime_error("chunk");
                               }),
        std::runtime_error);
    // The pool survives for later work.
    EXPECT_EQ(pool.submit([]() { return 3; }).get(), 3);
}

TEST(ThreadPool, OnWorkerThreadOnlyInsideOwnWorkers)
{
    ThreadPool pool(2);
    ThreadPool other(2);
    EXPECT_FALSE(pool.on_worker_thread());
    EXPECT_TRUE(pool.submit([&]() {
                        return pool.on_worker_thread() &&
                               !other.on_worker_thread();
                    })
                    .get());
}

TEST(ThreadPool, NestedForChunksOnSamePoolRunsInline)
{
    // The fleet shards a run over the pool and each shard's market
    // may itself call for_chunks() on the SAME pool for clearing.
    // The nested call must run inline on the worker (never re-queue
    // into the pool it is already draining), or two shards could
    // deadlock waiting on each other's queued chunks.
    ThreadPool pool(2);
    std::atomic<int> inner_calls{0};
    ThreadPool::for_chunks(
        &pool, 4, 1, [&](std::size_t, std::size_t) {
            EXPECT_TRUE(pool.on_worker_thread());
            ThreadPool::for_chunks(&pool, 8, 2,
                                   [&](std::size_t, std::size_t) {
                                       ++inner_calls;
                                   });
        });
    // 4 outer chunks x 4 inner chunks, all completed without deadlock.
    EXPECT_EQ(inner_calls.load(), 16);
}

} // namespace
} // namespace ppm

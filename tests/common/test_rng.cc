/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace ppm {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next_u64() == b.next_u64() ? 1 : 0;
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = r.uniform();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double x = r.uniform(-3.0, 5.0);
        EXPECT_GE(x, -3.0);
        EXPECT_LT(x, 5.0);
    }
}

TEST(Rng, UniformMeanIsCentred)
{
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng r(3);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto x = r.uniform_int(2, 5);
        EXPECT_GE(x, 2);
        EXPECT_LE(x, 5);
        saw_lo = saw_lo || x == 2;
        saw_hi = saw_hi || x == 5;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntSingleton)
{
    Rng r(3);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMoments)
{
    Rng r(5);
    const int n = 100000;
    double sum = 0.0;
    double sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng r(5);
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += r.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ChanceProbability)
{
    Rng r(9);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

} // namespace
} // namespace ppm

/** @file Unit tests for the table/CSV renderer. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace ppm {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"A", "Metric"});
    t.add_row({"workload-1", "3"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    // Header, separator, one data row.
    EXPECT_NE(out.find("A           Metric"), std::string::npos);
    EXPECT_NE(out.find("workload-1  3"), std::string::npos);
}

TEST(Table, RowCount)
{
    Table t({"x"});
    EXPECT_EQ(t.rows(), 0u);
    t.add_row({"1"});
    t.add_row({"2"});
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"name", "note"});
    t.add_row({"a,b", "say \"hi\""});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_NE(os.str().find("\"a,b\""), std::string::npos);
    EXPECT_NE(os.str().find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CsvPlainValuesUnquoted)
{
    Table t({"k"});
    t.add_row({"simple"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "k\nsimple\n");
}

TEST(FmtDouble, Digits)
{
    EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
    EXPECT_EQ(fmt_double(3.0, 0), "3");
    EXPECT_EQ(fmt_double(-1.005, 1), "-1.0");
}

TEST(FmtPercent, FractionsRendered)
{
    EXPECT_EQ(fmt_percent(0.123, 1), "12.3%");
    EXPECT_EQ(fmt_percent(1.0, 0), "100%");
    EXPECT_EQ(fmt_percent(0.0, 1), "0.0%");
}

} // namespace
} // namespace ppm

/** @file Unit tests for the logging / error-reporting facility. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace ppm {
namespace {

TEST(Logging, LevelRoundTrip)
{
    const LogLevel before = log_level();
    set_log_level(LogLevel::kDebug);
    EXPECT_EQ(log_level(), LogLevel::kDebug);
    set_log_level(LogLevel::kSilent);
    EXPECT_EQ(log_level(), LogLevel::kSilent);
    set_log_level(before);
}

TEST(Logging, SuppressedMessagesDoNotCrash)
{
    const LogLevel before = log_level();
    set_log_level(LogLevel::kSilent);
    inform("suppressed %d", 1);
    warn("suppressed %s", "two");
    debug("suppressed %f", 3.0);
    set_log_level(before);
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("user error %d", 42),
                ::testing::ExitedWithCode(1), "user error 42");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("invariant %s broke", "x"), "invariant x broke");
}

TEST(LoggingDeath, AssertMacroReportsExpression)
{
    const int x = 1;
    EXPECT_DEATH(PPM_ASSERT(x == 2, "x must be two"), "x == 2");
}

} // namespace
} // namespace ppm

/** @file Unit tests for the statistics helpers. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace ppm {
namespace {

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample)
{
    OnlineStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MeanAndVariance)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues)
{
    OnlineStats s;
    s.add(-2.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(OnlineStats, ResetClears)
{
    OnlineStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(DutyCycle, EmptyIsZero)
{
    DutyCycle d;
    EXPECT_DOUBLE_EQ(d.fraction(), 0.0);
    EXPECT_EQ(d.total_time(), 0);
}

TEST(DutyCycle, MixedConditions)
{
    DutyCycle d;
    d.add(true, 30);
    d.add(false, 70);
    EXPECT_DOUBLE_EQ(d.fraction(), 0.3);
    EXPECT_EQ(d.total_time(), 100);
    EXPECT_EQ(d.true_time(), 30);
}

TEST(DutyCycle, AlwaysTrue)
{
    DutyCycle d;
    d.add(true, 10);
    d.add(true, 10);
    EXPECT_DOUBLE_EQ(d.fraction(), 1.0);
}

TEST(DutyCycle, ResetClears)
{
    DutyCycle d;
    d.add(true, 10);
    d.reset();
    EXPECT_DOUBLE_EQ(d.fraction(), 0.0);
}

TEST(WindowRate, RateWithinWindow)
{
    WindowRate w(kSecond);
    // 10 events spread over 1 s -> 10 events/s.
    for (int i = 1; i <= 10; ++i)
        w.add(i * 100 * kMillisecond, 1.0);
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 10.0);
}

TEST(WindowRate, OldSamplesEvicted)
{
    WindowRate w(kSecond);
    w.add(100 * kMillisecond, 5.0);
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 5.0);
    // 2 s later the sample is outside the window.
    EXPECT_DOUBLE_EQ(w.rate(2 * kSecond + 100 * kMillisecond), 0.0);
}

TEST(WindowRate, FractionalCounts)
{
    WindowRate w(kSecond);
    w.add(500 * kMillisecond, 0.25);
    w.add(kSecond, 0.25);
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 0.5);
}

TEST(WindowRate, BoundaryEviction)
{
    WindowRate w(kSecond);
    w.add(0, 1.0);
    // A sample exactly at (now - window) is evicted.
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 0.0);
}

TEST(Percentile, EmptyVector)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, ClampsOutOfRangeP)
{
    std::vector<double> v{1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, -10.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 200.0), 2.0);
}

} // namespace
} // namespace ppm

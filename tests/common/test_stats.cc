/** @file Unit tests for the statistics helpers. */

#include <bit>
#include <cstdint>
#include <deque>
#include <utility>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace ppm {
namespace {

TEST(OnlineStats, EmptyIsZero)
{
    OnlineStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(OnlineStats, SingleSample)
{
    OnlineStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(OnlineStats, MeanAndVariance)
{
    OnlineStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, NegativeValues)
{
    OnlineStats s;
    s.add(-2.0);
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
}

TEST(OnlineStats, ResetClears)
{
    OnlineStats s;
    s.add(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(DutyCycle, EmptyIsZero)
{
    DutyCycle d;
    EXPECT_DOUBLE_EQ(d.fraction(), 0.0);
    EXPECT_EQ(d.total_time(), 0);
}

TEST(DutyCycle, MixedConditions)
{
    DutyCycle d;
    d.add(true, 30);
    d.add(false, 70);
    EXPECT_DOUBLE_EQ(d.fraction(), 0.3);
    EXPECT_EQ(d.total_time(), 100);
    EXPECT_EQ(d.true_time(), 30);
}

TEST(DutyCycle, AlwaysTrue)
{
    DutyCycle d;
    d.add(true, 10);
    d.add(true, 10);
    EXPECT_DOUBLE_EQ(d.fraction(), 1.0);
}

TEST(DutyCycle, ResetClears)
{
    DutyCycle d;
    d.add(true, 10);
    d.reset();
    EXPECT_DOUBLE_EQ(d.fraction(), 0.0);
}

TEST(WindowRate, RateWithinWindow)
{
    WindowRate w(kSecond);
    // 10 events spread over 1 s -> 10 events/s.
    for (int i = 1; i <= 10; ++i)
        w.add(i * 100 * kMillisecond, 1.0);
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 10.0);
}

TEST(WindowRate, OldSamplesEvicted)
{
    WindowRate w(kSecond);
    w.add(100 * kMillisecond, 5.0);
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 5.0);
    // 2 s later the sample is outside the window.
    EXPECT_DOUBLE_EQ(w.rate(2 * kSecond + 100 * kMillisecond), 0.0);
}

TEST(WindowRate, FractionalCounts)
{
    WindowRate w(kSecond);
    w.add(500 * kMillisecond, 0.25);
    w.add(kSecond, 0.25);
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 0.5);
}

TEST(WindowRate, BoundaryEviction)
{
    WindowRate w(kSecond);
    w.add(0, 1.0);
    // A sample exactly at (now - window) is evicted.
    EXPECT_DOUBLE_EQ(w.rate(kSecond), 0.0);
}

TEST(Percentile, EmptyVector)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(Percentile, MedianAndExtremes)
{
    std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
}

TEST(Percentile, ClampsOutOfRangeP)
{
    std::vector<double> v{1.0, 2.0};
    EXPECT_DOUBLE_EQ(percentile(v, -10.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 200.0), 2.0);
}

/**
 * Reference model for WindowRate: a literal per-sample deque with the
 * same FIFO eviction and "-= each evicted count" arithmetic.  The
 * run-coalescing ring must match it bit for bit on any add pattern.
 */
class NaiveWindowRate
{
  public:
    explicit NaiveWindowRate(SimTime window) : window_(window) {}

    void add(SimTime now, double count)
    {
        evict(now);
        samples_.push_back({now, count});
        sum_ += count;
    }

    double rate(SimTime now)
    {
        evict(now);
        return sum_ / to_seconds(window_);
    }

  private:
    void evict(SimTime now)
    {
        while (!samples_.empty() &&
               samples_.front().first <= now - window_) {
            sum_ -= samples_.front().second;
            samples_.pop_front();
        }
        if (samples_.empty())
            sum_ = 0.0;
    }

    SimTime window_;
    std::deque<std::pair<SimTime, double>> samples_;
    double sum_ = 0.0;
};

TEST(WindowRate, CoalescedRingMatchesPerSampleRingBitForBit)
{
    WindowRate w(100 * kMillisecond);
    NaiveWindowRate naive(100 * kMillisecond);
    // Mixed pattern: uniform stretches (coalescible), value changes,
    // stride changes, repeated timestamps and idle gaps.
    SimTime t = 0;
    const auto feed = [&](SimTime dt, double c, int n) {
        for (int i = 0; i < n; ++i) {
            t += dt;
            w.add(t, c);
            naive.add(t, c);
            const double a = w.rate(t);
            const double b = naive.rate(t);
            ASSERT_EQ(std::bit_cast<std::uint64_t>(a),
                      std::bit_cast<std::uint64_t>(b))
                << "diverged at t=" << t;
        }
    };
    feed(kMillisecond, 0.3, 250);       // Long uniform run.
    feed(kMillisecond, 0.7, 40);        // Value change.
    feed(2 * kMillisecond, 0.7, 40);    // Stride change.
    feed(0, 0.7, 3);                    // Repeated timestamps.
    t += 500 * kMillisecond;            // Idle gap: full eviction.
    feed(kMillisecond, 0.1, 150);
}

TEST(WindowRate, ReplaySteadyDetectsUniformFullWindow)
{
    const SimTime window = 100 * kMillisecond;
    const SimTime dt = kMillisecond;
    WindowRate w(window);
    SimTime t = 0;
    for (int i = 0; i < 100; ++i) {
        t += dt;
        w.add(t, 0.25);
    }
    // Window full of bit-identical uniform samples: steady.
    EXPECT_TRUE(w.replay_steady(t, dt, 0.25));
    // A different count, stride or phase is not steady.
    EXPECT_FALSE(w.replay_steady(t, dt, 0.26));
    EXPECT_FALSE(w.replay_steady(t, 2 * dt, 0.25));
    EXPECT_FALSE(w.replay_steady(t + dt, dt, 0.25));
}

TEST(WindowRate, AdvanceSteadyMatchesExplicitAdds)
{
    const SimTime window = 100 * kMillisecond;
    const SimTime dt = kMillisecond;
    WindowRate fast(window);
    WindowRate slow(window);
    SimTime t = 0;
    for (int i = 0; i < 100; ++i) {
        t += dt;
        fast.add(t, 0.25);
        slow.add(t, 0.25);
    }
    ASSERT_TRUE(fast.replay_steady(t, dt, 0.25));
    const long n = 5000;
    fast.advance_steady(n * dt);
    for (long i = 0; i < n; ++i)
        slow.add(t + (i + 1) * dt, 0.25);
    const double a = fast.rate(t + n * dt);
    const double b = slow.rate(t + n * dt);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a),
              std::bit_cast<std::uint64_t>(b));
}

TEST(WindowRate, PartiallyFilledWindowIsNotSteady)
{
    const SimTime window = 100 * kMillisecond;
    const SimTime dt = kMillisecond;
    WindowRate w(window);
    SimTime t = 0;
    for (int i = 0; i < 50; ++i) {  // Only half the window.
        t += dt;
        w.add(t, 0.25);
    }
    EXPECT_FALSE(w.replay_steady(t, dt, 0.25));
}

} // namespace
} // namespace ppm

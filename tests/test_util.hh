/**
 * @file
 * Shared helpers for the test suite.
 */

#ifndef PPM_TESTS_TEST_UTIL_HH
#define PPM_TESTS_TEST_UTIL_HH

#include <string>

#include "workload/task.hh"

namespace ppm::test {

/**
 * A single-phase task spec whose demand on a LITTLE core is exactly
 * `demand_little` PU at the target heart rate.  Thin alias over the
 * library's workload::steady_task_spec.
 */
inline workload::TaskSpec
steady_spec(const std::string& name, int priority, Pu demand_little,
            double speedup = 1.6, double target_hr = 20.0,
            double self_pace = 0.0)
{
    return workload::steady_task_spec(name, priority, demand_little,
                                      speedup, target_hr, self_pace);
}

} // namespace ppm::test

#endif // PPM_TESTS_TEST_UTIL_HH

/**
 * @file
 * Unit tests for the LBT module: the perf(M) relation, steady-state
 * estimation, and the load-balancing / migration proposal logic in
 * both performance and power-efficiency modes.
 */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "market/lbt.hh"
#include "market/market.hh"
#include "tests/market/market_test_util.hh"

namespace ppm::market {
namespace {

TEST(PerfRelation, ImprovementWithoutDegradation)
{
    // Task 1 improves; no higher-priority task degrades.
    EXPECT_TRUE(perf_improves({1.0, 0.9}, {1.0, 0.5}, {2, 1}));
}

TEST(PerfRelation, ImprovementBlockedByHigherPriorityLoss)
{
    // Task 1 improves but priority-2 task 0 degrades.
    EXPECT_FALSE(perf_improves({0.5, 0.9}, {1.0, 0.5}, {2, 1}));
}

TEST(PerfRelation, LowerPriorityLossIsAcceptable)
{
    // Task 0 (high priority) improves at task 1's expense.
    EXPECT_TRUE(perf_improves({0.9, 0.2}, {0.5, 1.0}, {2, 1}));
}

TEST(PerfRelation, NoChangeIsNotImprovement)
{
    EXPECT_FALSE(perf_improves({1.0, 1.0}, {1.0, 1.0}, {1, 1}));
}

TEST(PerfRelation, TinyChangesWithinEpsilonIgnored)
{
    EXPECT_FALSE(perf_improves({1.0, 0.51}, {1.0, 0.5}, {1, 1}));
}

TEST(PerfRelation, AtLeastIsMirrorOfImproves)
{
    EXPECT_TRUE(perf_at_least({1.0, 1.0}, {1.0, 1.0}, {1, 1}));
    EXPECT_TRUE(perf_at_least({1.0, 0.9}, {1.0, 0.5}, {2, 1}));
    EXPECT_FALSE(perf_at_least({1.0, 0.5}, {1.0, 0.9}, {2, 1}));
}

TEST(PerfRelation, EqualPriorityTradeIsImprovementBothWays)
{
    // With equal priorities, swapping who wins counts as an
    // improvement for the winner in each direction (partial order).
    EXPECT_TRUE(perf_improves({1.0, 0.5}, {0.5, 1.0}, {1, 1}));
    EXPECT_TRUE(perf_improves({0.5, 1.0}, {1.0, 0.5}, {1, 1}));
}

/** Fixture driving a real market on the TC2-like chip. */
class LbtTest : public ::testing::Test
{
  protected:
    LbtTest() : chip_(hw::tc2_chip())
    {
        PpmConfig cfg;
        cfg.w_tdp = 100.0;  // Effectively unconstrained.
        cfg.w_th = 99.0;
        market_ = std::make_unique<Market>(&chip_, cfg);
    }

    void make_lbt(double big_speedup = 1.6)
    {
        lbt_ = std::make_unique<LbtModule>(
            market_.get(),
            [this, big_speedup](TaskId t, ClusterId v) {
                const auto from = chip_
                    .cluster(chip_.cluster_of(market_->task(t).core))
                    .type().core_class;
                const auto to = chip_.cluster(v).type().core_class;
                const Pu d = market_->task(t).demand;
                if (from == to)
                    return d;
                return to == hw::CoreClass::kBig ? d / big_speedup
                                                 : d * big_speedup;
            });
        // LITTLE PUs are cheap, big PUs are ~4x dearer (TC2 model).
        lbt_->set_power_cost({1.0, 4.0});
    }

    /** Run rounds with a fixed benign power reading. */
    void settle(int rounds)
    {
        for (int i = 0; i < rounds; ++i) {
            market_->set_cluster_power(0, 1.0);
            market_->set_cluster_power(1, 1.0);
            market_->round();
        }
    }

    hw::Chip chip_;
    std::unique_ptr<Market> market_;
    std::unique_ptr<LbtModule> lbt_;
};

TEST_F(LbtTest, PerformanceModeMigratesStarvedTaskToBig)
{
    // Two 600 PU tasks on one LITTLE core can never both be met
    // (max 1000 PU): migration to the idle big cluster is proposed.
    market_->add_task(0, 1, 0);
    market_->add_task(1, 1, 0);
    market_->set_demand(0, 600.0);
    market_->set_demand(1, 600.0);
    make_lbt();
    settle(40);
    const Movement mv = lbt_->propose_migration();
    ASSERT_TRUE(mv.valid());
    EXPECT_EQ(chip_.cluster_of(mv.to), 1);
    EXPECT_EQ(mv.from, 0);
}

TEST_F(LbtTest, PerformanceModePrefersHigherPriorityRelief)
{
    // Both tasks starve, but only a movement that lifts the
    // higher-priority task without hurting it further is selected.
    market_->add_task(0, 5, 0);
    market_->add_task(1, 1, 0);
    market_->set_demand(0, 800.0);
    market_->set_demand(1, 800.0);
    make_lbt();
    settle(40);
    const Movement mv = lbt_->propose_migration();
    ASSERT_TRUE(mv.valid());
    const LbtModule::Estimate base = lbt_->estimate_current();
    const LbtModule::Estimate est = lbt_->estimate_with(mv);
    EXPECT_TRUE(perf_improves(est.ratio, base.ratio, {5, 1}));
}

TEST_F(LbtTest, LoadBalanceSpreadsWithinCluster)
{
    // Two satisfied tasks share LITTLE core 0 while core 1 idles:
    // balancing lowers the steady V-F level, hence the spending.
    market_->add_task(0, 1, 0);
    market_->add_task(1, 1, 0);
    market_->set_demand(0, 300.0);
    market_->set_demand(1, 300.0);
    make_lbt();
    settle(60);
    const Movement mv = lbt_->propose_load_balance();
    ASSERT_TRUE(mv.valid());
    EXPECT_EQ(chip_.cluster_of(mv.to), 0);  // Same cluster.
    EXPECT_NE(mv.to, mv.from);
    const LbtModule::Estimate base = lbt_->estimate_current();
    const LbtModule::Estimate est = lbt_->estimate_with(mv);
    EXPECT_LT(est.spend, base.spend);
}

TEST_F(LbtTest, PowerModeRepatriatesBigTaskToLittle)
{
    // A small, satisfied task alone on the big cluster: moving it to
    // the idle LITTLE cluster cuts the power-weighted spending.
    market_->add_task(0, 1, 3);  // Big core.
    market_->set_demand(0, 200.0);
    make_lbt();
    settle(40);
    const Movement mv = lbt_->propose_migration();
    ASSERT_TRUE(mv.valid());
    EXPECT_EQ(mv.task, 0);
    EXPECT_EQ(chip_.cluster_of(mv.to), 0);
}

TEST_F(LbtTest, NoMovementWhenMappingAlreadyGood)
{
    // One satisfied task per LITTLE core, nothing to improve: the
    // LITTLE PUs are already the cheapest.
    market_->add_task(0, 1, 0);
    market_->add_task(1, 1, 1);
    market_->add_task(2, 1, 2);
    market_->set_demand(0, 300.0);
    market_->set_demand(1, 300.0);
    market_->set_demand(2, 300.0);
    make_lbt();
    settle(60);
    EXPECT_FALSE(lbt_->propose_load_balance().valid());
    EXPECT_FALSE(lbt_->propose_migration().valid());
}

TEST_F(LbtTest, EmergencyDisablesLbt)
{
    market_->add_task(0, 1, 0);
    market_->add_task(1, 1, 0);
    market_->set_demand(0, 600.0);
    market_->set_demand(1, 600.0);
    make_lbt();
    settle(10);
    // Force the emergency state with a huge power reading.
    PpmConfig cfg;  // Default TDP = 1e9 is too lax; rebuild tight.
    cfg.w_tdp = 2.0;
    cfg.w_th = 1.5;
    market_ = std::make_unique<Market>(&chip_, cfg);
    market_->add_task(0, 1, 0);
    market_->add_task(1, 1, 0);
    market_->set_demand(0, 600.0);
    market_->set_demand(1, 600.0);
    make_lbt();
    market_->set_cluster_power(0, 3.0);
    market_->round();
    market_->set_cluster_power(0, 3.0);
    market_->round();
    ASSERT_EQ(market_->state(), ChipState::kEmergency);
    EXPECT_FALSE(lbt_->propose_migration().valid());
    EXPECT_FALSE(lbt_->propose_load_balance().valid());
}

TEST_F(LbtTest, EstimateRatiosCappedAtOne)
{
    market_->add_task(0, 1, 0);
    market_->set_demand(0, 100.0);
    make_lbt();
    settle(20);
    const LbtModule::Estimate est = lbt_->estimate_current();
    for (double r : est.ratio) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
    EXPECT_GT(est.spend, 0.0);
}

TEST_F(LbtTest, EstimateUsesEquation2PriceRecursion)
{
    // Moving a second task onto a settled core raises the steady
    // V-F level; the estimated spend must reflect the (1+delta)^k
    // price growth of Equation 2 rather than the current price.
    market_->add_task(0, 1, 0);
    market_->add_task(1, 1, 1);
    market_->set_demand(0, 500.0);
    market_->set_demand(1, 450.0);
    make_lbt();
    settle(60);
    // Candidate that CONCENTRATES load (the opposite of balancing):
    // task 1 joins task 0 on core 0.
    const Movement concentrate{1, 1, 0};
    const LbtModule::Estimate base = lbt_->estimate_current();
    const LbtModule::Estimate est = lbt_->estimate_with(concentrate);
    EXPECT_GT(est.spend, base.spend);
}

} // namespace
} // namespace ppm::market

/**
 * @file
 * Market watchdog: the finite-state detectors behind Market::sane()
 * and the sanitize() fallback that restores the previous cleared
 * allocation when a bidding round produces garbage.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "market/market.hh"

namespace ppm::market {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Watchdog, FiniteTaskStateDetectors)
{
    TaskState t;
    t.demand = 100.0;
    t.supply = 80.0;
    t.bid = 1.0;
    t.savings = 0.5;
    t.allowance = 2.0;
    EXPECT_TRUE(finite_task_state(t));

    TaskState bad = t;
    bad.demand = kNaN;
    EXPECT_FALSE(finite_task_state(bad));
    bad = t;
    bad.demand = -1.0;
    EXPECT_FALSE(finite_task_state(bad));
    bad = t;
    bad.supply = kInf;
    EXPECT_FALSE(finite_task_state(bad));
    bad = t;
    bad.supply = -5.0;
    EXPECT_FALSE(finite_task_state(bad));
    bad = t;
    bad.bid = kNaN;
    EXPECT_FALSE(finite_task_state(bad));
    bad = t;
    bad.savings = -kInf;
    EXPECT_FALSE(finite_task_state(bad));
    bad = t;
    bad.allowance = kNaN;
    EXPECT_FALSE(finite_task_state(bad));
}

TEST(Watchdog, FiniteCoreStateDetectors)
{
    CoreState c;
    c.price = 0.01;
    c.base_price = 0.01;
    EXPECT_TRUE(finite_core_state(c));

    CoreState bad = c;
    bad.price = kNaN;
    EXPECT_FALSE(finite_core_state(bad));
    bad = c;
    bad.price = -0.5;
    EXPECT_FALSE(finite_core_state(bad));
    bad = c;
    bad.base_price = kInf;
    EXPECT_FALSE(finite_core_state(bad));
    bad = c;
    bad.supply = kNaN;
    EXPECT_FALSE(finite_core_state(bad));
    bad = c;
    bad.supply = -100.0;
    EXPECT_FALSE(finite_core_state(bad));
}

Market
make_market(hw::Chip* chip)
{
    PpmConfig cfg;
    cfg.w_tdp = 3.5;
    cfg.w_th = 2.9;
    Market m(chip, cfg);
    m.add_task(0, 1, 0);
    m.add_task(1, 2, 1);
    m.set_demand(0, 300.0);
    m.set_demand(1, 500.0);
    return m;
}

TEST(Watchdog, HealthyMarketIsSaneAndNeedsNoRepairs)
{
    hw::Chip chip = hw::tc2_chip();
    Market m = make_market(&chip);
    EXPECT_TRUE(m.sane());
    for (ClusterId v = 0; v < chip.num_clusters(); ++v)
        m.set_cluster_power(v, 1.0);
    m.round();
    EXPECT_TRUE(m.sane());
    // A sane market sanitizes to itself: zero repairs.
    std::vector<Pu> fallback;
    for (const TaskState& t : m.tasks())
        fallback.push_back(t.supply);
    EXPECT_EQ(m.sanitize(fallback), 0);
    EXPECT_TRUE(m.sane());
}

TEST(Watchdog, SanitizeRestoresSaneStateFromFallback)
{
    hw::Chip chip = hw::tc2_chip();
    Market m = make_market(&chip);
    // Poison a cleared round the way a broken bidding loop would:
    // NaN supply and bid on task 0, garbage demand on task 1.
    m.task(0).supply = kNaN;
    m.task(0).bid = kNaN;
    m.task(1).demand = -kInf;
    EXPECT_FALSE(m.sane());
    const std::vector<Pu> fallback = {120.0, 340.0};
    EXPECT_GT(m.sanitize(fallback), 0);
    EXPECT_TRUE(m.sane());
    // The supply fell back to the previous cleared allocation; the
    // unpriceable fields reset to conservative values.
    EXPECT_DOUBLE_EQ(m.task(0).supply, 120.0);
    EXPECT_TRUE(std::isfinite(m.task(0).bid));
    EXPECT_DOUBLE_EQ(m.task(1).demand, 0.0);
}

TEST(Watchdog, CatchesNonFiniteCoreSupply)
{
    // A poisoned core supply feeds every purchase division of the
    // next round; sane() must flag it and sanitize() must repair it
    // to the conservative zero.
    hw::Chip chip = hw::tc2_chip();
    Market m = make_market(&chip);
    for (ClusterId v = 0; v < chip.num_clusters(); ++v)
        m.set_cluster_power(v, 1.0);
    m.round();
    ASSERT_TRUE(m.sane());
    m.core(0).supply = kNaN;
    EXPECT_FALSE(m.sane());
    std::vector<Pu> fallback(m.tasks().size(), 0.0);
    EXPECT_GT(m.sanitize(fallback), 0);
    EXPECT_TRUE(m.sane());
    EXPECT_DOUBLE_EQ(m.core(0).supply, 0.0);

    m.core(1).supply = -250.0;
    EXPECT_FALSE(m.sane());
    EXPECT_GT(m.sanitize(fallback), 0);
    EXPECT_TRUE(m.sane());
    EXPECT_DOUBLE_EQ(m.core(1).supply, 0.0);
}

TEST(Watchdog, CatchesNonFiniteClusterPower)
{
    // The public set_cluster_power() clamps readings into [0, inf)
    // -- and std::max(0.0, NaN) silently returns 0.0 -- so the raw
    // back door is the only way to plant the poisoned reading that a
    // corrupted sensor path could leave in the ledger.  sane() must
    // catch it before the next round spends it on cluster weights.
    hw::Chip chip = hw::tc2_chip();
    Market m = make_market(&chip);
    ASSERT_TRUE(m.sane());
    m.set_cluster_power_raw(0, kNaN);
    EXPECT_FALSE(m.sane());
    std::vector<Pu> fallback(m.tasks().size(), 0.0);
    EXPECT_GT(m.sanitize(fallback), 0);
    EXPECT_TRUE(m.sane());

    m.set_cluster_power_raw(1, -kInf);
    EXPECT_FALSE(m.sane());
    EXPECT_GT(m.sanitize(fallback), 0);
    EXPECT_TRUE(m.sane());
    // A repaired ledger keeps clearing rounds without tripping again.
    for (ClusterId v = 0; v < chip.num_clusters(); ++v)
        m.set_cluster_power(v, 1.0);
    m.round();
    EXPECT_TRUE(m.sane());
}

TEST(Watchdog, SanitizeHandlesNonFiniteFallback)
{
    hw::Chip chip = hw::tc2_chip();
    Market m = make_market(&chip);
    m.task(0).supply = kInf;
    m.task(1).supply = kNaN;
    EXPECT_FALSE(m.sane());
    // Even a poisoned fallback must yield a sane market.
    EXPECT_GT(m.sanitize({kNaN, -3.0}), 0);
    EXPECT_TRUE(m.sane());
    EXPECT_DOUBLE_EQ(m.task(0).supply, 0.0);
    EXPECT_DOUBLE_EQ(m.task(1).supply, 0.0);
}

} // namespace
} // namespace ppm::market

/**
 * @file
 * The parallel clearing engine: bit-exact determinism of round()
 * across worker counts (including none), the starvation guard of the
 * hierarchical allowance distribution, the adaptive V-F stepper and
 * its convergence norms, and the control_supply() edge cases around
 * bid floors, frozen bids and mid-transition topology loss.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "hw/platform.hh"
#include "market/market.hh"
#include "tests/market/market_test_util.hh"

namespace ppm::market {
namespace {

/**
 * A populated multi-cluster market whose rounds exercise every
 * parallel pass: 3 clusters x 4 cores x 8 tasks = 96 task agents,
 * with a grain of 7 so the fan-out covers ragged chunk boundaries.
 */
struct Sim {
    explicit Sim(ThreadPool* pool)
        : chip(test::paper_chip(4, 3))
    {
        PpmConfig cfg = test::paper_config();
        cfg.w_tdp = 12.0;
        cfg.w_th = 11.0;
        cfg.clearing_min_tasks = 1;
        cfg.clearing_grain = 7;
        market = std::make_unique<Market>(&chip, cfg);
        if (pool != nullptr)
            market->set_thread_pool(pool);
        TaskId id = 0;
        for (CoreId c = 0; c < chip.num_cores(); ++c) {
            for (int t = 0; t < 8; ++t) {
                market->add_task(id, 1 + (id % 3), c);
                // Demands spread over [40, 500] PU, varied per task.
                market->set_demand(
                    id, 40.0 + 20.0 * static_cast<double>(id % 24));
                ++id;
            }
        }
    }

    void feed_powers(long round)
    {
        for (ClusterId v = 0; v < chip.num_clusters(); ++v) {
            market->set_cluster_power(
                v, 0.5 + 0.25 * static_cast<double>(v) +
                       0.01 * static_cast<double>(round % 7));
        }
    }

    hw::Chip chip;
    std::unique_ptr<Market> market;
};

/** Every field of both markets must match bit for bit (==, no eps). */
void
expect_identical(const Market& a, const Market& b)
{
    ASSERT_EQ(a.tasks().size(), b.tasks().size());
    for (std::size_t i = 0; i < a.tasks().size(); ++i) {
        const TaskState& ta = a.tasks()[i];
        const TaskState& tb = b.tasks()[i];
        EXPECT_EQ(ta.bid, tb.bid) << "task " << i;
        EXPECT_EQ(ta.supply, tb.supply) << "task " << i;
        EXPECT_EQ(ta.savings, tb.savings) << "task " << i;
        EXPECT_EQ(ta.allowance, tb.allowance) << "task " << i;
    }
    for (CoreId c = 0; c < a.chip().num_cores(); ++c) {
        EXPECT_EQ(a.core(c).price, b.core(c).price) << "core " << c;
        EXPECT_EQ(a.core(c).supply, b.core(c).supply) << "core " << c;
    }
    EXPECT_EQ(a.global_allowance(), b.global_allowance());
}

TEST(ParallelClearing, BitIdenticalAcrossJobCounts)
{
    // The reference is the inline (no-pool) walk; pools of 2, 3, 4
    // and 7 workers must reproduce it exactly, round after round.
    Sim reference(nullptr);
    std::vector<std::unique_ptr<ThreadPool>> pools;
    std::vector<std::unique_ptr<Sim>> sims;
    for (int jobs : {2, 3, 4, 7}) {
        pools.push_back(std::make_unique<ThreadPool>(jobs));
        sims.push_back(std::make_unique<Sim>(pools.back().get()));
    }
    for (long r = 0; r < 25; ++r) {
        reference.feed_powers(r);
        const RoundReport want = reference.market->round();
        for (auto& sim : sims) {
            sim->feed_powers(r);
            const RoundReport got = sim->market->round();
            EXPECT_EQ(want.total_demand, got.total_demand);
            EXPECT_EQ(want.total_supply, got.total_supply);
            EXPECT_EQ(want.allowance, got.allowance);
            EXPECT_EQ(want.excess_l2, got.excess_l2);
            EXPECT_EQ(want.excess_l8, got.excess_l8);
            EXPECT_EQ(want.vf_changes, got.vf_changes);
            expect_identical(*reference.market, *sim->market);
        }
    }
}

TEST(ParallelClearing, BitIdenticalUnderTaskChurn)
{
    // Task exit/arrival and migration dirty the per-core grouping
    // index; the rebuilt groups must keep the parallel reduction in
    // task-id order, so the pooled market still matches the inline
    // one exactly through the churn.
    Sim reference(nullptr);
    ThreadPool pool(4);
    Sim pooled(&pool);
    auto churn = [](Sim& sim, long r) {
        if (r == 5) {
            for (TaskId t : {3, 17, 40, 95})
                sim.market->set_task_active(t, false);
        }
        if (r == 9) {
            for (TaskId t : {3, 40})
                sim.market->set_task_active(t, true);
            sim.market->set_task_core(7, 11);
            sim.market->set_task_core(50, 0);
        }
    };
    for (long r = 0; r < 15; ++r) {
        churn(reference, r);
        churn(pooled, r);
        reference.feed_powers(r);
        pooled.feed_powers(r);
        reference.market->round();
        pooled.market->round();
        expect_identical(*reference.market, *pooled.market);
    }
}

TEST(ParallelClearing, StarvationGuardFeedsStuckSensorCluster)
{
    // Regression for the cluster-weight starvation gap: cluster 0's
    // sensor is stuck at a reading at/above the whole chip's power
    // while cluster 1 reads zero, so cluster 0's power-derived weight
    // collapses to max(0, W - W_0) = 0.  Without the guard its tasks
    // receive no allowance at all -- forever, since a cluster that
    // gets no money cannot lower its own reading.
    hw::Chip chip = test::paper_chip(1, 2);
    PpmConfig cfg = test::paper_config();
    cfg.w_tdp = 10.0;
    cfg.w_th = 9.0;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);  // Cluster 0 (faulty sensor).
    market.add_task(1, 1, 1);  // Cluster 1 (healthy).
    market.set_demand(0, 200.0);
    market.set_demand(1, 200.0);
    for (int r = 0; r < 5; ++r) {
        market.set_cluster_power(0, 5.0);
        market.set_cluster_power(1, 0.0);
        market.round();
        // The starved cluster gets its priority share of the existing
        // weight mass; the healthy cluster keeps a positive share.
        EXPECT_GT(market.task(0).allowance, 0.0) << "round " << r;
        EXPECT_GT(market.task(1).allowance, 0.0) << "round " << r;
        EXPECT_LE(market.task(0).allowance + market.task(1).allowance,
                  market.global_allowance() + 1e-9);
    }
    // Both task agents can trade: neither supply is pinned at zero.
    EXPECT_GT(market.task(0).supply, 0.0);
    EXPECT_GT(market.task(1).supply, 0.0);
}

/** A 16-level ladder (100..1600 PU) for the adaptive stepper. */
hw::Chip
ladder_chip()
{
    std::vector<hw::VfPoint> points;
    for (int i = 1; i <= 16; ++i)
        points.push_back({100.0 * i, 1.0});
    return hw::Chip({hw::Chip::ClusterSpec{hw::little_core_params(),
                                           hw::VfTable(points), 1}});
}

/** Rounds until the ladder tops out; records the largest level jump. */
int
run_ladder(bool adaptive, int* max_jump)
{
    hw::Chip chip = ladder_chip();
    PpmConfig cfg = test::paper_config();
    cfg.w_tdp = 1e9;
    cfg.w_th = 1e9 - 0.5;
    cfg.adaptive_step = adaptive;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.set_demand(0, 1600.0);
    *max_jump = 0;
    for (int r = 1; r <= 200; ++r) {
        const int before = chip.cluster(0).level();
        market.set_cluster_power(0, 0.5);
        market.round();
        *max_jump = std::max(*max_jump, chip.cluster(0).level() - before);
        if (chip.cluster(0).supply() >= 1600.0)
            return r;
    }
    return 200;
}

TEST(ParallelClearing, AdaptiveStepAcceleratesStalledTatonnement)
{
    // A single task demanding the top of a 16-level ladder: the
    // paper's one-level-per-round cadence needs a V-F transition
    // (plus its anchor round) per level.  The radix stepper detects
    // the stalled excess objective and grows the step, so it must
    // reach the top strictly faster and take at least one multi-level
    // jump; the baseline must never jump more than one level.
    int jump_fixed = 0;
    int jump_adaptive = 0;
    const int rounds_fixed = run_ladder(false, &jump_fixed);
    const int rounds_adaptive = run_ladder(true, &jump_adaptive);
    EXPECT_EQ(jump_fixed, 1);
    EXPECT_GE(jump_adaptive, 2);
    EXPECT_LT(rounds_adaptive, rounds_fixed);
}

TEST(ParallelClearing, ExcessNormsTrackImbalanceAndAgree)
{
    // With a single cluster the excess vector has one component, so
    // the L2 and L8 norms must agree exactly (both equal |excess|);
    // they are positive while the market is out of equilibrium.
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 550.0);
    bool saw_imbalance = false;
    for (int r = 0; r < 20; ++r) {
        market.set_cluster_power(0, test::paper_power(
            chip.cluster(0).supply()));
        const RoundReport report = market.round();
        EXPECT_GE(report.excess_l2, 0.0);
        EXPECT_DOUBLE_EQ(report.excess_l2, report.excess_l8);
        if (report.excess_l2 > 0.0)
            saw_imbalance = true;
    }
    EXPECT_TRUE(saw_imbalance);
}

TEST(ParallelClearing, BidFloorDeflationWaitsForAllBids)
{
    // The bid-floor walk is the only deflation channel once the price
    // is pinned: with the bids at b_min and the base price tracked
    // down to the pinned price (via the demand-rounding-blocked
    // path), neither band trigger can fire.  Stage exactly that state
    // at level 1, then check the walk's two gates: it must hold while
    // the lower level does not cover the demand, hold while ANY bid
    // sits above the floor, and only then step down.
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    // Eight symmetric agents at 45 PU each: the joint 360 PU inflates
    // 300 -> 400 and then blocks band deflation (300 < 360), while
    // each agent's floor-bid share (400/8 = 50 PU) over-supplies it,
    // so every bid decays to exactly b_min and the price pins with
    // the base tracked down onto it.
    const int kTasks = 8;
    for (TaskId t = 0; t < kTasks; ++t) {
        market.add_task(t, 1, 0);
        market.set_demand(t, 45.0);
    }
    const Money floor = market.config().min_bid;
    for (int r = 0; r < 120; ++r) {
        market.set_cluster_power(0, test::paper_power(
            chip.cluster(0).supply()));
        market.round();
    }
    ASSERT_EQ(chip.cluster(0).level(), 1);
    for (TaskId t = 0; t < kTasks; ++t)
        ASSERT_NEAR(market.task(t).bid, floor, 1e-9) << "task " << t;
    // Gate 1 (coverage): price pinned, but 300 PU < 360 PU of
    // demand, so the walk must hold the level indefinitely.
    for (int r = 0; r < 10; ++r) {
        market.set_cluster_power(0, 0.8);
        market.round();
        EXPECT_EQ(chip.cluster(0).level(), 1);
    }
    // Demand collapses so level 0 now covers it -- but one agent's
    // bid pops above the floor (still inside the price band, so the
    // band triggers stay quiet).
    for (TaskId t = 0; t < kTasks; ++t)
        market.set_demand(t, 30.0);
    market.task(0).bid = 0.02;
    bool stepped_down = false;
    for (int r = 0; r < 20 && !stepped_down; ++r) {
        const Money bid_before = market.task(0).bid;
        market.set_cluster_power(0, 0.8);
        market.round();
        if (chip.cluster(0).level() == 0) {
            stepped_down = true;
            // Gate 2 (all-floor): the down-step waited until every
            // bid had decayed back to b_min.
            for (TaskId t = 0; t < kTasks; ++t)
                EXPECT_NEAR(market.task(t).bid, floor, 1e-9);
        } else if (bid_before > floor + 1e-9) {
            // While the popped bid was above the floor when the round
            // began, the walk must have held the level.
            EXPECT_EQ(chip.cluster(0).level(), 1) << "round " << r;
        }
    }
    EXPECT_TRUE(stepped_down);
    EXPECT_EQ(chip.cluster(0).supply(), 300.0);
}

TEST(ParallelClearing, FrozenBidsStillClampInEmergency)
{
    // A V-F transition freezes the bids for one round; an emergency
    // in that same round (power reading far above W_tdp) collapses
    // the allowance, and the bound b <= a + m must cut the frozen bid
    // anyway -- emergency response is never deferred.  A twin market
    // with a healthy reading shows the freeze alone does not cut.
    auto make = [](hw::Chip* chip) {
        PpmConfig cfg = test::paper_config();
        // No banked savings: the clamp bound is the allowance alone,
        // so the emergency contraction is visible in one round.
        cfg.savings_cap_frac = 0.0;
        Market m(chip, cfg);
        m.add_task(0, 1, 0);
        m.set_demand(0, 250.0);
        return m;
    };
    hw::Chip chip_hot = test::paper_chip();
    hw::Chip chip_ref = test::paper_chip();
    Market hot = make(&chip_hot);
    Market ref = make(&chip_ref);
    // Converge, then force an up-step so the next round runs frozen.
    auto drive = [](Market& m, Pu demand, Watts power) {
        m.set_demand(0, demand);
        m.set_cluster_power(0, power);
        m.round();
    };
    for (int r = 0; r < 5; ++r) {
        drive(hot, 250.0, 0.8);
        drive(ref, 250.0, 0.8);
    }
    ASSERT_FALSE(hot.bids_frozen(0));
    int guard = 0;
    while (!hot.bids_frozen(0) && guard++ < 20) {
        drive(hot, 380.0, 0.8);
        drive(ref, 380.0, 0.8);
    }
    ASSERT_TRUE(hot.bids_frozen(0));
    ASSERT_TRUE(ref.bids_frozen(0));
    const Money bid_before = hot.task(0).bid;
    ASSERT_EQ(ref.task(0).bid, bid_before);
    // The frozen round: hot sees a runaway reading, ref stays benign.
    drive(hot, 380.0, 50.0);
    drive(ref, 380.0, 0.8);
    EXPECT_LT(hot.task(0).bid, bid_before);
    EXPECT_LE(hot.task(0).bid,
              hot.task(0).allowance + hot.task(0).savings + 1e-12);
    EXPECT_GE(ref.task(0).bid, bid_before);
}

TEST(ParallelClearing, PendingBaseResetSurvivesMidTransitionLoss)
{
    // A V-F change leaves pending_base_reset armed for the next
    // round.  If the cluster then goes dark mid-transition -- power
    // gated, or every task gone -- control_supply() must clear the
    // freeze machinery instead of anchoring a base price on garbage,
    // and the market must keep working once the cluster returns.
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 250.0);
    market.set_cluster_power(0, 0.8);
    market.round();
    market.set_demand(0, 380.0);
    int guard = 0;
    while (!market.bids_frozen(0) && guard++ < 20) {
        market.set_cluster_power(0, 0.8);
        market.round();
    }
    ASSERT_TRUE(market.bids_frozen(0));
    // Mid-transition power gating: the pending reset must not anchor.
    chip.cluster(0).set_powered(false);
    market.set_cluster_power(0, 0.0);
    market.round();
    EXPECT_FALSE(market.bids_frozen(0));
    EXPECT_TRUE(market.sane());
    // The cluster returns; the market converges again from scratch.
    chip.cluster(0).set_powered(true);
    for (int r = 0; r < 30; ++r) {
        market.set_cluster_power(0, test::paper_power(
            chip.cluster(0).supply()));
        market.round();
    }
    EXPECT_TRUE(market.sane());
    EXPECT_GE(chip.cluster(0).supply(), 380.0);
    EXPECT_GT(market.task(0).supply, 0.0);

    // Same interleaving, but the transition dies because the last
    // task exits: the constrained core disappears instead.
    market.set_demand(0, 550.0);
    guard = 0;
    while (!market.bids_frozen(0) && guard++ < 20) {
        market.set_cluster_power(0, test::paper_power(
            chip.cluster(0).supply()));
        market.round();
    }
    ASSERT_TRUE(market.bids_frozen(0));
    market.set_task_active(0, false);
    market.set_cluster_power(0, 0.8);
    market.round();
    EXPECT_FALSE(market.bids_frozen(0));
    EXPECT_TRUE(market.sane());
    market.set_task_active(0, true);
    market.set_demand(0, 250.0);
    for (int r = 0; r < 10; ++r) {
        market.set_cluster_power(0, test::paper_power(
            chip.cluster(0).supply()));
        market.round();
    }
    EXPECT_TRUE(market.sane());
    EXPECT_GT(market.task(0).supply, 0.0);
}

} // namespace
} // namespace ppm::market

/**
 * @file
 * Tests for the online cross-core-type demand estimator (the paper's
 * future-work replacement of off-line profiling).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hw/platform.hh"
#include "market/online_estimator.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm::market {
namespace {

using hw::CoreClass;

TEST(OnlineEstimator, FallsBackUntilBothClassesSeen)
{
    OnlineSpeedupEstimator est(1);
    EXPECT_FALSE(est.converged(0));
    EXPECT_DOUBLE_EQ(est.speedup(0), 1.6);
    // Observations on LITTLE only do not converge.
    for (int i = 0; i < 50; ++i)
        est.observe(0, CoreClass::kLittle, 600.0, 20.0);
    EXPECT_FALSE(est.converged(0));
    EXPECT_DOUBLE_EQ(est.speedup(0), 1.6);
}

TEST(OnlineEstimator, LearnsTrueRatioFromCleanObservations)
{
    // Ground truth: 30 PU-s/hb on LITTLE, 15 on big -> speedup 2.0.
    OnlineSpeedupEstimator est(1);
    for (int i = 0; i < 20; ++i) {
        est.observe(0, CoreClass::kLittle, 600.0, 20.0);
        est.observe(0, CoreClass::kBig, 300.0, 20.0);
    }
    ASSERT_TRUE(est.converged(0));
    EXPECT_NEAR(est.speedup(0), 2.0, 1e-9);
    EXPECT_NEAR(est.cost(0, CoreClass::kLittle), 30.0, 1e-9);
    EXPECT_NEAR(est.cost(0, CoreClass::kBig), 15.0, 1e-9);
}

TEST(OnlineEstimator, RobustToNoisyObservations)
{
    OnlineSpeedupEstimator::Params p;
    p.ewma_alpha = 0.1;
    OnlineSpeedupEstimator est(1, p);
    Rng rng(17);
    for (int i = 0; i < 500; ++i) {
        const double noise = rng.uniform(0.85, 1.15);
        est.observe(0, CoreClass::kLittle, 600.0 * noise, 20.0);
        est.observe(0, CoreClass::kBig, 333.0 * noise, 20.0);
    }
    ASSERT_TRUE(est.converged(0));
    EXPECT_NEAR(est.speedup(0), 1.8, 0.15);
}

TEST(OnlineEstimator, IgnoresStarvedWindows)
{
    OnlineSpeedupEstimator est(1);
    // A starved window (hr ~ 0) would imply infinite cost; ignored.
    est.observe(0, CoreClass::kLittle, 500.0, 0.01);
    EXPECT_EQ(est.samples(0, CoreClass::kLittle), 0);
    est.observe(0, CoreClass::kLittle, 0.0, 20.0);
    EXPECT_EQ(est.samples(0, CoreClass::kLittle), 0);
}

TEST(OnlineEstimator, SpeedupClampedToPhysicalBounds)
{
    OnlineSpeedupEstimator est(1);
    for (int i = 0; i < 20; ++i) {
        // Nonsensical observations implying speedup 10.
        est.observe(0, CoreClass::kLittle, 1000.0, 10.0);
        est.observe(0, CoreClass::kBig, 100.0, 10.0);
    }
    EXPECT_DOUBLE_EQ(est.speedup(0), 4.0);
}

TEST(OnlineEstimator, PerTaskIndependence)
{
    OnlineSpeedupEstimator est(2);
    for (int i = 0; i < 20; ++i) {
        est.observe(0, CoreClass::kLittle, 600.0, 20.0);
        est.observe(0, CoreClass::kBig, 300.0, 20.0);
        est.observe(1, CoreClass::kLittle, 450.0, 30.0);
        est.observe(1, CoreClass::kBig, 300.0, 30.0);
    }
    EXPECT_NEAR(est.speedup(0), 2.0, 1e-9);
    EXPECT_NEAR(est.speedup(1), 1.5, 1e-9);
}

TEST(OnlineEstimator, GovernorLearnsResidentClassCosts)
{
    // A workload heavy enough that the LBT migrates some tasks to
    // the big cluster: every task learns the cost of the class it
    // lives on, with ground truth 35 PU-s/hb LITTLE / 17.5 big
    // (700 PU at 20 hb/s, speedup 2.0).
    PpmGovernorConfig cfg;
    cfg.online_speedup = true;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 700.0, 2.0),
        test::steady_spec("b", 1, 700.0, 2.0),
        test::steady_spec("c", 1, 700.0, 2.0),
        test::steady_spec("d", 1, 700.0, 2.0),
    };
    auto gov = std::make_unique<PpmGovernor>(cfg);
    auto* gp = gov.get();
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 120 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs, std::move(gov), sim_cfg);
    const auto summary = sim.run();

    ASSERT_NE(gp->online_estimator(), nullptr);
    const auto* est = gp->online_estimator();
    int big_resident = 0;
    for (TaskId t = 0; t < 4; ++t) {
        if (est->samples(t, hw::CoreClass::kLittle) > 100) {
            EXPECT_NEAR(est->cost(t, hw::CoreClass::kLittle), 35.0, 3.0);
        }
        if (est->samples(t, hw::CoreClass::kBig) > 100) {
            EXPECT_NEAR(est->cost(t, hw::CoreClass::kBig), 17.5, 2.0);
            ++big_resident;
        }
    }
    EXPECT_GE(big_resident, 1);  // Someone ended up on big.
    // And QoS should stay reasonable without any offline profile.
    EXPECT_LT(summary.any_below_miss, 0.30);
}

TEST(OnlineEstimator, RoundTripTaskConverges)
{
    // A task whose demand collapses after a heavy phase is migrated
    // up and later repatriated, observing both classes.
    PpmGovernorConfig cfg;
    cfg.online_speedup = true;
    workload::TaskSpec wanderer = test::steady_spec("w", 1, 700.0, 2.0);
    const Cycles w = wanderer.phases[0].work_per_hb_little;
    wanderer.phases.clear();
    wanderer.phases.push_back(workload::Phase{40 * kSecond, w, w / 2.0});
    wanderer.phases.push_back(
        workload::Phase{80 * kSecond, w / 4.0, w / 8.0});
    std::vector<workload::TaskSpec> specs{
        wanderer,
        test::steady_spec("b", 1, 700.0, 2.0),
        test::steady_spec("c", 1, 700.0, 2.0),
        test::steady_spec("d", 1, 700.0, 2.0),
    };
    auto gov = std::make_unique<PpmGovernor>(cfg);
    auto* gp = gov.get();
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 120 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs, std::move(gov), sim_cfg);
    sim.run();
    const auto* est = gp->online_estimator();
    // At least one of the four tasks visited both classes long enough
    // to converge; its estimate must be near the true speedup 2.0.
    int converged = 0;
    for (TaskId t = 0; t < 4; ++t) {
        if (est->converged(t)) {
            ++converged;
            EXPECT_NEAR(est->speedup(t), 2.0, 0.5);
        }
    }
    if (converged > 0) {
        // The population estimate reflects the converged tasks; an
        // unconverged peer's speedup() stays at the neutral default.
        EXPECT_NEAR(est->population_speedup(), 2.0, 0.5);
        for (TaskId t = 0; t < 4; ++t) {
            if (!est->converged(t)) {
                EXPECT_DOUBLE_EQ(est->speedup(t), 1.6);
            }
        }
    }
}


TEST(OnlineEstimator, FiniteOnConstantAndZeroVarianceSignals)
{
    // A task whose observations never vary (zero-variance supply and
    // heart rate) must still produce a finite, bounded estimate.
    OnlineSpeedupEstimator est(1);
    for (int i = 0; i < 200; ++i) {
        est.observe(0, CoreClass::kLittle, 400.0, 20.0);
        est.observe(0, CoreClass::kBig, 250.0, 20.0);
    }
    const double s = est.speedup(0);
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_GE(s, 1.0);
    EXPECT_LE(s, 4.0);
    EXPECT_TRUE(std::isfinite(est.cost(0, CoreClass::kLittle)));
    EXPECT_TRUE(std::isfinite(est.cost(0, CoreClass::kBig)));

    // All-zero signals (a starved task) are discarded, never divided.
    OnlineSpeedupEstimator starved(1);
    for (int i = 0; i < 200; ++i) {
        starved.observe(0, CoreClass::kLittle, 0.0, 0.0);
        starved.observe(0, CoreClass::kBig, 0.0, 0.0);
    }
    EXPECT_TRUE(std::isfinite(starved.speedup(0)));
    EXPECT_FALSE(starved.converged(0));
}
} // namespace
} // namespace ppm::market

/**
 * @file
 * Unit and property tests for the market mechanism beyond the
 * paper's running examples: allowance distribution, price discovery
 * invariants, state transitions, freezing, and market conservation
 * properties over randomized scenarios.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hw/platform.hh"
#include "market/market.hh"
#include "tests/market/market_test_util.hh"

namespace ppm::market {
namespace {

TEST(Market, InitialBidsAndPriorityAllowances)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 3, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 100.0);
    market.set_demand(1, 100.0);
    market.round();
    // Allowance split 3:1 by priority.
    EXPECT_NEAR(market.task(0).allowance, 4.5 * 0.75, 1e-9);
    EXPECT_NEAR(market.task(1).allowance, 4.5 * 0.25, 1e-9);
}

TEST(Market, TelemetrySnapshotMirrorsRoundState)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 2, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 200.0);
    market.set_demand(1, 100.0);

    MarketTelemetry snap;
    market.set_telemetry(&snap);
    const RoundReport report = market.round();

    EXPECT_EQ(snap.round, 1);
    EXPECT_EQ(snap.report.state, report.state);
    EXPECT_DOUBLE_EQ(snap.report.allowance, report.allowance);
    ASSERT_EQ(snap.tasks.size(), 2u);
    EXPECT_DOUBLE_EQ(snap.tasks[0].bid, market.task(0).bid);
    EXPECT_DOUBLE_EQ(snap.tasks[0].supply, market.task(0).supply);
    EXPECT_DOUBLE_EQ(snap.tasks[1].allowance, market.task(1).allowance);
    ASSERT_EQ(snap.cores.size(),
              static_cast<std::size_t>(chip.num_cores()));
    EXPECT_DOUBLE_EQ(snap.cores[0].price, market.core(0).price);
    ASSERT_EQ(snap.clusters.size(),
              static_cast<std::size_t>(chip.num_clusters()));
    EXPECT_EQ(snap.clusters[0].level, chip.cluster(0).level());
    EXPECT_DOUBLE_EQ(snap.clusters[0].mhz, chip.cluster(0).mhz());
    EXPECT_TRUE(snap.clusters[0].powered);

    // Detach: the next round must leave the snapshot untouched.
    market.set_telemetry(nullptr);
    market.round();
    EXPECT_EQ(snap.round, 1);
}

TEST(Market, AllowanceClampFlaggedInReport)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.max_allowance = cfg.initial_allowance;  // Already at the cap.
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.set_demand(0, 600.0);  // Deficit: allowance wants to grow.
    market.set_cluster_power(0, 0.5);
    RoundReport last;
    bool clamped = false;
    for (int i = 0; i < 10; ++i) {
        last = market.round();
        clamped = clamped || last.allowance_clamped;
    }
    EXPECT_TRUE(clamped);
    EXPECT_LE(market.global_allowance(), cfg.max_allowance + 1e-12);
}

TEST(Market, PurchasesExhaustSupplyExactly)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 2, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 150.0);
    market.set_demand(1, 150.0);
    for (int i = 0; i < 5; ++i)
        market.round();
    // s_t = b_t / P_c with P_c = sum(b)/S_c implies sum(s) == S_c.
    EXPECT_NEAR(market.task(0).supply + market.task(1).supply,
                chip.cluster(0).supply(), 1e-6);
}

TEST(Market, BidFloorRespected)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 0.0);  // No demand: bid decays.
    for (int i = 0; i < 50; ++i)
        market.round();
    EXPECT_GE(market.task(0).bid, market.config().min_bid - 1e-12);
}

TEST(Market, BidCapAtAllowancePlusSavings)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.initial_allowance = 1.0;  // Tight money.
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 600.0);
    market.set_demand(1, 600.0);
    // Hold power high so the allowance cannot grow (threshold).
    for (int i = 0; i < 30; ++i) {
        market.set_cluster_power(0, 2.0);
        market.round();
        const auto& t = market.task(0);
        EXPECT_LE(t.bid, t.allowance + t.savings + 1e-9);
    }
}

TEST(Market, EmergencyShrinksAllowance)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 200.0);
    market.set_cluster_power(0, 3.0);  // Above the 2.25 W TDP.
    market.round();
    const Money a1 = market.global_allowance();
    market.set_cluster_power(0, 3.0);
    market.round();
    EXPECT_EQ(market.state(), ChipState::kEmergency);
    EXPECT_LT(market.global_allowance(), a1);
}

TEST(Market, ThresholdFreezesAllowance)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 500.0);  // Unmet demand at 300 PU.
    market.set_cluster_power(0, 2.0);  // Threshold band.
    market.round();
    market.set_cluster_power(0, 2.0);
    market.round();
    const Money frozen = market.global_allowance();
    for (int i = 0; i < 5; ++i) {
        market.set_cluster_power(0, 2.0);
        market.round();
        EXPECT_EQ(market.state(), ChipState::kThreshold);
        EXPECT_NEAR(market.global_allowance(), frozen, 1e-9);
    }
}

TEST(Market, NormalGrowsAllowanceOnlyWithDeficit)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 100.0);  // Satisfiable at 300 PU.
    market.round();
    market.round();
    const Money a = market.global_allowance();
    market.round();
    EXPECT_NEAR(market.global_allowance(), a, 1e-9);  // No deficit.
}

TEST(Market, CrossClusterDeficitStillGrowsAllowance)
{
    // A starving cluster must trigger allowance growth even when
    // another cluster has surplus supply (the global D < S).
    hw::Chip chip = test::paper_chip(1, 2);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);  // Cluster 0: needs 500 > 300.
    market.add_task(1, 1, 1);  // Cluster 1: tiny demand.
    market.set_demand(0, 500.0);
    market.set_demand(1, 10.0);
    market.round();
    market.round();
    const Money a2 = market.global_allowance();
    market.round();
    EXPECT_GT(market.global_allowance(), a2);
}

TEST(Market, ConstrainedCoreIsHighestDemand)
{
    hw::Chip chip = test::paper_chip(3, 1);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 1);
    market.add_task(2, 1, 2);
    market.set_demand(0, 100.0);
    market.set_demand(1, 250.0);
    market.set_demand(2, 50.0);
    market.round();
    EXPECT_EQ(market.constrained_core(0), 1);
}

TEST(Market, EmptyClusterHasNoConstrainedCore)
{
    hw::Chip chip = test::paper_chip(1, 2);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 100.0);
    market.round();
    EXPECT_EQ(market.constrained_core(1), kInvalidId);
}

TEST(Market, AllowanceDistributionFormulaExact)
{
    // Two clusters, equal priorities: A_v = A * (W - W_v) / W
    // (Section 3.2.3).  W = 1.0 + 3.0 = 4.0, so cluster 0 receives
    // A * 3/4 and cluster 1 receives A * 1/4.
    hw::Chip chip = test::paper_chip(1, 2);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 1);
    market.set_demand(0, 100.0);
    market.set_demand(1, 100.0);
    market.set_cluster_power(0, 1.0);
    market.set_cluster_power(1, 3.0);
    market.round();
    const Money a = market.global_allowance();
    EXPECT_NEAR(market.task(0).allowance, a * 0.75, 1e-9);
    EXPECT_NEAR(market.task(1).allowance, a * 0.25, 1e-9);
}

TEST(Market, CoreAllowanceSplitsByPrioritySums)
{
    // One cluster, two cores: A_c = A_v * R_c / R_v, then
    // a_t = A_c * r_t / R_c (Section 3.2.3).
    hw::Chip chip = test::paper_chip(2, 1);
    Market market(&chip, test::paper_config());
    market.add_task(0, 3, 0);  // Core 0: R_c = 3 + 1.
    market.add_task(1, 1, 0);
    market.add_task(2, 2, 1);  // Core 1: R_c = 2.
    for (TaskId t = 0; t < 3; ++t)
        market.set_demand(t, 50.0);
    market.round();
    const Money a = market.global_allowance();
    // R = 6: core 0 gets 4/6 A, core 1 gets 2/6 A.
    EXPECT_NEAR(market.task(0).allowance, a * (4.0 / 6.0) * 0.75, 1e-9);
    EXPECT_NEAR(market.task(1).allowance, a * (4.0 / 6.0) * 0.25, 1e-9);
    EXPECT_NEAR(market.task(2).allowance, a * (2.0 / 6.0), 1e-9);
}

TEST(Market, AllowanceInverseToPower)
{
    // Cluster 1 draws more power, so its task receives less
    // allowance at equal priority (A_v = A * (W - W_v)/W).
    hw::Chip chip = test::paper_chip(1, 2);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 1);
    market.set_demand(0, 100.0);
    market.set_demand(1, 100.0);
    market.set_cluster_power(0, 0.2);
    market.set_cluster_power(1, 0.8);
    market.round();
    EXPECT_GT(market.task(0).allowance, market.task(1).allowance);
    // And the cluster allowances still sum to the global allowance.
    EXPECT_NEAR(market.task(0).allowance + market.task(1).allowance,
                market.global_allowance(), 1e-9);
}

TEST(Market, DeflationStepsSupplyDown)
{
    hw::Chip chip = test::paper_chip();
    chip.cluster(0).set_level(3);  // Start at 600 PU.
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 500.0);
    market.round();  // Base price established at 600 PU.
    market.set_demand(0, 50.0);  // Demand collapses.
    int downs = 0;
    for (int i = 0; i < 30; ++i) {
        const RoundReport r = market.round();
        downs += r.vf_changes;
    }
    EXPECT_EQ(chip.cluster(0).level(), 0);
    EXPECT_GE(downs, 3);
}

TEST(Market, TaskCoreReassignmentTracked)
{
    hw::Chip chip = test::paper_chip(2, 1);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 100.0);
    market.round();
    EXPECT_EQ(market.tasks_on(0).size(), 1u);
    market.set_task_core(0, 1);
    market.round();
    EXPECT_TRUE(market.tasks_on(0).empty());
    EXPECT_EQ(market.tasks_on(1).size(), 1u);
    EXPECT_GT(market.task(0).supply, 0.0);
}

/**
 * Property tests over randomized demands: market invariants that must
 * hold in every round of every scenario.
 */
class MarketPropertyTest : public ::testing::TestWithParam<int>
{
};

TEST_P(MarketPropertyTest, InvariantsHoldUnderRandomDemands)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()));
    const int cores = 1 + static_cast<int>(rng.uniform_int(0, 2));
    const int clusters = 1 + static_cast<int>(rng.uniform_int(0, 1));
    hw::Chip chip = test::paper_chip(cores, clusters);
    PpmConfig cfg = test::paper_config();
    cfg.savings_cap_frac = rng.uniform(0.5, 5.0);
    Market market(&chip, cfg);
    const int tasks = 2 + static_cast<int>(rng.uniform_int(0, 5));
    for (TaskId t = 0; t < tasks; ++t) {
        market.add_task(t, 1 + static_cast<int>(rng.uniform_int(0, 6)),
                        static_cast<CoreId>(
                            rng.uniform_int(0, chip.num_cores() - 1)));
    }
    std::vector<Money> prev_savings(static_cast<std::size_t>(tasks),
                                    0.0);
    for (int round = 0; round < 60; ++round) {
        for (TaskId t = 0; t < tasks; ++t)
            market.set_demand(t, rng.uniform(0.0, 700.0));
        for (ClusterId v = 0; v < chip.num_clusters(); ++v)
            market.set_cluster_power(v, rng.uniform(0.0, 3.5));
        market.round();

        Money allowance_sum = 0.0;
        for (TaskId t = 0; t < tasks; ++t) {
            const TaskState& ts = market.task(t);
            // Bids stay within [min_bid, allowance + savings], where
            // the savings are the balance available at bid time
            // (i.e. before this round's accrual/spend).
            EXPECT_GE(ts.bid, cfg.min_bid - 1e-12);
            EXPECT_LE(ts.bid,
                      std::max(cfg.min_bid,
                               ts.allowance
                                   + prev_savings[static_cast<
                                       std::size_t>(t)])
                          + 1e-9);
            // Savings are non-negative; the cap limits new accrual
            // (balances may exceed a shrunken cap but never grow
            // above it).
            EXPECT_GE(ts.savings, -1e-12);
            EXPECT_LE(ts.savings,
                      std::max(prev_savings[static_cast<std::size_t>(t)],
                               cfg.savings_cap_frac * ts.allowance)
                          + 1e-9);
            EXPECT_GE(ts.supply, -1e-12);
            allowance_sum += ts.allowance;
            prev_savings[static_cast<std::size_t>(t)] = ts.savings;
        }
        // The distributed allowances never exceed the global pool.
        EXPECT_LE(allowance_sum, market.global_allowance() + 1e-6);

        // Per-core conservation: purchases exactly exhaust the supply
        // the core offered at price discovery (a V-F step at the end
        // of the round takes effect in the next round).
        for (CoreId c = 0; c < chip.num_cores(); ++c) {
            const auto on_core = market.tasks_on(c);
            if (on_core.empty())
                continue;
            Pu total = 0.0;
            for (TaskId t : on_core)
                total += market.task(t).supply;
            EXPECT_NEAR(total, market.core(c).supply, 1e-6);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, MarketPropertyTest,
                         ::testing::Range(1, 21));

} // namespace
} // namespace ppm::market

/**
 * @file
 * Invalidation-precision tests for the incremental active-set
 * clearing engine.  Each test drives a standalone market to a
 * bitwise fixed point (the round early-exits with an empty active
 * set), perturbs exactly one input channel, and asserts the next
 * round recomputes the affected entries -- and *only* those, where
 * the channel's blast radius is provably contained.  The assertions
 * read the bookkeeping active set (Market::last_round_recomputed()),
 * which is maintained whether or not PpmConfig::incremental actually
 * skips the clean entries, so every test also runs with the flag off
 * and must see identical counters (the lockstep test checks the full
 * state bit-for-bit).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "hw/platform.hh"
#include "market/market.hh"
#include "tests/market/market_test_util.hh"

namespace ppm::market {
namespace {

/** Bitwise double equality (the engine's own change criterion). */
bool
bits_equal(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/**
 * Steady 2-cluster x 2-core fixture: four tasks, one per core, with
 * demands far below the lowest V-F supply so every bid deflates to
 * the clamped floor and the market reaches an exact fixed point.
 */
struct SteadyFixture {
    hw::Chip chip = test::paper_chip(2, 2);
    Market market{&chip, test::paper_config()};

    SteadyFixture()
    {
        for (TaskId t = 0; t < 4; ++t) {
            market.add_task(t, 1, t);
            market.set_demand(t, 40.0 + 10.0 * t);
        }
        market.set_cluster_power(0, 0.5);
        market.set_cluster_power(1, 0.5);
    }

    /**
     * Round until the active set drains empty.  Returns the number
     * of rounds it took; fails the test if 300 rounds don't settle
     * (the fixture is constructed so they always do).
     */
    int settle()
    {
        for (int i = 0; i < 300; ++i) {
            if (market.round().early_exit)
                return i + 1;
        }
        ADD_FAILURE() << "fixture did not reach a bitwise fixed point";
        return -1;
    }

    /** Did the last round recompute task `t`? */
    bool recomputed(TaskId t) const
    {
        const std::vector<TaskId>& r = market.last_round_recomputed();
        return std::find(r.begin(), r.end(), t) != r.end();
    }
};

TEST(Incremental, SteadyStateReachesEarlyExitAndStaysThere)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // The fixed point is absorbing: ten more rounds with untouched
    // inputs all collapse to the O(cores + clusters) early exit.
    for (int i = 0; i < 10; ++i) {
        const RoundReport r = f.market.round();
        EXPECT_TRUE(r.early_exit);
        EXPECT_EQ(r.tasks_recomputed, 0);
        EXPECT_EQ(r.tasks_skipped, 4);
        EXPECT_EQ(r.cores_recomputed, 0);
        EXPECT_EQ(r.cores_skipped, 4);
        EXPECT_TRUE(f.market.last_round_recomputed().empty());
    }
    const ClearingStats& st = f.market.clearing_stats();
    EXPECT_GE(st.rounds_early_exit, 10);
    EXPECT_EQ(st.task_slots, 4 * st.rounds);
    EXPECT_GT(st.tasks_skipped, 0);
}

TEST(Incremental, BitEqualInputRewritesKeepTheFixedPoint)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // Re-posting bit-identical inputs is not a change: the engine
    // compares bits, not write events.
    f.market.set_demand(0, 40.0);
    f.market.set_demand(3, 70.0);
    f.market.set_cluster_power(0, 0.5);
    f.market.set_tdp(test::paper_config().w_tdp,
                     test::paper_config().w_th);
    const RoundReport r = f.market.round();
    EXPECT_TRUE(r.early_exit);
    EXPECT_EQ(r.tasks_recomputed, 0);
}

TEST(Incremental, DemandChangeStaysWithinTheCluster)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // Task 0 lives on core 0 (cluster 0); tasks 2 and 3 live on
    // cluster 1.  A demand change that stays below the supply of the
    // lowest V-F level moves no cluster level and no allowance, so
    // the blast radius is cluster 0 alone.
    f.market.set_demand(0, 90.0);
    const RoundReport r = f.market.round();
    EXPECT_FALSE(r.early_exit);
    EXPECT_TRUE(f.recomputed(0));
    EXPECT_FALSE(f.recomputed(2));
    EXPECT_FALSE(f.recomputed(3));
    EXPECT_LE(r.tasks_recomputed, 2);
    // The core fold sees the new demand immediately.
    EXPECT_DOUBLE_EQ(f.market.core(0).demand, 90.0);
}

TEST(Incremental, TdpRewriteReachesEveryTask)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // Dropping W_tdp below the standing 1.0 W chip power flips the
    // chip agent into emergency; the allowance contraction is a
    // global signal, so every task re-enters the active set.
    f.market.set_tdp(0.8, 0.6);
    const RoundReport r = f.market.round();
    EXPECT_FALSE(r.early_exit);
    EXPECT_EQ(r.state, ChipState::kEmergency);
    EXPECT_EQ(r.tasks_recomputed, 4);
    EXPECT_EQ(r.tasks_skipped, 0);
}

TEST(Incremental, PowerReadingChangeReachesEveryTask)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // Same channel from the other side: the thresholds stand still
    // and the reading crosses them (2.25 W TDP in paper_config).
    f.market.set_cluster_power(0, 3.0);
    const RoundReport r = f.market.round();
    EXPECT_FALSE(r.early_exit);
    EXPECT_EQ(r.state, ChipState::kEmergency);
    EXPECT_EQ(r.tasks_recomputed, 4);
}

TEST(Incremental, TaskExitAndReAdmissionRecomputeTheTask)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // Exit: the departing agent's money leaves circulation and its
    // core's fold loses a bid, so the task is in the next active set.
    f.market.set_task_active(2, false);
    f.market.round();
    EXPECT_TRUE(f.recomputed(2));
    ASSERT_GT(f.settle(), 0);
    EXPECT_EQ(f.market.task(2).supply, 0.0);
    // Re-admission starts the agent afresh with the initial bid.
    f.market.set_task_active(2, true);
    const RoundReport r = f.market.round();
    EXPECT_FALSE(r.early_exit);
    EXPECT_TRUE(f.recomputed(2));
    ASSERT_GT(f.settle(), 0);
    EXPECT_GT(f.market.task(2).supply, 0.0);
}

TEST(Incremental, MigrationRecomputesTheMovedTask)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // Move task 0 from core 0 to core 1 (same cluster: the cluster
    // demand sum is unchanged, so no V-F or allowance movement).
    f.market.set_task_core(0, 1);
    const RoundReport r = f.market.round();
    EXPECT_FALSE(r.early_exit);
    EXPECT_TRUE(f.recomputed(0));
    EXPECT_FALSE(f.recomputed(2));
    EXPECT_FALSE(f.recomputed(3));
    // Both core folds moved: source lost the demand, target gained it.
    EXPECT_DOUBLE_EQ(f.market.core(0).demand, 0.0);
    EXPECT_DOUBLE_EQ(f.market.core(1).demand, 40.0 + 50.0);
    ASSERT_GT(f.settle(), 0);
}

TEST(Incremental, MutableHookForcesAFullRecompute)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // The mutable task()/core() overloads are the repair/nice back
    // door: the caller may rewrite any field behind the dirty
    // tracking's back, so taking the reference forfeits every memo.
    f.market.task(1).priority = 3;
    const RoundReport r = f.market.round();
    EXPECT_FALSE(r.early_exit);
    EXPECT_EQ(r.tasks_recomputed, 4);
    EXPECT_EQ(r.cores_recomputed, 4);
    ASSERT_GT(f.settle(), 0);

    f.market.core(3);  // Taking the reference is enough.
    const RoundReport r2 = f.market.round();
    EXPECT_EQ(r2.tasks_recomputed, 4);
}

TEST(Incremental, ExternalVfStepInvalidatesThePricedCluster)
{
    SteadyFixture f;
    ASSERT_GT(f.settle(), 0);
    // Step cluster 1's V-F level behind the market's back -- the
    // stand-in for every external supply channel (adaptive-step
    // jumps, safe-mode clamps, power gating).  The price loop reads
    // chip supplies fresh each round and bit-compares, so the change
    // needs no explicit hook to reach the purchase pass.
    const int before = f.chip.cluster(1).level();
    f.chip.cluster(1).set_level(before + 1);
    const RoundReport r = f.market.round();
    EXPECT_TRUE(f.recomputed(2));
    EXPECT_TRUE(f.recomputed(3));
    EXPECT_FALSE(f.recomputed(0));
    EXPECT_FALSE(f.recomputed(1));
    EXPECT_EQ(r.tasks_recomputed, 2);
    // Note the *core folds* stay clean: the demand and bid sums are
    // unchanged (every bid sits at the floor), so only the purchase
    // pass re-runs for the re-priced tasks.
}

/**
 * Lockstep differential: two markets on identical chips, one with
 * incrementality on and one with it off, driven through every
 * mutation channel.  After each round the complete observable state
 * must match bit for bit -- including the skip counters, which count
 * bookkeeping (not skipping) and are therefore mode-invariant.
 */
TEST(Incremental, LockstepOnOffIsBitIdentical)
{
    hw::Chip chip_a = test::paper_chip(2, 2);
    hw::Chip chip_b = test::paper_chip(2, 2);
    PpmConfig on = test::paper_config();
    on.incremental = true;
    PpmConfig off = test::paper_config();
    off.incremental = false;
    Market a(&chip_a, on);
    Market b(&chip_b, off);
    for (TaskId t = 0; t < 4; ++t) {
        a.add_task(t, 1 + static_cast<int>(t) % 2, t);
        b.add_task(t, 1 + static_cast<int>(t) % 2, t);
        a.set_demand(t, 120.0 + 60.0 * t);
        b.set_demand(t, 120.0 + 60.0 * t);
    }

    auto mutate = [&](Market& m, hw::Chip& chip, int round) {
        m.set_cluster_power(0, 1.0);
        m.set_cluster_power(1, 0.8);
        switch (round) {
        case 10: m.set_demand(1, 480.0); break;
        case 20: m.set_task_core(0, 2); break;          // Migrate.
        case 30: m.set_task_active(3, false); break;    // Exit.
        case 40: m.set_tdp(1.2, 0.9); break;            // Emergency.
        case 50: m.set_tdp(test::paper_config().w_tdp,  // Recover.
                           test::paper_config().w_th);
                 break;
        case 60: m.set_task_active(3, true); break;     // Re-admit.
        case 70: m.task(2).priority = 4; break;         // Nice.
        case 80: chip.cluster(0).set_level(3); break;   // V-F jump.
        default: break;
        }
    };

    for (int round = 0; round < 100; ++round) {
        mutate(a, chip_a, round);
        mutate(b, chip_b, round);
        const RoundReport ra = a.round();
        const RoundReport rb = b.round();
        ASSERT_EQ(ra.tasks_recomputed, rb.tasks_recomputed)
            << "round " << round;
        ASSERT_EQ(ra.tasks_skipped, rb.tasks_skipped);
        ASSERT_EQ(ra.cores_recomputed, rb.cores_recomputed);
        ASSERT_EQ(ra.cores_skipped, rb.cores_skipped);
        ASSERT_EQ(ra.early_exit, rb.early_exit);
        ASSERT_TRUE(bits_equal(ra.allowance, rb.allowance));
        ASSERT_TRUE(bits_equal(ra.total_supply, rb.total_supply));
        ASSERT_EQ(a.last_round_recomputed(), b.last_round_recomputed());
        for (TaskId t = 0; t < 4; ++t) {
            const TaskState& ta = a.task(t);
            const TaskState& tb = b.task(t);
            ASSERT_TRUE(bits_equal(ta.bid, tb.bid))
                << "task " << t << " bid diverged at round " << round;
            ASSERT_TRUE(bits_equal(ta.supply, tb.supply));
            ASSERT_TRUE(bits_equal(ta.allowance, tb.allowance));
            ASSERT_TRUE(bits_equal(ta.savings, tb.savings));
        }
        for (CoreId c = 0; c < 4; ++c) {
            ASSERT_TRUE(bits_equal(a.core(c).price, b.core(c).price))
                << "core " << c << " price diverged at round " << round;
            ASSERT_TRUE(bits_equal(a.core(c).supply, b.core(c).supply));
        }
        ASSERT_EQ(chip_a.cluster(0).level(), chip_b.cluster(0).level());
        ASSERT_EQ(chip_a.cluster(1).level(), chip_b.cluster(1).level());
    }
    // Both sides kept the same books.
    EXPECT_EQ(a.clearing_stats().tasks_skipped,
              b.clearing_stats().tasks_skipped);
    EXPECT_EQ(a.clearing_stats().rounds_early_exit,
              b.clearing_stats().rounds_early_exit);
}

} // namespace
} // namespace ppm::market

/**
 * @file
 * Reproduction of the paper's running examples:
 *  - Table 1: task- and core-level bidding dynamics,
 *  - Table 2: cluster-level DVFS through price inflation,
 *  - Table 3: chip-level allowance control under the TDP.
 *
 * The bids, prices, supplies, allowances, V-F changes and chip-state
 * transitions are pinned to the paper's values.  (The savings column
 * of Table 3 follows a display convention the paper does not fully
 * specify; we assert the semantic properties it illustrates --
 * accrual while underspending, freeze during V-F transitions, and
 * depletion of the low-priority task's savings -- rather than the
 * exact cell values.)
 */

#include <gtest/gtest.h>

#include "market/market.hh"
#include "tests/market/market_test_util.hh"

namespace ppm::market {
namespace {

class PaperTableTest : public ::testing::Test
{
  protected:
    PaperTableTest() : chip_(test::paper_chip()) {}

    /** Build the market with tasks ta (prio 2) and tb (prio 1). */
    void start()
    {
        market_ = std::make_unique<Market>(&chip_, test::paper_config());
        market_->add_task(0, 2, 0);  // ta.
        market_->add_task(1, 1, 0);  // tb.
    }

    /** Run one round, feeding the Table 3 power curve. */
    RoundReport round()
    {
        // The sensor reading entering round N reflects the supply of
        // round N-1.
        market_->set_cluster_power(0, test::paper_power(prev_supply_));
        prev_supply_ = chip_.cluster(0).supply();
        return market_->round();
    }

    hw::Chip chip_;
    std::unique_ptr<Market> market_;
    Pu prev_supply_ = 300.0;
};

TEST_F(PaperTableTest, Table1TaskAndCoreDynamics)
{
    start();
    market_->set_demand(0, 200.0);
    market_->set_demand(1, 100.0);

    // Round 1: both agents open with $1 bids; price $0.0066/PU;
    // both receive 150 PU.
    round();
    EXPECT_NEAR(market_->task(0).bid, 1.0, 1e-9);
    EXPECT_NEAR(market_->task(1).bid, 1.0, 1e-9);
    EXPECT_NEAR(market_->core(0).price, 2.0 / 300.0, 1e-9);
    EXPECT_NEAR(market_->task(0).supply, 150.0, 1e-6);
    EXPECT_NEAR(market_->task(1).supply, 150.0, 1e-6);

    // Round 2: ta raises to $1.33, tb lowers to $0.66; supplies match
    // the demands (200, 100) at the unchanged price.
    round();
    EXPECT_NEAR(market_->task(0).bid, 1.3333, 1e-3);
    EXPECT_NEAR(market_->task(1).bid, 0.6667, 1e-3);
    EXPECT_NEAR(market_->core(0).price, 2.0 / 300.0, 1e-9);
    EXPECT_NEAR(market_->task(0).supply, 200.0, 0.5);
    EXPECT_NEAR(market_->task(1).supply, 100.0, 0.5);
    EXPECT_DOUBLE_EQ(chip_.cluster(0).supply(), 300.0);
}

TEST_F(PaperTableTest, Table2ClusterDynamics)
{
    start();
    market_->set_demand(0, 200.0);
    market_->set_demand(1, 100.0);
    round();
    round();

    // Round 3: ta's demand rises to 300 PU.  Its bid climbs to $1.99;
    // the price inflates to $0.0088 > base * (1 + 0.2), triggering a
    // supply increase from 300 to 400 PU.
    market_->set_demand(0, 300.0);
    RoundReport r3 = round();
    EXPECT_NEAR(market_->task(0).bid, 2.0, 0.02);
    EXPECT_NEAR(market_->core(0).price, 0.00889, 1e-4);
    EXPECT_NEAR(market_->task(0).supply, 225.0, 1.0);
    EXPECT_NEAR(market_->task(1).supply, 75.0, 1.0);
    EXPECT_EQ(r3.vf_changes, 1);
    EXPECT_DOUBLE_EQ(chip_.cluster(0).supply(), 400.0);
    EXPECT_TRUE(market_->bids_frozen(0));

    // Round 4: bids are frozen while the agents observe the new
    // supply; the price relaxes to $0.0066 and becomes the new base.
    round();
    EXPECT_NEAR(market_->task(0).bid, 2.0, 0.02);
    EXPECT_NEAR(market_->core(0).price, 0.00667, 1e-4);
    EXPECT_NEAR(market_->task(0).supply, 300.0, 1.5);
    EXPECT_NEAR(market_->task(1).supply, 100.0, 1.5);
    EXPECT_NEAR(market_->core(0).base_price, 0.00667, 1e-4);
    EXPECT_FALSE(market_->bids_frozen(0));
}

TEST_F(PaperTableTest, Table3ChipDynamics)
{
    start();
    market_->set_demand(0, 200.0);
    market_->set_demand(1, 100.0);
    // Rounds 1-2: demand met at 300 PU, allowance untouched, split
    // 2:1 by priority.
    round();
    round();
    EXPECT_EQ(market_->state(), ChipState::kNormal);
    EXPECT_NEAR(market_->global_allowance(), 4.5, 1e-9);
    EXPECT_NEAR(market_->task(0).allowance, 3.0, 1e-9);
    EXPECT_NEAR(market_->task(1).allowance, 1.5, 1e-9);

    // ta's demand rises to 300: the chip agent grows the allowance
    // proportionally to the unmet demand (Delta = A * (D-S)/D =
    // 4.5 * 100/400) in the same round the task agents re-bid.
    market_->set_demand(0, 300.0);
    RoundReport r3 = round();
    EXPECT_NEAR(market_->global_allowance(), 4.5 * (1.0 + 100.0 / 400.0),
                1e-6);
    EXPECT_EQ(r3.vf_changes, 1);  // Inflation -> 400 PU.
    round();  // Frozen round at 400 PU; demand met again.
    const Money settled = market_->global_allowance();
    round();
    EXPECT_NEAR(market_->global_allowance(), settled, 1e-9);
    // Allowance ratio still honours the 2:1 priorities.
    EXPECT_NEAR(market_->task(0).allowance,
                2.0 * market_->task(1).allowance, 1e-9);

    // tb's demand rises to 300 PU: 600 PU total cannot be produced
    // below the emergency supply.  The system must pass
    // normal -> threshold -> emergency, get its allowance cut by
    // exactly A/3 (Delta = A * (2.25-3)/2.25), and then stabilize in
    // the threshold band at 500 PU.
    market_->set_demand(1, 300.0);
    bool saw_threshold = false;
    bool saw_emergency = false;
    Money allowance_before_cut = 0.0;
    bool checked_cut = false;
    for (int i = 0; i < 30; ++i) {
        const Money prev_allowance = market_->global_allowance();
        const RoundReport r = round();
        saw_threshold |= r.state == ChipState::kThreshold;
        if (r.state == ChipState::kEmergency && !saw_emergency) {
            saw_emergency = true;
            allowance_before_cut = prev_allowance;
        }
        if (saw_emergency && !checked_cut) {
            checked_cut = true;
            EXPECT_NEAR(market_->global_allowance(),
                        allowance_before_cut * (2.0 / 3.0), 1e-6);
        }
    }
    EXPECT_TRUE(saw_threshold);
    ASSERT_TRUE(saw_emergency);

    // Converge: the paper's round-16 steady state has the supply at
    // 500 PU in the threshold band, the high-priority ta satisfied
    // (300 PU) and the low-priority tb suffering (~200 PU).
    for (int i = 0; i < 60; ++i)
        round();
    EXPECT_LE(chip_.cluster(0).supply(), 500.0);
    EXPECT_NE(market_->state(), ChipState::kEmergency);
    EXPECT_GE(market_->task(0).supply, 280.0);
    EXPECT_GT(market_->task(0).supply, market_->task(1).supply);
    EXPECT_LT(market_->task(1).supply, 250.0);
}

TEST_F(PaperTableTest, Table3SavingsSemantics)
{
    start();
    market_->set_demand(0, 200.0);
    market_->set_demand(1, 100.0);
    round();

    // Underspending accrues savings: after round 1 both agents bid $1
    // below their allowances (3.0 / 1.5).
    EXPECT_NEAR(market_->task(0).savings, 2.0, 1e-6);
    EXPECT_NEAR(market_->task(1).savings, 0.5, 1e-6);

    round();
    const Money before_freeze_a = market_->task(0).savings;

    // Trigger a V-F change; the frozen round must not accrue savings.
    market_->set_demand(0, 300.0);
    round();  // Change decided here (effective next round).
    const Money at_change_a = market_->task(0).savings;
    round();  // Frozen round.
    EXPECT_NEAR(market_->task(0).savings, at_change_a, 1e-9);
    EXPECT_GT(at_change_a, before_freeze_a);
}

TEST_F(PaperTableTest, SavingsCapBindsToAllowanceMultiple)
{
    PpmConfig cfg = test::paper_config();
    cfg.savings_cap_frac = 0.5;
    market_ = std::make_unique<Market>(&chip_, cfg);
    market_->add_task(0, 2, 0);
    market_->add_task(1, 1, 0);
    market_->set_demand(0, 10.0);
    market_->set_demand(1, 10.0);
    for (int i = 0; i < 20; ++i)
        round();
    EXPECT_LE(market_->task(0).savings,
              0.5 * market_->task(0).allowance + 1e-9);
}

} // namespace
} // namespace ppm::market

/**
 * @file
 * Shared fixtures for the market tests: the toy single-cluster,
 * single-core platform of the paper's running examples (Tables 1-3),
 * with discrete supplies {300, 400, 500, 600} PU and the synthetic
 * power curve of Table 3 (<=400 PU -> 0.8 W, 500 PU -> 2 W,
 * 600 PU -> 3 W).
 */

#ifndef PPM_TESTS_MARKET_TEST_UTIL_HH
#define PPM_TESTS_MARKET_TEST_UTIL_HH

#include "hw/platform.hh"
#include "market/config.hh"

namespace ppm::market::test {

/** The running example's platform: one cluster with one core. */
inline hw::Chip
paper_chip(int cores_per_cluster = 1, int clusters = 1)
{
    hw::VfTable table(std::vector<hw::VfPoint>{
        {300, 1.0}, {400, 1.0}, {500, 1.0}, {600, 1.0}});
    std::vector<hw::Chip::ClusterSpec> specs;
    for (int v = 0; v < clusters; ++v) {
        specs.push_back(hw::Chip::ClusterSpec{hw::little_core_params(),
                                              table,
                                              cores_per_cluster});
    }
    return hw::Chip(specs);
}

/** Market parameters of the running examples. */
inline PpmConfig
paper_config()
{
    PpmConfig cfg;
    cfg.tolerance = 0.2;         // delta in Tables 2-3.
    cfg.min_bid = 0.01;
    cfg.initial_bid = 1.0;       // Table 1 starts at $1.
    cfg.initial_allowance = 4.5; // Table 3 starts at $4.5.
    cfg.savings_cap_frac = 10.0; // Loose cap, as in the example.
    cfg.w_tdp = 2.25;            // Table 3.
    cfg.w_th = 1.75;             // Table 3.
    cfg.demand_slack = 0.0;        // The example uses exact deficits,
    cfg.money_anchor_rate = 0.0;   // no money-supply decay, and
    cfg.allowance_growth_cap = 1.0;// uncapped allowance growth.
    cfg.emergency_savings_tax = 0.0;  // Allowance contraction only.
    return cfg;
}

/** Table 3's synthetic power curve as a function of supply. */
inline Watts
paper_power(Pu supply)
{
    if (supply >= 600.0)
        return 3.0;
    if (supply >= 500.0)
        return 2.0;
    return 0.8;
}

} // namespace ppm::market::test

#endif // PPM_TESTS_MARKET_TEST_UTIL_HH

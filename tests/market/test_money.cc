/**
 * @file
 * Tests for the monetary-policy mechanisms that keep the market
 * well-conditioned over long runs: the money-supply anchor (quantity
 * theory of money), the allowance growth cap, the emergency savings
 * tax, and the headroom-gated deficit.
 */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "market/lbt.hh"
#include "market/market.hh"
#include "tests/market/market_test_util.hh"

namespace ppm::market {
namespace {

TEST(Money, GrowthCappedPerRound)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.allowance_growth_cap = 0.10;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.set_demand(0, 600.0);  // Huge deficit at 300 PU supply.
    market.round();
    const Money a1 = market.global_allowance();
    market.round();
    // Deficit/Demand = 0.5 would double-ish; the cap limits to +10%.
    EXPECT_LE(market.global_allowance(), a1 * 1.10 + 1e-9);
}

TEST(Money, AnchorDecaysInflatedAllowance)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.money_anchor_rate = 0.05;
    cfg.money_anchor_slack = 2.0;
    cfg.initial_allowance = 1000.0;  // Wildly inflated money supply.
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.set_demand(0, 100.0);  // Satisfied at 300 PU: no deficit.
    for (int i = 0; i < 400; ++i)
        market.round();
    // The allowance must have decayed toward slack * circulating bids.
    const Money circulating = market.task(0).bid;
    EXPECT_LT(market.global_allowance(), 3.0 * circulating + 1.0);
}

TEST(Money, AnchorDisabledKeepsAllowance)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();  // anchor rate 0.
    cfg.initial_allowance = 1000.0;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.set_demand(0, 100.0);
    for (int i = 0; i < 50; ++i)
        market.round();
    EXPECT_NEAR(market.global_allowance(), 1000.0, 1e-6);
}

TEST(Money, AnchorGatedByUnmetDemand)
{
    // An overloaded cluster pinned at its top level: no headroom so
    // the allowance cannot grow, but demand is unmet so it must not
    // decay either (starving tasks still need their money).
    hw::Chip chip = test::paper_chip();
    chip.cluster(0).set_level(3);  // 600 PU (top level).
    PpmConfig cfg = test::paper_config();
    cfg.money_anchor_rate = 0.05;
    cfg.initial_allowance = 500.0;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 500.0);
    market.set_demand(1, 500.0);  // 1000 > 600: permanent deficit.
    market.round();
    const Money a = market.global_allowance();
    for (int i = 0; i < 50; ++i)
        market.round();
    EXPECT_NEAR(market.global_allowance(), a, 1e-6);
}

TEST(Money, NoGrowthWithoutHeadroom)
{
    hw::Chip chip = test::paper_chip();
    chip.cluster(0).set_level(3);  // Top level.
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 5000.0);  // Unsatisfiable.
    market.round();
    const Money a = market.global_allowance();
    market.round();
    market.round();
    EXPECT_NEAR(market.global_allowance(), a, 1e-9);
}

TEST(Money, EmergencyTaxDrainsSavings)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.emergency_savings_tax = 0.25;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.set_demand(0, 10.0);  // Underspends: savings accrue.
    for (int i = 0; i < 10; ++i) {
        market.set_cluster_power(0, 0.5);
        market.round();
    }
    const Money before = market.task(0).savings;
    ASSERT_GT(before, 0.0);
    market.set_cluster_power(0, 3.0);  // Above the 2.25 W TDP.
    market.round();
    ASSERT_EQ(market.state(), ChipState::kEmergency);
    EXPECT_LE(market.task(0).savings, 0.75 * before + 1e-9);
}

TEST(Money, SavingsCapIsNonConfiscatory)
{
    // A balance accrued under a high allowance survives an allowance
    // collapse (it only stops growing), rather than being seized.
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.savings_cap_frac = 1.0;
    cfg.initial_allowance = 100.0;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 10.0);
    market.set_demand(1, 10.0);
    for (int i = 0; i < 10; ++i)
        market.round();
    const Money banked = market.task(0).savings;
    ASSERT_GT(banked, 10.0);
    // Emergency collapses the allowance (no tax in this config).
    for (int i = 0; i < 10; ++i) {
        market.set_cluster_power(0, 3.0);
        market.round();
    }
    EXPECT_GT(market.task(0).savings, 0.5 * banked);
    // But it cannot grow any further while above the cap.
    const Money held = market.task(0).savings;
    market.set_cluster_power(0, 0.5);
    market.round();
    EXPECT_LE(market.task(0).savings, held + 1e-9);
}

TEST(Money, AllowanceCeilingHolds)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.max_allowance = 100.0;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);
    market.set_demand(0, 550.0);  // Persistent deficit with headroom.
    for (int i = 0; i < 200; ++i)
        market.round();
    EXPECT_LE(market.global_allowance(), 100.0 + 1e-9);
}

TEST(Money, DistributedLbtRestrictsSourceCluster)
{
    // propose_migration_from(v) must only move tasks out of cluster v.
    hw::Chip chip = hw::tc2_chip();
    PpmConfig cfg;
    cfg.w_tdp = 100.0;
    cfg.w_th = 99.0;
    Market market(&chip, cfg);
    market.add_task(0, 1, 0);  // LITTLE, starving pair.
    market.add_task(1, 1, 0);
    market.add_task(2, 1, 3);  // big, starving pair.
    market.add_task(3, 1, 3);
    market.set_demand(0, 700.0);
    market.set_demand(1, 700.0);
    market.set_demand(2, 900.0);
    market.set_demand(3, 900.0);
    for (int i = 0; i < 30; ++i) {
        market.set_cluster_power(0, 1.0);
        market.set_cluster_power(1, 2.0);
        market.round();
    }
    LbtModule lbt(&market,
                  [&](TaskId t, ClusterId) {
                      return market.task(t).demand;
                  });
    const Movement from_little = lbt.propose_migration_from(0);
    if (from_little.valid()) {
        EXPECT_EQ(chip.cluster_of(from_little.from), 0);
    }
    const Movement from_big = lbt.propose_migration_from(1);
    if (from_big.valid()) {
        EXPECT_EQ(chip.cluster_of(from_big.from), 1);
    }
}

} // namespace
} // namespace ppm::market

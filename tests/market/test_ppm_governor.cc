/**
 * @file
 * Tests for the PPM governor: end-to-end behaviour of the market +
 * LBT stack bound to a live simulation.
 */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm::market {
namespace {

sim::Simulation
make_sim(std::vector<workload::TaskSpec> specs, PpmGovernorConfig cfg,
         SimTime duration, std::vector<CoreId> placement = {})
{
    sim::SimConfig sim_cfg;
    sim_cfg.duration = duration;
    sim_cfg.placement = std::move(placement);
    return sim::Simulation(hw::tc2_chip(), specs,
                           std::make_unique<PpmGovernor>(cfg), sim_cfg);
}

TEST(PpmGovernor, SatisfiesFeasibleWorkload)
{
    // Three modest tasks, one per LITTLE core after balancing.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 400.0),
        test::steady_spec("b", 1, 400.0),
        test::steady_spec("c", 1, 400.0),
    };
    auto sim = make_sim(specs, PpmGovernorConfig{}, 60 * kSecond);
    const auto summary = sim.run();
    EXPECT_LT(summary.any_below_miss, 0.10);
}

TEST(PpmGovernor, SetsFrequencyNearDemandNotMax)
{
    // One 400 PU task: the LITTLE cluster should settle well below
    // its maximum frequency (energy proportionality).
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("solo", 1, 400.0)};
    auto sim = make_sim(specs, PpmGovernorConfig{}, 60 * kSecond);
    sim.run();
    EXPECT_LE(sim.chip().cluster(0).mhz(), 700.0);
    EXPECT_GE(sim.chip().cluster(0).mhz(), 400.0);
}

TEST(PpmGovernor, GatesIdleBigCluster)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("solo", 1, 300.0)};
    auto sim = make_sim(specs, PpmGovernorConfig{}, 30 * kSecond);
    sim.run();
    EXPECT_FALSE(sim.chip().cluster(1).powered());
}

TEST(PpmGovernor, UsesBigClusterWhenLittleInsufficient)
{
    // Four 700 PU tasks cannot fit on three LITTLE cores (pairs
    // exceed 1000 PU): at least one task must end up on big.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 700.0),
        test::steady_spec("b", 1, 700.0),
        test::steady_spec("c", 1, 700.0),
        test::steady_spec("d", 1, 700.0),
    };
    auto sim = make_sim(specs, PpmGovernorConfig{}, 120 * kSecond);
    const auto summary = sim.run();
    int on_big = 0;
    for (TaskId t = 0; t < 4; ++t) {
        if (sim.chip().cluster_of(sim.scheduler().core_of(t)) == 1)
            ++on_big;
    }
    EXPECT_GE(on_big, 1);
    EXPECT_LT(summary.any_below_miss, 0.25);
}

TEST(PpmGovernor, RespectsTdpOnAverage)
{
    PpmGovernorConfig cfg;
    cfg.market.w_tdp = 3.0;
    cfg.market.w_th = 2.2;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 900.0), test::steady_spec("b", 1, 900.0),
        test::steady_spec("c", 1, 900.0), test::steady_spec("d", 1, 900.0),
        test::steady_spec("e", 1, 900.0),
    };
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 120 * kSecond;
    sim_cfg.tdp_for_metrics = 3.0;
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<PpmGovernor>(cfg), sim_cfg);
    const auto summary = sim.run();
    EXPECT_LT(summary.avg_power, 3.1);
    // Transient overshoots are bounded by the emergency response.
    EXPECT_LT(summary.over_tdp_fraction, 0.3);
}

TEST(PpmGovernor, PriorityTaskWinsUnderContention)
{
    // Two 700 PU tasks pinned to one LITTLE core (LBT disabled):
    // together they exceed the core's 1000 PU, and the priority-7
    // task must meet its range far more often.
    PpmGovernorConfig cfg;
    cfg.enable_lbt = false;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("vip", 7, 700.0),
        test::steady_spec("low", 1, 700.0),
    };
    auto sim = make_sim(specs, cfg, 120 * kSecond, {0, 0});
    const auto summary = sim.run();
    EXPECT_LT(summary.task_below[0] + 0.2, summary.task_below[1]);
}

TEST(PpmGovernor, NiceValuesTrackPurchases)
{
    PpmGovernorConfig cfg;
    cfg.enable_lbt = false;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("vip", 7, 700.0),
        test::steady_spec("low", 1, 700.0),
    };
    auto sim = make_sim(specs, cfg, 30 * kSecond, {0, 0});
    sim.run();
    // Both start on core 0; the high-priority task buys more supply,
    // so the low-priority task carries the larger nice value.
    EXPECT_LE(sim.scheduler().nice_of(0), sim.scheduler().nice_of(1));
}

TEST(PpmGovernor, AutoBidPeriodFollowsShortestTaskPeriod)
{
    // Paper Section 3.4: bid period = max(sched epoch, shortest task
    // period).  A 30 hb/s task has a 33.3 ms period -> 34 ms at the
    // 1 ms tick.
    PpmGovernorConfig cfg;
    cfg.bid_period = 0;  // Auto.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("video", 1, 300.0, 1.6, /*target_hr=*/30.0),
        test::steady_spec("slow", 1, 300.0, 1.6, /*target_hr=*/5.0),
    };
    auto gov = std::make_unique<PpmGovernor>(cfg);
    auto* gp = gov.get();
    sim::SimConfig sim_cfg;
    sim_cfg.duration = kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs, std::move(gov), sim_cfg);
    sim.run();
    EXPECT_EQ(gp->bid_period(), 34 * kMillisecond);
}

TEST(PpmGovernor, AutoBidPeriodFloorsAtSchedEpoch)
{
    // A 200 hb/s task would imply a 5 ms period; the Linux scheduling
    // epoch (10 ms) is the floor.
    PpmGovernorConfig cfg;
    cfg.bid_period = 0;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("fast", 1, 300.0, 1.6, /*target_hr=*/200.0)};
    auto gov = std::make_unique<PpmGovernor>(cfg);
    auto* gp = gov.get();
    sim::SimConfig sim_cfg;
    sim_cfg.duration = kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs, std::move(gov), sim_cfg);
    sim.run();
    EXPECT_EQ(gp->bid_period(), 10 * kMillisecond);
}

TEST(PpmGovernor, EmitsMarketRoundTelemetry)
{
    // With tracing on, every bid round must land one market_round
    // record on the bus: task bids, core prices, cluster freeze
    // state, the chip allowance and the chip state.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 400.0),
        test::steady_spec("b", 1, 400.0),
    };
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 10 * kSecond;
    sim_cfg.trace = true;
    sim::Simulation sim(
        hw::tc2_chip(), specs,
        std::make_unique<PpmGovernor>(PpmGovernorConfig{}), sim_cfg);
    sim.run();

    const auto& rec = sim.recorder();
    for (const char* series :
         {"round", "chip_state", "allowance", "total_demand",
          "total_supply", "task0_bid", "task0_supply", "task1_savings",
          "core0_price", "core0_base_price", "cluster0_freeze",
          "cluster0_level", "cluster0_power_w"}) {
        EXPECT_FALSE(rec.series(series).empty()) << series;
    }
    // One record per 32 ms bid round over 10 s.
    EXPECT_GT(rec.series("task0_bid").size(), 100u);
    // The histogram and counter channels ride along.
    EXPECT_NE(sim.bus().histogram("market_allowance"), nullptr);
    EXPECT_GE(sim.bus().counter("bid_freeze_epochs"), 1);
}

TEST(PpmGovernor, NoTelemetryOverheadWhenDisabled)
{
    // Identical runs with and without tracing must produce identical
    // summaries: telemetry observes the market, never steers it.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 400.0),
        test::steady_spec("b", 1, 400.0),
    };
    sim::SimConfig plain_cfg;
    plain_cfg.duration = 20 * kSecond;
    sim::Simulation plain(
        hw::tc2_chip(), specs,
        std::make_unique<PpmGovernor>(PpmGovernorConfig{}), plain_cfg);
    const auto a = plain.run();

    sim::SimConfig traced_cfg = plain_cfg;
    traced_cfg.trace = true;
    sim::Simulation traced(
        hw::tc2_chip(), specs,
        std::make_unique<PpmGovernor>(PpmGovernorConfig{}), traced_cfg);
    const auto b = traced.run();

    EXPECT_EQ(a.any_below_miss, b.any_below_miss);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.avg_power, b.avg_power);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.vf_transitions, b.vf_transitions);
    EXPECT_EQ(a.peak_temp_c, b.peak_temp_c);
}

TEST(PpmGovernor, StableWorkloadSettlesVfTransitions)
{
    // After convergence, a steady workload should cause almost no
    // further V-F transitions (thermal-cycling avoidance, delta
    // hysteresis).
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 500.0),
        test::steady_spec("b", 1, 500.0),
    };
    auto sim = make_sim(specs, PpmGovernorConfig{}, 30 * kSecond);
    sim.run();
    const long early = sim.vf_transitions();
    // 30 more seconds of steady state.
    sim::SimConfig cfg2;
    (void)cfg2;
    // Continue the same simulation.
    // (run() already consumed the duration; step manually.)
    for (int i = 0; i < 30000; ++i)
        sim.step();
    const long late = sim.vf_transitions();
    EXPECT_LE(late - early, 6);
}

} // namespace
} // namespace ppm::market

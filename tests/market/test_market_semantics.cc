/**
 * @file
 * Additional paper-semantics tests for the market: non-constrained
 * core deflation to the bid floor, bid freezing visibility, input
 * validation, and the round-up of cluster demand.
 */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "market/market.hh"
#include "tests/market/market_test_util.hh"

namespace ppm::market {
namespace {

TEST(MarketSemantics, NonConstrainedCoreBidsFallToFloor)
{
    // Two cores in one cluster: the constrained core pins the level;
    // the over-supplied core's task agent has no reason to bid and
    // its price falls until the bid hits b_min (Section 3.2.4).
    hw::Chip chip = test::paper_chip(2, 1);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);  // Constrained: needs most of the core.
    market.add_task(1, 1, 1);  // Over-supplied.
    market.set_demand(0, 550.0);
    market.set_demand(1, 50.0);
    for (int i = 0; i < 100; ++i)
        market.round();
    EXPECT_EQ(market.constrained_core(0), 0);
    EXPECT_NEAR(market.task(1).bid, market.config().min_bid, 1e-9);
    // ... while the over-supplied task still receives the full core.
    EXPECT_NEAR(market.task(1).supply, chip.core_supply(1), 1e-6);
}

TEST(MarketSemantics, FreezeIsVisibleExactlyOneRound)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.set_demand(0, 250.0);
    market.round();
    ASSERT_FALSE(market.bids_frozen(0));
    // Demand above 300 PU forces an up-step.
    market.set_demand(0, 380.0);
    int frozen_rounds = 0;
    for (int i = 0; i < 10; ++i) {
        market.round();
        if (market.bids_frozen(0))
            ++frozen_rounds;
    }
    EXPECT_EQ(chip.cluster(0).supply(), 400.0);
    EXPECT_EQ(frozen_rounds, 1);
}

TEST(MarketSemantics, ClusterLevelCoversConstrainedDemand)
{
    // Steady state honours the round-up rule: the level settles at
    // the smallest supply >= constrained demand.
    hw::Chip chip = test::paper_chip(2, 1);
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 1);
    market.set_demand(0, 420.0);
    market.set_demand(1, 100.0);
    for (int i = 0; i < 120; ++i)
        market.round();
    EXPECT_DOUBLE_EQ(chip.cluster(0).supply(), 500.0);
}

TEST(MarketSemantics, SupplyNeverExceedsCoreSupply)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 3, 0);
    market.add_task(1, 1, 0);
    for (int round = 0; round < 50; ++round) {
        market.set_demand(0, 100.0 + round * 10.0);
        market.set_demand(1, 600.0 - round * 10.0);
        market.round();
        EXPECT_LE(market.task(0).supply,
                  market.core(0).supply + 1e-9);
        EXPECT_LE(market.task(1).supply,
                  market.core(0).supply + 1e-9);
    }
}

TEST(MarketSemanticsDeath, RejectsOutOfOrderTaskIds)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    EXPECT_DEATH(market.add_task(3, 1, 0), "dense");
}

TEST(MarketSemanticsDeath, RejectsBadPriority)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    EXPECT_DEATH(market.add_task(0, 0, 0), "priority");
}

TEST(MarketSemanticsDeath, RejectsNegativeDemand)
{
    hw::Chip chip = test::paper_chip();
    Market market(&chip, test::paper_config());
    market.add_task(0, 1, 0);
    EXPECT_DEATH(market.set_demand(0, -1.0), "non-negative");
}

TEST(MarketSemanticsDeath, RejectsInvertedTdpBand)
{
    hw::Chip chip = test::paper_chip();
    PpmConfig cfg = test::paper_config();
    cfg.w_th = cfg.w_tdp + 1.0;
    EXPECT_DEATH(Market(&chip, cfg), "W_th");
}

} // namespace
} // namespace ppm::market

/**
 * @file
 * Tests for the PPM governor's invocation-frequency hierarchy
 * (Section 3.4: load balancing every 3 bid rounds, task migration
 * every 6) and for run-level determinism of the whole market stack.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "hw/platform.hh"
#include "market/market.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "tests/market/market_test_util.hh"
#include "tests/test_util.hh"

namespace ppm::market {
namespace {

TEST(GovernorCadence, MarketRoundsFollowBidPeriod)
{
    PpmGovernorConfig cfg;
    cfg.bid_period = 50 * kMillisecond;
    std::vector<workload::TaskSpec> specs{
        ppm::test::steady_spec("t", 1, 300.0)};
    auto gov = std::make_unique<PpmGovernor>(cfg);
    auto* gp = gov.get();
    sim::SimConfig sim_cfg;
    sim_cfg.duration = kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs, std::move(gov), sim_cfg);
    sim.run();
    // 1 s / 50 ms = 20 rounds (first fires at t = 50 ms).
    EXPECT_EQ(gp->market().rounds(), 19);
}

TEST(GovernorCadence, DisablingLbtPreventsMigrations)
{
    PpmGovernorConfig cfg;
    cfg.enable_lbt = false;
    // A workload that would definitely benefit from migration.
    std::vector<workload::TaskSpec> specs{
        ppm::test::steady_spec("a", 1, 700.0),
        ppm::test::steady_spec("b", 1, 700.0),
    };
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 30 * kSecond;
    sim_cfg.placement = {0, 0};
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<PpmGovernor>(cfg), sim_cfg);
    const auto summary = sim.run();
    EXPECT_EQ(summary.migrations, 0);
}

TEST(GovernorCadence, DisablingPowerGatingKeepsClustersOn)
{
    PpmGovernorConfig cfg;
    cfg.power_gate_idle = false;
    std::vector<workload::TaskSpec> specs{
        ppm::test::steady_spec("t", 1, 200.0)};
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 10 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<PpmGovernor>(cfg), sim_cfg);
    sim.run();
    EXPECT_TRUE(sim.chip().cluster(1).powered());
}

TEST(GovernorCadence, MigrationPeriodIsTwiceLoadBalancing)
{
    // Structural check on the configured hierarchy: with
    // lb_every_bids = 3 and mig_every_lbs = 2, movements can only
    // ever be enacted on multiples of 3 bid rounds.
    PpmGovernorConfig cfg;
    EXPECT_EQ(cfg.lb_every_bids, 3);
    EXPECT_EQ(cfg.mig_every_lbs, 2);
}

TEST(MarketDeterminism, IdenticalInputsIdenticalTrajectories)
{
    auto run_once = [](std::uint64_t seed) {
        hw::Chip chip = test::paper_chip(2, 2);
        Market market(&chip, test::paper_config());
        Rng rng(seed);
        for (TaskId t = 0; t < 5; ++t) {
            market.add_task(t, 1 + static_cast<int>(t % 3),
                            static_cast<CoreId>(
                                rng.uniform_int(0, 3)));
        }
        std::vector<double> fingerprint;
        for (int round = 0; round < 100; ++round) {
            for (TaskId t = 0; t < 5; ++t)
                market.set_demand(t, rng.uniform(10.0, 600.0));
            for (ClusterId v = 0; v < 2; ++v)
                market.set_cluster_power(v, rng.uniform(0.0, 3.0));
            market.round();
            for (TaskId t = 0; t < 5; ++t) {
                fingerprint.push_back(market.task(t).bid);
                fingerprint.push_back(market.task(t).supply);
                fingerprint.push_back(market.task(t).savings);
            }
            fingerprint.push_back(market.global_allowance());
        }
        return fingerprint;
    };
    const auto a = run_once(99);
    const auto b = run_once(99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_DOUBLE_EQ(a[i], b[i]) << "index " << i;
}

} // namespace
} // namespace ppm::market

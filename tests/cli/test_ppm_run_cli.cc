/**
 * @file
 * Black-box CLI validation of the ppm_run binary: malformed arguments
 * must produce a one-line error and a non-zero exit code, and a valid
 * invocation must exit zero.  The binary path is injected by CMake as
 * PPM_RUN_BIN.
 */

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#ifndef PPM_RUN_BIN
#error "PPM_RUN_BIN must point at the ppm_run binary"
#endif

namespace {

/** Run ppm_run with `args`, discarding output; returns the exit code. */
int
run_cli(const std::string& args)
{
    const std::string cmd = std::string(PPM_RUN_BIN) + " " + args +
                            " > /dev/null 2> /dev/null";
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** Scratch path unique to this test process. */
std::string
tmp_path(const std::string& stem)
{
    return "/tmp/ppm_cli_" + std::to_string(getpid()) + "_" + stem;
}

std::string
slurp(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

/** Run ppm_run capturing stdout and stderr; returns the exit code. */
int
run_cli_capture(const std::string& args, std::string* out,
                std::string* err)
{
    const std::string out_path = tmp_path("stdout");
    const std::string err_path = tmp_path("stderr");
    const std::string cmd = std::string(PPM_RUN_BIN) + " " + args +
                            " > " + out_path + " 2> " + err_path;
    const int status = std::system(cmd.c_str());
    if (out)
        *out = slurp(out_path);
    if (err)
        *err = slurp(err_path);
    std::remove(out_path.c_str());
    std::remove(err_path.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

TEST(PpmRunCli, ValidTinyRunExitsZero)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5"), 0);
}

TEST(PpmRunCli, UnknownFlagIsRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --frobnicate"), 2);
}

TEST(PpmRunCli, NegativeDurationIsRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds -3"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 0"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds abc"), 2);
}

TEST(PpmRunCli, BadGovernorNameIsRejected)
{
    EXPECT_EQ(run_cli("--policy BOGUS --set l1 --seconds 1"), 2);
}

TEST(PpmRunCli, BadNumericFlagsAreRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp -1"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --seed -4"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --priority 0"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --avg-seeds 0"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --jobs -2"), 2);
}

TEST(PpmRunCli, NumericParsingIsStrict)
{
    // Trailing garbage after an otherwise valid number.
    EXPECT_EQ(run_cli("--set l1 --seconds 4x"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5w"), 2);
    // Out-of-range values must error, not clamp.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 "
                      "--seed 99999999999999999999999"),
              2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 1e999"), 2);
    // Non-finite values are valid strtod input but never valid knobs.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp inf"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp nan"), 2);
    // Empty value.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp ''"), 2);
}

TEST(PpmRunCli, MalformedFaultSpecIsRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --faults gamma_rays"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --faults sensor,rate=-1"),
              2);
}

TEST(PpmRunCli, FaultedRunExitsZero)
{
    EXPECT_EQ(
        run_cli("--set l1 --seconds 1 --tdp 3.5 --faults all,seed=3"),
        0);
}

TEST(PpmRunCli, NoIncrementalFlagIsAccepted)
{
    EXPECT_EQ(
        run_cli("--set l1 --seconds 1 --tdp 3.5 --no-incremental"), 0);
}

TEST(PpmRunCli, NoIncrementalRejectsAnInlineValue)
{
    // Boolean flag: an attached value is a usage error.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --no-incremental=1"), 2);
}

TEST(PpmRunCli, UnwritableTracePathFailsBeforeSimulating)
{
    EXPECT_NE(run_cli("--set l1 --seconds 1 "
                      "--trace /nonexistent-dir/trace.csv"),
              0);
    EXPECT_NE(run_cli("--set l1 --seconds 1 "
                      "--trace-out /nonexistent-dir/trace.csv"),
              0);
}

// ----------------------------------------------------------------
// Snapshot flags.

TEST(PpmRunCli, SnapshotFlagPairingIsValidated)
{
    // Semantic conflicts go through fatal() -> exit 1 (malformed
    // individual flags stay exit 2, as elsewhere in this suite).
    // --snapshot-at/--snapshot-every without an output path.
    EXPECT_EQ(run_cli("--set l1 --seconds 2 --snapshot-at 500"), 1);
    EXPECT_EQ(run_cli("--set l1 --seconds 2 --snapshot-every 500"), 1);
    // An output path without a trigger.
    EXPECT_EQ(run_cli("--set l1 --seconds 2 --snapshot-out /tmp/x"), 1);
    // Mutually exclusive triggers.
    EXPECT_EQ(run_cli("--set l1 --seconds 2 --snapshot-out /tmp/x "
                      "--snapshot-at 500 --snapshot-every 500"),
              1);
    // Save point past the end of the run.
    EXPECT_EQ(run_cli("--set l1 --seconds 2 --snapshot-out /tmp/x "
                      "--snapshot-at 2000"),
              1);
    // Malformed trigger values are parse errors: exit 2.
    EXPECT_EQ(run_cli("--set l1 --seconds 2 --snapshot-out /tmp/x "
                      "--snapshot-at 0"),
              2);
    EXPECT_EQ(run_cli("--set l1 --seconds 2 --snapshot-out /tmp/x "
                      "--snapshot-every -5"),
              2);
}

TEST(PpmRunCli, KillAndResumeReproducesTheRunThroughTheCli)
{
    const std::string snap = tmp_path("resume.ppmsnap");
    const std::string base = "--set l1 --seconds 2 --tdp 3.5 --seed 5";

    std::string full_out;
    ASSERT_EQ(run_cli_capture(base, &full_out, nullptr), 0);

    ASSERT_EQ(run_cli(base + " --snapshot-out " + snap +
                      " --snapshot-at 700"),
              0);
    std::string resumed_out;
    ASSERT_EQ(run_cli_capture(base + " --snapshot-in " + snap,
                              &resumed_out, nullptr),
              0);
    std::remove(snap.c_str());
    // The resumed process prints the same summary, byte for byte.
    EXPECT_EQ(resumed_out, full_out);
}

TEST(PpmRunCli, CorruptSnapshotsGetDistinctOneLineDiagnostics)
{
    const std::string snap = tmp_path("victim.ppmsnap");
    const std::string base = "--set l1 --seconds 2 --tdp 3.5";
    ASSERT_EQ(run_cli(base + " --snapshot-out " + snap +
                      " --snapshot-at 700"),
              0);
    const std::string good = slurp(snap);
    ASSERT_GT(good.size(), 28u);

    const auto expect_reject = [&](const std::string& bytes,
                                   const std::string& phrase) {
        std::ofstream(snap, std::ios::binary) << bytes;
        std::string err;
        EXPECT_EQ(run_cli_capture(base + " --snapshot-in " + snap,
                                  nullptr, &err),
                  2);
        EXPECT_NE(err.find("cannot restore snapshot"),
                  std::string::npos)
            << err;
        EXPECT_NE(err.find(phrase), std::string::npos) << err;
        // One line, not a stack dump.
        EXPECT_EQ(err.find('\n'), err.size() - 1) << err;
    };

    expect_reject(good.substr(0, 20), "truncated");
    expect_reject(good.substr(0, good.size() - 3), "truncated");
    std::string bad_magic = good;
    bad_magic[0] = 'Z';
    expect_reject(bad_magic, "bad magic");
    std::string bad_version = good;
    bad_version[8] = static_cast<char>(bad_version[8] + 1);
    expect_reject(bad_version, "version mismatch");
    std::string bad_payload = good;
    bad_payload[good.size() - 1] =
        static_cast<char>(bad_payload[good.size() - 1] ^ 0x40);
    expect_reject(bad_payload, "checksum mismatch");

    std::remove(snap.c_str());
    // A missing file reads as truncated (can't even see a header).
    std::string err;
    EXPECT_EQ(run_cli_capture(base + " --snapshot-in " + snap, nullptr,
                              &err),
              2);
    EXPECT_NE(err.find("cannot restore snapshot"), std::string::npos);
}

TEST(PpmRunCli, FleetChipFaultFlagsAreValidated)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5 --fleet 2 "
                      "--faults chip-fail,chip-recover,seed=3"),
              0);
    // Chip-scope faults need a fleet (semantic conflict: exit 1).
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5 "
                      "--faults chip-fail"),
              1);
    // Malformed chip-fault knobs.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5 --fleet 2 "
                      "--faults chip-fail,chip_rate=-1"),
              2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5 --fleet 2 "
                      "--faults chip-degrade,degrade=1.5"),
              2);
}

} // namespace

/**
 * @file
 * Black-box CLI validation of the ppm_run binary: malformed arguments
 * must produce a one-line error and a non-zero exit code, and a valid
 * invocation must exit zero.  The binary path is injected by CMake as
 * PPM_RUN_BIN.
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#ifndef PPM_RUN_BIN
#error "PPM_RUN_BIN must point at the ppm_run binary"
#endif

namespace {

/** Run ppm_run with `args`, discarding output; returns the exit code. */
int
run_cli(const std::string& args)
{
    const std::string cmd = std::string(PPM_RUN_BIN) + " " + args +
                            " > /dev/null 2> /dev/null";
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

TEST(PpmRunCli, ValidTinyRunExitsZero)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5"), 0);
}

TEST(PpmRunCli, UnknownFlagIsRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --frobnicate"), 2);
}

TEST(PpmRunCli, NegativeDurationIsRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds -3"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 0"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds abc"), 2);
}

TEST(PpmRunCli, BadGovernorNameIsRejected)
{
    EXPECT_EQ(run_cli("--policy BOGUS --set l1 --seconds 1"), 2);
}

TEST(PpmRunCli, BadNumericFlagsAreRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp -1"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --seed -4"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --priority 0"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --avg-seeds 0"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --jobs -2"), 2);
}

TEST(PpmRunCli, NumericParsingIsStrict)
{
    // Trailing garbage after an otherwise valid number.
    EXPECT_EQ(run_cli("--set l1 --seconds 4x"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 3.5w"), 2);
    // Out-of-range values must error, not clamp.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 "
                      "--seed 99999999999999999999999"),
              2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp 1e999"), 2);
    // Non-finite values are valid strtod input but never valid knobs.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp inf"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp nan"), 2);
    // Empty value.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --tdp ''"), 2);
}

TEST(PpmRunCli, MalformedFaultSpecIsRejected)
{
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --faults gamma_rays"), 2);
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --faults sensor,rate=-1"),
              2);
}

TEST(PpmRunCli, FaultedRunExitsZero)
{
    EXPECT_EQ(
        run_cli("--set l1 --seconds 1 --tdp 3.5 --faults all,seed=3"),
        0);
}

TEST(PpmRunCli, NoIncrementalFlagIsAccepted)
{
    EXPECT_EQ(
        run_cli("--set l1 --seconds 1 --tdp 3.5 --no-incremental"), 0);
}

TEST(PpmRunCli, NoIncrementalRejectsAnInlineValue)
{
    // Boolean flag: an attached value is a usage error.
    EXPECT_EQ(run_cli("--set l1 --seconds 1 --no-incremental=1"), 2);
}

TEST(PpmRunCli, UnwritableTracePathFailsBeforeSimulating)
{
    EXPECT_NE(run_cli("--set l1 --seconds 1 "
                      "--trace /nonexistent-dir/trace.csv"),
              0);
    EXPECT_NE(run_cli("--set l1 --seconds 1 "
                      "--trace-out /nonexistent-dir/trace.csv"),
              0);
}

} // namespace

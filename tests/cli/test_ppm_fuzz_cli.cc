/**
 * @file
 * Black-box CLI validation of the ppm_fuzz binary: the exit-code
 * contract (0 = clean sweep / clean replay, 1 = violations, 2 = CLI
 * error), strict numeric parsing, and fixture replay.  The binary
 * path and the checked-in fixture directory are injected by CMake as
 * PPM_FUZZ_BIN and PPM_FUZZ_FIXTURE_DIR.
 */

#include <cstdlib>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#ifndef PPM_FUZZ_BIN
#error "PPM_FUZZ_BIN must point at the ppm_fuzz binary"
#endif
#ifndef PPM_FUZZ_FIXTURE_DIR
#error "PPM_FUZZ_FIXTURE_DIR must point at tests/fuzz/fixtures"
#endif

namespace {

/** Run ppm_fuzz with `args`, discarding output; returns exit code. */
int
run_cli(const std::string& args)
{
    const std::string cmd = std::string(PPM_FUZZ_BIN) + " " + args +
                            " > /dev/null 2> /dev/null";
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

/** Path of one checked-in fixture (any .scenario file). */
std::string
some_fixture()
{
    for (const auto& entry :
         std::filesystem::directory_iterator(PPM_FUZZ_FIXTURE_DIR)) {
        if (entry.path().extension() == ".scenario")
            return entry.path().string();
    }
    return {};
}

TEST(PpmFuzzCli, TinyCleanSweepExitsZero)
{
    EXPECT_EQ(run_cli("--count 3 --seed 42"), 0);
}

TEST(PpmFuzzCli, PrintScenarioExitsZero)
{
    EXPECT_EQ(run_cli("--print-scenario 0 --seed 1"), 0);
}

TEST(PpmFuzzCli, UnknownFlagIsRejected)
{
    EXPECT_EQ(run_cli("--count 3 --frobnicate"), 2);
}

TEST(PpmFuzzCli, NumericParsingIsStrict)
{
    EXPECT_EQ(run_cli("--count 0"), 2);
    EXPECT_EQ(run_cli("--count -5"), 2);
    EXPECT_EQ(run_cli("--count 10x"), 2);
    EXPECT_EQ(run_cli("--count ''"), 2);
    EXPECT_EQ(run_cli("--seed -1"), 2);
    EXPECT_EQ(run_cli("--seed abc"), 2);
    EXPECT_EQ(run_cli("--seed 99999999999999999999999"), 2);
    EXPECT_EQ(run_cli("--jobs -1"), 2);
    EXPECT_EQ(run_cli("--max-violations 0"), 2);
    EXPECT_EQ(run_cli("--print-scenario -1"), 2);
}

TEST(PpmFuzzCli, MissingFlagValueIsRejected)
{
    EXPECT_EQ(run_cli("--count"), 2);
    EXPECT_EQ(run_cli("--replay"), 2);
}

TEST(PpmFuzzCli, ReplayOfMissingFileIsRejected)
{
    EXPECT_EQ(run_cli("--replay /nonexistent-dir/nope.scenario"), 2);
}

TEST(PpmFuzzCli, ReplayOfCheckedInFixtureIsClean)
{
    const std::string fixture = some_fixture();
    ASSERT_FALSE(fixture.empty())
        << "no .scenario fixture under " << PPM_FUZZ_FIXTURE_DIR;
    EXPECT_EQ(run_cli("--replay " + fixture), 0);
}

} // namespace

/**
 * @file
 * Unit tests for the Table 6 workload sets and the intensity metric.
 * The class assertions ARE the Table 6 reproduction: every set must
 * land in the intensity class the paper assigns it.
 */

#include <gtest/gtest.h>

#include "workload/sets.hh"

namespace ppm::workload {
namespace {

/** LITTLE-cluster aggregate supply at max frequency (3 x 1000 PU). */
constexpr Pu kLittleMax = 3000.0;

TEST(Sets, NineStandardSets)
{
    const auto& sets = standard_workload_sets();
    ASSERT_EQ(sets.size(), 9u);
    const char* expected[] = {"l1", "l2", "l3", "m1", "m2",
                              "m3", "h1", "h2", "h3"};
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_EQ(sets[i].name, expected[i]);
}

TEST(Sets, SixTasksEach)
{
    for (const auto& set : standard_workload_sets())
        EXPECT_EQ(set.members.size(), 6u) << set.name;
}

TEST(Sets, Table6IntensityClasses)
{
    for (const auto& set : standard_workload_sets()) {
        const double x = intensity(set, kLittleMax);
        EXPECT_EQ(classify_intensity(x), set.expected_class)
            << set.name << " intensity " << x;
    }
}

TEST(Sets, IntensityOrderingAcrossClasses)
{
    // Every heavy set is more intense than every medium set, which is
    // more intense than every light set.
    double max_light = -1e9;
    double min_medium = 1e9;
    double max_medium = -1e9;
    double min_heavy = 1e9;
    for (const auto& set : standard_workload_sets()) {
        const double x = intensity(set, kLittleMax);
        switch (set.expected_class) {
          case IntensityClass::kLight:
            max_light = std::max(max_light, x);
            break;
          case IntensityClass::kMedium:
            min_medium = std::min(min_medium, x);
            max_medium = std::max(max_medium, x);
            break;
          case IntensityClass::kHeavy:
            min_heavy = std::min(min_heavy, x);
            break;
        }
    }
    EXPECT_LT(max_light, min_medium);
    EXPECT_LT(max_medium, min_heavy);
}

TEST(Sets, ClassifierThresholds)
{
    EXPECT_EQ(classify_intensity(-0.5), IntensityClass::kLight);
    EXPECT_EQ(classify_intensity(0.0), IntensityClass::kLight);
    EXPECT_EQ(classify_intensity(0.01), IntensityClass::kMedium);
    EXPECT_EQ(classify_intensity(0.30), IntensityClass::kMedium);
    EXPECT_EQ(classify_intensity(0.31), IntensityClass::kHeavy);
}

TEST(Sets, LookupByName)
{
    const auto& set = workload_set("h2");
    EXPECT_EQ(set.name, "h2");
    EXPECT_EQ(set.expected_class, IntensityClass::kHeavy);
}

TEST(SetsDeath, UnknownSetIsFatal)
{
    EXPECT_EXIT(workload_set("z9"), ::testing::ExitedWithCode(1),
                "unknown workload set");
}

TEST(Sets, InstantiationMatchesMembers)
{
    const auto& set = workload_set("l1");
    const auto specs = instantiate(set, 42, 3);
    ASSERT_EQ(specs.size(), set.members.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(specs[i].name,
                  profile(set.members[i].bench, set.members[i].input)
                      .name);
        EXPECT_EQ(specs[i].priority, 3);
        EXPECT_FALSE(specs[i].phases.empty());
    }
}

TEST(Sets, InstantiationSeedsDiffer)
{
    // Different tasks get different phase seeds: the two bimodal
    // h264 instances in h3 should not be phase-locked.
    const auto specs = instantiate(workload_set("h3"), 42);
    ASSERT_GE(specs.size(), 2u);
    EXPECT_NE(specs[0].phases[0].duration,
              specs[1].phases[0].duration);
}

TEST(Sets, IntensityClassNames)
{
    EXPECT_STREQ(intensity_class_name(IntensityClass::kLight), "light");
    EXPECT_STREQ(intensity_class_name(IntensityClass::kMedium),
                 "medium");
    EXPECT_STREQ(intensity_class_name(IntensityClass::kHeavy), "heavy");
}

} // namespace
} // namespace ppm::workload

/** @file Unit tests for the benchmark profiles (Table 5 model). */

#include <gtest/gtest.h>

#include "workload/benchmarks.hh"
#include "workload/sets.hh"

namespace ppm::workload {
namespace {

TEST(Benchmarks, AllSeventeenProfilesPresent)
{
    EXPECT_EQ(all_profiles().size(), 17u);
}

TEST(Benchmarks, LookupReturnsMatchingProfile)
{
    const auto& p = profile(Benchmark::kSwaptions, Input::kNative);
    EXPECT_EQ(p.bench, Benchmark::kSwaptions);
    EXPECT_EQ(p.input, Input::kNative);
    EXPECT_EQ(p.name, "swaptions_n");
}

TEST(Benchmarks, NamesFollowPaperConvention)
{
    EXPECT_EQ(profile(Benchmark::kH264, Input::kForeman).name,
              "h264_fo");
    EXPECT_EQ(profile(Benchmark::kTexture, Input::kVga).name,
              "texture_v");
    EXPECT_EQ(profile(Benchmark::kBlackscholes, Input::kLarge).name,
              "blackscholes_l");
}

TEST(Benchmarks, BiggerInputsDemandMore)
{
    EXPECT_GT(profile(Benchmark::kSwaptions, Input::kNative)
                  .avg_demand_little,
              profile(Benchmark::kSwaptions, Input::kLarge)
                  .avg_demand_little);
    EXPECT_GT(profile(Benchmark::kTexture, Input::kFullhd)
                  .avg_demand_little,
              profile(Benchmark::kTexture, Input::kVga)
                  .avg_demand_little);
}

TEST(Benchmarks, SpeedupsInPlausibleRange)
{
    for (const auto& p : all_profiles()) {
        EXPECT_GE(p.big_speedup, 1.2) << p.name;
        EXPECT_LE(p.big_speedup, 3.0) << p.name;
    }
}

TEST(Benchmarks, AvgDemandScalesBySpeedup)
{
    const auto& p = profile(Benchmark::kTracking, Input::kVga);
    EXPECT_DOUBLE_EQ(avg_demand(p, hw::CoreClass::kLittle),
                     p.avg_demand_little);
    EXPECT_DOUBLE_EQ(avg_demand(p, hw::CoreClass::kBig),
                     p.avg_demand_little / p.big_speedup);
}

TEST(Benchmarks, PhasesCoverHorizon)
{
    const auto& p = profile(Benchmark::kX264, Input::kNative);
    const auto phases = generate_phases(p, 1, 300 * kSecond);
    SimTime total = 0;
    for (const auto& ph : phases)
        total += ph.duration;
    EXPECT_GE(total, 300 * kSecond);
}

TEST(Benchmarks, PhasesDeterministicPerSeed)
{
    const auto& p = profile(Benchmark::kBodytrack, Input::kNative);
    const auto a = generate_phases(p, 7, 100 * kSecond);
    const auto b = generate_phases(p, 7, 100 * kSecond);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].duration, b[i].duration);
        EXPECT_DOUBLE_EQ(a[i].work_per_hb_little,
                         b[i].work_per_hb_little);
    }
}

TEST(Benchmarks, PhaseAverageNearCalibratedDemand)
{
    // Duration-weighted mean demand of the generated phases should be
    // close to the calibrated average (patterns are mean-1 by design).
    for (const auto& p : all_profiles()) {
        const auto phases = generate_phases(p, 11, 600 * kSecond);
        double weighted = 0.0;
        double total = 0.0;
        for (const auto& ph : phases) {
            const Pu d =
                p.target_hr * ph.work_per_hb_little / kCyclesPerPuSecond;
            weighted += d * to_seconds(ph.duration);
            total += to_seconds(ph.duration);
        }
        EXPECT_NEAR(weighted / total, p.avg_demand_little,
                    0.12 * p.avg_demand_little)
            << p.name;
    }
}

TEST(Benchmarks, BimodalAlternatesDormantActive)
{
    const auto& p = profile(Benchmark::kX264, Input::kNative);
    const auto phases = generate_phases(p, 3, 600 * kSecond);
    ASSERT_GE(phases.size(), 4u);
    // Alternating low/high work per heartbeat.
    for (std::size_t i = 0; i + 1 < phases.size(); ++i) {
        const bool low_then_high = phases[i].work_per_hb_little
            < phases[i + 1].work_per_hb_little;
        EXPECT_EQ(low_then_high, i % 2 == 0);
    }
}

TEST(Benchmarks, SpecHasPaperReferenceRange)
{
    const TaskSpec spec =
        make_task_spec(Benchmark::kSwaptions, Input::kNative, 3, 42);
    const auto& p = profile(Benchmark::kSwaptions, Input::kNative);
    EXPECT_DOUBLE_EQ(spec.min_hr, 0.95 * p.target_hr);
    EXPECT_DOUBLE_EQ(spec.max_hr, 1.05 * p.target_hr);
    EXPECT_EQ(spec.priority, 3);
    EXPECT_FALSE(spec.phases.empty());
}

TEST(Benchmarks, LightSetMembersPeakUnderBigCoreThirdShare)
{
    // Second calibration axis (see benchmarks.cc): every light-set
    // member's peak demand on a big core stays below 1200/3 = 400 PU,
    // so the HL baseline's crowd-onto-big placement still satisfies
    // light sets as the paper reports.
    const double kPeak[] = {1.05, 1.35, 1.25, 1.2};  // Per pattern.
    for (const auto& set : standard_workload_sets()) {
        if (set.expected_class != IntensityClass::kLight)
            continue;
        for (const auto& m : set.members) {
            const auto& p = profile(m.bench, m.input);
            const double amp =
                kPeak[static_cast<int>(p.pattern)];
            const Pu peak_big =
                p.avg_demand_little * amp / p.big_speedup;
            EXPECT_LE(peak_big, 400.0)
                << p.name << " in " << set.name;
        }
    }
}

TEST(BenchmarksDeath, UnknownCombinationIsFatal)
{
    EXPECT_EXIT(profile(Benchmark::kSwaptions, Input::kVga),
                ::testing::ExitedWithCode(1), "no calibrated profile");
}

} // namespace
} // namespace ppm::workload

/** @file Unit tests for trace-driven task construction. */

#include <sstream>

#include <gtest/gtest.h>

#include "workload/trace.hh"

namespace ppm::workload {
namespace {

TEST(Trace, ParsesSimpleCsv)
{
    std::istringstream in("0,400\n10,800\n30,200\n");
    const auto trace = load_demand_trace(in);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].time, 0);
    EXPECT_DOUBLE_EQ(trace[0].demand, 400.0);
    EXPECT_EQ(trace[1].time, 10 * kSecond);
    EXPECT_EQ(trace[2].time, 30 * kSecond);
    EXPECT_DOUBLE_EQ(trace[2].demand, 200.0);
}

TEST(Trace, SkipsCommentsHeaderAndBlanks)
{
    std::istringstream in(
        "# a comment\n"
        "time_s,demand_pu\n"
        "\n"
        "0,100\n"
        "  5.5 , 250 \n");
    const auto trace = load_demand_trace(in);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace[1].time, 5500 * kMillisecond);
    EXPECT_DOUBLE_EQ(trace[1].demand, 250.0);
}

TEST(TraceDeath, RejectsNonMonotoneTimes)
{
    std::istringstream in("0,100\n5,200\n5,300\n");
    EXPECT_EXIT(load_demand_trace(in), ::testing::ExitedWithCode(1),
                "strictly increasing");
}

TEST(TraceDeath, RejectsEmptyTrace)
{
    std::istringstream in("# nothing\n");
    EXPECT_EXIT(load_demand_trace(in), ::testing::ExitedWithCode(1),
                "empty");
}

TEST(TraceDeath, RejectsNonZeroStart)
{
    std::istringstream in("1,100\n");
    EXPECT_EXIT(load_demand_trace(in), ::testing::ExitedWithCode(1),
                "start at time 0");
}

TEST(TraceDeath, RejectsMalformedRow)
{
    std::istringstream in("0;100\n");
    EXPECT_EXIT(load_demand_trace(in), ::testing::ExitedWithCode(1),
                "expected");
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(load_demand_trace_file("/nonexistent/trace.csv"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(Trace, PhasesMatchSegments)
{
    std::istringstream in("0,400\n10,800\n30,200\n");
    const auto trace = load_demand_trace(in);
    const auto phases =
        phases_from_trace(trace, /*speedup=*/2.0, /*target_hr=*/20.0,
                          /*tail=*/5 * kSecond);
    ASSERT_EQ(phases.size(), 3u);
    EXPECT_EQ(phases[0].duration, 10 * kSecond);
    EXPECT_EQ(phases[1].duration, 20 * kSecond);
    EXPECT_EQ(phases[2].duration, 5 * kSecond);
    // 400 PU at 20 hb/s -> 20e6 cycles/hb on LITTLE, half on big.
    EXPECT_DOUBLE_EQ(phases[0].work_per_hb_little, 20e6);
    EXPECT_DOUBLE_EQ(phases[0].work_per_hb_big, 10e6);
}

TEST(Trace, ZeroDemandFloored)
{
    std::istringstream in("0,0\n");
    const auto phases = phases_from_trace(load_demand_trace(in), 1.6,
                                          20.0);
    // Floor of 1 PU keeps the phase work positive.
    EXPECT_DOUBLE_EQ(phases[0].work_per_hb_little,
                     1.0 * kCyclesPerPuSecond / 20.0);
}

TEST(Trace, TaskSpecDrivesTask)
{
    std::istringstream in("0,400\n10,800\n");
    const TaskSpec spec = make_trace_task_spec(
        "traced", 2, load_demand_trace(in), 2.0, 20.0);
    EXPECT_EQ(spec.priority, 2);
    EXPECT_DOUBLE_EQ(spec.min_hr, 19.0);
    EXPECT_DOUBLE_EQ(spec.max_hr, 21.0);
    Task task(0, spec);
    EXPECT_DOUBLE_EQ(task.true_demand(hw::CoreClass::kLittle), 400.0);
    task.advance(0, 10 * kSecond, 0.0, hw::CoreClass::kLittle);
    EXPECT_DOUBLE_EQ(task.true_demand(hw::CoreClass::kLittle), 800.0);
    EXPECT_DOUBLE_EQ(task.true_demand(hw::CoreClass::kBig), 400.0);
}

} // namespace
} // namespace ppm::workload

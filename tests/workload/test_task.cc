/** @file Unit tests for the phase-structured task model. */

#include <gtest/gtest.h>

#include "tests/test_util.hh"
#include "workload/task.hh"

namespace ppm::workload {
namespace {

TaskSpec
two_phase_spec()
{
    TaskSpec spec;
    spec.name = "two-phase";
    spec.priority = 1;
    spec.min_hr = 19.0;
    spec.max_hr = 21.0;
    // Phase 0: 10 s, 1e6 cycles/hb on LITTLE; phase 1: 5 s, twice
    // the work per heartbeat.
    spec.phases.push_back(Phase{10 * kSecond, 1e6, 0.5e6});
    spec.phases.push_back(Phase{5 * kSecond, 2e6, 1e6});
    return spec;
}

TEST(Task, HeartbeatsFromGrantedCycles)
{
    Task t(0, two_phase_spec());
    t.advance(0, kSecond, 5e6, hw::CoreClass::kLittle);
    EXPECT_DOUBLE_EQ(t.total_heartbeats(), 5.0);
    EXPECT_DOUBLE_EQ(t.total_cycles(), 5e6);
}

TEST(Task, BigCoreCostsLess)
{
    Task t(0, two_phase_spec());
    t.advance(0, kSecond, 5e6, hw::CoreClass::kBig);
    EXPECT_DOUBLE_EQ(t.total_heartbeats(), 10.0);
}

TEST(Task, PhaseAdvancesByWallClock)
{
    Task t(0, two_phase_spec());
    EXPECT_EQ(t.phase_index(), 0);
    t.advance(0, 10 * kSecond, 0.0, hw::CoreClass::kLittle);
    EXPECT_EQ(t.phase_index(), 1);
    t.advance(10 * kSecond, 5 * kSecond, 0.0, hw::CoreClass::kLittle);
    EXPECT_EQ(t.phase_index(), 0);  // Loops.
}

TEST(Task, PhaseLoopAcrossMultiplePeriods)
{
    Task t(0, two_phase_spec());
    // 3 full loops (45 s) plus 12 s -> inside phase 1.
    t.advance(0, 57 * kSecond, 0.0, hw::CoreClass::kLittle);
    EXPECT_EQ(t.phase_index(), 1);
}

TEST(Task, TrueDemandPerPhaseAndClass)
{
    Task t(0, two_phase_spec());
    // Phase 0: target 20 hb/s * 1e6 cycles / 1e6 = 20 PU on LITTLE.
    EXPECT_DOUBLE_EQ(t.true_demand(hw::CoreClass::kLittle), 20.0);
    EXPECT_DOUBLE_EQ(t.true_demand(hw::CoreClass::kBig), 10.0);
    t.advance(0, 10 * kSecond, 0.0, hw::CoreClass::kLittle);
    EXPECT_DOUBLE_EQ(t.true_demand(hw::CoreClass::kLittle), 40.0);
}

TEST(Task, GreedyTaskDesiresUnbounded)
{
    Task t(0, two_phase_spec());
    EXPECT_GT(t.desired_cycles(kMillisecond, hw::CoreClass::kLittle),
              1e18);
}

TEST(Task, SelfPacedDesiresBounded)
{
    TaskSpec spec = test::steady_spec("p", 1, 200.0, 1.6, 20.0, 20.0);
    Task t(0, spec);
    // 20 hb/s * 1 ms * (200/20) PU-s/hb * 1e6 = 200e3 cycles.
    EXPECT_NEAR(t.desired_cycles(kMillisecond, hw::CoreClass::kLittle),
                200e3, 1.0);
}

TEST(Task, HrmSeesProgress)
{
    Task t(0, two_phase_spec());
    for (SimTime now = 0; now < kSecond; now += 10 * kMillisecond) {
        t.advance(now, 10 * kMillisecond, 20e6 * 0.01,
                  hw::CoreClass::kLittle);
    }
    EXPECT_NEAR(t.heart_rate(kSecond), 20.0, 0.5);
}

TEST(TaskDeath, RejectsEmptyPhases)
{
    TaskSpec spec;
    spec.name = "bad";
    spec.priority = 1;
    spec.min_hr = 1.0;
    spec.max_hr = 2.0;
    EXPECT_DEATH(Task(0, spec), "phase");
}

TEST(TaskDeath, RejectsBadPriority)
{
    TaskSpec spec = two_phase_spec();
    spec.priority = 0;
    EXPECT_DEATH(Task(0, spec), "priority");
}

} // namespace
} // namespace ppm::workload

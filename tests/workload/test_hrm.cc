/**
 * @file
 * Unit tests for the Heart Rate Monitor, including the paper's
 * Table 4 heart-rate-to-demand conversion examples.
 */

#include <gtest/gtest.h>

#include "workload/hrm.hh"

namespace ppm::workload {
namespace {

/** Feed a constant rate of beats and supply over one window. */
void
feed(HeartRateMonitor& hrm, double hb_per_s, Pu supply, SimTime until,
     SimTime dt = 10 * kMillisecond)
{
    for (SimTime t = dt; t <= until; t += dt) {
        hrm.record(t, hb_per_s * to_seconds(dt),
                   supply * to_seconds(dt));
    }
}

TEST(Hrm, MeasuresSteadyRate)
{
    HeartRateMonitor hrm(24.0, 30.0);
    feed(hrm, 15.0, 500.0, kSecond);
    EXPECT_NEAR(hrm.heart_rate(kSecond), 15.0, 0.2);
    EXPECT_NEAR(hrm.supply(kSecond), 500.0, 5.0);
}

TEST(Hrm, TargetIsRangeMidpoint)
{
    HeartRateMonitor hrm(24.0, 30.0);
    EXPECT_DOUBLE_EQ(hrm.target_hr(), 27.0);
}

TEST(Hrm, Table4Phase1)
{
    // Table 4 phase 1: hr 15 hb/s at 500 PU, target 27 ->
    // demand = 27 * 500 / 15 = 900 PU.
    HeartRateMonitor hrm(24.0, 30.0);
    feed(hrm, 15.0, 500.0, kSecond);
    EXPECT_NEAR(hrm.estimate_demand(kSecond, 5000.0), 900.0, 15.0);
}

TEST(Hrm, Table4Phase2)
{
    // Phase 2: hr 10 at 800 MHz, 50% utilization -> supply 400 PU;
    // demand = 27 * 400 / 10 = 1080 PU.
    HeartRateMonitor hrm(24.0, 30.0);
    feed(hrm, 10.0, 400.0, kSecond);
    EXPECT_NEAR(hrm.estimate_demand(kSecond, 5000.0), 1080.0, 20.0);
}

TEST(Hrm, Table4Phase3LowersDemand)
{
    // Phase 3: hr 40 exceeds the range at 1000 PU ->
    // demand = 27 * 1000 / 40 = 675 PU (lowered).
    HeartRateMonitor hrm(24.0, 30.0);
    feed(hrm, 40.0, 1000.0, kSecond);
    EXPECT_NEAR(hrm.estimate_demand(kSecond, 5000.0), 675.0, 12.0);
}

TEST(Hrm, RangeClassification)
{
    HeartRateMonitor hrm(24.0, 30.0);
    feed(hrm, 15.0, 500.0, kSecond);
    EXPECT_TRUE(hrm.below_range(kSecond));
    EXPECT_TRUE(hrm.outside_range(kSecond));

    HeartRateMonitor in_range(24.0, 30.0);
    feed(in_range, 27.0, 500.0, kSecond);
    EXPECT_FALSE(in_range.below_range(kSecond));
    EXPECT_FALSE(in_range.outside_range(kSecond));

    HeartRateMonitor above(24.0, 30.0);
    feed(above, 40.0, 500.0, kSecond);
    EXPECT_FALSE(above.below_range(kSecond));
    EXPECT_TRUE(above.outside_range(kSecond));
}

TEST(Hrm, StarvedTaskSaturatesAtClamp)
{
    HeartRateMonitor hrm(24.0, 30.0);
    // No heartbeats at all.
    EXPECT_DOUBLE_EQ(hrm.estimate_demand(kSecond, 1200.0), 1200.0);
}

TEST(Hrm, EstimateClampedAbove)
{
    // hr barely above zero with large supply would explode; clamp.
    HeartRateMonitor hrm(24.0, 30.0);
    feed(hrm, 0.01, 1000.0, kSecond);
    EXPECT_DOUBLE_EQ(hrm.estimate_demand(kSecond, 1200.0), 1200.0);
}

TEST(Hrm, OldSamplesLeaveWindow)
{
    HeartRateMonitor hrm(24.0, 30.0);
    feed(hrm, 30.0, 500.0, kSecond);
    EXPECT_NEAR(hrm.heart_rate(kSecond), 30.0, 0.5);
    // After 2 s of silence the measured rate decays to zero.
    EXPECT_DOUBLE_EQ(hrm.heart_rate(3 * kSecond), 0.0);
}

TEST(HrmDeath, RejectsBadRange)
{
    EXPECT_DEATH(HeartRateMonitor(0.0, 10.0), "min");
    EXPECT_DEATH(HeartRateMonitor(10.0, 5.0), "min");
}

} // namespace
} // namespace ppm::workload

/**
 * @file
 * Invariant-checker properties: the summary fingerprint is a total,
 * bit-sensitive key (identical summaries fingerprint identically, any
 * field change -- including a 1-ulp float change and the fault
 * counters -- changes it), simple clean scenarios really check clean,
 * check_scenario is deterministic, and every checked-in fixture under
 * tests/fuzz/fixtures/ stays fixed (each one is a shrunken reproducer
 * of a bug this invariant suite once caught).
 */

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fuzz/check.hh"
#include "src/fuzz/scenario.hh"

namespace ppm::fuzz {
namespace {

sim::RunSummary
sample_summary()
{
    sim::RunSummary s;
    s.governor = "PPM";
    s.any_below_miss = 0.125;
    s.avg_power = 1.75;
    s.energy = 7.5;
    s.migrations = 3;
    s.vf_transitions = 11;
    s.task_below = {0.0, 0.5};
    s.task_outside = {0.25, 0.5};
    s.faults_injected = 2;
    return s;
}

TEST(SummaryFingerprint, IdenticalSummariesAgree)
{
    EXPECT_EQ(summary_fingerprint(sample_summary()),
              summary_fingerprint(sample_summary()));
}

TEST(SummaryFingerprint, SensitiveToEveryKindOfField)
{
    const std::string base = summary_fingerprint(sample_summary());

    sim::RunSummary s = sample_summary();
    s.avg_power = std::nextafter(s.avg_power, 2.0);  // 1 ulp.
    EXPECT_NE(summary_fingerprint(s), base);

    s = sample_summary();
    s.migrations += 1;  // Integer counter.
    EXPECT_NE(summary_fingerprint(s), base);

    s = sample_summary();
    s.task_below[1] = 0.75;  // Per-task vector element.
    EXPECT_NE(summary_fingerprint(s), base);

    s = sample_summary();
    s.faults_injected = 0;  // Fault accounting is part of the key.
    EXPECT_NE(summary_fingerprint(s), base);

    s = sample_summary();
    s.governor = "HL";
    EXPECT_NE(summary_fingerprint(s), base);
}

/** A small, fault-free, single-phase scenario that must be clean. */
Scenario
trivial_scenario()
{
    Scenario sc;
    sc.seed = 1;
    sc.shape = PlatformShape::kTc2;
    sc.duration = 1500 * kMillisecond;
    sc.warmup = 500 * kMillisecond;
    TaskGene g;
    g.priority = 1;
    g.demand_little = 150.0;
    g.big_speedup = 1.8;
    g.target_hr = 25.0;
    sc.tasks.push_back(g);
    return sc;
}

TEST(CheckScenario, TrivialScenarioIsClean)
{
    const std::vector<Violation> v = check_scenario(trivial_scenario());
    EXPECT_TRUE(v.empty()) << v.front().invariant << " ["
                           << v.front().policy << "] "
                           << v.front().detail;
}

TEST(CheckScenario, IsDeterministic)
{
    const Scenario sc = generate_scenario(scenario_seed(2026, 7));
    const std::vector<Violation> a = check_scenario(sc);
    const std::vector<Violation> b = check_scenario(sc);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].invariant, b[i].invariant);
        EXPECT_EQ(a[i].policy, b[i].policy);
        EXPECT_EQ(a[i].detail, b[i].detail);
    }
}

/**
 * Regression lock: every fixture is a minimized reproducer of a bug
 * the fuzzer once surfaced; each must parse and check clean now that
 * the bug is fixed.  A failure here means a fixed bug regressed.
 */
TEST(Fixtures, EveryCheckedInFixtureStaysFixed)
{
    const std::filesystem::path dir = PPM_FUZZ_FIXTURE_DIR;
    ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
    int n = 0;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        if (entry.path().extension() != ".scenario")
            continue;
        ++n;
        std::ifstream in(entry.path());
        ASSERT_TRUE(in) << entry.path();
        std::ostringstream text;
        text << in.rdbuf();
        Scenario sc;
        std::string error;
        ASSERT_TRUE(parse_scenario(text.str(), &sc, &error))
            << entry.path() << ": " << error;
        const std::vector<Violation> v = check_scenario(sc);
        EXPECT_TRUE(v.empty())
            << entry.path() << " regressed: " << v.front().invariant
            << " [" << v.front().policy << "] " << v.front().detail;
    }
    EXPECT_GE(n, 2) << "fixture directory unexpectedly empty";
}

} // namespace
} // namespace ppm::fuzz

/**
 * @file
 * Generator-level properties of the fuzz scenario model: replay
 * determinism (same seed => byte-identical scenario, serialize/parse
 * round-trips exactly), campaign seed derivation (no stream aliasing
 * between nearby indices), distribution sanity (every platform shape,
 * fault plans, lifetimes and TDP caps all actually occur, and every
 * drawn parameter stays inside its documented range), and strictness
 * of the fixture parser.
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/fuzz/scenario.hh"

namespace ppm::fuzz {
namespace {

TEST(ScenarioSeed, DerivationIsCollisionFreeNearby)
{
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 1ull, 2ull, 0xdeadbeefull}) {
        for (std::uint64_t i = 0; i < 512; ++i)
            seen.insert(scenario_seed(base, i));
    }
    // 4 bases x 512 indices, all distinct: sequential bases must not
    // alias each other's index streams (base+1, i == base, i+1 would).
    EXPECT_EQ(seen.size(), 4u * 512u);
}

TEST(ScenarioGenerator, SameSeedIsByteIdentical)
{
    for (std::uint64_t seed : {1ull, 7ull, 999ull, 123456789ull}) {
        const Scenario a = generate_scenario(scenario_seed(seed, 0));
        const Scenario b = generate_scenario(scenario_seed(seed, 0));
        EXPECT_EQ(serialize(a), serialize(b)) << "seed " << seed;
    }
}

TEST(ScenarioGenerator, SerializationRoundTripsExactly)
{
    for (std::uint64_t i = 0; i < 64; ++i) {
        const Scenario sc = generate_scenario(scenario_seed(42, i));
        const std::string text = serialize(sc);
        Scenario parsed;
        std::string error;
        ASSERT_TRUE(parse_scenario(text, &parsed, &error))
            << "index " << i << ": " << error;
        EXPECT_EQ(serialize(parsed), text) << "index " << i;
    }
}

TEST(ScenarioGenerator, DistributionCoversEveryDimension)
{
    int tc2 = 0, octa = 0, synthetic = 0;
    int faulted = 0, capped = 0, staggered = 0, pinned = 0;
    int traced = 0, parallel_clearing = 0, multi_phase = 0;
    for (std::uint64_t i = 0; i < 300; ++i) {
        const Scenario sc = generate_scenario(scenario_seed(1, i));
        switch (sc.shape) {
        case PlatformShape::kTc2: ++tc2; break;
        case PlatformShape::kOcta: ++octa; break;
        case PlatformShape::kSynthetic: ++synthetic; break;
        }
        faulted += sc.has_faults ? 1 : 0;
        capped += sc.tdp > 0.0 ? 1 : 0;
        traced += sc.trace ? 1 : 0;
        parallel_clearing += sc.clearing_jobs > 1 ? 1 : 0;
        staggered += lifetimes(sc).empty() ? 0 : 1;
        pinned += placement(sc).empty() ? 0 : 1;
        for (const TaskGene& g : sc.tasks)
            multi_phase += g.n_phases > 1 ? 1 : 0;
    }
    EXPECT_GT(tc2, 0);
    EXPECT_GT(octa, 0);
    EXPECT_GT(synthetic, 0);
    EXPECT_GT(faulted, 0);
    EXPECT_GT(capped, 0);
    EXPECT_GT(traced, 0);
    EXPECT_GT(parallel_clearing, 0);
    EXPECT_GT(staggered, 0);
    EXPECT_GT(pinned, 0);
    EXPECT_GT(multi_phase, 0);
}

TEST(ScenarioGenerator, EveryDrawStaysInRange)
{
    for (std::uint64_t i = 0; i < 300; ++i) {
        const Scenario sc = generate_scenario(scenario_seed(3, i));
        EXPECT_GT(sc.duration, sc.warmup);
        EXPECT_GT(sc.warmup, 0);
        EXPECT_GE(sc.tasks.size(), 1u);
        EXPECT_LE(sc.tasks.size(), 10u);
        EXPECT_GE(sc.clearing_jobs, 1);
        EXPECT_GE(sc.clearing_grain, 1);
        const hw::Chip chip = make_chip(sc);
        EXPECT_GE(chip.num_clusters(), 1);
        for (const TaskGene& g : sc.tasks) {
            EXPECT_GE(g.priority, 1);
            EXPECT_GT(g.demand_little, 0.0);
            EXPECT_GE(g.big_speedup, 1.0);
            EXPECT_GT(g.target_hr, 0.0);
            EXPECT_GE(g.n_phases, 1);
            EXPECT_GE(g.arrival, 0);
            if (g.departure != sim::SimConfig::Lifetime::kForever) {
                EXPECT_GE(g.departure, g.arrival);
            }
            if (g.core != kInvalidId) {
                EXPECT_GE(g.core, 0);
                EXPECT_LT(g.core, chip.num_cores());
            }
        }
        const auto specs = make_specs(sc);
        EXPECT_EQ(specs.size(), sc.tasks.size());
        if (sc.has_faults) {
            EXPECT_TRUE(sc.faults.any());
        }
    }
}

TEST(ScenarioParser, RejectsMalformedInput)
{
    const auto rejects = [](const std::string& text) {
        Scenario sc;
        std::string error;
        const bool ok = parse_scenario(text, &sc, &error);
        EXPECT_FALSE(ok) << "accepted: " << text;
        if (!ok) {
            EXPECT_FALSE(error.empty());
        }
    };
    rejects("");                      // No tasks at all.
    rejects("duration_ms=1000\nwarmup_ms=500\n");
    rejects("bogus_key=1\ntask=1,100,1.5,20,0,1,0,0,0,-1,-1\n");
    rejects("duration_ms=zzz\ntask=1,100,1.5,20,0,1,0,0,0,-1,-1\n");
    rejects("duration_ms=1000x\ntask=1,100,1.5,20,0,1,0,0,0,-1,-1\n");
    // Warmup must precede the end of the run.
    rejects("duration_ms=1000\nwarmup_ms=1000\n"
            "task=1,100,1.5,20,0,1,0,0,0,-1,-1\n");
    // Task lines need all 11 fields.
    rejects("duration_ms=1000\nwarmup_ms=100\ntask=1,100\n");
    rejects("duration_ms=1000\nwarmup_ms=100\n"
            "task=1,nan,1.5,20,0,1,0,0,0,-1,-1\n");
}

TEST(ScenarioParser, AcceptsCommentsAndRoundTripOutput)
{
    const Scenario sc = generate_scenario(scenario_seed(5, 17));
    const std::string text =
        "# a comment line\n\n" + serialize(sc) + "# trailing comment\n";
    Scenario parsed;
    std::string error;
    ASSERT_TRUE(parse_scenario(text, &parsed, &error)) << error;
    EXPECT_EQ(serialize(parsed), serialize(sc));
}

} // namespace
} // namespace ppm::fuzz

/**
 * @file
 * Shrinker search properties, exercised through the ShrinkOracle seam
 * with synthetic oracles (no live simulator bug needed): convergence
 * to the minimal scenario a threshold-style oracle admits, the
 * never-larger-in-any-dimension guarantee, preservation of the target
 * (invariant, policy) key when a candidate trips a *different*
 * violation, budget exhaustion behaviour, and the panic on an input
 * that does not reproduce at all.
 */

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fuzz/shrink.hh"

namespace ppm::fuzz {
namespace {

Violation
make_violation(const std::string& invariant, const std::string& policy)
{
    Violation v;
    v.invariant = invariant;
    v.policy = policy;
    v.detail = "synthetic";
    return v;
}

/** A busy scenario with something to shrink in every dimension. */
Scenario
busy_scenario()
{
    Scenario sc = generate_scenario(scenario_seed(11, 0));
    sc.duration = 8 * kSecond;
    sc.warmup = kSecond;
    sc.trace = true;
    sc.has_faults = true;
    sc.faults.sensor = true;
    sc.faults.dvfs = true;
    sc.tasks.resize(1);
    while (sc.tasks.size() < 6)
        sc.tasks.push_back(sc.tasks.front());
    return sc;
}

TEST(Shrink, ConvergesToOracleThreshold)
{
    // Violates iff at least 3 tasks remain and the run is >= 2 s: the
    // minimum admissible scenario has exactly 3 tasks and the shortest
    // duration the shrinker's passes reach at or above 2 s.
    const ShrinkOracle oracle = [](const Scenario& sc) {
        std::vector<Violation> out;
        if (sc.tasks.size() >= 3 && sc.duration >= 2 * kSecond)
            out.push_back(make_violation("macro-vs-tick", "PPM"));
        return out;
    };
    const Scenario sc = busy_scenario();
    const ShrinkResult r = shrink(
        sc, make_violation("macro-vs-tick", "PPM"), 400, oracle);
    EXPECT_EQ(r.scenario.tasks.size(), 3u);
    EXPECT_GE(r.scenario.duration, 2 * kSecond);
    EXPECT_LT(r.scenario.duration, sc.duration);
    EXPECT_EQ(r.violation.invariant, "macro-vs-tick");
    EXPECT_EQ(r.violation.policy, "PPM");
    EXPECT_GT(r.evaluations, 0);
    EXPECT_LE(r.evaluations, 400);
    // The result still reproduces by construction.
    EXPECT_FALSE(oracle(r.scenario).empty());
}

TEST(Shrink, NeverGrowsAnyDimension)
{
    const ShrinkOracle oracle = [](const Scenario& sc) {
        std::vector<Violation> out;
        if (!sc.tasks.empty())
            out.push_back(make_violation("summary-sanity", "HL"));
        return out;
    };
    const Scenario sc = busy_scenario();
    const ShrinkResult r = shrink(
        sc, make_violation("summary-sanity", "HL"), 300, oracle);
    EXPECT_LE(r.scenario.tasks.size(), sc.tasks.size());
    EXPECT_LE(r.scenario.duration, sc.duration);
    EXPECT_LE(r.scenario.warmup, sc.warmup);
    EXPECT_LE(r.scenario.trace, sc.trace);
    EXPECT_LE(r.scenario.has_faults, sc.has_faults);
    EXPECT_LE(r.scenario.clearing_jobs, sc.clearing_jobs);
    // An always-reproducing oracle shrinks to the floor: one task, no
    // faults, no tracing.
    EXPECT_EQ(r.scenario.tasks.size(), 1u);
    EXPECT_FALSE(r.scenario.has_faults);
    EXPECT_FALSE(r.scenario.trace);
}

TEST(Shrink, HoldsTargetKeyWhenCandidatesTripOtherViolations)
{
    // Dropping below 4 tasks flips the violation to a different
    // invariant: those candidates must be rejected, so the result
    // keeps >= 4 tasks and the original key.
    const ShrinkOracle oracle = [](const Scenario& sc) {
        std::vector<Violation> out;
        if (sc.tasks.size() >= 4)
            out.push_back(make_violation("macro-vs-tick", "HPM"));
        else
            out.push_back(make_violation("market-budget", "PPM"));
        return out;
    };
    const ShrinkResult r =
        shrink(busy_scenario(), make_violation("macro-vs-tick", "HPM"),
               300, oracle);
    EXPECT_EQ(r.scenario.tasks.size(), 4u);
    EXPECT_EQ(r.violation.invariant, "macro-vs-tick");
    EXPECT_EQ(r.violation.policy, "HPM");
}

TEST(Shrink, RespectsEvaluationBudget)
{
    int calls = 0;
    const ShrinkOracle oracle = [&calls](const Scenario& sc) {
        ++calls;
        std::vector<Violation> out;
        if (!sc.tasks.empty())
            out.push_back(make_violation("tdp-duty", "PPM"));
        return out;
    };
    const ShrinkResult r = shrink(
        busy_scenario(), make_violation("tdp-duty", "PPM"), 10, oracle);
    EXPECT_LE(r.evaluations, 10);
    EXPECT_EQ(r.evaluations, calls);
    EXPECT_GE(r.scenario.tasks.size(), 1u);
}

TEST(ShrinkDeathTest, PanicsWhenInputDoesNotReproduce)
{
    const ShrinkOracle oracle = [](const Scenario&) {
        return std::vector<Violation>{};
    };
    EXPECT_DEATH(shrink(busy_scenario(),
                        make_violation("macro-vs-tick", "PPM"), 100,
                        oracle),
                 "violat");
}

} // namespace
} // namespace ppm::fuzz

/**
 * @file
 * Fleet federation tests: the supervisor market's settlement algebra,
 * the 1-chip fleet's bit-exact equivalence to a plain Simulation
 * (including the committed golden fixture), byte-determinism across
 * shard-pool worker counts, budget reallocation toward loaded chips,
 * cross-chip floating-task placement, and the run_until()/finish()
 * slicing and mid-run admission primitives the fleet engine rests on.
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "metrics/telemetry.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

#ifndef PPM_GOLDEN_DIR
#define PPM_GOLDEN_DIR "tests/golden"
#endif

namespace ppm {
namespace {

std::string
fmt_exact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** FNV-1a 64-bit (same fingerprint the golden fixtures use). */
std::uint64_t
fnv1a(const std::string& bytes)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Full-precision textual fingerprint of a RunSummary. */
std::string
fingerprint(const sim::RunSummary& s)
{
    std::ostringstream out;
    out << s.governor << ' ' << fmt_exact(s.any_below_miss) << ' '
        << fmt_exact(s.any_outside_miss) << ' '
        << fmt_exact(s.avg_power) << ' '
        << fmt_exact(s.avg_power_post_warmup) << ' '
        << fmt_exact(s.energy) << ' ' << s.migrations << ' '
        << s.vf_transitions << ' ' << fmt_exact(s.over_tdp_fraction)
        << ' ' << fmt_exact(s.over_tdp_post_warmup) << ' '
        << fmt_exact(s.peak_temp_c) << ' ' << s.thermal_cycles;
    for (const double v : s.task_below)
        out << ' ' << fmt_exact(v);
    for (const double v : s.task_outside)
        out << ' ' << fmt_exact(v);
    return out.str();
}

/** The exact PPM configuration of the golden hot-path fixture. */
market::PpmGovernorConfig
golden_ppm_config()
{
    market::PpmGovernorConfig cfg;
    cfg.market.w_tdp = 3.5;
    cfg.market.w_th = 2.9;
    return cfg;
}

/** The golden fixture's workload (see test_golden_equivalence.cc). */
std::vector<workload::TaskSpec>
golden_specs()
{
    return {
        test::steady_spec("encode", 2, 420.0, 1.7, 25.0),
        test::steady_spec("decode", 1, 250.0, 1.5, 20.0),
        test::steady_spec("background", 1, 120.0, 1.6, 10.0, 0.5),
    };
}

/** The golden fixture's SimConfig (lifetimes included). */
sim::SimConfig
golden_sim_config()
{
    sim::SimConfig cfg;
    cfg.duration = 6 * kSecond;
    cfg.warmup = kSecond;
    cfg.trace = true;
    cfg.trace_period = 500 * kMillisecond;
    cfg.tdp_for_metrics = 3.5;
    cfg.lifetimes.resize(3);
    cfg.lifetimes[1].arrival = 800 * kMillisecond;
    cfg.lifetimes[2].departure = 2 * kSecond;
    return cfg;
}

// ----------------------------------------------------------------
// SupervisorMarket units.

TEST(SupervisorMarket, ConservesCappedBudget)
{
    fleet::SupervisorConfig cfg;
    cfg.total_budget = 14.0;
    fleet::SupervisorMarket m(cfg, 4);
    EXPECT_DOUBLE_EQ(m.initial_budget(), 3.5);

    const std::vector<fleet::ChipSignal> signals = {
        {3.3, 120.0}, {1.2, 0.0}, {5.0, 400.0}, {0.4, 10.0}};
    ASSERT_TRUE(m.settle(signals));
    double sum = 0.0;
    for (const Watts b : m.budgets()) {
        EXPECT_GE(b, cfg.floor_w);
        sum += b;
    }
    EXPECT_NEAR(sum, 14.0, 1e-9 * 14.0);
    for (const double p : m.prices())
        EXPECT_GT(p, 0.0);
    EXPECT_GT(m.lambda(), 0.0);
    EXPECT_EQ(m.epochs(), 1);
}

TEST(SupervisorMarket, SingleChipGetsTheBudgetVerbatim)
{
    fleet::SupervisorConfig cfg;
    cfg.total_budget = 3.5;
    fleet::SupervisorMarket m(cfg, 1);
    EXPECT_EQ(m.initial_budget(), 3.5);
    ASSERT_TRUE(m.settle({{10.0, 500.0}}));
    // Bitwise: no floor/remainder arithmetic may rewrite the budget.
    EXPECT_EQ(m.budgets()[0], 3.5);
}

TEST(SupervisorMarket, UncappedNeverMovesBudgets)
{
    fleet::SupervisorConfig cfg;  // Default budget: uncapped sentinel.
    fleet::SupervisorMarket m(cfg, 3);
    const std::vector<Watts> before = m.budgets();
    EXPECT_FALSE(m.settle({{4.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}}));
    EXPECT_EQ(m.budgets(), before);
    EXPECT_EQ(m.lambda(), 0.0);
    // Prices degenerate to raw wants: placement spreads by load.
    EXPECT_EQ(m.cheapest_chip(), 1);
}

TEST(SupervisorMarket, EvenSplitWhenFloorsExceedBudget)
{
    fleet::SupervisorConfig cfg;
    cfg.total_budget = 3.0;
    cfg.floor_w = 1.0;  // 4 floors > 3 W budget.
    fleet::SupervisorMarket m(cfg, 4);
    ASSERT_TRUE(m.settle(std::vector<fleet::ChipSignal>(4)));
    for (const Watts b : m.budgets())
        EXPECT_DOUBLE_EQ(b, 0.75);
}

TEST(SupervisorMarket, CheapestChipTieBreaksToLowestId)
{
    fleet::SupervisorConfig cfg;
    cfg.total_budget = 9.0;
    fleet::SupervisorMarket m(cfg, 3);
    EXPECT_EQ(m.cheapest_chip(), -1);  // Before the first settle.
    ASSERT_TRUE(m.settle(std::vector<fleet::ChipSignal>(
        3, fleet::ChipSignal{2.0, 50.0})));
    EXPECT_EQ(m.cheapest_chip(), 0);
}

// ----------------------------------------------------------------
// Fleet engine.

/** A fleet wrapping the golden scenario on `chips` chips. */
fleet::FleetConfig
golden_fleet_config(int chips, int jobs)
{
    fleet::FleetConfig fc;
    fc.chips = chips;
    fc.epoch = 96 * kMillisecond;
    fc.supervisor.total_budget = 3.5 * chips;
    fc.sim = golden_sim_config();
    fc.jobs = jobs;
    fc.make_chip = [](int) { return hw::tc2_chip(); };
    fc.make_governor =
        [](int, Watts) -> std::unique_ptr<sim::Governor> {
        return std::make_unique<market::PpmGovernor>(
            golden_ppm_config());
    };
    for (int c = 0; c < chips; ++c) {
        fleet::ChipWorkload wl;
        wl.specs = golden_specs();
        wl.lifetimes = golden_sim_config().lifetimes;
        fc.workloads.push_back(std::move(wl));
    }
    return fc;
}

TEST(Fleet, OneChipFleetMatchesPlainSimulationByteForByte)
{
    // Plain run with both streaming sinks.
    std::ostringstream plain_csv_os, plain_jsonl_os;
    metrics::CsvStreamSink plain_csv(plain_csv_os);
    metrics::JsonlSink plain_jsonl(plain_jsonl_os);
    sim::Simulation plain(hw::tc2_chip(), golden_specs(),
                          std::make_unique<market::PpmGovernor>(
                              golden_ppm_config()),
                          golden_sim_config());
    plain.bus().add_sink(&plain_csv);
    plain.bus().add_sink(&plain_jsonl);
    const sim::RunSummary plain_summary = plain.run();
    std::ostringstream plain_wide;
    plain.recorder().write_csv(plain_wide);

    // Same scenario through a 1-chip fleet.
    std::ostringstream fleet_csv_os, fleet_jsonl_os;
    metrics::CsvStreamSink fleet_csv(fleet_csv_os);
    metrics::JsonlSink fleet_jsonl(fleet_jsonl_os);
    fleet::Fleet fleet(golden_fleet_config(1, 1));
    fleet.shard(0).bus().add_sink(&fleet_csv);
    fleet.shard(0).bus().add_sink(&fleet_jsonl);
    const fleet::FleetResult res = fleet.run();
    std::ostringstream fleet_wide;
    fleet.shard(0).recorder().write_csv(fleet_wide);

    EXPECT_EQ(fingerprint(res.combined), fingerprint(plain_summary));
    EXPECT_EQ(fleet_jsonl_os.str(), plain_jsonl_os.str());
    EXPECT_EQ(fleet_csv_os.str(), plain_csv_os.str());
    EXPECT_EQ(fleet_wide.str(), plain_wide.str());
    // The settlement never rewrote the lone chip's budget.
    EXPECT_EQ(res.final_budgets.size(), 1u);
    EXPECT_EQ(res.final_budgets[0], 3.5);
    EXPECT_GT(res.supervisor_epochs, 0);
}

/**
 * The acceptance criterion verbatim: a 1-chip fleet must reproduce
 * the committed golden fixture bit-exactly.  Rebuilds the golden
 * file's exact output string (test_golden_equivalence.cc) from a
 * fleet-driven run and compares it to the bytes on disk.
 */
TEST(Fleet, OneChipFleetReproducesGoldenFixture)
{
    std::ostringstream csv_stream, jsonl_stream;
    metrics::CsvStreamSink csv_sink(csv_stream);
    metrics::JsonlSink jsonl_sink(jsonl_stream);
    fleet::Fleet fleet(golden_fleet_config(1, 1));
    fleet.shard(0).bus().add_sink(&csv_sink);
    fleet.shard(0).bus().add_sink(&jsonl_sink);
    const sim::RunSummary s = fleet.run().combined;
    std::ostringstream wide_csv;
    fleet.shard(0).recorder().write_csv(wide_csv);

    std::ostringstream out;
    out << "governor " << s.governor << '\n'
        << "any_below_miss " << fmt_exact(s.any_below_miss) << '\n'
        << "any_outside_miss " << fmt_exact(s.any_outside_miss) << '\n'
        << "avg_power " << fmt_exact(s.avg_power) << '\n'
        << "avg_power_post_warmup "
        << fmt_exact(s.avg_power_post_warmup) << '\n'
        << "energy " << fmt_exact(s.energy) << '\n'
        << "migrations " << s.migrations << '\n'
        << "vf_transitions " << s.vf_transitions << '\n'
        << "over_tdp_fraction " << fmt_exact(s.over_tdp_fraction) << '\n'
        << "over_tdp_post_warmup "
        << fmt_exact(s.over_tdp_post_warmup) << '\n'
        << "peak_temp_c " << fmt_exact(s.peak_temp_c) << '\n'
        << "thermal_cycles " << s.thermal_cycles << '\n';
    for (std::size_t t = 0; t < s.task_below.size(); ++t) {
        out << "task" << t << "_below " << fmt_exact(s.task_below[t])
            << '\n'
            << "task" << t << "_outside "
            << fmt_exact(s.task_outside[t]) << '\n';
    }
    const auto stream_block = [&out](const char* name,
                                     const std::string& bytes) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016" PRIx64, fnv1a(bytes));
        out << name << "_bytes " << bytes.size() << '\n'
            << name << "_fnv1a64 " << fp << '\n';
        std::istringstream is(bytes);
        std::string line;
        for (int i = 0; i < 4 && std::getline(is, line); ++i)
            out << name << "_head " << line << '\n';
    };
    stream_block("wide_csv", wide_csv.str());
    stream_block("stream_csv", csv_stream.str());
    stream_block("jsonl", jsonl_stream.str());

    const std::string path =
        std::string(PPM_GOLDEN_DIR) + "/hotpath_PPM.txt";
    std::ifstream f(path, std::ios::binary);
    ASSERT_TRUE(f.good()) << "missing golden file " << path;
    std::stringstream golden;
    golden << f.rdbuf();
    EXPECT_EQ(golden.str(), out.str())
        << "a 1-chip fleet diverged from the committed golden fixture";
}

/** One federated run's observable bytes. */
struct FleetBytes {
    std::string summary;
    std::string fleet_jsonl;
    std::string chip0_jsonl;
    std::vector<Watts> final_budgets;
    long epochs = 0;
};

FleetBytes
run_golden_fleet(int chips, int jobs)
{
    std::ostringstream fleet_os, chip_os;
    metrics::JsonlSink fleet_sink(fleet_os), chip_sink(chip_os);
    fleet::Fleet fleet(golden_fleet_config(chips, jobs));
    fleet.bus().add_sink(&fleet_sink);
    fleet.shard(0).bus().add_sink(&chip_sink);
    const fleet::FleetResult res = fleet.run();
    return {fingerprint(res.combined), fleet_os.str(), chip_os.str(),
            res.final_budgets, res.supervisor_epochs};
}

TEST(Fleet, JobsCountNeverChangesBytes)
{
    const FleetBytes serial = run_golden_fleet(3, 1);
    for (const int jobs : {2, 4}) {
        const FleetBytes pooled = run_golden_fleet(3, jobs);
        EXPECT_EQ(pooled.summary, serial.summary) << "jobs=" << jobs;
        EXPECT_EQ(pooled.fleet_jsonl, serial.fleet_jsonl)
            << "jobs=" << jobs;
        EXPECT_EQ(pooled.chip0_jsonl, serial.chip0_jsonl)
            << "jobs=" << jobs;
        EXPECT_EQ(pooled.final_budgets, serial.final_budgets)
            << "jobs=" << jobs;
        EXPECT_EQ(pooled.epochs, serial.epochs) << "jobs=" << jobs;
    }
}

/** PPM governor with the fleet-share budget for loaded/idle chips. */
std::unique_ptr<sim::Governor>
budgeted_ppm(Watts budget)
{
    market::PpmGovernorConfig cfg;
    cfg.market.w_tdp = budget;
    cfg.market.w_th = market::derive_w_th(budget);
    return std::make_unique<market::PpmGovernor>(cfg);
}

TEST(Fleet, BudgetFlowsTowardTheLoadedChip)
{
    fleet::FleetConfig fc;
    fc.chips = 2;
    fc.epoch = 96 * kMillisecond;
    fc.supervisor.total_budget = 5.0;
    // The tc2 chip draws well under a watt per busy cluster, so the
    // default 1 W floor would clamp both wants and tie the prices;
    // drop it below real chip power to expose the settlement.
    fc.supervisor.floor_w = 0.2;
    fc.sim.duration = 4 * kSecond;
    fc.sim.tdp_for_metrics = 2.5;
    fc.make_chip = [](int) { return hw::tc2_chip(); };
    fc.make_governor = [](int, Watts budget) {
        return budgeted_ppm(budget);
    };
    fleet::ChipWorkload heavy;
    heavy.specs = {test::steady_spec("h0", 2, 700.0, 1.8, 30.0),
                   test::steady_spec("h1", 1, 650.0, 1.7, 30.0),
                   test::steady_spec("h2", 1, 600.0, 1.6, 25.0)};
    fleet::ChipWorkload light;
    light.specs = {test::steady_spec("l0", 1, 40.0, 1.5, 5.0)};
    fc.workloads = {heavy, light};

    fleet::Fleet fleet(std::move(fc));
    const fleet::FleetResult res = fleet.run();
    ASSERT_EQ(res.final_budgets.size(), 2u);
    EXPECT_GT(res.final_budgets[0], res.final_budgets[1])
        << "the loaded chip should out-bid the idle one";
    const double sum = res.final_budgets[0] + res.final_budgets[1];
    EXPECT_NEAR(sum, 5.0, 1e-9 * 5.0);
}

TEST(Fleet, FloatingTasksLandOnTheCheapestChip)
{
    fleet::FleetConfig fc;
    fc.chips = 2;
    fc.epoch = 96 * kMillisecond;
    fc.supervisor.total_budget = 5.0;
    fc.supervisor.floor_w = 0.2;  // Below real tc2 power; see above.
    fc.sim.duration = 4 * kSecond;
    fc.sim.tdp_for_metrics = 2.5;
    fc.make_chip = [](int) { return hw::tc2_chip(); };
    fc.make_governor = [](int, Watts budget) {
        return budgeted_ppm(budget);
    };
    fleet::ChipWorkload heavy;
    heavy.specs = {test::steady_spec("h0", 2, 700.0, 1.8, 30.0),
                   test::steady_spec("h1", 1, 650.0, 1.7, 30.0),
                   test::steady_spec("h2", 1, 600.0, 1.6, 25.0)};
    fleet::ChipWorkload light;
    light.specs = {test::steady_spec("l0", 1, 40.0, 1.5, 5.0)};
    fc.workloads = {heavy, light};

    fleet::FloatingTask mid;
    mid.spec = test::steady_spec("float0", 1, 100.0, 1.6, 10.0);
    mid.big_speedup = 1.6;
    mid.arrival = kSecond;
    fleet::FloatingTask late;
    late.spec = test::steady_spec("float1", 1, 100.0, 1.6, 10.0);
    late.arrival = 100 * kSecond;  // Past the run: never admitted.
    fc.floating = {mid, late};

    fleet::Fleet fleet(std::move(fc));
    const fleet::FleetResult res = fleet.run();
    EXPECT_EQ(res.admitted, 1);
    ASSERT_EQ(res.placements.size(), 2u);
    EXPECT_EQ(res.placements[0], 1)
        << "the idle chip is cheaper and must win the placement";
    EXPECT_EQ(res.placements[1], -1);
    // The floating task's QoS rides the landing chip's summary.
    EXPECT_EQ(res.per_chip[1].task_below.size(), 2u);
    EXPECT_EQ(res.per_chip[0].task_below.size(), 3u);
}

// ----------------------------------------------------------------
// The simulation primitives the fleet engine rests on.

TEST(Simulation, RunUntilSlicesMatchOneShotRun)
{
    const auto build = [](std::ostringstream& os,
                          metrics::JsonlSink& sink) {
        auto sim = std::make_unique<sim::Simulation>(
            hw::tc2_chip(), golden_specs(),
            std::make_unique<market::PpmGovernor>(golden_ppm_config()),
            golden_sim_config());
        sim->bus().add_sink(&sink);
        (void)os;
        return sim;
    };
    std::ostringstream os_a, os_b;
    metrics::JsonlSink sink_a(os_a), sink_b(os_b);
    auto one_shot = build(os_a, sink_a);
    const sim::RunSummary a = one_shot->run();

    auto sliced = build(os_b, sink_b);
    // Arbitrary uneven tick-aligned slices, incl. a zero-length one.
    sliced->run_until(700 * kMillisecond);
    sliced->run_until(700 * kMillisecond);
    sliced->run_until(1900 * kMillisecond);
    sliced->run_until(6 * kSecond);
    const sim::RunSummary b = sliced->finish();

    EXPECT_EQ(fingerprint(a), fingerprint(b));
    EXPECT_EQ(os_a.str(), os_b.str());
}

TEST(Simulation, AdmitTaskMidRunJoinsTheEconomy)
{
    sim::SimConfig cfg;
    cfg.duration = 4 * kSecond;
    cfg.tdp_for_metrics = 3.5;
    sim::Simulation sim(hw::tc2_chip(),
                        {test::steady_spec("base", 1, 200.0, 1.6, 20.0)},
                        std::make_unique<market::PpmGovernor>(
                            golden_ppm_config()),
                        cfg);
    sim.run_until(2 * kSecond);
    const TaskId id = sim.admit_task(
        test::steady_spec("joiner", 2, 150.0, 1.8, 15.0),
        {2 * kSecond, sim::SimConfig::Lifetime::kForever}, 1.8);
    EXPECT_EQ(id, 1);
    sim.run_until(4 * kSecond);
    const sim::RunSummary s = sim.finish();
    ASSERT_EQ(s.task_below.size(), 2u);
    ASSERT_EQ(s.task_outside.size(), 2u);
    // The joiner lived half the run and was actually served.
    EXPECT_LT(s.task_outside[1], 1.0);
}

// ----------------------------------------------------------------
// Chip failure, evacuation and recovery.

/** The golden fleet with a hand-built chip-fault schedule. */
fleet::FleetConfig
faulted_fleet_config(int chips,
                     const std::vector<fault::FleetFaultEvent>& events)
{
    fleet::FleetConfig fc = golden_fleet_config(chips, 1);
    for (const fault::FleetFaultEvent& ev : events)
        fc.fleet_faults.add(ev);
    return fc;
}

/** A fail event on the epoch grid. */
fault::FleetFaultEvent
fail_at(SimTime t, int chip)
{
    fault::FleetFaultEvent ev;
    ev.kind = fault::FleetFaultKind::kChipFail;
    ev.time = t;
    ev.chip = chip;
    return ev;
}

fault::FleetFaultEvent
recover_at(SimTime t, int chip)
{
    fault::FleetFaultEvent ev;
    ev.kind = fault::FleetFaultKind::kChipRecover;
    ev.time = t;
    ev.chip = chip;
    return ev;
}

TEST(FleetFaults, EmptyPlanLeavesTheRunByteIdentical)
{
    // The fault machinery must be fully disabled -- not merely
    // inert -- when the plan is empty: same bytes on every stream.
    const FleetBytes plain = run_golden_fleet(3, 1);

    std::ostringstream fleet_os, chip_os;
    metrics::JsonlSink fleet_sink(fleet_os), chip_sink(chip_os);
    fleet::Fleet fleet(
        faulted_fleet_config(3, {}));  // Explicitly empty plan.
    fleet.bus().add_sink(&fleet_sink);
    fleet.shard(0).bus().add_sink(&chip_sink);
    const fleet::FleetResult res = fleet.run();

    EXPECT_EQ(fingerprint(res.combined), plain.summary);
    EXPECT_EQ(fleet_os.str(), plain.fleet_jsonl);
    EXPECT_EQ(chip_os.str(), plain.chip0_jsonl);
    EXPECT_EQ(res.final_budgets, plain.final_budgets);
    EXPECT_EQ(res.chip_failures, 0);
    EXPECT_EQ(res.evacuations, 0);
    EXPECT_FALSE(res.all_chips_failed);
}

TEST(FleetFaults, FailureEvacuatesAndConservesTasks)
{
    fleet::Fleet fleet(faulted_fleet_config(
        3, {fail_at(2016 * kMillisecond, 1)}));
    const fleet::FleetResult res = fleet.run();

    EXPECT_EQ(res.chip_failures, 1);
    EXPECT_EQ(res.chip_recoveries, 0);
    // At 2016 ms the golden workload has two live tasks on chip 1
    // (task 2 departed at 2 s); both must be pulled off, and
    // conservation must hold exactly.
    EXPECT_EQ(res.evacuations, 2);
    EXPECT_EQ(res.evacuations, res.evac_landed + res.evac_pending_end);
    EXPECT_EQ(res.evac_landed, 2) << "two healthy chips had room";
    ASSERT_EQ(res.final_health.size(), 3u);
    EXPECT_EQ(res.final_health[1], 2);
    EXPECT_EQ(res.final_health[0], 0);
    EXPECT_EQ(res.final_health[2], 0);
    // The dead chip is out of the settlement: survivors carry the
    // whole fleet budget.
    ASSERT_EQ(res.final_budgets.size(), 3u);
    EXPECT_NEAR(res.final_budgets[0] + res.final_budgets[2], 10.5,
                1e-9 * 10.5);
    EXPECT_FALSE(res.all_chips_failed);
}

TEST(FleetFaults, LastSurvivorGetsTheFleetBudgetVerbatim)
{
    // Kill chips 1 and 2; chip 0 is the last survivor, and the
    // 1-chip settlement path must hand it the total bitwise -- no
    // floor/remainder arithmetic may rewrite it.
    fleet::Fleet fleet(faulted_fleet_config(
        3, {fail_at(960 * kMillisecond, 1),
            fail_at(1920 * kMillisecond, 2)}));
    const fleet::FleetResult res = fleet.run();

    EXPECT_EQ(res.chip_failures, 2);
    ASSERT_EQ(res.final_budgets.size(), 3u);
    EXPECT_EQ(res.final_budgets[0], 10.5);
    EXPECT_FALSE(res.all_chips_failed);
    EXPECT_EQ(res.evacuations, res.evac_landed + res.evac_pending_end);
}

TEST(FleetFaults, AllChipsFailedEndsCleanlyAndLoudly)
{
    fleet::Fleet fleet(faulted_fleet_config(
        2, {fail_at(960 * kMillisecond, 0),
            fail_at(960 * kMillisecond, 1)}));
    const fleet::FleetResult res = fleet.run();

    EXPECT_TRUE(res.all_chips_failed);
    EXPECT_EQ(res.chip_failures, 2);
    // Nowhere to land: every evacuated task stays queued to the end.
    EXPECT_GT(res.evacuations, 0);
    EXPECT_EQ(res.evac_landed, 0);
    EXPECT_EQ(res.evac_pending_end, res.evacuations);
    ASSERT_EQ(res.final_health.size(), 2u);
    EXPECT_EQ(res.final_health[0], 2);
    EXPECT_EQ(res.final_health[1], 2);
}

TEST(FleetFaults, RecoveryLandsOnTheBarrierAndDrainsTheQueue)
{
    // 2-chip fleet: chip 1 dies, then recovers; after recovery the
    // pending queue drains and the chip rejoins the settlement.
    fleet::Fleet fleet(faulted_fleet_config(
        2, {fail_at(960 * kMillisecond, 1),
            recover_at(2976 * kMillisecond, 1)}));
    const fleet::FleetResult res = fleet.run();

    EXPECT_EQ(res.chip_failures, 1);
    EXPECT_EQ(res.chip_recoveries, 1);
    EXPECT_EQ(res.evacuations, res.evac_landed + res.evac_pending_end);
    ASSERT_EQ(res.final_health.size(), 2u);
    EXPECT_EQ(res.final_health[1], 0) << "recovered to healthy";
    // Back in the settlement: both chips hold budget at the end.
    ASSERT_EQ(res.final_budgets.size(), 2u);
    EXPECT_GT(res.final_budgets[1], 0.0);
    EXPECT_NEAR(res.final_budgets[0] + res.final_budgets[1], 7.0,
                1e-9 * 7.0);
}

TEST(FleetFaults, CompiledPlanIsDeterministicAndOnTheGrid)
{
    fault::FaultSpec spec;
    spec.seed = 7;
    spec.chip_fail = true;
    spec.chip_degrade = true;
    spec.chip_recover = true;
    spec.chip_rate_per_min = 30.0;
    const SimTime duration = 6 * kSecond;
    const SimTime epoch = 96 * kMillisecond;
    const fault::FleetFaultPlan a =
        fault::FleetFaultPlan::compile(spec, 4, duration, epoch);
    const fault::FleetFaultPlan b =
        fault::FleetFaultPlan::compile(spec, 4, duration, epoch);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        const fault::FleetFaultEvent& ea = a.events()[i];
        const fault::FleetFaultEvent& eb = b.events()[i];
        EXPECT_EQ(ea.kind, eb.kind);
        EXPECT_EQ(ea.time, eb.time);
        EXPECT_EQ(ea.chip, eb.chip);
        EXPECT_EQ(ea.factor, eb.factor);
        // Transitions land on settlement barriers only.
        EXPECT_EQ(ea.time % epoch, 0) << "event " << i;
        EXPECT_GE(ea.chip, 0);
        EXPECT_LT(ea.chip, 4);
        EXPECT_LE(ea.time, duration);
    }
}

TEST(Fleet, SharedClearingPoolMatchesOwnedPool)
{
    const auto run_with = [](ThreadPool* shared, int jobs) {
        market::PpmGovernorConfig cfg = golden_ppm_config();
        // Engage the clearing engine on this small market.
        cfg.market.clearing_min_tasks = 2;
        cfg.market.clearing_grain = 1;
        cfg.clearing_jobs = jobs;
        cfg.clearing_pool = shared;
        std::ostringstream os;
        metrics::JsonlSink sink(os);
        sim::Simulation sim(
            hw::tc2_chip(), golden_specs(),
            std::make_unique<market::PpmGovernor>(cfg),
            golden_sim_config());
        sim.bus().add_sink(&sink);
        const sim::RunSummary s = sim.run();
        return fingerprint(s) + "\n" + os.str();
    };
    ThreadPool pool(3);
    const std::string shared = run_with(&pool, 1);
    const std::string owned = run_with(nullptr, 3);
    const std::string inline_run = run_with(nullptr, 1);
    EXPECT_EQ(shared, owned);
    EXPECT_EQ(shared, inline_run);
}

} // namespace
} // namespace ppm

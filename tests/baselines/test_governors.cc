/** @file Behavioural tests for the HL and HPM baseline governors. */

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "hw/platform.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm::baselines {
namespace {

std::vector<workload::TaskSpec>
three_greedy_tasks(Pu demand)
{
    return {test::steady_spec("a", 1, demand),
            test::steady_spec("b", 1, demand),
            test::steady_spec("c", 1, demand)};
}

TEST(HlGovernor, CrowdsActiveTasksOntoBigCluster)
{
    sim::SimConfig cfg;
    cfg.duration = 20 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), three_greedy_tasks(400.0),
                        std::make_unique<HlGovernor>(HlConfig{}), cfg);
    sim.run();
    // Greedy tasks saturate the activeness signal -> everything
    // migrates to the big cluster "at the first opportunity".
    for (TaskId t = 0; t < 3; ++t)
        EXPECT_EQ(sim.chip().cluster_of(sim.scheduler().core_of(t)), 1);
}

TEST(HlGovernor, EmitsDvfsEpochTelemetry)
{
    sim::SimConfig cfg;
    cfg.duration = 5 * kSecond;
    cfg.trace = true;
    sim::Simulation sim(hw::tc2_chip(), three_greedy_tasks(400.0),
                        std::make_unique<HlGovernor>(HlConfig{}), cfg);
    sim.run();
    // One hl_dvfs_epoch record per DVFS period, rendered into
    // per-cluster util/level series by the memory sink.
    EXPECT_FALSE(sim.recorder().series("cluster0_util").empty());
    EXPECT_FALSE(sim.recorder().series("cluster0_level").empty());
    EXPECT_FALSE(sim.recorder().series("cluster1_level").empty());
}

TEST(HpmGovernor, EmitsDvfsEpochTelemetry)
{
    sim::SimConfig cfg;
    cfg.duration = 5 * kSecond;
    cfg.trace = true;
    sim::Simulation sim(hw::tc2_chip(), three_greedy_tasks(400.0),
                        std::make_unique<HpmGovernor>(HpmConfig{}), cfg);
    sim.run();
    EXPECT_FALSE(sim.recorder().series("cluster0_demand").empty());
    EXPECT_FALSE(sim.recorder().series("cluster0_pid_out").empty());
    EXPECT_FALSE(sim.recorder().series("cluster0_level_cap").empty());
}

TEST(HlGovernor, OndemandPegsBusyClusterAtMax)
{
    sim::SimConfig cfg;
    cfg.duration = 20 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), three_greedy_tasks(400.0),
                        std::make_unique<HlGovernor>(HlConfig{}), cfg);
    sim.run();
    EXPECT_DOUBLE_EQ(sim.chip().cluster(1).mhz(), 1200.0);
}

TEST(HlGovernor, BurnsFarMorePowerThanNeeded)
{
    sim::SimConfig cfg;
    cfg.duration = 30 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), three_greedy_tasks(300.0),
                        std::make_unique<HlGovernor>(HlConfig{}), cfg);
    const auto summary = sim.run();
    // Paper Figure 5: HL averages ~6 W where PPM needs ~2-3 W.
    EXPECT_GT(summary.avg_power, 5.0);
}

TEST(HlGovernor, TdpCapKillsBigCluster)
{
    HlConfig hl;
    hl.tdp = 4.0;
    sim::SimConfig cfg;
    cfg.duration = 30 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), three_greedy_tasks(400.0),
                        std::make_unique<HlGovernor>(hl), cfg);
    const auto summary = sim.run();
    EXPECT_FALSE(sim.chip().cluster(1).powered());
    // All tasks evacuated to LITTLE.
    for (TaskId t = 0; t < 3; ++t)
        EXPECT_EQ(sim.chip().cluster_of(sim.scheduler().core_of(t)), 0);
    // And the cap holds from then on.
    EXPECT_LT(summary.avg_power, 4.0);
}

TEST(HlGovernor, BalancesQueuesWithinCluster)
{
    sim::SimConfig cfg;
    cfg.duration = 20 * kSecond;
    // Six tasks -> three per big core after crowding + balancing.
    std::vector<workload::TaskSpec> specs;
    for (int i = 0; i < 6; ++i) {
        std::string name = "t";
        name += std::to_string(i);
        specs.push_back(test::steady_spec(name, 1, 300.0));
    }
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HlGovernor>(HlConfig{}), cfg);
    sim.run();
    EXPECT_EQ(sim.scheduler().tasks_on(3).size(), 3u);
    EXPECT_EQ(sim.scheduler().tasks_on(4).size(), 3u);
}

TEST(HpmGovernor, TracksDemandWithDvfs)
{
    sim::SimConfig cfg;
    cfg.duration = 60 * kSecond;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("solo", 1, 500.0)};
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HpmGovernor>(HpmConfig{}), cfg);
    const auto summary = sim.run();
    EXPECT_LT(summary.any_below_miss, 0.15);
    // The PI loop should not peg the cluster at max for a 500 PU task.
    EXPECT_LE(sim.chip().cluster(0).mhz(), 800.0);
}

TEST(HpmGovernor, MigratesUpWhenLittleMaxedAndUnsatisfied)
{
    sim::SimConfig cfg;
    cfg.duration = 60 * kSecond;
    // Two 700 PU tasks per LITTLE core exceed 1000 PU even at max:
    // HPM's threshold migration must move someone to big.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 700.0),
        test::steady_spec("b", 1, 700.0),
        test::steady_spec("c", 1, 700.0),
        test::steady_spec("d", 1, 700.0),
    };
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HpmGovernor>(HpmConfig{}), cfg);
    sim.run();
    int on_big = 0;
    for (TaskId t = 0; t < 4; ++t) {
        if (sim.chip().cluster_of(sim.scheduler().core_of(t)) == 1)
            ++on_big;
    }
    EXPECT_GE(on_big, 1);
}

TEST(HpmGovernor, TdpLoopCapsPower)
{
    HpmConfig hpm;
    hpm.tdp = 3.0;
    sim::SimConfig cfg;
    cfg.duration = 90 * kSecond;
    cfg.tdp_for_metrics = 3.0;
    std::vector<workload::TaskSpec> specs;
    for (int i = 0; i < 5; ++i) {
        std::string name = "t";
        name += std::to_string(i);
        specs.push_back(test::steady_spec(name, 1, 900.0));
    }
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HpmGovernor>(hpm), cfg);
    const auto summary = sim.run();
    EXPECT_LT(summary.avg_power, 3.3);
}

TEST(HpmGovernor, LoadBalancesTaskCounts)
{
    sim::SimConfig cfg;
    cfg.duration = 20 * kSecond;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 200.0),
        test::steady_spec("b", 1, 200.0),
        test::steady_spec("c", 1, 200.0),
    };
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HpmGovernor>(HpmConfig{}), cfg);
    sim.run();
    // Initial round-robin places one per LITTLE core; balancing must
    // not pile them up.
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_LE(sim.scheduler().tasks_on(c).size(), 2u);
}

} // namespace
} // namespace ppm::baselines

/**
 * @file
 * Deeper behavioural tests for the baselines: HL's down-migration and
 * ondemand relaxation, HPM's cap relaxation after TDP pressure.
 */

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "hw/platform.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm::baselines {
namespace {

TEST(HlDetails, QuietTaskMigratesBackToLittle)
{
    // A self-paced task that needs only ~10% of a big core: its
    // activeness decays below the down-threshold and HL repatriates
    // it to the LITTLE cluster.
    sim::SimConfig cfg;
    cfg.duration = 30 * kSecond;
    cfg.placement = {3};  // Start on a big core.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("quiet", 1, 100.0, 1.6, 20.0,
                          /*self_pace=*/20.0)};
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HlGovernor>(HlConfig{}), cfg);
    sim.run();
    EXPECT_EQ(sim.chip().cluster_of(sim.scheduler().core_of(0)), 0);
}

TEST(HlDetails, OndemandRelaxesForLightLoad)
{
    // A self-paced ~200 PU task alone: ondemand settles near the
    // frequency that keeps utilization below the 80% threshold
    // instead of pegging the maximum.
    sim::SimConfig cfg;
    cfg.duration = 30 * kSecond;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("paced", 1, 200.0, 1.6, 20.0,
                          /*self_pace=*/20.0)};
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HlGovernor>(HlConfig{}), cfg);
    sim.run();
    // 200 PU / 0.8 = 250 PU -> 350 MHz LITTLE or ~500 big suffices.
    const ClusterId v =
        sim.chip().cluster_of(sim.scheduler().core_of(0));
    EXPECT_LE(sim.chip().cluster(v).mhz(), 600.0);
}

TEST(HlDetails, BigClusterStaysDeadAfterTdpKill)
{
    // Once the TDP kill fires, the big cluster never comes back even
    // if power later drops far below the cap (the paper's emulation).
    HlConfig hl;
    hl.tdp = 4.0;
    sim::SimConfig cfg;
    cfg.duration = 60 * kSecond;
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 500.0), test::steady_spec("b", 1, 500.0)};
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HlGovernor>(hl), cfg);
    sim.run();
    EXPECT_FALSE(sim.chip().cluster(1).powered());
    EXPECT_LT(sim.sensors().instantaneous_chip(), 4.0);
}

TEST(HpmDetails, CapsRelaxWhenHeadroomReturns)
{
    // Drive HPM into TDP throttling with a heavy phase, then drop the
    // demand: the outer loop must relax the caps and the inner loop
    // must settle at a modest frequency (not stay throttled).
    HpmConfig hpm;
    hpm.tdp = 3.0;
    workload::TaskSpec phased = test::steady_spec("p", 1, 900.0);
    const Cycles w = phased.phases[0].work_per_hb_little;
    phased.phases.clear();
    phased.phases.push_back(workload::Phase{30 * kSecond, w, w / 1.6});
    phased.phases.push_back(
        workload::Phase{60 * kSecond, w / 3.0, w / 4.8});
    std::vector<workload::TaskSpec> specs{phased,
                                          test::steady_spec("q", 1,
                                                            900.0)};
    sim::SimConfig cfg;
    cfg.duration = 90 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HpmGovernor>(hpm), cfg);
    const auto summary = sim.run();
    // After the light phase the system must be meeting demand again.
    EXPECT_LT(summary.task_below[0], 0.6);
    EXPECT_LT(summary.avg_power, 3.3);
}

TEST(HpmDetails, PerTaskNiceFollowsDemand)
{
    // Hungry/modest pairs on every LITTLE core (six tasks, so the
    // count balancer leaves the pairing intact): HPM's demand-
    // proportional nice assignment must favour the hungry task of
    // each pair.
    std::vector<workload::TaskSpec> specs;
    for (int i = 0; i < 3; ++i) {
        specs.push_back(test::steady_spec("hungry" + std::to_string(i),
                                          1, 700.0));
        specs.push_back(test::steady_spec("modest" + std::to_string(i),
                                          1, 150.0));
    }
    sim::SimConfig cfg;
    cfg.duration = 20 * kSecond;
    cfg.placement = {0, 0, 1, 1, 2, 2};
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<HpmGovernor>(HpmConfig{}), cfg);
    sim.run();
    // Find a core still hosting one task of each kind and compare.
    int compared = 0;
    for (CoreId c = 0; c < sim.chip().num_cores(); ++c) {
        TaskId hungry = kInvalidId;
        TaskId modest = kInvalidId;
        for (TaskId t : sim.scheduler().tasks_on(c)) {
            if (t % 2 == 0)
                hungry = t;
            else
                modest = t;
        }
        if (hungry != kInvalidId && modest != kInvalidId) {
            EXPECT_LT(sim.scheduler().nice_of(hungry),
                      sim.scheduler().nice_of(modest));
            ++compared;
        }
    }
    EXPECT_GE(compared, 1);
}

} // namespace
} // namespace ppm::baselines

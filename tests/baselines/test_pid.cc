/** @file Unit tests for the PI(D) controller used by HPM. */

#include <gtest/gtest.h>

#include "baselines/hpm_governor.hh"

namespace ppm::baselines {
namespace {

TEST(Pid, ProportionalOnly)
{
    Pid pid({/*kp=*/2.0, 0.0, 0.0, -10.0, 10.0});
    EXPECT_DOUBLE_EQ(pid.step(1.5, 0.1), 3.0);
    EXPECT_DOUBLE_EQ(pid.step(-1.0, 0.1), -2.0);
}

TEST(Pid, IntegralAccumulates)
{
    Pid pid({0.0, 1.0, 0.0, -10.0, 10.0});
    EXPECT_NEAR(pid.step(1.0, 1.0), 1.0, 1e-12);
    EXPECT_NEAR(pid.step(1.0, 1.0), 2.0, 1e-12);
    EXPECT_NEAR(pid.step(-2.0, 1.0), 0.0, 1e-12);
}

TEST(Pid, DerivativeRespondsToChange)
{
    Pid pid({0.0, 0.0, 1.0, -100.0, 100.0});
    EXPECT_DOUBLE_EQ(pid.step(1.0, 1.0), 0.0);  // No previous error.
    EXPECT_DOUBLE_EQ(pid.step(3.0, 1.0), 2.0);
}

TEST(Pid, OutputSaturates)
{
    Pid pid({10.0, 0.0, 0.0, -1.0, 1.0});
    EXPECT_DOUBLE_EQ(pid.step(5.0, 0.1), 1.0);
    EXPECT_DOUBLE_EQ(pid.step(-5.0, 0.1), -1.0);
}

TEST(Pid, AntiWindupPreventsIntegralRunaway)
{
    Pid pid({0.0, 1.0, 0.0, -1.0, 1.0});
    // Saturating errors do not wind up the integrator.
    for (int i = 0; i < 100; ++i)
        pid.step(10.0, 1.0);
    // One opposite step should swing the output away from +1 quickly.
    pid.step(-10.0, 1.0);
    const double out = pid.step(0.0, 1.0);
    EXPECT_LT(out, 1.0);
}

TEST(Pid, ResetClearsState)
{
    Pid pid({0.0, 1.0, 1.0, -10.0, 10.0});
    pid.step(2.0, 1.0);
    pid.reset();
    EXPECT_NEAR(pid.step(1.0, 1.0), 1.0, 1e-12);  // Fresh integrator.
}

} // namespace
} // namespace ppm::baselines

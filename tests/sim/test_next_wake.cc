/**
 * @file
 * Contract tests for Governor::next_wake(): the reported wake time
 * must be exactly the next tick at which a polled tick() would act.
 * The macro-stepping engine skips governor polls strictly before the
 * reported wake, so a governor that acts earlier than it promises
 * would silently diverge from the per-tick loop.
 *
 * Two angles:
 *  - PPM exposes its market round counter, so bid rounds can be
 *    matched one-to-one against the reported wake times;
 *  - for all governors, every externally visible control (V-F levels,
 *    power gating, placements, nice values, activity) must stay
 *    frozen across any tick that starts before the reported wake.
 */

#include <vector>

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm {
namespace {

std::vector<workload::TaskSpec>
specs()
{
    return {
        test::steady_spec("a", 2, 420.0, 1.7, 25.0),
        test::steady_spec("b", 1, 250.0, 1.5, 20.0),
        test::steady_spec("c", 1, 120.0, 1.6, 10.0, 0.5),
    };
}

/** Everything a governor can change that the platform observes. */
struct ControlState {
    std::vector<int> levels;
    std::vector<bool> powered;
    std::vector<int> nice;
    std::vector<CoreId> cores;
    std::vector<bool> active;
    long migrations = 0;

    bool operator==(const ControlState&) const = default;
};

ControlState
control_state(const sim::Simulation& sim)
{
    ControlState s;
    for (const auto& cl : sim.chip().clusters()) {
        s.levels.push_back(cl.level());
        s.powered.push_back(cl.powered());
    }
    const auto& sched = sim.scheduler();
    for (TaskId t = 0; t < static_cast<TaskId>(sched.num_tasks()); ++t) {
        s.nice.push_back(sched.nice_of(t));
        s.cores.push_back(sched.core_of(t));
        s.active.push_back(sched.active(t));
    }
    s.migrations = sched.migrations();
    return s;
}

TEST(NextWake, PpmBidRoundsFireExactlyAtReportedWake)
{
    auto gov =
        std::make_unique<market::PpmGovernor>(market::PpmGovernorConfig{});
    auto* gp = gov.get();
    sim::SimConfig cfg;
    cfg.duration = 2 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs(), std::move(gov), cfg);
    sim.step();  // t = 0: init + the first bid round.
    const SimTime period = gp->bid_period();
    ASSERT_GT(period, 0);
    long fired = 0;
    while (sim.now() < cfg.duration) {
        const SimTime t = sim.now();
        const SimTime wake = gp->next_wake(t);
        const long before = gp->market().rounds();
        sim.step();
        const bool acted = gp->market().rounds() != before;
        EXPECT_EQ(acted, wake <= t) << "at t=" << t;
        if (acted) {
            EXPECT_EQ(t % period, 0) << "off-epoch round at t=" << t;
            ++fired;
        }
    }
    EXPECT_GT(fired, 10);
}

TEST(NextWake, HpmControlsFrozenBeforeReportedWake)
{
    baselines::HpmConfig hcfg;
    hcfg.tdp = 4.0;
    auto gov = std::make_unique<baselines::HpmGovernor>(hcfg);
    auto* gp = gov.get();
    sim::SimConfig cfg;
    cfg.duration = 2 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs(), std::move(gov), cfg);
    sim.step();
    long polled_ticks = 0;
    while (sim.now() < cfg.duration) {
        const SimTime t = sim.now();
        const SimTime wake = gp->next_wake(t);
        const ControlState before = control_state(sim);
        sim.step();
        if (wake > t) {
            EXPECT_TRUE(before == control_state(sim))
                << "governor acted at t=" << t
                << " despite reporting wake=" << wake;
        } else {
            ++polled_ticks;
        }
        // All three HPM periods are multiples of the 32 ms inner loop,
        // so the reported wake times are exactly the 32 ms grid.
        EXPECT_EQ(wake <= t, t % hcfg.dvfs_period == 0) << "t=" << t;
    }
    EXPECT_GT(polled_ticks, 30);
}

TEST(NextWake, HlControlsFrozenBeforeReportedWakeWhileQuiescent)
{
    baselines::HlConfig hcfg;  // Default TDP: unconstrained, no kill.
    auto gov = std::make_unique<baselines::HlGovernor>(hcfg);
    auto* gp = gov.get();
    sim::SimConfig cfg;
    cfg.duration = 2 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), specs(), std::move(gov), cfg);
    sim.step();
    long polled_ticks = 0;
    while (sim.now() < cfg.duration) {
        const SimTime t = sim.now();
        const SimTime wake = gp->next_wake(t);
        const bool quiescent = gp->quiescent(sim);
        const ControlState before = control_state(sim);
        sim.step();
        // HL's TDP kill can fire on any tick; next_wake() only covers
        // the periodic timers, which is why the engine also consults
        // quiescent().  Freezing is promised only when both agree.
        if (wake > t && quiescent) {
            EXPECT_TRUE(before == control_state(sim))
                << "governor acted at t=" << t
                << " despite reporting wake=" << wake;
        }
        if (wake <= t)
            ++polled_ticks;
        EXPECT_EQ(wake <= t, t % hcfg.sched_period == 0) << "t=" << t;
    }
    EXPECT_GT(polled_ticks, 30);
}

} // namespace
} // namespace ppm

/** @file Tests for the simulation harness itself. */

#include <cmath>

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm::sim {
namespace {

/** A do-nothing governor for harness-level tests. */
class NullGovernor : public Governor
{
  public:
    std::string name() const override { return "null"; }
    void init(Simulation&) override { ++inits_; }
    void tick(Simulation&, SimTime, SimTime) override { ++ticks_; }

    int inits_ = 0;
    long ticks_ = 0;
};

/** A governor that pins the LITTLE cluster at a chosen level. */
class FixedLevelGovernor : public Governor
{
  public:
    explicit FixedLevelGovernor(int level) : level_(level) {}
    std::string name() const override { return "fixed"; }
    void init(Simulation& sim) override
    {
        sim.chip().cluster(0).set_level(level_);
    }
    void tick(Simulation&, SimTime, SimTime) override {}

  private:
    int level_;
};

TEST(Simulation, RoundRobinInitialPlacementOnBootCluster)
{
    std::vector<workload::TaskSpec> specs;
    for (int i = 0; i < 5; ++i) {
        std::string name = "t";
        name += std::to_string(i);
        specs.push_back(test::steady_spec(name, 1, 100.0));
    }
    SimConfig cfg;
    cfg.duration = kMillisecond;
    Simulation sim(hw::tc2_chip(), specs,
                   std::make_unique<NullGovernor>(), cfg);
    // Cluster 0 has cores {0,1,2}: round robin 0,1,2,0,1.
    EXPECT_EQ(sim.scheduler().core_of(0), 0);
    EXPECT_EQ(sim.scheduler().core_of(1), 1);
    EXPECT_EQ(sim.scheduler().core_of(2), 2);
    EXPECT_EQ(sim.scheduler().core_of(3), 0);
    EXPECT_EQ(sim.scheduler().core_of(4), 1);
}

TEST(Simulation, GovernorLifecycle)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 100.0)};
    SimConfig cfg;
    cfg.duration = 100 * kMillisecond;
    auto gov = std::make_unique<NullGovernor>();
    auto* gp = gov.get();
    Simulation sim(hw::tc2_chip(), specs, std::move(gov), cfg);
    sim.run();
    EXPECT_EQ(gp->inits_, 1);
    EXPECT_EQ(gp->ticks_, 100);
    EXPECT_EQ(sim.now(), 100 * kMillisecond);
}

TEST(Simulation, EnergyMatchesPowerIntegral)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 900.0)};
    SimConfig cfg;
    cfg.duration = 10 * kSecond;
    Simulation sim(hw::tc2_chip(), specs,
                   std::make_unique<FixedLevelGovernor>(7), cfg);
    const auto summary = sim.run();
    EXPECT_NEAR(summary.energy, summary.avg_power * 10.0, 1e-6);
    EXPECT_GT(summary.avg_power, 0.5);
}

TEST(Simulation, VfTransitionCounting)
{
    class Wiggle : public Governor
    {
      public:
        std::string name() const override { return "wiggle"; }
        void init(Simulation&) override {}
        void tick(Simulation& sim, SimTime now, SimTime) override
        {
            if (now % kSecond == 0) {
                sim.chip().cluster(0).set_level(toggle_ ? 3 : 0);
                toggle_ = !toggle_;
            }
        }

      private:
        bool toggle_ = false;
    };
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 100.0)};
    SimConfig cfg;
    cfg.duration = 5 * kSecond;
    Simulation sim(hw::tc2_chip(), specs, std::make_unique<Wiggle>(),
                   cfg);
    const auto summary = sim.run();
    EXPECT_GE(summary.vf_transitions, 4);
}

TEST(Simulation, QosWarmupExcluded)
{
    // A task that is starved during the first second only: with a
    // 2 s warmup the miss fraction is near zero.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 300.0)};
    SimConfig cfg;
    cfg.duration = 30 * kSecond;
    cfg.warmup = 2 * kSecond;
    Simulation sim(hw::tc2_chip(), specs,
                   std::make_unique<FixedLevelGovernor>(7), cfg);
    const auto summary = sim.run();
    EXPECT_LT(summary.any_below_miss, 0.02);
}

TEST(Simulation, AvgPowerPostWarmupExcludesWarmupWindow)
{
    /** Runs cheap during warmup, then jumps to the top level. */
    class StepUp : public Governor
    {
      public:
        std::string name() const override { return "stepup"; }
        void init(Simulation& sim) override
        {
            sim.chip().cluster(0).set_level(0);
        }
        void tick(Simulation& sim, SimTime now, SimTime) override
        {
            sim.chip().cluster(0).set_level(now < 2 * kSecond ? 0 : 7);
        }
    };
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 900.0)};
    SimConfig cfg;
    cfg.duration = 10 * kSecond;
    cfg.warmup = 2 * kSecond;
    Simulation sim(hw::tc2_chip(), specs, std::make_unique<StepUp>(),
                   cfg);
    const auto full = sim.run();

    // The full-run average is dragged down by the cheap warmup; the
    // post-warmup average covers the same window as the QoS metrics.
    EXPECT_GT(full.avg_power_post_warmup, full.avg_power);

    // Consistency: a warmup-length run of the same (deterministic)
    // scenario measures the warmup energy, so the post-warmup average
    // must equal the remaining energy over the remaining 8 s.
    SimConfig warm_cfg = cfg;
    warm_cfg.duration = cfg.warmup;
    Simulation warm(hw::tc2_chip(), specs, std::make_unique<StepUp>(),
                    warm_cfg);
    const auto warmup_only = warm.run();
    const double expected =
        (full.energy - warmup_only.energy) / to_seconds(10 * kSecond -
                                                        cfg.warmup);
    EXPECT_NEAR(full.avg_power_post_warmup, expected, 0.02);
}

TEST(Simulation, AvgPowerPostWarmupMatchesFullRunWithoutWarmup)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 900.0)};
    SimConfig cfg;
    cfg.duration = 10 * kSecond;
    cfg.warmup = 0;
    Simulation sim(hw::tc2_chip(), specs,
                   std::make_unique<FixedLevelGovernor>(7), cfg);
    const auto summary = sim.run();
    EXPECT_NEAR(summary.avg_power_post_warmup, summary.avg_power, 1e-9);
}

TEST(Simulation, TraceRecordsSeries)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("traced", 1, 300.0)};
    SimConfig cfg;
    cfg.duration = 5 * kSecond;
    cfg.trace = true;
    Simulation sim(hw::tc2_chip(), specs,
                   std::make_unique<FixedLevelGovernor>(7), cfg);
    sim.run();
    EXPECT_FALSE(sim.recorder().series("chip_power_w").empty());
    EXPECT_FALSE(sim.recorder().series("traced_norm_hr").empty());
    EXPECT_FALSE(sim.recorder().series("cluster0_mhz").empty());
}

TEST(SimulationDeath, RejectsWrongSizedPlacement)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 100.0),
        test::steady_spec("b", 1, 100.0)};
    SimConfig cfg;
    cfg.placement = {0};  // Two tasks, one core named.
    EXPECT_DEATH(Simulation(hw::tc2_chip(), specs,
                            std::make_unique<NullGovernor>(), cfg),
                 "placement");
}

TEST(SimulationDeath, RejectsWrongSizedLifetimes)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("a", 1, 100.0)};
    SimConfig cfg;
    cfg.lifetimes = {{0, 10 * kSecond}, {0, 10 * kSecond}};
    EXPECT_DEATH(Simulation(hw::tc2_chip(), specs,
                            std::make_unique<NullGovernor>(), cfg),
                 "lifetimes");
}

TEST(Simulation, OverTdpFractionTracked)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 900.0)};
    SimConfig cfg;
    cfg.duration = 10 * kSecond;
    cfg.tdp_for_metrics = 0.5;  // Absurdly low: always violated.
    Simulation sim(hw::tc2_chip(), specs,
                   std::make_unique<FixedLevelGovernor>(7), cfg);
    const auto summary = sim.run();
    EXPECT_GT(summary.over_tdp_fraction, 0.95);
    // Without a warmup both windows are the whole run.
    EXPECT_DOUBLE_EQ(summary.over_tdp_post_warmup,
                     summary.over_tdp_fraction);
}

TEST(Simulation, OverTdpPostWarmupCoversQosWindow)
{
    /** Runs cheap during warmup, then jumps to the top level. */
    class StepUp : public Governor
    {
      public:
        std::string name() const override { return "stepup"; }
        void init(Simulation& sim) override
        {
            sim.chip().cluster(0).set_level(0);
        }
        void tick(Simulation& sim, SimTime now, SimTime) override
        {
            sim.chip().cluster(0).set_level(now < 2 * kSecond ? 0 : 7);
        }
    };
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 900.0)};

    // Calibrate a TDP between the low-level and high-level draw.
    SimConfig probe_cfg;
    probe_cfg.duration = 5 * kSecond;
    Simulation low(hw::tc2_chip(), specs,
                   std::make_unique<FixedLevelGovernor>(0), probe_cfg);
    Simulation high(hw::tc2_chip(), specs,
                    std::make_unique<FixedLevelGovernor>(7), probe_cfg);
    const double low_w = low.run().avg_power;
    const double high_w = high.run().avg_power;
    ASSERT_LT(low_w, high_w);

    SimConfig cfg;
    cfg.duration = 10 * kSecond;
    cfg.warmup = 2 * kSecond;
    cfg.tdp_for_metrics = 0.5 * (low_w + high_w);
    Simulation sim(hw::tc2_chip(), specs, std::make_unique<StepUp>(),
                   cfg);
    const auto summary = sim.run();
    // The whole-run fraction is diluted by the 2 s of cheap warmup;
    // the post-warmup window (the same one QoS and
    // avg_power_post_warmup use) is violated throughout.
    EXPECT_GT(summary.over_tdp_post_warmup, 0.95);
    EXPECT_LT(summary.over_tdp_fraction,
              summary.over_tdp_post_warmup);
    EXPECT_GT(summary.over_tdp_fraction, 0.7);
}

TEST(Simulation, NormHrGuardRecordsRawHeartRate)
{
    // A task whose reference range was never set (min = max = 0) has
    // no target to normalize by: the trace must carry its raw heart
    // rate, not an inf/nan-poisoned *_norm_hr series.
    workload::TaskSpec spec;
    spec.name = "free";
    spec.priority = 1;
    spec.min_hr = 0.0;
    spec.max_hr = 0.0;
    const Cycles w = 400.0 * kCyclesPerPuSecond / 20.0;
    spec.phases.push_back(
        workload::Phase{365LL * 24 * 3600 * kSecond, w, w / 1.6});
    SimConfig cfg;
    cfg.duration = 5 * kSecond;
    cfg.trace = true;
    Simulation sim(hw::tc2_chip(), {spec},
                   std::make_unique<FixedLevelGovernor>(3), cfg);
    sim.run();
    EXPECT_TRUE(sim.recorder().series("free_norm_hr").empty());
    const auto& raw = sim.recorder().series("free_hr");
    ASSERT_FALSE(raw.empty());
    for (const auto& s : raw)
        EXPECT_TRUE(std::isfinite(s.value));
}

TEST(Simulation, BusCountersMatchSummary)
{
    /** Wiggles the LITTLE cluster level and bounces a task between
     *  clusters, so both counters see real traffic. */
    class Churn : public Governor
    {
      public:
        std::string name() const override { return "churn"; }
        void init(Simulation&) override {}
        void tick(Simulation& sim, SimTime now, SimTime) override
        {
            if (now == 0 || now % kSecond != 0)
                return;
            sim.chip().cluster(0).set_level(toggle_ ? 3 : 0);
            sim.scheduler().migrate(0, toggle_ ? 3 : 0, now);
            toggle_ = !toggle_;
        }

      private:
        bool toggle_ = false;
    };
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 300.0)};
    SimConfig cfg;
    cfg.duration = 6 * kSecond;
    cfg.trace = true;
    Simulation sim(hw::tc2_chip(), specs, std::make_unique<Churn>(),
                   cfg);
    const auto summary = sim.run();
    ASSERT_GT(summary.migrations, 0);
    ASSERT_GT(summary.vf_transitions, 0);

    // The cheap bus counters must agree with the summary's canonical
    // accounting, which is derived independently.
    EXPECT_EQ(sim.bus().counter("migrations"), summary.migrations);
    long vf_steps = 0;
    for (const auto& [name, value] : sim.bus().counters()) {
        if (name.rfind("vf_steps_cluster", 0) == 0)
            vf_steps += value;
    }
    EXPECT_EQ(vf_steps, summary.vf_transitions);
}

TEST(Simulation, LifetimeGapsDoNotDiluteAnyMiss)
{
    // The task exists for 1 s of a 10 s run and is starved while
    // alive: the any-task miss must read ~100%, not ~10% (the dead
    // 9 s have no QoS to meet and must not enter the denominator).
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("t", 1, 900.0)};
    SimConfig cfg;
    cfg.duration = 10 * kSecond;
    cfg.lifetimes = {{2 * kSecond, 3 * kSecond}};
    Simulation sim(hw::tc2_chip(), specs,
                   std::make_unique<FixedLevelGovernor>(0), cfg);
    const auto summary = sim.run();
    EXPECT_GT(summary.any_below_miss, 0.9);
    EXPECT_GT(summary.any_outside_miss, 0.9);
}

} // namespace
} // namespace ppm::sim

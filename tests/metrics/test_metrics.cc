/** @file Unit tests for the QoS tracker and trace recorder. */

#include <sstream>

#include <gtest/gtest.h>

#include "metrics/qos.hh"
#include "metrics/recorder.hh"
#include "tests/test_util.hh"

namespace ppm::metrics {
namespace {

/** Feed a task a constant rate so its HRM reads `hr` hb/s. */
void
drive(workload::Task& task, double hr, SimTime until)
{
    const Cycles w =
        task.work_per_hb(hw::CoreClass::kLittle);
    for (SimTime t = 0; t < until; t += 10 * kMillisecond) {
        task.advance(t, 10 * kMillisecond, hr * 0.01 * w,
                     hw::CoreClass::kLittle);
    }
}

TEST(QosTracker, BelowAndOutsideChannels)
{
    // Target 20 hb/s, range [19, 21].
    workload::Task low(0, test::steady_spec("low", 1, 400.0));
    workload::Task ok(1, test::steady_spec("ok", 1, 400.0));
    workload::Task high(2, test::steady_spec("high", 1, 400.0));
    drive(low, 10.0, 2 * kSecond);
    drive(ok, 20.0, 2 * kSecond);
    drive(high, 40.0, 2 * kSecond);

    QosTracker qos(3);
    std::vector<workload::Task*> tasks{&low, &ok, &high};
    qos.sample(tasks, 2 * kSecond, kMillisecond);

    EXPECT_DOUBLE_EQ(qos.task_below_fraction(0), 1.0);
    EXPECT_DOUBLE_EQ(qos.task_below_fraction(1), 0.0);
    EXPECT_DOUBLE_EQ(qos.task_below_fraction(2), 0.0);
    EXPECT_DOUBLE_EQ(qos.task_outside_fraction(2), 1.0);
    EXPECT_DOUBLE_EQ(qos.any_below_fraction(), 1.0);
    EXPECT_DOUBLE_EQ(qos.any_outside_fraction(), 1.0);
}

TEST(QosTracker, WarmupExcluded)
{
    workload::Task low(0, test::steady_spec("low", 1, 400.0));
    QosTracker qos(1);
    std::vector<workload::Task*> tasks{&low};
    // Sampled before the warmup boundary: ignored entirely.
    qos.sample(tasks, kSecond, kMillisecond, /*warmup=*/2 * kSecond);
    EXPECT_DOUBLE_EQ(qos.any_below_fraction(), 0.0);
    // After warmup, a starved task counts.
    qos.sample(tasks, 3 * kSecond, kMillisecond, 2 * kSecond);
    EXPECT_DOUBLE_EQ(qos.any_below_fraction(), 1.0);
}

TEST(QosTracker, AnyChannelIsUnionNotSum)
{
    workload::Task a(0, test::steady_spec("a", 1, 400.0));
    workload::Task b(1, test::steady_spec("b", 1, 400.0));
    drive(a, 20.0, 2 * kSecond);  // In range.
    drive(b, 20.0, 2 * kSecond);
    QosTracker qos(2);
    std::vector<workload::Task*> tasks{&a, &b};
    qos.sample(tasks, 2 * kSecond, kMillisecond);
    EXPECT_DOUBLE_EQ(qos.any_below_fraction(), 0.0);
}

TEST(QosTracker, AllDeadIntervalDoesNotDiluteAnyChannels)
{
    // One task, alive for only part of the run; while it is dead the
    // any-task channels must accrue no time at all.  Before the fix
    // the dead interval entered the denominators as "QoS met", halving
    // the reported miss fraction.
    workload::Task starved(0, test::steady_spec("s", 1, 400.0));
    QosTracker qos(1);
    std::vector<workload::Task*> tasks{&starved};
    const std::vector<bool> dead{false};
    const std::vector<bool> alive{true};
    // 1 s with no live task, then 1 s starved (HRM reads 0 hb/s).
    qos.sample(tasks, kSecond, kSecond, 0, &dead);
    qos.sample(tasks, 2 * kSecond, kSecond, 0, &alive);
    EXPECT_DOUBLE_EQ(qos.any_below_fraction(), 1.0);
    EXPECT_DOUBLE_EQ(qos.any_outside_fraction(), 1.0);
    EXPECT_DOUBLE_EQ(qos.task_below_fraction(0), 1.0);
}

TEST(TraceRecorder, StoresSeries)
{
    TraceRecorder rec;
    rec.record("power", kSecond, 1.5);
    rec.record("power", 2 * kSecond, 2.5);
    rec.record("mhz", kSecond, 600.0);
    ASSERT_EQ(rec.series("power").size(), 2u);
    EXPECT_DOUBLE_EQ(rec.series("power")[1].value, 2.5);
    EXPECT_TRUE(rec.series("unknown").empty());
    EXPECT_EQ(rec.names().size(), 2u);
}

TEST(TraceRecorder, CsvHasHeaderAndRows)
{
    TraceRecorder rec;
    rec.record("a", kSecond, 1.0);
    rec.record("b", 2 * kSecond, 2.0);
    std::ostringstream os;
    rec.write_csv(os);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("time_s,a,b"), std::string::npos);
    EXPECT_NE(csv.find("1.000,1.000000,"), std::string::npos);
    EXPECT_NE(csv.find("2.000,,2.000000"), std::string::npos);
}

TEST(TraceRecorder, DuplicateTimestampsDoNotDesyncCsvCursor)
{
    // Two samples of "a" share one timestamp.  The cursor walk used to
    // emit the first and leave the cursor behind, silently dropping
    // every later "a" sample from the CSV; the last value per
    // (series, time) must win and later rows must still line up.
    TraceRecorder rec;
    rec.record("a", kSecond, 1.0);
    rec.record("a", kSecond, 2.0);
    rec.record("a", 2 * kSecond, 3.0);
    rec.record("b", 2 * kSecond, 4.0);
    std::ostringstream os;
    rec.write_csv(os);
    EXPECT_EQ(os.str(),
              "time_s,a,b\n"
              "1.000,2.000000,\n"
              "2.000,3.000000,4.000000\n");
}

TEST(TraceRecorder, MeanAfterWindow)
{
    TraceRecorder rec;
    rec.record("x", 0, 10.0);
    rec.record("x", kSecond, 20.0);
    rec.record("x", 2 * kSecond, 30.0);
    EXPECT_DOUBLE_EQ(rec.mean_after("x", kSecond), 25.0);
    EXPECT_DOUBLE_EQ(rec.mean_after("x", 0), 20.0);
    EXPECT_DOUBLE_EQ(rec.mean_after("x", 10 * kSecond), 0.0);
}

} // namespace
} // namespace ppm::metrics

/** @file Unit tests for the telemetry bus and its sinks. */

#include <sstream>

#include <gtest/gtest.h>

#include "metrics/recorder.hh"
#include "metrics/telemetry.hh"

namespace ppm::metrics {
namespace {

TEST(TraceBus, DisabledBusIsInert)
{
    TraceBus bus;
    EXPECT_FALSE(bus.enabled());
    // Every entry point must be a no-op with no sink attached.
    bus.sample("x", kSecond, 1.0);
    bus.event(TraceEvent("e", kSecond).set("a", 1.0));
    bus.count("migrations");
    bus.observe("power", 2.0);
    EXPECT_EQ(bus.counter("migrations"), 0);
    EXPECT_EQ(bus.histogram("power"), nullptr);
    EXPECT_TRUE(bus.counters().empty());
    EXPECT_TRUE(bus.histograms().empty());
}

TEST(TraceBus, CountersAndHistograms)
{
    TraceRecorder rec;
    TraceBus bus;
    bus.add_sink(std::make_unique<MemorySink>(&rec));
    ASSERT_TRUE(bus.enabled());
    bus.count("migrations");
    bus.count("migrations", 2);
    bus.count("vf_steps_cluster0");
    EXPECT_EQ(bus.counter("migrations"), 3);
    EXPECT_EQ(bus.counter("vf_steps_cluster0"), 1);
    EXPECT_EQ(bus.counter("never"), 0);

    bus.observe("power", 1.0);
    bus.observe("power", 3.0);
    const OnlineStats* h = bus.histogram("power");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_DOUBLE_EQ(h->mean(), 2.0);
    EXPECT_DOUBLE_EQ(h->min(), 1.0);
    EXPECT_DOUBLE_EQ(h->max(), 3.0);
}

TEST(TraceBus, FansOutToEverySink)
{
    TraceRecorder rec_a;
    TraceRecorder rec_b;
    TraceBus bus;
    bus.add_sink(std::make_unique<MemorySink>(&rec_a));
    MemorySink external(&rec_b);
    bus.add_sink(&external);
    bus.sample("s", kSecond, 5.0);
    ASSERT_EQ(rec_a.series("s").size(), 1u);
    ASSERT_EQ(rec_b.series("s").size(), 1u);
    EXPECT_DOUBLE_EQ(rec_a.series("s")[0].value, 5.0);
    EXPECT_DOUBLE_EQ(rec_b.series("s")[0].value, 5.0);
}

TEST(TraceSink, DefaultEventRenderingForwardsNumericFields)
{
    // A sink that does not override event() must still receive every
    // numeric field, as a sample named after the field; string fields
    // have no sample rendering and are dropped.
    TraceRecorder rec;
    TraceBus bus;
    bus.add_sink(std::make_unique<MemorySink>(&rec));
    TraceEvent e("market_round", 2 * kSecond);
    e.set("state", std::string("normal"));
    e.set("task0_bid", 0.5).set("core0_price", 0.01);
    bus.event(e);

    ASSERT_EQ(rec.series("task0_bid").size(), 1u);
    EXPECT_EQ(rec.series("task0_bid")[0].time, 2 * kSecond);
    EXPECT_DOUBLE_EQ(rec.series("task0_bid")[0].value, 0.5);
    ASSERT_EQ(rec.series("core0_price").size(), 1u);
    EXPECT_TRUE(rec.series("state").empty());
}

TEST(CsvStreamSink, GoldenOutput)
{
    std::ostringstream os;
    CsvStreamSink sink(os);
    sink.sample("power", kSecond, 1.5);
    sink.event(TraceEvent("epoch", 2 * kSecond).set("level", 3.0));
    sink.flush();
    EXPECT_EQ(os.str(),
              "time_s,series,value\n"
              "1.000,power,1.500000\n"
              "2.000,level,3.000000\n");
}

TEST(JsonlSink, GoldenOutput)
{
    std::ostringstream os;
    JsonlSink sink(os);
    sink.sample("power", kSecond, 1.5);
    TraceEvent e("market_round", 2 * kSecond);
    e.set("state", std::string("normal"));
    e.set("task0_bid", 0.25);
    sink.event(e);
    sink.flush();
    EXPECT_EQ(os.str(),
              "{\"type\":\"sample\",\"t_s\":1.000,\"series\":\"power\","
              "\"value\":1.5}\n"
              "{\"type\":\"market_round\",\"t_s\":2.000,"
              "\"state\":\"normal\",\"task0_bid\":0.25}\n");
}

TEST(JsonlSink, EscapesQuotesAndBackslashes)
{
    std::ostringstream os;
    JsonlSink sink(os);
    sink.sample("a\"b\\c", 0, 1.0);
    const std::string line = os.str();
    EXPECT_NE(line.find("\"a\\\"b\\\\c\""), std::string::npos);
}

TEST(TraceBus, InterningIsIdempotentAndStable)
{
    TraceBus bus;
    // Interning works with no sink attached (emitters resolve handles
    // at construction, before sinks exist).
    const SeriesId a = bus.intern("chip_power_w");
    const SeriesId b = bus.intern("cluster0_mhz");
    EXPECT_NE(a, b);
    EXPECT_EQ(bus.intern("chip_power_w"), a);
    EXPECT_EQ(bus.intern("cluster0_mhz"), b);
    EXPECT_EQ(bus.name_of(a), "chip_power_w");
    EXPECT_EQ(bus.name_of(b), "cluster0_mhz");
    // Ids survive sink attachment and flushes.
    TraceRecorder rec;
    bus.add_sink(std::make_unique<MemorySink>(&rec));
    bus.flush();
    EXPECT_EQ(bus.intern("chip_power_w"), a);
}

TEST(TraceBus, InternedAndStringPathsAreEquivalent)
{
    // The same records through the SeriesId overloads and the
    // string-keyed compatibility layer must be indistinguishable to
    // sinks and to the counter/histogram accessors.
    TraceRecorder rec_id;
    TraceBus bus_id;
    bus_id.add_sink(std::make_unique<MemorySink>(&rec_id));
    const SeriesId power = bus_id.intern("power");
    const SeriesId migs = bus_id.intern("migrations");
    bus_id.sample(power, kSecond, 1.5);
    bus_id.sample(power, 2 * kSecond, 2.5);
    bus_id.count(migs, 2);
    bus_id.observe(power, 4.0);

    TraceRecorder rec_str;
    TraceBus bus_str;
    bus_str.add_sink(std::make_unique<MemorySink>(&rec_str));
    bus_str.sample("power", kSecond, 1.5);
    bus_str.sample("power", 2 * kSecond, 2.5);
    bus_str.count("migrations", 2);
    bus_str.observe("power", 4.0);

    std::ostringstream a;
    std::ostringstream b;
    rec_id.write_csv(a);
    rec_str.write_csv(b);
    EXPECT_EQ(a.str(), b.str());
    EXPECT_EQ(bus_id.counters(), bus_str.counters());
    EXPECT_EQ(bus_id.counter(migs), bus_str.counter("migrations"));
    ASSERT_NE(bus_id.histogram(power), nullptr);
    ASSERT_NE(bus_str.histogram("power"), nullptr);
    EXPECT_EQ(bus_id.histogram(power)->count(),
              bus_str.histogram("power")->count());
    EXPECT_DOUBLE_EQ(bus_id.histogram(power)->mean(),
                     bus_str.histogram("power")->mean());
}

TEST(TraceBus, InternedCountersListOnlyTouchedNames)
{
    // An interned-but-never-recorded name must not appear in the
    // aggregate maps (it would pollute the end-of-run counters event).
    TraceBus bus;
    TraceRecorder rec;
    bus.add_sink(std::make_unique<MemorySink>(&rec));
    const SeriesId used = bus.intern("used");
    bus.intern("never_touched");
    bus.count(used, 5);
    const auto counters = bus.counters();
    ASSERT_EQ(counters.size(), 1u);
    EXPECT_EQ(counters.count("used"), 1u);
    EXPECT_EQ(counters.at("used"), 5);
    EXPECT_TRUE(bus.histograms().empty());
}

TEST(TraceBus, EventScratchReusesLayoutAndRebuildsOnChange)
{
    TraceRecorder rec;
    TraceBus bus;
    bus.add_sink(std::make_unique<MemorySink>(&rec));

    EventScratch scratch("epoch");
    scratch.begin(kSecond);
    scratch.num("a", 1.0).num("b", 2.0);
    bus.event(scratch.finish());

    // Same layout: values overwritten in place.
    scratch.begin(2 * kSecond);
    scratch.num("a", 3.0).num("b", 4.0);
    bus.event(scratch.finish());
    ASSERT_EQ(rec.series("a").size(), 2u);
    EXPECT_DOUBLE_EQ(rec.series("a")[1].value, 3.0);
    EXPECT_DOUBLE_EQ(rec.series("b")[1].value, 4.0);

    // Shrunk layout (e.g. a power-gated cluster dropping out): the
    // stale tail must not leak into the event.
    scratch.begin(3 * kSecond);
    scratch.num("a", 5.0);
    bus.event(scratch.finish());
    ASSERT_EQ(rec.series("a").size(), 3u);
    EXPECT_EQ(rec.series("b").size(), 2u);

    // Different key at a reused position: the tail rebuilds.
    scratch.begin(4 * kSecond);
    scratch.num("c", 6.0);
    bus.event(scratch.finish());
    ASSERT_EQ(rec.series("c").size(), 1u);
    EXPECT_DOUBLE_EQ(rec.series("c")[0].value, 6.0);
    EXPECT_EQ(rec.series("a").size(), 3u);
}

TEST(TraceBus, MemorySinkMatchesDirectRecording)
{
    // The classic trace path must be unchanged: routing through the
    // bus and MemorySink stores exactly what record() would.
    TraceRecorder direct;
    direct.record("x", kSecond, 1.0);
    direct.record("x", 2 * kSecond, 2.0);

    TraceRecorder via_bus;
    TraceBus bus;
    bus.add_sink(std::make_unique<MemorySink>(&via_bus));
    bus.sample("x", kSecond, 1.0);
    bus.sample("x", 2 * kSecond, 2.0);

    std::ostringstream a;
    std::ostringstream b;
    direct.write_csv(a);
    via_bus.write_csv(b);
    EXPECT_EQ(a.str(), b.str());
}


TEST(CsvStreamSink, LatchesFailureAndDropsFurtherOutput)
{
    std::ostringstream os;
    metrics::CsvStreamSink sink(os);
    sink.sample("chip_power", kSecond, 1.5);
    EXPECT_FALSE(sink.failed());
    const std::string good = os.str();

    // Break the stream: the next write latches failed() and every
    // later record is dropped without crashing.
    os.setstate(std::ios::failbit);
    sink.sample("chip_power", 2 * kSecond, 1.6);
    EXPECT_TRUE(sink.failed());
    sink.sample("chip_power", 3 * kSecond, 1.7);
    sink.flush();
    EXPECT_TRUE(sink.failed());
    os.clear();
    EXPECT_EQ(os.str().substr(0, good.size()), good);
}

TEST(JsonlSink, LatchesFailureAndDropsFurtherOutput)
{
    std::ostringstream os;
    metrics::JsonlSink sink(os);
    sink.sample("chip_power", kSecond, 1.5);
    EXPECT_FALSE(sink.failed());

    os.setstate(std::ios::badbit);
    sink.sample("chip_power", 2 * kSecond, 1.6);
    EXPECT_TRUE(sink.failed());
    metrics::TraceEvent e("market_round", 2 * kSecond);
    e.set("allowance", 3.0);
    sink.event(e);  // Dropped, no crash.
    sink.flush();
    EXPECT_TRUE(sink.failed());
}

TEST(TraceSink, DefaultFailedIsFalse)
{
    metrics::TraceRecorder rec;
    metrics::MemorySink sink(&rec);
    EXPECT_FALSE(sink.failed());
}

} // namespace
} // namespace ppm::metrics

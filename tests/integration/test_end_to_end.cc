/**
 * @file
 * Integration tests across the full stack: the three governors on
 * real workload sets, reproducing the qualitative claims of the
 * paper's evaluation (Section 5) at test-sized durations.
 */

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

namespace ppm {
namespace {

sim::RunSummary
run_policy(const std::string& policy, const std::string& set_name,
           Watts tdp, SimTime duration)
{
    const auto& set = workload::workload_set(set_name);
    const auto specs = workload::instantiate(set, 42, 1,
                                             duration + 60 * kSecond);
    std::unique_ptr<sim::Governor> gov;
    if (policy == "PPM") {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = tdp;
        cfg.market.w_th = tdp < 1e8 ? tdp - 0.6 : tdp - 0.5;
        for (const auto& member : set.members) {
            cfg.big_speedup.push_back(
                workload::profile(member.bench, member.input)
                    .big_speedup);
        }
        gov = std::make_unique<market::PpmGovernor>(cfg);
    } else if (policy == "HPM") {
        baselines::HpmConfig cfg;
        cfg.tdp = tdp;
        gov = std::make_unique<baselines::HpmGovernor>(cfg);
    } else {
        baselines::HlConfig cfg;
        cfg.tdp = tdp;
        gov = std::make_unique<baselines::HlGovernor>(cfg);
    }
    sim::SimConfig sim_cfg;
    sim_cfg.duration = duration;
    sim_cfg.tdp_for_metrics = tdp;
    sim::Simulation simulation(hw::tc2_chip(), specs, std::move(gov),
                               sim_cfg);
    return simulation.run();
}

constexpr SimTime kShortRun = 120 * kSecond;

TEST(EndToEnd, PpmMeetsQosOnLightSet)
{
    const auto s = run_policy("PPM", "l2", 1e9, kShortRun);
    EXPECT_LT(s.any_below_miss, 0.15);
}

TEST(EndToEnd, PpmMeetsQosOnHeavySet)
{
    const auto s = run_policy("PPM", "h2", 1e9, kShortRun);
    EXPECT_LT(s.any_below_miss, 0.15);
}

TEST(EndToEnd, HlWinsLightSetsButBurnsPower)
{
    const auto hl = run_policy("HL", "l1", 1e9, kShortRun);
    const auto ppm = run_policy("PPM", "l1", 1e9, kShortRun);
    EXPECT_LE(hl.any_below_miss, ppm.any_below_miss + 0.02);
    EXPECT_GT(hl.avg_power, 1.5 * ppm.avg_power);
}

TEST(EndToEnd, PpmBeatsHlOnHeavySets)
{
    const auto hl = run_policy("HL", "h2", 1e9, kShortRun);
    const auto ppm = run_policy("PPM", "h2", 1e9, kShortRun);
    EXPECT_LT(ppm.any_below_miss + 0.2, hl.any_below_miss);
}

TEST(EndToEnd, PpmBeatsHpmOnHeavySets)
{
    const auto hpm = run_policy("HPM", "h2", 1e9, kShortRun);
    const auto ppm = run_policy("PPM", "h2", 1e9, kShortRun);
    EXPECT_LT(ppm.any_below_miss, hpm.any_below_miss);
}

TEST(EndToEnd, AllPoliciesRespect4WTdpOnAverage)
{
    for (const char* policy : {"PPM", "HPM", "HL"}) {
        const auto s = run_policy(policy, "m2", 4.0, kShortRun);
        EXPECT_LT(s.avg_power, 4.2) << policy;
    }
}

TEST(EndToEnd, TdpCapDegradesQosGracefullyForPpm)
{
    // Under the 4 W cap PPM still beats HL (which loses its big
    // cluster entirely), cf. Figure 6.
    const auto ppm = run_policy("PPM", "m2", 4.0, kShortRun);
    const auto hl = run_policy("HL", "m2", 4.0, kShortRun);
    EXPECT_LT(ppm.any_below_miss + 0.2, hl.any_below_miss);
}

TEST(EndToEnd, DeterministicAcrossRuns)
{
    const auto a = run_policy("PPM", "m1", 1e9, 60 * kSecond);
    const auto b = run_policy("PPM", "m1", 1e9, 60 * kSecond);
    EXPECT_DOUBLE_EQ(a.any_below_miss, b.any_below_miss);
    EXPECT_DOUBLE_EQ(a.avg_power, b.avg_power);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.vf_transitions, b.vf_transitions);
}

TEST(EndToEnd, PpmScalesToOctaCoreChip)
{
    // The framework is platform-agnostic: a heavy set on the
    // 4+4 octa-core big.LITTLE is easily satisfiable and the
    // big cluster actually gets used.
    const auto& set = workload::workload_set("h3");
    const auto specs = workload::instantiate(set, 42, 1,
                                             200 * kSecond);
    market::PpmGovernorConfig cfg;
    for (const auto& member : set.members) {
        cfg.big_speedup.push_back(
            workload::profile(member.bench, member.input).big_speedup);
    }
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 120 * kSecond;
    sim::Simulation sim(hw::octa_big_little_chip(), specs,
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);
    const auto summary = sim.run();
    EXPECT_LT(summary.any_below_miss, 0.15);
    EXPECT_LT(summary.avg_power, 8.0);
}

TEST(EndToEnd, MigrationCountsStayReasonable)
{
    // PPM approves at most one movement per LBT invocation
    // (every 96 ms) -> hard upper bound, and in practice far fewer.
    const auto s = run_policy("PPM", "m3", 1e9, kShortRun);
    EXPECT_LT(s.migrations, 120 * 1000 / 96);
}

} // namespace
} // namespace ppm

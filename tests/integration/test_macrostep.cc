/**
 * @file
 * Equivalence tests for the event-horizon macro-stepping engine: for
 * any scenario, a run with SimConfig::macro_step enabled must produce
 * exactly the same RunSummary -- every field, at full precision -- as
 * the historical tick-by-tick loop, including the horizon edge cases
 * (events landing exactly on governor epochs, zero-length lifetimes,
 * arrivals at the end of the run) and trace-capped horizons.
 */

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

namespace ppm {
namespace {

std::string
fmt_exact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Full-precision rendering of every RunSummary field. */
std::string
fingerprint(const sim::RunSummary& s)
{
    std::ostringstream out;
    out << s.governor << '\n'
        << fmt_exact(s.any_below_miss) << '\n'
        << fmt_exact(s.any_outside_miss) << '\n'
        << fmt_exact(s.avg_power) << '\n'
        << fmt_exact(s.avg_power_post_warmup) << '\n'
        << fmt_exact(s.energy) << '\n'
        << s.migrations << '\n'
        << s.vf_transitions << '\n'
        << fmt_exact(s.over_tdp_fraction) << '\n'
        << fmt_exact(s.over_tdp_post_warmup) << '\n'
        << fmt_exact(s.peak_temp_c) << '\n'
        << s.thermal_cycles << '\n';
    for (const double v : s.task_below)
        out << fmt_exact(v) << '\n';
    for (const double v : s.task_outside)
        out << fmt_exact(v) << '\n';
    return out.str();
}

std::unique_ptr<sim::Governor>
make_policy(const std::string& policy)
{
    if (policy == "PPM") {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = 3.5;
        cfg.market.w_th = 2.9;
        return std::make_unique<market::PpmGovernor>(cfg);
    }
    if (policy == "HPM") {
        baselines::HpmConfig cfg;
        cfg.tdp = 3.5;
        return std::make_unique<baselines::HpmGovernor>(cfg);
    }
    baselines::HlConfig cfg;
    cfg.tdp = 3.5;
    return std::make_unique<baselines::HlGovernor>(cfg);
}

std::vector<workload::TaskSpec>
specs()
{
    return {
        test::steady_spec("encode", 2, 420.0, 1.7, 25.0),
        test::steady_spec("decode", 1, 250.0, 1.5, 20.0),
        test::steady_spec("background", 1, 120.0, 1.6, 10.0, 0.5),
    };
}

/** Run the scenario twice, macro-stepped and per-tick, and compare. */
void
expect_macro_matches_per_tick(const std::string& policy,
                              sim::SimConfig cfg)
{
    cfg.macro_step = true;
    sim::Simulation macro(hw::tc2_chip(), specs(), make_policy(policy),
                          cfg);
    cfg.macro_step = false;
    sim::Simulation tick(hw::tc2_chip(), specs(), make_policy(policy),
                         cfg);
    EXPECT_EQ(fingerprint(macro.run()), fingerprint(tick.run()))
        << policy << " diverged from the per-tick loop";
}

sim::SimConfig
base_config()
{
    sim::SimConfig cfg;
    cfg.duration = 6 * kSecond;
    cfg.warmup = kSecond;
    cfg.tdp_for_metrics = 3.5;
    return cfg;
}

TEST(Macrostep, MacroMatchesPerTickWithLifetimes)
{
    for (const char* policy : {"PPM", "HPM", "HL"}) {
        sim::SimConfig cfg = base_config();
        cfg.lifetimes.resize(3);
        cfg.lifetimes[1].arrival = 800 * kMillisecond;
        cfg.lifetimes[2].departure = 2 * kSecond;
        expect_macro_matches_per_tick(policy, cfg);
    }
}

TEST(Macrostep, SimultaneousEventsOnEpochBoundary)
{
    // A departure landing exactly on a 32 ms governor epoch while
    // another task arrives on the very same tick: the horizon must
    // close on the edge without double-applying either event.
    for (const char* policy : {"PPM", "HPM", "HL"}) {
        sim::SimConfig cfg = base_config();
        cfg.lifetimes.resize(3);
        cfg.lifetimes[1].departure = 2048 * kMillisecond;  // 64 epochs.
        cfg.lifetimes[2].arrival = 2048 * kMillisecond;
        expect_macro_matches_per_tick(policy, cfg);
    }
}

TEST(Macrostep, ZeroLengthLifetime)
{
    // arrival == departure: the task is never alive.  The horizon caps
    // for both edges collapse onto the same tick.
    sim::SimConfig cfg = base_config();
    cfg.lifetimes.resize(3);
    cfg.lifetimes[1].arrival = 1500 * kMillisecond;
    cfg.lifetimes[1].departure = 1500 * kMillisecond;
    expect_macro_matches_per_tick("PPM", cfg);
}

TEST(Macrostep, ArrivalExactlyAtDuration)
{
    // An arrival on the run's final edge never executes; the duration
    // cap must win without the lifetime cap underflowing the horizon.
    sim::SimConfig cfg = base_config();
    cfg.lifetimes.resize(3);
    cfg.lifetimes[1].arrival = cfg.duration;
    expect_macro_matches_per_tick("PPM", cfg);
}

TEST(Macrostep, TraceSinkCapsHorizonToSamplingGrid)
{
    // With the recorder attached and a 3 ms sampling period (not a
    // multiple of any governor epoch), every sample must be taken at
    // exactly the same tick -- and hold exactly the same values -- as
    // in the per-tick loop, byte for byte through the wide CSV.
    sim::SimConfig cfg = base_config();
    cfg.duration = 3 * kSecond;
    cfg.trace = true;
    cfg.trace_period = 3 * kMillisecond;

    cfg.macro_step = true;
    sim::Simulation macro(hw::tc2_chip(), specs(), make_policy("PPM"),
                          cfg);
    cfg.macro_step = false;
    sim::Simulation tick(hw::tc2_chip(), specs(), make_policy("PPM"),
                         cfg);
    const std::string macro_fp = fingerprint(macro.run());
    const std::string tick_fp = fingerprint(tick.run());
    EXPECT_EQ(macro_fp, tick_fp);

    std::ostringstream macro_csv;
    std::ostringstream tick_csv;
    macro.recorder().write_csv(macro_csv);
    tick.recorder().write_csv(tick_csv);
    EXPECT_EQ(macro_csv.str(), tick_csv.str())
        << "traced time series diverged under macro-stepping";
}

} // namespace
} // namespace ppm

/** @file Tests for the one-call experiment runner. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "experiment/experiment.hh"
#include "metrics/telemetry.hh"

namespace ppm::experiment {
namespace {

TEST(Experiment, RunsEveryPolicyByName)
{
    const auto& set = workload::workload_set("l2");
    for (const char* policy : {"PPM", "HPM", "HL"}) {
        RunParams params;
        params.policy = policy;
        params.duration = 20 * kSecond;
        const RunResult r = run_set(set, params);
        EXPECT_EQ(r.summary.governor, policy);
        EXPECT_GT(r.summary.avg_power, 0.1);
        EXPECT_GE(r.summary.any_below_miss, 0.0);
        EXPECT_LE(r.summary.any_below_miss, 1.0);
    }
}

TEST(Experiment, TraceFlagPopulatesRecorder)
{
    RunParams params;
    params.duration = 10 * kSecond;
    params.trace = true;
    const RunResult r = run_set(workload::workload_set("l1"), params);
    EXPECT_FALSE(r.traces.series("chip_power_w").empty());
}

TEST(Experiment, SeedAveragingIsMeanOfRuns)
{
    RunParams params;
    params.duration = 20 * kSecond;
    RunParams p1 = params;
    p1.seed = cell_seed(params.seed, 100, 0);
    const auto a = run_set(workload::workload_set("l3"), p1).summary;
    RunParams p2 = params;
    p2.seed = cell_seed(params.seed, 100, 1);
    const auto b = run_set(workload::workload_set("l3"), p2).summary;
    const auto avg = run_set_avg(workload::workload_set("l3"), params, 2);
    EXPECT_NEAR(avg.avg_power, (a.avg_power + b.avg_power) / 2.0, 1e-9);
    EXPECT_NEAR(avg.any_below_miss,
                (a.any_below_miss + b.any_below_miss) / 2.0, 1e-9);
    // Every field must reflect both seeds, not just seed 0.
    EXPECT_NEAR(avg.energy, (a.energy + b.energy) / 2.0, 1e-9);
    EXPECT_DOUBLE_EQ(avg.peak_temp_c,
                     std::max(a.peak_temp_c, b.peak_temp_c));
    EXPECT_EQ(avg.thermal_cycles,
              (a.thermal_cycles + b.thermal_cycles) / 2);
    EXPECT_EQ(avg.migrations, (a.migrations + b.migrations) / 2);
    EXPECT_EQ(avg.vf_transitions,
              (a.vf_transitions + b.vf_transitions) / 2);
    ASSERT_EQ(avg.task_below.size(), a.task_below.size());
    for (std::size_t t = 0; t < avg.task_below.size(); ++t) {
        EXPECT_NEAR(avg.task_below[t],
                    (a.task_below[t] + b.task_below[t]) / 2.0, 1e-9);
        EXPECT_NEAR(avg.task_outside[t],
                    (a.task_outside[t] + b.task_outside[t]) / 2.0, 1e-9);
    }
}

TEST(Experiment, ExtraSinkStreamsMarketTelemetry)
{
    // A caller-owned streaming sink attached via RunParams receives
    // the periodic samples AND the per-round market telemetry, plus
    // the final counters record.
    std::ostringstream os;
    metrics::JsonlSink sink(os);
    RunParams params;
    params.duration = 5 * kSecond;
    params.extra_sink = &sink;
    run_set(workload::workload_set("l1"), params);
    const std::string out = os.str();
    EXPECT_NE(out.find("\"type\":\"sample\""), std::string::npos);
    EXPECT_NE(out.find("\"type\":\"market_round\""), std::string::npos);
    EXPECT_NE(out.find("\"task0_bid\""), std::string::npos);
    EXPECT_NE(out.find("\"core0_price\""), std::string::npos);
    EXPECT_NE(out.find("\"cluster0_freeze\""), std::string::npos);
    EXPECT_NE(out.find("\"allowance\""), std::string::npos);
    EXPECT_NE(out.find("\"state\":"), std::string::npos);
    EXPECT_NE(out.find("\"type\":\"counters\""), std::string::npos);
}

TEST(Experiment, ExtraSinkDoesNotPerturbSummary)
{
    RunParams plain;
    plain.duration = 10 * kSecond;
    const auto a = run_set(workload::workload_set("l1"), plain).summary;

    std::ostringstream os;
    metrics::CsvStreamSink sink(os);
    RunParams traced = plain;
    traced.extra_sink = &sink;
    const auto b = run_set(workload::workload_set("l1"), traced).summary;

    EXPECT_EQ(a.any_below_miss, b.any_below_miss);
    EXPECT_EQ(a.any_outside_miss, b.any_outside_miss);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.avg_power, b.avg_power);
    EXPECT_EQ(a.avg_power_post_warmup, b.avg_power_post_warmup);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.vf_transitions, b.vf_transitions);
    EXPECT_EQ(a.over_tdp_fraction, b.over_tdp_fraction);
    EXPECT_EQ(a.over_tdp_post_warmup, b.over_tdp_post_warmup);
    EXPECT_EQ(a.peak_temp_c, b.peak_temp_c);
    EXPECT_FALSE(os.str().empty());
}

TEST(ExperimentDeath, ExtraSinkRejectedForMultiSeed)
{
    std::ostringstream os;
    metrics::CsvStreamSink sink(os);
    RunParams params;
    params.duration = kSecond;
    params.extra_sink = &sink;
    EXPECT_DEATH(run_set_avg(workload::workload_set("l1"), params, 2, 1),
                 "single-run");
}

TEST(Experiment, OnlineSpeedupFlagReachesGovernor)
{
    RunParams params;
    params.duration = 10 * kSecond;
    params.online_speedup = true;
    const RunResult r = run_set(workload::workload_set("m1"), params);
    EXPECT_EQ(r.summary.governor, "PPM");
}

TEST(ExperimentDeath, UnknownPolicyIsFatal)
{
    EXPECT_EXIT(make_governor("FOO", 4.0, {}),
                ::testing::ExitedWithCode(1), "unknown policy");
}

} // namespace
} // namespace ppm::experiment

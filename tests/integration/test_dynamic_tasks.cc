/**
 * @file
 * Tests for dynamic task arrival and departure ("tasks enter/exit
 * the system", Section 3.2.4): the scheduler's active flags, the
 * market's agent lifecycle, QoS lifetime masking, and the PPM
 * governor's end-to-end adaptation.
 */

#include <gtest/gtest.h>

#include "hw/platform.hh"
#include "market/market.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "tests/market/market_test_util.hh"
#include "tests/test_util.hh"

namespace ppm {
namespace {

using sim::SimConfig;

TEST(DynamicTasks, InactiveTaskReceivesNoCycles)
{
    hw::Chip chip = hw::tc2_chip();
    sched::Scheduler sched(&chip, {});
    workload::Task a(0, test::steady_spec("a", 1, 500.0));
    workload::Task b(1, test::steady_spec("b", 1, 500.0));
    sched.add_task(&a, 0);
    sched.add_task(&b, 0);
    sched.set_active(1, false);
    chip.cluster(0).set_level(7);
    for (SimTime t = 0; t < kSecond; t += kMillisecond)
        sched.tick(t, kMillisecond);
    EXPECT_DOUBLE_EQ(b.total_cycles(), 0.0);
    // The active co-runner absorbs the whole core.
    EXPECT_NEAR(a.total_cycles(), 1000.0 * kCyclesPerPuSecond, 1e6);
    EXPECT_TRUE(sched.tasks_on(0).size() == 1);
}

TEST(DynamicTasks, ReactivationRestoresScheduling)
{
    hw::Chip chip = hw::tc2_chip();
    sched::Scheduler sched(&chip, {});
    workload::Task a(0, test::steady_spec("a", 1, 500.0));
    sched.add_task(&a, 0);
    sched.set_active(0, false);
    sched.tick(0, kMillisecond);
    EXPECT_DOUBLE_EQ(a.total_cycles(), 0.0);
    sched.set_active(0, true);
    sched.tick(kMillisecond, kMillisecond);
    EXPECT_GT(a.total_cycles(), 0.0);
}

TEST(DynamicTasks, MarketExcludesDepartedAgent)
{
    hw::Chip chip = market::test::paper_chip();
    market::Market market(&chip, market::test::paper_config());
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 150.0);
    market.set_demand(1, 150.0);
    for (int i = 0; i < 5; ++i)
        market.round();
    const Pu before = market.task(0).supply;
    EXPECT_LT(before, 300.0);

    // Task 1 exits: its money leaves the market and task 0 gets the
    // whole core supply.
    market.set_task_active(1, false);
    for (int i = 0; i < 5; ++i)
        market.round();
    EXPECT_DOUBLE_EQ(market.task(1).supply, 0.0);
    EXPECT_DOUBLE_EQ(market.task(1).savings, 0.0);
    EXPECT_NEAR(market.task(0).supply, chip.cluster(0).supply(), 1e-6);
    EXPECT_EQ(market.tasks_on(0).size(), 1u);
}

TEST(DynamicTasks, ArrivalRejoinsBidding)
{
    hw::Chip chip = market::test::paper_chip();
    market::Market market(&chip, market::test::paper_config());
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 0);
    market.set_task_active(1, false);
    market.set_demand(0, 150.0);
    for (int i = 0; i < 5; ++i)
        market.round();

    market.set_task_active(1, true);
    market.set_demand(1, 150.0);
    for (int i = 0; i < 10; ++i)
        market.round();
    EXPECT_GT(market.task(1).supply, 100.0);
    // Allowance redistribution now covers both agents.
    EXPECT_NEAR(market.task(0).allowance, market.task(1).allowance,
                1e-9);
}

TEST(DynamicTasks, DepartureFreesAllowanceForSurvivors)
{
    hw::Chip chip = market::test::paper_chip();
    market::Market market(&chip, market::test::paper_config());
    market.add_task(0, 1, 0);
    market.add_task(1, 1, 0);
    market.set_demand(0, 100.0);
    market.set_demand(1, 100.0);
    market.round();
    const Money shared = market.task(0).allowance;
    market.set_task_active(1, false);
    market.round();
    EXPECT_NEAR(market.task(0).allowance, 2.0 * shared, 1e-9);
    EXPECT_DOUBLE_EQ(market.task(1).allowance, 0.0);
}

TEST(DynamicTasks, LifetimesDriveActivation)
{
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("always", 1, 300.0),
        test::steady_spec("visitor", 1, 300.0),
    };
    SimConfig cfg;
    cfg.duration = 30 * kSecond;
    cfg.lifetimes = {{0, SimConfig::Lifetime::kForever},
                     {10 * kSecond, 20 * kSecond}};
    market::PpmGovernorConfig gov_cfg;
    sim::Simulation sim(
        hw::tc2_chip(), specs,
        std::make_unique<market::PpmGovernor>(gov_cfg), cfg);
    // Run to t = 5 s: the visitor has not arrived.
    while (sim.now() < 5 * kSecond)
        sim.step();
    EXPECT_FALSE(sim.task_alive(1));
    EXPECT_FALSE(sim.scheduler().active(1));
    EXPECT_DOUBLE_EQ(sim.tasks()[1]->total_cycles(), 0.0);
    // t = 15 s: the visitor runs.
    while (sim.now() < 15 * kSecond)
        sim.step();
    EXPECT_TRUE(sim.scheduler().active(1));
    EXPECT_GT(sim.tasks()[1]->total_cycles(), 0.0);
    // t = 21 s: departed; capture progress and verify it freezes.
    while (sim.now() < 21 * kSecond)
        sim.step();
    EXPECT_FALSE(sim.scheduler().active(1));
    const Cycles at_departure = sim.tasks()[1]->total_cycles();
    while (sim.now() < 25 * kSecond)
        sim.step();
    EXPECT_DOUBLE_EQ(sim.tasks()[1]->total_cycles(), at_departure);
}

TEST(DynamicTasks, QosExcludesDepartedTasks)
{
    // The visitor never runs outside [10, 20] s; its absence must not
    // count as a miss.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("always", 1, 300.0),
        test::steady_spec("visitor", 1, 300.0),
    };
    SimConfig cfg;
    cfg.duration = 60 * kSecond;
    cfg.lifetimes = {{0, SimConfig::Lifetime::kForever},
                     {10 * kSecond, 20 * kSecond}};
    market::PpmGovernorConfig gov_cfg;
    sim::Simulation sim(
        hw::tc2_chip(), specs,
        std::make_unique<market::PpmGovernor>(gov_cfg), cfg);
    const auto summary = sim.run();
    // A feasible workload: nothing should be missing for long, and in
    // particular not the whole 50 s the visitor is absent.
    EXPECT_LT(summary.any_below_miss, 0.15);
    EXPECT_LT(summary.task_below[1], 0.5);
}

TEST(DynamicTasks, GovernorGatesClusterAfterDeparture)
{
    // A heavy visitor forces the big cluster on; after it departs,
    // the governor should migrate back / power the big cluster off.
    std::vector<workload::TaskSpec> specs{
        test::steady_spec("light", 1, 300.0),
        test::steady_spec("burst-a", 1, 900.0),
        test::steady_spec("burst-b", 1, 900.0),
        test::steady_spec("burst-c", 1, 900.0),
    };
    SimConfig cfg;
    cfg.duration = 120 * kSecond;
    cfg.lifetimes = {
        {0, SimConfig::Lifetime::kForever},
        {10 * kSecond, 40 * kSecond},
        {10 * kSecond, 40 * kSecond},
        {10 * kSecond, 40 * kSecond},
    };
    market::PpmGovernorConfig gov_cfg;
    sim::Simulation sim(
        hw::tc2_chip(), specs,
        std::make_unique<market::PpmGovernor>(gov_cfg), cfg);
    sim.run();
    // Long after the burst, the lone 300 PU task does not justify the
    // big cluster.
    EXPECT_FALSE(sim.chip().cluster(1).powered());
    EXPECT_LE(sim.chip().cluster(0).mhz(), 700.0);
}

} // namespace
} // namespace ppm

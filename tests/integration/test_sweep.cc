/** @file Tests for the deterministic parallel sweep runner. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "experiment/sweep.hh"

namespace ppm::experiment {
namespace {

sim::RunSummary
make_summary(double scale)
{
    sim::RunSummary s;
    s.governor = "PPM";
    s.any_below_miss = 0.1 * scale;
    s.any_outside_miss = 0.2 * scale;
    s.avg_power = 1.0 * scale;
    s.avg_power_post_warmup = 1.5 * scale;
    s.energy = 100.0 * scale;
    s.migrations = static_cast<long>(10 * scale);
    s.vf_transitions = static_cast<long>(20 * scale);
    s.over_tdp_fraction = 0.05 * scale;
    s.peak_temp_c = 50.0 * scale;
    s.thermal_cycles = static_cast<long>(4 * scale);
    s.task_below = {0.1 * scale, 0.2 * scale};
    s.task_outside = {0.3 * scale, 0.4 * scale};
    return s;
}

TEST(AggregateSummaries, MeansEveryScalarField)
{
    const auto avg =
        aggregate_summaries({make_summary(1.0), make_summary(3.0)});
    EXPECT_EQ(avg.governor, "PPM");
    EXPECT_NEAR(avg.any_below_miss, 0.2, 1e-12);
    EXPECT_NEAR(avg.any_outside_miss, 0.4, 1e-12);
    EXPECT_NEAR(avg.avg_power, 2.0, 1e-12);
    EXPECT_NEAR(avg.avg_power_post_warmup, 3.0, 1e-12);
    EXPECT_NEAR(avg.energy, 200.0, 1e-12);
    EXPECT_NEAR(avg.over_tdp_fraction, 0.1, 1e-12);
}

TEST(AggregateSummaries, PeakTempIsMaxNotSeedZero)
{
    // Seed 0 is the coolest run: a seed-0-only "aggregate" would
    // report 40 C and hide the 80 C excursion of seed 2.
    auto a = make_summary(1.0);
    auto b = make_summary(1.0);
    auto c = make_summary(1.0);
    a.peak_temp_c = 40.0;
    b.peak_temp_c = 55.0;
    c.peak_temp_c = 80.0;
    EXPECT_DOUBLE_EQ(aggregate_summaries({a, b, c}).peak_temp_c, 80.0);
}

TEST(AggregateSummaries, CountersAreSumThenDivide)
{
    auto a = make_summary(1.0);
    auto b = make_summary(1.0);
    a.thermal_cycles = 7;
    b.thermal_cycles = 2;
    a.migrations = 11;
    b.migrations = 4;
    a.vf_transitions = 9;
    b.vf_transitions = 2;
    const auto avg = aggregate_summaries({a, b});
    // (7 + 2) / 2 truncated, not a.thermal_cycles.
    EXPECT_EQ(avg.thermal_cycles, 4);
    EXPECT_EQ(avg.migrations, 7);
    EXPECT_EQ(avg.vf_transitions, 5);
}

TEST(AggregateSummaries, TaskVectorsAreElementwiseMeans)
{
    auto a = make_summary(1.0);
    auto b = make_summary(1.0);
    a.task_below = {0.0, 1.0, 0.5};
    b.task_below = {1.0, 0.0, 0.5};
    a.task_outside = {0.2, 0.4, 0.6};
    b.task_outside = {0.4, 0.8, 1.0};
    const auto avg = aggregate_summaries({a, b});
    ASSERT_EQ(avg.task_below.size(), 3u);
    EXPECT_NEAR(avg.task_below[0], 0.5, 1e-12);
    EXPECT_NEAR(avg.task_below[1], 0.5, 1e-12);
    EXPECT_NEAR(avg.task_below[2], 0.5, 1e-12);
    ASSERT_EQ(avg.task_outside.size(), 3u);
    EXPECT_NEAR(avg.task_outside[0], 0.3, 1e-12);
    EXPECT_NEAR(avg.task_outside[1], 0.6, 1e-12);
    EXPECT_NEAR(avg.task_outside[2], 0.8, 1e-12);
}

TEST(AggregateSummaries, SingleSummaryIsIdentity)
{
    const auto s = make_summary(2.0);
    const auto avg = aggregate_summaries({s});
    EXPECT_DOUBLE_EQ(avg.avg_power, s.avg_power);
    EXPECT_EQ(avg.thermal_cycles, s.thermal_cycles);
    EXPECT_EQ(avg.task_below, s.task_below);
}

TEST(RunCells, PreservesInputOrder)
{
    std::vector<std::function<int()>> cells;
    for (int i = 0; i < 20; ++i) {
        cells.push_back([i]() {
            // Early cells sleep longest so completion order inverts
            // submission order; the reduction must not care.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20 - i));
            return i;
        });
    }
    const auto parallel = run_cells<int>(cells, 4);
    const auto serial = run_cells<int>(cells, 1);
    ASSERT_EQ(parallel.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(parallel[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(parallel, serial);
}

TEST(RunCells, CellExceptionPropagates)
{
    std::vector<std::function<int()>> cells{
        []() { return 1; },
        []() -> int { throw std::runtime_error("boom"); }};
    EXPECT_THROW(run_cells<int>(cells, 4), std::runtime_error);
    EXPECT_THROW(run_cells<int>(cells, 1), std::runtime_error);
}

void
expect_identical(const sim::RunSummary& a, const sim::RunSummary& b)
{
    // Bitwise equality: the determinism guarantee is bit-identical
    // output for any --jobs value, not merely "close".
    EXPECT_EQ(a.governor, b.governor);
    EXPECT_EQ(a.any_below_miss, b.any_below_miss);
    EXPECT_EQ(a.any_outside_miss, b.any_outside_miss);
    EXPECT_EQ(a.avg_power, b.avg_power);
    EXPECT_EQ(a.avg_power_post_warmup, b.avg_power_post_warmup);
    EXPECT_EQ(a.energy, b.energy);
    EXPECT_EQ(a.migrations, b.migrations);
    EXPECT_EQ(a.vf_transitions, b.vf_transitions);
    EXPECT_EQ(a.over_tdp_fraction, b.over_tdp_fraction);
    EXPECT_EQ(a.peak_temp_c, b.peak_temp_c);
    EXPECT_EQ(a.thermal_cycles, b.thermal_cycles);
    EXPECT_EQ(a.task_below, b.task_below);
    EXPECT_EQ(a.task_outside, b.task_outside);
}

TEST(Sweep, JobCountDoesNotChangeResults)
{
    SweepConfig config;
    config.sets = {workload::workload_set("l1"),
                   workload::workload_set("m1")};
    config.policies = {"PPM", "HL"};
    config.n_seeds = 2;
    config.base.duration = 10 * kSecond;

    config.jobs = 1;
    const SweepResult serial = run_sweep(config);
    config.jobs = 4;
    const SweepResult parallel = run_sweep(config);

    ASSERT_EQ(serial.n_sets(), 2);
    ASSERT_EQ(parallel.n_sets(), 2);
    for (int s = 0; s < 2; ++s) {
        for (int p = 0; p < 2; ++p) {
            for (int k = 0; k < 2; ++k)
                expect_identical(serial.summary(s, p, k),
                                 parallel.summary(s, p, k));
            expect_identical(serial.averaged(s, p),
                             parallel.averaged(s, p));
        }
    }
}

TEST(Sweep, SeedAxisUsesCellSeedDerivation)
{
    SweepConfig config;
    config.sets = {workload::workload_set("l1")};
    config.policies = {"PPM"};
    config.n_seeds = 2;
    config.base.duration = 10 * kSecond;
    config.jobs = 1;
    const SweepResult r = run_sweep(config);

    RunParams p2 = config.base;
    p2.seed = cell_seed(config.base.seed, config.seed_stride, 1);
    const auto direct = run_set(config.sets[0], p2).summary;
    expect_identical(r.summary(0, 0, 1), direct);
}

TEST(Sweep, CellSeedsNeverAlias)
{
    // The historical base.seed + i*stride derivation aliased cells
    // when stride*i wrapped (e.g. stride = 2^63 put every even index
    // on one stream) and collapsed the whole axis at stride 0.  The
    // mix64 derivation must keep every index distinct for any
    // stride >= 1 and any base, including wrap-heavy ones.
    const std::uint64_t strides[] = {1, 100, 1ULL << 63,
                                     0xffffffffffffffffULL};
    const std::uint64_t bases[] = {0, 42, 0xffffffffffffff00ULL};
    for (const std::uint64_t stride : strides) {
        for (const std::uint64_t base : bases) {
            std::set<std::uint64_t> seen;
            for (int i = 0; i < 1000; ++i)
                seen.insert(cell_seed(base, stride, i));
            EXPECT_EQ(seen.size(), 1000u)
                << "aliased seeds at base=" << base
                << " stride=" << stride;
        }
    }
    // The old failure mode, pinned: stride 2^63 aliases indices 0 and
    // 2 under the additive rule...
    const std::uint64_t s = 1ULL << 63;
    EXPECT_EQ(42 + 0 * s, 42 + 2 * s);
    // ...but not under the mix64 derivation.
    EXPECT_NE(cell_seed(42, s, 0), cell_seed(42, s, 2));
}

TEST(SweepDeath, ZeroSeedStrideIsRejected)
{
    SweepConfig config;
    config.sets = {workload::workload_set("l1")};
    config.policies = {"PPM"};
    config.n_seeds = 2;
    config.seed_stride = 0;
    config.base.duration = kSecond;
    config.jobs = 1;
    EXPECT_DEATH(run_sweep(config), "seed stride");
}

TEST(Sweep, TracesAreByteIdenticalForAnyJobCount)
{
    // Each cell owns its TraceBus, sinks and recorder, so the full
    // trace stream -- not just the summary -- must be byte-identical
    // whether the cells run serially or on four workers.
    auto make_cell = [](std::uint64_t seed) {
        return [seed]() {
            RunParams p;
            p.duration = 5 * kSecond;
            p.trace = true;
            p.seed = seed;
            const RunResult r =
                run_set(workload::workload_set("l1"), p);
            std::ostringstream os;
            r.traces.write_csv(os);
            return os.str();
        };
    };
    std::vector<std::function<std::string()>> cells;
    for (int k = 0; k < 4; ++k)
        cells.push_back(make_cell(42 + 100 * static_cast<std::uint64_t>(k)));
    const auto serial = run_cells<std::string>(cells, 1);
    const auto parallel = run_cells<std::string>(cells, 4);
    ASSERT_EQ(serial.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
        EXPECT_FALSE(serial[k].empty());
        EXPECT_EQ(serial[k], parallel[k]) << "cell " << k;
    }
}

TEST(Sweep, RunSetAvgMatchesAnyJobCount)
{
    RunParams params;
    params.duration = 10 * kSecond;
    const auto& set = workload::workload_set("l2");
    expect_identical(run_set_avg(set, params, 2, 1),
                     run_set_avg(set, params, 2, 4));
}

} // namespace
} // namespace ppm::experiment

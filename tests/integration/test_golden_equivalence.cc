/**
 * @file
 * Golden equivalence tests for the tick hot path: a fixed scenario per
 * governor (PPM, HPM, HL) with lifetimes and tracing enabled must keep
 * its RunSummary fields and its streamed trace output byte-identical
 * across hot-path rewrites (buffer reuse, series interning, scratch
 * hoisting must never change a single emitted byte).
 *
 * The golden files under tests/golden/ record every summary field at
 * full precision plus the length and FNV-1a-64 fingerprint of three
 * byte streams: the in-memory recorder's wide CSV, the streaming
 * narrow CSV, and the JSONL event stream.  Equal fingerprint + equal
 * length is the byte-identity check; a short verbatim head of each
 * stream is kept in the golden for debuggability.
 *
 * Regenerate (only when an *intentional* output change lands) with:
 *   PPM_REGEN_GOLDEN=1 ./build/tests/test_integration \
 *       --gtest_filter='GoldenEquivalence.*'
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "metrics/telemetry.hh"
#include "sim/simulation.hh"
#include "tests/test_util.hh"

#ifndef PPM_GOLDEN_DIR
#define PPM_GOLDEN_DIR "tests/golden"
#endif

namespace ppm {
namespace {

/** FNV-1a 64-bit: a stable fingerprint for byte-identity checks. */
std::uint64_t
fnv1a(const std::string& bytes)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (const unsigned char c : bytes) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Full-precision, locale-independent rendering of one double. */
std::string
fmt_exact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::unique_ptr<sim::Governor>
make_policy(const std::string& policy, bool incremental = true)
{
    if (policy == "PPM") {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = 3.5;
        cfg.market.w_th = 2.9;
        cfg.market.incremental = incremental;
        return std::make_unique<market::PpmGovernor>(cfg);
    }
    if (policy == "HPM") {
        baselines::HpmConfig cfg;
        cfg.tdp = 3.5;
        return std::make_unique<baselines::HpmGovernor>(cfg);
    }
    baselines::HlConfig cfg;
    cfg.tdp = 3.5;
    return std::make_unique<baselines::HlGovernor>(cfg);
}

/**
 * One fixed scenario: three steady tasks on the TC2-like chip, one
 * arriving late and one departing early (lifetimes exercised), the
 * in-memory recorder plus both streaming sinks attached, a TDP low
 * enough that the governors actually throttle.
 */
std::string
run_scenario(const std::string& policy, bool incremental = true)
{
    std::vector<workload::TaskSpec> specs = {
        test::steady_spec("encode", 2, 420.0, 1.7, 25.0),
        test::steady_spec("decode", 1, 250.0, 1.5, 20.0),
        test::steady_spec("background", 1, 120.0, 1.6, 10.0, 0.5),
    };
    sim::SimConfig cfg;
    cfg.duration = 6 * kSecond;
    cfg.warmup = kSecond;
    cfg.trace = true;
    cfg.trace_period = 500 * kMillisecond;
    cfg.tdp_for_metrics = 3.5;
    cfg.lifetimes.resize(specs.size());
    cfg.lifetimes[1].arrival = 800 * kMillisecond;
    cfg.lifetimes[2].departure = 2 * kSecond;

    sim::Simulation sim(hw::tc2_chip(), specs,
                        make_policy(policy, incremental), cfg);
    std::ostringstream csv_stream;
    std::ostringstream jsonl_stream;
    metrics::CsvStreamSink csv_sink(csv_stream);
    metrics::JsonlSink jsonl_sink(jsonl_stream);
    sim.bus().add_sink(&csv_sink);
    sim.bus().add_sink(&jsonl_sink);
    const sim::RunSummary s = sim.run();

    std::ostringstream wide_csv;
    sim.recorder().write_csv(wide_csv);

    std::ostringstream out;
    out << "governor " << s.governor << '\n'
        << "any_below_miss " << fmt_exact(s.any_below_miss) << '\n'
        << "any_outside_miss " << fmt_exact(s.any_outside_miss) << '\n'
        << "avg_power " << fmt_exact(s.avg_power) << '\n'
        << "avg_power_post_warmup "
        << fmt_exact(s.avg_power_post_warmup) << '\n'
        << "energy " << fmt_exact(s.energy) << '\n'
        << "migrations " << s.migrations << '\n'
        << "vf_transitions " << s.vf_transitions << '\n'
        << "over_tdp_fraction " << fmt_exact(s.over_tdp_fraction) << '\n'
        << "over_tdp_post_warmup "
        << fmt_exact(s.over_tdp_post_warmup) << '\n'
        << "peak_temp_c " << fmt_exact(s.peak_temp_c) << '\n'
        << "thermal_cycles " << s.thermal_cycles << '\n';
    for (std::size_t t = 0; t < s.task_below.size(); ++t) {
        out << "task" << t << "_below " << fmt_exact(s.task_below[t])
            << '\n'
            << "task" << t << "_outside "
            << fmt_exact(s.task_outside[t]) << '\n';
    }

    const auto stream_block = [&out](const char* name,
                                     const std::string& bytes) {
        char fp[32];
        std::snprintf(fp, sizeof(fp), "%016" PRIx64, fnv1a(bytes));
        out << name << "_bytes " << bytes.size() << '\n'
            << name << "_fnv1a64 " << fp << '\n';
        // A short verbatim head keeps mismatches debuggable.
        std::istringstream is(bytes);
        std::string line;
        for (int i = 0; i < 4 && std::getline(is, line); ++i)
            out << name << "_head " << line << '\n';
    };
    stream_block("wide_csv", wide_csv.str());
    stream_block("stream_csv", csv_stream.str());
    stream_block("jsonl", jsonl_stream.str());
    return out.str();
}

std::string
golden_path(const std::string& policy)
{
    return std::string(PPM_GOLDEN_DIR) + "/hotpath_" + policy + ".txt";
}

void
check_against_golden(const std::string& policy)
{
    const std::string actual = run_scenario(policy);
    const std::string path = golden_path(policy);
    if (std::getenv("PPM_REGEN_GOLDEN") != nullptr) {
        std::ofstream f(path, std::ios::binary);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << actual;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream f(path, std::ios::binary);
    ASSERT_TRUE(f.good())
        << "missing golden file " << path
        << " (regenerate with PPM_REGEN_GOLDEN=1)";
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_EQ(buf.str(), actual)
        << "hot-path output diverged from the committed golden -- the "
           "rewrite changed observable bytes (summary, trace CSV or "
           "JSONL)";
}

TEST(GoldenEquivalence, PpmSummaryAndTracesAreByteIdentical)
{
    check_against_golden("PPM");
}

/**
 * The incremental clearing engine's headline promise, checked against
 * the committed fixture: the exact bytes the golden records with the
 * active-set engine on must also come out with it off (full
 * recompute every round).  The golden file is generated by the
 * on-mode test above, so a regen run skips here.
 */
TEST(GoldenEquivalence, PpmGoldenHoldsWithIncrementalityOff)
{
    if (std::getenv("PPM_REGEN_GOLDEN") != nullptr)
        GTEST_SKIP() << "regen runs write the golden in on-mode only";
    const std::string actual = run_scenario("PPM", false);
    std::ifstream f(golden_path("PPM"), std::ios::binary);
    ASSERT_TRUE(f.good()) << "missing golden file "
                          << golden_path("PPM");
    std::stringstream buf;
    buf << f.rdbuf();
    EXPECT_EQ(buf.str(), actual)
        << "full-recompute run diverged from the incremental golden "
           "-- a skip rule replayed a stale value";
}

TEST(GoldenEquivalence, HpmSummaryAndTracesAreByteIdentical)
{
    check_against_golden("HPM");
}

TEST(GoldenEquivalence, HlSummaryAndTracesAreByteIdentical)
{
    check_against_golden("HL");
}

/**
 * Determinism guard for the fixture itself: two runs of the same
 * scenario in one process must already agree byte for byte, otherwise
 * the golden comparison would flake for reasons unrelated to the
 * rewrite under test.
 */
TEST(GoldenEquivalence, ScenarioIsDeterministicInProcess)
{
    EXPECT_EQ(run_scenario("PPM"), run_scenario("PPM"));
}

} // namespace
} // namespace ppm

/**
 * @file
 * Crash-consistent snapshot/restore tests: the archive's primitive
 * round-trips and corruption taxonomy, and the hard product
 * guarantee -- a run killed at an arbitrary simulated time, saved,
 * restored into a freshly constructed simulation (or fleet) and run
 * to completion is byte-identical to the uninterrupted run: summary
 * fingerprints, streamed telemetry (concatenated across the kill)
 * and traced time series, for every policy, both stepping engines,
 * clearing pools, and chip-fault-injected fleets.
 */

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "metrics/telemetry.hh"
#include "sim/simulation.hh"
#include "snapshot/archive.hh"
#include "tests/test_util.hh"

namespace ppm {
namespace {

std::string
fmt_exact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

/** Full-precision textual fingerprint of a RunSummary. */
std::string
fingerprint(const sim::RunSummary& s)
{
    std::ostringstream out;
    out << s.governor << ' ' << fmt_exact(s.any_below_miss) << ' '
        << fmt_exact(s.any_outside_miss) << ' '
        << fmt_exact(s.avg_power) << ' '
        << fmt_exact(s.avg_power_post_warmup) << ' '
        << fmt_exact(s.energy) << ' ' << s.migrations << ' '
        << s.vf_transitions << ' ' << fmt_exact(s.over_tdp_fraction)
        << ' ' << fmt_exact(s.over_tdp_post_warmup) << ' '
        << fmt_exact(s.peak_temp_c) << ' ' << s.thermal_cycles << ' '
        << s.market_rounds << ' ' << s.market_tasks_skipped << ' '
        << s.market_rounds_early_exit;
    for (const double v : s.task_below)
        out << ' ' << fmt_exact(v);
    for (const double v : s.task_outside)
        out << ' ' << fmt_exact(v);
    return out.str();
}

// ---------------------------------------------------------------
// Archive primitives.

TEST(Archive, PrimitivesRoundTrip)
{
    snap::Writer w;
    w.u8(0xab);
    w.b(true);
    w.b(false);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.i32(-7);
    w.f64(3.141592653589793);
    w.f64(-0.0);
    w.f64(std::numeric_limits<double>::quiet_NaN());
    w.str("hello snapshot");
    w.f64v({1.5, -2.5, 0.0});
    w.longv({-1, 0, 1LL << 40});
    w.i32v({3, -4});
    w.u8v({0, 255, 17});
    w.boolv({true, false, true});

    snap::Reader r;
    ASSERT_EQ(r.open(w.finalize()), snap::LoadStatus::kOk);
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_TRUE(r.b());
    EXPECT_FALSE(r.b());
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.i32(), -7);
    EXPECT_EQ(r.f64(), 3.141592653589793);
    const double neg_zero = r.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_TRUE(std::isnan(r.f64()));
    EXPECT_EQ(r.str(), "hello snapshot");
    std::vector<double> dv;
    r.f64v(&dv);
    EXPECT_EQ(dv, (std::vector<double>{1.5, -2.5, 0.0}));
    std::vector<long> lv;
    r.longv(&lv);
    EXPECT_EQ(lv, (std::vector<long>{-1, 0, 1LL << 40}));
    std::vector<int> iv;
    r.i32v(&iv);
    EXPECT_EQ(iv, (std::vector<int>{3, -4}));
    std::vector<unsigned char> uv;
    r.u8v(&uv);
    EXPECT_EQ(uv, (std::vector<unsigned char>{0, 255, 17}));
    std::vector<bool> bv;
    r.boolv(&bv);
    EXPECT_EQ(bv, (std::vector<bool>{true, false, true}));
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(Archive, CorruptionTaxonomy)
{
    snap::Writer w;
    w.u64(123456789);
    w.f64(2.5);
    const std::string good = w.finalize();

    snap::Reader r;
    ASSERT_EQ(r.open(good), snap::LoadStatus::kOk);

    // Truncated: shorter than the header, and shorter than the
    // payload the header promises.
    EXPECT_EQ(r.open(good.substr(0, 10)), snap::LoadStatus::kTruncated);
    EXPECT_EQ(r.open(good.substr(0, good.size() - 1)),
              snap::LoadStatus::kTruncated);
    EXPECT_EQ(r.open(""), snap::LoadStatus::kTruncated);
    // Trailing garbage is a size mismatch, not silently ignored.
    EXPECT_EQ(r.open(good + "x"), snap::LoadStatus::kTruncated);

    // Bad magic: not a snapshot at all.
    std::string bad_magic = good;
    bad_magic[0] = 'X';
    EXPECT_EQ(r.open(bad_magic), snap::LoadStatus::kBadMagic);

    // Version mismatch.
    std::string bad_version = good;
    bad_version[8] = static_cast<char>(snap::kFormatVersion + 1);
    EXPECT_EQ(r.open(bad_version), snap::LoadStatus::kBadVersion);

    // Flipped payload bit: right shape, wrong checksum.
    std::string bad_payload = good;
    bad_payload[good.size() - 1] =
        static_cast<char>(bad_payload[good.size() - 1] ^ 0x01);
    EXPECT_EQ(r.open(bad_payload), snap::LoadStatus::kBadChecksum);

    EXPECT_STREQ(snap::load_status_name(snap::LoadStatus::kOk), "ok");
    EXPECT_STREQ(snap::load_status_name(snap::LoadStatus::kTruncated),
                 "truncated");
    EXPECT_STREQ(snap::load_status_name(snap::LoadStatus::kBadMagic),
                 "bad magic");
    EXPECT_STREQ(snap::load_status_name(snap::LoadStatus::kBadVersion),
                 "version mismatch");
    EXPECT_STREQ(
        snap::load_status_name(snap::LoadStatus::kBadChecksum),
        "checksum mismatch");
}

TEST(Archive, ReadFileMissingIsTruncated)
{
    snap::Reader r;
    EXPECT_EQ(snap::read_file("/nonexistent/p.ppmsnap", &r),
              snap::LoadStatus::kTruncated);
}

// ---------------------------------------------------------------
// Simulation kill-and-resume equivalence.

std::unique_ptr<sim::Governor>
make_policy(const std::string& policy, bool online = false)
{
    if (policy == "PPM") {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = 3.5;
        cfg.market.w_th = 2.9;
        cfg.big_speedup = {1.7, 1.5, 1.6};
        cfg.online_speedup = online;
        return std::make_unique<market::PpmGovernor>(cfg);
    }
    if (policy == "HPM") {
        baselines::HpmConfig cfg;
        cfg.tdp = 3.5;
        return std::make_unique<baselines::HpmGovernor>(cfg);
    }
    baselines::HlConfig cfg;
    cfg.tdp = 3.5;
    return std::make_unique<baselines::HlGovernor>(cfg);
}

std::vector<workload::TaskSpec>
specs()
{
    return {
        test::steady_spec("encode", 2, 420.0, 1.7, 25.0),
        test::steady_spec("decode", 1, 250.0, 1.5, 20.0),
        test::steady_spec("background", 1, 120.0, 1.6, 10.0, 0.5),
    };
}

sim::SimConfig
base_config(bool macro_step)
{
    sim::SimConfig cfg;
    cfg.duration = 5 * kSecond;
    cfg.warmup = kSecond;
    cfg.tdp_for_metrics = 3.5;
    cfg.macro_step = macro_step;
    return cfg;
}

/**
 * Run the scenario whole, then split at `at` through a real archive
 * (header, checksum, trailing-byte check), and compare everything.
 */
void
expect_split_matches(const std::string& policy, sim::SimConfig cfg,
                     SimTime at, bool online = false)
{
    std::ostringstream full_os;
    metrics::JsonlSink full_sink(full_os);
    sim::Simulation full(hw::tc2_chip(), specs(),
                         make_policy(policy, online), cfg);
    full.bus().add_sink(&full_sink);
    const sim::RunSummary full_summary = full.run();

    snap::Writer w;
    std::ostringstream os1;
    {
        metrics::JsonlSink sink(os1);
        sim::Simulation first(hw::tc2_chip(), specs(),
                              make_policy(policy, online), cfg);
        first.bus().add_sink(&sink);
        first.run_until(at);
        first.save(w);
    }
    std::ostringstream os2;
    metrics::JsonlSink sink2(os2);
    sim::Simulation second(hw::tc2_chip(), specs(),
                           make_policy(policy, online), cfg);
    second.bus().add_sink(&sink2);
    snap::Reader r;
    ASSERT_EQ(r.open(w.finalize()), snap::LoadStatus::kOk);
    second.load(r);
    ASSERT_EQ(r.remaining(), 0u);
    second.run_until(cfg.duration);
    const sim::RunSummary split_summary = second.finish();

    EXPECT_EQ(fingerprint(split_summary), fingerprint(full_summary))
        << policy << " summary diverged across a snapshot at " << at;
    EXPECT_EQ(os1.str() + os2.str(), full_os.str())
        << policy << " telemetry diverged across a snapshot at " << at;
}

TEST(SnapshotRestore, EveryPolicyBothEnginesBitExact)
{
    for (const char* policy : {"PPM", "HPM", "HL"}) {
        for (const bool macro : {true, false}) {
            // Mid-run, not on a governor epoch (1.3 s), and just
            // after warmup closes.
            expect_split_matches(policy, base_config(macro),
                                 1300 * kMillisecond);
            expect_split_matches(policy, base_config(macro),
                                 1001 * kMillisecond);
        }
    }
}

TEST(SnapshotRestore, LifetimesAndPlacementSurviveRestore)
{
    for (const char* policy : {"PPM", "HPM", "HL"}) {
        sim::SimConfig cfg = base_config(true);
        cfg.lifetimes.resize(3);
        cfg.lifetimes[1].arrival = 800 * kMillisecond;
        cfg.lifetimes[2].departure = 2 * kSecond;
        cfg.placement = {0, 3, 4};
        // Snapshot lands between the arrival and the departure, so
        // the restored process replays a partially admitted economy.
        expect_split_matches(policy, cfg, 1500 * kMillisecond);
    }
}

TEST(SnapshotRestore, OnlineEstimatorStateSurvivesRestore)
{
    expect_split_matches("PPM", base_config(true),
                         2200 * kMillisecond, /*online=*/true);
}

TEST(SnapshotRestore, SaveIsDeterministic)
{
    // Two saves of the same trajectory produce the same bytes --
    // crash-consistency depends on the payload being a pure function
    // of simulation state.
    auto save_at = [](SimTime at) {
        sim::Simulation s(hw::tc2_chip(), specs(), make_policy("PPM"),
                          base_config(true));
        s.run_until(at);
        snap::Writer w;
        s.save(w);
        return w.finalize();
    };
    EXPECT_EQ(save_at(1300 * kMillisecond),
              save_at(1300 * kMillisecond));
    EXPECT_NE(save_at(1300 * kMillisecond),
              save_at(1400 * kMillisecond));
}

TEST(SnapshotRestore, ChainedSnapshotsCompose)
{
    // Save at t1, restore, run to t2, save again, restore again --
    // periodic checkpointing (--snapshot-every) composes.
    const sim::SimConfig cfg = base_config(true);
    std::ostringstream full_os;
    metrics::JsonlSink full_sink(full_os);
    sim::Simulation full(hw::tc2_chip(), specs(), make_policy("PPM"),
                         cfg);
    full.bus().add_sink(&full_sink);
    const sim::RunSummary full_summary = full.run();

    snap::Writer w1;
    std::ostringstream os1;
    {
        metrics::JsonlSink sink(os1);
        sim::Simulation s(hw::tc2_chip(), specs(), make_policy("PPM"),
                          cfg);
        s.bus().add_sink(&sink);
        s.run_until(1200 * kMillisecond);
        s.save(w1);
    }
    snap::Writer w2;
    std::ostringstream os2;
    {
        metrics::JsonlSink sink(os2);
        sim::Simulation s(hw::tc2_chip(), specs(), make_policy("PPM"),
                          cfg);
        s.bus().add_sink(&sink);
        snap::Reader r;
        ASSERT_EQ(r.open(w1.finalize()), snap::LoadStatus::kOk);
        s.load(r);
        s.run_until(3100 * kMillisecond);
        s.save(w2);
    }
    std::ostringstream os3;
    metrics::JsonlSink sink3(os3);
    sim::Simulation s(hw::tc2_chip(), specs(), make_policy("PPM"),
                      cfg);
    s.bus().add_sink(&sink3);
    snap::Reader r;
    ASSERT_EQ(r.open(w2.finalize()), snap::LoadStatus::kOk);
    s.load(r);
    s.run_until(cfg.duration);
    const sim::RunSummary chained = s.finish();

    EXPECT_EQ(fingerprint(chained), fingerprint(full_summary));
    EXPECT_EQ(os1.str() + os2.str() + os3.str(), full_os.str());
}

// ---------------------------------------------------------------
// Fleet kill-and-resume equivalence (chip faults included).

fleet::FleetConfig
fleet_config(int chips, bool chip_faults)
{
    fleet::FleetConfig fc;
    fc.chips = chips;
    fc.epoch = 96 * kMillisecond;
    fc.supervisor.total_budget = 3.5 * chips;
    fc.sim = base_config(true);
    fc.make_chip = [](int) { return hw::tc2_chip(); };
    fc.make_governor =
        [](int, Watts budget) -> std::unique_ptr<sim::Governor> {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = budget;
        cfg.market.w_th = market::derive_w_th(budget);
        cfg.big_speedup = {1.7, 1.5, 1.6};
        return std::make_unique<market::PpmGovernor>(cfg);
    };
    for (int c = 0; c < chips; ++c) {
        fleet::ChipWorkload wl;
        wl.specs = specs();
        fc.workloads.push_back(std::move(wl));
    }
    if (chip_faults) {
        fault::FaultSpec spec;
        spec.seed = 99;
        spec.chip_fail = true;
        spec.chip_recover = true;
        spec.chip_rate_per_min = 30.0;
        fc.fleet_faults = fault::FleetFaultPlan::compile(
            spec, chips, fc.sim.duration, fc.epoch);
    }
    return fc;
}

void
expect_fleet_split_matches(int chips, bool chip_faults, SimTime at)
{
    std::ostringstream full_fleet_os, full_chip_os;
    metrics::JsonlSink full_fleet_sink(full_fleet_os);
    metrics::JsonlSink full_chip_sink(full_chip_os);
    fleet::Fleet full(fleet_config(chips, chip_faults));
    full.bus().add_sink(&full_fleet_sink);
    full.shard(0).bus().add_sink(&full_chip_sink);
    const fleet::FleetResult full_res = full.run();

    snap::Writer w;
    std::ostringstream fleet_os1, chip_os1;
    {
        metrics::JsonlSink fleet_sink(fleet_os1);
        metrics::JsonlSink chip_sink(chip_os1);
        fleet::Fleet first(fleet_config(chips, chip_faults));
        first.bus().add_sink(&fleet_sink);
        first.shard(0).bus().add_sink(&chip_sink);
        while (first.now() < at && first.run_epoch()) {
        }
        first.save(w);
    }
    std::ostringstream fleet_os2, chip_os2;
    metrics::JsonlSink fleet_sink2(fleet_os2);
    metrics::JsonlSink chip_sink2(chip_os2);
    fleet::Fleet second(fleet_config(chips, chip_faults));
    second.bus().add_sink(&fleet_sink2);
    second.shard(0).bus().add_sink(&chip_sink2);
    snap::Reader r;
    ASSERT_EQ(r.open(w.finalize()), snap::LoadStatus::kOk);
    second.load(r);
    ASSERT_EQ(r.remaining(), 0u);
    const fleet::FleetResult split_res = second.run();

    EXPECT_EQ(fingerprint(split_res.combined),
              fingerprint(full_res.combined));
    EXPECT_EQ(fleet_os1.str() + fleet_os2.str(), full_fleet_os.str());
    EXPECT_EQ(chip_os1.str() + chip_os2.str(), full_chip_os.str());
    // Fault accounting is cumulative across the kill.
    EXPECT_EQ(split_res.chip_failures, full_res.chip_failures);
    EXPECT_EQ(split_res.evacuations, full_res.evacuations);
    EXPECT_EQ(split_res.evac_landed, full_res.evac_landed);
    EXPECT_EQ(split_res.evac_pending_end, full_res.evac_pending_end);
    EXPECT_EQ(split_res.final_health, full_res.final_health);
}

TEST(SnapshotRestore, FleetBitExactAcrossBarrierSnapshot)
{
    expect_fleet_split_matches(4, false, 1300 * kMillisecond);
}

TEST(SnapshotRestore, FaultedFleetBitExactAcrossSnapshot)
{
    // Snapshot lands mid-run of a failing/recovering fleet: health,
    // rosters and the pending-evacuation queue all travel.
    expect_fleet_split_matches(4, true, 1300 * kMillisecond);
    expect_fleet_split_matches(4, true, 2500 * kMillisecond);
}

TEST(SnapshotRestore, SimulationLoadRejectsWrongShape)
{
    // A snapshot from a different task count dies loudly, not
    // silently: the admission log replay asserts on the spec table.
    sim::Simulation donor(hw::tc2_chip(), specs(), make_policy("PPM"),
                          base_config(true));
    donor.run_until(kSecond);
    snap::Writer w;
    donor.save(w);

    std::vector<workload::TaskSpec> fewer = specs();
    fewer.pop_back();
    market::PpmGovernorConfig cfg;
    cfg.market.w_tdp = 3.5;
    cfg.market.w_th = 2.9;
    cfg.big_speedup = {1.7, 1.5};
    sim::Simulation other(hw::tc2_chip(), fewer,
                          std::make_unique<market::PpmGovernor>(cfg),
                          base_config(true));
    snap::Reader r;
    ASSERT_EQ(r.open(w.finalize()), snap::LoadStatus::kOk);
    EXPECT_DEATH(other.load(r), "");
}

} // namespace
} // namespace ppm

#!/usr/bin/env bash
# Build and run a differential fuzz sweep, emitting BENCH_fuzz.json at
# the repo root: N seeded scenarios checked across every equivalence
# the engine promises (policy x macro-vs-tick, clearing jobs=1 vs N,
# budget conservation, fault counters), with throughput recorded so
# fuzzing capacity regressions are visible in review.
#
# Usage: scripts/fuzz_sweep.sh [--count N] [--jobs J] [--seed S]
#                              [--out FILE]
#   --count N  scenarios to check (default 2000; ~1 min at 8 cores)
#   --jobs J   worker threads (default 0 = all hardware threads)
#   --seed S   campaign base seed (default 1; any failing scenario is
#              reproducible from (seed, index) alone)
#   --out F    write the sweep JSON to F (default BENCH_fuzz.json)
#
# Exit code mirrors ppm_fuzz: 0 clean, 1 violations (each shrunk to a
# minimized fixture printed with its one-line replay command).
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT=2000
JOBS=0
SEED=1
OUT=BENCH_fuzz.json
while [[ $# -gt 0 ]]; do
    case "$1" in
      --count) COUNT="$2"; shift 2 ;;
      --jobs) JOBS="$2"; shift 2 ;;
      --seed) SEED="$2"; shift 2 ;;
      --out) OUT="$2"; shift 2 ;;
      *) echo "usage: $0 [--count N] [--jobs J] [--seed S] [--out FILE]" >&2
         exit 2 ;;
    esac
done

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build --target ppm_fuzz > /dev/null

STATUS=0
./build/tools/ppm_fuzz --count "$COUNT" --jobs "$JOBS" --seed "$SEED" \
    --json-out "$OUT" --fixture-dir tests/fuzz/fixtures || STATUS=$?

# The JSON must parse and agree with the exit status.
python3 - "$OUT" "$STATUS" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
status = int(sys.argv[2])
assert doc["count"] > 0, "empty sweep"
assert (doc["violations"] == 0) == (status == 0), \
    f"exit status {status} disagrees with {doc['violations']} violations"
print(f"{sys.argv[1]}: {doc['count']} scenarios, "
      f"{doc['violations']} violating, "
      f"{doc['scenarios_per_sec']:.1f} scenarios/s, JSON ok")
EOF

exit "$STATUS"

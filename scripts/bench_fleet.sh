#!/usr/bin/env bash
# Build and run the fleet-federation scalability benchmark, emitting
# BENCH_fleet.json at the repo root: one supervisor epoch (parallel
# shard macro-stepping + batched cross-shard settlement) per
# (chips, tasks/chip) shape swept over shard-pool worker counts.  The
# flagship shape clears 64 chips x 160 tasks = 10,240 tasks per
# epoch.  Every jobs value produces byte-identical fleet state, so
# the curve is a pure wall-clock scaling measurement of the
# federation layer.  Two fault-tolerance shapes ride along:
# BM_ChipFailureEvacuation (epoch cost under perpetual chip
# failure/recovery churn) and BM_SnapshotRoundTrip (crash-consistent
# save + validate + restore of the whole federation).
#
# Usage: scripts/bench_fleet.sh [--quick] [--out FILE]
#   --quick  one tiny min-time repetition (CI smoke: proves the driver
#            runs and the JSON parses; timings are noisy)
#   --out F  write the benchmark JSON to F (default BENCH_fleet.json)
#
# Speedup numbers are only meaningful when the host has at least as
# many hardware threads as the largest jobs value (8); the script
# warns on stderr AND into the JSON when it does not.
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME=0.5
OUT=BENCH_fleet.json
while [[ $# -gt 0 ]]; do
    case "$1" in
      --quick) MIN_TIME=0.01; shift ;;
      --out) OUT="$2"; shift 2 ;;
      *) echo "usage: $0 [--quick] [--out FILE]" >&2; exit 2 ;;
    esac
done

NCPU=$(nproc 2>/dev/null || echo 1)
if [[ "$NCPU" -lt 8 ]]; then
    echo "WARNING: host has $NCPU hardware thread(s); jobs > $NCPU" \
         "rows oversubscribe the machine and understate the speedup." >&2
fi

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build --target bench_fleet_federation > /dev/null

./build/bench/bench_fleet_federation \
    --benchmark_filter='BM_FleetEpoch|BM_ChipFailureEvacuation|BM_SnapshotRoundTrip' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

# The JSON must parse; record the host hardware-thread count into it
# (plus a loud warning key when the sweep oversubscribes the host)
# and print the jobs-sweep speedup table relative to jobs=1.
python3 - "$OUT" "$NCPU" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
ncpu = int(sys.argv[2])
runs = [b for b in doc["benchmarks"]
        if b["name"].startswith("BM_FleetEpoch/")]
assert runs, "no BM_FleetEpoch entries in " + path
print(f"{path}: {len(runs)} entries, JSON ok "
      f"(host hardware threads: {ncpu})")

def parse(name):
    # BM_FleetEpoch/chips/tasks_per_chip/jobs
    chips, tpc, jobs = (int(p) for p in name.split("/")[1:4])
    return (chips, tpc), jobs

shapes = {}
max_jobs = 0
for b in runs:
    shape, jobs = parse(b["name"])
    shapes.setdefault(shape, {})[jobs] = b["real_time"]
    max_jobs = max(max_jobs, jobs)

doc["host_hardware_threads"] = ncpu
if max_jobs > ncpu:
    doc["warning"] = (
        f"OVERSUBSCRIBED: sweep uses up to {max_jobs} workers but the "
        f"host has only {ncpu} hardware thread(s); jobs > {ncpu} rows "
        "measure scheduler contention, not federation speedup.")
    print("WARNING:", doc["warning"], file=sys.stderr)
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

for shape in sorted(shapes):
    base = shapes[shape].get(1)
    if base is None:
        continue
    chips, tpc = shape
    cells = []
    for jobs in sorted(shapes[shape]):
        ms = shapes[shape][jobs]
        cells.append(f"jobs={jobs}: {ms:8.3f} ms ({base / ms:4.2f}x)")
    print(f"chips={chips} tasks/chip={tpc} "
          f"({chips * tpc} tasks/epoch): " + "  ".join(cells))
EOF

#!/usr/bin/env bash
# Build and run the clearing-engine benchmarks, emitting
# BENCH_clearing.json at the repo root: one market round per (V, C, T)
# shape swept over clearing worker counts, plus the incremental
# active-set sweep (dirty fraction x engine on/off).  Every job count
# and either engine mode produce bit-identical market state, so both
# curves are pure wall-clock measurements.
#
# Usage: scripts/bench_clearing.sh [--quick] [--out FILE]
#   --quick  one tiny min-time repetition (CI smoke: proves the driver
#            runs and the JSON parses; timings are noisy)
#   --out F  write the benchmark JSON to F (default BENCH_clearing.json)
#
# Speedup numbers are only meaningful when the host has at least as
# many hardware threads as the largest jobs value (8); the script
# warns when it does not.
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME=0.5
OUT=BENCH_clearing.json
while [[ $# -gt 0 ]]; do
    case "$1" in
      --quick) MIN_TIME=0.01; shift ;;
      --out) OUT="$2"; shift 2 ;;
      *) echo "usage: $0 [--quick] [--out FILE]" >&2; exit 2 ;;
    esac
done

NCPU=$(nproc 2>/dev/null || echo 1)
if [[ "$NCPU" -lt 8 ]]; then
    echo "WARNING: host has $NCPU hardware thread(s); jobs > $NCPU" \
         "rows oversubscribe the machine and understate the speedup." >&2
fi

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build --target bench_table7_scalability > /dev/null

./build/bench/bench_table7_scalability \
    --benchmark_filter='BM_ParallelClearingRound|BM_IncrementalClearingRound' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

# The JSON must parse; print the jobs-sweep speedup table relative to
# jobs=1 for each shape so the curve is visible at a glance.  The
# host's hardware-thread count is recorded INTO the JSON -- and when
# the sweep's largest jobs value oversubscribes the host, a loud
# warning key rides along so a tracked BENCH file can never silently
# pass off oversubscribed timings as a real scaling curve.
python3 - "$OUT" "$NCPU" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
ncpu = int(sys.argv[2])
runs = [b for b in doc["benchmarks"]
        if b["name"].startswith("BM_ParallelClearingRound/")]
assert runs, "no BM_ParallelClearingRound entries in " + path
inc_runs = [b for b in doc["benchmarks"]
            if b["name"].startswith("BM_IncrementalClearingRound/")]
assert inc_runs, "no BM_IncrementalClearingRound entries in " + path
print(f"{path}: {len(runs)} entries, JSON ok "
      f"(host hardware threads: {ncpu})")

def parse(name):
    # BM_ParallelClearingRound/V/C/T/jobs
    parts = name.split("/")[1:5]
    v, c, t, jobs = (int(p) for p in parts)
    return (v, c, t), jobs

shapes = {}
max_jobs = 0
for b in runs:
    shape, jobs = parse(b["name"])
    shapes.setdefault(shape, {})[jobs] = b["real_time"]
    max_jobs = max(max_jobs, jobs)

doc["host_hardware_threads"] = ncpu
if max_jobs > ncpu:
    doc["warning"] = (
        f"OVERSUBSCRIBED: sweep uses up to {max_jobs} workers but the "
        f"host has only {ncpu} hardware thread(s); jobs > {ncpu} rows "
        "measure scheduler contention, not clearing-engine speedup.")
    print("WARNING:", doc["warning"], file=sys.stderr)
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")

for shape in sorted(shapes):
    base = shapes[shape].get(1)
    if base is None:
        continue
    v, c, t = shape
    cells = []
    for jobs in sorted(shapes[shape]):
        ms = shapes[shape][jobs]
        cells.append(f"jobs={jobs}: {ms:8.3f} ms ({base / ms:4.2f}x)")
    print(f"V={v} C={c} T={t} ({v * c * t} tasks): " + "  ".join(cells))

# Incremental sweep: full-recompute vs active-set time per (shape,
# dirty%), with the measured task skip rate alongside -- the speedup
# must come with a matching skip rate or it is measurement noise.
inc = {}
for b in inc_runs:
    # BM_IncrementalClearingRound/V/C/T/dirty/incremental
    v, c, t, dirty, mode = (int(p) for p in b["name"].split("/")[1:6])
    inc.setdefault(((v, c, t), dirty), {})[mode] = b
print("incremental active-set clearing (full -> incremental):")
for (shape, dirty) in sorted(inc):
    pair = inc[(shape, dirty)]
    if 0 not in pair or 1 not in pair:
        continue
    full_ms = pair[0]["real_time"]
    inc_ms = pair[1]["real_time"]
    skip = pair[1].get("task_skip_rate", 0.0)
    v, c, t = shape
    print(f"V={v} C={c} T={t} ({v * c * t} tasks) dirty={dirty:3d}%: "
          f"{full_ms:8.3f} ms -> {inc_ms:8.3f} ms "
          f"({full_ms / inc_ms:5.2f}x, task skip rate {skip:.1%})")
EOF

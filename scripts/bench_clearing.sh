#!/usr/bin/env bash
# Build and run the parallel-clearing scalability benchmark, emitting
# BENCH_clearing.json at the repo root: one market round per (V, C, T)
# shape swept over clearing worker counts.  Every job count produces
# bit-identical market state, so the curve is a pure wall-clock
# scaling measurement of the clearing engine.
#
# Usage: scripts/bench_clearing.sh [--quick] [--out FILE]
#   --quick  one tiny min-time repetition (CI smoke: proves the driver
#            runs and the JSON parses; timings are noisy)
#   --out F  write the benchmark JSON to F (default BENCH_clearing.json)
#
# Speedup numbers are only meaningful when the host has at least as
# many hardware threads as the largest jobs value (8); the script
# warns when it does not.
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME=0.5
OUT=BENCH_clearing.json
while [[ $# -gt 0 ]]; do
    case "$1" in
      --quick) MIN_TIME=0.01; shift ;;
      --out) OUT="$2"; shift 2 ;;
      *) echo "usage: $0 [--quick] [--out FILE]" >&2; exit 2 ;;
    esac
done

NCPU=$(nproc 2>/dev/null || echo 1)
if [[ "$NCPU" -lt 8 ]]; then
    echo "WARNING: host has $NCPU hardware thread(s); jobs > $NCPU" \
         "rows oversubscribe the machine and understate the speedup." >&2
fi

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build --target bench_table7_scalability > /dev/null

./build/bench/bench_table7_scalability \
    --benchmark_filter='BM_ParallelClearingRound' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

# The JSON must parse; print the jobs-sweep speedup table relative to
# jobs=1 for each shape so the curve is visible at a glance.
python3 - "$OUT" "$NCPU" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
ncpu = int(sys.argv[2])
runs = [b for b in doc["benchmarks"]
        if b["name"].startswith("BM_ParallelClearingRound/")]
assert runs, "no BM_ParallelClearingRound entries in " + sys.argv[1]
print(f"{sys.argv[1]}: {len(runs)} entries, JSON ok "
      f"(host hardware threads: {ncpu})")

def parse(name):
    # BM_ParallelClearingRound/V/C/T/jobs
    parts = name.split("/")[1:5]
    v, c, t, jobs = (int(p) for p in parts)
    return (v, c, t), jobs

shapes = {}
for b in runs:
    shape, jobs = parse(b["name"])
    shapes.setdefault(shape, {})[jobs] = b["real_time"]

for shape in sorted(shapes):
    base = shapes[shape].get(1)
    if base is None:
        continue
    v, c, t = shape
    cells = []
    for jobs in sorted(shapes[shape]):
        ms = shapes[shape][jobs]
        cells.append(f"jobs={jobs}: {ms:8.3f} ms ({base / ms:4.2f}x)")
    print(f"V={v} C={c} T={t} ({v * c * t} tasks): " + "  ".join(cells))
EOF

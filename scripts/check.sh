#!/usr/bin/env bash
# Full verification: configure, build (warnings are errors), test, and
# smoke-run every benchmark and example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPPM_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Fast smoke pass over the benches (full runs are minutes; see
# EXPERIMENTS.md for the real regeneration command).
./build/bench/bench_table1_2_3_dynamics > /dev/null
./build/bench/bench_table4_hrm > /dev/null
./build/bench/bench_table6_intensity > /dev/null
./build/bench/bench_table7_scalability \
    --benchmark_min_time=0.01 --benchmark_filter='/2/4/8$' > /dev/null

# Perf smoke: one quick repetition of the hot-path benchmark, with the
# JSON output validated (the full run regenerates BENCH_hotpath.json).
./scripts/bench_hotpath.sh --quick --out /tmp/ppm_bench_hotpath.json \
    > /dev/null
rm -f /tmp/ppm_bench_hotpath.json

./build/examples/quickstart l1 5 > /dev/null
./build/examples/mixed_criticality 5 > /dev/null
./build/examples/thermal_budget l1 > /dev/null || true
./build/examples/custom_platform 5 > /dev/null
./build/examples/app_lifecycle 5 > /dev/null
(cd /tmp && "$OLDPWD"/build/examples/trace_replay > /dev/null)
./build/tools/ppm_run --set l1 --seconds 5 > /dev/null

# Streaming telemetry round-trip: both sink formats through trace_stats.
./build/tools/ppm_run --set l1 --seconds 5 \
    --trace-format=jsonl --trace-out=/tmp/ppm_check.jsonl > /dev/null
./build/tools/trace_stats /tmp/ppm_check.jsonl > /dev/null
./build/tools/ppm_run --set l1 --seconds 5 \
    --trace-out=/tmp/ppm_check.csv > /dev/null
./build/tools/trace_stats /tmp/ppm_check.csv > /dev/null
rm -f /tmp/ppm_check.jsonl /tmp/ppm_check.csv

# Macro-stepping equivalence smoke: the event-horizon engine must be
# byte-identical to the historical per-tick loop on a real workload,
# both clean and under deterministic fault injection (fault edges are
# horizon bounds, so the same spec must replay bit-exactly).
./build/tools/ppm_run --set l1 --seconds 8 --csv > /tmp/ppm_macro.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --per-tick \
    > /tmp/ppm_tick.csv
cmp /tmp/ppm_macro.csv /tmp/ppm_tick.csv
for policy in PPM HPM HL; do
    ./build/tools/ppm_run --policy "$policy" --set l1 --seconds 8 \
        --faults all,seed=7,rate=30 --csv > /tmp/ppm_macro.csv
    ./build/tools/ppm_run --policy "$policy" --set l1 --seconds 8 \
        --faults all,seed=7,rate=30 --csv --per-tick > /tmp/ppm_tick.csv
    cmp /tmp/ppm_macro.csv /tmp/ppm_tick.csv
done
rm -f /tmp/ppm_macro.csv /tmp/ppm_tick.csv

# Fault-resilience smoke: the fault bench must run end to end.
./build/bench/bench_fault_resilience > /dev/null

# Race check: the parallel sweep is only deterministic if cells share
# no mutable state, so run the threaded tests under ThreadSanitizer.
# The trace/telemetry tests ride along: each cell must own its bus
# and sinks, so traced parallel runs are the racy case to sanitize.
cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPPM_TSAN=ON
cmake --build build-tsan --target test_common test_integration \
    test_metrics
./build-tsan/tests/test_common \
    --gtest_filter='ThreadPool.*' > /dev/null
./build-tsan/tests/test_metrics \
    --gtest_filter='TraceBus.*:TraceSink.*:TraceRecorder.*' > /dev/null
./build-tsan/tests/test_integration \
    --gtest_filter='Sweep.*:RunCells.*:Macrostep.*' > /dev/null

# Memory/UB check: the fault layer mutates hardware state (offlining
# cores, deferring DVFS) on irregular schedules, so run its tests and
# the hardened-market tests under ASan+UBSan.
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPPM_ASAN=ON
cmake --build build-asan --target test_fault test_market test_hw
./build-asan/tests/test_fault > /dev/null
./build-asan/tests/test_market \
    --gtest_filter='Watchdog.*:OnlineEstimator.*' > /dev/null
./build-asan/tests/test_hw \
    --gtest_filter='VfTable.*:PowerModel*.*' > /dev/null

echo "all checks passed"

#!/usr/bin/env bash
# Full verification: configure, build (warnings are errors), test, and
# smoke-run every benchmark and example.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo -DPPM_WERROR=ON
cmake --build build
ctest --test-dir build --output-on-failure -j "$(nproc)"

# Fast smoke pass over the benches (full runs are minutes; see
# EXPERIMENTS.md for the real regeneration command).
./build/bench/bench_table1_2_3_dynamics > /dev/null
./build/bench/bench_table4_hrm > /dev/null
./build/bench/bench_table6_intensity > /dev/null
./build/bench/bench_table7_scalability \
    --benchmark_min_time=0.01 --benchmark_filter='/2/4/8$' > /dev/null

# Perf smoke: one quick repetition of the hot-path benchmark, with the
# JSON output validated (the full run regenerates BENCH_hotpath.json).
# Both outputs go to /tmp: without --macro-out the quick pass would
# overwrite the tracked BENCH_macrostep.json with noisy numbers.
./scripts/bench_hotpath.sh --quick --out /tmp/ppm_bench_hotpath.json \
    --macro-out /tmp/ppm_bench_macrostep.json > /dev/null
rm -f /tmp/ppm_bench_hotpath.json /tmp/ppm_bench_macrostep.json

./build/examples/quickstart l1 5 > /dev/null
./build/examples/mixed_criticality 5 > /dev/null
./build/examples/thermal_budget l1 > /dev/null || true
./build/examples/custom_platform 5 > /dev/null
./build/examples/app_lifecycle 5 > /dev/null
(cd /tmp && "$OLDPWD"/build/examples/trace_replay > /dev/null)
./build/tools/ppm_run --set l1 --seconds 5 > /dev/null

# Streaming telemetry round-trip: both sink formats through trace_stats.
./build/tools/ppm_run --set l1 --seconds 5 \
    --trace-format=jsonl --trace-out=/tmp/ppm_check.jsonl > /dev/null
./build/tools/trace_stats /tmp/ppm_check.jsonl > /dev/null
./build/tools/ppm_run --set l1 --seconds 5 \
    --trace-out=/tmp/ppm_check.csv > /dev/null
./build/tools/trace_stats /tmp/ppm_check.csv > /dev/null
rm -f /tmp/ppm_check.jsonl /tmp/ppm_check.csv

# Macro-stepping equivalence smoke: the event-horizon engine must be
# byte-identical to the historical per-tick loop on a real workload,
# both clean and under deterministic fault injection (fault edges are
# horizon bounds, so the same spec must replay bit-exactly).
./build/tools/ppm_run --set l1 --seconds 8 --csv > /tmp/ppm_macro.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --per-tick \
    > /tmp/ppm_tick.csv
cmp /tmp/ppm_macro.csv /tmp/ppm_tick.csv
for policy in PPM HPM HL; do
    ./build/tools/ppm_run --policy "$policy" --set l1 --seconds 8 \
        --faults all,seed=7,rate=30 --csv > /tmp/ppm_macro.csv
    ./build/tools/ppm_run --policy "$policy" --set l1 --seconds 8 \
        --faults all,seed=7,rate=30 --csv --per-tick > /tmp/ppm_tick.csv
    cmp /tmp/ppm_macro.csv /tmp/ppm_tick.csv
done
rm -f /tmp/ppm_macro.csv /tmp/ppm_tick.csv

# Parallel-clearing determinism smoke: the market's clearing passes
# fan out in fixed chunks whose boundaries are independent of the
# worker count, so summaries and streamed traces must be byte-equal
# for every --jobs value (single runs route --jobs to the clearing
# pool; 1 is the inline walk).
./build/tools/ppm_run --set l1 --seconds 8 --csv --jobs 1 \
    > /tmp/ppm_jobs1.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --jobs 4 \
    > /tmp/ppm_jobs4.csv
cmp /tmp/ppm_jobs1.csv /tmp/ppm_jobs4.csv
./build/tools/ppm_run --set l1 --seconds 8 --jobs 1 \
    --trace-format=jsonl --trace-out=/tmp/ppm_jobs1.jsonl > /dev/null
./build/tools/ppm_run --set l1 --seconds 8 --jobs 4 \
    --trace-format=jsonl --trace-out=/tmp/ppm_jobs4.jsonl > /dev/null
cmp /tmp/ppm_jobs1.jsonl /tmp/ppm_jobs4.jsonl
rm -f /tmp/ppm_jobs1.csv /tmp/ppm_jobs4.csv \
    /tmp/ppm_jobs1.jsonl /tmp/ppm_jobs4.jsonl

# Incremental-clearing equivalence smoke: the active-set engine skips
# only entries whose every fold input is bit-unchanged, so a full
# recompute of every round must produce the same bytes -- summary CSV
# and streamed traces alike.
./build/tools/ppm_run --set l1 --seconds 8 --csv > /tmp/ppm_inc.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --no-incremental \
    > /tmp/ppm_full.csv
cmp /tmp/ppm_inc.csv /tmp/ppm_full.csv
./build/tools/ppm_run --set l1 --seconds 8 \
    --trace-format=jsonl --trace-out=/tmp/ppm_inc.jsonl > /dev/null
./build/tools/ppm_run --set l1 --seconds 8 --no-incremental \
    --trace-format=jsonl --trace-out=/tmp/ppm_full.jsonl > /dev/null
cmp /tmp/ppm_inc.jsonl /tmp/ppm_full.jsonl
rm -f /tmp/ppm_inc.csv /tmp/ppm_full.csv \
    /tmp/ppm_inc.jsonl /tmp/ppm_full.jsonl

# Fleet federation smokes: a 1-chip fleet is the same economy behind
# a supervisor that never moves its budget, so its CSV must be
# byte-identical to the plain run; and the sharded epoch loop keeps
# all cross-shard work on the control thread in chip-id order, so the
# shard-pool worker count must never change a byte either.
./build/tools/ppm_run --set l1 --seconds 8 --csv > /tmp/ppm_plain.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 1 \
    > /tmp/ppm_fleet1.csv
cmp /tmp/ppm_plain.csv /tmp/ppm_fleet1.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 4 --jobs 1 \
    > /tmp/ppm_fleet_j1.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 4 --jobs 4 \
    > /tmp/ppm_fleet_j4.csv
cmp /tmp/ppm_fleet_j1.csv /tmp/ppm_fleet_j4.csv
# Warm-start cross-check: fleet shards keep their markets alive across
# supervisor epochs (budget moves arrive mid-economy), so the
# incremental engine's cross-invocation memos face every invalidation
# channel at once -- and must still match the full recompute.
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 4 \
    --no-incremental > /tmp/ppm_fleet_full.csv
cmp /tmp/ppm_fleet_j1.csv /tmp/ppm_fleet_full.csv
rm -f /tmp/ppm_plain.csv /tmp/ppm_fleet1.csv \
    /tmp/ppm_fleet_j1.csv /tmp/ppm_fleet_j4.csv /tmp/ppm_fleet_full.csv

# Kill-and-resume smokes: a run saved at a snapshot point and resumed
# in a fresh process must print byte-identical summaries to the
# uninterrupted run -- single-chip, federated, and federated under
# chip failure/recovery (health, rosters and the pending-evacuation
# queue all travel through the snapshot).
./build/tools/ppm_run --set l1 --seconds 8 --csv > /tmp/ppm_whole.csv
./build/tools/ppm_run --set l1 --seconds 8 \
    --snapshot-out /tmp/ppm_check.snap --snapshot-at 3500 > /dev/null
./build/tools/ppm_run --set l1 --seconds 8 --csv \
    --snapshot-in /tmp/ppm_check.snap > /tmp/ppm_resumed.csv
cmp /tmp/ppm_whole.csv /tmp/ppm_resumed.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 4 \
    > /tmp/ppm_whole.csv
./build/tools/ppm_run --set l1 --seconds 8 --fleet 4 \
    --snapshot-out /tmp/ppm_check.snap --snapshot-at 3500 > /dev/null
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 4 \
    --snapshot-in /tmp/ppm_check.snap > /tmp/ppm_resumed.csv
cmp /tmp/ppm_whole.csv /tmp/ppm_resumed.csv
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 4 \
    --faults chip-fail,chip-recover,seed=7,chip_rate=30 \
    > /tmp/ppm_whole.csv
./build/tools/ppm_run --set l1 --seconds 8 --fleet 4 \
    --faults chip-fail,chip-recover,seed=7,chip_rate=30 \
    --snapshot-out /tmp/ppm_check.snap --snapshot-at 3500 > /dev/null
./build/tools/ppm_run --set l1 --seconds 8 --csv --fleet 4 \
    --faults chip-fail,chip-recover,seed=7,chip_rate=30 \
    --snapshot-in /tmp/ppm_check.snap > /tmp/ppm_resumed.csv
cmp /tmp/ppm_whole.csv /tmp/ppm_resumed.csv
rm -f /tmp/ppm_whole.csv /tmp/ppm_resumed.csv /tmp/ppm_check.snap

# Parallel-clearing and fleet bench smokes: one quick repetition each
# with the JSON validated (full runs regenerate BENCH_clearing.json
# and BENCH_fleet.json).
./scripts/bench_clearing.sh --quick --out /tmp/ppm_bench_clearing.json \
    > /dev/null
./scripts/bench_fleet.sh --quick --out /tmp/ppm_bench_fleet.json \
    > /dev/null
rm -f /tmp/ppm_bench_clearing.json /tmp/ppm_bench_fleet.json

# Fault-resilience smoke: the fault bench must run end to end.
./build/bench/bench_fault_resilience > /dev/null

# Differential fuzz smoke: a few hundred seeded scenarios checked
# across every engine equivalence (policies x macro-vs-tick, clearing
# jobs, budget conservation, fault counters, chip-failure
# conservation, snapshot restore-equivalence).  The full sweep is
# scripts/fuzz_sweep.sh; this pass proves the fuzzer and the
# invariants hold on a fresh build.  The second seed skews toward
# federated scenarios, where the chip-fault and snapshot genes live.
./build/tools/ppm_fuzz --count 200 --seed 1 > /dev/null
./build/tools/ppm_fuzz --count 100 --seed 77 > /dev/null

# Race check: the parallel sweep is only deterministic if cells share
# no mutable state, so run the threaded tests under ThreadSanitizer.
# The trace/telemetry tests ride along: each cell must own its bus
# and sinks, so traced parallel runs are the racy case to sanitize.
cmake -B build-tsan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPPM_TSAN=ON
cmake --build build-tsan --target test_common test_integration \
    test_metrics test_market test_fleet test_snapshot
./build-tsan/tests/test_common \
    --gtest_filter='ThreadPool.*' > /dev/null
# The fleet macro-steps shards on pool workers between settlement
# barriers; its determinism tests double as the federation race
# detector, and the chip-fault tests exercise evacuation across the
# same barriers.
./build-tsan/tests/test_fleet > /dev/null
# Snapshot save/load walks every shard's live state while the pool is
# parked; the restore tests prove no worker still touches it.
./build-tsan/tests/test_snapshot \
    --gtest_filter='SnapshotRestore.Fleet*:SnapshotRestore.Faulted*' \
    > /dev/null
# The clearing engine's fan-out shares the market state across pool
# workers; the determinism tests double as its race detector.  The
# incremental tests ride along: the dirty flags the passes publish
# from worker threads are the newest shared state.
./build-tsan/tests/test_market \
    --gtest_filter='ParallelClearing.*:Incremental.*' > /dev/null
./build-tsan/tests/test_metrics \
    --gtest_filter='TraceBus.*:TraceSink.*:TraceRecorder.*' > /dev/null
./build-tsan/tests/test_integration \
    --gtest_filter='Sweep.*:RunCells.*:Macrostep.*' > /dev/null
# The fuzz driver fans scenarios out over the same pool; a short
# sweep under TSAN sanitizes the differential checker itself.
cmake --build build-tsan --target ppm_fuzz
./build-tsan/tools/ppm_fuzz --count 20 --seed 1 > /dev/null

# Memory/UB check: the fault layer mutates hardware state (offlining
# cores, deferring DVFS) on irregular schedules, so run its tests and
# the hardened-market tests under ASan+UBSan.
cmake -B build-asan -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DPPM_ASAN=ON
cmake --build build-asan --target test_fault test_market test_hw \
    test_fleet test_snapshot
./build-asan/tests/test_fault > /dev/null
# Incremental rides along here too: the memo arrays are the newest
# indexed state, so overruns would surface under ASan first.
./build-asan/tests/test_market \
    --gtest_filter='Watchdog.*:OnlineEstimator.*:Incremental.*' \
    > /dev/null
./build-asan/tests/test_hw \
    --gtest_filter='VfTable.*:PowerModel*.*' > /dev/null
# Evacuation re-admits tasks into grown per-task containers (the
# online estimator and residency tables resize mid-run), and restore
# rebuilds every container through the admission log -- both are
# index-heavy paths ASan owns.
./build-asan/tests/test_fleet --gtest_filter='FleetFaults.*' \
    > /dev/null
./build-asan/tests/test_snapshot > /dev/null

echo "all checks passed"

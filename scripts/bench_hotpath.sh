#!/usr/bin/env bash
# Build and run the hot-path microbenchmarks, emitting BENCH_hotpath.json
# at the repo root so every PR leaves a comparable perf trajectory.
#
# Usage: scripts/bench_hotpath.sh [--quick] [--out FILE]
#   --quick   one repetition with a tiny min-time (CI smoke: proves the
#             driver runs and produces valid JSON; timings are noisy)
#   --out F   write the JSON to F instead of BENCH_hotpath.json
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME=0.5
OUT=BENCH_hotpath.json
while [[ $# -gt 0 ]]; do
    case "$1" in
      --quick) MIN_TIME=0.01; shift ;;
      --out) OUT="$2"; shift 2 ;;
      *) echo "usage: $0 [--quick] [--out FILE]" >&2; exit 2 ;;
    esac
done

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build --target bench_hotpath > /dev/null

./build/bench/bench_hotpath \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

# The emitted JSON must parse; fail loudly if the driver wrote garbage.
python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = [b["name"] for b in doc["benchmarks"]]
assert any(n.startswith("BM_SimulationStep/") for n in names), names
print(f"{sys.argv[1]}: {len(names)} benchmark entries, JSON ok")
EOF

#!/usr/bin/env bash
# Build and run the hot-path microbenchmarks, emitting BENCH_hotpath.json
# (per-tick primitives, comparable across PRs) and BENCH_macrostep.json
# (the end-to-end macro-stepping vs per-tick runs) at the repo root so
# every PR leaves a comparable perf trajectory.
#
# Usage: scripts/bench_hotpath.sh [--quick] [--out FILE] [--macro-out FILE]
#   --quick       one repetition with a tiny min-time (CI smoke: proves
#                 the driver runs and produces valid JSON; timings are
#                 noisy)
#   --out F       write the microbenchmark JSON to F
#                 (default BENCH_hotpath.json)
#   --macro-out F write the end-to-end macro-step JSON to F
#                 (default BENCH_macrostep.json)
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_TIME=0.5
OUT=BENCH_hotpath.json
MACRO_OUT=BENCH_macrostep.json
while [[ $# -gt 0 ]]; do
    case "$1" in
      --quick) MIN_TIME=0.01; shift ;;
      --out) OUT="$2"; shift 2 ;;
      --macro-out) MACRO_OUT="$2"; shift 2 ;;
      *) echo "usage: $0 [--quick] [--out FILE] [--macro-out FILE]" >&2
         exit 2 ;;
    esac
done

cmake -B build -G Ninja -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build --target bench_hotpath > /dev/null

# Microbenchmarks: everything except the end-to-end runs, so the JSON
# stays name-for-name comparable with the baselines of earlier PRs.
./build/bench/bench_hotpath \
    --benchmark_filter='-BM_EndToEndRun' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$OUT" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

# End-to-end: whole-simulation runs with macro-stepping on and off.
# items_per_second counts simulated ticks, so the macro/per-tick ratio
# is the engine's wall-clock speedup.
./build/bench/bench_hotpath \
    --benchmark_filter='BM_EndToEndRun' \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$MACRO_OUT" \
    --benchmark_out_format=json \
    --benchmark_counters_tabular=true

# Both JSONs must parse; fail loudly if the driver wrote garbage, and
# print the macro-vs-per-tick speedup on the 16-task untraced shape.
python3 - "$OUT" "$MACRO_OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = [b["name"] for b in doc["benchmarks"]]
assert any(n.startswith("BM_SimulationStep/") for n in names), names
assert not any(n.startswith("BM_EndToEndRun/") for n in names), names
print(f"{sys.argv[1]}: {len(names)} benchmark entries, JSON ok")

with open(sys.argv[2]) as f:
    doc = json.load(f)
runs = [b for b in doc["benchmarks"]
        if b["name"].startswith("BM_EndToEndRun/")]
assert runs, "no BM_EndToEndRun entries in " + sys.argv[2]
print(f"{sys.argv[2]}: {len(runs)} end-to-end entries, JSON ok")

def rate(macro, traced):
    per = [b["items_per_second"] for b in runs
           if f"/v:2/c:4/t:2/macro:{macro}/traced:{traced}" in b["name"]]
    return max(per) if per else None

per_tick = rate(0, 0)
macro = rate(1, 0)
if per_tick and macro:
    print(f"macro-step speedup (16 tasks, untraced): "
          f"{macro / per_tick:.2f}x")
EOF

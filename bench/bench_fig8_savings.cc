/**
 * @file
 * Figure 8: the effect of allowance savings.  swaptions and x264 run
 * at equal priority, pinned to one LITTLE core with the LBT module
 * disabled.  The demands are calibrated so the core is taut in
 * x264's dormant phase (sum ~95% of the maximum supply -- swaptions
 * "just about meets its demand") and oversubscribed in its active
 * phase, the regime in which banked allowance decides who wins.
 *
 * x264's phases follow the paper's narrative: a dormant first phase
 * (it exceeds its performance goal and banks its unspent allowance),
 * then a long active phase in which it outbids swaptions with the
 * saved money -- until the savings run out and its heart rate
 * collapses.
 *
 * Writes fig8.csv with per-second normalized heart rates, chip power
 * and the two agents' savings balances.
 */

#include <fstream>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/benchmarks.hh"

namespace {

using namespace ppm;

/**
 * x264 with explicit dormant/active phases: ~330 PU on LITTLE for
 * the first 100 s (dormant), ~560 PU for the next 250 s (active),
 * dormant again afterwards.
 */
workload::TaskSpec
scripted_x264()
{
    const auto& p = workload::profile(workload::Benchmark::kX264,
                                      workload::Input::kNative);
    // Demand d -> work per heartbeat at the target rate.
    auto work_little = [&](Pu demand) {
        return demand * kCyclesPerPuSecond / p.target_hr;
    };
    workload::TaskSpec spec;
    spec.name = "x264_n";
    spec.priority = 1;
    spec.min_hr = 0.95 * p.target_hr;
    spec.max_hr = 1.05 * p.target_hr;
    const Cycles dormant = work_little(330.0);
    const Cycles active = work_little(560.0);
    spec.phases = {
        workload::Phase{100 * kSecond, dormant, dormant / p.big_speedup},
        workload::Phase{250 * kSecond, active, active / p.big_speedup},
        workload::Phase{250 * kSecond, dormant, dormant / p.big_speedup},
    };
    return spec;
}

/** swaptions scaled to ~620 PU steady on LITTLE. */
workload::TaskSpec
scripted_swaptions()
{
    workload::TaskSpec spec = workload::make_task_spec(
        workload::Benchmark::kSwaptions, workload::Input::kNative, 1,
        /*seed=*/1, 700 * kSecond);
    for (auto& phase : spec.phases) {
        phase.work_per_hb_little *= 620.0 / 760.0;
        phase.work_per_hb_big *= 620.0 / 760.0;
    }
    return spec;
}

/** Everything the driver prints, computed inside the sweep cell. */
struct SavingsRun {
    sim::RunSummary summary;
    double outside_dormant = 0;   ///< x264 outside, 0-100 s.
    double outside_active = 0;    ///< x264 outside, 100-250 s.
    double outside_exhausted = 0; ///< x264 outside, 250-350 s.
    double x264_savings_at_100s = 0;
};

SavingsRun
run_savings_cell()
{
    std::vector<workload::TaskSpec> specs{
        scripted_swaptions(),
        scripted_x264(),
    };
    market::PpmGovernorConfig cfg;
    cfg.enable_lbt = false;
    cfg.big_speedup = {2.0, 1.7};
    // The savings cap is the designer knob that sizes the bank
    // (Section 3.2.3): 30x the allowance drains within the active
    // phase so the collapse is visible, as in the paper's 300 s mark.
    // Taut money (anchor slack 1.0) is the regime in which savings
    // carry purchasing power: swaptions spends its whole allowance on
    // its steady demand while dormant x264 banks the difference.
    cfg.market.savings_cap_frac = 30.0;
    cfg.market.money_anchor_slack = 1.0;
    auto governor = std::make_unique<market::PpmGovernor>(cfg);
    auto* gov = governor.get();

    sim::SimConfig sim_cfg;
    sim_cfg.duration = 600 * kSecond;
    sim_cfg.trace = true;
    sim_cfg.placement = {0, 0};  // Both on LITTLE core 0.
    sim::Simulation simulation(hw::tc2_chip(), specs,
                               std::move(governor), sim_cfg);

    // Drive manually so the savings trajectory can be sampled.
    SimTime next_sample = 0;
    while (simulation.now() < sim_cfg.duration) {
        simulation.step();
        if (simulation.now() >= next_sample) {
            next_sample += kSecond;
            simulation.recorder().record(
                "swaptions_savings", simulation.now(),
                gov->market().task(0).savings);
            simulation.recorder().record(
                "x264_savings", simulation.now(),
                gov->market().task(1).savings);
        }
    }

    SavingsRun run;
    run.summary = simulation.summary();

    // Phase-resolved miss fractions for x264 (the savings story).
    const auto& series = simulation.recorder().series("x264_n_norm_hr");
    auto outside_between = [&](SimTime lo, SimTime hi) {
        int outside = 0;
        int n = 0;
        for (const auto& s : series) {
            if (s.time < lo || s.time >= hi)
                continue;
            ++n;
            if (s.value < 0.95 || s.value > 1.05)
                ++outside;
        }
        return n ? static_cast<double>(outside) / n : 0.0;
    };
    run.outside_dormant = outside_between(0, 100 * kSecond);
    run.outside_active = outside_between(100 * kSecond, 250 * kSecond);
    run.outside_exhausted = outside_between(250 * kSecond, 350 * kSecond);
    run.x264_savings_at_100s =
        simulation.recorder().series("x264_savings")[100].value;

    std::ofstream csv("fig8.csv");
    simulation.recorder().write_csv(csv);
    return run;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::cout << "Figure 8: savings dynamics (swaptions_n + x264_n, "
                 "equal priority,\npinned to one LITTLE core, LBT off, "
                 "600 s)\n\n";

    // One scripted cell; run_cells keeps the driver on the shared
    // sweep plumbing (and the --jobs flag a no-op but accepted).
    const std::vector<std::function<SavingsRun()>> cells{
        []() { return run_savings_cell(); }};
    const SavingsRun run =
        bench::run_cells<SavingsRun>(cells,
                                     bench::jobs_arg(argc, argv))[0];
    const sim::RunSummary& summary = run.summary;

    Table table({"Window", "x264 outside range", "note"});
    table.add_row({"0-100 s", fmt_percent(run.outside_dormant),
                   "dormant: exceeds goal, banks savings"});
    table.add_row({"100-250 s", fmt_percent(run.outside_active),
                   "active: savings sustain the demand"});
    table.add_row({"250-350 s", fmt_percent(run.outside_exhausted),
                   "savings exhausted: demand unsustainable"});
    table.print(std::cout);

    std::cout << "\nrun summary: swaptions outside "
              << fmt_percent(summary.task_outside[0]) << ", x264 outside "
              << fmt_percent(summary.task_outside[1]) << "\n"
              << "x264 savings at 100 s: "
              << fmt_double(run.x264_savings_at_100s, 2)
              << " (banked in the dormant phase)\n"
              << "time series written to fig8.csv\n";
    return 0;
}

/**
 * @file
 * Fleet-federation scalability: wall-clock cost of one supervisor
 * epoch (parallel shard macro-stepping + batched cross-shard
 * settlement) swept over fleet size and shard-pool worker count.
 *
 * Each chip is a full per-chip economy (TC2-like platform, PPM
 * market governor, its own task population); one epoch advances
 * every shard 96 ms of simulated time and then settles the fleet
 * power budget.  The flagship shape clears 64 chips x 160 tasks =
 * 10,240 tasks per epoch.  Every jobs value produces byte-identical
 * fleet state (shards are disjoint between barriers and the
 * settlement runs in chip-id order on the control thread), so the
 * jobs sweep is a pure wall-clock scaling measurement.
 *
 * Tracked as BENCH_fleet.json via scripts/bench_fleet.sh.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "common/rng.hh"
#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "market/ppm_governor.hh"
#include "snapshot/archive.hh"

namespace {

using namespace ppm;

/** A ready-to-step fleet for one (chips, tasks_per_chip, jobs). */
std::unique_ptr<fleet::Fleet>
make_fleet(int chips, int tasks_per_chip, int jobs)
{
    fleet::FleetConfig fc;
    fc.chips = chips;
    fc.epoch = 96 * kMillisecond;
    // Per-chip share deliberately below each chip's demand so the
    // supervisor has real deficits to arbitrate every epoch.
    fc.supervisor.total_budget = 3.5 * chips;
    // Effectively inexhaustible: the measurement loop meters single
    // epochs and must never hit the end of the run.
    fc.sim.duration = 100000 * kSecond;
    fc.sim.tdp_for_metrics = 3.5;
    fc.jobs = jobs;
    fc.make_chip = [](int) { return hw::tc2_chip(); };
    fc.make_governor =
        [](int, Watts budget) -> std::unique_ptr<sim::Governor> {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = budget;
        cfg.market.w_th = market::derive_w_th(budget);
        return std::make_unique<market::PpmGovernor>(cfg);
    };
    for (int c = 0; c < chips; ++c) {
        // Distinct per-chip populations from a chip-keyed stream.
        Rng rng(mix64(2014 + static_cast<std::uint64_t>(c)));
        fleet::ChipWorkload wl;
        wl.specs.reserve(static_cast<std::size_t>(tasks_per_chip));
        for (int t = 0; t < tasks_per_chip; ++t) {
            std::string name = "t";
            name += std::to_string(t);
            wl.specs.push_back(workload::steady_task_spec(
                name, 1 + static_cast<int>(rng.uniform_int(0, 3)),
                rng.uniform(30.0, 300.0), rng.uniform(1.2, 2.2),
                rng.uniform(5.0, 30.0)));
        }
        fc.workloads.push_back(std::move(wl));
    }
    return std::make_unique<fleet::Fleet>(std::move(fc));
}

/**
 * One supervisor epoch: parallel shard stepping to the barrier plus
 * gather/settle/retarget/sample.  Args: {chips, tasks_per_chip,
 * jobs}; items = tasks cleared per epoch across the fleet.
 */
void
BM_FleetEpoch(benchmark::State& state)
{
    const int chips = static_cast<int>(state.range(0));
    const int tasks_per_chip = static_cast<int>(state.range(1));
    const int jobs = static_cast<int>(state.range(2));
    auto fleet = make_fleet(chips, tasks_per_chip, jobs);
    for (auto _ : state)
        benchmark::DoNotOptimize(fleet->run_epoch());
    state.SetItemsProcessed(state.iterations() * chips *
                            tasks_per_chip);
    state.SetLabel("chips=" + std::to_string(chips) +
                   " tasks/chip=" + std::to_string(tasks_per_chip) +
                   " tasks/epoch=" +
                   std::to_string(chips * tasks_per_chip) +
                   " jobs=" + std::to_string(jobs));
}

void
fleet_args(benchmark::internal::Benchmark* b)
{
    // A small warm-up shape plus the flagship: 64 chips x 160 tasks
    // = 10,240 tasks cleared per epoch, swept over the shard-pool
    // worker count (jobs=1 inlines on the control thread and is the
    // speedup baseline).
    for (const auto& shape : {std::pair{16, 40}, std::pair{64, 160}}) {
        for (int jobs : {1, 2, 4, 8})
            b->Args({shape.first, shape.second, jobs});
    }
    b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_FleetEpoch)->Apply(fleet_args);

/** make_fleet() plus an endless alternating fail/recover schedule:
 *  each epoch applies one chip transition, so the steady state is
 *  perpetual evacuation/re-admission churn. */
std::unique_ptr<fleet::Fleet>
make_failing_fleet(int chips, int tasks_per_chip, int jobs,
                   long transitions)
{
    fleet::FleetConfig fc;
    fc.chips = chips;
    fc.epoch = 96 * kMillisecond;
    fc.supervisor.total_budget = 3.5 * chips;
    fc.sim.duration = 100000 * kSecond;
    fc.sim.tdp_for_metrics = 3.5;
    fc.jobs = jobs;
    fc.make_chip = [](int) { return hw::tc2_chip(); };
    fc.make_governor =
        [](int, Watts budget) -> std::unique_ptr<sim::Governor> {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = budget;
        cfg.market.w_th = market::derive_w_th(budget);
        return std::make_unique<market::PpmGovernor>(cfg);
    };
    for (int c = 0; c < chips; ++c) {
        Rng rng(mix64(2014 + static_cast<std::uint64_t>(c)));
        fleet::ChipWorkload wl;
        wl.specs.reserve(static_cast<std::size_t>(tasks_per_chip));
        for (int t = 0; t < tasks_per_chip; ++t) {
            std::string name = "t";
            name += std::to_string(t);
            wl.specs.push_back(workload::steady_task_spec(
                name, 1 + static_cast<int>(rng.uniform_int(0, 3)),
                rng.uniform(30.0, 300.0), rng.uniform(1.2, 2.2),
                rng.uniform(5.0, 30.0)));
        }
        fc.workloads.push_back(std::move(wl));
    }
    // Fail a rotating chip on every odd barrier, recover it on the
    // next: each measured epoch carries exactly one transition.
    for (long k = 0; k < transitions; k += 2) {
        const int chip = static_cast<int>((k / 2) % chips);
        fault::FleetFaultEvent fail;
        fail.kind = fault::FleetFaultKind::kChipFail;
        fail.time = (k + 1) * fc.epoch;
        fail.chip = chip;
        fc.fleet_faults.add(fail);
        fault::FleetFaultEvent recover;
        recover.kind = fault::FleetFaultKind::kChipRecover;
        recover.time = (k + 2) * fc.epoch;
        recover.chip = chip;
        fc.fleet_faults.add(recover);
    }
    return std::make_unique<fleet::Fleet>(std::move(fc));
}

/**
 * One supervisor epoch under perpetual chip failure/recovery: every
 * epoch applies one transition, so the measurement is the epoch cost
 * of BM_FleetEpoch plus evacuation (roster drain, cheapest-chip
 * placement, re-admission) amortized across the alternation.  Args:
 * {chips, tasks_per_chip, jobs}.
 */
void
BM_ChipFailureEvacuation(benchmark::State& state)
{
    const int chips = static_cast<int>(state.range(0));
    const int tasks_per_chip = static_cast<int>(state.range(1));
    const int jobs = static_cast<int>(state.range(2));
    // 2M transitions outlast any benchmark repetition budget.
    auto fleet =
        make_failing_fleet(chips, tasks_per_chip, jobs, 2000000);
    for (auto _ : state)
        benchmark::DoNotOptimize(fleet->run_epoch());
    state.SetItemsProcessed(state.iterations() * chips *
                            tasks_per_chip);
    state.SetLabel("chips=" + std::to_string(chips) +
                   " tasks/chip=" + std::to_string(tasks_per_chip) +
                   " jobs=" + std::to_string(jobs) +
                   " evacuations=" + std::to_string(chips ? 1 : 0) +
                   "/epoch");
}

void
failure_args(benchmark::internal::Benchmark* b)
{
    for (const auto& shape : {std::pair{16, 40}, std::pair{64, 160}}) {
        for (int jobs : {1, 4})
            b->Args({shape.first, shape.second, jobs});
    }
    b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_ChipFailureEvacuation)->Apply(failure_args);

/**
 * Crash-consistent snapshot round trip on a warmed-up fleet: save
 * every shard's full state (market memos included), finalize the
 * checksummed archive, validate it, and load it back into the same
 * federation.  Bytes processed = archive size, so the throughput
 * column reads as serialization bandwidth.  Args: {chips,
 * tasks_per_chip}.
 */
void
BM_SnapshotRoundTrip(benchmark::State& state)
{
    const int chips = static_cast<int>(state.range(0));
    const int tasks_per_chip = static_cast<int>(state.range(1));
    auto fleet = make_fleet(chips, tasks_per_chip, 1);
    // Warm the economy so the archive carries real market state.
    for (int i = 0; i < 8; ++i)
        fleet->run_epoch();
    std::size_t bytes = 0;
    for (auto _ : state) {
        snap::Writer w;
        fleet->save(w);
        snap::Reader r;
        const snap::LoadStatus st = r.open(w.finalize());
        if (st != snap::LoadStatus::kOk)
            state.SkipWithError("snapshot failed validation");
        fleet->load(r);
        bytes = w.size();
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * bytes));
    state.SetLabel("chips=" + std::to_string(chips) +
                   " tasks/chip=" + std::to_string(tasks_per_chip) +
                   " archive_bytes=" + std::to_string(bytes));
}

void
snapshot_args(benchmark::internal::Benchmark* b)
{
    b->Args({1, 160});
    b->Args({16, 40});
    b->Args({64, 160});
    b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_SnapshotRoundTrip)->Apply(snapshot_args);

} // namespace

BENCHMARK_MAIN();

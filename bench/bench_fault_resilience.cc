/**
 * @file
 * Fault-resilience comparison: QoS and power-cap behaviour of PPM,
 * HPM and HL under increasing fault intensity (a single deterministic
 * fault plan per intensity, all fault classes enabled).
 *
 * Expected shape: QoS degrades gracefully with intensity for all
 * three governors (no crashes, no NaN rows), the time-over-TDP spent
 * inside fault windows stays bounded by the sensor-fault duty cycle,
 * and the safe-mode columns show the hardening actually engaging.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workload/sets.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    constexpr Watts kTdp = 3.5;

    struct Intensity {
        const char* name;
        double rate_per_min;  ///< 0 = perfect platform.
    };
    const Intensity kIntensities[] = {
        {"none", 0.0}, {"light", 6.0}, {"moderate", 15.0},
        {"heavy", 40.0}};
    const char* kPolicies[] = {"PPM", "HPM", "HL"};

    std::printf("Fault resilience: QoS and cap behaviour vs fault "
                "intensity (TDP = %.1f W)\n", kTdp);
    std::printf("set m2, 30 s per run, all fault classes, "
                "seed-fixed plans\n\n");

    const auto& set = workload::workload_set("m2");
    std::vector<std::function<std::vector<std::string>()>> cells;
    for (const char* policy : kPolicies) {
        for (const Intensity& in : kIntensities) {
            cells.push_back([&set, policy,
                             in]() -> std::vector<std::string> {
                bench::RunParams params;
                params.policy = policy;
                params.tdp = kTdp;
                params.duration = 30 * kSecond;
                if (in.rate_per_min > 0.0) {
                    params.faults.sensor = params.faults.dvfs =
                        params.faults.migration =
                            params.faults.offline = true;
                    params.faults.seed = 7;
                    params.faults.rate_per_min = in.rate_per_min;
                }
                const sim::RunSummary r =
                    bench::run_set(set, params).summary;
                return {policy,
                        in.name,
                        fmt_percent(r.any_below_miss),
                        fmt_percent(r.over_tdp_fraction),
                        fmt_percent(r.over_tdp_during_fault),
                        std::to_string(r.faults_injected),
                        std::to_string(r.fault_retries),
                        fmt_double(r.safe_mode_seconds, 2),
                        std::to_string(r.watchdog_trips)};
            });
        }
    }
    const auto rows = bench::run_cells<std::vector<std::string>>(
        cells, bench::jobs_arg(argc, argv));

    Table table({"Policy", "Faults", "QoS miss", "OverTDP",
                 "OverTDP(fault)", "Injected", "Retries", "SafeMode s",
                 "Watchdog"});
    for (const auto& row : rows)
        table.add_row(row);
    table.print(std::cout);
    return 0;
}

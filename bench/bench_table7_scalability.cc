/**
 * @file
 * Table 7: computational overhead of the framework for growing
 * numbers of clusters V, cores per cluster C, and tasks per core T.
 *
 * Mirrors the paper's methodology: a synthetic chip with maximum
 * supplies spread over [350, 3000] PU, random task demands in
 * [10, 50] PU, and the measurement of (a) one supply-demand market
 * round for the whole chip and (b) the LBT speculation performed by
 * one constrained core (the per-core share of the distributed
 * computation, which is what the paper's Table 7 reports -- e.g.
 * 11.4 ms for V=256, C=16, T=32 on a 350 MHz Cortex-A7).
 *
 * This driver intentionally stays off the experiment::Sweep runner:
 * it measures wall-clock latency with Google Benchmark, and co-running
 * cells on pool workers would corrupt the timings.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "hw/platform.hh"
#include "market/lbt.hh"
#include "market/market.hh"

namespace {

using namespace ppm;

/**
 * A populated market + LBT instance for one (V, C, T) combination.
 * `jobs` > 1 attaches a dedicated clearing pool (the threshold is
 * dropped so every shape exercises the engine, not just the large
 * ones); results stay bit-identical to jobs = 1.
 */
struct Scenario {
    Scenario(int clusters, int cores, int tasks_per_core, int jobs = 1,
             bool incremental = false)
        : chip(hw::synthetic_chip(clusters, cores))
    {
        market::PpmConfig cfg;
        cfg.w_tdp = 1e9;
        cfg.w_th = 1e9 - 0.5;
        // The scalability benchmarks hold demands constant, so the
        // active-set engine would collapse their rounds to early
        // exits; pin full recompute to keep measuring the clearing
        // work itself.  BM_IncrementalClearingRound opts back in.
        cfg.incremental = incremental;
        if (jobs > 1)
            cfg.clearing_min_tasks = 1;
        market = std::make_unique<market::Market>(&chip, cfg);
        if (jobs > 1) {
            pool = std::make_unique<ThreadPool>(jobs);
            market->set_thread_pool(pool.get());
        }
        Rng rng(2014);
        TaskId id = 0;
        for (CoreId c = 0; c < chip.num_cores(); ++c) {
            for (int t = 0; t < tasks_per_core; ++t) {
                market->add_task(id,
                                 1 + static_cast<int>(
                                         rng.uniform_int(0, 6)),
                                 c);
                market->set_demand(id, rng.uniform(10.0, 50.0));
                ++id;
            }
        }
        for (ClusterId v = 0; v < chip.num_clusters(); ++v)
            market->set_cluster_power(v, rng.uniform(0.1, 2.0));
        // Two warm-up rounds to populate prices and supplies.
        market->round();
        market->round();
        lbt = std::make_unique<market::LbtModule>(
            market.get(),
            [this](TaskId t, ClusterId) { return market->task(t).demand; });
    }

    hw::Chip chip;
    std::unique_ptr<ThreadPool> pool;
    std::unique_ptr<market::Market> market;
    std::unique_ptr<market::LbtModule> lbt;
};

void
BM_SupplyDemandRound(benchmark::State& state)
{
    Scenario s(static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1)),
               static_cast<int>(state.range(2)));
    for (auto _ : state)
        benchmark::DoNotOptimize(s.market->round());
    state.SetLabel("V=" + std::to_string(state.range(0)) +
                   " C=" + std::to_string(state.range(1)) +
                   " T=" + std::to_string(state.range(2)) + " tasks=" +
                   std::to_string(state.range(0) * state.range(1) *
                                  state.range(2)));
}

void
BM_LbtConstrainedCore(benchmark::State& state)
{
    Scenario s(static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1)),
               static_cast<int>(state.range(2)));
    // The per-core share: only cluster 0's constrained core
    // contemplates movements (against all V target clusters).
    for (auto _ : state)
        benchmark::DoNotOptimize(s.lbt->propose_migration_from(0));
    state.SetLabel("V=" + std::to_string(state.range(0)) +
                   " C=" + std::to_string(state.range(1)) +
                   " T=" + std::to_string(state.range(2)) + " tasks=" +
                   std::to_string(state.range(0) * state.range(1) *
                                  state.range(2)));
}

/**
 * One market round through the parallel clearing engine, swept over
 * worker counts.  Args: {V, C, T, jobs}.  jobs = 1 is the inline
 * (no-pool) path and the baseline the speedups in BENCH_clearing.json
 * are computed against; all job counts produce bit-identical market
 * state, so this measures pure wall-clock scaling.
 */
void
BM_ParallelClearingRound(benchmark::State& state)
{
    Scenario s(static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1)),
               static_cast<int>(state.range(2)),
               static_cast<int>(state.range(3)));
    for (auto _ : state)
        benchmark::DoNotOptimize(s.market->round());
    state.SetLabel("V=" + std::to_string(state.range(0)) +
                   " C=" + std::to_string(state.range(1)) +
                   " T=" + std::to_string(state.range(2)) + " tasks=" +
                   std::to_string(state.range(0) * state.range(1) *
                                  state.range(2)) +
                   " jobs=" + std::to_string(state.range(3)));
}

/**
 * Incremental active-set clearing under a controlled dirty fraction.
 * Args: {V, C, T, dirty_pct, incremental}.
 *
 * The market is warmed to a bitwise fixed point with light demands
 * (every bid at the clamped floor), then each measured round first
 * rewrites the demand bits of `dirty_pct`% of the tasks.  With the
 * engine off this always measures a full recompute; with it on, 0%
 * dirty is the early-exit path, 10% is the steady-state shape a
 * governor wake sees, and 100% bounds the bookkeeping overhead when
 * nothing can be skipped.  The skip-rate counters of the measured
 * rounds are reported alongside the timings.
 */
void
BM_IncrementalClearingRound(benchmark::State& state)
{
    const int dirty_pct = static_cast<int>(state.range(3));
    const bool incremental = state.range(4) != 0;
    Scenario s(static_cast<int>(state.range(0)),
               static_cast<int>(state.range(1)),
               static_cast<int>(state.range(2)),
               /*jobs=*/1, incremental);
    const int n_tasks = static_cast<int>(s.market->tasks().size());
    // Re-post light demands so every cluster is unconstrained and the
    // tatonnement reaches an exact fixed point (bids clamp to the
    // floor, savings saturate at the cap).
    Rng rng(7);
    std::vector<double> base(static_cast<std::size_t>(n_tasks));
    for (int t = 0; t < n_tasks; ++t) {
        base[static_cast<std::size_t>(t)] = rng.uniform(1.0, 3.0);
        s.market->set_demand(t, base[static_cast<std::size_t>(t)]);
    }
    // The large shapes need north of a thousand rounds for the last
    // few savings balances to saturate bit-exactly at the cap.
    for (int i = 0; i < 2500 && !s.market->last_report().early_exit;
         ++i)
        s.market->round();
    const int n_dirty = n_tasks * dirty_pct / 100;
    const market::ClearingStats warm = s.market->clearing_stats();
    bool flip = false;
    for (auto _ : state) {
        // Alternate the perturbation so the touched bits change on
        // every single iteration (a repeated write is bit-equal and
        // would read as clean -- correctly, but not what we measure).
        flip = !flip;
        const double eps = flip ? 0.25 : 0.0;
        for (int t = 0; t < n_dirty; ++t)
            s.market->set_demand(
                t, base[static_cast<std::size_t>(t)] + eps);
        benchmark::DoNotOptimize(s.market->round());
    }
    const market::ClearingStats st = s.market->clearing_stats();
    const long task_slots = st.task_slots - warm.task_slots;
    const long task_skips = st.tasks_skipped - warm.tasks_skipped;
    const long core_slots = st.core_slots - warm.core_slots;
    const long core_skips = st.cores_skipped - warm.cores_skipped;
    state.counters["task_skip_rate"] =
        task_slots > 0 ? static_cast<double>(task_skips) /
                             static_cast<double>(task_slots)
                       : 0.0;
    state.counters["core_skip_rate"] =
        core_slots > 0 ? static_cast<double>(core_skips) /
                             static_cast<double>(core_slots)
                       : 0.0;
    state.counters["early_exits"] = static_cast<double>(
        st.rounds_early_exit - warm.rounds_early_exit);
    state.SetLabel("V=" + std::to_string(state.range(0)) +
                   " C=" + std::to_string(state.range(1)) +
                   " T=" + std::to_string(state.range(2)) + " tasks=" +
                   std::to_string(n_tasks) +
                   " dirty=" + std::to_string(dirty_pct) + "%" +
                   (incremental ? " incremental" : " full"));
}

void
table7_args(benchmark::internal::Benchmark* b)
{
    // The paper's sweep: V up to 256 clusters, C up to 16 cores,
    // T in {8, 32} tasks per core -- extended one octave past the
    // paper's envelope (512 clusters, up to 262,144 tasks) to probe
    // where the sequential walk stops being linear.
    for (const auto& vc : {std::pair{2, 4}, std::pair{4, 8},
                           std::pair{8, 8}, std::pair{16, 8},
                           std::pair{16, 16}, std::pair{64, 16},
                           std::pair{256, 16}, std::pair{512, 16}}) {
        for (int t : {8, 32})
            b->Args({vc.first, vc.second, t});
    }
    b->Unit(benchmark::kMillisecond);
}

void
clearing_args(benchmark::internal::Benchmark* b)
{
    // Shapes centred on the ISSUE target of 4096 tasks over 64 cores
    // in 8 clusters ({8, 8, 64}), with a smaller and a larger shape
    // bracketing it, each swept over the clearing worker count.
    for (const auto& shape :
         {std::tuple{4, 4, 16},    //    256 tasks, 16 cores
          std::tuple{8, 8, 64},    //  4,096 tasks, 64 cores, 8 clusters
          std::tuple{16, 16, 64}}) // 16,384 tasks, 256 cores
    {
        for (int jobs : {1, 2, 4, 8}) {
            b->Args({std::get<0>(shape), std::get<1>(shape),
                     std::get<2>(shape), jobs});
        }
    }
    b->Unit(benchmark::kMillisecond);
}

void
incremental_args(benchmark::internal::Benchmark* b)
{
    // The jobs-sweep's small and target shapes, crossed with the
    // dirty fraction (0% = governor wake with nothing changed, 10% =
    // typical steady state, 100% = everything moved) and the engine
    // flag; the same-shape full/incremental pair at each fraction is
    // the headline comparison.
    for (const auto& shape :
         {std::tuple{4, 4, 16},   //    256 tasks, 16 cores
          std::tuple{8, 8, 64}})  //  4,096 tasks, 64 cores, 8 clusters
    {
        for (int dirty : {0, 10, 100}) {
            for (int inc : {0, 1}) {
                b->Args({std::get<0>(shape), std::get<1>(shape),
                         std::get<2>(shape), dirty, inc});
            }
        }
    }
    b->Unit(benchmark::kMillisecond);
}

BENCHMARK(BM_SupplyDemandRound)->Apply(table7_args);
BENCHMARK(BM_LbtConstrainedCore)->Apply(table7_args);
BENCHMARK(BM_ParallelClearingRound)->Apply(clearing_args);
BENCHMARK(BM_IncrementalClearingRound)->Apply(incremental_args);

} // namespace

BENCHMARK_MAIN();

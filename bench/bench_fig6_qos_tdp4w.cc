/**
 * @file
 * Figure 6: percentage of time the reference heart-rate range is not
 * met under a 4 W TDP constraint, for PPM, HPM and HL across the
 * nine workload sets.  HL handles the cap by powering the big
 * cluster off entirely (as in the paper's emulation).
 *
 * Expected shape (paper): PPM meets the reference range most often;
 * improvements around 34% vs HPM and 44% vs HL on average.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main()
{
    using namespace ppm;
    constexpr Watts kTdp = 4.0;
    std::printf("Figure 6: %% of time reference heart rate missed "
                "(TDP = %.1f W)\n", kTdp);
    std::printf("300 s per run, averaged over 3 seeds\n\n");

    Table table({"Workload", "Class", "PPM", "HPM", "HL", "PPM>tdp",
                 "HPM>tdp", "HL>tdp"});
    double sum_ppm = 0.0;
    double sum_hpm = 0.0;
    double sum_hl = 0.0;
    for (const auto& set : workload::standard_workload_sets()) {
        std::vector<std::string> row{
            set.name, workload::intensity_class_name(set.expected_class)};
        std::vector<std::string> over;
        for (const char* policy : {"PPM", "HPM", "HL"}) {
            bench::RunParams params;
            params.policy = policy;
            params.tdp = kTdp;
            const sim::RunSummary r = bench::run_set_avg(set, params);
            row.push_back(fmt_percent(r.any_below_miss));
            over.push_back(fmt_percent(r.over_tdp_fraction));
            if (std::string(policy) == "PPM")
                sum_ppm += r.any_below_miss;
            else if (std::string(policy) == "HPM")
                sum_hpm += r.any_below_miss;
            else
                sum_hl += r.any_below_miss;
        }
        row.insert(row.end(), over.begin(), over.end());
        table.add_row(row);
    }
    const double n = 9.0;
    table.add_row({"mean", "", fmt_percent(sum_ppm / n),
                   fmt_percent(sum_hpm / n), fmt_percent(sum_hl / n),
                   "", "", ""});
    table.print(std::cout);
    if (sum_ppm > 0.0) {
        std::printf("\nPPM miss-time reduction: %.0f%% vs HPM, "
                    "%.0f%% vs HL (paper: 34%%, 44%%)\n",
                    100.0 * (1.0 - sum_ppm / sum_hpm),
                    100.0 * (1.0 - sum_ppm / sum_hl));
    }
    return 0;
}

/**
 * @file
 * Figure 6: percentage of time the reference heart-rate range is not
 * met under a 4 W TDP constraint, for PPM, HPM and HL across the
 * nine workload sets.  HL handles the cap by powering the big
 * cluster off entirely (as in the paper's emulation).
 *
 * Expected shape (paper): PPM meets the reference range most often;
 * improvements around 34% vs HPM and 44% vs HL on average.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    constexpr Watts kTdp = 4.0;
    std::printf("Figure 6: %% of time reference heart rate missed "
                "(TDP = %.1f W)\n", kTdp);
    std::printf("300 s per run, averaged over 3 seeds\n\n");

    bench::SweepConfig sweep;
    sweep.sets = workload::standard_workload_sets();
    sweep.policies = {"PPM", "HPM", "HL"};
    sweep.base.tdp = kTdp;
    sweep.jobs = bench::jobs_arg(argc, argv);
    const bench::SweepResult results = bench::run_sweep(sweep);

    Table table({"Workload", "Class", "PPM", "HPM", "HL", "PPM>tdp",
                 "HPM>tdp", "HL>tdp"});
    std::vector<double> sums(sweep.policies.size(), 0.0);
    for (int s = 0; s < results.n_sets(); ++s) {
        const auto& set = sweep.sets[static_cast<std::size_t>(s)];
        std::vector<std::string> row{
            set.name, workload::intensity_class_name(set.expected_class)};
        std::vector<std::string> over;
        for (int p = 0; p < results.n_policies(); ++p) {
            const sim::RunSummary r = results.averaged(s, p);
            row.push_back(fmt_percent(r.any_below_miss));
            over.push_back(fmt_percent(r.over_tdp_fraction));
            sums[static_cast<std::size_t>(p)] += r.any_below_miss;
        }
        row.insert(row.end(), over.begin(), over.end());
        table.add_row(row);
    }
    const double n = results.n_sets();
    const double sum_ppm = sums[0];
    const double sum_hpm = sums[1];
    const double sum_hl = sums[2];
    table.add_row({"mean", "", fmt_percent(sum_ppm / n),
                   fmt_percent(sum_hpm / n), fmt_percent(sum_hl / n),
                   "", "", ""});
    table.print(std::cout);
    if (sum_ppm > 0.0) {
        std::printf("\nPPM miss-time reduction: %.0f%% vs HPM, "
                    "%.0f%% vs HL (paper: 34%%, 44%%)\n",
                    100.0 * (1.0 - sum_ppm / sum_hpm),
                    100.0 * (1.0 - sum_ppm / sum_hl));
    }
    return 0;
}

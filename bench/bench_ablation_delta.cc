/**
 * @file
 * Ablation: the tolerance factor delta (Section 3.2.2).
 *
 * The paper argues that small delta makes cluster agents react faster
 * but causes frequent V-F transitions (thermal cycling), while large
 * delta is sluggish.  This bench sweeps delta on a medium workload
 * and reports QoS, power and the number of V-F transitions.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

int
main()
{
    using namespace ppm;
    std::printf("Ablation: tolerance factor delta "
                "(workload m2, 300 s, no TDP)\n\n");

    const auto& set = workload::workload_set("m2");
    Table table({"delta", "rounding", "QoS miss", "avg power [W]",
                 "V-F transitions", "migrations"});
    for (bool rounding : {false, true}) {
        for (double delta : {0.05, 0.1, 0.2, 0.4, 0.8}) {
            market::PpmGovernorConfig cfg;
            cfg.market.tolerance = delta;
            cfg.market.demand_rounding = rounding;
            for (const auto& m : set.members) {
                cfg.big_speedup.push_back(
                    workload::profile(m.bench, m.input).big_speedup);
            }
            sim::SimConfig sim_cfg;
            sim_cfg.duration = 300 * kSecond;
            sim::Simulation sim(
                hw::tc2_chip(), workload::instantiate(set, 42),
                std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
            const sim::RunSummary s = sim.run();
            table.add_row({fmt_double(delta, 2), rounding ? "on" : "off",
                           fmt_percent(s.any_below_miss),
                           fmt_double(s.avg_power, 2),
                           std::to_string(s.vf_transitions),
                           std::to_string(s.migrations)});
        }
    }
    table.print(std::cout);
    std::printf("\nexpected shape (rounding off, the paper's raw "
                "dynamics): smaller delta ->\nmore V-F transitions "
                "(thermal cycling), larger delta -> sluggish.  With\n"
                "demand rounding on, the limit cycle is damped and "
                "delta matters less.\n");
    return 0;
}

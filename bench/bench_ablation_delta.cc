/**
 * @file
 * Ablation: the tolerance factor delta (Section 3.2.2).
 *
 * The paper argues that small delta makes cluster agents react faster
 * but causes frequent V-F transitions (thermal cycling), while large
 * delta is sluggish.  This bench sweeps delta on a medium workload
 * and reports QoS, power and the number of V-F transitions.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::printf("Ablation: tolerance factor delta "
                "(workload m2, 300 s, no TDP)\n\n");

    const auto& set = workload::workload_set("m2");
    struct Cell {
        bool rounding;
        double delta;
    };
    std::vector<Cell> grid;
    for (bool rounding : {false, true}) {
        for (double delta : {0.05, 0.1, 0.2, 0.4, 0.8})
            grid.push_back({rounding, delta});
    }
    std::vector<std::function<sim::RunSummary()>> cells;
    for (const Cell& cell : grid) {
        cells.push_back([&set, cell]() {
            market::PpmGovernorConfig cfg;
            cfg.market.tolerance = cell.delta;
            cfg.market.demand_rounding = cell.rounding;
            for (const auto& m : set.members) {
                cfg.big_speedup.push_back(
                    workload::profile(m.bench, m.input).big_speedup);
            }
            sim::SimConfig sim_cfg;
            sim_cfg.duration = 300 * kSecond;
            sim::Simulation sim(
                hw::tc2_chip(), workload::instantiate(set, 42),
                std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
            return sim.run();
        });
    }
    const auto results =
        bench::run_cells<sim::RunSummary>(cells,
                                          bench::jobs_arg(argc, argv));

    Table table({"delta", "rounding", "QoS miss", "avg power [W]",
                 "V-F transitions", "migrations"});
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const sim::RunSummary& s = results[i];
        table.add_row({fmt_double(grid[i].delta, 2),
                       grid[i].rounding ? "on" : "off",
                       fmt_percent(s.any_below_miss),
                       fmt_double(s.avg_power, 2),
                       std::to_string(s.vf_transitions),
                       std::to_string(s.migrations)});
    }
    table.print(std::cout);
    std::printf("\nexpected shape (rounding off, the paper's raw "
                "dynamics): smaller delta ->\nmore V-F transitions "
                "(thermal cycling), larger delta -> sluggish.  With\n"
                "demand rounding on, the limit cycle is damped and "
                "delta matters less.\n");
    return 0;
}

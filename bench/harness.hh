/**
 * @file
 * Thin compatibility shim: the benchmark harness lives in the library
 * proper (experiment/experiment.hh, experiment/sweep.hh) so downstream
 * code can use it too.  Adds the shared `--jobs N` argument parser
 * every bench driver wires into the sweep runner.
 */

#ifndef PPM_BENCH_HARNESS_HH
#define PPM_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "experiment/experiment.hh"
#include "experiment/sweep.hh"

namespace ppm::bench {

using RunParams = experiment::RunParams;
using RunResult = experiment::RunResult;
using SweepConfig = experiment::SweepConfig;
using SweepResult = experiment::SweepResult;
using experiment::aggregate_summaries;
using experiment::make_governor;
using experiment::run_cells;
using experiment::run_set;
using experiment::run_set_avg;
using experiment::run_specs;
using experiment::run_sweep;

/**
 * Parse `--jobs N` from a bench driver's argv.  Returns 0 (= one
 * worker per hardware thread) when absent; exits with usage on a
 * malformed value.  Results are identical for every jobs value --
 * the flag only trades wall-clock time for cores.
 */
inline int
jobs_arg(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            const int jobs = std::atoi(argv[i + 1]);
            if (jobs < 0) {
                std::fprintf(stderr, "usage: %s [--jobs N]\n", argv[0]);
                std::exit(2);
            }
            return jobs;
        }
    }
    return 0;
}

} // namespace ppm::bench

#endif // PPM_BENCH_HARNESS_HH

/**
 * @file
 * Thin compatibility shim: the benchmark harness lives in the library
 * proper (experiment/experiment.hh) so downstream code can use it too.
 */

#ifndef PPM_BENCH_HARNESS_HH
#define PPM_BENCH_HARNESS_HH

#include "experiment/experiment.hh"

namespace ppm::bench {

using RunParams = experiment::RunParams;
using RunResult = experiment::RunResult;
using experiment::make_governor;
using experiment::run_set;
using experiment::run_set_avg;
using experiment::run_specs;

} // namespace ppm::bench

#endif // PPM_BENCH_HARNESS_HH

/**
 * @file
 * Tables 1-3: the paper's running example of the market dynamics,
 * regenerated round by round on the toy single-core platform
 * (supplies {300,400,500,600} PU, delta = 0.2, priorities 2:1,
 * W_tdp = 2.25 W, W_th = 1.75 W, A_0 = $4.5).
 *
 * Demands follow the example's script: (200,100) at the start
 * (Table 1), ta rises to 300 in round 3 (Table 2), tb rises to 300 in
 * round 5 (Table 3).  The output mirrors the papers' columns.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/market.hh"

namespace {

using namespace ppm;

hw::Chip
toy_chip()
{
    hw::VfTable table(std::vector<hw::VfPoint>{
        {300, 1.0}, {400, 1.0}, {500, 1.0}, {600, 1.0}});
    return hw::Chip({hw::Chip::ClusterSpec{hw::little_core_params(),
                                           table, 1}});
}

Watts
toy_power(Pu supply)
{
    if (supply >= 600.0)
        return 3.0;
    if (supply >= 500.0)
        return 2.0;
    return 0.8;
}

/**
 * The scripted 24-round market dialogue.  Rounds feed each other, so
 * this is one sequential sweep cell returning the finished table.
 */
Table
run_dynamics_cell()
{
    hw::Chip chip = toy_chip();
    market::PpmConfig cfg;
    cfg.tolerance = 0.2;
    cfg.min_bid = 0.01;
    cfg.initial_bid = 1.0;
    cfg.initial_allowance = 4.5;
    cfg.savings_cap_frac = 10.0;
    cfg.w_tdp = 2.25;
    cfg.w_th = 1.75;
    cfg.demand_slack = 0.0;        // The running example uses exact
    cfg.money_anchor_rate = 0.0;   // deficits, no money decay,
    cfg.allowance_growth_cap = 1.0;// uncapped allowance growth, and
    cfg.emergency_savings_tax = 0.0;  // allowance contraction only.
    market::Market market(&chip, cfg);
    market.add_task(0, 2, 0);  // ta.
    market.add_task(1, 1, 0);  // tb.
    market.set_demand(0, 200.0);
    market.set_demand(1, 100.0);

    // Every row below reads the per-round MarketTelemetry snapshot
    // that round() fills -- the same record PpmGovernor streams over
    // the trace bus -- rather than poking the live market state.
    market::MarketTelemetry snap;
    market.set_telemetry(&snap);

    Table table({"Rnd", "state", "A", "a_ta", "a_tb", "b_ta", "b_tb",
                 "m_ta", "m_tb", "P_c", "PBase", "d_ta", "d_tb", "s_ta",
                 "s_tb", "S_c", "W"});

    Pu prev_supply = chip.cluster(0).supply();
    for (int round = 1; round <= 24; ++round) {
        // Scripted demand changes (Tables 2 and 3).
        if (round == 3)
            market.set_demand(0, 300.0);
        if (round == 5)
            market.set_demand(1, 300.0);
        market.set_cluster_power(0, toy_power(prev_supply));
        prev_supply = chip.cluster(0).supply();
        market.round();

        const auto& ta = snap.tasks.at(0);
        const auto& tb = snap.tasks.at(1);
        const auto& core = snap.cores.at(0);
        table.add_row({std::to_string(snap.round),
                       market::chip_state_name(snap.report.state),
                       fmt_double(snap.report.allowance, 2),
                       fmt_double(ta.allowance, 2),
                       fmt_double(tb.allowance, 2),
                       fmt_double(ta.bid, 2), fmt_double(tb.bid, 2),
                       fmt_double(ta.savings, 2),
                       fmt_double(tb.savings, 2),
                       fmt_double(core.price, 4),
                       fmt_double(core.base_price, 4),
                       fmt_double(ta.demand, 0),
                       fmt_double(tb.demand, 0),
                       fmt_double(ta.supply, 0),
                       fmt_double(tb.supply, 0),
                       fmt_double(core.supply, 0),
                       fmt_double(toy_power(core.supply), 1)});
    }
    return table;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::cout << "Tables 1-3: running example of the market dynamics\n"
              << "(toy platform: 1 core, supplies {300,400,500,600}, "
                 "delta=0.2,\n priorities ta:tb = 2:1, Wtdp=2.25W, "
                 "Wth=1.75W)\n\n";

    const std::vector<std::function<Table()>> cells{
        []() { return run_dynamics_cell(); }};
    const Table table =
        bench::run_cells<Table>(cells, bench::jobs_arg(argc, argv))[0];
    table.print(std::cout);

    std::cout << "\npaper reference points:\n"
              << "  Table 1 r1: bids (1.00, 1.00), P=0.0066, s=(150,150)\n"
              << "  Table 1 r2: bids (1.33, 0.66), s=(200,100)\n"
              << "  Table 2 r3: b_ta=1.99, P=0.0088 -> inflation, "
                 "Sc 300->400\n"
              << "  Table 3    : allowance grows on deficit, freezes in\n"
              << "               threshold (W in [1.75,2.25]), is cut by\n"
              << "               1/3 in emergency (W=3), and the system\n"
              << "               settles at Sc=500 with s=(300,200) --\n"
              << "               the high-priority task satisfied.\n";
    return 0;
}

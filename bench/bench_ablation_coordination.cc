/**
 * @file
 * Ablation: the value of coordinating the three knobs (the paper's
 * central design argument, Section 1: "employing multiple
 * energy-saving features requires a coordinated approach").
 *
 * Four PPM variants on a light, a medium and a heavy workload set:
 *   full      -- DVFS + load balancing + migration (the framework),
 *   no-lbt    -- DVFS only; tasks stay on their initial cores,
 *   no-dvfs   -- LBT only; every cluster pinned at maximum frequency,
 *   neither   -- static placement at maximum frequency.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

namespace {

using namespace ppm;

sim::RunSummary
run_variant(const workload::WorkloadSet& set, bool lbt, bool dvfs)
{
    market::PpmGovernorConfig cfg;
    cfg.enable_lbt = lbt;
    cfg.market.dvfs_enabled = dvfs;
    for (const auto& m : set.members) {
        cfg.big_speedup.push_back(
            workload::profile(m.bench, m.input).big_speedup);
    }
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 300 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), workload::instantiate(set, 42),
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);
    return sim.run();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::printf("Ablation: knob coordination (PPM variants, 300 s, "
                "no TDP, seed 42)\n\n");
    struct Variant {
        const char* name;
        bool lbt;
        bool dvfs;
    };
    const std::vector<Variant> variants{{"full", true, true},
                                        {"no-lbt", false, true},
                                        {"no-dvfs", true, false},
                                        {"neither", false, false}};
    const std::vector<const char*> set_names{"l1", "m2", "h2"};

    std::vector<std::function<sim::RunSummary()>> cells;
    for (const char* name : set_names) {
        const auto& set = workload::workload_set(name);
        for (const Variant& v : variants) {
            cells.push_back(
                [&set, v]() { return run_variant(set, v.lbt, v.dvfs); });
        }
    }
    const auto results =
        bench::run_cells<sim::RunSummary>(cells,
                                          bench::jobs_arg(argc, argv));

    Table table({"Workload", "variant", "QoS miss", "avg power [W]",
                 "migrations"});
    std::size_t i = 0;
    for (const char* name : set_names) {
        for (const Variant& v : variants) {
            const sim::RunSummary& s = results[i++];
            table.add_row({name, v.name, fmt_percent(s.any_below_miss),
                           fmt_double(s.avg_power, 2),
                           std::to_string(s.migrations)});
        }
    }
    table.print(std::cout);
    std::printf("\nexpected shape: no-lbt starves whoever shares a "
                "core with a heavy task;\nno-dvfs meets QoS by burning "
                "maximum-frequency power; only the full,\ncoordinated "
                "framework gets both.\n");
    return 0;
}

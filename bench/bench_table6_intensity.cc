/**
 * @file
 * Table 6: the nine multiprogrammed workload sets, their member
 * tasks, intensity values, and light/medium/heavy classification.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workload/sets.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    constexpr Pu kLittleMax = 3000.0;  // 3 cores x 1000 PU.

    std::cout << "Table 6: workload sets and intensity classes\n"
              << "(intensity = (sum d_A7 - S_A7max) / S_A7max, "
                 "S_A7max = 3000 PU aggregate)\n\n";

    // One cell per set (pure metadata, but on the shared plumbing so
    // every driver takes --jobs and reduces in fixed order).
    std::vector<std::function<std::vector<std::string>()>> cells;
    for (const auto& set : workload::standard_workload_sets()) {
        cells.push_back([&set]() -> std::vector<std::string> {
            std::string members;
            Pu total = 0.0;
            for (const auto& m : set.members) {
                const auto& p = workload::profile(m.bench, m.input);
                if (!members.empty())
                    members += " ";
                members += p.name;
                total += p.avg_demand_little;
            }
            const double x = workload::intensity(set, kLittleMax);
            return {set.name, members, fmt_double(total, 0),
                    fmt_double(x, 2),
                    workload::intensity_class_name(
                        workload::classify_intensity(x)),
                    workload::intensity_class_name(set.expected_class)};
        });
    }
    const auto results = bench::run_cells<std::vector<std::string>>(
        cells, bench::jobs_arg(argc, argv));

    Table table({"Set", "Members", "Sum d_A7", "Intensity", "Class",
                 "Expected"});
    for (const auto& row : results)
        table.add_row(row);
    table.print(std::cout);
    return 0;
}

/**
 * @file
 * Figure 5: average chip power consumption with NO TDP constraint for
 * PPM, HPM and HL across the nine Table 6 workload sets.
 *
 * Expected shape (paper): HL is by far the hungriest (~6 W average,
 * ondemand pegs the big cluster at maximum frequency), while HPM and
 * PPM are comparable, with PPM lowest (paper: HL 5.99 W, HPM 3.43 W,
 * PPM 2.96 W averaged over all sets).
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::printf("Figure 5: average chip power [W] (no TDP constraint)\n");
    std::printf("300 s per run, averaged over 3 seeds\n\n");

    bench::SweepConfig sweep;
    sweep.sets = workload::standard_workload_sets();
    sweep.policies = {"PPM", "HPM", "HL"};
    sweep.jobs = bench::jobs_arg(argc, argv);
    const bench::SweepResult results = bench::run_sweep(sweep);

    Table table({"Workload", "Class", "PPM", "HPM", "HL"});
    std::vector<double> sums(sweep.policies.size(), 0.0);
    for (int s = 0; s < results.n_sets(); ++s) {
        const auto& set = sweep.sets[static_cast<std::size_t>(s)];
        std::vector<std::string> row{
            set.name, workload::intensity_class_name(set.expected_class)};
        for (int p = 0; p < results.n_policies(); ++p) {
            const double power = results.averaged(s, p).avg_power;
            row.push_back(fmt_double(power, 2));
            sums[static_cast<std::size_t>(p)] += power;
        }
        table.add_row(row);
    }
    const double n = results.n_sets();
    table.add_row({"mean", "", fmt_double(sums[0] / n, 2),
                   fmt_double(sums[1] / n, 2), fmt_double(sums[2] / n, 2)});
    table.print(std::cout);
    std::printf("\npaper means: PPM 2.96 W, HPM 3.43 W, HL 5.99 W\n");
    return 0;
}

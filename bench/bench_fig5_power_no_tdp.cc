/**
 * @file
 * Figure 5: average chip power consumption with NO TDP constraint for
 * PPM, HPM and HL across the nine Table 6 workload sets.
 *
 * Expected shape (paper): HL is by far the hungriest (~6 W average,
 * ondemand pegs the big cluster at maximum frequency), while HPM and
 * PPM are comparable, with PPM lowest (paper: HL 5.99 W, HPM 3.43 W,
 * PPM 2.96 W averaged over all sets).
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main()
{
    using namespace ppm;
    std::printf("Figure 5: average chip power [W] (no TDP constraint)\n");
    std::printf("300 s per run, averaged over 3 seeds\n\n");

    Table table({"Workload", "Class", "PPM", "HPM", "HL"});
    double sum_ppm = 0.0;
    double sum_hpm = 0.0;
    double sum_hl = 0.0;
    for (const auto& set : workload::standard_workload_sets()) {
        std::vector<std::string> row{
            set.name, workload::intensity_class_name(set.expected_class)};
        for (const char* policy : {"PPM", "HPM", "HL"}) {
            bench::RunParams params;
            params.policy = policy;
            const sim::RunSummary r = bench::run_set_avg(set, params);
            row.push_back(fmt_double(r.avg_power, 2));
            if (std::string(policy) == "PPM")
                sum_ppm += r.avg_power;
            else if (std::string(policy) == "HPM")
                sum_hpm += r.avg_power;
            else
                sum_hl += r.avg_power;
        }
        table.add_row(row);
    }
    const double n = 9.0;
    table.add_row({"mean", "", fmt_double(sum_ppm / n, 2),
                   fmt_double(sum_hpm / n, 2), fmt_double(sum_hl / n, 2)});
    table.print(std::cout);
    std::printf("\npaper means: PPM 2.96 W, HPM 3.43 W, HL 5.99 W\n");
    return 0;
}

/**
 * @file
 * Thermal profile of the three policies (extension bench).
 *
 * The paper motivates the TDP constraint and the delta hysteresis
 * thermally; with the RC thermal substrate the claim gets a direct
 * readout.  Runs PPM, HPM and HL on a medium and a heavy workload
 * and reports peak temperature and completed thermal cycles.
 *
 * Expected shape: HL's pegged big cluster runs ~25 K hotter than
 * PPM's; PPM's hysteresis keeps thermal cycling low.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "experiment/experiment.hh"

int
main()
{
    using namespace ppm;
    std::printf("Thermal profile (300 s, no TDP, ambient 30 C)\n\n");
    Table table({"Workload", "Policy", "QoS miss", "avg power [W]",
                 "peak temp [C]", "thermal cycles"});
    for (const char* set_name : {"m2", "h2"}) {
        const auto& set = workload::workload_set(set_name);
        for (const char* policy : {"PPM", "HPM", "HL"}) {
            experiment::RunParams params;
            params.policy = policy;
            const auto r = experiment::run_set(set, params);
            table.add_row({set_name, policy,
                           fmt_percent(r.summary.any_below_miss),
                           fmt_double(r.summary.avg_power, 2),
                           fmt_double(r.summary.peak_temp_c, 1),
                           std::to_string(r.summary.thermal_cycles)});
        }
    }
    table.print(std::cout);
    return 0;
}

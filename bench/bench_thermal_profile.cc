/**
 * @file
 * Thermal profile of the three policies (extension bench).
 *
 * The paper motivates the TDP constraint and the delta hysteresis
 * thermally; with the RC thermal substrate the claim gets a direct
 * readout.  Runs PPM, HPM and HL on a medium and a heavy workload
 * and reports peak temperature and completed thermal cycles.
 *
 * Expected shape: HL's pegged big cluster runs ~25 K hotter than
 * PPM's; PPM's hysteresis keeps thermal cycling low.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::printf("Thermal profile (300 s, no TDP, ambient 30 C)\n\n");

    bench::SweepConfig sweep;
    sweep.sets = {workload::workload_set("m2"),
                  workload::workload_set("h2")};
    sweep.policies = {"PPM", "HPM", "HL"};
    sweep.n_seeds = 1;
    sweep.jobs = bench::jobs_arg(argc, argv);
    const bench::SweepResult results = bench::run_sweep(sweep);

    Table table({"Workload", "Policy", "QoS miss", "avg power [W]",
                 "peak temp [C]", "thermal cycles"});
    for (int s = 0; s < results.n_sets(); ++s) {
        for (int p = 0; p < results.n_policies(); ++p) {
            const sim::RunSummary& r = results.summary(s, p, 0);
            table.add_row({sweep.sets[static_cast<std::size_t>(s)].name,
                           sweep.policies[static_cast<std::size_t>(p)],
                           fmt_percent(r.any_below_miss),
                           fmt_double(r.avg_power, 2),
                           fmt_double(r.peak_temp_c, 1),
                           std::to_string(r.thermal_cycles)});
        }
    }
    table.print(std::cout);
    return 0;
}

/**
 * @file
 * Ablation: the TDP buffer zone width W_tdp - W_th (Section 3.2.3).
 *
 * The paper: a large buffer reduces oscillation around the TDP and
 * reaches stability quickly but under-utilizes the chip; a small
 * buffer utilizes the chip better at the price of oscillation.  This
 * bench sweeps the buffer width on a heavy workload under a 4 W TDP
 * and reports QoS, power, time above the TDP, and V-F transitions.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    constexpr Watts kTdp = 4.0;
    std::printf("Ablation: TDP buffer width Wtdp - Wth "
                "(workload h2, 300 s, TDP 4 W)\n\n");

    const auto& set = workload::workload_set("h2");
    const std::vector<double> buffers{0.2, 0.5, 1.0, 1.5, 2.0};
    std::vector<std::function<sim::RunSummary()>> cells;
    for (double buffer : buffers) {
        cells.push_back([&set, buffer]() {
            market::PpmGovernorConfig cfg;
            cfg.market.w_tdp = kTdp;
            cfg.market.w_th = kTdp - buffer;
            for (const auto& m : set.members) {
                cfg.big_speedup.push_back(
                    workload::profile(m.bench, m.input).big_speedup);
            }
            sim::SimConfig sim_cfg;
            sim_cfg.duration = 300 * kSecond;
            sim_cfg.tdp_for_metrics = kTdp;
            sim::Simulation sim(
                hw::tc2_chip(), workload::instantiate(set, 42),
                std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
            return sim.run();
        });
    }
    const auto results =
        bench::run_cells<sim::RunSummary>(cells,
                                          bench::jobs_arg(argc, argv));

    Table table({"buffer [W]", "QoS miss", "avg power [W]",
                 "time > TDP", "V-F transitions"});
    for (std::size_t i = 0; i < buffers.size(); ++i) {
        const sim::RunSummary& s = results[i];
        table.add_row({fmt_double(buffers[i], 1),
                       fmt_percent(s.any_below_miss),
                       fmt_double(s.avg_power, 2),
                       fmt_percent(s.over_tdp_fraction),
                       std::to_string(s.vf_transitions)});
    }
    table.print(std::cout);
    std::printf("\nexpected shape: wider buffer -> less oscillation "
                "above the TDP but\nlower utilization (higher QoS "
                "miss); narrower buffer -> the reverse.\n");
    return 0;
}

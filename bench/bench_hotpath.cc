/**
 * @file
 * Hot-path microbenchmarks with an allocation counter: the per-tick
 * cost of `Simulation::step()` end-to-end, `Scheduler::tick()`, the
 * `TraceBus` record paths, and one `Market::round()` at the paper's
 * Table-7 chip shapes.  Every future PR compares against the JSON this
 * driver emits (scripts/bench_hotpath.sh -> BENCH_hotpath.json); the
 * acceptance bar for hot-path work is tracked on the
 * BM_SimulationStep end-to-end numbers.
 *
 * Besides wall-clock, each step/tick benchmark reports
 * `allocs_per_iter`: global heap allocations per measured iteration,
 * counted by overriding the global operator new in this binary.  A
 * steady-state tick (no bid round due) must stay at 0.
 *
 * Like bench_table7_scalability, this driver intentionally stays off
 * the experiment::Sweep runner: co-running cells would corrupt the
 * wall-clock timings.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "hw/platform.hh"
#include "market/market.hh"
#include "market/ppm_governor.hh"
#include "metrics/telemetry.hh"
#include "sched/scheduler.hh"
#include "sim/simulation.hh"
#include "workload/task.hh"

// ---------------------------------------------------------------------------
// Global allocation counter.  Counts every operator-new in the process,
// so benchmarks bracket their measured loop with alloc_count() reads.
// Both new and delete forward to malloc/free, so the pairing GCC's
// -Wmismatched-new-delete flags after inlining is actually consistent.
// ---------------------------------------------------------------------------
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<long> g_allocs{0};

long
alloc_count()
{
    return g_allocs.load(std::memory_order_relaxed);
}
} // namespace

void*
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void*
operator new(std::size_t n, std::align_val_t align)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t a = static_cast<std::size_t>(align);
    const std::size_t rounded = (n + a - 1) / a * a;
    if (void* p = std::aligned_alloc(a, rounded ? rounded : a))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using namespace ppm;

/** Sink that swallows records: tracing enabled, I/O cost excluded. */
class NullSink : public metrics::TraceSink
{
  public:
    void sample(const std::string&, SimTime, double) override {}
    void event(const metrics::TraceEvent&) override {}
};

/** Random Table-7-style workload: demands uniform in [10, 50] PU. */
std::vector<workload::TaskSpec>
table7_specs(int tasks)
{
    Rng rng(2014);
    std::vector<workload::TaskSpec> specs;
    specs.reserve(static_cast<std::size_t>(tasks));
    for (int t = 0; t < tasks; ++t) {
        std::string name = "t";
        name += std::to_string(t);
        specs.push_back(workload::steady_task_spec(
            name, 1 + static_cast<int>(rng.uniform_int(0, 6)),
            rng.uniform(10.0, 50.0)));
    }
    return specs;
}

/** An end-to-end PPM simulation on a synthetic V x C chip. */
struct SimScenario {
    SimScenario(int clusters, int cores, int tasks, bool traced,
                SimTime bid_period = 0)
    {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = 1e9;
        cfg.market.w_th = 1e9 - 0.5;
        if (bid_period > 0)
            cfg.bid_period = bid_period;
        sim::SimConfig sim_cfg;
        sim_cfg.duration = 1LL << 60;
        sim = std::make_unique<sim::Simulation>(
            hw::synthetic_chip(clusters, cores), table7_specs(tasks),
            std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
        if (traced)
            sim->bus().add_sink(std::make_unique<NullSink>());
        // Warm up past the QoS warmup, the first trace samples and a
        // few governor epochs so the measured loop sees steady state.
        for (int i = 0; i < 3000; ++i)
            sim->step();
    }

    std::unique_ptr<sim::Simulation> sim;
};

void
set_alloc_counter(benchmark::State& state, long allocs)
{
    state.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(allocs) /
        static_cast<double>(state.iterations()));
}

/**
 * One full Simulation::step() -- scheduler tick, power/thermal/QoS
 * accounting, trace sampling, and the governor's bid rounds at their
 * natural cadence (50 ms for the 20 Hz target heart rate).
 */
void
BM_SimulationStep(benchmark::State& state)
{
    const int tasks = static_cast<int>(state.range(0)) *
        static_cast<int>(state.range(1)) *
        static_cast<int>(state.range(2));
    SimScenario s(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)), tasks,
                  state.range(3) != 0);
    const long before = alloc_count();
    for (auto _ : state)
        s.sim->step();
    set_alloc_counter(state, alloc_count() - before);
    state.SetItemsProcessed(state.iterations() * tasks);
    state.SetLabel("V=" + std::to_string(state.range(0)) +
                   " C=" + std::to_string(state.range(1)) +
                   " tasks=" + std::to_string(tasks) +
                   (state.range(3) ? " traced" : " untraced"));
}

/**
 * A steady-state tick: same end-to-end step, but the bid period is
 * pushed out so no market round or LBT epoch falls inside the
 * measured window.  This is the path that must not allocate.
 */
void
BM_SimulationStepSteady(benchmark::State& state)
{
    const int tasks = static_cast<int>(state.range(0)) *
        static_cast<int>(state.range(1)) *
        static_cast<int>(state.range(2));
    SimScenario s(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)), tasks,
                  state.range(3) != 0, /*bid_period=*/3600 * kSecond);
    const long before = alloc_count();
    for (auto _ : state)
        s.sim->step();
    set_alloc_counter(state, alloc_count() - before);
    state.SetItemsProcessed(state.iterations() * tasks);
    state.SetLabel("V=" + std::to_string(state.range(0)) +
                   " C=" + std::to_string(state.range(1)) +
                   " tasks=" + std::to_string(tasks) +
                   (state.range(3) ? " traced" : " untraced"));
}

/** Scheduler::tick alone: water-filling over every core. */
void
BM_SchedulerTick(benchmark::State& state)
{
    const int clusters = static_cast<int>(state.range(0));
    const int cores = static_cast<int>(state.range(1));
    const int tasks = clusters * cores * static_cast<int>(state.range(2));
    hw::Chip chip = hw::synthetic_chip(clusters, cores);
    for (ClusterId v = 0; v < chip.num_clusters(); ++v)
        chip.cluster(v).set_level(chip.cluster(v).vf().levels() / 2);
    sched::Scheduler sched(&chip, hw::MigrationModel{});
    const auto specs = table7_specs(tasks);
    std::vector<std::unique_ptr<workload::Task>> owned;
    for (int t = 0; t < tasks; ++t) {
        owned.push_back(std::make_unique<workload::Task>(
            t, specs[static_cast<std::size_t>(t)]));
        sched.add_task(owned.back().get(),
                       static_cast<CoreId>(t % chip.num_cores()));
    }
    SimTime now = 0;
    for (int i = 0; i < 100; ++i, now += kMillisecond)
        sched.tick(now, kMillisecond);  // Warm scratch state.
    const long before = alloc_count();
    for (auto _ : state) {
        sched.tick(now, kMillisecond);
        now += kMillisecond;
    }
    set_alloc_counter(state, alloc_count() - before);
    state.SetItemsProcessed(state.iterations() * tasks);
    state.SetLabel("V=" + std::to_string(clusters) +
                   " C=" + std::to_string(cores) +
                   " tasks=" + std::to_string(tasks));
}

/** String-keyed TraceBus sample: the compatibility path. */
void
BM_TraceBusSampleString(benchmark::State& state)
{
    metrics::TraceBus bus;
    bus.add_sink(std::make_unique<NullSink>());
    const std::string series = "cluster0_mhz";
    SimTime t = 0;
    const long before = alloc_count();
    for (auto _ : state) {
        bus.sample(series, t, 1.5);
        t += kMillisecond;
    }
    set_alloc_counter(state, alloc_count() - before);
}

/** String-keyed counter bump: map lookup per record. */
void
BM_TraceBusCountString(benchmark::State& state)
{
    metrics::TraceBus bus;
    bus.add_sink(std::make_unique<NullSink>());
    const std::string name = "vf_steps_cluster0";
    const long before = alloc_count();
    for (auto _ : state)
        bus.count(name);
    set_alloc_counter(state, alloc_count() - before);
    benchmark::DoNotOptimize(bus.counter(name));
}

/** One market round at the Table-7 16-task shape. */
void
BM_MarketRound(benchmark::State& state)
{
    hw::Chip chip = hw::synthetic_chip(static_cast<int>(state.range(0)),
                                       static_cast<int>(state.range(1)));
    market::PpmConfig cfg;
    cfg.w_tdp = 1e9;
    cfg.w_th = 1e9 - 0.5;
    market::Market market(&chip, cfg);
    Rng rng(2014);
    const int tasks_per_core = static_cast<int>(state.range(2));
    TaskId id = 0;
    for (CoreId c = 0; c < chip.num_cores(); ++c) {
        for (int t = 0; t < tasks_per_core; ++t) {
            market.add_task(id,
                            1 + static_cast<int>(rng.uniform_int(0, 6)),
                            c);
            market.set_demand(id, rng.uniform(10.0, 50.0));
            ++id;
        }
    }
    for (ClusterId v = 0; v < chip.num_clusters(); ++v)
        market.set_cluster_power(v, rng.uniform(0.1, 2.0));
    market.round();
    market.round();
    const long before = alloc_count();
    for (auto _ : state)
        benchmark::DoNotOptimize(market.round());
    set_alloc_counter(state, alloc_count() - before);
    state.SetLabel("tasks=" + std::to_string(id));
}

/**
 * A complete run (construction + Simulation::run + summary) with the
 * macro-stepping engine on or off.  Unlike the step() benchmarks,
 * this exercises the event-horizon time advance: with `macro` set the
 * engine coalesces every quiescent inter-epoch gap, so the per-tick
 * equivalent cost (items are simulated ticks) is the number that must
 * beat BM_SimulationStep by the PR's 5x bar.  The traced variant
 * shows the horizon being capped at the trace sampling period.
 */
void
BM_EndToEndRun(benchmark::State& state)
{
    const int clusters = static_cast<int>(state.range(0));
    const int cores = static_cast<int>(state.range(1));
    const int tasks =
        clusters * cores * static_cast<int>(state.range(2));
    const bool macro = state.range(3) != 0;
    const bool traced = state.range(4) != 0;
    const SimTime duration = 30 * kSecond;
    const long ticks = duration / kMillisecond;
    for (auto _ : state) {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = 1e9;
        cfg.market.w_th = 1e9 - 0.5;
        sim::SimConfig sim_cfg;
        sim_cfg.duration = duration;
        sim_cfg.macro_step = macro;
        sim::Simulation sim(
            hw::synthetic_chip(clusters, cores), table7_specs(tasks),
            std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
        if (traced)
            sim.bus().add_sink(std::make_unique<NullSink>());
        benchmark::DoNotOptimize(sim.run());
    }
    // items/s = simulated ticks per wall second, comparable across
    // the macro/per-tick variants and against BM_SimulationStep.
    state.SetItemsProcessed(state.iterations() * ticks);
    state.SetLabel("V=" + std::to_string(clusters) +
                   " C=" + std::to_string(cores) +
                   " tasks=" + std::to_string(tasks) +
                   (macro ? " macro" : " per-tick") +
                   (traced ? " traced" : " untraced"));
}

void
hotpath_args(benchmark::internal::Benchmark* b)
{
    // (V, C, T, traced): the Table-7 16-task shape plus one larger
    // round for trend context.
    b->ArgNames({"v", "c", "t", "traced"});
    b->Args({2, 4, 2, 0});
    b->Args({2, 4, 2, 1});
    b->Args({4, 8, 2, 1});
    b->Unit(benchmark::kMicrosecond);
}

BENCHMARK(BM_SimulationStep)->Apply(hotpath_args);
BENCHMARK(BM_SimulationStepSteady)->Apply(hotpath_args);
BENCHMARK(BM_SchedulerTick)
    ->ArgNames({"v", "c", "t"})
    ->Args({2, 4, 2})
    ->Args({4, 8, 4})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TraceBusSampleString);
BENCHMARK(BM_TraceBusCountString);
BENCHMARK(BM_MarketRound)
    ->ArgNames({"v", "c", "t"})
    ->Args({2, 4, 2})
    ->Args({16, 8, 8})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_EndToEndRun)
    ->ArgNames({"v", "c", "t", "macro", "traced"})
    ->Args({2, 4, 2, 0, 0})   // per-tick baseline, 16 tasks
    ->Args({2, 4, 2, 1, 0})   // macro-stepping, 16 tasks
    ->Args({2, 4, 2, 1, 1})   // macro + trace sink (horizon capped)
    ->Args({4, 8, 2, 1, 0})   // macro, 64 tasks
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * Figure 4: percentage of time the reference heart-rate range of any
 * task in the workload is not met, with NO TDP constraint, for PPM,
 * HPM and HL across the nine Table 6 workload sets.
 *
 * Expected shape (paper): HL wins on light sets (it eagerly migrates
 * everything to the big cluster); PPM wins on medium and heavy sets.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::printf("Figure 4: %% of time reference heart rate missed "
                "(no TDP constraint)\n");
    std::printf("300 s per run, averaged over 3 seeds\n\n");

    bench::SweepConfig sweep;
    sweep.sets = workload::standard_workload_sets();
    sweep.policies = {"PPM", "HPM", "HL"};
    sweep.jobs = bench::jobs_arg(argc, argv);
    const bench::SweepResult results = bench::run_sweep(sweep);

    Table table({"Workload", "Class", "PPM", "HPM", "HL"});
    for (int s = 0; s < results.n_sets(); ++s) {
        const auto& set = sweep.sets[static_cast<std::size_t>(s)];
        std::vector<std::string> row{
            set.name, workload::intensity_class_name(set.expected_class)};
        for (int p = 0; p < results.n_policies(); ++p)
            row.push_back(fmt_percent(results.averaged(s, p).any_below_miss));
        table.add_row(row);
    }
    table.print(std::cout);
    return 0;
}

/**
 * @file
 * Figure 4: percentage of time the reference heart-rate range of any
 * task in the workload is not met, with NO TDP constraint, for PPM,
 * HPM and HL across the nine Table 6 workload sets.
 *
 * Expected shape (paper): HL wins on light sets (it eagerly migrates
 * everything to the big cluster); PPM wins on medium and heavy sets.
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"

int
main()
{
    using namespace ppm;
    std::printf("Figure 4: %% of time reference heart rate missed "
                "(no TDP constraint)\n");
    std::printf("300 s per run, averaged over 3 seeds\n\n");

    Table table({"Workload", "Class", "PPM", "HPM", "HL"});
    for (const auto& set : workload::standard_workload_sets()) {
        std::vector<std::string> row{
            set.name, workload::intensity_class_name(set.expected_class)};
        for (const char* policy : {"PPM", "HPM", "HL"}) {
            bench::RunParams params;
            params.policy = policy;
            const sim::RunSummary r = bench::run_set_avg(set, params);
            row.push_back(fmt_percent(r.any_below_miss));
        }
        table.add_row(row);
    }
    table.print(std::cout);
    return 0;
}

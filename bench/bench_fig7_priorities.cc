/**
 * @file
 * Figure 7: effect of task priorities.  swaptions_native and
 * bodytrack_native are pinned to one LITTLE core with the LBT module
 * disabled (as in the paper's setup), and run twice: with equal
 * priorities (7a) and with swaptions at priority 7 (7b).
 *
 * Expected shape (paper): with equal priorities both tasks spend a
 * similar share of time outside the reference range (29.7% / 31.1%
 * on their platform); raising swaptions' priority to 7 collapses its
 * miss time (7.5%) while bodytrack's roughly doubles (57%).
 *
 * The two demands are scaled so that the pinned core sits at the
 * contention boundary (their sum crosses the core's maximum supply
 * as bodytrack's phases swing), which is the regime the paper's
 * platform exhibited; the calibration is documented in
 * EXPERIMENTS.md.
 *
 * Writes fig7a.csv / fig7b.csv with per-second normalized heart
 * rates, and prints the miss-time summary.
 */

#include <fstream>
#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/benchmarks.hh"

namespace {

using namespace ppm;

/** Scale a spec's per-phase work (and hence its demand) by `factor`. */
workload::TaskSpec
scaled(workload::TaskSpec spec, double factor)
{
    for (auto& phase : spec.phases) {
        phase.work_per_hb_little *= factor;
        phase.work_per_hb_big *= factor;
    }
    return spec;
}

sim::RunSummary
run_case(int prio_swaptions, int prio_bodytrack, const char* csv_path)
{
    // swaptions ~550 PU steady, bodytrack ~450 PU +/-25%: their sum
    // crosses the LITTLE core's 1000 PU as bodytrack's phases swing.
    std::vector<workload::TaskSpec> specs{
        scaled(workload::make_task_spec(workload::Benchmark::kSwaptions,
                                        workload::Input::kNative,
                                        prio_swaptions, /*seed=*/1,
                                        400 * kSecond),
               550.0 / 760.0),
        scaled(workload::make_task_spec(workload::Benchmark::kBodytrack,
                                        workload::Input::kNative,
                                        prio_bodytrack, /*seed=*/2,
                                        400 * kSecond),
               450.0 / 720.0),
    };
    market::PpmGovernorConfig cfg;
    cfg.enable_lbt = false;  // Pinned, as in the paper's experiment.
    cfg.big_speedup = {2.0, 1.9};

    sim::SimConfig sim_cfg;
    sim_cfg.duration = 300 * kSecond;
    sim_cfg.trace = true;
    sim_cfg.placement = {0, 0};  // Both on LITTLE core 0.
    sim::Simulation simulation(
        hw::tc2_chip(), specs,
        std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
    const sim::RunSummary summary = simulation.run();

    std::ofstream csv(csv_path);
    simulation.recorder().write_csv(csv);
    return summary;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::cout << "Figure 7: normalized performance under priorities\n"
              << "swaptions_n + bodytrack_n pinned to one LITTLE core, "
                 "LBT off, 300 s\n\n";

    // The two priority cases are independent cells (each writes its
    // own CSV, so they can run on different workers).
    const std::vector<std::function<sim::RunSummary()>> cells{
        []() { return run_case(1, 1, "fig7a.csv"); },
        []() { return run_case(7, 1, "fig7b.csv"); },
    };
    const auto results =
        bench::run_cells<sim::RunSummary>(cells,
                                          bench::jobs_arg(argc, argv));
    const sim::RunSummary& a = results[0];
    const sim::RunSummary& b = results[1];

    Table table({"Case", "Priorities", "swaptions outside", "bodytrack "
                 "outside"});
    table.add_row({"7a", "1:1", fmt_percent(a.task_outside[0]),
                   fmt_percent(a.task_outside[1])});
    table.add_row({"7b", "7:1", fmt_percent(b.task_outside[0]),
                   fmt_percent(b.task_outside[1])});
    table.print(std::cout);

    std::cout << "\npaper: 7a = 29.7% / 31.1%; 7b = 7.5% / 57%\n"
              << "time series written to fig7a.csv / fig7b.csv\n";
    return 0;
}

/**
 * @file
 * Table 4: conversion from heart rate to demand.  Reproduces the
 * paper's three program phases with a reference range of
 * [24, 30] hb/s (target 27) and prints the estimated demand next to
 * the paper's value.
 */

#include <iostream>

#include "common/table.hh"
#include "harness.hh"
#include "workload/hrm.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    struct PhaseRow {
        int phase;
        double current_hr;
        double mhz;
        double utilization;
        Pu paper_demand;
    };
    // Rows exactly as in Table 4.
    const std::vector<PhaseRow> rows{
        {1, 15.0, 500.0, 1.00, 900.0},
        {2, 10.0, 800.0, 0.50, 1080.0},
        {3, 40.0, 1000.0, 1.00, 675.0},
    };

    std::cout << "Table 4: heart rate -> demand conversion "
                 "(range [24,30] hb/s, target 27)\n\n";

    // Each phase's HRM feed is an independent cell.
    std::vector<std::function<std::vector<std::string>()>> cells;
    for (const PhaseRow& row : rows) {
        cells.push_back([row]() -> std::vector<std::string> {
            workload::HeartRateMonitor hrm(24.0, 30.0);
            const Pu supply = row.mhz * row.utilization;
            // Feed one window of steady observation.
            for (SimTime t = 10 * kMillisecond; t <= kSecond;
                 t += 10 * kMillisecond) {
                hrm.record(t, row.current_hr * 0.01, supply * 0.01);
            }
            const Pu demand = hrm.estimate_demand(kSecond, 5000.0);
            return {std::to_string(row.phase),
                    fmt_double(row.current_hr, 0),
                    fmt_double(row.mhz, 0),
                    fmt_double(row.utilization * 100.0, 0),
                    fmt_double(supply, 0), fmt_double(demand, 0),
                    fmt_double(row.paper_demand, 0)};
        });
    }
    const auto results = bench::run_cells<std::vector<std::string>>(
        cells, bench::jobs_arg(argc, argv));

    Table table({"Phase", "hr (hb/s)", "freq (MHz)", "util (%)",
                 "s (PU)", "d est (PU)", "d paper (PU)"});
    for (const auto& row : results)
        table.add_row(row);
    table.print(std::cout);
    return 0;
}

/**
 * @file
 * Ablation: what the LBT module's cross-core-type demand knowledge is
 * worth (Section 5.2 discusses the off-line profiling step; its
 * elimination through an online model is the paper's stated future
 * work).  Three PPM variants on the Table 6 sets:
 *
 *   offline  -- per-task speedups from the benchmark profiles
 *               (the paper's configuration),
 *   online   -- speedups learned at runtime from HRM observations,
 *   none     -- a single default speedup for every task.
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

namespace {

using namespace ppm;

sim::RunSummary
run_variant(const workload::WorkloadSet& set, const char* variant,
            std::uint64_t seed)
{
    market::PpmGovernorConfig cfg;
    if (std::string(variant) == "offline") {
        for (const auto& m : set.members) {
            cfg.big_speedup.push_back(
                workload::profile(m.bench, m.input).big_speedup);
        }
    } else if (std::string(variant) == "online") {
        cfg.online_speedup = true;
    }  // "none": defaults only.
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 300 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), workload::instantiate(set, seed),
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);
    return sim.run();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::printf("Ablation: offline vs online vs no cross-core-type "
                "profiling\n(PPM, 300 s, no TDP, averaged over 2 "
                "seeds)\n\n");
    const std::vector<const char*> set_names{"l2", "m2", "h2"};
    const std::vector<const char*> variants{"offline", "online", "none"};
    const std::vector<std::uint64_t> seeds{42ull, 142ull};

    // One cell per (set, variant, seed), enumerated seed-innermost so
    // the seed pairs sit adjacent for the per-variant reduction.
    std::vector<std::function<sim::RunSummary()>> cells;
    for (const char* name : set_names) {
        const auto& set = workload::workload_set(name);
        for (const char* variant : variants) {
            for (std::uint64_t seed : seeds) {
                cells.push_back([&set, variant, seed]() {
                    return run_variant(set, variant, seed);
                });
            }
        }
    }
    const auto results =
        bench::run_cells<sim::RunSummary>(cells,
                                          bench::jobs_arg(argc, argv));

    Table table({"Workload", "offline miss", "online miss", "none miss",
                 "offline W", "online W", "none W"});
    std::size_t i = 0;
    for (const char* name : set_names) {
        std::vector<std::string> misses;
        std::vector<std::string> powers;
        for (std::size_t v = 0; v < variants.size(); ++v) {
            std::vector<sim::RunSummary> per_seed;
            for (std::size_t s = 0; s < seeds.size(); ++s)
                per_seed.push_back(results[i++]);
            const sim::RunSummary avg = bench::aggregate_summaries(per_seed);
            misses.push_back(fmt_percent(avg.any_below_miss));
            powers.push_back(fmt_double(avg.avg_power, 2));
        }
        table.add_row({name, misses[0], misses[1], misses[2], powers[0],
                       powers[1], powers[2]});
    }
    table.print(std::cout);
    std::printf("\nexpected shape: offline and online comparable; "
                "'none' mis-speculates\ncross-cluster demands and "
                "loses QoS or power on heterogeneous sets.\n");
    return 0;
}

/**
 * @file
 * Ablation: what the LBT module's cross-core-type demand knowledge is
 * worth (Section 5.2 discusses the off-line profiling step; its
 * elimination through an online model is the paper's stated future
 * work).  Three PPM variants on the Table 6 sets:
 *
 *   offline  -- per-task speedups from the benchmark profiles
 *               (the paper's configuration),
 *   online   -- speedups learned at runtime from HRM observations,
 *   none     -- a single default speedup for every task.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

namespace {

using namespace ppm;

sim::RunSummary
run_variant(const workload::WorkloadSet& set, const char* variant,
            std::uint64_t seed)
{
    market::PpmGovernorConfig cfg;
    if (std::string(variant) == "offline") {
        for (const auto& m : set.members) {
            cfg.big_speedup.push_back(
                workload::profile(m.bench, m.input).big_speedup);
        }
    } else if (std::string(variant) == "online") {
        cfg.online_speedup = true;
    }  // "none": defaults only.
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 300 * kSecond;
    sim::Simulation sim(hw::tc2_chip(), workload::instantiate(set, seed),
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);
    return sim.run();
}

} // namespace

int
main()
{
    using namespace ppm;
    std::printf("Ablation: offline vs online vs no cross-core-type "
                "profiling\n(PPM, 300 s, no TDP, averaged over 2 "
                "seeds)\n\n");
    Table table({"Workload", "offline miss", "online miss", "none miss",
                 "offline W", "online W", "none W"});
    for (const char* name : {"l2", "m2", "h2"}) {
        const auto& set = workload::workload_set(name);
        double miss[3] = {0, 0, 0};
        double power[3] = {0, 0, 0};
        int i = 0;
        for (const char* variant : {"offline", "online", "none"}) {
            for (std::uint64_t seed : {42ull, 142ull}) {
                const auto s = run_variant(set, variant, seed);
                miss[i] += s.any_below_miss / 2.0;
                power[i] += s.avg_power / 2.0;
            }
            ++i;
        }
        table.add_row({name, fmt_percent(miss[0]), fmt_percent(miss[1]),
                       fmt_percent(miss[2]), fmt_double(power[0], 2),
                       fmt_double(power[1], 2), fmt_double(power[2], 2)});
    }
    table.print(std::cout);
    std::printf("\nexpected shape: offline and online comparable; "
                "'none' mis-speculates\ncross-cluster demands and "
                "loses QoS or power on heterogeneous sets.\n");
    return 0;
}

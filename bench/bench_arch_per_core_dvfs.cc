/**
 * @file
 * Architecture what-if (extension bench): per-cluster vs per-core
 * DVFS under PPM.
 *
 * The paper's platform can only scale voltage/frequency per cluster,
 * which forces every core in a cluster to the constrained core's
 * level -- the reason the LBT module's balancing matters so much.
 * This bench reruns PPM on an architecture with the same core types
 * and counts but one core per V-F domain ("per-core DVFS"), isolating
 * how much energy the shared domain costs.
 *
 * Expected shape: equal or better QoS and lower power with per-core
 * DVFS (unconstrained cores stop over-clocking), at the price of more
 * V-F regulators in silicon.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "common/table.hh"
#include "harness.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

namespace {

using namespace ppm;

/** TC2 core mix with one core per V-F domain. */
hw::Chip
per_core_dvfs_chip()
{
    std::vector<hw::Chip::ClusterSpec> specs;
    for (int i = 0; i < 3; ++i) {
        specs.push_back(hw::Chip::ClusterSpec{hw::little_core_params(),
                                              hw::little_vf_table(), 1});
    }
    for (int i = 0; i < 2; ++i) {
        specs.push_back(hw::Chip::ClusterSpec{hw::big_core_params(),
                                              hw::big_vf_table(), 1});
    }
    return hw::Chip(specs);
}

sim::RunSummary
run_on(hw::Chip chip, const workload::WorkloadSet& set,
       std::uint64_t seed)
{
    market::PpmGovernorConfig cfg;
    for (const auto& m : set.members) {
        cfg.big_speedup.push_back(
            workload::profile(m.bench, m.input).big_speedup);
    }
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 300 * kSecond;
    sim::Simulation sim(std::move(chip), workload::instantiate(set, seed),
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);
    return sim.run();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::printf("Per-cluster vs per-core DVFS under PPM "
                "(300 s, no TDP, seed 42)\n\n");
    const std::vector<const char*> set_names{"l1", "m2", "h2"};

    // Two cells per set: the TC2 shared-domain chip, then the
    // per-core-domain chip.
    std::vector<std::function<sim::RunSummary()>> cells;
    for (const char* name : set_names) {
        const auto& set = workload::workload_set(name);
        cells.push_back(
            [&set]() { return run_on(hw::tc2_chip(), set, 42); });
        cells.push_back(
            [&set]() { return run_on(per_core_dvfs_chip(), set, 42); });
    }
    const auto results =
        bench::run_cells<sim::RunSummary>(cells,
                                          bench::jobs_arg(argc, argv));

    Table table({"Workload", "domain", "QoS miss", "avg power [W]",
                 "V-F transitions"});
    std::size_t i = 0;
    for (const char* name : set_names) {
        for (const char* domain : {"per-cluster", "per-core"}) {
            const sim::RunSummary& s = results[i++];
            table.add_row({name, domain, fmt_percent(s.any_below_miss),
                           fmt_double(s.avg_power, 2),
                           std::to_string(s.vf_transitions)});
        }
    }
    table.print(std::cout);
    return 0;
}

# Empty compiler generated dependencies file for bench_arch_per_core_dvfs.
# This may be replaced when dependencies are built.

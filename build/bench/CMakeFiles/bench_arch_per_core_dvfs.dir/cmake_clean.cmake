file(REMOVE_RECURSE
  "CMakeFiles/bench_arch_per_core_dvfs.dir/bench_arch_per_core_dvfs.cc.o"
  "CMakeFiles/bench_arch_per_core_dvfs.dir/bench_arch_per_core_dvfs.cc.o.d"
  "bench_arch_per_core_dvfs"
  "bench_arch_per_core_dvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arch_per_core_dvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

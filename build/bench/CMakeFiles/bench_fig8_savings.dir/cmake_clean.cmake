file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_savings.dir/bench_fig8_savings.cc.o"
  "CMakeFiles/bench_fig8_savings.dir/bench_fig8_savings.cc.o.d"
  "bench_fig8_savings"
  "bench_fig8_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_power_no_tdp.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table6_intensity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_intensity.dir/bench_table6_intensity.cc.o"
  "CMakeFiles/bench_table6_intensity.dir/bench_table6_intensity.cc.o.d"
  "bench_table6_intensity"
  "bench_table6_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

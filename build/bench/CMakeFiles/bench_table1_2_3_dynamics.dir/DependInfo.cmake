
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_2_3_dynamics.cc" "bench/CMakeFiles/bench_table1_2_3_dynamics.dir/bench_table1_2_3_dynamics.cc.o" "gcc" "bench/CMakeFiles/bench_table1_2_3_dynamics.dir/bench_table1_2_3_dynamics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiment/CMakeFiles/ppm_experiment.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/ppm_market.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ppm_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ppm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ppm_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ppm_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ppm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ppm_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ppm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

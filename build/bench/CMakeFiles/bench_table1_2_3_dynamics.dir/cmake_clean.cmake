file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_2_3_dynamics.dir/bench_table1_2_3_dynamics.cc.o"
  "CMakeFiles/bench_table1_2_3_dynamics.dir/bench_table1_2_3_dynamics.cc.o.d"
  "bench_table1_2_3_dynamics"
  "bench_table1_2_3_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_2_3_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

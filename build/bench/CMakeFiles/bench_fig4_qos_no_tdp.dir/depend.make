# Empty dependencies file for bench_fig4_qos_no_tdp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_qos_no_tdp.dir/bench_fig4_qos_no_tdp.cc.o"
  "CMakeFiles/bench_fig4_qos_no_tdp.dir/bench_fig4_qos_no_tdp.cc.o.d"
  "bench_fig4_qos_no_tdp"
  "bench_fig4_qos_no_tdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_qos_no_tdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_priorities.dir/bench_fig7_priorities.cc.o"
  "CMakeFiles/bench_fig7_priorities.dir/bench_fig7_priorities.cc.o.d"
  "bench_fig7_priorities"
  "bench_fig7_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

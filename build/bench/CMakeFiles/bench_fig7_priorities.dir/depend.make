# Empty dependencies file for bench_fig7_priorities.
# This may be replaced when dependencies are built.

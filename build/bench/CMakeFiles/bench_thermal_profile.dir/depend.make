# Empty dependencies file for bench_thermal_profile.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_thermal_profile.dir/bench_thermal_profile.cc.o"
  "CMakeFiles/bench_thermal_profile.dir/bench_thermal_profile.cc.o.d"
  "bench_thermal_profile"
  "bench_thermal_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thermal_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_qos_tdp4w.dir/bench_fig6_qos_tdp4w.cc.o"
  "CMakeFiles/bench_fig6_qos_tdp4w.dir/bench_fig6_qos_tdp4w.cc.o.d"
  "bench_fig6_qos_tdp4w"
  "bench_fig6_qos_tdp4w.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_qos_tdp4w.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

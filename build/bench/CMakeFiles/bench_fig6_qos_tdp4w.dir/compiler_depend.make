# Empty compiler generated dependencies file for bench_fig6_qos_tdp4w.
# This may be replaced when dependencies are built.

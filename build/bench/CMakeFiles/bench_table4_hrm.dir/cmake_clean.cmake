file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_hrm.dir/bench_table4_hrm.cc.o"
  "CMakeFiles/bench_table4_hrm.dir/bench_table4_hrm.cc.o.d"
  "bench_table4_hrm"
  "bench_table4_hrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_hrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

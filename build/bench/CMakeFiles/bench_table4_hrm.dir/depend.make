# Empty dependencies file for bench_table4_hrm.
# This may be replaced when dependencies are built.

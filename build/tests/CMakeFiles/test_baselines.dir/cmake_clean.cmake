file(REMOVE_RECURSE
  "CMakeFiles/test_baselines.dir/baselines/test_baseline_details.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_baseline_details.cc.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_governors.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_governors.cc.o.d"
  "CMakeFiles/test_baselines.dir/baselines/test_pid.cc.o"
  "CMakeFiles/test_baselines.dir/baselines/test_pid.cc.o.d"
  "test_baselines"
  "test_baselines.pdb"
  "test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_market.dir/market/test_governor_cadence.cc.o"
  "CMakeFiles/test_market.dir/market/test_governor_cadence.cc.o.d"
  "CMakeFiles/test_market.dir/market/test_lbt.cc.o"
  "CMakeFiles/test_market.dir/market/test_lbt.cc.o.d"
  "CMakeFiles/test_market.dir/market/test_market.cc.o"
  "CMakeFiles/test_market.dir/market/test_market.cc.o.d"
  "CMakeFiles/test_market.dir/market/test_market_semantics.cc.o"
  "CMakeFiles/test_market.dir/market/test_market_semantics.cc.o.d"
  "CMakeFiles/test_market.dir/market/test_money.cc.o"
  "CMakeFiles/test_market.dir/market/test_money.cc.o.d"
  "CMakeFiles/test_market.dir/market/test_online_estimator.cc.o"
  "CMakeFiles/test_market.dir/market/test_online_estimator.cc.o.d"
  "CMakeFiles/test_market.dir/market/test_paper_tables.cc.o"
  "CMakeFiles/test_market.dir/market/test_paper_tables.cc.o.d"
  "CMakeFiles/test_market.dir/market/test_ppm_governor.cc.o"
  "CMakeFiles/test_market.dir/market/test_ppm_governor.cc.o.d"
  "test_market"
  "test_market.pdb"
  "test_market[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_hw.dir/hw/test_migration.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_migration.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_platform.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_platform.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_power_model.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_power_model.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_power_properties.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_power_properties.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_sensors.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_sensors.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_thermal.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_thermal.cc.o.d"
  "CMakeFiles/test_hw.dir/hw/test_vf_table.cc.o"
  "CMakeFiles/test_hw.dir/hw/test_vf_table.cc.o.d"
  "test_hw"
  "test_hw.pdb"
  "test_hw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for thermal_budget.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/thermal_budget.dir/thermal_budget.cpp.o"
  "CMakeFiles/thermal_budget.dir/thermal_budget.cpp.o.d"
  "thermal_budget"
  "thermal_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/thermal_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for app_lifecycle.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/app_lifecycle.dir/app_lifecycle.cpp.o"
  "CMakeFiles/app_lifecycle.dir/app_lifecycle.cpp.o.d"
  "app_lifecycle"
  "app_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ppm_hw.dir/migration.cc.o"
  "CMakeFiles/ppm_hw.dir/migration.cc.o.d"
  "CMakeFiles/ppm_hw.dir/platform.cc.o"
  "CMakeFiles/ppm_hw.dir/platform.cc.o.d"
  "CMakeFiles/ppm_hw.dir/power_model.cc.o"
  "CMakeFiles/ppm_hw.dir/power_model.cc.o.d"
  "CMakeFiles/ppm_hw.dir/sensors.cc.o"
  "CMakeFiles/ppm_hw.dir/sensors.cc.o.d"
  "CMakeFiles/ppm_hw.dir/thermal.cc.o"
  "CMakeFiles/ppm_hw.dir/thermal.cc.o.d"
  "CMakeFiles/ppm_hw.dir/vf_table.cc.o"
  "CMakeFiles/ppm_hw.dir/vf_table.cc.o.d"
  "libppm_hw.a"
  "libppm_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ppm_hw.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libppm_hw.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/migration.cc" "src/hw/CMakeFiles/ppm_hw.dir/migration.cc.o" "gcc" "src/hw/CMakeFiles/ppm_hw.dir/migration.cc.o.d"
  "/root/repo/src/hw/platform.cc" "src/hw/CMakeFiles/ppm_hw.dir/platform.cc.o" "gcc" "src/hw/CMakeFiles/ppm_hw.dir/platform.cc.o.d"
  "/root/repo/src/hw/power_model.cc" "src/hw/CMakeFiles/ppm_hw.dir/power_model.cc.o" "gcc" "src/hw/CMakeFiles/ppm_hw.dir/power_model.cc.o.d"
  "/root/repo/src/hw/sensors.cc" "src/hw/CMakeFiles/ppm_hw.dir/sensors.cc.o" "gcc" "src/hw/CMakeFiles/ppm_hw.dir/sensors.cc.o.d"
  "/root/repo/src/hw/thermal.cc" "src/hw/CMakeFiles/ppm_hw.dir/thermal.cc.o" "gcc" "src/hw/CMakeFiles/ppm_hw.dir/thermal.cc.o.d"
  "/root/repo/src/hw/vf_table.cc" "src/hw/CMakeFiles/ppm_hw.dir/vf_table.cc.o" "gcc" "src/hw/CMakeFiles/ppm_hw.dir/vf_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppm_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libppm_common.a"
)

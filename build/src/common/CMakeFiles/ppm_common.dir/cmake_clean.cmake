file(REMOVE_RECURSE
  "CMakeFiles/ppm_common.dir/logging.cc.o"
  "CMakeFiles/ppm_common.dir/logging.cc.o.d"
  "CMakeFiles/ppm_common.dir/rng.cc.o"
  "CMakeFiles/ppm_common.dir/rng.cc.o.d"
  "CMakeFiles/ppm_common.dir/stats.cc.o"
  "CMakeFiles/ppm_common.dir/stats.cc.o.d"
  "CMakeFiles/ppm_common.dir/table.cc.o"
  "CMakeFiles/ppm_common.dir/table.cc.o.d"
  "libppm_common.a"
  "libppm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ppm_common.
# This may be replaced when dependencies are built.

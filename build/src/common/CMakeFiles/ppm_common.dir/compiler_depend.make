# Empty compiler generated dependencies file for ppm_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ppm_market.dir/lbt.cc.o"
  "CMakeFiles/ppm_market.dir/lbt.cc.o.d"
  "CMakeFiles/ppm_market.dir/market.cc.o"
  "CMakeFiles/ppm_market.dir/market.cc.o.d"
  "CMakeFiles/ppm_market.dir/online_estimator.cc.o"
  "CMakeFiles/ppm_market.dir/online_estimator.cc.o.d"
  "CMakeFiles/ppm_market.dir/ppm_governor.cc.o"
  "CMakeFiles/ppm_market.dir/ppm_governor.cc.o.d"
  "libppm_market.a"
  "libppm_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ppm_market.
# This may be replaced when dependencies are built.

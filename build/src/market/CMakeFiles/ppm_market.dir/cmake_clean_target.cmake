file(REMOVE_RECURSE
  "libppm_market.a"
)

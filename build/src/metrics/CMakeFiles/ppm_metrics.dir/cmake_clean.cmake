file(REMOVE_RECURSE
  "CMakeFiles/ppm_metrics.dir/qos.cc.o"
  "CMakeFiles/ppm_metrics.dir/qos.cc.o.d"
  "CMakeFiles/ppm_metrics.dir/recorder.cc.o"
  "CMakeFiles/ppm_metrics.dir/recorder.cc.o.d"
  "libppm_metrics.a"
  "libppm_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libppm_metrics.a"
)

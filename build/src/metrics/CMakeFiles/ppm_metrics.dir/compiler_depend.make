# Empty compiler generated dependencies file for ppm_metrics.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/qos.cc" "src/metrics/CMakeFiles/ppm_metrics.dir/qos.cc.o" "gcc" "src/metrics/CMakeFiles/ppm_metrics.dir/qos.cc.o.d"
  "/root/repo/src/metrics/recorder.cc" "src/metrics/CMakeFiles/ppm_metrics.dir/recorder.cc.o" "gcc" "src/metrics/CMakeFiles/ppm_metrics.dir/recorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ppm_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ppm_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/ppm_sched.dir/nice.cc.o"
  "CMakeFiles/ppm_sched.dir/nice.cc.o.d"
  "CMakeFiles/ppm_sched.dir/scheduler.cc.o"
  "CMakeFiles/ppm_sched.dir/scheduler.cc.o.d"
  "libppm_sched.a"
  "libppm_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ppm_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libppm_sched.a"
)

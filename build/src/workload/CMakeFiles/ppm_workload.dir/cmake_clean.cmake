file(REMOVE_RECURSE
  "CMakeFiles/ppm_workload.dir/benchmarks.cc.o"
  "CMakeFiles/ppm_workload.dir/benchmarks.cc.o.d"
  "CMakeFiles/ppm_workload.dir/hrm.cc.o"
  "CMakeFiles/ppm_workload.dir/hrm.cc.o.d"
  "CMakeFiles/ppm_workload.dir/sets.cc.o"
  "CMakeFiles/ppm_workload.dir/sets.cc.o.d"
  "CMakeFiles/ppm_workload.dir/task.cc.o"
  "CMakeFiles/ppm_workload.dir/task.cc.o.d"
  "CMakeFiles/ppm_workload.dir/trace.cc.o"
  "CMakeFiles/ppm_workload.dir/trace.cc.o.d"
  "libppm_workload.a"
  "libppm_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/benchmarks.cc" "src/workload/CMakeFiles/ppm_workload.dir/benchmarks.cc.o" "gcc" "src/workload/CMakeFiles/ppm_workload.dir/benchmarks.cc.o.d"
  "/root/repo/src/workload/hrm.cc" "src/workload/CMakeFiles/ppm_workload.dir/hrm.cc.o" "gcc" "src/workload/CMakeFiles/ppm_workload.dir/hrm.cc.o.d"
  "/root/repo/src/workload/sets.cc" "src/workload/CMakeFiles/ppm_workload.dir/sets.cc.o" "gcc" "src/workload/CMakeFiles/ppm_workload.dir/sets.cc.o.d"
  "/root/repo/src/workload/task.cc" "src/workload/CMakeFiles/ppm_workload.dir/task.cc.o" "gcc" "src/workload/CMakeFiles/ppm_workload.dir/task.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/ppm_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/ppm_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ppm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ppm_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

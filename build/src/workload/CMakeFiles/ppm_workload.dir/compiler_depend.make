# Empty compiler generated dependencies file for ppm_workload.
# This may be replaced when dependencies are built.

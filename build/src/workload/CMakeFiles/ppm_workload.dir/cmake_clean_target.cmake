file(REMOVE_RECURSE
  "libppm_workload.a"
)

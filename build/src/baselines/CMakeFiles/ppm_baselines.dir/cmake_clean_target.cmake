file(REMOVE_RECURSE
  "libppm_baselines.a"
)

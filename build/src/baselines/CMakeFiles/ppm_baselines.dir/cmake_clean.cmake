file(REMOVE_RECURSE
  "CMakeFiles/ppm_baselines.dir/hl_governor.cc.o"
  "CMakeFiles/ppm_baselines.dir/hl_governor.cc.o.d"
  "CMakeFiles/ppm_baselines.dir/hpm_governor.cc.o"
  "CMakeFiles/ppm_baselines.dir/hpm_governor.cc.o.d"
  "libppm_baselines.a"
  "libppm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

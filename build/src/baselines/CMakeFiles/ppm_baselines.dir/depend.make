# Empty dependencies file for ppm_baselines.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libppm_experiment.a"
)

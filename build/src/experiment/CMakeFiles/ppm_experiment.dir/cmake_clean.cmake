file(REMOVE_RECURSE
  "CMakeFiles/ppm_experiment.dir/experiment.cc.o"
  "CMakeFiles/ppm_experiment.dir/experiment.cc.o.d"
  "libppm_experiment.a"
  "libppm_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ppm_experiment.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ppm_sim.dir/simulation.cc.o"
  "CMakeFiles/ppm_sim.dir/simulation.cc.o.d"
  "libppm_sim.a"
  "libppm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ppm_run.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ppm_run.dir/ppm_run.cc.o"
  "CMakeFiles/ppm_run.dir/ppm_run.cc.o.d"
  "ppm_run"
  "ppm_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppm_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

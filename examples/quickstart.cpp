/**
 * @file
 * Quickstart: run the price-theory power manager (PPM) on the
 * TC2-like big.LITTLE platform with one of the paper's workload sets
 * and print a run summary.
 *
 * Usage: quickstart [set-name] [seconds]
 *   set-name  one of l1..l3, m1..m3, h1..h3 (default m2)
 *   seconds   simulated duration (default 60)
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;

    const std::string set_name = argc > 1 ? argv[1] : "m2";
    const double seconds = argc > 2 ? std::atof(argv[2]) : 60.0;

    // 1. The platform: 3x Cortex-A7-like + 2x Cortex-A15-like.
    hw::Chip chip = hw::tc2_chip();

    // 2. The workload: one of the paper's Table 6 sets.
    const workload::WorkloadSet& set = workload::workload_set(set_name);
    const auto specs = workload::instantiate(set, /*base_seed=*/42);
    std::printf("workload %s (%s, intensity %.2f): %zu tasks\n",
                set.name.c_str(),
                workload::intensity_class_name(set.expected_class),
                workload::intensity(set, 3000.0), specs.size());

    // 3. The governor: PPM with an 8 W TDP (the platform's real TDP).
    market::PpmGovernorConfig cfg;
    cfg.market.w_tdp = 8.0;
    cfg.market.w_th = 7.0;
    for (const auto& member : set.members) {
        cfg.big_speedup.push_back(
            workload::profile(member.bench, member.input).big_speedup);
    }

    // 4. Run.
    sim::SimConfig sim_cfg;
    sim_cfg.duration = static_cast<SimTime>(seconds * kSecond);
    sim::Simulation simulation(
        std::move(chip), specs,
        std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
    const sim::RunSummary summary = simulation.run();

    // 5. Report.
    std::printf("governor        : %s\n", summary.governor.c_str());
    std::printf("QoS miss (any)  : %.1f%% of time below reference range\n",
                100.0 * summary.any_below_miss);
    std::printf("avg chip power  : %.2f W\n", summary.avg_power);
    std::printf("energy          : %.1f J\n", summary.energy);
    std::printf("migrations      : %ld\n", summary.migrations);
    std::printf("V-F transitions : %ld\n", summary.vf_transitions);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::printf("  task %-16s prio %d  miss %.1f%%\n",
                    specs[i].name.c_str(), specs[i].priority,
                    100.0 * summary.task_below[i]);
    }
    return 0;
}

/**
 * @file
 * Trace replay: drive tasks from CSV demand traces instead of the
 * synthetic benchmark profiles.
 *
 * The example writes a small bursty trace to disk (as a stand-in for
 * a trace measured on a real device), loads it back through the
 * public trace API, pairs it with a steady background task, and runs
 * PPM.  Pass a path to replay your own trace
 * (two columns: time_s,demand_pu on a LITTLE core).
 *
 * Usage: trace_replay [trace.csv]
 */

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/task.hh"
#include "workload/trace.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;

    std::string path = argc > 1 ? argv[1] : "";
    if (path.empty()) {
        // No trace given: synthesize a bursty one.
        path = "demo_trace.csv";
        std::ofstream out(path);
        out << "# demo demand trace (LITTLE-core PU)\n"
               "time_s,demand_pu\n"
               "0,200\n"
               "20,650\n"
               "35,250\n"
               "50,900\n"
               "70,300\n"
               "90,150\n";
        std::printf("wrote demo trace to %s\n", path.c_str());
    }

    const auto trace = workload::load_demand_trace_file(path);
    std::printf("loaded %zu trace points from %s\n", trace.size(),
                path.c_str());

    std::vector<workload::TaskSpec> specs{
        workload::make_trace_task_spec("traced", /*priority=*/3, trace,
                                       /*big_speedup=*/1.8,
                                       /*target_hr=*/30.0),
        workload::steady_task_spec("background", 1, 350.0),
    };

    market::PpmGovernorConfig cfg;
    cfg.big_speedup = {1.8, 1.6};
    sim::SimConfig sim_cfg;
    sim_cfg.duration = 100 * kSecond;
    sim_cfg.trace = true;
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);

    std::printf("\nt[s]  traced hr  demand  |  L MHz  b MHz  power\n");
    SimTime next = 0;
    while (sim.now() < sim_cfg.duration) {
        sim.step();
        if (sim.now() >= next) {
            next += 10 * kSecond;
            workload::Task* t = sim.tasks()[0];
            std::printf("%4ld   %6.2f    %5.0f   | %5.0f  %5.0f  %.2f W\n",
                        static_cast<long>(sim.now() / kSecond),
                        t->heart_rate(sim.now()) / t->hrm().target_hr(),
                        t->true_demand(hw::CoreClass::kLittle),
                        sim.chip().cluster(0).mhz(),
                        sim.chip().cluster(1).mhz(),
                        sim.sensors().instantaneous_chip());
        }
    }

    const sim::RunSummary s = sim.summary();
    std::printf("\ntraced task miss %.1f%%, background miss %.1f%%, "
                "avg power %.2f W\n", 100.0 * s.task_below[0],
                100.0 * s.task_below[1], s.avg_power);
    return 0;
}

/**
 * @file
 * Custom platform example: the library is not limited to the TC2
 * evaluation board.  This builds a three-cluster octa-core chip
 * (4 efficiency cores + 2 mid cores + 2 performance cores, in the
 * spirit of later DynamIQ designs), defines a bespoke workload
 * through the public TaskSpec API, and runs the price-theory
 * governor on it.
 *
 * Usage: custom_platform [seconds]
 */

#include <cstdio>
#include <memory>

#include "hw/platform.hh"
#include "hw/power_model.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"

namespace {

using namespace ppm;

/** A 4+2+2 three-cluster chip with distinct V-F ranges. */
hw::Chip
octa_chip()
{
    hw::CoreTypeParams eff{"eff", hw::CoreClass::kLittle, 0.30, 0.04,
                           0.12};
    hw::CoreTypeParams mid{"mid", hw::CoreClass::kBig, 0.70, 0.12,
                           0.20};
    hw::CoreTypeParams perf{"perf", hw::CoreClass::kBig, 1.50, 0.30,
                            0.35};
    hw::VfTable eff_vf(std::vector<hw::VfPoint>{{300, 0.85},
                                                {500, 0.95},
                                                {700, 1.05},
                                                {900, 1.15},
                                                {1100, 1.25}});
    hw::VfTable mid_vf(std::vector<hw::VfPoint>{{600, 0.95},
                                                {900, 1.05},
                                                {1200, 1.15},
                                                {1500, 1.25}});
    hw::VfTable perf_vf(std::vector<hw::VfPoint>{{800, 1.00},
                                                 {1200, 1.10},
                                                 {1600, 1.20},
                                                 {2000, 1.30}});
    return hw::Chip({hw::Chip::ClusterSpec{eff, eff_vf, 4},
                     hw::Chip::ClusterSpec{mid, mid_vf, 2},
                     hw::Chip::ClusterSpec{perf, perf_vf, 2}});
}

/** A steady task needing `demand` PU on the efficiency cores. */
workload::TaskSpec
make_task(const std::string& name, int priority, Pu demand,
          double big_speedup)
{
    workload::TaskSpec spec;
    spec.name = name;
    spec.priority = priority;
    const double target_hr = 30.0;
    spec.min_hr = 0.95 * target_hr;
    spec.max_hr = 1.05 * target_hr;
    const Cycles w = demand * kCyclesPerPuSecond / target_hr;
    spec.phases.push_back(
        workload::Phase{3600 * kSecond, w, w / big_speedup});
    return spec;
}

} // namespace

int
main(int argc, char** argv)
{
    const double seconds = argc > 1 ? std::atof(argv[1]) : 60.0;

    hw::Chip chip = octa_chip();
    std::printf("custom platform: %d clusters, %d cores\n",
                chip.num_clusters(), chip.num_cores());
    for (const auto& cl : chip.clusters()) {
        std::printf("  cluster %d (%s): %d cores, %.0f-%.0f MHz, "
                    "max %.2f W\n", cl.id(), cl.type().name.c_str(),
                    cl.num_cores(), cl.vf().min_mhz(), cl.vf().max_mhz(),
                    hw::PowerModel::cluster_max_power(chip, cl.id()));
    }

    std::vector<workload::TaskSpec> specs{
        make_task("ui", 5, 500, 1.8),
        make_task("camera", 4, 900, 1.8),
        make_task("sync", 1, 300, 1.6),
        make_task("indexer", 1, 700, 1.7),
        make_task("ml-infer", 2, 1400, 2.2),
        make_task("audio", 3, 200, 1.5),
    };

    market::PpmGovernorConfig cfg;
    cfg.market.w_tdp = 6.0;
    cfg.market.w_th = 5.2;
    cfg.market.demand_clamp = 2000.0;
    cfg.big_speedup = {1.8, 1.8, 1.6, 1.7, 2.2, 1.5};

    sim::SimConfig sim_cfg;
    sim_cfg.duration = static_cast<SimTime>(seconds * kSecond);
    sim_cfg.tdp_for_metrics = cfg.market.w_tdp;
    sim::Simulation sim(std::move(chip), specs,
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);
    const sim::RunSummary s = sim.run();

    std::printf("\nafter %.0f s under a %.1f W budget:\n", seconds,
                cfg.market.w_tdp);
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const CoreId c =
            sim.scheduler().core_of(static_cast<TaskId>(i));
        std::printf("  %-9s prio %d  on core %d (cluster %d)  miss "
                    "%5.1f%%\n", specs[i].name.c_str(),
                    specs[i].priority, c, sim.chip().cluster_of(c),
                    100.0 * s.task_below[i]);
    }
    std::printf("avg power %.2f W, migrations %ld, V-F transitions "
                "%ld\n", s.avg_power, s.migrations, s.vf_transitions);
    return 0;
}

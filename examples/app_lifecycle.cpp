/**
 * @file
 * App-lifecycle example: a phone-like scenario where tasks come and
 * go.  A music player runs throughout; a game runs from 20 s to 80 s;
 * a camera burst needs heavy compute from 40 s to 55 s.  The market
 * admits and releases task agents on the fly, the LBT module reshapes
 * the mapping, and the big cluster is powered up only while the heavy
 * phase needs it.
 *
 * Usage: app_lifecycle [seconds]
 */

#include <cstdio>
#include <memory>

#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/task.hh"
#include "workload/benchmarks.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    const double seconds = argc > 1 ? std::atof(argv[1]) : 120.0;

    std::vector<workload::TaskSpec> specs{
        workload::steady_task_spec("music", 2, 150.0, 1.5, 40.0),
        workload::make_task_spec(workload::Benchmark::kX264,
                                 workload::Input::kNative, 3, 7),  // game
        workload::make_task_spec(workload::Benchmark::kTracking,
                                 workload::Input::kFullhd, 4, 8),  // camera
    };
    specs[1].name = "game";
    specs[2].name = "camera";

    sim::SimConfig cfg;
    cfg.duration = static_cast<SimTime>(seconds * kSecond);
    cfg.trace = true;
    cfg.lifetimes = {
        {0, sim::SimConfig::Lifetime::kForever},
        {20 * kSecond, 80 * kSecond},
        {40 * kSecond, 55 * kSecond},
    };

    market::PpmGovernorConfig gov_cfg;
    gov_cfg.market.w_tdp = 8.0;
    gov_cfg.market.w_th = 7.0;
    gov_cfg.big_speedup = {1.5, 1.7, 2.0};

    auto governor = std::make_unique<market::PpmGovernor>(gov_cfg);
    sim::Simulation sim(hw::tc2_chip(), specs, std::move(governor), cfg);

    std::printf("t[s]  music  game  camera  |  L MHz  b MHz  power\n");
    SimTime next = 0;
    while (sim.now() < cfg.duration) {
        sim.step();
        if (sim.now() >= next) {
            next += 10 * kSecond;
            std::printf("%4ld ", static_cast<long>(sim.now() / kSecond));
            for (TaskId t = 0; t < 3; ++t) {
                if (!sim.task_alive(t)) {
                    std::printf("%7s", "-");
                } else {
                    std::printf("%6.2f ",
                                sim.tasks()[t]->heart_rate(sim.now())
                                    / sim.tasks()[t]->hrm().target_hr());
                }
            }
            std::printf("  | %5.0f  %5.0f  %.2f W\n",
                        sim.chip().cluster(0).mhz(),
                        sim.chip().cluster(1).mhz(),
                        sim.sensors().instantaneous_chip());
        }
    }

    const sim::RunSummary s = sim.summary();
    std::printf("\nmisses: music %.1f%%, game %.1f%% (while alive), "
                "camera %.1f%% (while alive)\n",
                100.0 * s.task_below[0], 100.0 * s.task_below[1],
                100.0 * s.task_below[2]);
    std::printf("avg power %.2f W, migrations %ld\n", s.avg_power,
                s.migrations);
    return 0;
}

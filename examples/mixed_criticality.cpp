/**
 * @file
 * Mixed-criticality example: a high-priority interactive video
 * pipeline shares the chip with low-priority batch jobs under a
 * tight power budget.
 *
 * Demonstrates the framework's task priorities (Section 3.2.3): the
 * market gives the video decoder and tracker larger allowances, so
 * when the 3.5 W budget cannot satisfy everyone, the batch jobs --
 * not the video -- lose quality of service.
 *
 * Usage: mixed_criticality [seconds]
 */

#include <cstdio>
#include <memory>

#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/benchmarks.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    const double seconds = argc > 1 ? std::atof(argv[1]) : 120.0;
    constexpr Watts kBudget = 3.5;

    // Interactive pipeline at priority 6, batch jobs at priority 1.
    using B = workload::Benchmark;
    using I = workload::Input;
    std::vector<workload::TaskSpec> specs{
        workload::make_task_spec(B::kH264, I::kForeman, 6, 1),     // video
        workload::make_task_spec(B::kTracking, I::kVga, 6, 2),     // video
        workload::make_task_spec(B::kSwaptions, I::kNative, 1, 3), // batch
        workload::make_task_spec(B::kBlackscholes, I::kNative, 1, 4),
        workload::make_task_spec(B::kX264, I::kNative, 1, 5),      // batch
    };

    market::PpmGovernorConfig cfg;
    cfg.market.w_tdp = kBudget;
    cfg.market.w_th = kBudget - 0.6;
    cfg.big_speedup = {1.8, 2.0, 2.0, 1.9, 1.7};

    sim::SimConfig sim_cfg;
    sim_cfg.duration = static_cast<SimTime>(seconds * kSecond);
    sim_cfg.tdp_for_metrics = kBudget;
    sim::Simulation sim(hw::tc2_chip(), specs,
                        std::make_unique<market::PpmGovernor>(cfg),
                        sim_cfg);
    const sim::RunSummary s = sim.run();

    std::printf("mixed-criticality run: %.0f s under a %.1f W budget\n\n",
                seconds, kBudget);
    std::printf("%-16s %-8s %-10s\n", "task", "priority", "QoS miss");
    for (std::size_t i = 0; i < specs.size(); ++i) {
        std::printf("%-16s %-8d %6.1f%%  %s\n", specs[i].name.c_str(),
                    specs[i].priority, 100.0 * s.task_below[i],
                    specs[i].priority > 1 ? "(interactive)" : "(batch)");
    }
    std::printf("\navg power %.2f W (budget %.1f W), time above budget "
                "%.1f%%\n", s.avg_power, kBudget,
                100.0 * s.over_tdp_fraction);

    // The market must have protected the interactive tasks.
    double interactive_miss = 0.0;
    double batch_miss = 0.0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (specs[i].priority > 1)
            interactive_miss = std::max(interactive_miss,
                                        s.task_below[i]);
        else
            batch_miss = std::max(batch_miss, s.task_below[i]);
    }
    std::printf("worst interactive miss %.1f%%, worst batch miss "
                "%.1f%%\n", 100.0 * interactive_miss,
                100.0 * batch_miss);
    return 0;
}

/**
 * @file
 * Thermal-budget sweep: the same medium workload run under
 * progressively tighter TDP caps (the "battery saver" knob), showing
 * how the price-theory manager trades quality of service for power.
 *
 * At 8 W (the chip's real TDP) everything fits; as the cap tightens
 * the chip agent's allowance control pushes the system into the
 * threshold band near each cap, QoS degrades gracefully, and the
 * measured power tracks the cap from below.
 *
 * Usage: thermal_budget [set-name]
 */

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "common/table.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

int
main(int argc, char** argv)
{
    using namespace ppm;
    const std::string set_name = argc > 1 ? argv[1] : "m2";
    const auto& set = workload::workload_set(set_name);

    std::printf("thermal budget sweep on workload %s (120 s per point)"
                "\n\n", set.name.c_str());
    Table table({"budget [W]", "QoS miss", "avg power [W]",
                 "time > budget", "V-F transitions"});
    for (double budget : {8.0, 6.0, 5.0, 4.0, 3.0, 2.5}) {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = budget;
        cfg.market.w_th = budget - 0.6;
        for (const auto& m : set.members) {
            cfg.big_speedup.push_back(
                workload::profile(m.bench, m.input).big_speedup);
        }
        sim::SimConfig sim_cfg;
        sim_cfg.duration = 120 * kSecond;
        sim_cfg.tdp_for_metrics = budget;
        sim::Simulation sim(
            hw::tc2_chip(), workload::instantiate(set, 42),
            std::make_unique<market::PpmGovernor>(cfg), sim_cfg);
        const sim::RunSummary s = sim.run();
        table.add_row({fmt_double(budget, 1),
                       fmt_percent(s.any_below_miss),
                       fmt_double(s.avg_power, 2),
                       fmt_percent(s.over_tdp_fraction),
                       std::to_string(s.vf_transitions)});
    }
    table.print(std::cout);
    return 0;
}

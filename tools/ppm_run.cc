/**
 * @file
 * Command-line driver: run any policy on any workload set under any
 * TDP and print the run summary (optionally dumping time-series CSV).
 *
 * Usage:
 *   ppm_run [--policy PPM|HPM|HL] [--set l1..h3] [--tdp WATTS]
 *           [--seconds N] [--seed N] [--priority N] [--online]
 *           [--avg-seeds N] [--jobs N] [--trace FILE.csv]
 *           [--trace-format csv|jsonl] [--trace-out PATH] [--csv]
 *           [--per-tick] [--no-incremental] [--faults SPEC]
 *           [--fleet N] [--fleet-budget WATTS] [--fleet-epoch MS]
 *           [--snapshot-out PATH] [--snapshot-at MS]
 *           [--snapshot-every MS] [--snapshot-in PATH]
 *
 * --no-incremental disables PPM's incremental active-set clearing
 * (PpmConfig::incremental): every market entry is recomputed every
 * round instead of replaying memoized results for clean entries.
 * Output is bit-identical either way -- the flag exists to
 * cross-check that claim and to localize dirty-set bugs.
 *
 * --fleet N runs a federated fleet of N chips: each chip is an
 * independent economy running the selected workload set (chip 0 with
 * --seed, chip i with a mix64-derived per-chip seed), macro-stepped in
 * parallel between supervisor epochs; at each epoch barrier the
 * supervisor market reallocates the fleet power budget across chips
 * (--fleet-budget, default: --tdp x N when --tdp is set, uncapped
 * otherwise; --fleet-epoch sets the barrier period in milliseconds).
 * --jobs sets the shared shard-stepping/clearing pool's worker count.
 * The summary table aggregates the fleet (a 1-chip fleet prints
 * exactly the single-chip table); fleet output is byte-identical for
 * every --jobs value.  --trace/--trace-out/--avg-seeds are
 * single-chip features and are rejected in fleet mode.
 *
 * --faults SPEC enables deterministic fault injection.  SPEC is a
 * comma list of fault classes (sensor, dvfs, migration, offline, all)
 * and key=value tunables (seed=, rate=, duration_ms=, noise_w=,
 * delay_ms=, stale_ms=, staleness_ms=, retries=, backoff_ms=), e.g.
 * "--faults all,seed=7,rate=12".  The summary then carries the fault
 * accounting rows (faults injected, sensor fallbacks, retries,
 * safe-mode time, watchdog trips, over-TDP time during faults).
 * Fleet runs additionally accept the chip-scope classes chip-fail,
 * chip-degrade and chip-recover (knobs: chip_rate=, degrade=): whole
 * chips drop out of the supervisor economy at settlement barriers,
 * their tasks are evacuated to the cheapest surviving chips, and
 * recoveries return them.  The summary then carries chip_failures /
 * evacuations / evac_landed / evac_pending rows, and the invariant
 * evacuations == evac_landed + evac_pending holds on every run.
 *
 * Snapshots (crash-consistent save/restore):
 *  - --snapshot-out PATH --snapshot-at MS runs until simulated time
 *    MS, atomically writes a versioned checksummed snapshot and exits
 *    without finishing the run;
 *  - --snapshot-in PATH restores a snapshot (the OTHER flags must
 *    repeat the saving run's configuration verbatim -- workload,
 *    policy, seed, duration, faults, fleet shape) and continues to
 *    completion.  The restored run's summary and traces are
 *    byte-identical to the uninterrupted run: a CSV trace stream
 *    resumed from a snapshot omits the header row, so concatenating
 *    the pre-kill part with the restored part reproduces the full
 *    run's trace bytes exactly;
 *  - --snapshot-out PATH --snapshot-every MS saves periodically while
 *    running to completion (each save atomically replaces PATH).
 *  Corrupt, truncated or version-mismatched snapshots are rejected
 *  with a one-line diagnostic and exit code 2.  In fleet mode the
 *  snapshot covers the whole federation (supervisor, health, pending
 *  evacuations, every shard) and saves land on the next epoch
 *  barrier at or after the requested time.
 *
 * --avg-seeds N runs N seeds (seed, +100, +200, ...) and prints the
 * cross-seed aggregate (see experiment::aggregate_summaries); --jobs
 * caps the worker threads the seeds run on (0 = all hardware
 * threads).  On a single run (--avg-seeds 1, the default), --jobs
 * instead sets the worker count of PPM's parallel market-clearing
 * engine.  Either way the output is identical for every --jobs
 * value -- clearing fans out in fixed chunks with deterministic
 * reductions, so the flag is purely a wall-clock knob.
 *
 * Tracing comes in two flavours:
 *  - --trace FILE.csv buffers the sampled time series in memory and
 *    writes one wide CSV at the end (the historical behaviour);
 *  - --trace-out PATH streams every telemetry record -- including the
 *    per-round market telemetry (task bids, core prices, cluster
 *    freeze state, allowance, chip state) -- through a CSV or JSONL
 *    sink as the run executes, in constant memory.  --trace-format
 *    picks the sink (default: inferred from the extension, .csv ->
 *    csv, otherwise jsonl).  Summarize either stream with
 *    tools/trace_stats.  Every flag also accepts --flag=value.
 *
 * Examples:
 *   ppm_run --policy PPM --set h2 --tdp 4 --seconds 300
 *   ppm_run --policy HL --set l1 --trace hl_l1.csv
 *   ppm_run --set m2 --trace-format=jsonl --trace-out=m2.jsonl
 *   ppm_run --set h2 --avg-seeds 5 --jobs 4
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "cli_util.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "experiment/experiment.hh"
#include "fault/fault.hh"
#include "fleet/fleet.hh"
#include "hw/platform.hh"
#include "metrics/telemetry.hh"
#include "snapshot/archive.hh"
#include "workload/benchmarks.hh"

namespace {

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--policy PPM|HPM|HL] [--set l1..h3] [--tdp WATTS]\n"
        "          [--seconds N] [--seed N] [--priority N] [--online]\n"
        "          [--avg-seeds N] [--jobs N] [--trace FILE.csv]\n"
        "          [--trace-format csv|jsonl] [--trace-out PATH] [--csv]\n"
        "          [--per-tick] [--no-incremental] [--faults SPEC]\n"
        "          [--list-sets]\n"
        "          [--fleet N] [--fleet-budget WATTS] [--fleet-epoch MS]\n"
        "          [--snapshot-out PATH] [--snapshot-at MS]\n"
        "          [--snapshot-every MS] [--snapshot-in PATH]\n"
        "\n"
        "--no-incremental disables PPM's incremental active-set\n"
        "clearing and recomputes every market entry each round\n"
        "(results are bit-identical either way; use it to cross-check\n"
        "or to isolate dirty-set bugs).\n"
        "--fleet N federates N chips under a supervisor power market\n"
        "(--fleet-budget watts across the fleet, default --tdp x N;\n"
        "--fleet-epoch barrier period in ms; --jobs workers step the\n"
        "shards and clear the markets off one shared pool).\n"
        "--per-tick disables the event-horizon macro-stepping engine\n"
        "and runs the historical tick-by-tick loop (results are\n"
        "bit-identical either way; use it to cross-check).\n"
        "--faults SPEC injects deterministic platform faults, e.g.\n"
        "--faults all,seed=7,rate=12 (classes: sensor dvfs migration\n"
        "offline all; keys: seed rate duration_ms noise_w delay_ms\n"
        "stale_ms staleness_ms retries backoff_ms; fleet-only chip\n"
        "classes: chip-fail chip-degrade chip-recover, keys chip_rate\n"
        "degrade).\n"
        "--snapshot-out PATH --snapshot-at MS saves a crash-consistent\n"
        "snapshot at simulated time MS and exits; --snapshot-in PATH\n"
        "restores one (repeat the saving run's flags) and continues\n"
        "byte-identically; --snapshot-every MS saves periodically\n"
        "while running to completion.\n",
        argv0);
    std::exit(2);
}

/** Exit-2 helpers with this tool's name baked in (see cli_util.hh:
 *  strict full-string parsing, range checking, finite-only doubles). */
[[noreturn]] void
bad_arg(const char* flag, const char* why, const char* got)
{
    ppm::cli::bad_arg("ppm_run", flag, why, got);
}

double
parse_number(const char* flag, const char* text)
{
    return ppm::cli::parse_number("ppm_run", flag, text);
}

long
parse_int(const char* flag, const char* text)
{
    return ppm::cli::parse_int("ppm_run", flag, text);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    experiment::RunParams params;
    std::string set_name = "m2";
    std::string trace_path;
    std::string stream_path;
    std::string stream_format;
    bool csv_summary = false;
    int avg_seeds = 1;
    int jobs = 0;
    bool jobs_given = false;
    bool fleet_mode = false;
    int fleet_chips = 1;
    double fleet_budget = 0.0;  // 0 = derive from --tdp.
    SimTime fleet_epoch = 96 * kMillisecond;
    bool fleet_opts_given = false;
    std::string snap_out;
    std::string snap_in;
    SimTime snap_at = 0;     // 0 = no save-and-exit point.
    SimTime snap_every = 0;  // 0 = no periodic saves.

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        auto next = [&]() -> const char* {
            if (has_inline)
                return inline_value.c_str();
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--policy") {
            params.policy = next();
            if (params.policy != "PPM" && params.policy != "HPM" &&
                params.policy != "HL") {
                bad_arg("--policy", "expects PPM, HPM or HL",
                        params.policy.c_str());
            }
        } else if (arg == "--set") {
            set_name = next();
        } else if (arg == "--tdp") {
            const char* text = next();
            params.tdp = parse_number("--tdp", text);
            if (params.tdp <= 0.0)
                bad_arg("--tdp", "expects a positive wattage", text);
        } else if (arg == "--seconds") {
            const char* text = next();
            const double seconds = parse_number("--seconds", text);
            if (seconds <= 0.0)
                bad_arg("--seconds", "expects a positive duration", text);
            params.duration = static_cast<SimTime>(seconds * kSecond);
        } else if (arg == "--seed") {
            const char* text = next();
            const long seed = parse_int("--seed", text);
            if (seed < 0)
                bad_arg("--seed", "expects a non-negative integer", text);
            params.seed = static_cast<std::uint64_t>(seed);
        } else if (arg == "--priority") {
            const char* text = next();
            const long prio = parse_int("--priority", text);
            if (prio < 1)
                bad_arg("--priority", "expects an integer >= 1", text);
            params.priority = static_cast<int>(prio);
        } else if (arg == "--online") {
            params.online_speedup = true;
        } else if (arg == "--per-tick") {
            params.macro_step = false;
        } else if (arg == "--no-incremental") {
            if (has_inline)
                bad_arg("--no-incremental", "takes no value",
                        inline_value.c_str());
            params.incremental = false;
        } else if (arg == "--faults") {
            const char* text = next();
            std::string error;
            if (!fault::parse_fault_spec(text, &params.faults, &error)) {
                std::fprintf(stderr, "ppm_run: bad --faults spec: %s\n",
                             error.c_str());
                return 2;
            }
        } else if (arg == "--avg-seeds") {
            const char* text = next();
            avg_seeds = static_cast<int>(parse_int("--avg-seeds", text));
            if (avg_seeds < 1)
                bad_arg("--avg-seeds", "expects an integer >= 1", text);
        } else if (arg == "--jobs") {
            const char* text = next();
            jobs = static_cast<int>(parse_int("--jobs", text));
            if (jobs < 0)
                bad_arg("--jobs", "expects an integer >= 0", text);
            jobs_given = true;
        } else if (arg == "--trace") {
            trace_path = next();
            params.trace = true;
        } else if (arg == "--trace-out") {
            stream_path = next();
        } else if (arg == "--trace-format") {
            stream_format = next();
            if (stream_format != "csv" && stream_format != "jsonl")
                usage(argv[0]);
        } else if (arg == "--fleet") {
            const char* text = next();
            const long n = parse_int("--fleet", text);
            if (n < 1)
                bad_arg("--fleet", "expects an integer >= 1", text);
            fleet_chips = static_cast<int>(n);
            fleet_mode = true;
        } else if (arg == "--fleet-budget") {
            const char* text = next();
            fleet_budget = parse_number("--fleet-budget", text);
            if (fleet_budget <= 0.0)
                bad_arg("--fleet-budget", "expects a positive wattage",
                        text);
            fleet_opts_given = true;
        } else if (arg == "--fleet-epoch") {
            const char* text = next();
            const long ms = parse_int("--fleet-epoch", text);
            if (ms < 1)
                bad_arg("--fleet-epoch",
                        "expects a positive epoch in milliseconds", text);
            fleet_epoch = ms * kMillisecond;
            fleet_opts_given = true;
        } else if (arg == "--snapshot-out") {
            snap_out = next();
        } else if (arg == "--snapshot-in") {
            snap_in = next();
        } else if (arg == "--snapshot-at") {
            const char* text = next();
            const long ms = parse_int("--snapshot-at", text);
            if (ms < 1)
                bad_arg("--snapshot-at",
                        "expects a positive time in milliseconds", text);
            snap_at = ms * kMillisecond;
        } else if (arg == "--snapshot-every") {
            const char* text = next();
            const long ms = parse_int("--snapshot-every", text);
            if (ms < 1)
                bad_arg("--snapshot-every",
                        "expects a positive period in milliseconds",
                        text);
            snap_every = ms * kMillisecond;
        } else if (arg == "--csv") {
            csv_summary = true;
        } else if (arg == "--list-sets") {
            Table sets({"set", "class", "intensity", "members"});
            for (const auto& s : workload::standard_workload_sets()) {
                std::string members;
                for (const auto& m : s.members) {
                    if (!members.empty())
                        members += " ";
                    members += workload::profile(m.bench, m.input).name;
                }
                sets.add_row(
                    {s.name,
                     workload::intensity_class_name(s.expected_class),
                     fmt_double(workload::intensity(s, 3000.0), 2),
                     members});
            }
            sets.print(std::cout);
            return 0;
        } else {
            std::fprintf(stderr, "ppm_run: unknown flag '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }

    const auto& set = workload::workload_set(set_name);
    if (avg_seeds > 1 && !trace_path.empty())
        fatal("--trace records one run; drop it or --avg-seeds");
    if (avg_seeds > 1 && !stream_path.empty())
        fatal("--trace-out streams one run; drop it or --avg-seeds");
    if (stream_path.empty() && !stream_format.empty())
        fatal("--trace-format needs --trace-out PATH");
    if (!fleet_mode && fleet_opts_given)
        fatal("--fleet-budget/--fleet-epoch need --fleet N");
    if (params.faults.any_fleet() && !fleet_mode)
        fatal("chip-scope fault classes (chip-fail/chip-degrade) need "
              "--fleet N");
    const bool snapshotting =
        snap_at > 0 || snap_every > 0 || !snap_in.empty();
    if ((snap_at > 0 || snap_every > 0) && snap_out.empty())
        fatal("--snapshot-at/--snapshot-every need --snapshot-out PATH");
    if (!snap_out.empty() && snap_at == 0 && snap_every == 0)
        fatal("--snapshot-out needs --snapshot-at or --snapshot-every");
    if (snap_at > 0 && snap_every > 0)
        fatal("--snapshot-at and --snapshot-every are exclusive");
    if (snap_at > 0 && snap_at >= params.duration)
        fatal("--snapshot-at must fall before the run end (--seconds)");
    if (snapshotting && avg_seeds > 1)
        fatal("snapshots cover one run; drop --avg-seeds");
    if (snap_at > 0 && !trace_path.empty())
        fatal("--snapshot-at exits before the wide CSV is written; put "
              "--trace on the restoring run instead");
    if (fleet_mode) {
        // Per-shard traces would need per-chip output paths; the
        // fleet-level series live on Fleet::bus() instead.
        if (!trace_path.empty() || !stream_path.empty())
            fatal("tracing is single-chip; drop --trace/--trace-out "
                  "or --fleet");
        if (avg_seeds > 1)
            fatal("--avg-seeds is single-chip; drop it or --fleet");
    }

    // Streaming sink: CSV or JSONL, inferred from the extension when
    // --trace-format is absent (.csv -> csv, anything else -> jsonl).
    std::ofstream stream_out;
    std::unique_ptr<metrics::TraceSink> stream_sink;
    if (!stream_path.empty()) {
        if (stream_format.empty()) {
            const bool csv_ext = stream_path.size() >= 4 &&
                stream_path.compare(stream_path.size() - 4, 4, ".csv")
                    == 0;
            stream_format = csv_ext ? "csv" : "jsonl";
        }
        stream_out.open(stream_path);
        if (!stream_out)
            fatal("cannot write trace file '%s'", stream_path.c_str());
        // A restored run resumes an existing trace stream: suppress
        // the header so pre-kill bytes + restored bytes == full run.
        if (stream_format == "csv")
            stream_sink = std::make_unique<metrics::CsvStreamSink>(
                stream_out, /*write_header=*/snap_in.empty());
        else
            stream_sink =
                std::make_unique<metrics::JsonlSink>(stream_out);
        params.extra_sink = stream_sink.get();
        params.trace = true; // enable periodic sampling too
    }

    // Validate the wide-CSV destination before spending simulated
    // time on a run whose trace could not be written.
    std::ofstream trace_out;
    if (!trace_path.empty()) {
        trace_out.open(trace_path);
        if (!trace_out) {
            std::fprintf(stderr, "ppm_run: cannot write trace file '%s'\n",
                         trace_path.c_str());
            return 2;
        }
    }

    // Restore a snapshot into `target` (Simulation or Fleet), or exit
    // 2 with a one-line diagnostic naming the failure (truncated, bad
    // magic, version mismatch, checksum mismatch, trailing bytes).
    auto restore_or_die = [&snap_in](auto& target) {
        snap::Reader r;
        const snap::LoadStatus st = snap::read_file(snap_in, &r);
        if (st != snap::LoadStatus::kOk) {
            std::fprintf(stderr,
                         "ppm_run: cannot restore snapshot '%s': %s\n",
                         snap_in.c_str(), snap::load_status_name(st));
            std::exit(2);
        }
        target.load(r);
        if (r.remaining() != 0) {
            std::fprintf(
                stderr,
                "ppm_run: cannot restore snapshot '%s': %zu trailing "
                "payload bytes (flags differ from the saving run?)\n",
                snap_in.c_str(), r.remaining());
            std::exit(2);
        }
    };

    // Save `source` atomically to --snapshot-out; accounting rides the
    // bus as snapshot.* counters (excluded from saved state, so a
    // restored run never inherits them).
    auto save_or_die = [&snap_out](auto& source, metrics::TraceBus& bus) {
        snap::Writer w;
        const auto t0 = std::chrono::steady_clock::now();
        source.save(w);
        std::string error;
        if (!snap::write_file(snap_out, w, &error)) {
            std::fprintf(stderr, "ppm_run: snapshot save failed: %s\n",
                         error.c_str());
            std::exit(1);
        }
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        bus.count("snapshot.saves");
        bus.count("snapshot.bytes", static_cast<long>(w.size()));
        bus.count("snapshot.ms", static_cast<long>(ms + 0.5));
        std::fprintf(stderr, "snapshot: %zu bytes to %s (%.1f ms)\n",
                     w.size(), snap_out.c_str(), ms);
    };

    // --snapshot-at exit: the run is intentionally unfinished; flush
    // any trace stream so the pre-kill bytes are complete on disk.
    auto snapshot_exit = [&]() -> int {
        int code = 0;
        if (!stream_path.empty()) {
            stream_sink->flush();
            stream_out.close();
            if (stream_sink->failed() || !stream_out) {
                std::fprintf(stderr,
                             "ppm_run: error streaming trace to '%s'\n",
                             stream_path.c_str());
                code = 1;
            }
        }
        std::printf("snapshot written to %s\n", snap_out.c_str());
        return code;
    };

    sim::RunSummary s;
    fleet::FleetResult fleet_res;
    double wall_seconds = 0.0;
    long fleet_epochs = 0;
    double fleet_eff_budget = 0.0;
    if (fleet_mode) {
        // Fleet: N chips, each running `set` with a chip-derived seed
        // (chip 0 uses --seed verbatim, so a 1-chip fleet byte-matches
        // the plain single-run path), federated under the supervisor
        // power market.
        std::vector<double> speedups;
        for (const auto& member : set.members) {
            speedups.push_back(
                workload::profile(member.bench, member.input)
                    .big_speedup);
        }

        fleet::FleetConfig fc;
        fc.chips = fleet_chips;
        fc.epoch = fleet_epoch;
        fleet_eff_budget = fleet_budget > 0.0
            ? fleet_budget
            : (params.tdp < 1e8 ? params.tdp * fleet_chips : 1e9);
        fc.supervisor.total_budget = fleet_eff_budget;
        fc.sim.duration = params.duration;
        fc.sim.tdp_for_metrics = params.tdp;
        fc.sim.macro_step = params.macro_step;
        if (params.faults.any()) {
            const hw::Chip proto = hw::tc2_chip();
            fc.sim.faults = fault::FaultPlan::compile(
                params.faults, proto.num_clusters(), proto.num_cores(),
                fc.sim.duration, fc.sim.tick);
        }
        if (params.faults.any_fleet()) {
            fc.fleet_faults = fault::FleetFaultPlan::compile(
                params.faults, fleet_chips, fc.sim.duration, fc.epoch);
        }
        for (int c = 0; c < fleet_chips; ++c) {
            const std::uint64_t chip_seed = c == 0
                ? params.seed
                : experiment::cell_seed(params.seed, 777, c);
            fleet::ChipWorkload wl;
            wl.specs = workload::instantiate(
                set, chip_seed, params.priority,
                params.duration + 100 * kSecond);
            fc.workloads.push_back(std::move(wl));
        }
        // One pool for shard stepping AND market clearing; absent
        // --jobs (or --jobs 1) everything runs inline, which produces
        // the same bytes.
        std::unique_ptr<ThreadPool> pool;
        if (jobs_given && jobs != 1)
            pool = std::make_unique<ThreadPool>(jobs);
        ThreadPool* shared = pool.get();
        fc.pool = shared;
        fc.make_chip = [](int) { return hw::tc2_chip(); };
        fc.make_governor = [&params, &speedups, shared](int,
                                                        Watts budget) {
            return experiment::make_governor(params.policy, budget,
                                             speedups,
                                             params.online_speedup, 1,
                                             shared, params.incremental);
        };
        const auto start = std::chrono::steady_clock::now();
        fleet::Fleet fleet(std::move(fc));
        if (!snap_in.empty())
            restore_or_die(fleet);
        if (snap_at > 0) {
            // Fleet state is only consistent at epoch barriers: save
            // at the first barrier at or after the requested time.
            while (fleet.now() < snap_at && fleet.run_epoch()) {
            }
            save_or_die(fleet, fleet.bus());
            return snapshot_exit();
        }
        if (snap_every > 0) {
            SimTime due =
                (fleet.now() / snap_every + 1) * snap_every;
            while (fleet.now() < params.duration && fleet.run_epoch()) {
                if (fleet.now() >= due) {
                    save_or_die(fleet, fleet.bus());
                    due = (fleet.now() / snap_every + 1) * snap_every;
                }
            }
        }
        fleet_res = fleet.run();
        wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        s = fleet_res.combined;
        fleet_epochs = fleet_res.supervisor_epochs;
    } else if (avg_seeds > 1) {
        const auto start = std::chrono::steady_clock::now();
        s = experiment::run_set_avg(set, params, avg_seeds, jobs);
        wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
    } else if (snapshotting) {
        // Snapshot runs need mid-run control of the Simulation, so
        // build it here exactly as experiment::run_specs() does; the
        // restore path rebuilds this identical object from the same
        // flags and then overwrites its dynamic state from the file.
        if (jobs_given)
            params.clearing_jobs = jobs;
        const auto specs = workload::instantiate(
            set, params.seed, params.priority,
            params.duration + 100 * kSecond);
        std::vector<double> speedups;
        for (const auto& member : set.members) {
            speedups.push_back(
                workload::profile(member.bench, member.input)
                    .big_speedup);
        }
        sim::SimConfig sim_cfg;
        sim_cfg.duration = params.duration;
        sim_cfg.trace = params.trace;
        sim_cfg.tdp_for_metrics = params.tdp;
        sim_cfg.macro_step = params.macro_step;
        hw::Chip chip = hw::tc2_chip();
        if (params.faults.any()) {
            sim_cfg.faults = fault::FaultPlan::compile(
                params.faults, chip.num_clusters(), chip.num_cores(),
                sim_cfg.duration, sim_cfg.tick);
        }
        sim::Simulation simulation(
            std::move(chip), specs,
            experiment::make_governor(
                params.policy, params.tdp, speedups,
                params.online_speedup, params.clearing_jobs,
                params.clearing_pool, params.incremental),
            sim_cfg);
        if (params.extra_sink != nullptr)
            simulation.bus().add_sink(params.extra_sink);
        if (!snap_in.empty())
            restore_or_die(simulation);
        const auto start = std::chrono::steady_clock::now();
        if (snap_at > 0) {
            simulation.run_until(snap_at);
            save_or_die(simulation, simulation.bus());
            return snapshot_exit();
        }
        if (snap_every > 0) {
            for (SimTime due =
                     (simulation.now() / snap_every + 1) * snap_every;
                 due < params.duration; due += snap_every) {
                simulation.run_until(due);
                save_or_die(simulation, simulation.bus());
            }
        }
        simulation.run_until(params.duration);
        s = simulation.finish();
        wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
        if (!trace_path.empty())
            simulation.recorder().write_csv(trace_out);
    } else {
        // Single run: --jobs drives the market's parallel clearing
        // engine (0 = all hardware threads, resolved by the pool).
        if (jobs_given)
            params.clearing_jobs = jobs;
        const experiment::RunResult result =
            experiment::run_set(set, params);
        s = result.summary;
        wall_seconds = result.wall_seconds;
        if (!trace_path.empty())
            result.traces.write_csv(trace_out);
    }

    Table table({"metric", "value"});
    table.add_row({"policy", s.governor});
    table.add_row({"workload", set.name});
    table.add_row({"duration_s",
                   fmt_double(to_seconds(params.duration), 0)});
    table.add_row({"seed", std::to_string(params.seed)});
    if (avg_seeds > 1)
        table.add_row({"seeds_averaged", std::to_string(avg_seeds)});
    table.add_row({"tdp_w", params.tdp < 1e8 ? fmt_double(params.tdp, 1)
                                             : "none"});
    table.add_row({"qos_miss_any", fmt_percent(s.any_below_miss)});
    table.add_row({"qos_outside_any", fmt_percent(s.any_outside_miss)});
    table.add_row({"avg_power_w", fmt_double(s.avg_power, 3)});
    table.add_row({"energy_j", fmt_double(s.energy, 1)});
    table.add_row({"avg_power_post_warmup_w",
                   fmt_double(s.avg_power_post_warmup, 3)});
    table.add_row({"migrations", std::to_string(s.migrations)});
    table.add_row({"vf_transitions", std::to_string(s.vf_transitions)});
    table.add_row({"time_over_tdp", fmt_percent(s.over_tdp_fraction)});
    table.add_row({"time_over_tdp_post_warmup",
                   fmt_percent(s.over_tdp_post_warmup)});
    table.add_row({"peak_temp_c", fmt_double(s.peak_temp_c, 1)});
    // Market-only rows (absent for the baselines).  The skip counters
    // come from mode-invariant bookkeeping, so this block is
    // byte-identical with --no-incremental -- a near-zero skip rate
    // on a steady workload flags a degraded active set.
    if (s.market_rounds > 0) {
        table.add_row({"market_rounds", std::to_string(s.market_rounds)});
        table.add_row(
            {"market_task_skip_rate",
             fmt_percent(s.market_task_slots > 0
                             ? static_cast<double>(s.market_tasks_skipped) /
                                   static_cast<double>(s.market_task_slots)
                             : 0.0)});
        table.add_row(
            {"market_core_skip_rate",
             fmt_percent(s.market_core_slots > 0
                             ? static_cast<double>(s.market_cores_skipped) /
                                   static_cast<double>(s.market_core_slots)
                             : 0.0)});
        table.add_row({"market_rounds_early_exit",
                       std::to_string(s.market_rounds_early_exit)});
    }
    // Fleet-only rows ride below the standard block so a 1-chip fleet
    // prints exactly the single-chip table (byte-comparable).
    if (fleet_mode && fleet_chips > 1) {
        table.add_row({"chips", std::to_string(fleet_chips)});
        table.add_row({"fleet_budget_w",
                       fleet_eff_budget < 1e8
                           ? fmt_double(fleet_eff_budget, 1)
                           : "none"});
        table.add_row({"fleet_epoch_ms",
                       fmt_double(to_seconds(fleet_epoch) * 1e3, 0)});
        table.add_row({"supervisor_epochs",
                       std::to_string(fleet_epochs)});
    }
    // Chip-scope fault accounting; the conservation invariant
    // evacuations == evac_landed + evac_pending holds on every run.
    if (fleet_mode && params.faults.any_fleet()) {
        table.add_row({"chip_failures",
                       std::to_string(fleet_res.chip_failures)});
        table.add_row({"chip_recoveries",
                       std::to_string(fleet_res.chip_recoveries)});
        table.add_row({"evacuations",
                       std::to_string(fleet_res.evacuations)});
        table.add_row({"evac_landed",
                       std::to_string(fleet_res.evac_landed)});
        table.add_row({"evac_pending",
                       std::to_string(fleet_res.evac_pending_end)});
        table.add_row({"fleet_rejections",
                       std::to_string(fleet_res.rejections)});
        table.add_row({"all_chips_failed",
                       fleet_res.all_chips_failed ? "yes" : "no"});
    }
    if (fleet_mode && fleet_res.fleet_watchdog_trips > 0) {
        table.add_row({"fleet_watchdog_trips",
                       std::to_string(fleet_res.fleet_watchdog_trips)});
    }
    if (params.faults.any()) {
        table.add_row({"faults_injected",
                       std::to_string(s.faults_injected)});
        table.add_row({"sensor_fallbacks",
                       std::to_string(s.sensor_fallbacks)});
        table.add_row({"fault_retries", std::to_string(s.fault_retries)});
        table.add_row({"safe_mode_entries",
                       std::to_string(s.safe_mode_entries)});
        table.add_row({"safe_mode_s",
                       fmt_double(s.safe_mode_seconds, 3)});
        table.add_row({"watchdog_trips",
                       std::to_string(s.watchdog_trips)});
        table.add_row({"time_over_tdp_in_fault",
                       fmt_percent(s.over_tdp_during_fault)});
    }
    if (csv_summary)
        table.print_csv(std::cout);
    else
        table.print(std::cout);

    // Wall clock is machine-dependent; keep it off the summary table
    // (stdout stays comparable across hosts and --jobs values).
    std::fprintf(stderr, "wall-clock: %.2f s\n", wall_seconds);
    if (fleet_res.all_chips_failed) {
        std::fprintf(stderr,
                     "ppm_run: warning: the whole fleet was failed at "
                     "once during this run (results cover the outage)\n");
    }

    int exit_code = 0;
    if (!trace_path.empty()) {
        trace_out.flush();
        if (!trace_out) {
            std::fprintf(stderr,
                         "ppm_run: error writing trace file '%s'\n",
                         trace_path.c_str());
            exit_code = 1;
        } else {
            std::printf("trace written to %s\n", trace_path.c_str());
        }
    }
    if (!stream_path.empty()) {
        stream_sink->flush();
        stream_out.close();
        if (stream_sink->failed() || !stream_out) {
            std::fprintf(stderr,
                         "ppm_run: error streaming trace to '%s'\n",
                         stream_path.c_str());
            exit_code = 1;
        } else {
            std::printf("%s trace streamed to %s\n",
                        stream_format.c_str(), stream_path.c_str());
        }
    }
    return exit_code;
}

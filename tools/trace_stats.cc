/**
 * @file
 * Summarize a trace produced by `ppm_run --trace-out` (narrow CSV or
 * JSONL) or `ppm_run --trace` (wide CSV): per-series count, min, mean
 * and max, plus the V-F settling time -- the last moment any
 * `cluster<N>_level` or `cluster<N>_mhz` series changed value.
 *
 * Usage:
 *   trace_stats FILE [--format csv|jsonl] [--csv] [--series REGEX]
 *
 * The format is inferred from the extension (.jsonl / .csv) unless
 * --format is given.  --series restricts the per-series table to
 * names matching the ECMAScript regular expression.  --csv prints the
 * table as CSV instead of aligned columns.
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"

namespace {

using ppm::OnlineStats;

/** Accumulated view of the whole trace. */
struct TraceStats {
    std::map<std::string, OnlineStats> series;
    /** Last value seen per series (for change detection). */
    std::map<std::string, double> last;
    /** Last time a V-F series (cluster level / mhz) changed. */
    double vf_settled_at = 0.0;
    bool vf_changed = false;
    double end_time = 0.0;
    long records = 0;
};

bool
is_vf_series(const std::string& name)
{
    static const std::regex re("^cluster[0-9]+_(level|mhz)$");
    return std::regex_match(name, re);
}

void
add_sample(TraceStats& st, const std::string& name, double t, double v)
{
    st.series[name].add(v);
    st.end_time = std::max(st.end_time, t);
    ++st.records;
    auto it = st.last.find(name);
    if (it == st.last.end()) {
        st.last.emplace(name, v);
        return; // the initial value is not a change
    }
    if (it->second != v && is_vf_series(name)) {
        st.vf_settled_at = t;
        st.vf_changed = true;
    }
    it->second = v;
}

/** One flat JSON object, split into numeric and string fields. */
struct JsonRecord {
    std::vector<std::pair<std::string, double>> num;
    std::vector<std::pair<std::string, std::string>> str;
};

/**
 * Parse one flat JSON object (no nesting, as emitted by JsonlSink).
 * Returns false on malformed input.
 */
bool
parse_json_line(const std::string& line, JsonRecord& out)
{
    out.num.clear();
    out.str.clear();
    std::size_t i = 0;
    const std::size_t n = line.size();
    auto skip_ws = [&]() {
        while (i < n && std::isspace(static_cast<unsigned char>(line[i])))
            ++i;
    };
    auto parse_string = [&](std::string& s) -> bool {
        if (i >= n || line[i] != '"')
            return false;
        ++i;
        s.clear();
        while (i < n && line[i] != '"') {
            if (line[i] == '\\' && i + 1 < n) {
                ++i;
                switch (line[i]) {
                case 'n': s += '\n'; break;
                case 't': s += '\t'; break;
                case 'r': s += '\r'; break;
                default: s += line[i]; break;
                }
            } else {
                s += line[i];
            }
            ++i;
        }
        if (i >= n)
            return false;
        ++i; // closing quote
        return true;
    };
    skip_ws();
    if (i >= n || line[i] != '{')
        return false;
    ++i;
    skip_ws();
    if (i < n && line[i] == '}')
        return true; // empty object
    while (i < n) {
        skip_ws();
        std::string key;
        if (!parse_string(key))
            return false;
        skip_ws();
        if (i >= n || line[i] != ':')
            return false;
        ++i;
        skip_ws();
        if (i < n && line[i] == '"') {
            std::string value;
            if (!parse_string(value))
                return false;
            out.str.emplace_back(std::move(key), std::move(value));
        } else {
            char* end = nullptr;
            const double v = std::strtod(line.c_str() + i, &end);
            if (end == line.c_str() + i)
                return false;
            i = static_cast<std::size_t>(end - line.c_str());
            out.num.emplace_back(std::move(key), v);
        }
        skip_ws();
        if (i < n && line[i] == ',') {
            ++i;
            continue;
        }
        if (i < n && line[i] == '}')
            return true;
        return false;
    }
    return false;
}

void
read_jsonl(std::istream& in, TraceStats& st)
{
    std::string line;
    long lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        JsonRecord rec;
        if (!parse_json_line(line, rec)) {
            std::fprintf(stderr, "warning: skipping malformed line %ld\n",
                         lineno);
            continue;
        }
        double t = 0.0;
        std::string type;
        std::string series;
        for (const auto& [k, v] : rec.num) {
            if (k == "t_s")
                t = v;
        }
        for (const auto& [k, v] : rec.str) {
            if (k == "type")
                type = v;
            else if (k == "series")
                series = v;
        }
        if (type == "sample") {
            for (const auto& [k, v] : rec.num) {
                if (k == "value")
                    add_sample(st, series, t, v);
            }
        } else {
            // Event: every numeric field except the timestamp is a
            // series in its own right (matches TraceSink::event's
            // default rendering, so CSV and JSONL stats agree).
            for (const auto& [k, v] : rec.num) {
                if (k != "t_s")
                    add_sample(st, k, t, v);
            }
        }
    }
}

std::vector<std::string>
split_csv(const std::string& line)
{
    std::vector<std::string> out;
    std::string cell;
    std::stringstream ss(line);
    while (std::getline(ss, cell, ','))
        out.push_back(cell);
    if (!line.empty() && line.back() == ',')
        out.emplace_back();
    return out;
}

void
read_csv(std::istream& in, TraceStats& st)
{
    std::string line;
    if (!std::getline(in, line))
        ppm::fatal("empty CSV trace");
    const std::vector<std::string> header = split_csv(line);
    if (header.empty() || header[0] != "time_s")
        ppm::fatal("not a trace CSV: first column must be time_s");
    const bool narrow = header.size() == 3 && header[1] == "series" &&
        header[2] == "value";
    long lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        const std::vector<std::string> cells = split_csv(line);
        if (cells.empty())
            continue;
        const double t = std::atof(cells[0].c_str());
        if (narrow) {
            if (cells.size() != 3) {
                std::fprintf(stderr,
                             "warning: skipping malformed line %ld\n",
                             lineno);
                continue;
            }
            add_sample(st, cells[1], t, std::atof(cells[2].c_str()));
        } else {
            // Wide format from TraceRecorder::write_csv: one column
            // per series, cells may be empty when a series has no
            // sample at that time.
            for (std::size_t c = 1;
                 c < cells.size() && c < header.size(); ++c) {
                if (cells[c].empty())
                    continue;
                add_sample(st, header[c], t,
                           std::atof(cells[c].c_str()));
            }
        }
    }
}

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s FILE [--format csv|jsonl] [--csv]\n"
                 "          [--series REGEX]\n",
                 argv0);
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ppm;
    std::string path;
    std::string format;
    std::string series_filter;
    bool csv_out = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        auto next = [&]() -> const char* {
            if (has_inline)
                return inline_value.c_str();
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--format") {
            format = next();
            if (format != "csv" && format != "jsonl")
                usage(argv[0]);
        } else if (arg == "--series") {
            series_filter = next();
        } else if (arg == "--csv") {
            csv_out = true;
        } else if (!arg.empty() && arg[0] == '-') {
            usage(argv[0]);
        } else if (path.empty()) {
            path = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (path.empty())
        usage(argv[0]);
    if (format.empty()) {
        const bool csv_ext = path.size() >= 4 &&
            path.compare(path.size() - 4, 4, ".csv") == 0;
        format = csv_ext ? "csv" : "jsonl";
    }

    std::ifstream in(path);
    if (!in)
        fatal("cannot read trace file '%s'", path.c_str());

    TraceStats st;
    if (format == "csv")
        read_csv(in, st);
    else
        read_jsonl(in, st);

    std::regex filter;
    if (!series_filter.empty())
        filter = std::regex(series_filter);

    Table table({"series", "count", "min", "mean", "max"});
    for (const auto& [name, stats] : st.series) {
        if (!series_filter.empty() && !std::regex_search(name, filter))
            continue;
        table.add_row({name, std::to_string(stats.count()),
                       fmt_double(stats.min(), 4),
                       fmt_double(stats.mean(), 4),
                       fmt_double(stats.max(), 4)});
    }
    if (csv_out)
        table.print_csv(std::cout);
    else
        table.print(std::cout);

    std::printf("records: %ld\n", st.records);
    std::printf("trace_end_s: %s\n", fmt_double(st.end_time, 3).c_str());
    if (st.vf_changed) {
        std::printf("vf_settled_at_s: %s\n",
                    fmt_double(st.vf_settled_at, 3).c_str());
        std::printf("vf_settling_margin_s: %s\n",
                    fmt_double(st.end_time - st.vf_settled_at, 3)
                        .c_str());
    } else {
        std::printf("vf_settled_at_s: 0.000 (no V-F change observed)\n");
    }

    // Incremental-clearing skip totals (from the final counters
    // record; identical with incrementality on or off -- the dirty
    // bookkeeping runs in both modes).  Absent on baseline traces.
    auto counter_total = [&st](const char* name) -> double {
        const auto it = st.series.find(name);
        return it != st.series.end() ? it->second.max() : 0.0;
    };
    const double skipped_tasks = counter_total("market.tasks_skipped");
    const double skipped_cores = counter_total("market.cores_skipped");
    const double early_exits = counter_total("market.rounds_early_exit");
    if (skipped_tasks > 0 || skipped_cores > 0 || early_exits > 0) {
        std::printf("market_tasks_skipped: %s\n",
                    fmt_double(skipped_tasks, 0).c_str());
        std::printf("market_cores_skipped: %s\n",
                    fmt_double(skipped_cores, 0).c_str());
        std::printf("market_rounds_early_exit: %s\n",
                    fmt_double(early_exits, 0).c_str());
    }

    // Fleet fault-tolerance totals (Fleet::bus() counters; absent on
    // single-chip and healthy-fleet traces).  The conservation line
    // restates the engine invariant for eyeballing dumps: every
    // evacuation either landed or was still queued at the end.
    const double failures = counter_total("fleet.chip_failures");
    const double recoveries = counter_total("fleet.chip_recoveries");
    const double evacuations = counter_total("fleet.evacuations");
    if (failures > 0 || recoveries > 0 || evacuations > 0) {
        std::printf("fleet_chip_failures: %s\n",
                    fmt_double(failures, 0).c_str());
        std::printf("fleet_chip_recoveries: %s\n",
                    fmt_double(recoveries, 0).c_str());
        std::printf("fleet_evacuations: %s\n",
                    fmt_double(evacuations, 0).c_str());
        std::printf("fleet_evac_landed: %s\n",
                    fmt_double(counter_total("fleet.evac_landed"), 0)
                        .c_str());
        std::printf("fleet_evac_pending: %s\n",
                    fmt_double(counter_total("fleet.evac_pending"), 0)
                        .c_str());
        std::printf("fleet_rejections: %s\n",
                    fmt_double(counter_total("fleet.rejections"), 0)
                        .c_str());
        std::printf("fleet_watchdog_trips: %s\n",
                    fmt_double(counter_total("fleet.watchdog_trips"), 0)
                        .c_str());
    }

    // Snapshot accounting (ppm_run --snapshot-every riders).
    const double snap_saves = counter_total("snapshot.saves");
    if (snap_saves > 0) {
        std::printf("snapshot_saves: %s\n",
                    fmt_double(snap_saves, 0).c_str());
        std::printf("snapshot_bytes: %s\n",
                    fmt_double(counter_total("snapshot.bytes"), 0)
                        .c_str());
    }
    return 0;
}

/**
 * @file
 * Differential fuzz driver: generate seeded random scenarios, execute
 * each one every way the engine is supposed to be equivalent (every
 * policy, macro-step vs per-tick, market clearing on one worker vs a
 * pool) and check the global invariants (byte-identical summaries and
 * telemetry, market budget conservation, summary sanity, fault
 * counters).  On a violation the scenario is auto-shrunk and the
 * minimized reproducer written as a fixture file with a one-line
 * replay command.
 *
 * Usage:
 *   ppm_fuzz [--count N] [--seed N] [--jobs N] [--no-shrink]
 *            [--max-violations K] [--fixture-dir DIR]
 *            [--json-out FILE] [--replay FILE] [--print-scenario N]
 *
 * Exit code: 0 = every scenario clean, 1 = violations found,
 * 2 = CLI error.
 *
 * Scenario seeds are derived as scenario_seed(--seed, index), so any
 * failing scenario can be regenerated from the campaign seed and its
 * index alone -- but the minimized fixture plus
 * `ppm_fuzz --replay FILE` is the preferred repro: it is immune to
 * generator changes.
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "cli_util.hh"
#include "experiment/sweep.hh"
#include "fuzz/check.hh"
#include "fuzz/scenario.hh"
#include "fuzz/shrink.hh"

namespace {

using namespace ppm;

void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--count N] [--seed N] [--jobs N] [--no-shrink]\n"
        "          [--max-violations K] [--fixture-dir DIR]\n"
        "          [--json-out FILE] [--replay FILE]\n"
        "          [--print-scenario N]\n"
        "\n"
        "Generates N seeded scenarios and checks every equivalence\n"
        "the engine promises (macro==tick, jobs=1==jobs=N, budget\n"
        "conservation, fault counters).  Violations are shrunk to\n"
        "minimal reproducers; --replay FILE re-checks one fixture.\n"
        "Exit: 0 clean, 1 violations, 2 usage error.\n",
        argv0);
    std::exit(2);
}

/**
 * In-flight scenario registry for crash triage: panic()/PPM_ASSERT
 * abort the process, losing which scenario was being simulated.  Each
 * worker parks its current scenario seed in a slot; the SIGABRT
 * handler dumps the live slots with write(2) (async-signal-safe) so
 * the seed is always recoverable from the crash log.
 */
constexpr int kMaxInflight = 64;
std::atomic<std::uint64_t> g_inflight[kMaxInflight];

class InflightGuard
{
  public:
    explicit InflightGuard(std::uint64_t seed)
    {
        for (int i = 0; i < kMaxInflight; ++i) {
            std::uint64_t expected = 0;
            // Seeds are parked +1 so seed 0 is representable.
            if (g_inflight[i].compare_exchange_strong(expected,
                                                      seed + 1)) {
                slot_ = i;
                return;
            }
        }
    }

    ~InflightGuard()
    {
        if (slot_ >= 0)
            g_inflight[slot_].store(0);
    }

  private:
    int slot_ = -1;
};

void
abort_handler(int)
{
    // Async-signal-safe: fixed buffers, write(2) only.
    const char* head = "\nppm_fuzz: aborted while checking scenario "
                       "seed(s):";
    ssize_t ignored = write(2, head, std::strlen(head));
    char buf[32];
    for (int i = 0; i < kMaxInflight; ++i) {
        std::uint64_t s = g_inflight[i].load();
        if (s == 0)
            continue;
        --s;
        int n = sizeof buf;
        buf[--n] = ' ';
        if (s == 0)
            buf[--n] = '0';
        while (s > 0 && n > 0) {
            buf[--n] = static_cast<char>('0' + s % 10);
            s /= 10;
        }
        ignored = write(2, buf + n, sizeof buf - static_cast<std::size_t>(n));
    }
    ignored = write(2, "\n", 1);
    (void)ignored;
    std::signal(SIGABRT, SIG_DFL);
}

/** Everything the sweep records about one violating scenario. */
struct Failure {
    std::uint64_t seed = 0;
    std::uint64_t index = 0;
    fuzz::Violation violation;  ///< First violation of the scenario.
    int n_violations = 0;
};

std::string
sanitize(const std::string& s)
{
    std::string out;
    for (const char c : s) {
        out.push_back(
            (std::isalnum(static_cast<unsigned char>(c)) != 0)
                ? c
                : '-');
    }
    return out;
}

int
replay_fixture(const std::string& path, bool do_shrink)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "ppm_fuzz: cannot read '%s'\n",
                     path.c_str());
        return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    fuzz::Scenario sc;
    std::string error;
    if (!fuzz::parse_scenario(text.str(), &sc, &error)) {
        std::fprintf(stderr, "ppm_fuzz: bad scenario '%s': %s\n",
                     path.c_str(), error.c_str());
        return 2;
    }
    const std::vector<fuzz::Violation> violations =
        fuzz::check_scenario(sc);
    if (violations.empty()) {
        std::printf("replay %s: clean\n", path.c_str());
        return 0;
    }
    for (const fuzz::Violation& v : violations) {
        std::printf("replay %s: %s [%s] %s\n", path.c_str(),
                    v.invariant.c_str(), v.policy.c_str(),
                    v.detail.c_str());
    }
    if (do_shrink) {
        const fuzz::ShrinkResult r =
            fuzz::shrink(sc, violations.front());
        std::printf("shrunk reproducer (%d evaluations):\n%s",
                    r.evaluations,
                    fuzz::serialize(r.scenario).c_str());
    }
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    long count = 1000;
    std::uint64_t base_seed = 1;
    int jobs = 0;
    bool do_shrink = true;
    long max_violations = 5;
    std::string fixture_dir;
    std::string json_path;
    std::string replay_path;
    long print_index = -1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.rfind("--", 0) == 0) {
            const std::size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg.erase(eq);
                has_inline = true;
            }
        }
        auto next = [&]() -> const char* {
            if (has_inline)
                return inline_value.c_str();
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--count") {
            const char* text = next();
            count = cli::parse_int("ppm_fuzz", "--count", text);
            if (count < 1)
                cli::bad_arg("ppm_fuzz", "--count",
                             "expects an integer >= 1", text);
        } else if (arg == "--seed") {
            base_seed = cli::parse_u64("ppm_fuzz", "--seed", next());
        } else if (arg == "--jobs") {
            const char* text = next();
            jobs = static_cast<int>(
                cli::parse_int("ppm_fuzz", "--jobs", text));
            if (jobs < 0)
                cli::bad_arg("ppm_fuzz", "--jobs",
                             "expects an integer >= 0", text);
        } else if (arg == "--shrink") {
            do_shrink = true;
        } else if (arg == "--no-shrink") {
            do_shrink = false;
        } else if (arg == "--max-violations") {
            const char* text = next();
            max_violations =
                cli::parse_int("ppm_fuzz", "--max-violations", text);
            if (max_violations < 1)
                cli::bad_arg("ppm_fuzz", "--max-violations",
                             "expects an integer >= 1", text);
        } else if (arg == "--fixture-dir") {
            fixture_dir = next();
        } else if (arg == "--json-out") {
            json_path = next();
        } else if (arg == "--replay") {
            replay_path = next();
        } else if (arg == "--print-scenario") {
            const char* text = next();
            print_index =
                cli::parse_int("ppm_fuzz", "--print-scenario", text);
            if (print_index < 0)
                cli::bad_arg("ppm_fuzz", "--print-scenario",
                             "expects an index >= 0", text);
        } else {
            std::fprintf(stderr, "ppm_fuzz: unknown flag '%s'\n",
                         arg.c_str());
            usage(argv[0]);
        }
    }

    if (print_index >= 0) {
        const fuzz::Scenario sc =
            fuzz::generate_scenario(fuzz::scenario_seed(
                base_seed, static_cast<std::uint64_t>(print_index)));
        std::fputs(fuzz::serialize(sc).c_str(), stdout);
        return 0;
    }
    if (!replay_path.empty())
        return replay_fixture(replay_path, do_shrink);

    std::signal(SIGABRT, abort_handler);

    // The sweep: one cell per scenario, fanned out over the sweep
    // runner's deterministic pool (results reduce in index order).
    std::atomic<long> done{0};
    std::vector<std::function<Failure()>> cells;
    cells.reserve(static_cast<std::size_t>(count));
    for (long i = 0; i < count; ++i) {
        const std::uint64_t index = static_cast<std::uint64_t>(i);
        cells.push_back([index, base_seed, count, &done]() {
            const std::uint64_t seed =
                fuzz::scenario_seed(base_seed, index);
            InflightGuard guard(seed);
            const fuzz::Scenario sc = fuzz::generate_scenario(seed);
            const std::vector<fuzz::Violation> violations =
                fuzz::check_scenario(sc);
            const long n = done.fetch_add(1) + 1;
            if (n % 500 == 0)
                std::fprintf(stderr, "ppm_fuzz: %ld/%ld scenarios\n",
                             n, count);
            Failure f;
            if (!violations.empty()) {
                f.seed = seed;
                f.index = index;
                f.violation = violations.front();
                f.n_violations =
                    static_cast<int>(violations.size());
            }
            return f;
        });
    }

    const auto start = std::chrono::steady_clock::now();
    const std::vector<Failure> results =
        experiment::run_cells<Failure>(std::move(cells), jobs);
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    std::vector<Failure> failures;
    for (const Failure& f : results)
        if (f.n_violations > 0)
            failures.push_back(f);

    std::printf("ppm_fuzz: %ld scenarios, %zu violating, %.1f s "
                "(%.1f scenarios/s), seed %llu\n",
                count, failures.size(), wall,
                static_cast<double>(count) / std::max(wall, 1e-9),
                static_cast<unsigned long long>(base_seed));

    // Shrink and report the first K failures, serially.
    long reported = 0;
    for (const Failure& f : failures) {
        if (reported++ >= max_violations) {
            std::printf("... and %zu more violating scenarios "
                        "(raise --max-violations to see them)\n",
                        failures.size() -
                            static_cast<std::size_t>(reported - 1));
            break;
        }
        std::printf("violation: scenario %llu (seed %llu): %s [%s] "
                    "%s\n",
                    static_cast<unsigned long long>(f.index),
                    static_cast<unsigned long long>(f.seed),
                    f.violation.invariant.c_str(),
                    f.violation.policy.c_str(),
                    f.violation.detail.c_str());
        fuzz::Scenario sc = fuzz::generate_scenario(f.seed);
        if (do_shrink) {
            const fuzz::ShrinkResult r =
                fuzz::shrink(sc, f.violation);
            sc = r.scenario;
            std::printf("  shrunk in %d evaluations (tasks %zu, "
                        "duration %lld ms)\n",
                        r.evaluations, sc.tasks.size(),
                        static_cast<long long>(sc.duration /
                                               kMillisecond));
        }
        if (!fixture_dir.empty()) {
            // Create the directory on first use: a missing fixture
            // dir must not silently drop the minimized reproducer.
            std::error_code ec;
            std::filesystem::create_directories(fixture_dir, ec);
            const std::string name =
                sanitize(f.violation.invariant) + "-" +
                sanitize(f.violation.policy) + "-seed" +
                std::to_string(f.seed) + ".scenario";
            const std::string path = fixture_dir + "/" + name;
            std::ofstream out(path);
            out << fuzz::serialize(sc);
            out.close();
            if (!out) {
                std::fprintf(stderr,
                             "ppm_fuzz: cannot write fixture '%s'\n",
                             path.c_str());
            } else {
                std::printf("  fixture: %s\n  replay:  ppm_fuzz "
                            "--replay %s\n",
                            path.c_str(), path.c_str());
            }
        }
    }

    if (!json_path.empty()) {
        std::ofstream js(json_path);
        js << "{\n"
           << "  \"count\": " << count << ",\n"
           << "  \"violations\": " << failures.size() << ",\n"
           << "  \"seed\": " << base_seed << ",\n"
           << "  \"wall_seconds\": " << wall << ",\n"
           << "  \"scenarios_per_sec\": "
           << static_cast<double>(count) / std::max(wall, 1e-9)
           << "\n}\n";
        if (!js)
            std::fprintf(stderr,
                         "ppm_fuzz: cannot write json to '%s'\n",
                         json_path.c_str());
    }

    return failures.empty() ? 0 : 1;
}

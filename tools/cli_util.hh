/**
 * @file
 * Strict numeric argument parsing shared by the command-line tools
 * (ppm_run, ppm_fuzz).
 *
 * Every helper enforces the full exit-2 CLI contract: the complete
 * argument must parse (no trailing garbage), the value must be
 * representable (out-of-range input is an error, not a silent clamp
 * to HUGE_VAL/LONG_MAX), and floating-point values must be finite
 * ("inf"/"nan" are valid strtod input but never valid knob values).
 */

#ifndef PPM_TOOLS_CLI_UTIL_HH
#define PPM_TOOLS_CLI_UTIL_HH

#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace ppm::cli {

/** One-line CLI error + exit 2 (bad value for a known flag). */
[[noreturn]] inline void
bad_arg(const char* prog, const char* flag, const char* why,
        const char* got)
{
    std::fprintf(stderr, "%s: %s %s (got '%s')\n", prog, flag, why,
                 got);
    std::exit(2);
}

/**
 * Parse a finite double; rejects empty input, trailing garbage,
 * overflow/underflow (ERANGE) and non-finite values.
 */
inline double
parse_number(const char* prog, const char* flag, const char* text)
{
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(text, &end);
    if (end == text || *end != '\0')
        bad_arg(prog, flag, "expects a number", text);
    if (errno == ERANGE)
        bad_arg(prog, flag, "is out of range", text);
    if (!std::isfinite(v))
        bad_arg(prog, flag, "expects a finite number", text);
    return v;
}

/**
 * Parse a long; rejects empty input, trailing garbage and values
 * outside the representable range (strtol clamps to LONG_MIN/MAX and
 * sets ERANGE -- a clamped knob is a wrong knob).
 */
inline long
parse_int(const char* prog, const char* flag, const char* text)
{
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(text, &end, 10);
    if (end == text || *end != '\0')
        bad_arg(prog, flag, "expects an integer", text);
    if (errno == ERANGE)
        bad_arg(prog, flag, "is out of range", text);
    return v;
}

/** Parse an unsigned 64-bit integer (seeds); same strictness. */
inline std::uint64_t
parse_u64(const char* prog, const char* flag, const char* text)
{
    if (text[0] == '-')
        bad_arg(prog, flag, "expects a non-negative integer", text);
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0')
        bad_arg(prog, flag, "expects a non-negative integer", text);
    if (errno == ERANGE)
        bad_arg(prog, flag, "is out of range", text);
    return static_cast<std::uint64_t>(v);
}

} // namespace ppm::cli

#endif // PPM_TOOLS_CLI_UTIL_HH

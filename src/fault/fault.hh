/**
 * @file
 * Deterministic fault injection for the simulated platform.
 *
 * A FaultPlan is a schedule of fault windows compiled *before* the run
 * (all randomness is consumed at compile time from a seeded Rng), so a
 * given (spec, chip, duration) triple always produces the same faults.
 * The FaultInjector owns the plan at run time and sits between the
 * governors and the hardware:
 *
 *  - sensor faults   : reads are dropped, stuck at the last value,
 *                      perturbed by bounded Gaussian noise, or stale;
 *  - DVFS faults     : a level request fails (retry with backoff) or
 *                      lands a configurable delay late;
 *  - migration faults: a migration fails and is retried, or its
 *                      latency is multiplied;
 *  - platform events : a core goes offline temporarily (tasks are
 *                      evacuated) and is later restored.
 *
 * Determinism under macro-stepping: every fault edge (window start and
 * end, pending-action due time, core restoration time) is exposed via
 * next_edge() and bounds the event-horizon engine, and all runtime
 * "randomness" (sensor noise) is a stateless hash of (event salt,
 * cluster, time).  Macro-step and per-tick runs therefore see the
 * exact same injected values at the exact same ticks.
 */

#ifndef PPM_FAULT_FAULT_HH
#define PPM_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ppm::hw {
class Chip;
class SensorBank;
} // namespace ppm::hw

namespace ppm::sched {
class Scheduler;
} // namespace ppm::sched

namespace ppm::metrics {
class TraceBus;
} // namespace ppm::metrics

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::fault {

/**
 * Abstract DVFS actuation port.  Governors and the market route level
 * changes through this interface so a FaultInjector (or any other
 * interposer) can defer, fail or retry them.  Header-only on purpose:
 * the market library depends on the interface, not on the injector.
 */
class DvfsPort
{
public:
    virtual ~DvfsPort() = default;

    /**
     * Request that `cluster` move to `level` (clamped to the table).
     * Returns true iff the hardware level changed *now*; deferred or
     * failed requests return false.
     */
    virtual bool request_level(ClusterId cluster, int level) = 0;

    /** Request a relative step, same contract as request_level(). */
    virtual bool request_step(ClusterId cluster, int delta) = 0;
};

/** One injectable fault class. */
enum class FaultKind {
    kSensorDrop,     ///< Read fails; consumer falls back to last-good.
    kSensorStuck,    ///< Read silently returns the last-good value.
    kSensorNoise,    ///< Read is perturbed by bounded Gaussian noise.
    kSensorStale,    ///< Read is served from an old timestamp.
    kDvfsFail,       ///< set_level fails; retried with backoff.
    kDvfsDelay,      ///< set_level lands `delay` late.
    kMigrationFail,  ///< Migration fails; retried with backoff.
    kMigrationSlow,  ///< Migration latency multiplied by `magnitude`.
    kCoreOffline,    ///< Core offlined for the window, then restored.
};

/** Stable lowercase name for specs, traces and test output. */
const char* fault_kind_name(FaultKind kind);

/** One scheduled fault window, active over [start, end). */
struct FaultEvent {
    FaultKind kind = FaultKind::kSensorDrop;
    SimTime start = 0;
    SimTime end = 0;
    /** Cluster id (sensor/DVFS), core id (offline); kInvalidId = all. */
    int target = kInvalidId;
    /** Noise sigma in watts, or migration latency multiplier. */
    double magnitude = 0.0;
    /** DVFS landing delay, or the age of a stale sensor sample. */
    SimTime delay = 0;
    /** Per-event salt for the stateless noise hash. */
    std::uint64_t salt = 0;
};

/**
 * User-facing fault configuration, parsed from `--faults <spec>`.
 * A spec is a comma-separated token list: class names enable fault
 * classes (`sensor`, `dvfs`, `migration`, `offline`, `all`) and
 * `key=value` pairs tune the knobs, e.g.
 * `seed=7,sensor,dvfs,rate=12,staleness_ms=100`.
 */
struct FaultSpec {
    std::uint64_t seed = 1;
    bool sensor = false;
    bool dvfs = false;
    bool migration = false;
    bool offline = false;
    /** Mean fault events per minute, per enabled class. */
    double rate_per_min = 6.0;
    /** Mean fault-window length. */
    SimTime mean_duration = 400 * kMillisecond;
    /** Sigma of injected Gaussian sensor noise (clamped to 3 sigma). */
    double noise_sigma_w = 0.5;
    /** How late a delayed DVFS request lands. */
    SimTime dvfs_delay = 8 * kMillisecond;
    /** Age of readings served by a stale-timestamp fault. */
    SimTime stale_age = 400 * kMillisecond;
    /** Staleness age beyond which governors enter safe mode. */
    SimTime staleness_bound = 250 * kMillisecond;
    /** Retry budget for failed DVFS/migration requests. */
    int max_retries = 4;
    /** Initial retry backoff (doubles per attempt). */
    SimTime retry_backoff = 4 * kMillisecond;

    // Fleet-scope (chip-level) fault classes, consumed by
    // FleetFaultPlan rather than the per-chip FaultPlan.
    bool chip_fail = false;     ///< Whole chips drop out of the fleet.
    bool chip_degrade = false;  ///< Chips get a clamped budget.
    bool chip_recover = false;  ///< Failed/degraded chips return.
    /** Mean chip-level fault events per minute, per enabled class. */
    double chip_rate_per_min = 2.0;
    /** Budget multiplier applied to a degraded chip, in (0, 1]. */
    double degrade_factor = 0.5;

    bool any() const { return sensor || dvfs || migration || offline; }

    /** Any chip-level class enabled (fleet fault handling engages). */
    bool any_fleet() const { return chip_fail || chip_degrade; }
};

/**
 * Parse a `--faults` spec into `*spec`.  Returns false and fills
 * `*error` with a one-line message on malformed input.
 */
bool parse_fault_spec(const std::string& text, FaultSpec* spec,
                      std::string* error);

/**
 * A compiled, immutable schedule of fault events (sorted by start
 * time) plus the degradation knobs the injector and guards consume.
 */
class FaultPlan
{
public:
    /**
     * Compile `spec` into a concrete schedule for a chip with
     * `num_clusters`/`num_cores` over `[0, duration)`.  All randomness
     * is drawn here, from Rng(spec.seed); event times land on the
     * `tick` grid so macro and per-tick runs agree exactly.
     */
    static FaultPlan compile(const FaultSpec& spec, int num_clusters,
                             int num_cores, SimTime duration,
                             SimTime tick = kMillisecond);

    /** Append one event (tests build plans by hand). */
    void add(const FaultEvent& ev);

    bool empty() const { return events_.empty(); }
    const std::vector<FaultEvent>& events() const { return events_; }

    /** Staleness age beyond which SensorGuard enters safe mode. */
    SimTime staleness_bound = 250 * kMillisecond;
    /** Retry budget for failed DVFS/migration requests. */
    int max_retries = 4;
    /** Initial retry backoff (doubles per attempt). */
    SimTime retry_backoff = 4 * kMillisecond;

private:
    std::vector<FaultEvent> events_;
};

/** One chip-level fault class (fleet scope). */
enum class FleetFaultKind {
    kChipFail,     ///< Chip withdrawn from settlement and placement.
    kChipDegrade,  ///< Chip budget clamped by `factor`.
    kChipRecover,  ///< Chip restored to healthy.
};

/** Stable lowercase name for specs, traces and test output. */
const char* fleet_fault_kind_name(FleetFaultKind kind);

/** One chip-level fault transition, applied at a settlement barrier. */
struct FleetFaultEvent {
    FleetFaultKind kind = FleetFaultKind::kChipFail;
    SimTime time = 0;       ///< Barrier tick the transition lands on.
    int chip = 0;           ///< Target chip index.
    double factor = 1.0;    ///< Budget multiplier (degrade only).
};

/**
 * A compiled, immutable schedule of chip-level fault transitions,
 * sorted by (time, chip).  Like FaultPlan, all randomness is consumed
 * at compile time; the runtime applies transitions as the fleet's
 * settlement barriers cross their timestamps, so macro-stepping and
 * restarts replay the identical sequence.
 */
class FleetFaultPlan
{
public:
    /**
     * Compile `spec` for a fleet of `num_chips` over `[0, duration)`.
     * Event times land on the `epoch` (settlement-barrier) grid.  The
     * Rng seed is decoupled from the per-chip FaultPlan stream by a
     * mix64 step, so enabling chip classes never perturbs the chips'
     * own fault schedules.  Without `chip_recover`, failures and
     * degradations are permanent; with it, each window is closed by a
     * recover transition.
     */
    static FleetFaultPlan compile(const FaultSpec& spec, int num_chips,
                                  SimTime duration, SimTime epoch);

    /** Append one transition (tests build plans by hand). */
    void add(const FleetFaultEvent& ev);

    bool empty() const { return events_.empty(); }
    const std::vector<FleetFaultEvent>& events() const
    {
        return events_;
    }

private:
    std::vector<FleetFaultEvent> events_;
};

/** Counters surfaced into RunSummary and onto the TraceBus. */
struct FaultStats {
    long injected = 0;           ///< Fault windows activated.
    long sensor_fallbacks = 0;   ///< Reads served degraded/last-good.
    long dvfs_deferred = 0;      ///< Level requests not applied now.
    long dvfs_retries = 0;       ///< Deferred-level retry attempts.
    long migration_retries = 0;  ///< Migration retry attempts.
    long dropped_actions = 0;    ///< Requests dropped after retries.
    long offline_events = 0;     ///< Cores actually taken offline.
    long safe_mode_entries = 0;  ///< Governor safe-mode transitions.
    long watchdog_trips = 0;     ///< Market watchdog interventions.
    SimTime safe_mode_time = 0;  ///< Total time spent in safe mode.
};

/**
 * Runtime fault machinery: applies the plan tick by tick, interposes
 * on DVFS and migration requests, and answers "is a fault active"
 * queries from the sensor guards.  Owned by the Simulation; absent
 * (null) on clean runs so the clean hot path is untouched.
 */
class FaultInjector final : public DvfsPort
{
public:
    /** Horizon sentinel: no more fault edges. */
    static constexpr SimTime kNoEdge = SimTime{1} << 60;

    FaultInjector(FaultPlan plan, hw::Chip* chip,
                  sched::Scheduler* sched, metrics::TraceBus* bus);

    /**
     * Advance to `now`: restore offline cores whose window ended,
     * activate newly started fault windows (offlining cores and
     * evacuating their tasks), and land or retry pending DVFS and
     * migration requests that have come due.  Called once per step,
     * before the governor runs.
     */
    void tick(SimTime now);

    /**
     * The next time (> now) at which injector state changes: a window
     * opens or closes, a pending action comes due, or a core returns.
     * Bounds the event-horizon engine; kNoEdge when nothing is left.
     */
    SimTime next_edge(SimTime now) const;

    /** Any fault window (of any class) contains `now`. */
    bool any_fault_active(SimTime now) const;

    /** Any *sensor* fault window contains `now`. */
    bool sensor_fault_active(SimTime now) const;

    /**
     * The first (by schedule order) active sensor fault that targets
     * cluster `cluster` (or all clusters); null when reads are clean.
     */
    const FaultEvent* active_sensor_event(ClusterId cluster,
                                          SimTime now) const;

    /**
     * Bounded Gaussian offset for a noise fault: a stateless hash of
     * (event salt, cluster, now) fed through Box-Muller and clamped
     * to +/-3 sigma.  Pure function of its inputs, so macro-step
     * replay cannot diverge from per-tick execution.
     */
    double noise_offset(const FaultEvent& ev, ClusterId cluster,
                        SimTime now) const;

    // DvfsPort: level requests, subject to DVFS fault windows.
    bool request_level(ClusterId cluster, int level) override;
    bool request_step(ClusterId cluster, int delta) override;

    /**
     * Request a migration of `task` to `core`.  Returns true iff the
     * migration was issued now; offline destinations are rejected and
     * fail-window requests are queued for retry (both return false).
     */
    bool request_migration(TaskId task, CoreId core, SimTime now);

    /** Latency multiplier from any active slow-migration fault. */
    double migration_cost_scale(SimTime now) const;

    const FaultPlan& plan() const { return plan_; }
    FaultStats& stats() { return stats_; }
    const FaultStats& stats() const { return stats_; }

    /** Count one degraded read on the bus (called by SensorGuard). */
    void count_sensor_fallback();
    /** Count one safe-mode entry on the bus (called by SensorGuard). */
    void count_safe_mode_entry();
    /** Count one watchdog trip on the bus (called by the market). */
    void count_watchdog_trip();

    /** Cursors and pending actions; the plan itself is recompiled. */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

private:
    using SeriesIdOpaque = std::int32_t;

    struct PendingLevel {
        int level = 0;
        SimTime due = 0;
        int retries_left = 0;
        SimTime backoff = 0;
        bool from_fail = false;
        bool active = false;
    };
    struct PendingMigration {
        TaskId task = kInvalidId;
        CoreId core = kInvalidId;
        SimTime due = 0;
        int retries_left = 0;
        SimTime backoff = 0;
    };

    const FaultEvent* active_dvfs_event(ClusterId cluster,
                                        SimTime now) const;
    const FaultEvent* active_migration_event(FaultKind kind,
                                             SimTime now) const;
    void begin_offline(const FaultEvent& ev, SimTime now);
    CoreId evacuation_target(CoreId from) const;
    void bump(SeriesIdOpaque id);

    FaultPlan plan_;
    hw::Chip* chip_;
    sched::Scheduler* sched_;
    metrics::TraceBus* bus_;
    FaultStats stats_;
    SimTime now_ = 0;
    std::size_t next_start_ = 0;
    std::vector<PendingLevel> pending_level_;    // Indexed by cluster.
    std::vector<PendingMigration> pending_mig_;
    std::vector<SimTime> offline_until_;         // Indexed by core; 0 = online.

    // Interned TraceBus counter ids (see fault.cc for the names).
    SeriesIdOpaque id_injected_ = -1;
    SeriesIdOpaque id_fallback_ = -1;
    SeriesIdOpaque id_deferred_ = -1;
    SeriesIdOpaque id_retry_ = -1;
    SeriesIdOpaque id_dropped_ = -1;
    SeriesIdOpaque id_offline_ = -1;
    SeriesIdOpaque id_safe_entry_ = -1;
    SeriesIdOpaque id_watchdog_ = -1;
};

/**
 * Last-good-value sensor fallback shared by all three governors.
 *
 * Every power read goes through the guard.  Clean reads refresh the
 * per-cluster last-good cache and carry age zero.  Degraded reads
 * (drop/stale) are served from the cache and contribute a staleness
 * age; when the worst age observed since the previous evaluation
 * exceeds the plan's staleness bound, the guard reports *safe mode*
 * and the governor clamps to the lowest V-F level and freezes policy
 * decisions until fresh readings return.  Stuck-at faults are served
 * from the cache too but are, by construction, undetectable: they add
 * no staleness age.  With a null injector every read is a verbatim
 * pass-through, bit-identical to the unguarded call.
 */
class SensorGuard
{
public:
    /** `injector` may be null (clean run: all reads pass through). */
    void init(int num_clusters, FaultInjector* injector);

    Watts read_average(const hw::SensorBank& bank, ClusterId cluster,
                       SimTime now);
    Watts read_instantaneous(const hw::SensorBank& bank,
                             ClusterId cluster, SimTime now);
    Watts read_chip_average(const hw::SensorBank& bank, SimTime now);
    Watts read_chip_instantaneous(const hw::SensorBank& bank,
                                  SimTime now);

    /**
     * Evaluate the safe-mode state from the reads since the previous
     * evaluation, and account the elapsed interval as safe-mode time
     * if the guard was already in safe mode.  Call once per decision
     * epoch, after the epoch's reads.
     */
    void update_safe_mode(SimTime now);

    /**
     * Install the per-cluster last-good values a run of clean
     * (fault-free) reads would have left behind, without touching
     * fault statistics or the staleness state.  Used by governors
     * that read every tick to replay a macro-stepped interval's
     * observations in bulk: across a quiescent interval every read
     * is clean (fault edges bound the interval), so the only state a
     * per-tick run accumulates is the final read's value per cluster.
     */
    void replay_clean_reads(const std::vector<Watts>& last_good);

    bool safe_mode() const { return safe_; }

    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

private:
    Watts filter(Watts raw, ClusterId cluster, SimTime now);

    FaultInjector* injector_ = nullptr;
    std::vector<Watts> last_good_;
    SimTime bound_ = 250 * kMillisecond;
    SimTime worst_age_ = 0;
    SimTime last_eval_ = 0;
    bool safe_ = false;
};

} // namespace ppm::fault

#endif // PPM_FAULT_FAULT_HH

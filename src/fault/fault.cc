/**
 * @file
 * Fault plan compilation, the runtime injector, and the sensor guard.
 */

#include "fault/fault.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"
#include "hw/platform.hh"
#include "hw/sensors.hh"
#include "metrics/telemetry.hh"
#include "sched/scheduler.hh"

namespace ppm::fault {

const char*
fault_kind_name(FaultKind kind)
{
    switch (kind) {
    case FaultKind::kSensorDrop: return "sensor_drop";
    case FaultKind::kSensorStuck: return "sensor_stuck";
    case FaultKind::kSensorNoise: return "sensor_noise";
    case FaultKind::kSensorStale: return "sensor_stale";
    case FaultKind::kDvfsFail: return "dvfs_fail";
    case FaultKind::kDvfsDelay: return "dvfs_delay";
    case FaultKind::kMigrationFail: return "migration_fail";
    case FaultKind::kMigrationSlow: return "migration_slow";
    case FaultKind::kCoreOffline: return "core_offline";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Spec parsing.

namespace {

bool
parse_number(const std::string& value, double* out)
{
    if (value.empty())
        return false;
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end != value.c_str() + value.size() || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

bool
fail(std::string* error, const std::string& message)
{
    if (error != nullptr)
        *error = message;
    return false;
}

} // namespace

bool
parse_fault_spec(const std::string& text, FaultSpec* spec,
                 std::string* error)
{
    PPM_ASSERT(spec != nullptr, "parse_fault_spec needs an output spec");
    FaultSpec out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string token = text.substr(pos, comma - pos);
        pos = comma + 1;
        if (token.empty())
            continue;
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos) {
            if (token == "sensor") {
                out.sensor = true;
            } else if (token == "dvfs") {
                out.dvfs = true;
            } else if (token == "migration" || token == "mig") {
                out.migration = true;
            } else if (token == "offline") {
                out.offline = true;
            } else if (token == "all") {
                out.sensor = out.dvfs = out.migration = out.offline =
                    true;
            } else if (token == "chip-fail") {
                out.chip_fail = true;
            } else if (token == "chip-degrade") {
                out.chip_degrade = true;
            } else if (token == "chip-recover") {
                out.chip_recover = true;
            } else {
                return fail(error, "unknown fault class '" + token +
                                       "' (want sensor, dvfs, "
                                       "migration, offline, all, "
                                       "chip-fail, chip-degrade or "
                                       "chip-recover)");
            }
            continue;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        double num = 0.0;
        if (!parse_number(value, &num))
            return fail(error, "fault spec key '" + key +
                                   "' has a non-numeric value '" +
                                   value + "'");
        const auto positive_time = [&](SimTime* dst) {
            if (num <= 0.0)
                return fail(error, "fault spec key '" + key +
                                       "' must be > 0");
            *dst = static_cast<SimTime>(num * kMillisecond);
            return true;
        };
        if (key == "seed") {
            if (num < 0.0)
                return fail(error, "fault spec seed must be >= 0");
            out.seed = static_cast<std::uint64_t>(num);
        } else if (key == "rate") {
            if (num <= 0.0)
                return fail(error, "fault spec rate must be > 0");
            out.rate_per_min = num;
        } else if (key == "duration_ms") {
            if (!positive_time(&out.mean_duration))
                return false;
        } else if (key == "noise_w") {
            if (num < 0.0)
                return fail(error, "fault spec noise_w must be >= 0");
            out.noise_sigma_w = num;
        } else if (key == "delay_ms") {
            if (!positive_time(&out.dvfs_delay))
                return false;
        } else if (key == "stale_ms") {
            if (!positive_time(&out.stale_age))
                return false;
        } else if (key == "staleness_ms") {
            if (!positive_time(&out.staleness_bound))
                return false;
        } else if (key == "retries") {
            if (num < 0.0)
                return fail(error, "fault spec retries must be >= 0");
            out.max_retries = static_cast<int>(num);
        } else if (key == "backoff_ms") {
            if (!positive_time(&out.retry_backoff))
                return false;
        } else if (key == "chip_rate") {
            if (num <= 0.0)
                return fail(error,
                            "fault spec chip_rate must be > 0");
            out.chip_rate_per_min = num;
        } else if (key == "degrade") {
            if (num <= 0.0 || num > 1.0)
                return fail(error, "fault spec degrade must be in "
                                   "(0, 1]");
            out.degrade_factor = num;
        } else {
            return fail(error,
                        "unknown fault spec key '" + key + "'");
        }
    }
    if (!out.any() && !out.any_fleet()) {
        if (out.chip_recover)
            return fail(error,
                        "chip-recover needs chip-fail or chip-degrade "
                        "(nothing to recover from)");
        return fail(error, "fault spec enables no fault class (add "
                           "sensor, dvfs, migration, offline, all or "
                           "a chip-* class)");
    }
    *spec = out;
    return true;
}

// ---------------------------------------------------------------------------
// Plan compilation.

void
FaultPlan::add(const FaultEvent& ev)
{
    PPM_ASSERT(ev.end > ev.start && ev.start >= 0,
               "fault event window must be non-empty");
    events_.push_back(ev);
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.start < b.start;
                     });
}

FaultPlan
FaultPlan::compile(const FaultSpec& spec, int num_clusters,
                   int num_cores, SimTime duration, SimTime tick)
{
    PPM_ASSERT(num_clusters > 0 && num_cores > 0,
               "fault plan needs a non-empty chip");
    PPM_ASSERT(duration > tick && tick > 0,
               "fault plan needs a positive run window");
    FaultPlan plan;
    plan.staleness_bound = spec.staleness_bound;
    plan.max_retries = spec.max_retries;
    plan.retry_backoff = spec.retry_backoff;

    Rng rng(spec.seed);
    const double minutes = to_seconds(duration) / 60.0;
    const int per_class = std::max(
        1, static_cast<int>(std::lround(spec.rate_per_min * minutes)));
    const auto quantize = [tick](SimTime t) { return t / tick * tick; };

    // Draw the window last so every class consumes the same stream
    // shape: kind/target draws, then start/length/salt.
    const auto draw_window = [&](FaultEvent* ev) {
        const SimTime latest = duration - tick;
        const auto raw =
            static_cast<SimTime>(rng.uniform() *
                                 static_cast<double>(duration));
        ev->start = std::clamp<SimTime>(quantize(raw), tick, latest);
        const auto len = static_cast<SimTime>(
            static_cast<double>(spec.mean_duration) *
            rng.uniform(0.5, 1.5));
        ev->end = std::min<SimTime>(
            duration,
            ev->start + std::max<SimTime>(tick, quantize(len)));
        ev->salt = rng.next_u64();
    };

    if (spec.sensor) {
        static constexpr FaultKind kSensorKinds[] = {
            FaultKind::kSensorDrop, FaultKind::kSensorStuck,
            FaultKind::kSensorNoise, FaultKind::kSensorStale};
        for (int i = 0; i < per_class; ++i) {
            FaultEvent ev;
            ev.kind = kSensorKinds[rng.uniform_int(0, 3)];
            ev.target = rng.chance(0.5)
                            ? kInvalidId
                            : static_cast<int>(
                                  rng.uniform_int(0, num_clusters - 1));
            ev.magnitude = spec.noise_sigma_w;
            ev.delay = spec.stale_age;
            draw_window(&ev);
            plan.add(ev);
        }
    }
    if (spec.dvfs) {
        for (int i = 0; i < per_class; ++i) {
            FaultEvent ev;
            ev.kind = rng.chance(0.5) ? FaultKind::kDvfsFail
                                      : FaultKind::kDvfsDelay;
            ev.target = rng.chance(0.5)
                            ? kInvalidId
                            : static_cast<int>(
                                  rng.uniform_int(0, num_clusters - 1));
            ev.delay = spec.dvfs_delay;
            draw_window(&ev);
            plan.add(ev);
        }
    }
    if (spec.migration) {
        for (int i = 0; i < per_class; ++i) {
            FaultEvent ev;
            ev.kind = rng.chance(0.5) ? FaultKind::kMigrationFail
                                      : FaultKind::kMigrationSlow;
            ev.target = kInvalidId;
            ev.magnitude = rng.uniform(2.0, 8.0);
            draw_window(&ev);
            plan.add(ev);
        }
    }
    if (spec.offline) {
        for (int i = 0; i < per_class; ++i) {
            FaultEvent ev;
            ev.kind = FaultKind::kCoreOffline;
            ev.target = static_cast<int>(
                rng.uniform_int(0, num_cores - 1));
            draw_window(&ev);
            plan.add(ev);
        }
    }
    return plan;
}

// ---------------------------------------------------------------------------
// Fleet (chip-level) plan compilation.

const char*
fleet_fault_kind_name(FleetFaultKind kind)
{
    switch (kind) {
    case FleetFaultKind::kChipFail: return "chip_fail";
    case FleetFaultKind::kChipDegrade: return "chip_degrade";
    case FleetFaultKind::kChipRecover: return "chip_recover";
    }
    return "unknown";
}

void
FleetFaultPlan::add(const FleetFaultEvent& ev)
{
    PPM_ASSERT(ev.time >= 0 && ev.chip >= 0,
               "fleet fault event needs a valid time and chip");
    const auto before = [](const FleetFaultEvent& a,
                           const FleetFaultEvent& b) {
        return a.time != b.time ? a.time < b.time : a.chip < b.chip;
    };
    // Appending in time order (the common case: compiled schedules,
    // long hand-built alternations) stays O(1); out-of-order adds
    // insert at their sorted position.
    if (events_.empty() || !before(ev, events_.back())) {
        events_.push_back(ev);
        return;
    }
    events_.insert(
        std::upper_bound(events_.begin(), events_.end(), ev, before),
        ev);
}

FleetFaultPlan
FleetFaultPlan::compile(const FaultSpec& spec, int num_chips,
                        SimTime duration, SimTime epoch)
{
    PPM_ASSERT(num_chips > 0, "fleet fault plan needs chips");
    PPM_ASSERT(duration > epoch && epoch > 0,
               "fleet fault plan needs a positive run window");
    FleetFaultPlan plan;
    if (!spec.any_fleet())
        return plan;

    // Decouple from the per-chip FaultPlan stream (which consumes
    // Rng(seed) directly): enabling chip classes must never perturb
    // the chips' own schedules.
    Rng rng(mix64(spec.seed ^ 0x636869702d66ULL));  // "chip-f"
    const double minutes = to_seconds(duration) / 60.0;
    const int per_class = std::max(
        1,
        static_cast<int>(std::lround(spec.chip_rate_per_min * minutes)));
    const auto quantize = [epoch](SimTime t) {
        return t / epoch * epoch;
    };
    const SimTime latest = quantize(duration - 1);

    const auto draw = [&](FleetFaultKind kind, double factor) {
        FleetFaultEvent ev;
        ev.kind = kind;
        ev.chip = static_cast<int>(rng.uniform_int(0, num_chips - 1));
        ev.factor = factor;
        const auto raw = static_cast<SimTime>(
            rng.uniform() * static_cast<double>(duration));
        ev.time = std::clamp<SimTime>(quantize(raw), epoch, latest);
        plan.add(ev);
        if (spec.chip_recover) {
            const auto len = static_cast<SimTime>(
                static_cast<double>(spec.mean_duration) *
                rng.uniform(0.5, 1.5));
            FleetFaultEvent rec;
            rec.kind = FleetFaultKind::kChipRecover;
            rec.chip = ev.chip;
            rec.time = std::min<SimTime>(
                latest,
                ev.time + std::max<SimTime>(epoch, quantize(len)));
            if (rec.time > ev.time)
                plan.add(rec);
        } else {
            rng.uniform(0.5, 1.5);  // Keep the stream shape uniform.
        }
    };

    if (spec.chip_fail)
        for (int i = 0; i < per_class; ++i)
            draw(FleetFaultKind::kChipFail, 1.0);
    if (spec.chip_degrade)
        for (int i = 0; i < per_class; ++i)
            draw(FleetFaultKind::kChipDegrade, spec.degrade_factor);
    return plan;
}

// ---------------------------------------------------------------------------
// Injector.

FaultInjector::FaultInjector(FaultPlan plan, hw::Chip* chip,
                             sched::Scheduler* sched,
                             metrics::TraceBus* bus)
    : plan_(std::move(plan)), chip_(chip), sched_(sched), bus_(bus)
{
    PPM_ASSERT(chip_ != nullptr && sched_ != nullptr,
               "fault injector needs a chip and a scheduler");
    pending_level_.resize(
        static_cast<std::size_t>(chip_->num_clusters()));
    offline_until_.assign(static_cast<std::size_t>(chip_->num_cores()),
                          0);
    if (bus_ != nullptr) {
        id_injected_ = bus_->intern("faults_injected");
        id_fallback_ = bus_->intern("fault_sensor_fallbacks");
        id_deferred_ = bus_->intern("fault_dvfs_deferred");
        id_retry_ = bus_->intern("fault_retries");
        id_dropped_ = bus_->intern("fault_dropped_actions");
        id_offline_ = bus_->intern("fault_core_offline");
        id_safe_entry_ = bus_->intern("fault_safe_mode_entries");
        id_watchdog_ = bus_->intern("fault_watchdog_trips");
    }
}

void
FaultInjector::bump(SeriesIdOpaque id)
{
    if (bus_ != nullptr && id >= 0)
        bus_->count(id);
}

void
FaultInjector::count_sensor_fallback()
{
    bump(id_fallback_);
}

void
FaultInjector::count_safe_mode_entry()
{
    bump(id_safe_entry_);
}

void
FaultInjector::count_watchdog_trip()
{
    ++stats_.watchdog_trips;
    bump(id_watchdog_);
}

void
FaultInjector::tick(SimTime now)
{
    now_ = now;

    // Restore cores whose offline window has closed.
    for (CoreId c = 0;
         c < static_cast<CoreId>(offline_until_.size()); ++c) {
        if (offline_until_[c] != 0 && offline_until_[c] <= now) {
            offline_until_[c] = 0;
            chip_->set_core_online(c, true);
            sched_->notify_topology_changed();
        }
    }

    // Activate fault windows that have opened.
    const std::vector<FaultEvent>& events = plan_.events();
    while (next_start_ < events.size() &&
           events[next_start_].start <= now) {
        const FaultEvent& ev = events[next_start_++];
        if (ev.end <= now)
            continue;
        ++stats_.injected;
        bump(id_injected_);
        if (ev.kind == FaultKind::kCoreOffline)
            begin_offline(ev, now);
    }

    // Land (or retry) pending DVFS requests.
    for (ClusterId v = 0;
         v < static_cast<ClusterId>(pending_level_.size()); ++v) {
        PendingLevel& p = pending_level_[v];
        if (!p.active || p.due > now)
            continue;
        if (p.from_fail) {
            ++stats_.dvfs_retries;
            bump(id_retry_);
        }
        const FaultEvent* ev = active_dvfs_event(v, now);
        if (ev != nullptr && ev->kind == FaultKind::kDvfsFail) {
            if (p.retries_left > 0) {
                --p.retries_left;
                p.from_fail = true;
                p.backoff *= 2;
                p.due = now + std::max<SimTime>(p.backoff, 1);
            } else {
                p.active = false;
                ++stats_.dropped_actions;
                bump(id_dropped_);
            }
            continue;
        }
        chip_->cluster(v).set_level(p.level);
        p.active = false;
    }

    // Land (or retry) pending migrations, compacting in place.
    std::size_t keep = 0;
    for (std::size_t i = 0; i < pending_mig_.size(); ++i) {
        PendingMigration p = pending_mig_[i];
        if (p.due > now) {
            pending_mig_[keep++] = p;
            continue;
        }
        ++stats_.migration_retries;
        bump(id_retry_);
        if (!chip_->core_online(p.core)) {
            ++stats_.dropped_actions;
            bump(id_dropped_);
            continue;
        }
        const FaultEvent* ev =
            active_migration_event(FaultKind::kMigrationFail, now);
        if (ev != nullptr) {
            if (p.retries_left > 0) {
                --p.retries_left;
                p.backoff *= 2;
                p.due = now + std::max<SimTime>(p.backoff, 1);
                pending_mig_[keep++] = p;
            } else {
                ++stats_.dropped_actions;
                bump(id_dropped_);
            }
            continue;
        }
        sched_->migrate(p.task, p.core, now,
                        migration_cost_scale(now));
    }
    pending_mig_.resize(keep);
}

SimTime
FaultInjector::next_edge(SimTime now) const
{
    SimTime edge = kNoEdge;
    const auto consider = [&edge, now](SimTime t) {
        if (t > now && t < edge)
            edge = t;
    };
    for (const FaultEvent& ev : plan_.events()) {
        if (ev.start > now) {
            consider(ev.start);
            break;  // Events are sorted by start.
        }
        consider(ev.end);
    }
    for (const PendingLevel& p : pending_level_)
        if (p.active)
            consider(p.due);
    for (const PendingMigration& p : pending_mig_)
        consider(p.due);
    for (const SimTime until : offline_until_)
        if (until != 0)
            consider(until);
    return edge;
}

bool
FaultInjector::any_fault_active(SimTime now) const
{
    for (const FaultEvent& ev : plan_.events()) {
        if (ev.start > now)
            break;
        if (ev.end > now)
            return true;
    }
    return false;
}

bool
FaultInjector::sensor_fault_active(SimTime now) const
{
    for (const FaultEvent& ev : plan_.events()) {
        if (ev.start > now)
            break;
        if (ev.end <= now)
            continue;
        switch (ev.kind) {
        case FaultKind::kSensorDrop:
        case FaultKind::kSensorStuck:
        case FaultKind::kSensorNoise:
        case FaultKind::kSensorStale:
            return true;
        default:
            break;
        }
    }
    return false;
}

const FaultEvent*
FaultInjector::active_sensor_event(ClusterId cluster,
                                   SimTime now) const
{
    for (const FaultEvent& ev : plan_.events()) {
        if (ev.start > now)
            break;
        if (ev.end <= now)
            continue;
        if (ev.target != kInvalidId && ev.target != cluster)
            continue;
        switch (ev.kind) {
        case FaultKind::kSensorDrop:
        case FaultKind::kSensorStuck:
        case FaultKind::kSensorNoise:
        case FaultKind::kSensorStale:
            return &ev;
        default:
            break;
        }
    }
    return nullptr;
}

const FaultEvent*
FaultInjector::active_dvfs_event(ClusterId cluster, SimTime now) const
{
    for (const FaultEvent& ev : plan_.events()) {
        if (ev.start > now)
            break;
        if (ev.end <= now)
            continue;
        if (ev.target != kInvalidId && ev.target != cluster)
            continue;
        if (ev.kind == FaultKind::kDvfsFail ||
            ev.kind == FaultKind::kDvfsDelay)
            return &ev;
    }
    return nullptr;
}

const FaultEvent*
FaultInjector::active_migration_event(FaultKind kind,
                                      SimTime now) const
{
    for (const FaultEvent& ev : plan_.events()) {
        if (ev.start > now)
            break;
        if (ev.end <= now)
            continue;
        if (ev.kind == kind)
            return &ev;
    }
    return nullptr;
}

// The stateless mixing step for noise is the shared ppm::mix64
// (common/rng.hh) -- the exact same SplitMix64 finalizer this file
// carried locally before, so injected noise streams are unchanged.

double
FaultInjector::noise_offset(const FaultEvent& ev, ClusterId cluster,
                            SimTime now) const
{
    const std::uint64_t h1 =
        mix64(ev.salt ^ static_cast<std::uint64_t>(now));
    const std::uint64_t h2 =
        mix64(h1 ^ (static_cast<std::uint64_t>(cluster) + 1));
    // Box-Muller over two uniforms in (0, 1]; u1 is kept away from 0.
    const double u1 =
        (static_cast<double>(h1 >> 11) + 1.0) * 0x1.0p-53;
    const double u2 = static_cast<double>(h2 >> 11) * 0x1.0p-53;
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * 3.14159265358979323846 * u2);
    return ev.magnitude * std::clamp(z, -3.0, 3.0);
}

bool
FaultInjector::request_level(ClusterId cluster, int level)
{
    hw::Cluster& cl = chip_->cluster(cluster);
    const int target = cl.vf().clamp_level(level);
    PendingLevel& p =
        pending_level_[static_cast<std::size_t>(cluster)];
    const FaultEvent* ev = active_dvfs_event(cluster, now_);
    if (ev == nullptr) {
        // Latest intent wins: a clean request supersedes any pending
        // faulted one.
        p.active = false;
        const int before = cl.level();
        cl.set_level(target);
        return cl.level() != before;
    }
    if (target == cl.level() && !p.active)
        return false;
    p.level = target;
    p.retries_left = plan_.max_retries;
    p.backoff = std::max<SimTime>(plan_.retry_backoff, 1);
    if (ev->kind == FaultKind::kDvfsDelay) {
        p.from_fail = false;
        p.due = now_ + std::max<SimTime>(ev->delay, 1);
    } else {
        p.from_fail = true;
        p.due = now_ + p.backoff;
    }
    p.active = true;
    ++stats_.dvfs_deferred;
    bump(id_deferred_);
    return false;
}

bool
FaultInjector::request_step(ClusterId cluster, int delta)
{
    const hw::Cluster& cl = chip_->cluster(cluster);
    return request_level(cluster, cl.level() + delta);
}

double
FaultInjector::migration_cost_scale(SimTime now) const
{
    const FaultEvent* ev =
        active_migration_event(FaultKind::kMigrationSlow, now);
    if (ev == nullptr)
        return 1.0;
    return std::max(1.0, ev->magnitude);
}

bool
FaultInjector::request_migration(TaskId task, CoreId core,
                                 SimTime now)
{
    if (core == kInvalidId || !chip_->core_online(core)) {
        ++stats_.dropped_actions;
        bump(id_dropped_);
        return false;
    }
    const FaultEvent* ev =
        active_migration_event(FaultKind::kMigrationFail, now);
    if (ev != nullptr) {
        PendingMigration p;
        p.task = task;
        p.core = core;
        p.retries_left = plan_.max_retries;
        p.backoff = std::max<SimTime>(plan_.retry_backoff, 1);
        p.due = now + p.backoff;
        pending_mig_.push_back(p);
        return false;
    }
    sched_->migrate(task, core, now, migration_cost_scale(now));
    return true;
}

CoreId
FaultInjector::evacuation_target(CoreId from) const
{
    const ClusterId home = chip_->cluster_of(from);
    CoreId best = kInvalidId;
    std::size_t best_load = 0;
    const auto consider = [&](CoreId c) {
        if (c == from || !chip_->core_online(c))
            return;
        const std::size_t load = sched_->tasks_on(c).size();
        if (best == kInvalidId || load < best_load) {
            best = c;
            best_load = load;
        }
    };
    for (CoreId c = 0; c < chip_->num_cores(); ++c)
        if (chip_->cluster_of(c) == home)
            consider(c);
    if (best != kInvalidId)
        return best;
    for (CoreId c = 0; c < chip_->num_cores(); ++c)
        if (chip_->cluster_of(c) != home)
            consider(c);
    return best;
}

void
FaultInjector::begin_offline(const FaultEvent& ev, SimTime now)
{
    const CoreId core = ev.target;
    if (core < 0 || core >= chip_->num_cores())
        return;
    offline_until_[static_cast<std::size_t>(core)] = std::max(
        offline_until_[static_cast<std::size_t>(core)], ev.end);
    if (!chip_->core_online(core))
        return;  // Already offline; the window above was extended.
    chip_->set_core_online(core, false);
    ++stats_.offline_events;
    bump(id_offline_);
    // Evacuate in task-id order onto the least-populated online core,
    // preferring the home cluster.  If the whole chip is offline the
    // tasks stay put and simply receive no supply.
    const std::vector<TaskId> victims = sched_->tasks_on(core);
    for (const TaskId t : victims) {
        const CoreId dst = evacuation_target(core);
        if (dst == kInvalidId)
            break;
        sched_->migrate(t, dst, now);
    }
    sched_->notify_topology_changed();
}

// ---------------------------------------------------------------------------
// Sensor guard.

void
SensorGuard::init(int num_clusters, FaultInjector* injector)
{
    PPM_ASSERT(num_clusters > 0, "sensor guard needs clusters");
    injector_ = injector;
    last_good_.assign(static_cast<std::size_t>(num_clusters), 0.0);
    if (injector_ != nullptr)
        bound_ = injector_->plan().staleness_bound;
    worst_age_ = 0;
    last_eval_ = 0;
    safe_ = false;
}

Watts
SensorGuard::filter(Watts raw, ClusterId cluster, SimTime now)
{
    if (injector_ == nullptr)
        return raw;
    const FaultEvent* ev =
        injector_->active_sensor_event(cluster, now);
    const auto slot = static_cast<std::size_t>(cluster);
    if (ev == nullptr) {
        last_good_[slot] = raw;
        return raw;
    }
    FaultStats& st = injector_->stats();
    switch (ev->kind) {
    case FaultKind::kSensorNoise:
        // Perturbed but fresh: bounded noise, never negative.
        return std::max(0.0,
                        raw + injector_->noise_offset(*ev, cluster,
                                                      now));
    case FaultKind::kSensorDrop:
        ++st.sensor_fallbacks;
        injector_->count_sensor_fallback();
        worst_age_ = std::max(worst_age_, now - ev->start);
        return last_good_[slot];
    case FaultKind::kSensorStale:
        ++st.sensor_fallbacks;
        injector_->count_sensor_fallback();
        worst_age_ = std::max(worst_age_, ev->delay);
        return last_good_[slot];
    case FaultKind::kSensorStuck:
        // Stuck-at-last-value is undetectable: served from the cache
        // but contributes no staleness age.
        ++st.sensor_fallbacks;
        injector_->count_sensor_fallback();
        return last_good_[slot];
    default:
        return raw;
    }
}

Watts
SensorGuard::read_average(const hw::SensorBank& bank,
                          ClusterId cluster, SimTime now)
{
    return filter(bank.average_since_mark(cluster), cluster, now);
}

Watts
SensorGuard::read_instantaneous(const hw::SensorBank& bank,
                                ClusterId cluster, SimTime now)
{
    return filter(bank.instantaneous(cluster), cluster, now);
}

Watts
SensorGuard::read_chip_average(const hw::SensorBank& bank,
                               SimTime now)
{
    if (injector_ == nullptr)
        return bank.chip_average_since_mark();
    Watts sum = 0.0;
    for (ClusterId v = 0; v < bank.num_clusters(); ++v)
        sum += read_average(bank, v, now);
    return sum;
}

Watts
SensorGuard::read_chip_instantaneous(const hw::SensorBank& bank,
                                     SimTime now)
{
    if (injector_ == nullptr)
        return bank.instantaneous_chip();
    Watts sum = 0.0;
    for (ClusterId v = 0; v < bank.num_clusters(); ++v)
        sum += read_instantaneous(bank, v, now);
    return sum;
}

void
SensorGuard::replay_clean_reads(const std::vector<Watts>& last_good)
{
    if (injector_ == nullptr)
        return;
    PPM_ASSERT(last_good.size() == last_good_.size(),
               "replay_clean_reads cluster count mismatch");
    PPM_ASSERT(!safe_, "cannot replay clean reads in safe mode");
    last_good_ = last_good;
}

void
SensorGuard::update_safe_mode(SimTime now)
{
    if (injector_ == nullptr)
        return;
    FaultStats& st = injector_->stats();
    if (safe_)
        st.safe_mode_time += now - last_eval_;
    const bool was_safe = safe_;
    safe_ = worst_age_ > bound_;
    if (safe_ && !was_safe) {
        ++st.safe_mode_entries;
        injector_->count_safe_mode_entry();
    }
    worst_age_ = 0;
    last_eval_ = now;
}

} // namespace ppm::fault

/**
 * @file
 * Snapshot serialization of the fault injector's runtime cursors and
 * the sensor guard.  The compiled plans are not serialized: the
 * restoring process recompiles them from the same spec/seed, which by
 * construction yields the identical schedule.
 */

#include "common/logging.hh"
#include "fault/fault.hh"
#include "snapshot/archive.hh"

namespace ppm::fault {

void
FaultInjector::save(snap::Writer& w) const
{
    w.i64(static_cast<std::int64_t>(stats_.injected));
    w.i64(static_cast<std::int64_t>(stats_.sensor_fallbacks));
    w.i64(static_cast<std::int64_t>(stats_.dvfs_deferred));
    w.i64(static_cast<std::int64_t>(stats_.dvfs_retries));
    w.i64(static_cast<std::int64_t>(stats_.migration_retries));
    w.i64(static_cast<std::int64_t>(stats_.dropped_actions));
    w.i64(static_cast<std::int64_t>(stats_.offline_events));
    w.i64(static_cast<std::int64_t>(stats_.safe_mode_entries));
    w.i64(static_cast<std::int64_t>(stats_.watchdog_trips));
    w.i64(stats_.safe_mode_time);

    w.i64(now_);
    w.u64(next_start_);
    w.u64(pending_level_.size());
    for (const PendingLevel& p : pending_level_) {
        w.i32(p.level);
        w.i64(p.due);
        w.i32(p.retries_left);
        w.i64(p.backoff);
        w.b(p.from_fail);
        w.b(p.active);
    }
    w.u64(pending_mig_.size());
    for (const PendingMigration& p : pending_mig_) {
        w.i32(p.task);
        w.i32(p.core);
        w.i64(p.due);
        w.i32(p.retries_left);
        w.i64(p.backoff);
    }
    w.i64v(offline_until_);
}

void
FaultInjector::load(snap::Reader& r)
{
    stats_.injected = static_cast<long>(r.i64());
    stats_.sensor_fallbacks = static_cast<long>(r.i64());
    stats_.dvfs_deferred = static_cast<long>(r.i64());
    stats_.dvfs_retries = static_cast<long>(r.i64());
    stats_.migration_retries = static_cast<long>(r.i64());
    stats_.dropped_actions = static_cast<long>(r.i64());
    stats_.offline_events = static_cast<long>(r.i64());
    stats_.safe_mode_entries = static_cast<long>(r.i64());
    stats_.watchdog_trips = static_cast<long>(r.i64());
    stats_.safe_mode_time = r.i64();

    now_ = r.i64();
    next_start_ = static_cast<std::size_t>(r.u64());
    const std::size_t n_levels = static_cast<std::size_t>(r.u64());
    PPM_ASSERT(n_levels == pending_level_.size(),
               "snapshot mismatch: fault injector cluster count");
    for (PendingLevel& p : pending_level_) {
        p.level = r.i32();
        p.due = r.i64();
        p.retries_left = r.i32();
        p.backoff = r.i64();
        p.from_fail = r.b();
        p.active = r.b();
    }
    pending_mig_.resize(static_cast<std::size_t>(r.u64()));
    for (PendingMigration& p : pending_mig_) {
        p.task = r.i32();
        p.core = r.i32();
        p.due = r.i64();
        p.retries_left = r.i32();
        p.backoff = r.i64();
    }
    r.i64v(&offline_until_);
}

void
SensorGuard::save(snap::Writer& w) const
{
    w.f64v(last_good_);
    w.i64(bound_);
    w.i64(worst_age_);
    w.i64(last_eval_);
    w.b(safe_);
}

void
SensorGuard::load(snap::Reader& r)
{
    r.f64v(&last_good_);
    bound_ = r.i64();
    worst_age_ = r.i64();
    last_eval_ = r.i64();
    safe_ = r.b();
}

} // namespace ppm::fault

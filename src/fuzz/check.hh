/**
 * @file
 * Differential execution and invariant checking of one fuzz scenario.
 *
 * A scenario is executed several ways -- every policy, macro-stepped
 * vs per-tick, and (for PPM) market clearing on one worker vs many --
 * and the runs are compared byte-for-byte: the full-precision
 * RunSummary fingerprint, the JSONL telemetry stream (every market
 * round, every field), and the traced time series when the scenario
 * records them.  On top of the differentials, global invariants are
 * checked per run: market budget conservation round by round, summary
 * sanity (finite, fractions in range, energy/power consistency), and
 * fault-counter consistency (clean runs report zero fault activity;
 * faulty runs stay within the compiled plan).
 */

#ifndef PPM_FUZZ_CHECK_HH
#define PPM_FUZZ_CHECK_HH

#include <string>
#include <vector>

#include "fuzz/scenario.hh"
#include "sim/simulation.hh"

namespace ppm::fuzz {

/** One invariant violation found while checking a scenario. */
struct Violation {
    /**
     * Stable invariant slug: "macro-vs-tick", "clearing-jobs",
     * "market-budget", "summary-sanity", "fault-counters",
     * "tdp-duty", "incremental", "fleet-single", "fleet-jobs",
     * "fleet-determinism", "fleet-budget", "fleet-incremental",
     * "fleet-conservation", "fleet-fault-jobs", "snapshot-restore"
     * or "fleet-snapshot-restore".  The shrinker reproduces on
     * (invariant, policy).
     */
    std::string invariant;
    std::string policy;  ///< "PPM", "HPM" or "HL".
    std::string detail;  ///< Human-readable one-liner.
};

/**
 * Full-precision rendering of every RunSummary field (including the
 * fault counters), used as the macro-vs-tick and jobs-differential
 * comparison key: two runs are equivalent iff their fingerprints are
 * byte-identical.
 */
std::string summary_fingerprint(const sim::RunSummary& s);

/**
 * Execute `sc` differentially under every policy and return every
 * violation found (empty = scenario is clean).  Deterministic: the
 * same scenario always produces the same violations in the same
 * order.
 */
std::vector<Violation> check_scenario(const Scenario& sc);

} // namespace ppm::fuzz

#endif // PPM_FUZZ_CHECK_HH

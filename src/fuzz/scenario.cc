#include "fuzz/scenario.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "hw/power_model.hh"

namespace ppm::fuzz {
namespace {

/**
 * Draw a SimTime uniformly on the millisecond grid.  Every generated
 * time sits on the tick grid so macro-step horizons, lifetimes and
 * trace samples land exactly where the per-tick loop lands them.
 */
SimTime
uniform_ms(Rng& rng, long lo_ms, long hi_ms)
{
    return rng.uniform_int(lo_ms, hi_ms) * kMillisecond;
}

TaskGene
generate_task(Rng& rng)
{
    TaskGene g;
    // Most tasks are priority 1 (the paper's default); a skewed tail
    // exercises the market's priority weighting.
    g.priority = rng.chance(0.6)
                     ? 1
                     : static_cast<int>(rng.uniform_int(2, 5));
    g.demand_little = rng.uniform(30.0, 900.0);
    g.big_speedup = rng.uniform(1.0, 2.5);
    g.target_hr = rng.uniform(5.0, 40.0);
    if (rng.chance(0.15))
        g.self_pace_hr = g.target_hr * rng.uniform(1.0, 1.2);
    if (rng.chance(0.5)) {
        g.n_phases = static_cast<int>(rng.uniform_int(2, 4));
        g.phase_amp = rng.uniform(0.1, 0.6);
    }
    g.phase_seed = rng.next_u64();
    return g;
}

fault::FaultSpec
generate_faults(Rng& rng)
{
    fault::FaultSpec f;
    f.seed = rng.next_u64();
    f.sensor = rng.chance(0.5);
    f.dvfs = rng.chance(0.5);
    f.migration = rng.chance(0.5);
    f.offline = rng.chance(0.5);
    if (!f.any())
        f.sensor = true;
    f.rate_per_min = rng.uniform(4.0, 60.0);
    f.mean_duration = uniform_ms(rng, 50, 800);
    f.noise_sigma_w = rng.uniform(0.1, 1.5);
    f.dvfs_delay = uniform_ms(rng, 2, 20);
    f.stale_age = uniform_ms(rng, 100, 600);
    f.staleness_bound = uniform_ms(rng, 100, 400);
    f.max_retries = static_cast<int>(rng.uniform_int(1, 6));
    f.retry_backoff = uniform_ms(rng, 1, 8);
    return f;
}

/** Sum of per-cluster maxima: the chip's peak sustained power. */
Watts
chip_max_power(const hw::Chip& chip)
{
    Watts total = 0.0;
    for (ClusterId v = 0; v < chip.num_clusters(); ++v)
        total += hw::PowerModel::cluster_max_power(chip, v);
    return total;
}

// ---------------------------------------------------------------
// Serialization helpers.  Doubles print as %.17g (round-trips
// exactly through strtod); times print in integral milliseconds
// (generation keeps everything on the millisecond grid).

std::string
fmt_double(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

long
to_ms(SimTime t)
{
    PPM_ASSERT(t % kMillisecond == 0,
               "fuzz scenario times live on the millisecond grid");
    return static_cast<long>(t / kMillisecond);
}

/** Strict full-string parses; return false on any trailing garbage. */
bool
parse_u64(const std::string& s, std::uint64_t* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-')
        return false;
    *out = static_cast<std::uint64_t>(v);
    return true;
}

bool
parse_long(const std::string& s, long* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (errno != 0 || end != s.c_str() + s.size())
        return false;
    *out = v;
    return true;
}

bool
parse_double(const std::string& s, double* out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (errno != 0 || end != s.c_str() + s.size() || !std::isfinite(v))
        return false;
    *out = v;
    return true;
}

bool
parse_bool(const std::string& s, bool* out)
{
    if (s == "0") {
        *out = false;
        return true;
    }
    if (s == "1") {
        *out = true;
        return true;
    }
    return false;
}

std::vector<std::string>
split(const std::string& s, char sep)
{
    std::vector<std::string> parts;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = s.find(sep, start);
        if (pos == std::string::npos) {
            parts.push_back(s.substr(start));
            return parts;
        }
        parts.push_back(s.substr(start, pos - start));
        start = pos + 1;
    }
}

bool
parse_task_line(const std::string& value, TaskGene* g,
                std::string* error)
{
    const std::vector<std::string> f = split(value, ',');
    if (f.size() != 11) {
        *error = "task= wants 11 comma-separated fields, got " +
                 std::to_string(f.size());
        return false;
    }
    long priority = 0, n_phases = 0, arrival_ms = 0, departure_ms = 0,
         core = 0;
    const bool ok =
        parse_long(f[0], &priority) &&
        parse_double(f[1], &g->demand_little) &&
        parse_double(f[2], &g->big_speedup) &&
        parse_double(f[3], &g->target_hr) &&
        parse_double(f[4], &g->self_pace_hr) &&
        parse_long(f[5], &n_phases) &&
        parse_double(f[6], &g->phase_amp) &&
        parse_u64(f[7], &g->phase_seed) &&
        parse_long(f[8], &arrival_ms) &&
        parse_long(f[9], &departure_ms) && parse_long(f[10], &core);
    if (!ok || priority < 1 || n_phases < 1 || arrival_ms < 0 ||
        departure_ms < -1 || core < -1 || g->demand_little <= 0.0 ||
        g->target_hr <= 0.0) {
        *error = "malformed task= line: " + value;
        return false;
    }
    g->priority = static_cast<int>(priority);
    g->n_phases = static_cast<int>(n_phases);
    g->arrival = arrival_ms * kMillisecond;
    g->departure = departure_ms < 0
                       ? sim::SimConfig::Lifetime::kForever
                       : departure_ms * kMillisecond;
    g->core = static_cast<CoreId>(core);
    return true;
}

} // namespace

const char*
platform_shape_name(PlatformShape s)
{
    switch (s) {
    case PlatformShape::kTc2:
        return "tc2";
    case PlatformShape::kOcta:
        return "octa";
    case PlatformShape::kSynthetic:
        return "synthetic";
    }
    return "?";
}

std::uint64_t
scenario_seed(std::uint64_t base, std::uint64_t index)
{
    // mix64 is bijective, so for a fixed base every index yields a
    // distinct scenario seed (and a campaign's scenarios never repeat
    // within 2^64 indices).
    return mix64(mix64(base) + index);
}

Scenario
generate_scenario(std::uint64_t seed)
{
    Rng rng(seed);
    Scenario sc;
    sc.seed = seed;

    const double shape_u = rng.uniform();
    if (shape_u < 0.4) {
        sc.shape = PlatformShape::kTc2;
    } else if (shape_u < 0.6) {
        sc.shape = PlatformShape::kOcta;
    } else {
        sc.shape = PlatformShape::kSynthetic;
        sc.synth_clusters = static_cast<int>(rng.uniform_int(1, 6));
        sc.synth_cores = static_cast<int>(rng.uniform_int(1, 4));
    }

    sc.duration = uniform_ms(rng, 1500, 6000);
    sc.warmup = uniform_ms(rng, 500, 1000);

    const int n_tasks = static_cast<int>(rng.uniform_int(1, 10));
    sc.tasks.reserve(static_cast<std::size_t>(n_tasks));
    for (int i = 0; i < n_tasks; ++i)
        sc.tasks.push_back(generate_task(rng));

    // Half the scenarios stagger lifetimes: arrivals up to mid-run,
    // departures anywhere after arrival (zero-length windows allowed
    // -- a task that departs the tick it arrives must not wedge the
    // market or the QoS accounting).
    if (rng.chance(0.5)) {
        for (TaskGene& g : sc.tasks) {
            if (!rng.chance(0.5))
                continue;
            const long mid = to_ms(sc.duration) / 2;
            g.arrival = uniform_ms(rng, 0, mid);
            if (!rng.chance(0.3))
                g.departure = uniform_ms(rng, to_ms(g.arrival),
                                         to_ms(sc.duration));
        }
    }

    // Explicit placement: pin a subset of tasks to random cores.
    const hw::Chip chip = make_chip(sc);
    if (rng.chance(0.3)) {
        for (TaskGene& g : sc.tasks) {
            if (rng.chance(0.5))
                g.core = static_cast<CoreId>(
                    rng.uniform_int(0, chip.num_cores() - 1));
        }
    }

    // TDP: a quarter of the scenarios run uncapped; the rest draw a
    // cap between deep throttling and just above the chip's peak.
    if (!rng.chance(0.25)) {
        const Watts maxp = chip_max_power(chip);
        const Watts lo = std::max(1.5, 0.35 * maxp);
        const Watts hi = 1.25 * maxp;
        if (lo < hi)
            sc.tdp = rng.uniform(lo, hi);
    }

    if (rng.chance(0.25)) {
        sc.trace = true;
        // Log-uniform 3..500 ms: most probes are fast, some slow.
        const double ms = std::exp(
            rng.uniform(std::log(3.0), std::log(500.0)));
        sc.trace_period =
            std::max<long>(3, std::min<long>(500, std::lround(ms))) *
            kMillisecond;
    }

    // Parallel clearing: the defaults (min_tasks 1024) keep small
    // markets inline, so check_scenario lowers the engagement
    // threshold; the grain is drawn small for the same reason --
    // chunk boundaries must fall *inside* a <= 10-task market.
    if (rng.chance(0.5)) {
        sc.clearing_jobs = static_cast<int>(rng.uniform_int(2, 4));
        sc.clearing_grain = static_cast<int>(rng.uniform_int(1, 7));
    }

    sc.online_speedup = rng.chance(0.2);
    sc.adaptive_step = rng.chance(0.2);

    if (rng.chance(0.4)) {
        sc.has_faults = true;
        sc.faults = generate_faults(rng);
    }

    // A quarter of the scenarios federate 2-4 chips under a shared
    // fleet budget (drawn last so the single-chip fields of a given
    // seed are unchanged from earlier grammar versions).
    if (rng.chance(0.25))
        sc.fleet_chips = static_cast<int>(rng.uniform_int(2, 4));

    // A fifth of the scenarios run their primary pass with the
    // incremental engine off (the differential runs the complement
    // either way).  Drawn after fleet_chips for grammar back-compat.
    sc.incremental = !rng.chance(0.2);

    // Chip-level fault classes for federated scenarios: failures
    // (with or without recovery) and budget degradation, driving the
    // evacuation/conservation invariants in check.cc.  Drawn after
    // `incremental` for grammar back-compat.
    if (sc.fleet_chips > 1 && rng.chance(0.35)) {
        sc.has_fleet_faults = true;
        sc.faults.chip_fail = rng.chance(0.7);
        sc.faults.chip_degrade = rng.chance(0.5);
        if (!sc.faults.any_fleet())
            sc.faults.chip_fail = true;
        sc.faults.chip_recover = rng.chance(0.6);
        sc.faults.chip_rate_per_min = rng.uniform(4.0, 40.0);
        sc.faults.degrade_factor = rng.uniform(0.2, 0.9);
        if (!sc.has_faults)
            sc.faults.seed = rng.next_u64();
    }

    // Snapshot differential: kill-and-resume at a random simulated
    // time strictly inside the run.  Drawn last.
    if (rng.chance(0.3))
        sc.snapshot_at = uniform_ms(rng, 1, to_ms(sc.duration) - 1);
    return sc;
}

hw::Chip
make_chip(const Scenario& sc)
{
    switch (sc.shape) {
    case PlatformShape::kTc2:
        return hw::tc2_chip();
    case PlatformShape::kOcta:
        return hw::octa_big_little_chip();
    case PlatformShape::kSynthetic:
        return hw::synthetic_chip(sc.synth_clusters, sc.synth_cores);
    }
    fatal("unknown platform shape");
}

std::vector<workload::TaskSpec>
make_specs(const Scenario& sc)
{
    std::vector<workload::TaskSpec> specs;
    specs.reserve(sc.tasks.size());
    for (std::size_t i = 0; i < sc.tasks.size(); ++i) {
        const TaskGene& g = sc.tasks[i];
        workload::TaskSpec spec = workload::steady_task_spec(
            "fz" + std::to_string(i), g.priority, g.demand_little,
            g.big_speedup, g.target_hr, g.self_pace_hr);
        if (g.n_phases > 1) {
            // Phase-structured cost: scale the steady demand by a
            // per-phase factor drawn from the gene's own stream.
            const workload::Phase base = spec.phases.front();
            spec.phases.clear();
            Rng prng(g.phase_seed);
            for (int p = 0; p < g.n_phases; ++p) {
                workload::Phase ph;
                ph.duration = uniform_ms(prng, 100, 900);
                const double scale = std::max(
                    0.1, 1.0 + g.phase_amp * prng.uniform(-1.0, 1.0));
                ph.work_per_hb_little =
                    base.work_per_hb_little * scale;
                ph.work_per_hb_big = base.work_per_hb_big * scale;
                spec.phases.push_back(ph);
            }
        }
        specs.push_back(std::move(spec));
    }
    return specs;
}

std::vector<double>
big_speedups(const Scenario& sc)
{
    std::vector<double> s;
    s.reserve(sc.tasks.size());
    for (const TaskGene& g : sc.tasks)
        s.push_back(g.big_speedup);
    return s;
}

std::vector<sim::SimConfig::Lifetime>
lifetimes(const Scenario& sc)
{
    bool any = false;
    for (const TaskGene& g : sc.tasks) {
        if (g.arrival != 0 ||
            g.departure != sim::SimConfig::Lifetime::kForever)
            any = true;
    }
    if (!any)
        return {};
    std::vector<sim::SimConfig::Lifetime> lt;
    lt.reserve(sc.tasks.size());
    for (const TaskGene& g : sc.tasks) {
        sim::SimConfig::Lifetime w;
        w.arrival = g.arrival;
        w.departure = g.departure;
        lt.push_back(w);
    }
    return lt;
}

std::vector<CoreId>
placement(const Scenario& sc)
{
    bool any = false;
    for (const TaskGene& g : sc.tasks)
        if (g.core != kInvalidId)
            any = true;
    if (!any)
        return {};
    const hw::Chip chip = make_chip(sc);
    const std::vector<CoreId>& boot = chip.cluster(0).cores();
    std::vector<CoreId> p;
    p.reserve(sc.tasks.size());
    for (std::size_t i = 0; i < sc.tasks.size(); ++i) {
        const TaskGene& g = sc.tasks[i];
        p.push_back(g.core != kInvalidId
                        ? g.core
                        : boot[i % boot.size()]);
    }
    return p;
}

std::string
serialize(const Scenario& sc)
{
    std::ostringstream os;
    os << "# ppm_fuzz scenario\n";
    os << "seed=" << sc.seed << "\n";
    os << "shape=" << platform_shape_name(sc.shape) << "\n";
    if (sc.shape == PlatformShape::kSynthetic) {
        os << "synth_clusters=" << sc.synth_clusters << "\n";
        os << "synth_cores=" << sc.synth_cores << "\n";
    }
    os << "tdp=" << fmt_double(sc.tdp) << "\n";
    os << "duration_ms=" << to_ms(sc.duration) << "\n";
    os << "warmup_ms=" << to_ms(sc.warmup) << "\n";
    os << "trace=" << (sc.trace ? 1 : 0) << "\n";
    os << "trace_period_ms=" << to_ms(sc.trace_period) << "\n";
    os << "clearing_jobs=" << sc.clearing_jobs << "\n";
    os << "clearing_grain=" << sc.clearing_grain << "\n";
    os << "online_speedup=" << (sc.online_speedup ? 1 : 0) << "\n";
    os << "adaptive_step=" << (sc.adaptive_step ? 1 : 0) << "\n";
    os << "fleet_chips=" << sc.fleet_chips << "\n";
    os << "incremental=" << (sc.incremental ? 1 : 0) << "\n";
    os << "snapshot_at_ms=" << to_ms(sc.snapshot_at) << "\n";
    os << "fleet_faults=" << (sc.has_fleet_faults ? 1 : 0) << "\n";
    if (sc.has_fleet_faults) {
        const fault::FaultSpec& f = sc.faults;
        os << "chip_fail=" << (f.chip_fail ? 1 : 0) << "\n";
        os << "chip_degrade=" << (f.chip_degrade ? 1 : 0) << "\n";
        os << "chip_recover=" << (f.chip_recover ? 1 : 0) << "\n";
        os << "chip_rate=" << fmt_double(f.chip_rate_per_min) << "\n";
        os << "degrade=" << fmt_double(f.degrade_factor) << "\n";
        os << "fleet_fault_seed=" << f.seed << "\n";
    }
    os << "faults=" << (sc.has_faults ? 1 : 0) << "\n";
    if (sc.has_faults) {
        const fault::FaultSpec& f = sc.faults;
        os << "fault_seed=" << f.seed << "\n";
        os << "fault_sensor=" << (f.sensor ? 1 : 0) << "\n";
        os << "fault_dvfs=" << (f.dvfs ? 1 : 0) << "\n";
        os << "fault_migration=" << (f.migration ? 1 : 0) << "\n";
        os << "fault_offline=" << (f.offline ? 1 : 0) << "\n";
        os << "fault_rate=" << fmt_double(f.rate_per_min) << "\n";
        os << "fault_duration_ms=" << to_ms(f.mean_duration) << "\n";
        os << "fault_noise=" << fmt_double(f.noise_sigma_w) << "\n";
        os << "fault_dvfs_delay_ms=" << to_ms(f.dvfs_delay) << "\n";
        os << "fault_stale_ms=" << to_ms(f.stale_age) << "\n";
        os << "fault_staleness_ms=" << to_ms(f.staleness_bound)
           << "\n";
        os << "fault_retries=" << f.max_retries << "\n";
        os << "fault_backoff_ms=" << to_ms(f.retry_backoff) << "\n";
    }
    for (const TaskGene& g : sc.tasks) {
        os << "task=" << g.priority << ","
           << fmt_double(g.demand_little) << ","
           << fmt_double(g.big_speedup) << ","
           << fmt_double(g.target_hr) << ","
           << fmt_double(g.self_pace_hr) << "," << g.n_phases << ","
           << fmt_double(g.phase_amp) << "," << g.phase_seed << ","
           << to_ms(g.arrival) << ","
           << (g.departure == sim::SimConfig::Lifetime::kForever
                   ? -1
                   : to_ms(g.departure))
           << "," << g.core << "\n";
    }
    return os.str();
}

bool
parse_scenario(const std::string& text, Scenario* out,
               std::string* error)
{
    Scenario sc;
    sc.trace_period = kSecond;
    std::istringstream is(text);
    std::string line;
    int lineno = 0;
    auto fail = [&](const std::string& msg) {
        *error = "line " + std::to_string(lineno) + ": " + msg;
        return false;
    };
    while (std::getline(is, line)) {
        ++lineno;
        // Trim trailing CR and surrounding whitespace.
        while (!line.empty() &&
               (line.back() == '\r' || line.back() == ' ' ||
                line.back() == '\t'))
            line.pop_back();
        std::size_t start = 0;
        while (start < line.size() &&
               (line[start] == ' ' || line[start] == '\t'))
            ++start;
        line = line.substr(start);
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            return fail("expected key=value, got '" + line + "'");
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);
        long l = 0;
        bool ok = true;
        if (key == "seed") {
            ok = parse_u64(value, &sc.seed);
        } else if (key == "shape") {
            if (value == "tc2")
                sc.shape = PlatformShape::kTc2;
            else if (value == "octa")
                sc.shape = PlatformShape::kOcta;
            else if (value == "synthetic")
                sc.shape = PlatformShape::kSynthetic;
            else
                ok = false;
        } else if (key == "synth_clusters") {
            ok = parse_long(value, &l) && l >= 1 && l <= 64;
            sc.synth_clusters = static_cast<int>(l);
        } else if (key == "synth_cores") {
            ok = parse_long(value, &l) && l >= 1 && l <= 64;
            sc.synth_cores = static_cast<int>(l);
        } else if (key == "tdp") {
            ok = parse_double(value, &sc.tdp) && sc.tdp >= 0.0;
        } else if (key == "duration_ms") {
            ok = parse_long(value, &l) && l >= 1;
            sc.duration = l * kMillisecond;
        } else if (key == "warmup_ms") {
            ok = parse_long(value, &l) && l >= 0;
            sc.warmup = l * kMillisecond;
        } else if (key == "trace") {
            ok = parse_bool(value, &sc.trace);
        } else if (key == "trace_period_ms") {
            ok = parse_long(value, &l) && l >= 1;
            sc.trace_period = l * kMillisecond;
        } else if (key == "clearing_jobs") {
            ok = parse_long(value, &l) && l >= 1 && l <= 64;
            sc.clearing_jobs = static_cast<int>(l);
        } else if (key == "clearing_grain") {
            ok = parse_long(value, &l) && l >= 1;
            sc.clearing_grain = static_cast<int>(l);
        } else if (key == "online_speedup") {
            ok = parse_bool(value, &sc.online_speedup);
        } else if (key == "adaptive_step") {
            ok = parse_bool(value, &sc.adaptive_step);
        } else if (key == "fleet_chips") {
            // Missing key (pre-federation fixtures) defaults to 1.
            ok = parse_long(value, &l) && l >= 1 && l <= 8;
            sc.fleet_chips = static_cast<int>(l);
        } else if (key == "incremental") {
            // Missing key (pre-incremental fixtures) defaults to on.
            ok = parse_bool(value, &sc.incremental);
        } else if (key == "snapshot_at_ms") {
            // Missing key (pre-snapshot fixtures) defaults to 0/off.
            ok = parse_long(value, &l) && l >= 0;
            sc.snapshot_at = l * kMillisecond;
        } else if (key == "fleet_faults") {
            // Missing key (pre-fault fixtures) defaults to off.
            ok = parse_bool(value, &sc.has_fleet_faults);
        } else if (key == "chip_fail") {
            ok = parse_bool(value, &sc.faults.chip_fail);
        } else if (key == "chip_degrade") {
            ok = parse_bool(value, &sc.faults.chip_degrade);
        } else if (key == "chip_recover") {
            ok = parse_bool(value, &sc.faults.chip_recover);
        } else if (key == "chip_rate") {
            ok = parse_double(value, &sc.faults.chip_rate_per_min) &&
                 sc.faults.chip_rate_per_min > 0.0;
        } else if (key == "degrade") {
            ok = parse_double(value, &sc.faults.degrade_factor) &&
                 sc.faults.degrade_factor > 0.0 &&
                 sc.faults.degrade_factor <= 1.0;
        } else if (key == "fleet_fault_seed") {
            ok = parse_u64(value, &sc.faults.seed);
        } else if (key == "faults") {
            ok = parse_bool(value, &sc.has_faults);
        } else if (key == "fault_seed") {
            ok = parse_u64(value, &sc.faults.seed);
        } else if (key == "fault_sensor") {
            ok = parse_bool(value, &sc.faults.sensor);
        } else if (key == "fault_dvfs") {
            ok = parse_bool(value, &sc.faults.dvfs);
        } else if (key == "fault_migration") {
            ok = parse_bool(value, &sc.faults.migration);
        } else if (key == "fault_offline") {
            ok = parse_bool(value, &sc.faults.offline);
        } else if (key == "fault_rate") {
            ok = parse_double(value, &sc.faults.rate_per_min) &&
                 sc.faults.rate_per_min > 0.0;
        } else if (key == "fault_duration_ms") {
            ok = parse_long(value, &l) && l >= 1;
            sc.faults.mean_duration = l * kMillisecond;
        } else if (key == "fault_noise") {
            ok = parse_double(value, &sc.faults.noise_sigma_w) &&
                 sc.faults.noise_sigma_w >= 0.0;
        } else if (key == "fault_dvfs_delay_ms") {
            ok = parse_long(value, &l) && l >= 0;
            sc.faults.dvfs_delay = l * kMillisecond;
        } else if (key == "fault_stale_ms") {
            ok = parse_long(value, &l) && l >= 0;
            sc.faults.stale_age = l * kMillisecond;
        } else if (key == "fault_staleness_ms") {
            ok = parse_long(value, &l) && l >= 1;
            sc.faults.staleness_bound = l * kMillisecond;
        } else if (key == "fault_retries") {
            ok = parse_long(value, &l) && l >= 0;
            sc.faults.max_retries = static_cast<int>(l);
        } else if (key == "fault_backoff_ms") {
            ok = parse_long(value, &l) && l >= 1;
            sc.faults.retry_backoff = l * kMillisecond;
        } else if (key == "task") {
            TaskGene g;
            if (!parse_task_line(value, &g, error)) {
                *error = "line " + std::to_string(lineno) + ": " +
                         *error;
                return false;
            }
            sc.tasks.push_back(g);
        } else {
            return fail("unknown key '" + key + "'");
        }
        if (!ok)
            return fail("bad value for '" + key + "': '" + value +
                        "'");
    }
    if (sc.tasks.empty())
        return fail("scenario has no task= lines");
    if (sc.warmup >= sc.duration)
        return fail("warmup must be shorter than duration");
    if (sc.snapshot_at >= sc.duration)
        return fail("snapshot_at_ms must be inside the run");
    if (sc.has_fleet_faults && !sc.faults.any_fleet())
        return fail("fleet_faults=1 wants chip_fail or chip_degrade");
    *out = sc;
    return true;
}

} // namespace ppm::fuzz

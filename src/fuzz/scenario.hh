/**
 * @file
 * Property-based scenario model for the differential fuzzer.
 *
 * A Scenario is a fully concrete description of one randomized
 * experiment: a platform shape, a workload (parametric task "genes"
 * materialized into TaskSpecs), per-task lifetimes and placement, a
 * TDP level, governor knobs and an optional fault plan.  Scenarios
 * are generated deterministically from a single seed (same seed =>
 * byte-identical scenario), serialize to a line-oriented text format
 * (the checked-in regression fixtures under tests/fuzz/fixtures/),
 * and can be shrunk dimension by dimension while a violation
 * reproduces (see shrink.hh).
 */

#ifndef PPM_FUZZ_SCENARIO_HH
#define PPM_FUZZ_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "fault/fault.hh"
#include "hw/platform.hh"
#include "sim/simulation.hh"
#include "workload/task.hh"

namespace ppm::fuzz {

/** Platform shape of a scenario. */
enum class PlatformShape {
    kTc2,        ///< The paper's 3+2-core big.LITTLE evaluation chip.
    kOcta,       ///< Odroid-XU3-like 4+4 big.LITTLE.
    kSynthetic,  ///< synthetic_chip(synth_clusters, synth_cores).
};

/** Stable lowercase shape name ("tc2", "octa", "synthetic"). */
const char* platform_shape_name(PlatformShape s);

/**
 * Parametric description of one generated task.  Materialized into a
 * workload::TaskSpec by make_specs(): `n_phases` demand phases are
 * drawn from Rng(phase_seed), scaled around `demand_little` by up to
 * +/-`phase_amp`.
 */
struct TaskGene {
    int priority = 1;            ///< Market priority r_t (>= 1).
    Pu demand_little = 200.0;    ///< Mean demand on a LITTLE core.
    double big_speedup = 1.6;    ///< LITTLE/big cycles-per-hb ratio.
    double target_hr = 20.0;     ///< Target heart rate (hb/s).
    double self_pace_hr = 0.0;   ///< > 0: task sleeps above this rate.
    int n_phases = 1;            ///< Phase count (1 = steady).
    double phase_amp = 0.0;      ///< Demand scale amplitude (+/-).
    std::uint64_t phase_seed = 0;///< Phase layout stream.
    SimTime arrival = 0;         ///< Lifetime start.
    SimTime departure = sim::SimConfig::Lifetime::kForever;
    CoreId core = kInvalidId;    ///< Initial core; -1 = default.
};

/** One fully concrete fuzz scenario. */
struct Scenario {
    std::uint64_t seed = 0;      ///< Generator seed (provenance).
    PlatformShape shape = PlatformShape::kTc2;
    int synth_clusters = 2;      ///< kSynthetic only.
    int synth_cores = 2;         ///< kSynthetic only.
    Watts tdp = 0.0;             ///< TDP cap; 0 = uncapped.
    SimTime duration = 4 * kSecond;
    SimTime warmup = kSecond;    ///< QoS accounting start.
    bool trace = false;          ///< Compare traced time series too.
    SimTime trace_period = kSecond;
    int clearing_jobs = 1;       ///< > 1 runs the jobs differential.
    int clearing_grain = 512;    ///< Market fan-out chunk size.
    bool online_speedup = false; ///< PPM: learn speedups online.
    bool adaptive_step = false;  ///< PPM: adaptive V-F stepping.
    bool has_faults = false;     ///< Fault plan enabled?
    fault::FaultSpec faults;     ///< Compiled against the chip at run.
    /**
     * > 1 federates the scenario: the same chip/workload replicated
     * on this many shards under a shared fleet budget (tdp x chips),
     * exercising the fleet-* invariants in check.cc.  1 = single-chip
     * only (the fleet-single differential still runs).
     */
    int fleet_chips = 1;
    /**
     * Incremental active-set clearing (PpmConfig::incremental) for
     * the scenario's *primary* run.  check.cc always also runs the
     * flag's complement and requires byte-identical summaries and
     * trace fingerprints (the incremental differential); the gene
     * exists so fixture files pin the mode a bug was found under and
     * so shrinking can try the full-recompute path first.
     */
    bool incremental = true;
    /**
     * Chip-level fault classes (chip-fail / chip-degrade /
     * chip-recover) for federated scenarios, stored in `faults`'
     * chip-scope fields and compiled into a FleetFaultPlan by
     * check.cc.  Inert unless fleet_chips > 1.  Drawn last so the
     * earlier genes of a given seed are unchanged from older grammar
     * versions.
     */
    bool has_fleet_faults = false;
    /**
     * > 0 runs the snapshot differential: the scenario executes to
     * this simulated time, saves a snapshot, restores it into a
     * freshly constructed simulation (or fleet) and runs to the end;
     * the stitched run must match the uninterrupted one byte for
     * byte (summary fingerprint, telemetry stream concatenation and
     * traced time series).  0 = differential off.
     */
    SimTime snapshot_at = 0;
    std::vector<TaskGene> tasks; ///< At least one.
};

/**
 * Seed of scenario `index` in a fuzz campaign with base seed `base`.
 * mix64-derived, so distinct indices never share an RNG stream (cf.
 * experiment::cell_seed).
 */
std::uint64_t scenario_seed(std::uint64_t base, std::uint64_t index);

/**
 * Generate the scenario of `seed`: a pure function of its argument --
 * calling it twice yields byte-identical scenarios (serialize() and
 * compare to check).  Every generated scenario is valid: platform
 * dimensions >= 1, task parameters within the library's asserted
 * ranges, lifetimes on the tick grid, placement within the chip.
 */
Scenario generate_scenario(std::uint64_t seed);

/** Build the scenario's chip. */
hw::Chip make_chip(const Scenario& sc);

/** Materialize the task genes into TaskSpecs. */
std::vector<workload::TaskSpec> make_specs(const Scenario& sc);

/** Per-task big-core speedups (feeds PPM's demand estimator). */
std::vector<double> big_speedups(const Scenario& sc);

/**
 * Per-task lifetime windows; empty when every task runs for the whole
 * simulation (so the clean-scenario hot path stays lifetime-free).
 */
std::vector<sim::SimConfig::Lifetime> lifetimes(const Scenario& sc);

/**
 * Explicit initial placement (by task id); empty when no gene pins a
 * core.  Genes without a pin fall back to round-robin over cluster 0,
 * mirroring the simulation's default placement.
 */
std::vector<CoreId> placement(const Scenario& sc);

/**
 * Serialize to the fixture text format: `key=value` lines, one
 * `task=` line per gene, `#` comments ignored on parse.  The format
 * round-trips exactly: parse_scenario(serialize(sc)) == sc.
 */
std::string serialize(const Scenario& sc);

/**
 * Parse a serialized scenario.  Returns false and fills `*error`
 * with a one-line message on malformed input.
 */
bool parse_scenario(const std::string& text, Scenario* out,
                    std::string* error);

} // namespace ppm::fuzz

#endif // PPM_FUZZ_SCENARIO_HH

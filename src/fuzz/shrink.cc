#include "fuzz/shrink.hh"

#include <optional>

#include "common/logging.hh"

namespace ppm::fuzz {
namespace {

/** Search state threaded through the shrink passes. */
struct Search {
    Scenario best;
    Violation found;
    int evaluations = 0;
    int budget = 0;
    const ShrinkOracle* oracle = nullptr;

    bool exhausted() const { return evaluations >= budget; }

    /**
     * Does `candidate` still reproduce the target violation?  On
     * success the candidate becomes the new best.
     */
    bool accept(const Scenario& candidate)
    {
        if (exhausted())
            return false;
        ++evaluations;
        for (const Violation& v : (*oracle)(candidate)) {
            if (v.invariant == found.invariant &&
                v.policy == found.policy) {
                best = candidate;
                found = v;
                return true;
            }
        }
        return false;
    }
};

/**
 * Task-count shrink: drop suffixes by bisection, then try removing
 * each task individually (greedy, restarting after a hit).
 */
void
shrink_tasks(Search& s)
{
    // Bisection on the prefix length.
    while (s.best.tasks.size() > 1 && !s.exhausted()) {
        Scenario half = s.best;
        half.tasks.resize((half.tasks.size() + 1) / 2);
        if (!s.accept(half))
            break;
    }
    // Greedy single removals.
    bool progressed = true;
    while (progressed && s.best.tasks.size() > 1 && !s.exhausted()) {
        progressed = false;
        for (std::size_t i = 0;
             i < s.best.tasks.size() && s.best.tasks.size() > 1;
             ++i) {
            Scenario cand = s.best;
            cand.tasks.erase(cand.tasks.begin() +
                             static_cast<std::ptrdiff_t>(i));
            if (s.accept(cand)) {
                progressed = true;
                break;  // Indices shifted; rescan.
            }
        }
    }
}

/** Duration shrink: binary search the shortest reproducing run. */
void
shrink_duration(Search& s)
{
    SimTime lo = s.best.warmup + kMillisecond;  // Must outlast warmup.
    SimTime hi = s.best.duration;
    while (lo < hi && !s.exhausted()) {
        // Midpoint on the millisecond grid, biased down.
        const SimTime mid =
            lo + ((hi - lo) / 2 / kMillisecond) * kMillisecond;
        if (mid >= hi)
            break;
        Scenario cand = s.best;
        cand.duration = mid;
        if (s.accept(cand))
            hi = mid;
        else
            lo = mid + kMillisecond;
    }
}

/** Drop fault classes one at a time, then bisect the rate down. */
void
shrink_faults(Search& s)
{
    if (!s.best.has_faults)
        return;
    {
        Scenario cand = s.best;
        cand.has_faults = false;
        cand.faults = fault::FaultSpec{};
        if (s.accept(cand))
            return;  // Faults were irrelevant; nothing left to trim.
    }
    for (int which = 0; which < 4 && !s.exhausted(); ++which) {
        Scenario cand = s.best;
        bool* flag = which == 0   ? &cand.faults.sensor
                     : which == 1 ? &cand.faults.dvfs
                     : which == 2 ? &cand.faults.migration
                                  : &cand.faults.offline;
        if (!*flag)
            continue;
        *flag = false;
        if (cand.faults.any())
            s.accept(cand);
    }
    // Halve the event rate while the violation survives.
    while (s.best.faults.rate_per_min > 1.0 && !s.exhausted()) {
        Scenario cand = s.best;
        cand.faults.rate_per_min /= 2.0;
        if (!s.accept(cand))
            break;
    }
}

/**
 * Chip-level fault shrink, run FIRST in the fixpoint loop: a
 * violation that survives with the fleet-fault plan gone is not a
 * failure-handling bug, and dropping the whole plan early spares
 * every later pass the (expensive) faulted-fleet differentials.
 * While the plan stays load-bearing, drop classes one at a time and
 * halve the transition rate.
 */
void
shrink_fleet_faults(Search& s)
{
    if (!s.best.has_fleet_faults)
        return;
    {
        Scenario cand = s.best;
        cand.has_fleet_faults = false;
        cand.faults.chip_fail = false;
        cand.faults.chip_degrade = false;
        cand.faults.chip_recover = false;
        if (s.accept(cand))
            return;  // Chip faults were irrelevant.
    }
    if (s.best.faults.chip_recover) {
        Scenario cand = s.best;
        cand.faults.chip_recover = false;
        s.accept(cand);
    }
    if (s.best.faults.chip_fail && s.best.faults.chip_degrade) {
        Scenario cand = s.best;
        cand.faults.chip_degrade = false;
        if (!s.accept(cand)) {
            cand = s.best;
            cand.faults.chip_fail = false;
            s.accept(cand);
        }
    }
    while (s.best.faults.chip_rate_per_min > 0.5 && !s.exhausted()) {
        Scenario cand = s.best;
        cand.faults.chip_rate_per_min /= 2.0;
        if (!s.accept(cand))
            break;
    }
}

/**
 * Try the full-recompute path before anything else: a violation that
 * survives with incrementality off is not a dirty-set bug, so the
 * surviving fixture localizes it elsewhere -- and one that only
 * reproduces with the incremental engine pins the blame on a skip
 * rule.  (The incremental differential itself always runs both
 * modes; this gene only selects the primary runs' mode.)
 */
void
shrink_incremental(Search& s)
{
    if (s.best.incremental) {
        Scenario cand = s.best;
        cand.incremental = false;
        s.accept(cand);
    }
}

/** Try zeroing whole structural dimensions in one shot each. */
void
shrink_structure(Search& s)
{
    // Lifetimes -> everyone runs the whole simulation.
    {
        Scenario cand = s.best;
        for (TaskGene& g : cand.tasks) {
            g.arrival = 0;
            g.departure = sim::SimConfig::Lifetime::kForever;
        }
        s.accept(cand);
    }
    // Placement -> default round-robin.
    {
        Scenario cand = s.best;
        for (TaskGene& g : cand.tasks)
            g.core = kInvalidId;
        s.accept(cand);
    }
    // Phase structure -> steady tasks.
    {
        Scenario cand = s.best;
        for (TaskGene& g : cand.tasks) {
            g.n_phases = 1;
            g.phase_amp = 0.0;
        }
        s.accept(cand);
    }
    // Tracing off (unless the violation is about the traces, in
    // which case the reproduce check fails and best is kept).
    if (s.best.trace) {
        Scenario cand = s.best;
        cand.trace = false;
        s.accept(cand);
    }
    // Governor knobs back to defaults.
    if (s.best.clearing_jobs > 1) {
        Scenario cand = s.best;
        cand.clearing_jobs = 1;
        s.accept(cand);
    }
    if (s.best.online_speedup) {
        Scenario cand = s.best;
        cand.online_speedup = false;
        s.accept(cand);
    }
    if (s.best.adaptive_step) {
        Scenario cand = s.best;
        cand.adaptive_step = false;
        s.accept(cand);
    }
    // Snapshot differential off (sticks unless the violation is the
    // restore-equivalence itself).
    if (s.best.snapshot_at > 0) {
        Scenario cand = s.best;
        cand.snapshot_at = 0;
        s.accept(cand);
    }
    // Defederate (fleet invariants only need > 1 chip to trigger, so
    // this sticks only for violations the 1-chip fleet reproduces).
    // Chip faults are inert on one chip; clear them with it so the
    // surviving fixture reads clean.
    if (s.best.fleet_chips > 1) {
        Scenario cand = s.best;
        cand.fleet_chips = 1;
        cand.has_fleet_faults = false;
        cand.faults.chip_fail = false;
        cand.faults.chip_degrade = false;
        cand.faults.chip_recover = false;
        s.accept(cand);
    }
    // Uncap the TDP.
    if (s.best.tdp > 0.0) {
        Scenario cand = s.best;
        cand.tdp = 0.0;
        s.accept(cand);
    }
}

} // namespace

ShrinkResult
shrink(const Scenario& sc, const Violation& target,
       int max_evaluations, const ShrinkOracle& oracle)
{
    PPM_ASSERT(max_evaluations >= 1,
               "shrink needs a positive evaluation budget");
    PPM_ASSERT(oracle != nullptr, "shrink needs a violation oracle");
    Search s;
    s.best = sc;
    s.found = target;
    s.budget = max_evaluations;
    s.oracle = &oracle;
    // Verify the input actually reproduces; everything downstream
    // (fixtures, regression tests) depends on it.
    {
        Scenario copy = sc;
        PPM_ASSERT(s.accept(copy),
                   "shrink input does not reproduce the violation");
    }

    // Fixpoint iteration: each pass can unlock the others (fewer
    // tasks make shorter runs reproduce and vice versa).
    for (int round = 0; round < 4 && !s.exhausted(); ++round) {
        const std::string before = serialize(s.best);
        shrink_fleet_faults(s);
        shrink_incremental(s);
        shrink_tasks(s);
        shrink_faults(s);
        shrink_structure(s);
        shrink_duration(s);
        if (serialize(s.best) == before)
            break;
    }

    ShrinkResult result;
    result.scenario = s.best;
    result.violation = s.found;
    result.evaluations = s.evaluations;
    return result;
}

} // namespace ppm::fuzz

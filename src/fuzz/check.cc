#include "fuzz/check.hh"

#include <cmath>
#include <cstdio>
#include <memory>
#include <sstream>

#include "common/logging.hh"

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "fleet/fleet.hh"
#include "hw/power_model.hh"
#include "market/ppm_governor.hh"
#include "metrics/telemetry.hh"
#include "snapshot/archive.hh"

namespace ppm::fuzz {
namespace {

std::string
fmt_exact(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

/**
 * Streaming auditor of the market's per-round telemetry: checks that
 * every numeric field is finite and that the cluster allowances the
 * market hands its task agents sum back to the global allowance (the
 * distribute_allowance() telescoping).  Attached to the PPM runs
 * alongside the byte-comparison JSONL sink.
 */
class MarketAuditSink final : public metrics::TraceSink
{
  public:
    /**
     * @param check_budget Budget conservation only holds when every
     *        task agent is live: lifetime windows leave departed
     *        agents holding their stale last allowance, so the sum
     *        check is gated off for staggered scenarios.
     */
    explicit MarketAuditSink(bool check_budget)
        : check_budget_(check_budget)
    {
    }

    void sample(const std::string&, SimTime, double) override {}

    void event(const metrics::TraceEvent& e) override
    {
        if (e.type != "market_round")
            return;
        ++rounds_;
        double allowance = 0.0;
        double total_demand = 0.0;
        double task_sum = 0.0;
        bool saw_allowance = false;
        for (const auto& [key, value] : e.num) {
            if (!std::isfinite(value)) {
                fail("non-finite field " + key + " = " +
                     fmt_exact(value) + " at round " +
                     std::to_string(rounds_));
                return;
            }
            if (key == "allowance") {
                allowance = value;
                saw_allowance = true;
            } else if (key == "total_demand") {
                total_demand = value;
            } else if (key.compare(0, 4, "task") == 0 &&
                       key.size() > 10 &&
                       key.compare(key.size() - 10, 10,
                                   "_allowance") == 0) {
                task_sum += value;
                if (value < 0.0) {
                    fail("negative " + key + " = " +
                         fmt_exact(value) + " at round " +
                         std::to_string(rounds_));
                    return;
                }
            } else if ((key.compare(0, 4, "core") == 0 &&
                        key.size() > 6 &&
                        key.compare(key.size() - 6, 6, "_price") ==
                            0) &&
                       value < 0.0) {
                fail("negative " + key + " = " + fmt_exact(value) +
                     " at round " + std::to_string(rounds_));
                return;
            }
        }
        if (!saw_allowance || allowance < 0.0) {
            fail("round " + std::to_string(rounds_) +
                 " has no sane global allowance");
            return;
        }
        // Conservation: the distributed per-task allowances telescope
        // back to the global allowance whenever the market actually
        // distributed this round (it early-outs, keeping every agent's
        // last allowance, when no demand reached it).
        if (check_budget_ && total_demand > 0.0) {
            const double tol =
                1e-6 * std::max(1.0, std::abs(allowance));
            if (std::abs(task_sum - allowance) > tol) {
                fail("task allowances sum to " + fmt_exact(task_sum) +
                     " but global allowance is " +
                     fmt_exact(allowance) + " at round " +
                     std::to_string(rounds_));
            }
        }
    }

    const std::string& first_error() const { return error_; }
    bool ok() const { return error_.empty(); }

  private:
    void fail(const std::string& msg)
    {
        if (error_.empty())
            error_ = msg;
    }

    bool check_budget_;
    long rounds_ = 0;
    std::string error_;
};

std::unique_ptr<sim::Governor>
make_policy(const Scenario& sc, const std::string& policy, int jobs,
            bool incremental)
{
    const Watts tdp = sc.tdp > 0.0 ? sc.tdp : 1e9;
    if (policy == "PPM") {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = tdp;
        cfg.market.w_th = market::derive_w_th(tdp);
        cfg.market.adaptive_step = sc.adaptive_step;
        cfg.market.incremental = incremental;
        // Fuzz markets have <= 10 tasks: at the production threshold
        // (1024) the clearing pool would never engage, so the jobs
        // differential would silently test nothing.  Drop the
        // threshold and use the scenario's small grain so chunk
        // boundaries fall inside the market.
        cfg.market.clearing_min_tasks = 2;
        cfg.market.clearing_grain = sc.clearing_grain;
        cfg.big_speedup = big_speedups(sc);
        cfg.online_speedup = sc.online_speedup;
        cfg.clearing_jobs = jobs;
        return std::make_unique<market::PpmGovernor>(cfg);
    }
    if (policy == "HPM") {
        baselines::HpmConfig cfg;
        cfg.tdp = tdp;
        return std::make_unique<baselines::HpmGovernor>(cfg);
    }
    baselines::HlConfig cfg;
    cfg.tdp = tdp;
    return std::make_unique<baselines::HlGovernor>(cfg);
}

sim::SimConfig
make_sim_config(const Scenario& sc, const hw::Chip& chip,
                bool macro_step)
{
    sim::SimConfig cfg;
    cfg.duration = sc.duration;
    cfg.warmup = sc.warmup;
    cfg.trace = sc.trace;
    cfg.trace_period = sc.trace_period;
    cfg.tdp_for_metrics = sc.tdp > 0.0 ? sc.tdp : 1e9;
    cfg.macro_step = macro_step;
    cfg.placement = placement(sc);
    cfg.lifetimes = lifetimes(sc);
    if (sc.has_faults) {
        cfg.faults = fault::FaultPlan::compile(
            sc.faults, chip.num_clusters(), chip.num_cores(),
            cfg.duration, cfg.tick);
    }
    return cfg;
}

/** Everything one execution of the scenario produces. */
struct RunOutput {
    sim::RunSummary summary;
    std::string jsonl;       ///< Full telemetry stream, bytes.
    std::string trace_csv;   ///< Recorder dump; empty unless traced.
    std::string audit_error; ///< First MarketAuditSink failure.
    std::size_t plan_events = 0;  ///< Compiled fault windows.
};

RunOutput
run_once(const Scenario& sc, const std::string& policy,
         bool macro_step, int jobs, bool incremental)
{
    hw::Chip chip = make_chip(sc);
    const sim::SimConfig cfg = make_sim_config(sc, chip, macro_step);
    RunOutput out;
    out.plan_events = cfg.faults.events().size();

    std::ostringstream jsonl_os;
    metrics::JsonlSink jsonl(jsonl_os);
    const bool stable_agents = lifetimes(sc).empty();
    MarketAuditSink audit(stable_agents);

    sim::Simulation simulation(
        std::move(chip), make_specs(sc),
        make_policy(sc, policy, jobs, incremental), cfg);
    simulation.bus().add_sink(&jsonl);
    if (policy == "PPM")
        simulation.bus().add_sink(&audit);
    out.summary = simulation.run();
    out.jsonl = jsonl_os.str();
    if (sc.trace) {
        std::ostringstream csv;
        simulation.recorder().write_csv(csv);
        out.trace_csv = csv.str();
    }
    out.audit_error = audit.first_error();
    return out;
}

/**
 * Streaming auditor of the fleet.* barrier telemetry: at every
 * barrier timestamp the per-chip budgets must sum back to the fleet
 * budget (the supervisor's settlement conserves the total; see
 * SupervisorMarket::settle).  Only attached to capped fleets --
 * uncapped fleets intentionally leave every chip at the sentinel
 * no-cap budget.
 */
class FleetAuditSink final : public metrics::TraceSink
{
  public:
    explicit FleetAuditSink(Watts total) : total_(total) {}

    void sample(const std::string& name, SimTime t, double v) override
    {
        static const std::string kPrefix = "fleet.chip";
        static const std::string kSuffix = ".budget_w";
        if (name.compare(0, kPrefix.size(), kPrefix) != 0 ||
            name.size() <= kSuffix.size() ||
            name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                         kSuffix) != 0)
            return;
        if (t != at_) {
            check();
            at_ = t;
            sum_ = 0.0;
            chips_ = 0;
        }
        sum_ += v;
        ++chips_;
    }

    void event(const metrics::TraceEvent&) override {}

    /** Audit the final pending barrier and return the first error. */
    std::string finish()
    {
        check();
        return error_;
    }

  private:
    void check()
    {
        if (chips_ == 0)
            return;
        const double tol = 1e-9 * std::max(1.0, total_);
        if (std::abs(sum_ - total_) > tol && error_.empty()) {
            error_ = "chip budgets sum to " + fmt_exact(sum_) +
                     " but the fleet budget is " + fmt_exact(total_) +
                     " at t=" + std::to_string(at_);
        }
    }

    Watts total_;
    SimTime at_ = -1;
    double sum_ = 0.0;
    int chips_ = 0;
    std::string error_;
};

/** Everything one federated execution of the scenario produces. */
struct FleetOutput {
    sim::RunSummary combined;
    fleet::FleetResult result; ///< Full result (fault counters etc.).
    std::string fleet_jsonl;  ///< Fleet bus bytes (fleet.* series).
    std::string chip0_jsonl;  ///< Shard 0's full telemetry stream.
    std::string budget_error; ///< First FleetAuditSink failure.
};

/**
 * Build the `chips`-shard fleet configuration of the scenario.  Every
 * chip replicates the scenario's workload; chip governors are built
 * from their supervisor budget through the same knobs as make_policy,
 * so a 1-chip fleet is configured bit-identically to the plain PPM
 * run.  With `fleet_faults`, the scenario's chip-level fault classes
 * are compiled into the settlement-barrier transition schedule.
 */
fleet::FleetConfig
make_fleet_config(const Scenario& sc, int chips, int jobs,
                  bool incremental, bool fleet_faults)
{
    const bool capped = sc.tdp > 0.0;
    const Watts total =
        capped ? sc.tdp * static_cast<double>(chips) : 1e9;

    fleet::FleetConfig fc;
    fc.chips = chips;
    fc.epoch = 48 * kMillisecond;
    fc.supervisor.total_budget = total;
    fc.jobs = jobs;
    {
        const hw::Chip chip = make_chip(sc);
        fc.sim = make_sim_config(sc, chip, true);
    }
    if (fleet_faults)
        fc.fleet_faults = fault::FleetFaultPlan::compile(
            sc.faults, chips, fc.sim.duration, fc.epoch);
    for (int c = 0; c < chips; ++c) {
        fleet::ChipWorkload wl;
        wl.specs = make_specs(sc);
        wl.lifetimes = lifetimes(sc);
        wl.placement = placement(sc);
        fc.workloads.push_back(std::move(wl));
    }
    fc.make_chip = [&sc](int) { return make_chip(sc); };
    fc.make_governor = [&sc, incremental](
                           int,
                           Watts budget) -> std::unique_ptr<sim::Governor> {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = budget;
        cfg.market.w_th = market::derive_w_th(budget);
        cfg.market.adaptive_step = sc.adaptive_step;
        cfg.market.incremental = incremental;
        cfg.market.clearing_min_tasks = 2;
        cfg.market.clearing_grain = sc.clearing_grain;
        cfg.big_speedup = big_speedups(sc);
        cfg.online_speedup = sc.online_speedup;
        return std::make_unique<market::PpmGovernor>(cfg);
    };
    return fc;
}

FleetOutput
run_fleet(const Scenario& sc, int chips, int jobs, bool incremental,
          bool fleet_faults = false)
{
    const bool capped = sc.tdp > 0.0;
    const Watts total =
        capped ? sc.tdp * static_cast<double>(chips) : 1e9;

    std::ostringstream fleet_os;
    std::ostringstream chip_os;
    metrics::JsonlSink fleet_sink(fleet_os);
    metrics::JsonlSink chip_sink(chip_os);
    FleetAuditSink audit(total);
    // A failed chip's budget is withdrawn from settlement (and a
    // degraded chip's is clamped), so the sum-to-total audit only
    // holds on healthy fleets.
    const bool check_budget = capped && chips > 1 && !fleet_faults;

    fleet::Fleet fleet(
        make_fleet_config(sc, chips, jobs, incremental, fleet_faults));
    fleet.bus().add_sink(&fleet_sink);
    if (check_budget)
        fleet.bus().add_sink(&audit);
    fleet.shard(0).bus().add_sink(&chip_sink);

    FleetOutput out;
    out.result = fleet.run();
    out.combined = out.result.combined;
    out.fleet_jsonl = fleet_os.str();
    out.chip0_jsonl = chip_os.str();
    if (check_budget)
        out.budget_error = audit.finish();
    return out;
}

/**
 * Kill-and-resume execution of the scenario's PPM run: advance a
 * first simulation to `at`, snapshot it through the real archive
 * bytes (header, checksum and all), restore into a second freshly
 * constructed simulation and run that to the end.  The two telemetry
 * streams concatenate; the summary comes from the restored half.
 */
RunOutput
run_split(const Scenario& sc, bool incremental, SimTime at)
{
    RunOutput out;
    snap::Writer w;
    std::ostringstream os1;
    {
        hw::Chip chip = make_chip(sc);
        const sim::SimConfig cfg = make_sim_config(sc, chip, true);
        metrics::JsonlSink sink(os1);
        sim::Simulation first(std::move(chip), make_specs(sc),
                              make_policy(sc, "PPM", 1, incremental),
                              cfg);
        first.bus().add_sink(&sink);
        first.run_until(at);
        first.save(w);
    }
    std::ostringstream os2;
    hw::Chip chip = make_chip(sc);
    const sim::SimConfig cfg = make_sim_config(sc, chip, true);
    metrics::JsonlSink sink(os2);
    sim::Simulation second(std::move(chip), make_specs(sc),
                           make_policy(sc, "PPM", 1, incremental),
                           cfg);
    second.bus().add_sink(&sink);
    snap::Reader r;
    const snap::LoadStatus st = r.open(w.finalize());
    PPM_ASSERT(st == snap::LoadStatus::kOk,
               "in-memory snapshot failed validation");
    second.load(r);
    PPM_ASSERT(r.remaining() == 0,
               "snapshot has trailing bytes after load");
    second.run_until(cfg.duration);
    out.summary = second.finish();
    out.jsonl = os1.str() + os2.str();
    if (sc.trace) {
        std::ostringstream csv;
        second.recorder().write_csv(csv);
        out.trace_csv = csv.str();
    }
    return out;
}

/**
 * Kill-and-resume execution of the federated scenario: run a first
 * fleet up to the last settlement barrier before `at`, snapshot,
 * restore into a second fleet and run to completion.
 */
FleetOutput
run_fleet_split(const Scenario& sc, int chips, bool incremental,
                bool fleet_faults, SimTime at)
{
    FleetOutput out;
    snap::Writer w;
    std::ostringstream fleet_os1, chip_os1;
    {
        metrics::JsonlSink fleet_sink(fleet_os1);
        metrics::JsonlSink chip_sink(chip_os1);
        fleet::Fleet first(make_fleet_config(sc, chips, 1, incremental,
                                             fleet_faults));
        first.bus().add_sink(&fleet_sink);
        first.shard(0).bus().add_sink(&chip_sink);
        while (first.now() < at && first.run_epoch()) {
        }
        first.save(w);
    }
    std::ostringstream fleet_os2, chip_os2;
    metrics::JsonlSink fleet_sink(fleet_os2);
    metrics::JsonlSink chip_sink(chip_os2);
    fleet::Fleet second(make_fleet_config(sc, chips, 1, incremental,
                                          fleet_faults));
    second.bus().add_sink(&fleet_sink);
    second.shard(0).bus().add_sink(&chip_sink);
    snap::Reader r;
    const snap::LoadStatus st = r.open(w.finalize());
    PPM_ASSERT(st == snap::LoadStatus::kOk,
               "in-memory fleet snapshot failed validation");
    second.load(r);
    PPM_ASSERT(r.remaining() == 0,
               "fleet snapshot has trailing bytes after load");
    out.result = second.run();
    out.combined = out.result.combined;
    out.fleet_jsonl = fleet_os1.str() + fleet_os2.str();
    out.chip0_jsonl = chip_os1.str() + chip_os2.str();
    return out;
}

bool
fraction_ok(double v)
{
    return std::isfinite(v) && v >= 0.0 && v <= 1.0 + 1e-12;
}

void
check_summary_sanity(const Scenario& sc, const std::string& policy,
                     const RunOutput& run,
                     std::vector<Violation>& out)
{
    const sim::RunSummary& s = run.summary;
    auto bad = [&](const std::string& detail) {
        out.push_back({"summary-sanity", policy, detail});
    };

    if (!fraction_ok(s.any_below_miss) ||
        !fraction_ok(s.any_outside_miss) ||
        !fraction_ok(s.over_tdp_fraction) ||
        !fraction_ok(s.over_tdp_post_warmup) ||
        !fraction_ok(s.over_tdp_during_fault)) {
        bad("a miss/duty fraction is outside [0, 1]");
        return;
    }
    if (!std::isfinite(s.avg_power) || s.avg_power < 0.0 ||
        !std::isfinite(s.avg_power_post_warmup) ||
        s.avg_power_post_warmup < 0.0 || !std::isfinite(s.energy) ||
        s.energy < 0.0) {
        bad("power/energy is negative or non-finite");
        return;
    }
    // energy integrates the whole run; avg_power is its time mean.
    const double dur_s =
        static_cast<double>(sc.duration) / static_cast<double>(kSecond);
    const double expect = s.avg_power * dur_s;
    if (std::abs(s.energy - expect) >
        1e-6 * std::max(1.0, std::abs(expect))) {
        bad("energy " + fmt_exact(s.energy) +
            " != avg_power * duration " + fmt_exact(expect));
    }
    if (!std::isfinite(s.peak_temp_c) || s.peak_temp_c <= 0.0 ||
        s.peak_temp_c > 500.0)
        bad("peak temperature " + fmt_exact(s.peak_temp_c) +
            " is implausible");
    if (s.migrations < 0 || s.vf_transitions < 0 ||
        s.thermal_cycles < 0)
        bad("a hardware counter went negative");
    if (s.task_below.size() != sc.tasks.size() ||
        s.task_outside.size() != sc.tasks.size()) {
        bad("per-task QoS vectors don't cover the task count");
        return;
    }
    for (std::size_t t = 0; t < s.task_below.size(); ++t) {
        if (!fraction_ok(s.task_below[t]) ||
            !fraction_ok(s.task_outside[t]) ||
            s.task_below[t] > s.task_outside[t] + 1e-12) {
            bad("task " + std::to_string(t) +
                " QoS fractions inconsistent (below " +
                fmt_exact(s.task_below[t]) + ", outside " +
                fmt_exact(s.task_outside[t]) + ")");
        }
    }
    if (s.safe_mode_seconds < 0.0 ||
        s.safe_mode_seconds > dur_s + 1e-9)
        bad("safe-mode time " + fmt_exact(s.safe_mode_seconds) +
            " exceeds the run length");
}

void
check_fault_counters(const Scenario& sc, const std::string& policy,
                     const RunOutput& run,
                     std::vector<Violation>& out)
{
    const sim::RunSummary& s = run.summary;
    auto bad = [&](const std::string& detail) {
        out.push_back({"fault-counters", policy, detail});
    };
    if (!sc.has_faults) {
        // Clean platform: any fault activity is machinery firing
        // without an injected cause.
        if (s.faults_injected != 0 || s.sensor_fallbacks != 0 ||
            s.fault_retries != 0 || s.safe_mode_entries != 0 ||
            s.watchdog_trips != 0 || s.safe_mode_seconds != 0.0 ||
            s.over_tdp_during_fault != 0.0) {
            bad("clean run reports fault activity (injected=" +
                std::to_string(s.faults_injected) + " fallbacks=" +
                std::to_string(s.sensor_fallbacks) + " retries=" +
                std::to_string(s.fault_retries) + " safe_entries=" +
                std::to_string(s.safe_mode_entries) + " watchdog=" +
                std::to_string(s.watchdog_trips) + ")");
        }
        return;
    }
    if (s.faults_injected < 0 ||
        static_cast<std::size_t>(s.faults_injected) > run.plan_events)
        bad("activated " + std::to_string(s.faults_injected) +
            " fault windows but the plan only schedules " +
            std::to_string(run.plan_events));
    if (s.sensor_fallbacks < 0 || s.fault_retries < 0 ||
        s.safe_mode_entries < 0 || s.watchdog_trips < 0)
        bad("a fault counter went negative");
}

void
check_tdp_duty(const Scenario& sc, const std::string& policy,
               const RunOutput& run, Watts chip_peak,
               std::vector<Violation>& out)
{
    // Only a loose bound is a true invariant: a TDP below the chip's
    // min-level floor is legitimately violated 100% of the time, and
    // aggressive caps ride the threshold band by design.  But with
    // the cap at or above the chip's peak sustained power, no
    // governor decision can push the chip meaningfully over it for
    // long -- a high post-warmup duty there is a governor bug.
    if (sc.has_faults || sc.tdp <= 0.0 || sc.tdp < 0.95 * chip_peak)
        return;
    if (run.summary.over_tdp_post_warmup > 0.5) {
        out.push_back(
            {"tdp-duty", policy,
             "TDP " + fmt_exact(sc.tdp) + " >= chip peak " +
                 fmt_exact(chip_peak) + " but over-TDP duty is " +
                 fmt_exact(run.summary.over_tdp_post_warmup)});
    }
}

} // namespace

std::string
summary_fingerprint(const sim::RunSummary& s)
{
    std::ostringstream out;
    out << s.governor << '\n'
        << fmt_exact(s.any_below_miss) << '\n'
        << fmt_exact(s.any_outside_miss) << '\n'
        << fmt_exact(s.avg_power) << '\n'
        << fmt_exact(s.avg_power_post_warmup) << '\n'
        << fmt_exact(s.energy) << '\n'
        << s.migrations << '\n'
        << s.vf_transitions << '\n'
        << fmt_exact(s.over_tdp_fraction) << '\n'
        << fmt_exact(s.over_tdp_post_warmup) << '\n'
        << fmt_exact(s.peak_temp_c) << '\n'
        << s.thermal_cycles << '\n'
        << s.faults_injected << '\n'
        << s.sensor_fallbacks << '\n'
        << s.fault_retries << '\n'
        << s.safe_mode_entries << '\n'
        << s.watchdog_trips << '\n'
        << fmt_exact(s.safe_mode_seconds) << '\n'
        << fmt_exact(s.over_tdp_during_fault) << '\n'
        << s.market_rounds << '\n'
        << s.market_task_slots << '\n'
        << s.market_tasks_skipped << '\n'
        << s.market_core_slots << '\n'
        << s.market_cores_skipped << '\n'
        << s.market_rounds_early_exit << '\n';
    for (const double v : s.task_below)
        out << fmt_exact(v) << '\n';
    for (const double v : s.task_outside)
        out << fmt_exact(v) << '\n';
    return out.str();
}

std::vector<Violation>
check_scenario(const Scenario& sc)
{
    std::vector<Violation> violations;
    Watts chip_peak = 0.0;
    {
        const hw::Chip chip = make_chip(sc);
        for (ClusterId v = 0; v < chip.num_clusters(); ++v)
            chip_peak += hw::PowerModel::cluster_max_power(chip, v);
    }

    for (const char* policy : {"PPM", "HPM", "HL"}) {
        const RunOutput macro =
            run_once(sc, policy, true, 1, sc.incremental);
        const RunOutput tick =
            run_once(sc, policy, false, 1, sc.incremental);

        if (summary_fingerprint(macro.summary) !=
            summary_fingerprint(tick.summary)) {
            violations.push_back(
                {"macro-vs-tick", policy,
                 "summary fingerprints differ between macro-step "
                 "and per-tick execution"});
        } else if (macro.jsonl != tick.jsonl) {
            violations.push_back(
                {"macro-vs-tick", policy,
                 "telemetry streams differ between macro-step and "
                 "per-tick execution (" +
                     std::to_string(macro.jsonl.size()) + " vs " +
                     std::to_string(tick.jsonl.size()) + " bytes)"});
        } else if (macro.trace_csv != tick.trace_csv) {
            violations.push_back(
                {"macro-vs-tick", policy,
                 "traced time series differ between macro-step and "
                 "per-tick execution"});
        }

        if (!macro.audit_error.empty()) {
            violations.push_back(
                {"market-budget", policy, macro.audit_error});
        }

        check_summary_sanity(sc, policy, macro, violations);
        check_fault_counters(sc, policy, macro, violations);
        check_tdp_duty(sc, policy, macro, chip_peak, violations);
    }

    // PPM jobs differential: the macro run above cleared inline; the
    // same scenario on a worker pool must match byte for byte.
    if (sc.clearing_jobs > 1) {
        const RunOutput inline_run =
            run_once(sc, "PPM", true, 1, sc.incremental);
        const RunOutput pooled =
            run_once(sc, "PPM", true, sc.clearing_jobs, sc.incremental);
        if (summary_fingerprint(inline_run.summary) !=
            summary_fingerprint(pooled.summary)) {
            violations.push_back(
                {"clearing-jobs", "PPM",
                 "summary fingerprints differ between clearing_jobs="
                 "1 and clearing_jobs=" +
                     std::to_string(sc.clearing_jobs)});
        } else if (inline_run.jsonl != pooled.jsonl) {
            violations.push_back(
                {"clearing-jobs", "PPM",
                 "telemetry streams differ between clearing_jobs=1 "
                 "and clearing_jobs=" +
                     std::to_string(sc.clearing_jobs)});
        }
    }

    // Incremental differential: the active-set engine must replay the
    // full recompute bit for bit on EVERY scenario -- summary
    // fingerprint (which embeds the market skip counters: the dirty
    // bookkeeping is mode-invariant, so even the skip counts must
    // match), the full telemetry stream, and the traced time series.
    // A divergence here is a dirty-set bug: some entry skipped a
    // recompute whose inputs had actually changed.
    {
        const RunOutput inc = run_once(sc, "PPM", true, 1, true);
        const RunOutput full = run_once(sc, "PPM", true, 1, false);
        if (summary_fingerprint(inc.summary) !=
            summary_fingerprint(full.summary)) {
            violations.push_back(
                {"incremental", "PPM",
                 "summary fingerprints differ between incremental "
                 "and full clearing"});
        } else if (inc.jsonl != full.jsonl) {
            violations.push_back(
                {"incremental", "PPM",
                 "telemetry streams differ between incremental and "
                 "full clearing (" +
                     std::to_string(inc.jsonl.size()) + " vs " +
                     std::to_string(full.jsonl.size()) + " bytes)"});
        } else if (inc.trace_csv != full.trace_csv) {
            violations.push_back(
                {"incremental", "PPM",
                 "traced time series differ between incremental and "
                 "full clearing"});
        }
    }

    // Fleet-single differential: a 1-chip fleet wrapping the exact
    // PPM configuration must reproduce the plain run bit for bit --
    // summary fingerprint AND the shard's full telemetry stream
    // (run_until slicing at the epoch barriers provably changes
    // nothing, and a 1-chip settlement never moves the budget).
    {
        const RunOutput plain =
            run_once(sc, "PPM", true, 1, sc.incremental);
        const FleetOutput single = run_fleet(sc, 1, 1, sc.incremental);
        if (summary_fingerprint(single.combined) !=
            summary_fingerprint(plain.summary)) {
            violations.push_back(
                {"fleet-single", "PPM",
                 "1-chip fleet summary fingerprint differs from the "
                 "plain simulation"});
        } else if (single.chip0_jsonl != plain.jsonl) {
            violations.push_back(
                {"fleet-single", "PPM",
                 "1-chip fleet telemetry stream differs from the "
                 "plain simulation (" +
                     std::to_string(single.chip0_jsonl.size()) +
                     " vs " + std::to_string(plain.jsonl.size()) +
                     " bytes)"});
        }
    }

    // Federated invariants: jobs-count byte-determinism, repeat-run
    // byte-determinism, and fleet budget conservation at every
    // supervisor barrier.
    if (sc.fleet_chips > 1) {
        const FleetOutput serial =
            run_fleet(sc, sc.fleet_chips, 1, sc.incremental);
        const FleetOutput pooled =
            run_fleet(sc, sc.fleet_chips, 3, sc.incremental);
        if (summary_fingerprint(serial.combined) !=
            summary_fingerprint(pooled.combined)) {
            violations.push_back(
                {"fleet-jobs", "PPM",
                 "fleet summary fingerprints differ between jobs=1 "
                 "and jobs=3"});
        } else if (serial.fleet_jsonl != pooled.fleet_jsonl ||
                   serial.chip0_jsonl != pooled.chip0_jsonl) {
            violations.push_back(
                {"fleet-jobs", "PPM",
                 "fleet telemetry streams differ between jobs=1 and "
                 "jobs=3"});
        }
        const FleetOutput again =
            run_fleet(sc, sc.fleet_chips, 1, sc.incremental);
        if (serial.fleet_jsonl != again.fleet_jsonl ||
            serial.chip0_jsonl != again.chip0_jsonl ||
            summary_fingerprint(serial.combined) !=
                summary_fingerprint(again.combined)) {
            violations.push_back(
                {"fleet-determinism", "PPM",
                 "two identical fleet runs produced different bytes"});
        }
        if (!serial.budget_error.empty()) {
            violations.push_back(
                {"fleet-budget", "PPM", serial.budget_error});
        }
        // Fleet incremental differential: epoch-barrier warm starts
        // (budget retargets via set_power_budget between settlements)
        // must also replay bit for bit against full clearing.
        const FleetOutput other =
            run_fleet(sc, sc.fleet_chips, 1, !sc.incremental);
        if (serial.fleet_jsonl != other.fleet_jsonl ||
            serial.chip0_jsonl != other.chip0_jsonl ||
            summary_fingerprint(serial.combined) !=
                summary_fingerprint(other.combined)) {
            violations.push_back(
                {"fleet-incremental", "PPM",
                 "fleet bytes differ between incremental and full "
                 "clearing"});
        }
    }

    // Chip-level fault invariants: evacuation conservation (no task
    // is silently dropped by a chip failure), counter sanity, and
    // jobs-count byte-determinism of the faulted fleet.
    if (sc.fleet_chips > 1 && sc.has_fleet_faults) {
        const FleetOutput faulted =
            run_fleet(sc, sc.fleet_chips, 1, sc.incremental, true);
        const fleet::FleetResult& fr = faulted.result;
        if (fr.evacuations != fr.evac_landed + fr.evac_pending_end) {
            violations.push_back(
                {"fleet-conservation", "PPM",
                 "evacuations " + std::to_string(fr.evacuations) +
                     " != landed " + std::to_string(fr.evac_landed) +
                     " + pending " +
                     std::to_string(fr.evac_pending_end)});
        }
        if (fr.chip_failures < 0 || fr.evacuations < 0 ||
            fr.evac_landed < 0 || fr.evac_pending_end < 0 ||
            fr.rejections < 0 || fr.fleet_watchdog_trips < 0) {
            violations.push_back(
                {"fleet-conservation", "PPM",
                 "a fleet fault counter went negative"});
        }
        if (!sc.faults.chip_fail && fr.chip_failures != 0) {
            violations.push_back(
                {"fleet-conservation", "PPM",
                 "chip-fail disabled but " +
                     std::to_string(fr.chip_failures) +
                     " failures were applied"});
        }
        const FleetOutput pooled =
            run_fleet(sc, sc.fleet_chips, 3, sc.incremental, true);
        if (summary_fingerprint(faulted.combined) !=
                summary_fingerprint(pooled.combined) ||
            faulted.fleet_jsonl != pooled.fleet_jsonl ||
            faulted.chip0_jsonl != pooled.chip0_jsonl) {
            violations.push_back(
                {"fleet-fault-jobs", "PPM",
                 "faulted fleet bytes differ between jobs=1 and "
                 "jobs=3"});
        }
    }

    // Snapshot differential: a kill at snapshot_at followed by a
    // restore into a fresh process image must replay the exact
    // trajectory -- summaries, telemetry streams (concatenated
    // across the kill) and traced series byte for byte.
    if (sc.snapshot_at > 0) {
        const RunOutput full =
            run_once(sc, "PPM", true, 1, sc.incremental);
        const RunOutput split =
            run_split(sc, sc.incremental, sc.snapshot_at);
        if (summary_fingerprint(full.summary) !=
            summary_fingerprint(split.summary)) {
            violations.push_back(
                {"snapshot-restore", "PPM",
                 "summary fingerprints differ between the "
                 "uninterrupted and the kill-and-resume run"});
        } else if (full.jsonl != split.jsonl) {
            violations.push_back(
                {"snapshot-restore", "PPM",
                 "telemetry streams differ across the snapshot (" +
                     std::to_string(full.jsonl.size()) + " vs " +
                     std::to_string(split.jsonl.size()) + " bytes)"});
        } else if (full.trace_csv != split.trace_csv) {
            violations.push_back(
                {"snapshot-restore", "PPM",
                 "traced time series differ across the snapshot"});
        }
        if (sc.fleet_chips > 1) {
            const FleetOutput ffull =
                run_fleet(sc, sc.fleet_chips, 1, sc.incremental,
                          sc.has_fleet_faults);
            const FleetOutput fsplit = run_fleet_split(
                sc, sc.fleet_chips, sc.incremental,
                sc.has_fleet_faults, sc.snapshot_at);
            if (summary_fingerprint(ffull.combined) !=
                    summary_fingerprint(fsplit.combined) ||
                ffull.fleet_jsonl != fsplit.fleet_jsonl ||
                ffull.chip0_jsonl != fsplit.chip0_jsonl) {
                violations.push_back(
                    {"fleet-snapshot-restore", "PPM",
                     "fleet bytes differ between the uninterrupted "
                     "and the kill-and-resume run"});
            }
        }
    }
    return violations;
}

} // namespace ppm::fuzz

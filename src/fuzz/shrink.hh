/**
 * @file
 * Violation minimizer: given a scenario that violates an invariant,
 * search for a smaller scenario that still violates the *same*
 * invariant under the same policy.  Dimensions shrunk: task count,
 * run duration, fault plan (classes, then rate), lifetime staggering,
 * explicit placement, tracing, phase structure and the governor
 * knobs.  The result is never larger than the input in any dimension,
 * and re-checking it reproduces the target violation by construction.
 */

#ifndef PPM_FUZZ_SHRINK_HH
#define PPM_FUZZ_SHRINK_HH

#include <functional>
#include <vector>

#include "fuzz/check.hh"
#include "fuzz/scenario.hh"

namespace ppm::fuzz {

/** Outcome of a shrink run. */
struct ShrinkResult {
    Scenario scenario;    ///< The minimized reproducer.
    Violation violation;  ///< Its (still reproducing) violation.
    int evaluations = 0;  ///< oracle calls spent.
};

/**
 * The violation oracle a shrink run consults: returns every violation
 * a candidate scenario exhibits.  Production use passes
 * check_scenario (the default); tests inject synthetic oracles to
 * exercise the search itself without a live simulator bug.
 */
using ShrinkOracle =
    std::function<std::vector<Violation>(const Scenario&)>;

/**
 * Minimize `sc` while the violation keyed by `target`'s
 * (invariant, policy) pair reproduces under `oracle`.  `sc` must
 * currently violate it (panics otherwise).  `max_evaluations` bounds
 * the search; the best scenario found so far is returned when the
 * budget runs out.
 */
ShrinkResult shrink(const Scenario& sc, const Violation& target,
                    int max_evaluations = 200,
                    const ShrinkOracle& oracle = check_scenario);

} // namespace ppm::fuzz

#endif // PPM_FUZZ_SHRINK_HH

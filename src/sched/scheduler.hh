/**
 * @file
 * Epoch-based proportional-share scheduler modelling the Linux fair
 * scheduler at the granularity a power manager observes.
 *
 * Each tick, every core's cycle capacity (its cluster's supply) is
 * divided among the runnable tasks mapped to it in proportion to
 * their CFS nice weights, with water-filling so that self-pacing
 * tasks return unused share.  Task migration is performed through a
 * sched_setaffinity-like call and charged the hardware migration
 * latency (the task is blocked for that long).  The scheduler also
 * maintains the per-entity load signals that the HL baseline and the
 * ondemand governor consume.
 */

#ifndef PPM_SCHED_SCHEDULER_HH
#define PPM_SCHED_SCHEDULER_HH

#include <vector>

#include "common/types.hh"
#include "hw/migration.hh"
#include "hw/platform.hh"
#include "workload/task.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::sched {

/** Default Linux scheduling epoch used by the paper (10 ms). */
inline constexpr SimTime kLinuxSchedEpoch = 10 * kMillisecond;

/** Scheduler for one chip; owns task placement and time sharing. */
class Scheduler
{
  public:
    /**
     * @param chip      Platform topology (not owned; must outlive).
     * @param migration Migration-latency model.
     */
    Scheduler(hw::Chip* chip, hw::MigrationModel migration);

    /** Register a task and place it on `core`.  No migration charge. */
    void add_task(workload::Task* task, CoreId core);

    /** Number of registered tasks. */
    int num_tasks() const { return static_cast<int>(entries_.size()); }

    /** The task object with id `t`. */
    workload::Task& task(TaskId t);
    const workload::Task& task(TaskId t) const;

    /** Core the task currently runs on. */
    CoreId core_of(TaskId t) const;

    /** Tasks currently mapped to `core`. */
    std::vector<TaskId> tasks_on(CoreId core) const;

    /**
     * Move task `t` to `core` (sched_setaffinity).  Charges the
     * migration latency: the task receives no cycles until the
     * penalty elapses.  No-op if already there.  `cost_scale`
     * multiplies the charged latency (slow-migration faults).
     * @return the charged latency.
     */
    SimTime migrate(TaskId t, CoreId core, SimTime now,
                    double cost_scale = 1.0);

    /** Set the task's nice value (clamped to [-20, 19]). */
    void set_nice(TaskId t, int nice);

    /** Current nice value of the task. */
    int nice_of(TaskId t) const;

    /**
     * Activate or deactivate a task (fork/exit).  An inactive task
     * holds no run-queue slot: it receives no cycles, is invisible to
     * tasks_on(), and its load signals decay.
     */
    void set_active(TaskId t, bool active);

    /** Whether the task currently participates in scheduling. */
    bool active(TaskId t) const;

    /**
     * Run one scheduling tick over [now, now+dt): distribute each
     * core's cycles, advance all tasks, update load signals.
     */
    void tick(SimTime now, SimTime dt);

    /**
     * Prepare replay of a quiescent interval starting at `now`: run
     * the water-fill once and cache the per-task grant, beats and
     * share values.  Valid while placements, nice values, activity,
     * blocked states, phases and cluster supplies stay unchanged --
     * under those conditions tick() would recompute exactly these
     * values every tick, so replay_tick() can reuse them bit-for-bit.
     */
    void begin_replay(SimTime now, SimTime dt);

    /**
     * One tick of the prepared replay: advances tasks and load EWMAs
     * with the cached grants.  Bit-identical to tick(now, dt) within
     * the quiescent interval established by begin_replay().
     */
    void replay_tick(SimTime now, SimTime dt);

    /**
     * True when further replay ticks are floating-point fixed points
     * for all load signals and HRM windows, so replay_bulk() may be
     * substituted for per-tick replay with bit-identical results.
     * The verdict is cached: while the slot cache keeps being reused
     * (begin_replay() hits) and boundary ticks run through it, a
     * steady state provably persists, so the fixed points are only
     * re-verified after a cache miss.
     */
    bool replay_bulk_ready(SimTime now, SimTime dt) const;

    /**
     * True when every task's HRM windows are steady (heart rates
     * pinned bit-for-bit) even though some load EWMA may still be
     * converging.  Then replay_bulk() plus replay_ewma_bulk() equal n
     * per-tick replays: only the EWMAs need the tick-by-tick
     * trajectory, everything else advances in closed form.
     */
    bool replay_windows_steady(SimTime now, SimTime dt) const;

    /** Apply `n` replay ticks at once (after replay_bulk_ready()). */
    void replay_bulk(long n, SimTime now, SimTime dt);

    /**
     * The load/share EWMA updates of `n` replay ticks, nothing else.
     * Each entry's update sequence is exactly the per-tick one; the
     * independent per-entry chains run in lockstep for throughput.
     */
    void replay_ewma_bulk(long n);

    /** Time before which the task receives no cycles (migration). */
    SimTime blocked_until(TaskId t) const { return entry(t).blocked_until; }

    /** Busy fraction of `core` during the last tick, in [0, 1]. */
    double core_utilization(CoreId core) const;

    /** Per-core busy fractions of the last tick, indexed by core id. */
    const std::vector<double>& utilizations() const { return core_util_; }

    /**
     * PELT-like runnable fraction of the task (EWMA, ~100 ms time
     * constant).  CPU-bound tasks saturate at 1; self-pacing or
     * blocked tasks decay.  Consumed by the HL baseline.
     */
    double task_load(TaskId t) const;

    /** EWMA of the fraction of its core's capacity the task received. */
    double task_cpu_share(TaskId t) const;

    /** Supply in PU the task received during the last tick. */
    Pu task_supply_last(TaskId t) const;

    /** Number of migrations performed so far. */
    long migrations() const { return migrations_; }

    /**
     * Invalidate the replay cache after a topology change the cached
     * water-fill cannot see (core hot-plug: cluster supplies are
     * unchanged but a core's capacity went to zero or came back).
     */
    void notify_topology_changed() { replay_cache_valid_ = false; }

    const hw::Chip& chip() const { return *chip_; }
    const hw::MigrationModel& migration_model() const { return migration_; }

    /**
     * Per-entry dynamic state plus core utilizations.  The replay
     * cache is deliberately not serialized: load() invalidates it, and
     * the hit and miss paths are bit-identical by contract, so a
     * restored run's first begin_replay() miss recomputes the same
     * grants the uninterrupted run would have reused.
     */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    struct Entry {
        workload::Task* task = nullptr;
        CoreId core = kInvalidId;
        int nice = 0;
        double weight = 0.0;
        bool active = true;
        SimTime blocked_until = 0;
        double load_ewma = 0.0;
        double share_ewma = 0.0;
        Pu supply_last = 0.0;
    };

    /** Cached per-task values of one tick of a quiescent interval. */
    struct ReplaySlot {
        workload::Task* task = nullptr;
        std::size_t entry = 0;     ///< Index into entries_.
        Cycles granted = 0.0;      ///< Cycles granted per tick.
        double beats = 0.0;        ///< Heartbeats emitted per tick.
        double supplied = 0.0;     ///< PU-seconds supplied per tick.
        double runnable_frac = 0.0;
        double share = 0.0;
        Pu supply_last = 0.0;      ///< Entry's supply_last per tick.
        int phase_idx = 0;         ///< Task phase at cache time.
    };

    /**
     * Re-publish the observables a full distribute() pass would
     * write -- core_util_ and each entry's supply_last -- from the
     * cached slot set.  Must run on every cache hit: a miss leaves
     * the cache in place, so a later tick can hit a cache built in an
     * older (but input-identical) era while the observables still
     * hold the most recent miss's values.  Without the restore,
     * governors and the power model read utilizations from the wrong
     * era -- and hit/miss sequences differ between per-tick and
     * macro-stepped execution, breaking bit-exactness.
     */
    void restore_replay_observables();

    /**
     * True when the slots cached by the previous begin_replay() are
     * still exact for an interval starting now: no placement / nice /
     * activity mutation since (replay_cache_valid_), same tick, every
     * active task already unblocked at cache time (blocked_until only
     * grows through migrate(), which invalidates), identical cluster
     * supplies (covers both V-F level and power gating) and identical
     * task phases.  Under those conditions the water-fill inputs are
     * bit-identical, so the cached grants are too.
     */
    bool replay_cache_reusable(SimTime dt) const;

    Entry& entry(TaskId t);
    const Entry& entry(TaskId t) const;

    /** Water-filling split of `capacity` cycles among `ids` on `core`. */
    void distribute(CoreId core, const std::vector<TaskId>& ids,
                    SimTime now, SimTime dt);

    /**
     * The water-fill proper: partition `ids` into runnable/blocked at
     * `now` and fill granted_ with each task's cycle grant.
     * @return the core's cycle capacity for the tick.
     */
    Cycles fill_granted(CoreId core, const std::vector<TaskId>& ids,
                        SimTime now, SimTime dt);

    hw::Chip* chip_;
    hw::MigrationModel migration_;
    std::vector<Entry> entries_;
    std::vector<double> core_util_;
    long migrations_ = 0;

    // Reusable per-tick scratch (sized once, cleared per use) so the
    // steady-state tick allocates nothing.  by_core_ groups task ids
    // per core; the index vectors drive the water-filling loop with
    // positions into the current core's id list, replacing the
    // O(n^2) std::find of the id-keyed formulation.
    std::vector<std::vector<TaskId>> by_core_;
    std::vector<Cycles> granted_;
    std::vector<std::size_t> active_idx_;
    std::vector<std::size_t> hungry_idx_;
    // Flat SoA columns of the current core's water-fill inputs,
    // gathered once per fill_granted() call (see the comment there);
    // distribute()/begin_replay() reuse wf_want_ for the runnable
    // fraction instead of re-querying the task.
    std::vector<double> wf_weight_;
    std::vector<Cycles> wf_want_;

    // Replay state (begin_replay / replay_tick / replay_bulk).
    std::vector<ReplaySlot> replay_slots_;
    double replay_alpha_ = 0.0;
    std::vector<double> bulk_hb_;    ///< replay_bulk() scratch.
    std::vector<Cycles> bulk_cycles_;
    bool replay_cache_valid_ = false;
    bool replay_all_unblocked_ = false;
    SimTime replay_dt_ = 0;
    std::vector<Pu> replay_supplies_;
    std::vector<double> replay_core_util_;  ///< core_util_ at cache time.
    bool replay_cache_hit_ = false;  ///< Last begin_replay() reused.
    mutable bool replay_steady_hold_ = false;  ///< Cached bulk verdict.
};

} // namespace ppm::sched

#endif // PPM_SCHED_SCHEDULER_HH

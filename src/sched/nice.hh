/**
 * @file
 * Linux nice values and their CFS load weights.
 *
 * The paper's core agents enact purchased resource shares by
 * manipulating task nice values; we reproduce the kernel's
 * sched_prio_to_weight table (each nice step is a ~1.25x weight
 * ratio) and provide the inverse mapping from a desired relative
 * share to the closest representable nice value.
 */

#ifndef PPM_SCHED_NICE_HH
#define PPM_SCHED_NICE_HH

namespace ppm::sched {

/** Minimum (most favourable) nice value. */
inline constexpr int kMinNice = -20;

/** Maximum (least favourable) nice value. */
inline constexpr int kMaxNice = 19;

/** Weight of nice 0 (the kernel's NICE_0_LOAD). */
inline constexpr double kNiceZeroWeight = 1024.0;

/** CFS load weight for a nice value (clamped into [-20, 19]). */
double weight_for_nice(int nice);

/**
 * Closest nice value realizing `share / max_share` relative to the
 * task that should receive the largest share.  The largest share maps
 * to nice 0 and smaller shares to increasingly positive nice values;
 * the result is clamped into [0, kMaxNice].  Both arguments must be
 * positive.
 */
int nice_for_relative_share(double share, double max_share);

} // namespace ppm::sched

#endif // PPM_SCHED_NICE_HH

#include "sched/nice.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ppm::sched {

namespace {

/** kernel/sched/core.c sched_prio_to_weight, nice -20 .. 19. */
constexpr double kPrioToWeight[40] = {
    88761, 71755, 56483, 46273, 36291,  // -20 .. -16
    29154, 23254, 18705, 14949, 11916,  // -15 .. -11
    9548,  7620,  6100,  4904,  3906,   // -10 .. -6
    3121,  2501,  1991,  1586,  1277,   // -5 .. -1
    1024,  820,   655,   526,   423,    // 0 .. 4
    335,   272,   215,   172,   137,    // 5 .. 9
    110,   87,    70,    56,    45,     // 10 .. 14
    36,    29,    23,    18,    15,     // 15 .. 19
};

} // namespace

double
weight_for_nice(int nice)
{
    const int clamped = std::clamp(nice, kMinNice, kMaxNice);
    return kPrioToWeight[clamped - kMinNice];
}

int
nice_for_relative_share(double share, double max_share)
{
    PPM_ASSERT(share > 0.0 && max_share > 0.0,
               "shares must be positive");
    const double ratio = std::min(1.0, share / max_share);
    // Each nice step scales the weight by ~1.25; nice 0 is the anchor.
    const double steps = -std::log(ratio) / std::log(1.25);
    const int nice = static_cast<int>(std::lround(steps));
    return std::clamp(nice, 0, kMaxNice);
}

} // namespace ppm::sched

#include "sched/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "sched/nice.hh"

namespace ppm::sched {

namespace {
/** EWMA time constant for the load signals (PELT-like). */
constexpr double kLoadTauSeconds = 0.1;
} // namespace

Scheduler::Scheduler(hw::Chip* chip, hw::MigrationModel migration)
    : chip_(chip), migration_(migration),
      core_util_(static_cast<std::size_t>(chip->num_cores()), 0.0),
      by_core_(static_cast<std::size_t>(chip->num_cores()))
{
    PPM_ASSERT(chip_ != nullptr, "scheduler needs a chip");
}

void
Scheduler::add_task(workload::Task* task, CoreId core)
{
    PPM_ASSERT(task != nullptr, "null task");
    PPM_ASSERT(core >= 0 && core < chip_->num_cores(),
               "initial core out of range");
    PPM_ASSERT(task->id() == num_tasks(),
               "tasks must be added in id order starting at 0");
    Entry e;
    e.task = task;
    e.core = core;
    e.nice = 0;
    e.weight = weight_for_nice(0);
    entries_.push_back(e);
}

Scheduler::Entry&
Scheduler::entry(TaskId t)
{
    PPM_ASSERT(t >= 0 && t < num_tasks(), "task id out of range");
    return entries_[static_cast<std::size_t>(t)];
}

const Scheduler::Entry&
Scheduler::entry(TaskId t) const
{
    PPM_ASSERT(t >= 0 && t < num_tasks(), "task id out of range");
    return entries_[static_cast<std::size_t>(t)];
}

workload::Task&
Scheduler::task(TaskId t)
{
    return *entry(t).task;
}

const workload::Task&
Scheduler::task(TaskId t) const
{
    return *entry(t).task;
}

CoreId
Scheduler::core_of(TaskId t) const
{
    return entry(t).core;
}

std::vector<TaskId>
Scheduler::tasks_on(CoreId core) const
{
    std::vector<TaskId> out;
    for (const Entry& e : entries_) {
        if (e.core == core && e.active)
            out.push_back(e.task->id());
    }
    return out;
}

void
Scheduler::set_active(TaskId t, bool active)
{
    entry(t).active = active;
}

bool
Scheduler::active(TaskId t) const
{
    return entry(t).active;
}

SimTime
Scheduler::migrate(TaskId t, CoreId core, SimTime now)
{
    PPM_ASSERT(core >= 0 && core < chip_->num_cores(),
               "target core out of range");
    Entry& e = entry(t);
    if (e.core == core)
        return 0;
    const SimTime cost = migration_.cost(*chip_, e.core, core);
    e.core = core;
    e.blocked_until = std::max(e.blocked_until, now + cost);
    ++migrations_;
    return cost;
}

void
Scheduler::set_nice(TaskId t, int nice)
{
    Entry& e = entry(t);
    e.nice = std::clamp(nice, kMinNice, kMaxNice);
    e.weight = weight_for_nice(e.nice);
}

int
Scheduler::nice_of(TaskId t) const
{
    return entry(t).nice;
}

void
Scheduler::distribute(CoreId core, const std::vector<TaskId>& ids,
                      SimTime now, SimTime dt)
{
    const hw::Cluster& cl = chip_->cluster(chip_->cluster_of(core));
    const hw::CoreClass cls = cl.type().core_class;
    const Cycles capacity = work_done(cl.supply(), dt);

    // Partition into runnable (unblocked) and blocked tasks.  The
    // scratch holds positions into `ids` so the water-filling passes
    // index `granted_` directly instead of re-searching `ids` per
    // task per pass.
    active_idx_.clear();
    for (std::size_t i = 0; i < ids.size(); ++i) {
        if (entry(ids[i]).blocked_until <= now)
            active_idx_.push_back(i);
    }

    // Water-filling proportional share among runnable tasks.
    granted_.assign(ids.size(), 0.0);
    if (capacity > 0.0 && !active_idx_.empty()) {
        Cycles remaining = capacity;
        while (!active_idx_.empty() && remaining > 1e-9) {
            double total_weight = 0.0;
            for (const std::size_t i : active_idx_)
                total_weight += entry(ids[i]).weight;
            hungry_idx_.clear();
            Cycles consumed = 0.0;
            for (const std::size_t i : active_idx_) {
                const Entry& e = entry(ids[i]);
                const Cycles quota =
                    remaining * e.weight / total_weight;
                const Cycles want = e.task->desired_cycles(dt, cls);
                const Cycles already = granted_[i];
                const Cycles need = std::max(0.0, want - already);
                if (need <= quota * (1.0 + 1e-12)) {
                    granted_[i] += need;
                    consumed += need;
                } else {
                    granted_[i] += quota;
                    consumed += quota;
                    hungry_idx_.push_back(i);
                }
            }
            remaining -= consumed;
            if (hungry_idx_.size() == active_idx_.size())
                break;  // Everyone hungry: quotas fully used.
            std::swap(active_idx_, hungry_idx_);
        }
    }

    // Advance tasks and update signals.
    Cycles used_total = 0.0;
    const double alpha =
        1.0 - std::exp(-to_seconds(dt) / kLoadTauSeconds);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        Entry& e = entry(ids[i]);
        const Cycles g = granted_[i];
        used_total += g;
        e.task->advance(now, dt, g, cls);
        e.supply_last = g / kCyclesPerPuSecond / to_seconds(dt);
        const bool runnable_now = e.blocked_until <= now;
        const double share = capacity > 0.0 ? g / capacity : 0.0;
        // Runnable fraction (PELT-like): a task that still wants more
        // cycles was runnable for the whole tick; a self-paced task
        // that got everything it asked for slept the rest of it.
        const Cycles want = e.task->desired_cycles(dt, cls);
        double runnable_frac = 0.0;
        if (runnable_now)
            runnable_frac = g + 1e-6 >= want ? share : 1.0;
        e.load_ewma += alpha * (runnable_frac - e.load_ewma);
        e.share_ewma += alpha * (share - e.share_ewma);
    }
    core_util_[static_cast<std::size_t>(core)] =
        capacity > 0.0 ? std::min(1.0, used_total / capacity) : 0.0;
}

void
Scheduler::tick(SimTime now, SimTime dt)
{
    PPM_ASSERT(dt > 0, "tick must be positive");
    // Group active tasks by core in one pass.  The per-core vectors
    // are members that keep their capacity, so steady-state ticks
    // allocate nothing.
    for (auto& ids : by_core_)
        ids.clear();
    for (const Entry& e : entries_) {
        if (e.active)
            by_core_[static_cast<std::size_t>(e.core)].push_back(
                e.task->id());
    }
    for (CoreId c = 0; c < chip_->num_cores(); ++c)
        distribute(c, by_core_[static_cast<std::size_t>(c)], now, dt);
}

double
Scheduler::core_utilization(CoreId core) const
{
    PPM_ASSERT(core >= 0 && core < chip_->num_cores(),
               "core id out of range");
    return core_util_[static_cast<std::size_t>(core)];
}

double
Scheduler::task_load(TaskId t) const
{
    return entry(t).load_ewma;
}

double
Scheduler::task_cpu_share(TaskId t) const
{
    return entry(t).share_ewma;
}

Pu
Scheduler::task_supply_last(TaskId t) const
{
    return entry(t).supply_last;
}

} // namespace ppm::sched

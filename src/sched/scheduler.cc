#include "sched/scheduler.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "sched/nice.hh"

namespace ppm::sched {

namespace {
/** EWMA time constant for the load signals (PELT-like). */
constexpr double kLoadTauSeconds = 0.1;

/** Bitwise double equality (distinguishes 0.0 from -0.0). */
bool
bit_equal(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}
} // namespace

Scheduler::Scheduler(hw::Chip* chip, hw::MigrationModel migration)
    : chip_(chip), migration_(migration),
      core_util_(static_cast<std::size_t>(chip->num_cores()), 0.0),
      by_core_(static_cast<std::size_t>(chip->num_cores()))
{
    PPM_ASSERT(chip_ != nullptr, "scheduler needs a chip");
}

void
Scheduler::add_task(workload::Task* task, CoreId core)
{
    PPM_ASSERT(task != nullptr, "null task");
    PPM_ASSERT(core >= 0 && core < chip_->num_cores(),
               "initial core out of range");
    PPM_ASSERT(task->id() == num_tasks(),
               "tasks must be added in id order starting at 0");
    Entry e;
    e.task = task;
    e.core = core;
    e.nice = 0;
    e.weight = weight_for_nice(0);
    entries_.push_back(e);
    replay_cache_valid_ = false;
}

Scheduler::Entry&
Scheduler::entry(TaskId t)
{
    PPM_ASSERT(t >= 0 && t < num_tasks(), "task id out of range");
    return entries_[static_cast<std::size_t>(t)];
}

const Scheduler::Entry&
Scheduler::entry(TaskId t) const
{
    PPM_ASSERT(t >= 0 && t < num_tasks(), "task id out of range");
    return entries_[static_cast<std::size_t>(t)];
}

workload::Task&
Scheduler::task(TaskId t)
{
    return *entry(t).task;
}

const workload::Task&
Scheduler::task(TaskId t) const
{
    return *entry(t).task;
}

CoreId
Scheduler::core_of(TaskId t) const
{
    return entry(t).core;
}

std::vector<TaskId>
Scheduler::tasks_on(CoreId core) const
{
    std::vector<TaskId> out;
    for (const Entry& e : entries_) {
        if (e.core == core && e.active)
            out.push_back(e.task->id());
    }
    return out;
}

void
Scheduler::set_active(TaskId t, bool active)
{
    Entry& e = entry(t);
    if (e.active == active)
        return;
    e.active = active;
    replay_cache_valid_ = false;
}

bool
Scheduler::active(TaskId t) const
{
    return entry(t).active;
}

SimTime
Scheduler::migrate(TaskId t, CoreId core, SimTime now,
                   double cost_scale)
{
    PPM_ASSERT(core >= 0 && core < chip_->num_cores(),
               "target core out of range");
    Entry& e = entry(t);
    if (e.core == core)
        return 0;
    const SimTime cost =
        migration_.cost(*chip_, e.core, core, cost_scale);
    e.core = core;
    e.blocked_until = std::max(e.blocked_until, now + cost);
    ++migrations_;
    replay_cache_valid_ = false;
    return cost;
}

void
Scheduler::set_nice(TaskId t, int nice)
{
    Entry& e = entry(t);
    const int clamped = std::clamp(nice, kMinNice, kMaxNice);
    if (e.nice == clamped)
        return;  // weight_for_nice is pure: nothing would change.
    e.nice = clamped;
    e.weight = weight_for_nice(clamped);
    replay_cache_valid_ = false;
}

int
Scheduler::nice_of(TaskId t) const
{
    return entry(t).nice;
}

Cycles
Scheduler::fill_granted(CoreId core, const std::vector<TaskId>& ids,
                        SimTime now, SimTime dt)
{
    const hw::Cluster& cl = chip_->cluster(chip_->cluster_of(core));
    const hw::CoreClass cls = cl.type().core_class;
    const Cycles capacity =
        chip_->core_online(core) ? work_done(cl.supply(), dt) : 0.0;

    // Gather the water-fill inputs into flat scratch columns first:
    // runnable positions, CFS weights, and desired cycles.  Both
    // gathered values are invariant across the refinement passes
    // below (desired_cycles is pure until advance()), so hoisting
    // them replaces the pass-by-pass Entry/Task pointer chasing with
    // contiguous loads the compiler can keep in vector registers --
    // the values, and hence every grant, are bit-identical.
    active_idx_.clear();
    wf_weight_.resize(ids.size());
    wf_want_.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
        const Entry& e = entry(ids[i]);
        wf_weight_[i] = e.weight;
        wf_want_[i] = e.task->desired_cycles(dt, cls);
        if (e.blocked_until <= now)
            active_idx_.push_back(i);
    }

    // Water-filling proportional share among runnable tasks.
    granted_.assign(ids.size(), 0.0);
    if (capacity > 0.0 && !active_idx_.empty()) {
        Cycles remaining = capacity;
        while (!active_idx_.empty() && remaining > 1e-9) {
            double total_weight = 0.0;
            for (const std::size_t i : active_idx_)
                total_weight += wf_weight_[i];
            hungry_idx_.clear();
            Cycles consumed = 0.0;
            for (const std::size_t i : active_idx_) {
                const Cycles quota =
                    remaining * wf_weight_[i] / total_weight;
                const Cycles want = wf_want_[i];
                const Cycles already = granted_[i];
                const Cycles need = std::max(0.0, want - already);
                if (need <= quota * (1.0 + 1e-12)) {
                    granted_[i] += need;
                    consumed += need;
                } else {
                    granted_[i] += quota;
                    consumed += quota;
                    hungry_idx_.push_back(i);
                }
            }
            remaining -= consumed;
            if (hungry_idx_.size() == active_idx_.size())
                break;  // Everyone hungry: quotas fully used.
            std::swap(active_idx_, hungry_idx_);
        }
    }
    return capacity;
}

void
Scheduler::distribute(CoreId core, const std::vector<TaskId>& ids,
                      SimTime now, SimTime dt)
{
    const hw::Cluster& cl = chip_->cluster(chip_->cluster_of(core));
    const hw::CoreClass cls = cl.type().core_class;
    const Cycles capacity = fill_granted(core, ids, now, dt);

    // Advance tasks and update signals.
    Cycles used_total = 0.0;
    const double alpha =
        1.0 - std::exp(-to_seconds(dt) / kLoadTauSeconds);
    for (std::size_t i = 0; i < ids.size(); ++i) {
        Entry& e = entry(ids[i]);
        const Cycles g = granted_[i];
        used_total += g;
        e.task->advance(now, dt, g, cls);
        e.supply_last = g / kCyclesPerPuSecond / to_seconds(dt);
        const bool runnable_now = e.blocked_until <= now;
        const double share = capacity > 0.0 ? g / capacity : 0.0;
        // Runnable fraction (PELT-like): a task that still wants more
        // cycles was runnable for the whole tick; a self-paced task
        // that got everything it asked for slept the rest of it.
        // (wf_want_ was gathered by fill_granted before any advance.)
        const Cycles want = wf_want_[i];
        double runnable_frac = 0.0;
        if (runnable_now)
            runnable_frac = g + 1e-6 >= want ? share : 1.0;
        e.load_ewma += alpha * (runnable_frac - e.load_ewma);
        e.share_ewma += alpha * (share - e.share_ewma);
    }
    core_util_[static_cast<std::size_t>(core)] =
        capacity > 0.0 ? std::min(1.0, used_total / capacity) : 0.0;
}

void
Scheduler::tick(SimTime now, SimTime dt)
{
    PPM_ASSERT(dt > 0, "tick must be positive");
    // A valid replay cache means this tick's water-fill would
    // reproduce the cached grants bit-for-bit (begin_replay() and
    // replay_tick() decompose tick() without reordering any
    // floating-point operation), so skip straight to the advance.
    if (replay_cache_reusable(dt)) {
        restore_replay_observables();
        replay_tick(now, dt);
        return;
    }
    // This tick's samples may differ from the cached slots (that is
    // why the cache was not reusable), so any latched steady verdict
    // is broken: the HRM windows pick up extra runs and the EWMAs
    // leave their fixed points.  The slot cache itself can later
    // *re-validate* without a begin_replay() miss -- e.g. a DVFS or
    // safe-mode excursion returns the cluster supply to the cached
    // value -- so the verdict must be dropped here, not merely on
    // cache rebuild, or replay_bulk_ready() would skip verification
    // and bulk-advance non-steady windows.
    replay_steady_hold_ = false;
    // Group active tasks by core in one pass.  The per-core vectors
    // are members that keep their capacity, so steady-state ticks
    // allocate nothing.
    for (auto& ids : by_core_)
        ids.clear();
    for (const Entry& e : entries_) {
        if (e.active)
            by_core_[static_cast<std::size_t>(e.core)].push_back(
                e.task->id());
    }
    for (CoreId c = 0; c < chip_->num_cores(); ++c)
        distribute(c, by_core_[static_cast<std::size_t>(c)], now, dt);
}

bool
Scheduler::replay_cache_reusable(SimTime dt) const
{
    if (!replay_cache_valid_ || dt != replay_dt_ || !replay_all_unblocked_)
        return false;
    for (std::size_t v = 0; v < replay_supplies_.size(); ++v) {
        if (chip_->cluster(static_cast<ClusterId>(v)).supply() !=
            replay_supplies_[v])
            return false;
    }
    for (const ReplaySlot& s : replay_slots_) {
        if (s.task->phase_index() != s.phase_idx)
            return false;
    }
    return true;
}

void
Scheduler::begin_replay(SimTime now, SimTime dt)
{
    PPM_ASSERT(dt > 0, "tick must be positive");
    if (replay_cache_reusable(dt)) {
        replay_cache_hit_ = true;  // The cached slots are still exact.
        restore_replay_observables();
        return;
    }
    replay_cache_hit_ = false;
    replay_alpha_ = 1.0 - std::exp(-to_seconds(dt) / kLoadTauSeconds);
    replay_slots_.clear();
    for (auto& ids : by_core_)
        ids.clear();
    for (const Entry& e : entries_) {
        if (e.active)
            by_core_[static_cast<std::size_t>(e.core)].push_back(
                e.task->id());
    }
    for (CoreId c = 0; c < chip_->num_cores(); ++c) {
        const auto& ids = by_core_[static_cast<std::size_t>(c)];
        const hw::Cluster& cl = chip_->cluster(chip_->cluster_of(c));
        const hw::CoreClass cls = cl.type().core_class;
        const Cycles capacity = fill_granted(c, ids, now, dt);
        Cycles used_total = 0.0;
        for (std::size_t i = 0; i < ids.size(); ++i) {
            Entry& e = entry(ids[i]);
            const Cycles g = granted_[i];
            used_total += g;
            ReplaySlot s;
            s.task = e.task;
            s.entry = static_cast<std::size_t>(ids[i]);
            s.granted = g;
            s.beats = g / e.task->work_per_hb(cls);
            s.supplied = g / kCyclesPerPuSecond;
            e.supply_last = g / kCyclesPerPuSecond / to_seconds(dt);
            s.supply_last = e.supply_last;
            s.share = capacity > 0.0 ? g / capacity : 0.0;
            const bool runnable_now = e.blocked_until <= now;
            const Cycles want = wf_want_[i];
            s.runnable_frac = 0.0;
            if (runnable_now)
                s.runnable_frac = g + 1e-6 >= want ? s.share : 1.0;
            replay_slots_.push_back(s);
        }
        core_util_[static_cast<std::size_t>(c)] =
            capacity > 0.0 ? std::min(1.0, used_total / capacity) : 0.0;
    }

    // Condition the cache (see replay_cache_reusable).  blocked_until
    // never decreases and only grows through migrate(), so an interval
    // that starts with every active task runnable stays representative
    // for any later start time while no invalidating mutation occurs.
    replay_dt_ = dt;
    replay_all_unblocked_ = true;
    for (const Entry& e : entries_) {
        if (e.active && e.blocked_until > now)
            replay_all_unblocked_ = false;
    }
    replay_supplies_.clear();
    for (const auto& cl : chip_->clusters())
        replay_supplies_.push_back(cl.supply());
    for (ReplaySlot& s : replay_slots_)
        s.phase_idx = s.task->phase_index();
    replay_core_util_ = core_util_;
    replay_cache_valid_ = true;
}

void
Scheduler::restore_replay_observables()
{
    core_util_ = replay_core_util_;
    for (const ReplaySlot& s : replay_slots_)
        entries_[s.entry].supply_last = s.supply_last;
}

void
Scheduler::replay_tick(SimTime now, SimTime dt)
{
    for (const ReplaySlot& s : replay_slots_) {
        s.task->replay_advance(now, dt, s.granted, s.beats, s.supplied);
        Entry& e = entries_[s.entry];
        e.load_ewma += replay_alpha_ * (s.runnable_frac - e.load_ewma);
        e.share_ewma += replay_alpha_ * (s.share - e.share_ewma);
    }
}

bool
Scheduler::replay_bulk_ready(SimTime now, SimTime dt) const
{
    // A steady verdict persists while the slot cache keeps hitting:
    // bulk advances and cached boundary ticks only shift the steady
    // windows and re-apply fixed-point EWMA updates, neither of which
    // changes a bit of the checked state.  Structural mutations
    // invalidate the slot cache (the next begin_replay() misses and
    // clears replay_cache_hit_), and any tick that runs the full
    // water-fill instead of a cached replay drops the verdict
    // directly (see tick()) -- necessary because the cache can
    // re-validate after a supply excursion without ever missing.
    if (replay_steady_hold_ && replay_cache_hit_)
        return true;
    replay_steady_hold_ = false;
    for (const ReplaySlot& s : replay_slots_) {
        const Entry& e = entries_[s.entry];
        // Both EWMAs must be at their floating-point fixed point:
        // one more update step must reproduce the same bits.
        if (!bit_equal(
                e.load_ewma +
                    replay_alpha_ * (s.runnable_frac - e.load_ewma),
                e.load_ewma))
            return false;
        if (!bit_equal(
                e.share_ewma + replay_alpha_ * (s.share - e.share_ewma),
                e.share_ewma))
            return false;
        if (!s.task->replay_steady(now, dt, s.beats, s.supplied))
            return false;
    }
    replay_steady_hold_ = true;
    return true;
}

bool
Scheduler::replay_windows_steady(SimTime now, SimTime dt) const
{
    for (const ReplaySlot& s : replay_slots_) {
        if (!s.task->replay_steady(now, dt, s.beats, s.supplied))
            return false;
    }
    return true;
}

void
Scheduler::replay_bulk(long n, SimTime now, SimTime dt)
{
    (void)now;
    // Each task's totals are sums of n dependent additions that must
    // stay in per-tick order (floating-point addition does not
    // associate).  Different tasks' chains are independent, though, so
    // running them in lockstep lets the CPU overlap the add latencies
    // instead of serialising one task's whole chain after another's.
    const std::size_t m = replay_slots_.size();
    bulk_hb_.resize(m);
    bulk_cycles_.resize(m);
    for (std::size_t i = 0; i < m; ++i) {
        bulk_hb_[i] = replay_slots_[i].task->total_heartbeats();
        bulk_cycles_[i] = replay_slots_[i].task->total_cycles();
    }
    for (long k = 0; k < n; ++k) {
        for (std::size_t i = 0; i < m; ++i) {
            bulk_hb_[i] += replay_slots_[i].beats;
            bulk_cycles_[i] += replay_slots_[i].granted;
        }
    }
    for (std::size_t i = 0; i < m; ++i)
        replay_slots_[i].task->bulk_finish(n, dt, bulk_hb_[i],
                                           bulk_cycles_[i]);
}

void
Scheduler::replay_ewma_bulk(long n)
{
    for (long k = 0; k < n; ++k) {
        for (const ReplaySlot& s : replay_slots_) {
            Entry& e = entries_[s.entry];
            e.load_ewma +=
                replay_alpha_ * (s.runnable_frac - e.load_ewma);
            e.share_ewma += replay_alpha_ * (s.share - e.share_ewma);
        }
    }
}

double
Scheduler::core_utilization(CoreId core) const
{
    PPM_ASSERT(core >= 0 && core < chip_->num_cores(),
               "core id out of range");
    return core_util_[static_cast<std::size_t>(core)];
}

double
Scheduler::task_load(TaskId t) const
{
    return entry(t).load_ewma;
}

double
Scheduler::task_cpu_share(TaskId t) const
{
    return entry(t).share_ewma;
}

Pu
Scheduler::task_supply_last(TaskId t) const
{
    return entry(t).supply_last;
}

} // namespace ppm::sched

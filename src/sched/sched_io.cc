/**
 * @file
 * Snapshot serialization of the scheduler's dynamic state.
 */

#include "common/logging.hh"
#include "sched/scheduler.hh"
#include "snapshot/archive.hh"

namespace ppm::sched {

void
Scheduler::save(snap::Writer& w) const
{
    w.u64(entries_.size());
    for (const Entry& e : entries_) {
        w.i32(e.core);
        w.i32(e.nice);
        w.f64(e.weight);
        w.b(e.active);
        w.i64(e.blocked_until);
        w.f64(e.load_ewma);
        w.f64(e.share_ewma);
        w.f64(e.supply_last);
    }
    w.f64v(core_util_);
    w.i64(static_cast<std::int64_t>(migrations_));
}

void
Scheduler::load(snap::Reader& r)
{
    const std::size_t n = static_cast<std::size_t>(r.u64());
    PPM_ASSERT(n == entries_.size(),
               "snapshot mismatch: scheduler entry count differs "
               "(admission replay incomplete?)");
    for (Entry& e : entries_) {
        e.core = r.i32();
        e.nice = r.i32();
        e.weight = r.f64();
        e.active = r.b();
        e.blocked_until = r.i64();
        e.load_ewma = r.f64();
        e.share_ewma = r.f64();
        e.supply_last = r.f64();
    }
    r.f64v(&core_util_);
    migrations_ = static_cast<long>(r.i64());
    // Grants cached before the snapshot describe an era this process
    // never ran; force the next begin_replay() onto the (bit-identical)
    // miss path.
    replay_cache_valid_ = false;
    replay_steady_hold_ = false;
    replay_cache_hit_ = false;
}

} // namespace ppm::sched

#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace ppm {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    PPM_ASSERT(!header_.empty(), "table needs at least one column");
}

void
Table::add_row(std::vector<std::string> row)
{
    PPM_ASSERT(row.size() == header_.size(), "row width != header width");
    rows_.push_back(std::move(row));
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> width(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        width[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto& row : rows_)
        emit(row);
}

void
Table::print_csv(std::ostream& os) const
{
    auto quote = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos)
            return s;
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << quote(row[c]);
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
}

std::string
fmt_double(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

std::string
fmt_percent(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
    return buf;
}

} // namespace ppm

/**
 * @file
 * Minimal logging / error-reporting facility in the spirit of gem5's
 * logging.hh: inform() and warn() report status, fatal() aborts on user
 * error (bad configuration), panic() aborts on internal invariant
 * violations (library bugs).
 */

#ifndef PPM_COMMON_LOGGING_HH
#define PPM_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace ppm {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    kSilent = 0,  ///< No output at all.
    kWarn = 1,    ///< Only warnings.
    kInform = 2,  ///< Warnings plus informational messages.
    kDebug = 3,   ///< Everything, including per-epoch debug traces.
};

/** Set the global verbosity. Default is kWarn. */
void set_log_level(LogLevel level);

/** Current global verbosity. */
LogLevel log_level();

/** Informational message (printf-style), suppressed below kInform. */
void inform(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Warning message (printf-style), suppressed below kWarn. */
void warn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/** Debug trace (printf-style), suppressed below kDebug. */
void debug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable *user* error (invalid configuration or
 * arguments) and exit(1).  Never returns.
 */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a library bug) and abort().
 * Never returns.
 */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** panic() unless `cond` holds; `msg` names the violated invariant. */
#define PPM_ASSERT(cond, msg)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::ppm::panic("assertion failed at %s:%d: %s (%s)", __FILE__,   \
                         __LINE__, #cond, msg);                            \
        }                                                                  \
    } while (false)

} // namespace ppm

#endif // PPM_COMMON_LOGGING_HH

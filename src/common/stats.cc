#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ppm {

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::reset()
{
    *this = OnlineStats{};
}

void
DutyCycle::add(bool condition, SimTime duration)
{
    PPM_ASSERT(duration >= 0, "negative duration");
    total_ += duration;
    if (condition)
        true_ += duration;
}

double
DutyCycle::fraction() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(true_) / static_cast<double>(total_);
}

void
DutyCycle::reset()
{
    total_ = 0;
    true_ = 0;
}

WindowRate::WindowRate(SimTime window) : window_(window)
{
    PPM_ASSERT(window > 0, "window must be positive");
}

void
WindowRate::evict(SimTime now) const
{
    const SimTime start = now - window_;
    while (count_ > 0 && ring_[head_].time <= start) {
        window_sum_ -= ring_[head_].count;
        head_ = (head_ + 1) % ring_.size();
        --count_;
    }
    if (count_ == 0)
        window_sum_ = 0.0;  // Clear floating-point residue.
}

void
WindowRate::grow()
{
    const std::size_t cap = ring_.size();
    std::vector<Sample> next(std::max<std::size_t>(8, cap * 2));
    for (std::size_t i = 0; i < count_; ++i)
        next[i] = ring_[(head_ + i) % cap];
    ring_ = std::move(next);
    head_ = 0;
}

void
WindowRate::add(SimTime now, double count)
{
    evict(now);
    if (count_ == ring_.size())
        grow();
    ring_[(head_ + count_) % ring_.size()] = {now, count};
    ++count_;
    window_sum_ += count;
}

double
WindowRate::rate(SimTime now) const
{
    evict(now);
    return window_sum_ / to_seconds(window_);
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return samples[std::min(idx, samples.size() - 1)];
}

} // namespace ppm

#include "common/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/logging.hh"

namespace ppm {

namespace {

/**
 * Bitwise double equality.  The coalescing and fixed-point checks must
 * distinguish 0.0 from -0.0 (operator== does not): substituting one
 * for the other would change later subtraction results by a sign bit.
 */
bool
bit_equal(double a, double b)
{
    return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

} // namespace

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::reset()
{
    *this = OnlineStats{};
}

void
DutyCycle::add(bool condition, SimTime duration)
{
    PPM_ASSERT(duration >= 0, "negative duration");
    total_ += duration;
    if (condition)
        true_ += duration;
}

double
DutyCycle::fraction() const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(true_) / static_cast<double>(total_);
}

void
DutyCycle::reset()
{
    total_ = 0;
    true_ = 0;
}

WindowRate::WindowRate(SimTime window) : window_(window)
{
    PPM_ASSERT(window > 0, "window must be positive");
}

void
WindowRate::evict(SimTime now) const
{
    const SimTime start = now - window_;
    while (runs_ > 0) {
        Run& r = ring_[head_];
        if (r.first > start)
            break;
        // How many of the run's samples fall at or before the window
        // start.  r.first <= start here, so k >= 1; skip the division
        // in the common steady case where only the oldest sample ages
        // out (the run's second sample is already past the start).
        long k = 1;
        if (r.n >= 2 && r.first + r.stride <= start)
            k = std::min<long>(r.n, (start - r.first) / r.stride + 1);
        // One subtraction per evicted sample, oldest first: the exact
        // floating-point op sequence of the per-sample ring.
        for (long i = 0; i < k; ++i)
            window_sum_ -= r.count;
        count_ -= k;
        if (k == r.n) {
            head_ = (head_ + 1) & (ring_.size() - 1);
            --runs_;
        } else {
            r.first += k * r.stride;
            r.n -= k;
            break;  // Remaining samples are newer than the start.
        }
    }
    if (count_ == 0)
        window_sum_ = 0.0;  // Clear floating-point residue.
}

void
WindowRate::grow()
{
    const std::size_t cap = ring_.size();
    std::vector<Run> next(std::max<std::size_t>(8, cap * 2));
    for (std::size_t i = 0; i < runs_; ++i)
        next[i] = ring_[(head_ + i) & (cap - 1)];
    ring_ = std::move(next);
    head_ = 0;
}

void
WindowRate::add(SimTime now, double count)
{
    // Steady-window fast path: a single uniform run, the new sample
    // extends it at the same stride with the same bits, and exactly
    // one sample ages out.  The net effect of evict-then-append is
    // then "-= count, += count, shift the run by one stride", with
    // the identical floating-point op sequence the general path would
    // execute and no run bookkeeping.
    if (runs_ == 1) {
        Run& r = ring_[head_];
        const SimTime start = now - window_;
        if (r.n >= 2 && now - r.last() == r.stride &&
            bit_equal(r.count, count) && r.first <= start &&
            r.first + r.stride > start) {
            window_sum_ -= count;
            window_sum_ += count;
            r.first += r.stride;
            return;
        }
    }
    evict(now);
    if (runs_ > 0) {
        Run& back = ring_[(head_ + runs_ - 1) & (ring_.size() - 1)];
        const SimTime gap = now - back.last();
        // Coalesce into the newest run when the sample value repeats
        // bit-for-bit at a uniform positive spacing.  Repeated
        // timestamps (gap == 0) stay separate runs so eviction order
        // is well defined.
        if (bit_equal(back.count, count) && gap > 0 &&
            (back.n == 1 || gap == back.stride)) {
            if (back.n == 1)
                back.stride = gap;
            ++back.n;
            ++count_;
            window_sum_ += count;
            return;
        }
    }
    if (runs_ == ring_.size())
        grow();
    ring_[(head_ + runs_) & (ring_.size() - 1)] =
        Run{now, 0, 1, count};
    ++runs_;
    ++count_;
    window_sum_ += count;
}

double
WindowRate::rate(SimTime now) const
{
    evict(now);
    return window_sum_ / to_seconds(window_);
}

bool
WindowRate::replay_steady(SimTime now, SimTime dt, double count) const
{
    PPM_ASSERT(dt > 0, "sampling period must be positive");
    evict(now);
    if (runs_ != 1 || window_ % dt != 0)
        return false;
    const Run& r = ring_[head_];
    if (r.n != window_ / dt || r.last() != now)
        return false;
    if (r.n >= 2 && r.stride != dt)
        return false;
    if (!bit_equal(r.count, count))
        return false;
    // One more add would evict exactly one sample and append one:
    // sum' = (sum - count) + count.  Steady only if that round-trips
    // to the same bits, making every further step the identity.
    return bit_equal((window_sum_ - count) + count, window_sum_);
}

void
WindowRate::advance_steady(SimTime shift)
{
    PPM_ASSERT(shift >= 0, "negative shift");
    PPM_ASSERT(runs_ == 1, "advance_steady needs a steady window");
    ring_[head_].first += shift;
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const double clamped = std::clamp(p, 0.0, 100.0);
    const auto rank = static_cast<std::size_t>(
        std::ceil(clamped / 100.0 * static_cast<double>(samples.size())));
    const std::size_t idx = rank == 0 ? 0 : rank - 1;
    return samples[std::min(idx, samples.size() - 1)];
}

} // namespace ppm

#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ppm {

namespace {
// Atomic so the parallel experiment runner's workers can read the
// level while the main thread (re)configures it without a data race.
std::atomic<LogLevel> g_level = LogLevel::kWarn;

void
vreport(const char* tag, const char* fmt, std::va_list args)
{
    std::fprintf(stderr, "%s: ", tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
}
} // namespace

void
set_log_level(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

LogLevel
log_level()
{
    return g_level.load(std::memory_order_relaxed);
}

void
inform(const char* fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::kInform)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("info", fmt, args);
    va_end(args);
}

void
warn(const char* fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::kWarn)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("warn", fmt, args);
    va_end(args);
}

void
debug(const char* fmt, ...)
{
    if (g_level.load(std::memory_order_relaxed) < LogLevel::kDebug)
        return;
    std::va_list args;
    va_start(args, fmt);
    vreport("debug", fmt, args);
    va_end(args);
}

void
fatal(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("fatal", fmt, args);
    va_end(args);
    std::exit(1);
}

void
panic(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    vreport("panic", fmt, args);
    va_end(args);
    std::abort();
}

} // namespace ppm

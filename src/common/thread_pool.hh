/**
 * @file
 * Minimal fixed-size worker pool for the parallel experiment runner.
 *
 * Workers are std::jthread instances draining a FIFO task queue;
 * submit() returns a std::future so results and exceptions propagate
 * to the caller.  The pool itself imposes no ordering on task
 * *completion* -- callers that need deterministic output must reduce
 * results in submission order (as experiment::run_cells does).
 */

#ifndef PPM_COMMON_THREAD_POOL_HH
#define PPM_COMMON_THREAD_POOL_HH

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ppm {

/** Fixed-size FIFO worker pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; <= 0 means one worker per
     *                    hardware thread (at least one).
     */
    explicit ThreadPool(int num_threads = 0);

    /** Joins all workers; queued tasks still run to completion. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * True when the calling thread is one of this pool's workers.
     * Lets nested fan-outs (a pool task that itself calls
     * for_chunks() on the same pool) detect the recursion and run
     * inline instead of enqueueing chunks they would then block on --
     * with every worker blocked in a nested wait, the queued chunks
     * could never be scheduled and the pool would deadlock.
     */
    bool on_worker_thread() const { return current_pool() == this; }

    /**
     * Enqueue `fn` for execution on some worker and return a future
     * for its result.  An exception thrown by `fn` is captured and
     * rethrown from future::get().
     */
    template <typename Fn>
    auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::move(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task]() { (*task)(); });
        }
        ready_.notify_one();
        return future;
    }

    /** Resolve a worker-count request: <= 0 -> hardware concurrency. */
    static int resolve_jobs(int requested);

    /**
     * Dispatch `fn(begin, end)` over the fixed-size chunks of [0, n)
     * and block until all of them finished.  The chunk boundaries are
     * a pure function of `n` and `grain` -- ceil(n/grain) chunks of
     * `grain` indices, the last one shorter -- and never depend on the
     * worker count, so callers whose chunks touch disjoint state get
     * identical results for every pool size.  With a null `pool`, a
     * single worker, or a single chunk, the chunks run inline on the
     * calling thread, in order, with zero allocation; otherwise each
     * chunk is submitted as one pool task and the futures are drained
     * in chunk order (the first chunk exception, in that order, is
     * rethrown).  `fn` must be safe to invoke concurrently on
     * disjoint ranges.
     *
     * Reentrancy: when the calling thread is itself a worker of
     * `pool` (a shared pool stepping fleet shards or sweep cells
     * whose markets then clear on the same pool), the chunks run
     * inline -- blocking a worker on futures whose chunks sit behind
     * it in the queue could deadlock the pool, and oversubscribing a
     * busy pool is exactly what sharing one pool is meant to avoid.
     * Results are bit-identical either way (chunk boundaries do not
     * change).
     */
    template <typename Fn>
    static void for_chunks(ThreadPool* pool, std::size_t n,
                           std::size_t grain, Fn&& fn)
    {
        if (n == 0)
            return;
        if (grain == 0)
            grain = 1;
        const std::size_t chunks = (n + grain - 1) / grain;
        if (pool == nullptr || pool->size() <= 1 || chunks <= 1 ||
            pool->on_worker_thread()) {
            for (std::size_t c = 0; c < chunks; ++c)
                fn(c * grain, std::min(n, (c + 1) * grain));
            return;
        }
        std::vector<std::future<void>> futures;
        futures.reserve(chunks);
        for (std::size_t c = 0; c < chunks; ++c) {
            futures.push_back(pool->submit([&fn, c, grain, n]() {
                fn(c * grain, std::min(n, (c + 1) * grain));
            }));
        }
        for (auto& f : futures)
            f.get();
    }

  private:
    /** Worker loop: drain the queue until stop is requested. */
    void work(std::stop_token stop);

    /**
     * The pool (if any) whose worker the calling thread is.  A
     * function-local thread_local behind an accessor so the header
     * needs no exported TLS definition.
     */
    static ThreadPool*& current_pool();

    std::mutex mutex_;
    std::condition_variable_any ready_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::jthread> workers_;
};

} // namespace ppm

#endif // PPM_COMMON_THREAD_POOL_HH

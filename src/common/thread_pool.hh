/**
 * @file
 * Minimal fixed-size worker pool for the parallel experiment runner.
 *
 * Workers are std::jthread instances draining a FIFO task queue;
 * submit() returns a std::future so results and exceptions propagate
 * to the caller.  The pool itself imposes no ordering on task
 * *completion* -- callers that need deterministic output must reduce
 * results in submission order (as experiment::run_cells does).
 */

#ifndef PPM_COMMON_THREAD_POOL_HH
#define PPM_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ppm {

/** Fixed-size FIFO worker pool. */
class ThreadPool
{
  public:
    /**
     * @param num_threads Worker count; <= 0 means one worker per
     *                    hardware thread (at least one).
     */
    explicit ThreadPool(int num_threads = 0);

    /** Joins all workers; queued tasks still run to completion. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    int size() const { return static_cast<int>(workers_.size()); }

    /**
     * Enqueue `fn` for execution on some worker and return a future
     * for its result.  An exception thrown by `fn` is captured and
     * rethrown from future::get().
     */
    template <typename Fn>
    auto submit(Fn fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::move(fn));
        std::future<Result> future = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            queue_.emplace_back([task]() { (*task)(); });
        }
        ready_.notify_one();
        return future;
    }

    /** Resolve a worker-count request: <= 0 -> hardware concurrency. */
    static int resolve_jobs(int requested);

  private:
    /** Worker loop: drain the queue until stop is requested. */
    void work(std::stop_token stop);

    std::mutex mutex_;
    std::condition_variable_any ready_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::jthread> workers_;
};

} // namespace ppm

#endif // PPM_COMMON_THREAD_POOL_HH

/**
 * @file
 * Fundamental value types shared across the ppm library.
 *
 * The simulation measures time in integer microseconds and computational
 * capacity in Processing Units (PU).  Following the paper, one PU is one
 * million processor cycles per second, so a core clocked at F MHz supplies
 * exactly F PUs.
 */

#ifndef PPM_COMMON_TYPES_HH
#define PPM_COMMON_TYPES_HH

#include <cstdint>

namespace ppm {

/** Simulation time in microseconds. */
using SimTime = std::int64_t;

/** One millisecond expressed in SimTime units. */
inline constexpr SimTime kMillisecond = 1000;

/** One second expressed in SimTime units. */
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/**
 * Computational capacity in Processing Units.
 *
 * 1 PU == 1e6 cycles/s, so a 1000 MHz core supplies 1000 PU.  Fractional
 * values arise from proportional sharing, hence a floating type.
 */
using Pu = double;

/** Cycles of work (1 PU sustained for 1 s == 1e6 cycles). */
using Cycles = double;

/** Cycles contained in one PU-second. */
inline constexpr Cycles kCyclesPerPuSecond = 1e6;

/** Electrical power in watts. */
using Watts = double;

/** Energy in joules. */
using Joules = double;

/** Virtual currency used by the market framework. */
using Money = double;

/** Identifier types.  Values index into the owning container. */
using CoreId = int;
using ClusterId = int;
using TaskId = int;

/** Sentinel for "no core" / "no cluster" / "no task". */
inline constexpr int kInvalidId = -1;

/** Convert a SimTime duration to (fractional) seconds. */
constexpr double
to_seconds(SimTime t)
{
    return static_cast<double>(t) / static_cast<double>(kSecond);
}

/** Work (in cycles) done by `pu` Processing Units over duration `t`. */
constexpr Cycles
work_done(Pu pu, SimTime t)
{
    return pu * kCyclesPerPuSecond * to_seconds(t);
}

} // namespace ppm

#endif // PPM_COMMON_TYPES_HH

#include "common/thread_pool.hh"

#include "common/logging.hh"

namespace ppm {

int
ThreadPool::resolve_jobs(int requested)
{
    if (requested > 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads)
{
    const int n = resolve_jobs(num_threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back(
            [this](std::stop_token stop) { work(stop); });
    }
}

ThreadPool::~ThreadPool()
{
    for (auto& w : workers_)
        w.request_stop();
    ready_.notify_all();
    // jthread joins on destruction; workers drain the queue first so
    // every submitted future is eventually satisfied.
}

ThreadPool*&
ThreadPool::current_pool()
{
    thread_local ThreadPool* current = nullptr;
    return current;
}

void
ThreadPool::work(std::stop_token stop)
{
    current_pool() = this;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            ready_.wait(lock, stop, [this] { return !queue_.empty(); });
            if (queue_.empty())
                return; // Stop requested and nothing left to run.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // packaged_task captures any exception in the future.
    }
}

} // namespace ppm

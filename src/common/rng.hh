/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (workload phase jitter,
 * synthetic market state for the scalability benchmark) flows through
 * Rng so that every experiment is reproducible from a single seed.
 * The generator is xoshiro256** seeded via SplitMix64.
 */

#ifndef PPM_COMMON_RNG_HH
#define PPM_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace ppm {

/**
 * SplitMix64 finalizer: a stateless, bijective 64-bit mixing step.
 * Used wherever a deterministic value must be derived from composite
 * keys without carrying RNG state (fault noise hashes, sweep-cell and
 * fuzz-scenario seed derivation).  Bijectivity means distinct inputs
 * can never collide, so seed streams derived through mix64 from
 * distinct keys are guaranteed distinct.
 */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Small, fast, deterministic PRNG (xoshiro256**). */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded with SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next_u64();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /** Standard normal variate (Box-Muller, one value per call). */
    double normal();

    /** Normal variate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

  private:
    std::array<std::uint64_t, 4> state_;
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace ppm

#endif // PPM_COMMON_RNG_HH

/**
 * @file
 * Plain-text table and CSV output used by the benchmark harnesses to
 * print rows in the same layout as the paper's tables and figures.
 */

#ifndef PPM_COMMON_TABLE_HH
#define PPM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace ppm {

/**
 * Column-aligned plain-text table.
 *
 * Usage:
 * @code
 *   Table t({"Workload", "PPM", "HPM", "HL"});
 *   t.add_row({"l1", "3.2%", "5.1%", "1.0%"});
 *   t.print(std::cout);
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must match the header width. */
    void add_row(std::vector<std::string> row);

    /** Number of data rows. */
    std::size_t rows() const { return rows_.size(); }

    /** Render with aligned columns and a separator under the header. */
    void print(std::ostream& os) const;

    /** Render as CSV (no alignment, comma-separated, quoted as needed). */
    void print_csv(std::ostream& os) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with `digits` decimal places. */
std::string fmt_double(double v, int digits = 2);

/** Format a fraction in [0,1] as a percentage string, e.g. "12.3%". */
std::string fmt_percent(double fraction, int digits = 1);

} // namespace ppm

#endif // PPM_COMMON_TABLE_HH

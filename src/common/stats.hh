/**
 * @file
 * Small statistics helpers used by the metrics layer and benchmarks:
 * online accumulators (Welford), duty-cycle counters, sliding-window
 * rate estimators, and percentile computation over stored samples.
 */

#ifndef PPM_COMMON_STATS_HH
#define PPM_COMMON_STATS_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace ppm {

/**
 * Online mean / variance / min / max accumulator (Welford's algorithm).
 * Constant memory; suitable for per-epoch signals over long runs.
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean, or 0 with no samples. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance, or 0 with fewer than 2 samples. */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Smallest sample (0 if empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample (0 if empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fraction of (simulated) time a boolean condition held.
 *
 * Feed it (condition, duration) pairs; it reports the duty cycle.  This
 * is the primitive behind the paper's "percentage of time the reference
 * heart rate range is not met" metric (Figures 4, 6, 7).
 */
class DutyCycle
{
  public:
    /** Record that `condition` held for `duration` microseconds. */
    void add(bool condition, SimTime duration);

    /** Fraction of accumulated time the condition held, in [0, 1]. */
    double fraction() const;

    /** Total accumulated time. */
    SimTime total_time() const { return total_; }

    /** Time the condition held. */
    SimTime true_time() const { return true_; }

    /** Reset to the empty state. */
    void reset();

  private:
    SimTime total_ = 0;
    SimTime true_ = 0;
};

/**
 * Sliding-window event-rate estimator: events per second over the most
 * recent `window` of simulated time.  The Heart Rate Monitor is built
 * on this (heartbeats per second).
 *
 * Storage is a ring buffer whose capacity converges to the window's
 * steady-state sample count and is then reused forever -- unlike a
 * deque, which allocates a fresh chunk every few dozen pushes and so
 * keeps the per-tick HRM updates off an allocation-free hot path.
 */
class WindowRate
{
  public:
    /** @param window Width of the sliding window (must be > 0). */
    explicit WindowRate(SimTime window);

    /** Record `count` events (possibly fractional) at time `now`. */
    void add(SimTime now, double count);

    /** Events per second over [now - window, now]. */
    double rate(SimTime now) const;

    /** Window width. */
    SimTime window() const { return window_; }

  private:
    struct Sample {
        SimTime time;
        double count;
    };

    /** Drop samples older than the window start (logically const). */
    void evict(SimTime now) const;

    /** Double the ring capacity, linearizing the live samples. */
    void grow();

    SimTime window_;
    mutable std::vector<Sample> ring_;  ///< Capacity = ring_.size().
    mutable std::size_t head_ = 0;      ///< Index of the oldest sample.
    mutable std::size_t count_ = 0;     ///< Live samples in the ring.
    mutable double window_sum_ = 0.0;
};

/**
 * Percentile over an explicit sample vector (nearest-rank on a sorted
 * copy).  `p` in [0, 100].  Returns 0 for an empty vector.
 */
double percentile(std::vector<double> samples, double p);

} // namespace ppm

#endif // PPM_COMMON_STATS_HH

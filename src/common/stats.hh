/**
 * @file
 * Small statistics helpers used by the metrics layer and benchmarks:
 * online accumulators (Welford), duty-cycle counters, sliding-window
 * rate estimators, and percentile computation over stored samples.
 */

#ifndef PPM_COMMON_STATS_HH
#define PPM_COMMON_STATS_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm {

/**
 * Online mean / variance / min / max accumulator (Welford's algorithm).
 * Constant memory; suitable for per-epoch signals over long runs.
 */
class OnlineStats
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Number of samples added. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean, or 0 with no samples. */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance, or 0 with fewer than 2 samples. */
    double variance() const;

    /** Standard deviation. */
    double stddev() const;

    /** Smallest sample (0 if empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest sample (0 if empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Reset to the empty state. */
    void reset();

    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Fraction of (simulated) time a boolean condition held.
 *
 * Feed it (condition, duration) pairs; it reports the duty cycle.  This
 * is the primitive behind the paper's "percentage of time the reference
 * heart rate range is not met" metric (Figures 4, 6, 7).
 */
class DutyCycle
{
  public:
    /** Record that `condition` held for `duration` microseconds. */
    void add(bool condition, SimTime duration);

    /** Fraction of accumulated time the condition held, in [0, 1]. */
    double fraction() const;

    /** Total accumulated time. */
    SimTime total_time() const { return total_; }

    /** Time the condition held. */
    SimTime true_time() const { return true_; }

    /** Reset to the empty state. */
    void reset();

    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    SimTime total_ = 0;
    SimTime true_ = 0;
};

/**
 * Sliding-window event-rate estimator: events per second over the most
 * recent `window` of simulated time.  The Heart Rate Monitor is built
 * on this (heartbeats per second).
 *
 * Storage is a ring of *runs*: maximal groups of consecutive samples
 * with a uniform spacing and a bitwise-identical per-sample count.
 * The per-tick steady state -- one identical sample every simulation
 * tick -- collapses to a single run, so memory stays O(distinct
 * sample values) instead of O(window / tick), and the macro-stepping
 * engine can fast-forward a steady window in O(1) (advance_steady).
 * Eviction still subtracts sample counts one at a time, in FIFO
 * order, so the floating-point trajectory of the window sum is
 * bit-identical to the historical one-sample-per-slot ring.
 */
class WindowRate
{
  public:
    /** @param window Width of the sliding window (must be > 0). */
    explicit WindowRate(SimTime window);

    /** Record `count` events (possibly fractional) at time `now`. */
    void add(SimTime now, double count);

    /** Events per second over [now - window, now]. */
    double rate(SimTime now) const;

    /** Window width. */
    SimTime window() const { return window_; }

    /**
     * True when the window is in the uniform steady state under a
     * `dt` sampling period: it holds exactly window/dt live samples,
     * all spaced `dt` apart with the last at `now`, every sample's
     * count is bitwise equal to `count`, and one more
     * evict-oldest/add-newest step provably returns the window sum to
     * the same bits (the floating-point fixed point).  When this
     * holds, any number of further `add(now + k*dt, count)` calls
     * leaves the sum and rate bit-identical, so a replay engine may
     * substitute advance_steady() for them.
     */
    bool replay_steady(SimTime now, SimTime dt, double count) const;

    /**
     * Fast-forward a steady window by `shift` of simulated time, as
     * if shift/dt identical samples had been added (and as many
     * evicted).  Caller must have established replay_steady(); the
     * sum, live count and rate are unchanged, only the sample
     * timestamps advance.
     */
    void advance_steady(SimTime shift);

    /**
     * Serialize the live runs in FIFO order.  load() rebuilds the ring
     * with head 0; ring arithmetic is masked, so logical run equality
     * reproduces the exact future sum/eviction trajectory.
     */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    /** `n` samples at first, first+stride, ..., each worth `count`. */
    struct Run {
        SimTime first;
        SimTime stride;  ///< Sample spacing; meaningful when n >= 2.
        long n;
        double count;

        SimTime last() const
        {
            return n >= 2 ? first + (n - 1) * stride : first;
        }
    };

    /** Drop samples older than the window start (logically const). */
    void evict(SimTime now) const;

    /** Double the run-ring capacity, linearizing the live runs. */
    void grow();

    SimTime window_;
    mutable std::vector<Run> ring_;  ///< Capacity = ring_.size() (pow2).
    mutable std::size_t head_ = 0;   ///< Index of the oldest run.
    mutable std::size_t runs_ = 0;   ///< Live runs in the ring.
    mutable long count_ = 0;         ///< Live samples across all runs.
    mutable double window_sum_ = 0.0;
};

/**
 * Percentile over an explicit sample vector (nearest-rank on a sorted
 * copy).  `p` in [0, 100].  Returns 0 for an empty vector.
 */
double percentile(std::vector<double> samples, double p);

} // namespace ppm

#endif // PPM_COMMON_STATS_HH

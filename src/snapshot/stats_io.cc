/**
 * @file
 * save/load for the common statistics primitives.  Lives in the
 * snapshot library (not ppm_common) so the common library keeps zero
 * dependency on the archive code.
 */

#include "common/stats.hh"
#include "snapshot/archive.hh"

namespace ppm {

void
OnlineStats::save(snap::Writer& w) const
{
    w.u64(n_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
    w.f64(sum_);
}

void
OnlineStats::load(snap::Reader& r)
{
    n_ = static_cast<std::size_t>(r.u64());
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
    sum_ = r.f64();
}

void
DutyCycle::save(snap::Writer& w) const
{
    w.i64(total_);
    w.i64(true_);
}

void
DutyCycle::load(snap::Reader& r)
{
    total_ = r.i64();
    true_ = r.i64();
}

void
WindowRate::save(snap::Writer& w) const
{
    w.i64(window_);
    w.u64(ring_.size());
    w.u64(runs_);
    for (std::size_t i = 0; i < runs_; ++i) {
        const Run& run = ring_[(head_ + i) & (ring_.size() - 1)];
        w.i64(run.first);
        w.i64(run.stride);
        w.i64(static_cast<std::int64_t>(run.n));
        w.f64(run.count);
    }
    w.i64(static_cast<std::int64_t>(count_));
    w.f64(window_sum_);
}

void
WindowRate::load(snap::Reader& r)
{
    window_ = r.i64();
    const std::size_t capacity = static_cast<std::size_t>(r.u64());
    runs_ = static_cast<std::size_t>(r.u64());
    ring_.assign(capacity, Run{});
    head_ = 0;
    for (std::size_t i = 0; i < runs_; ++i) {
        Run& run = ring_[i];
        run.first = r.i64();
        run.stride = r.i64();
        run.n = static_cast<long>(r.i64());
        run.count = r.f64();
    }
    count_ = static_cast<long>(r.i64());
    window_sum_ = r.f64();
}

} // namespace ppm

#include "snapshot/archive.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

namespace ppm::snap {
namespace {

constexpr char kMagic[8] = {'P', 'P', 'M', 'S', 'N', 'A', 'P', '\0'};
constexpr std::size_t kHeaderSize = 8 + 4 + 8 + 8;

std::uint64_t
fnv1a(const char* data, std::size_t n)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ULL;
    }
    return h;
}

void
put_u32(std::string* out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
put_u64(std::string* out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t
get_u32(const char* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
get_u64(const char* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
             << (8 * i);
    return v;
}

} // namespace

const char*
load_status_name(LoadStatus s)
{
    switch (s) {
    case LoadStatus::kOk: return "ok";
    case LoadStatus::kTruncated: return "truncated";
    case LoadStatus::kBadMagic: return "bad magic";
    case LoadStatus::kBadVersion: return "version mismatch";
    case LoadStatus::kBadChecksum: return "checksum mismatch";
    }
    return "unknown";
}

void
Writer::u32(std::uint32_t v)
{
    put_u32(&buf_, v);
}

void
Writer::u64(std::uint64_t v)
{
    put_u64(&buf_, v);
}

void
Writer::str(const std::string& s)
{
    u64(s.size());
    buf_.append(s);
}

void
Writer::f64v(const std::vector<double>& v)
{
    u64(v.size());
    for (double x : v)
        f64(x);
}

void
Writer::i64v(const std::vector<std::int64_t>& v)
{
    u64(v.size());
    for (std::int64_t x : v)
        i64(x);
}

void
Writer::longv(const std::vector<long>& v)
{
    u64(v.size());
    for (long x : v)
        i64(static_cast<std::int64_t>(x));
}

void
Writer::i32v(const std::vector<int>& v)
{
    u64(v.size());
    for (int x : v)
        i32(x);
}

void
Writer::u8v(const std::vector<unsigned char>& v)
{
    u64(v.size());
    for (unsigned char x : v)
        u8(x);
}

void
Writer::charv(const std::vector<char>& v)
{
    u64(v.size());
    for (char x : v)
        u8(static_cast<std::uint8_t>(x));
}

void
Writer::boolv(const std::vector<bool>& v)
{
    u64(v.size());
    for (bool x : v)
        b(x);
}

std::string
Writer::finalize() const
{
    std::string out;
    out.reserve(kHeaderSize + buf_.size());
    out.append(kMagic, sizeof kMagic);
    put_u32(&out, kFormatVersion);
    put_u64(&out, buf_.size());
    put_u64(&out, fnv1a(buf_.data(), buf_.size()));
    out.append(buf_);
    return out;
}

LoadStatus
Reader::open(const std::string& file_bytes)
{
    data_.clear();
    pos_ = 0;
    if (file_bytes.size() < kHeaderSize)
        return LoadStatus::kTruncated;
    if (std::memcmp(file_bytes.data(), kMagic, sizeof kMagic) != 0)
        return LoadStatus::kBadMagic;
    const std::uint32_t version = get_u32(file_bytes.data() + 8);
    if (version != kFormatVersion)
        return LoadStatus::kBadVersion;
    const std::uint64_t payload_size = get_u64(file_bytes.data() + 12);
    if (file_bytes.size() != kHeaderSize + payload_size)
        return LoadStatus::kTruncated;
    const std::uint64_t checksum = get_u64(file_bytes.data() + 20);
    if (fnv1a(file_bytes.data() + kHeaderSize, payload_size) != checksum)
        return LoadStatus::kBadChecksum;
    data_.assign(file_bytes, kHeaderSize, payload_size);
    return LoadStatus::kOk;
}

const char*
Reader::take(std::size_t n)
{
    PPM_ASSERT(pos_ + n <= data_.size(),
               "snapshot payload underrun: field extends past the "
               "checksummed payload");
    const char* p = data_.data() + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
Reader::u8()
{
    return static_cast<std::uint8_t>(*take(1));
}

std::uint32_t
Reader::u32()
{
    return get_u32(take(4));
}

std::uint64_t
Reader::u64()
{
    return get_u64(take(8));
}

std::string
Reader::str()
{
    const std::uint64_t n = u64();
    const char* p = take(n);
    return std::string(p, n);
}

void
Reader::f64v(std::vector<double>* v)
{
    v->resize(u64());
    for (double& x : *v)
        x = f64();
}

void
Reader::i64v(std::vector<std::int64_t>* v)
{
    v->resize(u64());
    for (std::int64_t& x : *v)
        x = i64();
}

void
Reader::longv(std::vector<long>* v)
{
    v->resize(u64());
    for (long& x : *v)
        x = static_cast<long>(i64());
}

void
Reader::i32v(std::vector<int>* v)
{
    v->resize(u64());
    for (int& x : *v)
        x = i32();
}

void
Reader::u8v(std::vector<unsigned char>* v)
{
    v->resize(u64());
    for (unsigned char& x : *v)
        x = u8();
}

void
Reader::charv(std::vector<char>* v)
{
    v->resize(u64());
    for (char& x : *v)
        x = static_cast<char>(u8());
}

void
Reader::boolv(std::vector<bool>* v)
{
    v->resize(u64());
    for (std::size_t i = 0; i < v->size(); ++i)
        (*v)[i] = b();
}

bool
write_file(const std::string& path, const Writer& w, std::string* error)
{
    const std::string bytes = w.finalize();
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr) {
        if (error != nullptr)
            *error = "cannot open " + tmp + " for writing";
        return false;
    }
    const std::size_t written =
        std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fclose(f) == 0;
    if (written != bytes.size() || !flushed) {
        if (error != nullptr)
            *error = "short write to " + tmp;
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        if (error != nullptr)
            *error = "cannot rename " + tmp + " to " + path;
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

LoadStatus
read_file(const std::string& path, Reader* r)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return LoadStatus::kTruncated;
    std::string bytes;
    char chunk[1 << 16];
    std::size_t n;
    while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0)
        bytes.append(chunk, n);
    std::fclose(f);
    return r->open(bytes);
}

} // namespace ppm::snap

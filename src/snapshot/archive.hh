/**
 * @file
 * Versioned, checksummed binary archive for crash-consistent
 * snapshot/restore.
 *
 * Layout of a snapshot file:
 *
 *   offset  size  field
 *        0     8  magic "PPMSNAP\0"
 *        8     4  format version (little-endian u32)
 *       12     8  payload size in bytes (little-endian u64)
 *       20     8  FNV-1a 64 checksum of the payload
 *       28     N  payload
 *
 * The payload is a flat, field-by-field dump written by the save()
 * members of every stateful class.  Doubles are serialized as their
 * raw 8 bytes (bit-exact round trip -- the whole point: a restored
 * run must replay the exact floating-point trajectory of the
 * uninterrupted one).  Integers are fixed-width little-endian.
 *
 * Failure taxonomy (ppm_run maps each to a distinct one-line
 * diagnostic and exit code 2):
 *   kTruncated    file shorter than the header, or shorter/longer
 *                 than the payload size the header promises;
 *   kBadMagic     not a snapshot file at all;
 *   kBadVersion   a snapshot from an incompatible format version;
 *   kBadChecksum  right shape, corrupted payload bits.
 */

#ifndef PPM_SNAPSHOT_ARCHIVE_HH
#define PPM_SNAPSHOT_ARCHIVE_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ppm::snap {

/** Current snapshot format version. */
inline constexpr std::uint32_t kFormatVersion = 1;

/** Outcome of opening a snapshot payload. */
enum class LoadStatus {
    kOk,
    kTruncated,
    kBadMagic,
    kBadVersion,
    kBadChecksum,
};

/** One-word name of a LoadStatus ("ok", "truncated", ...). */
const char* load_status_name(LoadStatus s);

/** Serializer: primitives append to an in-memory payload buffer. */
class Writer
{
  public:
    void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
    void b(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }

    /** Raw 8-byte bit pattern: -0.0, NaN payloads round-trip. */
    void f64(double v)
    {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void str(const std::string& s);

    // Vector helpers for the common column types.
    void f64v(const std::vector<double>& v);
    void i64v(const std::vector<std::int64_t>& v);
    void longv(const std::vector<long>& v);
    void i32v(const std::vector<int>& v);
    void u8v(const std::vector<unsigned char>& v);
    void charv(const std::vector<char>& v);
    void boolv(const std::vector<bool>& v);

    /** Size written so far (payload bytes). */
    std::size_t size() const { return buf_.size(); }

    /** The payload accumulated so far. */
    const std::string& payload() const { return buf_; }

    /** Header + payload, ready to hit disk. */
    std::string finalize() const;

  private:
    std::string buf_;
};

/** Deserializer over a validated payload. */
class Reader
{
  public:
    /**
     * Validate `file_bytes` (header + payload).  On kOk the reader is
     * positioned at the start of the payload; any other status leaves
     * it unusable.
     */
    LoadStatus open(const std::string& file_bytes);

    std::uint8_t u8();
    bool b() { return u8() != 0; }
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    double f64()
    {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str();

    void f64v(std::vector<double>* v);
    void i64v(std::vector<std::int64_t>* v);
    void longv(std::vector<long>* v);
    void i32v(std::vector<int>* v);
    void u8v(std::vector<unsigned char>* v);
    void charv(std::vector<char>* v);
    void boolv(std::vector<bool>* v);

    /** Bytes left unread (0 after a complete load). */
    std::size_t remaining() const { return data_.size() - pos_; }

  private:
    const char* take(std::size_t n);

    std::string data_;  ///< Payload copy (owned; the file buffer dies).
    std::size_t pos_ = 0;
};

/** Write `w`'s finalized bytes to `path` atomically (tmp + rename).
 *  Returns false (and fills `*error`) on any I/O failure. */
bool write_file(const std::string& path, const Writer& w,
                std::string* error);

/** Read and validate `path`; on kOk `*r` is ready to load from. */
LoadStatus read_file(const std::string& path, Reader* r);

} // namespace ppm::snap

#endif // PPM_SNAPSHOT_ARCHIVE_HH

#include "metrics/telemetry.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"

namespace ppm::metrics {

namespace {

/** Compact JSON number: up to 9 significant digits, no trailing cruft. */
std::string
json_number(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** JSON string escaping for our own series/field names and labels. */
std::string
json_string(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

TraceEvent&
TraceEvent::set(std::string key, double value)
{
    num.emplace_back(std::move(key), value);
    return *this;
}

TraceEvent&
TraceEvent::set(std::string key, std::string value)
{
    str.emplace_back(std::move(key), std::move(value));
    return *this;
}

void
TraceSink::event(const TraceEvent& e)
{
    for (const auto& [key, value] : e.num)
        sample(key, e.time, value);
}

MemorySink::MemorySink(TraceRecorder* recorder) : recorder_(recorder)
{
    PPM_ASSERT(recorder_ != nullptr, "memory sink needs a recorder");
}

void
MemorySink::sample(const std::string& series, SimTime time, double value)
{
    recorder_->record(series, time, value);
}

CsvStreamSink::CsvStreamSink(std::ostream& os) : os_(&os)
{
    *os_ << "time_s,series,value\n";
}

void
CsvStreamSink::sample(const std::string& series, SimTime time,
                      double value)
{
    *os_ << fmt_double(to_seconds(time), 3) << ',' << series << ','
         << fmt_double(value, 6) << '\n';
}

void
CsvStreamSink::flush()
{
    os_->flush();
}

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

void
JsonlSink::sample(const std::string& series, SimTime time, double value)
{
    *os_ << "{\"type\":\"sample\",\"t_s\":"
         << fmt_double(to_seconds(time), 3)
         << ",\"series\":" << json_string(series)
         << ",\"value\":" << json_number(value) << "}\n";
}

void
JsonlSink::event(const TraceEvent& e)
{
    *os_ << "{\"type\":" << json_string(e.type)
         << ",\"t_s\":" << fmt_double(to_seconds(e.time), 3);
    for (const auto& [key, value] : e.str)
        *os_ << ',' << json_string(key) << ':' << json_string(value);
    for (const auto& [key, value] : e.num)
        *os_ << ',' << json_string(key) << ':' << json_number(value);
    *os_ << "}\n";
}

void
JsonlSink::flush()
{
    os_->flush();
}

void
TraceBus::add_sink(std::unique_ptr<TraceSink> sink)
{
    PPM_ASSERT(sink != nullptr, "cannot attach a null sink");
    sinks_.push_back(sink.get());
    owned_.push_back(std::move(sink));
}

void
TraceBus::add_sink(TraceSink* sink)
{
    PPM_ASSERT(sink != nullptr, "cannot attach a null sink");
    sinks_.push_back(sink);
}

void
TraceBus::sample(const std::string& series, SimTime time, double value)
{
    for (TraceSink* s : sinks_)
        s->sample(series, time, value);
}

void
TraceBus::event(const TraceEvent& e)
{
    for (TraceSink* s : sinks_)
        s->event(e);
}

void
TraceBus::count(const std::string& name, long delta)
{
    if (!enabled())
        return;
    counters_[name] += delta;
}

void
TraceBus::observe(const std::string& name, double value)
{
    if (!enabled())
        return;
    histograms_[name].add(value);
}

long
TraceBus::counter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

const OnlineStats*
TraceBus::histogram(const std::string& name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void
TraceBus::flush()
{
    for (TraceSink* s : sinks_)
        s->flush();
}

} // namespace ppm::metrics

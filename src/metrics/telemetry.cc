#include "metrics/telemetry.hh"

#include <cstdio>

#include "common/logging.hh"
#include "common/table.hh"

namespace ppm::metrics {

namespace {

/** Compact JSON number: up to 9 significant digits, no trailing cruft. */
std::string
json_number(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** JSON string escaping for our own series/field names and labels. */
std::string
json_string(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
            continue;
        }
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

TraceEvent&
TraceEvent::set(std::string key, double value)
{
    num.emplace_back(std::move(key), value);
    return *this;
}

TraceEvent&
TraceEvent::set(std::string key, std::string value)
{
    str.emplace_back(std::move(key), std::move(value));
    return *this;
}

EventScratch::EventScratch(std::string type)
    : event_(std::move(type), 0)
{
}

void
EventScratch::begin(SimTime time)
{
    event_.time = time;
    num_i_ = 0;
    str_i_ = 0;
}

EventScratch&
EventScratch::num(const char* key, double value)
{
    if (num_i_ < num_keys_.size() && num_keys_[num_i_] == key) {
        event_.num[num_i_].second = value;  // Steady state: in place.
    } else {
        // Layout changed at this position: drop the stale tail and
        // rebuild from here (allocates -- once per layout change).
        num_keys_.resize(num_i_);
        event_.num.resize(num_i_);
        num_keys_.push_back(key);
        event_.num.emplace_back(key, value);
    }
    ++num_i_;
    return *this;
}

EventScratch&
EventScratch::str(const char* key, const char* value)
{
    if (str_i_ < str_keys_.size() && str_keys_[str_i_] == key) {
        event_.str[str_i_].second = value;  // SSO labels: no alloc.
    } else {
        str_keys_.resize(str_i_);
        event_.str.resize(str_i_);
        str_keys_.push_back(key);
        event_.str.emplace_back(key, value);
    }
    ++str_i_;
    return *this;
}

const TraceEvent&
EventScratch::finish()
{
    // An emission with fewer fields than the last one leaves a stale
    // tail; truncate so the event carries exactly what was emitted.
    if (num_i_ < num_keys_.size()) {
        num_keys_.resize(num_i_);
        event_.num.resize(num_i_);
    }
    if (str_i_ < str_keys_.size()) {
        str_keys_.resize(str_i_);
        event_.str.resize(str_i_);
    }
    return event_;
}

void
TraceSink::event(const TraceEvent& e)
{
    for (const auto& [key, value] : e.num)
        sample(key, e.time, value);
}

MemorySink::MemorySink(TraceRecorder* recorder) : recorder_(recorder)
{
    PPM_ASSERT(recorder_ != nullptr, "memory sink needs a recorder");
}

void
MemorySink::sample(const std::string& series, SimTime time, double value)
{
    recorder_->record(series, time, value);
}

CsvStreamSink::CsvStreamSink(std::ostream& os, bool write_header)
    : os_(&os)
{
    if (write_header)
        *os_ << "time_s,series,value\n";
    check_stream();
}

void
CsvStreamSink::check_stream()
{
    if (failed_ || *os_)
        return;
    failed_ = true;
    std::fprintf(stderr,
                 "warning: CSV trace stream write failed; "
                 "dropping further trace output\n");
}

void
CsvStreamSink::sample(const std::string& series, SimTime time,
                      double value)
{
    if (failed_)
        return;
    *os_ << fmt_double(to_seconds(time), 3) << ',' << series << ','
         << fmt_double(value, 6) << '\n';
    check_stream();
}

void
CsvStreamSink::flush()
{
    if (failed_)
        return;
    os_->flush();
    check_stream();
}

JsonlSink::JsonlSink(std::ostream& os) : os_(&os) {}

void
JsonlSink::check_stream()
{
    if (failed_ || *os_)
        return;
    failed_ = true;
    std::fprintf(stderr,
                 "warning: JSONL trace stream write failed; "
                 "dropping further trace output\n");
}

void
JsonlSink::sample(const std::string& series, SimTime time, double value)
{
    if (failed_)
        return;
    *os_ << "{\"type\":\"sample\",\"t_s\":"
         << fmt_double(to_seconds(time), 3)
         << ",\"series\":" << json_string(series)
         << ",\"value\":" << json_number(value) << "}\n";
    check_stream();
}

void
JsonlSink::event(const TraceEvent& e)
{
    if (failed_)
        return;
    *os_ << "{\"type\":" << json_string(e.type)
         << ",\"t_s\":" << fmt_double(to_seconds(e.time), 3);
    for (const auto& [key, value] : e.str)
        *os_ << ',' << json_string(key) << ':' << json_string(value);
    for (const auto& [key, value] : e.num)
        *os_ << ',' << json_string(key) << ':' << json_number(value);
    *os_ << "}\n";
    check_stream();
}

void
JsonlSink::flush()
{
    if (failed_)
        return;
    os_->flush();
    check_stream();
}

void
TraceBus::add_sink(std::unique_ptr<TraceSink> sink)
{
    PPM_ASSERT(sink != nullptr, "cannot attach a null sink");
    sinks_.push_back(sink.get());
    owned_.push_back(std::move(sink));
}

void
TraceBus::add_sink(TraceSink* sink)
{
    PPM_ASSERT(sink != nullptr, "cannot attach a null sink");
    sinks_.push_back(sink);
}

SeriesId
TraceBus::intern(std::string_view name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return it->second;
    const auto id = static_cast<SeriesId>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
}

const std::string&
TraceBus::name_of(SeriesId id) const
{
    PPM_ASSERT(id >= 0 && static_cast<std::size_t>(id) < names_.size(),
               "series id was not interned on this bus");
    return names_[static_cast<std::size_t>(id)];
}

void
TraceBus::reserve_id(SeriesId id)
{
    const auto need = static_cast<std::size_t>(id) + 1;
    if (counter_vals_.size() < need) {
        // Size to the full intern table: one growth covers every id
        // handed out so far instead of creeping up id by id.
        const std::size_t to = std::max(need, names_.size());
        counter_vals_.resize(to, 0);
        hist_vals_.resize(to);
        counter_touched_.resize(to, 0);
        hist_touched_.resize(to, 0);
    }
}

void
TraceBus::sample(SeriesId series, SimTime time, double value)
{
    if (!enabled())
        return;
    const std::string& name = name_of(series);
    for (TraceSink* s : sinks_)
        s->sample(name, time, value);
}

void
TraceBus::count(SeriesId id, long delta)
{
    if (!enabled())
        return;
    reserve_id(id);
    counter_vals_[static_cast<std::size_t>(id)] += delta;
    counter_touched_[static_cast<std::size_t>(id)] = 1;
}

void
TraceBus::observe(SeriesId id, double value)
{
    if (!enabled())
        return;
    reserve_id(id);
    hist_vals_[static_cast<std::size_t>(id)].add(value);
    hist_touched_[static_cast<std::size_t>(id)] = 1;
}

long
TraceBus::counter(SeriesId id) const
{
    const auto i = static_cast<std::size_t>(id);
    return i < counter_vals_.size() ? counter_vals_[i] : 0;
}

const OnlineStats*
TraceBus::histogram(SeriesId id) const
{
    const auto i = static_cast<std::size_t>(id);
    return i < hist_vals_.size() && hist_touched_[i] ? &hist_vals_[i]
                                                     : nullptr;
}

void
TraceBus::sample(const std::string& series, SimTime time, double value)
{
    for (TraceSink* s : sinks_)
        s->sample(series, time, value);
}

void
TraceBus::event(const TraceEvent& e)
{
    for (TraceSink* s : sinks_)
        s->event(e);
}

void
TraceBus::count(const std::string& name, long delta)
{
    if (!enabled())
        return;
    count(intern(name), delta);
}

void
TraceBus::observe(const std::string& name, double value)
{
    if (!enabled())
        return;
    observe(intern(name), value);
}

long
TraceBus::counter(const std::string& name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? 0 : counter(it->second);
}

std::map<std::string, long>
TraceBus::counters() const
{
    std::map<std::string, long> out;
    for (std::size_t i = 0; i < counter_vals_.size(); ++i) {
        if (counter_touched_[i])
            out.emplace(names_[i], counter_vals_[i]);
    }
    return out;
}

const OnlineStats*
TraceBus::histogram(const std::string& name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : histogram(it->second);
}

std::map<std::string, OnlineStats>
TraceBus::histograms() const
{
    std::map<std::string, OnlineStats> out;
    for (std::size_t i = 0; i < hist_vals_.size(); ++i) {
        if (hist_touched_[i])
            out.emplace(names_[i], hist_vals_[i]);
    }
    return out;
}

void
TraceBus::flush()
{
    for (TraceSink* s : sinks_)
        s->flush();
}

} // namespace ppm::metrics

/**
 * @file
 * Structured telemetry bus: the fan-out layer between the simulation /
 * governors and pluggable trace sinks.
 *
 * A `TraceBus` carries two kinds of records:
 *  - *samples*: one (series, time, value) point, the unit the classic
 *    `TraceRecorder` stores;
 *  - *events*: a named record at one timestamp with flat numeric and
 *    string fields (e.g. one "market_round" event per bid round with
 *    every task bid, core price and cluster freeze flag).
 *
 * Sinks decide the rendering: `MemorySink` appends samples to a
 * `TraceRecorder` (the historical in-memory behaviour), `CsvStreamSink`
 * streams narrow `time_s,series,value` rows, and `JsonlSink` writes one
 * JSON object per record.  A sink that does not override `event()`
 * receives each numeric field as an individual sample, so per-round
 * market telemetry reaches every sink format without emitters knowing
 * which sinks are attached.
 *
 * The bus also keeps cheap named counters and histograms (migrations,
 * V-F steps per cluster, bid-freeze epochs, allowance clamps, ...).
 * Every entry point is zero-cost when no sink is attached: emitters may
 * guard expensive record construction with `enabled()`, and the bus
 * itself early-returns before touching any map.
 */

#ifndef PPM_METRICS_TELEMETRY_HH
#define PPM_METRICS_TELEMETRY_HH

#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "metrics/recorder.hh"

namespace ppm::metrics {

/** A named record at one timestamp with flat numeric/string fields. */
struct TraceEvent {
    std::string type;  ///< Record kind, e.g. "market_round".
    SimTime time = 0;

    /** Numeric fields, in emission order. */
    std::vector<std::pair<std::string, double>> num;

    /** String fields (labels such as the chip state name). */
    std::vector<std::pair<std::string, std::string>> str;

    TraceEvent(std::string type_, SimTime time_)
        : type(std::move(type_)), time(time_)
    {
    }

    /** Append a numeric field; returns *this for chaining. */
    TraceEvent& set(std::string key, double value);

    /** Append a string field; returns *this for chaining. */
    TraceEvent& set(std::string key, std::string value);
};

/** Destination for telemetry records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Receive one sample. */
    virtual void sample(const std::string& series, SimTime time,
                        double value) = 0;

    /**
     * Receive one structured event.  The default rendering forwards
     * each numeric field as a sample named after the field, so sinks
     * without a structured format still see every per-round value.
     */
    virtual void event(const TraceEvent& e);

    /** Flush buffered output (no-op by default). */
    virtual void flush() {}
};

/** Appends samples to a caller-owned TraceRecorder. */
class MemorySink : public TraceSink
{
  public:
    /** @param recorder Destination; must outlive the sink. */
    explicit MemorySink(TraceRecorder* recorder);

    void sample(const std::string& series, SimTime time,
                double value) override;

  private:
    TraceRecorder* recorder_;
};

/**
 * Streaming narrow CSV: a `time_s,series,value` header followed by one
 * row per sample, written as records arrive (constant memory).
 */
class CsvStreamSink : public TraceSink
{
  public:
    /** @param os Destination stream; must outlive the sink. */
    explicit CsvStreamSink(std::ostream& os);

    void sample(const std::string& series, SimTime time,
                double value) override;
    void flush() override;

  private:
    std::ostream* os_;
};

/**
 * JSONL event sink: one JSON object per line.  Samples render as
 * {"type":"sample","t_s":T,"series":S,"value":V}; events render as
 * {"type":E,"t_s":T,<field>:<value>,...} with every numeric and string
 * field inline.
 */
class JsonlSink : public TraceSink
{
  public:
    /** @param os Destination stream; must outlive the sink. */
    explicit JsonlSink(std::ostream& os);

    void sample(const std::string& series, SimTime time,
                double value) override;
    void event(const TraceEvent& e) override;
    void flush() override;

  private:
    std::ostream* os_;
};

/**
 * The telemetry fan-out point.  One bus per Simulation; each sweep
 * cell owns its bus, its sinks and their streams, so parallel cells
 * share no mutable telemetry state (the determinism audit in
 * experiment/sweep.hh extends to tracing).
 */
class TraceBus
{
  public:
    /** Attach a sink the bus takes ownership of. */
    void add_sink(std::unique_ptr<TraceSink> sink);

    /** Attach a caller-owned sink; it must outlive the bus. */
    void add_sink(TraceSink* sink);

    /** True when at least one sink is attached. */
    bool enabled() const { return !sinks_.empty(); }

    /** Fan a sample out to every sink (no-op when disabled). */
    void sample(const std::string& series, SimTime time, double value);

    /** Fan an event out to every sink (no-op when disabled). */
    void event(const TraceEvent& e);

    /** Bump counter `name` by `delta` (no-op when disabled). */
    void count(const std::string& name, long delta = 1);

    /** Feed histogram `name` one value (no-op when disabled). */
    void observe(const std::string& name, double value);

    /** Value of counter `name` (0 if never bumped). */
    long counter(const std::string& name) const;

    /** All counters, sorted by name. */
    const std::map<std::string, long>& counters() const
    {
        return counters_;
    }

    /** Histogram `name`, or nullptr if never observed. */
    const OnlineStats* histogram(const std::string& name) const;

    /** All histograms, sorted by name. */
    const std::map<std::string, OnlineStats>& histograms() const
    {
        return histograms_;
    }

    /** Flush every sink. */
    void flush();

  private:
    std::vector<TraceSink*> sinks_;  ///< Fan-out list (owned + external).
    std::vector<std::unique_ptr<TraceSink>> owned_;
    std::map<std::string, long> counters_;
    std::map<std::string, OnlineStats> histograms_;
};

} // namespace ppm::metrics

#endif // PPM_METRICS_TELEMETRY_HH

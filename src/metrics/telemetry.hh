/**
 * @file
 * Structured telemetry bus: the fan-out layer between the simulation /
 * governors and pluggable trace sinks.
 *
 * A `TraceBus` carries two kinds of records:
 *  - *samples*: one (series, time, value) point, the unit the classic
 *    `TraceRecorder` stores;
 *  - *events*: a named record at one timestamp with flat numeric and
 *    string fields (e.g. one "market_round" event per bid round with
 *    every task bid, core price and cluster freeze flag).
 *
 * Sinks decide the rendering: `MemorySink` appends samples to a
 * `TraceRecorder` (the historical in-memory behaviour), `CsvStreamSink`
 * streams narrow `time_s,series,value` rows, and `JsonlSink` writes one
 * JSON object per record.  A sink that does not override `event()`
 * receives each numeric field as an individual sample, so per-round
 * market telemetry reaches every sink format without emitters knowing
 * which sinks are attached.
 *
 * The bus also keeps cheap named counters and histograms (migrations,
 * V-F steps per cluster, bid-freeze epochs, allowance clamps, ...).
 *
 * Hot-path emitters resolve their names ONCE via `intern()` and then
 * record through the `SeriesId` overloads: O(1) flat-vector access,
 * no string hashing, no allocation.  The string-keyed entry points
 * remain as a compatibility layer over the interned core and produce
 * byte-identical output; they pay a map lookup per record and are fine
 * for cold paths.  Every entry point is zero-cost when no sink is
 * attached: emitters may guard expensive record construction with
 * `enabled()`, and the bus itself early-returns before touching any
 * storage.
 */

#ifndef PPM_METRICS_TELEMETRY_HH
#define PPM_METRICS_TELEMETRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "metrics/recorder.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::metrics {

/**
 * Stable integer handle of a name interned on a TraceBus.  One id
 * space covers series, counters and histograms: interning the same
 * name twice yields the same id, and ids never change for the
 * lifetime of the bus (they survive flushes and sink changes).
 */
using SeriesId = std::int32_t;

/** A named record at one timestamp with flat numeric/string fields. */
struct TraceEvent {
    std::string type;  ///< Record kind, e.g. "market_round".
    SimTime time = 0;

    /** Numeric fields, in emission order. */
    std::vector<std::pair<std::string, double>> num;

    /** String fields (labels such as the chip state name). */
    std::vector<std::pair<std::string, std::string>> str;

    TraceEvent(std::string type_, SimTime time_)
        : type(std::move(type_)), time(time_)
    {
    }

    /** Append a numeric field; returns *this for chaining. */
    TraceEvent& set(std::string key, double value);

    /** Append a string field; returns *this for chaining. */
    TraceEvent& set(std::string key, std::string value);
};

/**
 * A reusable TraceEvent for periodic emitters: the first emission
 * builds the field keys, every following emission with the same
 * key sequence overwrites the values in place -- no allocation.
 *
 * Usage per emission: `begin(time)`, then one `num()` / `str()` call
 * per field in a stable order (keys must be pointers that are stable
 * across emissions: string literals or strings cached by the caller),
 * then `finish()` to get the event to pass to TraceBus::event().
 * A changed key sequence (e.g. a cluster dropping out of the epoch
 * report while power-gated) is detected per position and rebuilds the
 * tail, so correctness never depends on a stable layout -- only the
 * steady-state allocation count does.
 */
class EventScratch
{
  public:
    explicit EventScratch(std::string type);

    /** Start a (re)emission at `time`. */
    void begin(SimTime time);

    /** Emit the next numeric field. */
    EventScratch& num(const char* key, double value);

    /** Emit the next string field (value must be SSO-small to stay
     *  allocation-free; chip-state names and similar labels are). */
    EventScratch& str(const char* key, const char* value);

    /** Close the emission and return the event to fan out. */
    const TraceEvent& finish();

  private:
    TraceEvent event_;
    std::vector<const char*> num_keys_;  ///< Key identity per position.
    std::vector<const char*> str_keys_;
    std::size_t num_i_ = 0;
    std::size_t str_i_ = 0;
};

/** Destination for telemetry records. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Receive one sample. */
    virtual void sample(const std::string& series, SimTime time,
                        double value) = 0;

    /**
     * Receive one structured event.  The default rendering forwards
     * each numeric field as a sample named after the field, so sinks
     * without a structured format still see every per-round value.
     */
    virtual void event(const TraceEvent& e);

    /** Flush buffered output (no-op by default). */
    virtual void flush() {}

    /**
     * Whether the sink has hit an unrecoverable output error (e.g. a
     * full disk under a streaming sink).  Consumers that gate their
     * exit code on trace integrity check this after the run.
     */
    virtual bool failed() const { return false; }
};

/** Appends samples to a caller-owned TraceRecorder. */
class MemorySink : public TraceSink
{
  public:
    /** @param recorder Destination; must outlive the sink. */
    explicit MemorySink(TraceRecorder* recorder);

    void sample(const std::string& series, SimTime time,
                double value) override;

  private:
    TraceRecorder* recorder_;
};

/**
 * Streaming narrow CSV: a `time_s,series,value` header followed by one
 * row per sample, written as records arrive (constant memory).
 *
 * An output error (stream enters a failed state on write or flush) is
 * reported once on stderr, latches `failed()`, and silences further
 * writes; the simulation itself keeps running.
 */
class CsvStreamSink : public TraceSink
{
  public:
    /**
     * @param os Destination stream; must outlive the sink.
     * @param write_header Emit the `time_s,series,value` header row.
     *        A restored run resuming a trace file passes false so the
     *        concatenation of the pre-snapshot part and its own output
     *        equals the uninterrupted run's bytes.
     */
    explicit CsvStreamSink(std::ostream& os, bool write_header = true);

    void sample(const std::string& series, SimTime time,
                double value) override;
    void flush() override;
    bool failed() const override { return failed_; }

  private:
    /** Latch + warn once when the stream has gone bad. */
    void check_stream();

    std::ostream* os_;
    bool failed_ = false;
};

/**
 * JSONL event sink: one JSON object per line.  Samples render as
 * {"type":"sample","t_s":T,"series":S,"value":V}; events render as
 * {"type":E,"t_s":T,<field>:<value>,...} with every numeric and string
 * field inline.
 *
 * Output errors are handled like CsvStreamSink: one stderr warning,
 * `failed()` latches, further writes are dropped.
 */
class JsonlSink : public TraceSink
{
  public:
    /** @param os Destination stream; must outlive the sink. */
    explicit JsonlSink(std::ostream& os);

    void sample(const std::string& series, SimTime time,
                double value) override;
    void event(const TraceEvent& e) override;
    void flush() override;
    bool failed() const override { return failed_; }

  private:
    /** Latch + warn once when the stream has gone bad. */
    void check_stream();

    std::ostream* os_;
    bool failed_ = false;
};

/**
 * The telemetry fan-out point.  One bus per Simulation; each sweep
 * cell owns its bus, its sinks and their streams, so parallel cells
 * share no mutable telemetry state (the determinism audit in
 * experiment/sweep.hh extends to tracing).
 */
class TraceBus
{
  public:
    /** Attach a sink the bus takes ownership of. */
    void add_sink(std::unique_ptr<TraceSink> sink);

    /** Attach a caller-owned sink; it must outlive the bus. */
    void add_sink(TraceSink* sink);

    /** True when at least one sink is attached. */
    bool enabled() const { return !sinks_.empty(); }

    /**
     * Intern `name`, returning its stable id.  Idempotent: the same
     * name always maps to the same id.  Works whether or not a sink
     * is attached, so emitters can resolve handles at construction.
     */
    SeriesId intern(std::string_view name);

    /** The name interned as `id`. */
    const std::string& name_of(SeriesId id) const;

    /** Fan a sample out to every sink: O(1), allocation-free. */
    void sample(SeriesId series, SimTime time, double value);

    /** Bump counter `id` by `delta`: flat-vector access, no lookup. */
    void count(SeriesId id, long delta = 1);

    /** Feed histogram `id` one value: flat-vector access, no lookup. */
    void observe(SeriesId id, double value);

    /** Value of counter `id` (0 if never bumped). */
    long counter(SeriesId id) const;

    /** Histogram `id`, or nullptr if never observed. */
    const OnlineStats* histogram(SeriesId id) const;

    // ---- String-keyed compatibility layer (cold paths) ----------------

    /** Fan a sample out to every sink (no-op when disabled). */
    void sample(const std::string& series, SimTime time, double value);

    /** Fan an event out to every sink (no-op when disabled). */
    void event(const TraceEvent& e);

    /** Bump counter `name` by `delta` (no-op when disabled). */
    void count(const std::string& name, long delta = 1);

    /** Feed histogram `name` one value (no-op when disabled). */
    void observe(const std::string& name, double value);

    /** Value of counter `name` (0 if never bumped). */
    long counter(const std::string& name) const;

    /** All counters ever bumped, sorted by name. */
    std::map<std::string, long> counters() const;

    /** Histogram `name`, or nullptr if never observed. */
    const OnlineStats* histogram(const std::string& name) const;

    /** All histograms ever observed, sorted by name. */
    std::map<std::string, OnlineStats> histograms() const;

    /** Flush every sink. */
    void flush();

    /**
     * Serialize every touched counter and histogram as (name, value)
     * pairs -- except names under the "snapshot." prefix, which
     * describe snapshot I/O itself and must not leak into the restored
     * run (its bytes must equal the uninterrupted run's).  load()
     * re-interns by name, so id assignment order is irrelevant.  Sinks
     * are not serialized; the restoring caller re-attaches its own.
     */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    /** Grow the per-id storage to cover `id`. */
    void reserve_id(SeriesId id);

    std::vector<TraceSink*> sinks_;  ///< Fan-out list (owned + external).
    std::vector<std::unique_ptr<TraceSink>> owned_;

    // Interning: name -> id and id -> name.  std::less<> enables
    // lookups from string_view without a temporary string.
    std::map<std::string, SeriesId, std::less<>> index_;
    std::vector<std::string> names_;

    // Flat per-id storage.  `touched` distinguishes "interned but
    // never recorded" from a genuine zero so the map accessors list
    // exactly the names that were bumped/observed.
    std::vector<long> counter_vals_;
    std::vector<OnlineStats> hist_vals_;
    std::vector<unsigned char> counter_touched_;
    std::vector<unsigned char> hist_touched_;
};

} // namespace ppm::metrics

#endif // PPM_METRICS_TELEMETRY_HH

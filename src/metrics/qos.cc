#include "metrics/qos.hh"

#include "common/logging.hh"

namespace ppm::metrics {

QosTracker::QosTracker(int num_tasks)
    : below_(static_cast<std::size_t>(num_tasks)),
      outside_(static_cast<std::size_t>(num_tasks))
{
    PPM_ASSERT(num_tasks > 0, "QosTracker needs at least one task");
}

void
QosTracker::sample(const std::vector<workload::Task*>& tasks, SimTime now,
                   SimTime dt, SimTime warmup,
                   const std::vector<bool>* alive)
{
    PPM_ASSERT(tasks.size() == below_.size(), "task count mismatch");
    PPM_ASSERT(alive == nullptr || alive->size() == tasks.size(),
               "alive mask size mismatch");
    if (now < warmup)
        return;
    bool any_b = false;
    bool any_o = false;
    bool any_alive = false;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        if (alive != nullptr && !(*alive)[i])
            continue;
        any_alive = true;
        // One heart-rate read per task: below_range()/outside_range()
        // would each re-derive the windowed rate.
        const workload::HeartRateMonitor& h = tasks[i]->hrm();
        const double hr = h.heart_rate(now);
        const bool b = hr < h.min_hr();
        const bool o =
            h.has_range() && (hr < h.min_hr() || hr > h.max_hr());
        below_[i].add(b, dt);
        outside_[i].add(o, dt);
        any_b = any_b || b;
        any_o = any_o || o;
    }
    // An interval with no live task has no QoS to meet or miss:
    // counting it as "meeting QoS" would deflate the any-task miss
    // fractions of lifetime scenarios with idle gaps, so it must not
    // enter the any-* denominators at all.
    if (any_alive) {
        any_below_.add(any_b, dt);
        any_outside_.add(any_o, dt);
    }
}

double
QosTracker::task_below_fraction(TaskId t) const
{
    PPM_ASSERT(t >= 0 && static_cast<std::size_t>(t) < below_.size(),
               "task id out of range");
    return below_[static_cast<std::size_t>(t)].fraction();
}

double
QosTracker::task_outside_fraction(TaskId t) const
{
    PPM_ASSERT(t >= 0 && static_cast<std::size_t>(t) < outside_.size(),
               "task id out of range");
    return outside_[static_cast<std::size_t>(t)].fraction();
}

double
QosTracker::any_below_fraction() const
{
    return any_below_.fraction();
}

double
QosTracker::any_outside_fraction() const
{
    return any_outside_.fraction();
}

} // namespace ppm::metrics

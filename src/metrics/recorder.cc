#include "metrics/recorder.hh"

#include <algorithm>
#include <set>

#include "common/table.hh"

namespace ppm::metrics {

void
TraceRecorder::record(const std::string& name, SimTime time, double value)
{
    series_[name].push_back(Sample{time, value});
}

const std::vector<Sample>&
TraceRecorder::series(const std::string& name) const
{
    static const std::vector<Sample> kEmpty;
    const auto it = series_.find(name);
    return it == series_.end() ? kEmpty : it->second;
}

std::vector<std::string>
TraceRecorder::names() const
{
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [name, samples] : series_)
        out.push_back(name);
    return out;
}

void
TraceRecorder::write_csv(std::ostream& os) const
{
    std::set<SimTime> times;
    for (const auto& [name, samples] : series_)
        for (const Sample& s : samples)
            times.insert(s.time);

    os << "time_s";
    for (const auto& [name, samples] : series_)
        os << ',' << name;
    os << '\n';

    // Per-series cursor walk over the sorted union of timestamps.
    // A series may hold several samples at one timestamp (e.g. an
    // event re-recorded within one tick); emit the last value per
    // (series, time) and advance the cursor past the whole group so
    // later timestamps still line up.
    std::map<std::string, std::size_t> cursor;
    for (SimTime t : times) {
        os << fmt_double(to_seconds(t), 3);
        for (const auto& [name, samples] : series_) {
            os << ',';
            std::size_t& i = cursor[name];
            if (i < samples.size() && samples[i].time == t) {
                while (i + 1 < samples.size() &&
                       samples[i + 1].time == t)
                    ++i;
                os << fmt_double(samples[i].value, 6);
                ++i;
            }
        }
        os << '\n';
    }
}

double
TraceRecorder::mean_after(const std::string& name, SimTime from) const
{
    const auto& samples = series(name);
    double sum = 0.0;
    std::size_t n = 0;
    for (const Sample& s : samples) {
        if (s.time >= from) {
            sum += s.value;
            ++n;
        }
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace ppm::metrics

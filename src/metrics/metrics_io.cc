/**
 * @file
 * Snapshot serialization of the metrics layer: counters/histograms by
 * name, recorded series, and QoS duty cycles.
 */

#include <string_view>

#include "metrics/qos.hh"
#include "metrics/recorder.hh"
#include "metrics/telemetry.hh"
#include "snapshot/archive.hh"

namespace ppm::metrics {
namespace {

/** Counter/histogram names describing snapshot I/O itself. */
bool
is_snapshot_meta(std::string_view name)
{
    return name.substr(0, 9) == "snapshot.";
}

} // namespace

void
TraceBus::save(snap::Writer& w) const
{
    std::uint64_t n_counters = 0;
    for (SeriesId id = 0; id < static_cast<SeriesId>(names_.size());
         ++id) {
        if (id < static_cast<SeriesId>(counter_touched_.size()) &&
            counter_touched_[static_cast<std::size_t>(id)] &&
            !is_snapshot_meta(names_[static_cast<std::size_t>(id)]))
            ++n_counters;
    }
    w.u64(n_counters);
    for (SeriesId id = 0; id < static_cast<SeriesId>(names_.size());
         ++id) {
        const auto i = static_cast<std::size_t>(id);
        if (i < counter_touched_.size() && counter_touched_[i] &&
            !is_snapshot_meta(names_[i])) {
            w.str(names_[i]);
            w.i64(static_cast<std::int64_t>(counter_vals_[i]));
        }
    }

    std::uint64_t n_hists = 0;
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (i < hist_touched_.size() && hist_touched_[i] &&
            !is_snapshot_meta(names_[i]))
            ++n_hists;
    }
    w.u64(n_hists);
    for (std::size_t i = 0; i < names_.size(); ++i) {
        if (i < hist_touched_.size() && hist_touched_[i] &&
            !is_snapshot_meta(names_[i])) {
            w.str(names_[i]);
            hist_vals_[i].save(w);
        }
    }
}

void
TraceBus::load(snap::Reader& r)
{
    const std::uint64_t n_counters = r.u64();
    for (std::uint64_t k = 0; k < n_counters; ++k) {
        const std::string name = r.str();
        const long value = static_cast<long>(r.i64());
        const SeriesId id = intern(name);
        reserve_id(id);
        const auto i = static_cast<std::size_t>(id);
        counter_vals_[i] = value;
        counter_touched_[i] = 1;
    }
    const std::uint64_t n_hists = r.u64();
    for (std::uint64_t k = 0; k < n_hists; ++k) {
        const std::string name = r.str();
        const SeriesId id = intern(name);
        reserve_id(id);
        const auto i = static_cast<std::size_t>(id);
        hist_vals_[i].load(r);
        hist_touched_[i] = 1;
    }
}

void
TraceRecorder::save(snap::Writer& w) const
{
    w.u64(series_.size());
    for (const auto& [name, samples] : series_) {
        w.str(name);
        w.u64(samples.size());
        for (const Sample& s : samples) {
            w.i64(s.time);
            w.f64(s.value);
        }
    }
}

void
TraceRecorder::load(snap::Reader& r)
{
    series_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t k = 0; k < n; ++k) {
        const std::string name = r.str();
        std::vector<Sample>& samples = series_[name];
        samples.resize(r.u64());
        for (Sample& s : samples) {
            s.time = r.i64();
            s.value = r.f64();
        }
    }
}

void
QosTracker::save(snap::Writer& w) const
{
    w.u64(below_.size());
    for (const DutyCycle& d : below_)
        d.save(w);
    for (const DutyCycle& d : outside_)
        d.save(w);
    any_below_.save(w);
    any_outside_.save(w);
}

void
QosTracker::load(snap::Reader& r)
{
    const std::size_t n = static_cast<std::size_t>(r.u64());
    below_.resize(n);
    outside_.resize(n);
    for (DutyCycle& d : below_)
        d.load(r);
    for (DutyCycle& d : outside_)
        d.load(r);
    any_below_.load(r);
    any_outside_.load(r);
}

} // namespace ppm::metrics

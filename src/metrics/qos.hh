/**
 * @file
 * QoS accounting for the paper's headline metric: the percentage of
 * time the reference heart-rate range is not met (Figures 4, 6, 7).
 */

#ifndef PPM_METRICS_QOS_HH
#define PPM_METRICS_QOS_HH

#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "workload/task.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::metrics {

/**
 * Tracks, per task and for the workload as a whole, the fraction of
 * time the heart rate was below / outside the reference range.
 *
 * The "any task" channel reproduces the paper's definition for
 * Figures 4 and 6: the percentage of time the observed heart rate was
 * smaller than the minimum prescribed heart rate for *any* task in
 * the workload.
 */
class QosTracker
{
  public:
    /** @param num_tasks Number of tasks to track. */
    explicit QosTracker(int num_tasks);

    /**
     * Start tracking one more task (mid-run admission).  The new
     * task's counters begin empty; its pre-admission time never
     * counts against it.
     */
    void add_task()
    {
        below_.emplace_back();
        outside_.emplace_back();
    }

    /**
     * Sample all tasks at time `now` and account `dt` of simulated
     * time to each duty-cycle counter.  `warmup` samples (with
     * now < warmup) are ignored so cold-start HRM windows do not
     * count as misses.  `alive`, when given, masks tasks outside
     * their lifetime window: they accrue no per-task time and do not
     * contribute to the any-task channels.  An interval in which no
     * task is alive accrues no any-task time at all (there is no QoS
     * to meet), so idle gaps never dilute the miss fractions.
     */
    void sample(const std::vector<workload::Task*>& tasks, SimTime now,
                SimTime dt, SimTime warmup = 0,
                const std::vector<bool>* alive = nullptr);

    /** Fraction of time task `t` was below its reference range. */
    double task_below_fraction(TaskId t) const;

    /** Fraction of time task `t` was outside its reference range. */
    double task_outside_fraction(TaskId t) const;

    /** Fraction of time at least one task was below its range. */
    double any_below_fraction() const;

    /** Fraction of time at least one task was outside its range. */
    double any_outside_fraction() const;

    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    std::vector<DutyCycle> below_;
    std::vector<DutyCycle> outside_;
    DutyCycle any_below_;
    DutyCycle any_outside_;
};

} // namespace ppm::metrics

#endif // PPM_METRICS_QOS_HH

/**
 * @file
 * Named time-series recorder used to regenerate the paper's
 * time-series figures (7 and 8) and to dump power traces.
 */

#ifndef PPM_METRICS_RECORDER_HH
#define PPM_METRICS_RECORDER_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::metrics {

/** One (time, value) sample. */
struct Sample {
    SimTime time;
    double value;
};

/** Collects named time series and renders them as CSV or summaries. */
class TraceRecorder
{
  public:
    /** Append a sample to series `name`. */
    void record(const std::string& name, SimTime time, double value);

    /** All samples of series `name` (empty if unknown). */
    const std::vector<Sample>& series(const std::string& name) const;

    /** Names of all recorded series, sorted. */
    std::vector<std::string> names() const;

    /**
     * Write all series as a wide CSV: a time column (seconds) followed
     * by one column per series.  Series are sampled on the union of
     * timestamps; missing points are left empty.
     */
    void write_csv(std::ostream& os) const;

    /** Mean of series `name` over samples with time >= `from`. */
    double mean_after(const std::string& name, SimTime from) const;

    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    std::map<std::string, std::vector<Sample>> series_;
};

} // namespace ppm::metrics

#endif // PPM_METRICS_RECORDER_HH

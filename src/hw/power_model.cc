#include "hw/power_model.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ppm::hw {

Watts
PowerModel::core_power(const CoreTypeParams& t, double mhz, double volts,
                       double vmax, double util)
{
    // Garbage in (NaN, out-of-range) must not become garbage power:
    // treat non-finite utilization as idle and clamp the rest.
    const double u =
        std::isfinite(util) ? std::clamp(util, 0.0, 1.0) : 0.0;
    // ceff [nF] * V^2 * f [MHz] has units of 1e-3 W.
    const Watts dynamic = t.ceff_nf * volts * volts * mhz * 1e-3 * u;
    const double vr = vmax > 0.0 ? volts / vmax : 0.0;
    const Watts leak = t.leak_per_core_max * vr * vr;
    return dynamic + leak;
}

Watts
PowerModel::cluster_power(const Chip& chip, ClusterId v,
                          const std::vector<double>& util)
{
    const Cluster& cl = chip.cluster(v);
    if (!cl.powered())
        return 0.0;
    PPM_ASSERT(util.size() == static_cast<std::size_t>(cl.num_cores()),
               "utilization vector size mismatch");
    const double vmax = cl.vf().volts(cl.vf().levels() - 1);
    const double vr = cl.volts() / vmax;
    Watts total = cl.type().uncore_power_max * vr * vr;
    for (int i = 0; i < cl.num_cores(); ++i) {
        total += core_power(cl.type(), cl.mhz(), cl.volts(), vmax,
                            util[static_cast<std::size_t>(i)]);
    }
    return total;
}

Watts
PowerModel::chip_power(const Chip& chip,
                       const std::vector<double>& util_by_core)
{
    PPM_ASSERT(util_by_core.size() ==
                   static_cast<std::size_t>(chip.num_cores()),
               "utilization vector size mismatch");
    Watts total = 0.0;
    for (const Cluster& cl : chip.clusters()) {
        std::vector<double> util;
        util.reserve(cl.cores().size());
        for (CoreId c : cl.cores())
            util.push_back(util_by_core[static_cast<std::size_t>(c)]);
        total += cluster_power(chip, cl.id(), util);
    }
    return total;
}

Watts
PowerModel::cluster_max_power(const Chip& chip, ClusterId v)
{
    const Cluster& cl = chip.cluster(v);
    const int top = cl.vf().levels() - 1;
    const double mhz = cl.vf().mhz(top);
    const double volts = cl.vf().volts(top);
    Watts total = cl.type().uncore_power_max;
    for (int i = 0; i < cl.num_cores(); ++i)
        total += core_power(cl.type(), mhz, volts, volts, 1.0);
    return total;
}

} // namespace ppm::hw

#include "hw/vf_table.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ppm::hw {

VfTable::VfTable(std::vector<VfPoint> points) : points_(std::move(points))
{
    PPM_ASSERT(!points_.empty(), "VF table must have at least one level");
    for (std::size_t i = 1; i < points_.size(); ++i) {
        PPM_ASSERT(points_[i].mhz > points_[i - 1].mhz,
                   "VF points must be sorted by ascending frequency");
        PPM_ASSERT(points_[i].volts >= points_[i - 1].volts,
                   "voltage must be non-decreasing with frequency");
    }
}

double
VfTable::mhz(int level) const
{
    return points_[static_cast<std::size_t>(clamp_level(level))].mhz;
}

double
VfTable::volts(int level) const
{
    return points_[static_cast<std::size_t>(clamp_level(level))].volts;
}

int
VfTable::level_for_demand(Pu demand) const
{
    for (int l = 0; l < levels(); ++l) {
        if (points_[static_cast<std::size_t>(l)].mhz >= demand)
            return l;
    }
    return levels() - 1;
}

int
VfTable::clamp_level(int level) const
{
    return std::clamp(level, 0, levels() - 1);
}

VfTable
little_vf_table()
{
    return VfTable({{350, 0.90},
                    {400, 0.92},
                    {500, 0.95},
                    {600, 1.00},
                    {700, 1.05},
                    {800, 1.10},
                    {900, 1.15},
                    {1000, 1.20}});
}

VfTable
big_vf_table()
{
    return VfTable({{500, 0.95},
                    {600, 1.00},
                    {700, 1.05},
                    {800, 1.10},
                    {900, 1.15},
                    {1000, 1.20},
                    {1100, 1.25},
                    {1200, 1.30}});
}

} // namespace ppm::hw

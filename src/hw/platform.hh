/**
 * @file
 * Topology model of a single-ISA performance-heterogeneous multi-core:
 * cores grouped into voltage-frequency clusters, each cluster running
 * all of its cores at one shared discrete V-F level (ARM big.LITTLE
 * style, cf. Section 2 of the paper).
 */

#ifndef PPM_HW_PLATFORM_HH
#define PPM_HW_PLATFORM_HH

#include <string>
#include <vector>

#include "common/types.hh"
#include "hw/vf_table.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::hw {

/**
 * Micro-architecture class of a cluster's cores.  Workload profiles
 * key their per-core-type demand on this.
 */
enum class CoreClass {
    kLittle,  ///< Simple in-order core (Cortex-A7-like).
    kBig,     ///< Complex out-of-order core (Cortex-A15-like).
};

/** Human-readable name of a core class. */
const char* core_class_name(CoreClass c);

/** Power-model parameters of one core type (see PowerModel). */
struct CoreTypeParams {
    std::string name;              ///< e.g. "Cortex-A7".
    CoreClass core_class;          ///< Micro-architecture class.
    double ceff_nf;                ///< Effective switched capacitance (nF).
    Watts leak_per_core_max;       ///< Per-core leakage at maximum voltage.
    Watts uncore_power_max;        ///< Cluster-shared power at max voltage.
};

/** One physical core. */
struct Core {
    CoreId id = kInvalidId;        ///< Global core id.
    ClusterId cluster = kInvalidId;///< Owning cluster.
};

/** One voltage-frequency cluster of symmetric cores. */
class Cluster
{
  public:
    Cluster(ClusterId id, CoreTypeParams type, VfTable table,
            std::vector<CoreId> cores);

    ClusterId id() const { return id_; }
    const CoreTypeParams& type() const { return type_; }
    const VfTable& vf() const { return vf_; }
    const std::vector<CoreId>& cores() const { return cores_; }
    int num_cores() const { return static_cast<int>(cores_.size()); }

    /** Current discrete V-F level. */
    int level() const { return level_; }

    /** Set the V-F level (clamped into range). */
    void set_level(int level);

    /** Step the level by `delta` (clamped). @return true if changed. */
    bool step_level(int delta);

    /** Whether the cluster is powered (a gated cluster supplies 0 PU). */
    bool powered() const { return powered_; }

    /** Power the cluster up or down. */
    void set_powered(bool on) { powered_ = on; }

    /** Current frequency in MHz (0 when powered down). */
    double mhz() const { return powered_ ? vf_.mhz(level_) : 0.0; }

    /** Current voltage (0 when powered down). */
    double volts() const { return powered_ ? vf_.volts(level_) : 0.0; }

    /**
     * Supply of the cluster in PU.  Per the paper, the supply of a
     * cluster equals the supply of any one of its (symmetric) cores.
     */
    Pu supply() const { return mhz(); }

    /** Dynamic state only (level, gating); topology is rebuilt. */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    ClusterId id_;
    CoreTypeParams type_;
    VfTable vf_;
    std::vector<CoreId> cores_;
    int level_ = 0;
    bool powered_ = true;
};

/**
 * The chip: a set of clusters over a cache-coherent interconnect.
 * Owns the topology; dynamic state is limited to per-cluster V-F
 * levels and power gating.
 */
class Chip
{
  public:
    /** Specification of one cluster for the builder. */
    struct ClusterSpec {
        CoreTypeParams type;
        VfTable vf;
        int num_cores;
    };

    /** Build a chip from cluster specifications; cores get global ids. */
    explicit Chip(const std::vector<ClusterSpec>& specs);

    int num_clusters() const { return static_cast<int>(clusters_.size()); }
    int num_cores() const { return static_cast<int>(cores_.size()); }

    Cluster& cluster(ClusterId v);
    const Cluster& cluster(ClusterId v) const;

    const Core& core(CoreId c) const;

    /** Cluster owning core `c`. */
    ClusterId cluster_of(CoreId c) const { return core(c).cluster; }

    /** All clusters (const view). */
    const std::vector<Cluster>& clusters() const { return clusters_; }

    /**
     * Supply of core `c` in PU (== its cluster's supply); an offline
     * core supplies nothing.
     */
    Pu core_supply(CoreId c) const
    {
        return core_online(c) ? cluster(cluster_of(c)).supply() : 0.0;
    }

    /** Total chip supply: sum of cluster supplies (paper Section 2). */
    Pu total_supply() const;

    /**
     * Hot-plug state of core `c`.  All cores boot online; the fault
     * layer offlines cores for thermal-emergency style events.  An
     * offline core supplies no cycles but keeps its task assignments.
     */
    bool core_online(CoreId c) const
    {
        return core_online_[static_cast<std::size_t>(c)] != 0;
    }

    /** Set the hot-plug state of core `c`. */
    void set_core_online(CoreId c, bool on);

    /** Dynamic state only (per-cluster V-F, gating, hot-plug). */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    std::vector<Cluster> clusters_;
    std::vector<Core> cores_;
    std::vector<char> core_online_;
};

/** Core-type parameters used by the default TC2-like platform. */
CoreTypeParams little_core_params();
CoreTypeParams big_core_params();

/**
 * The paper's evaluation platform: Versatile Express TC2-like chip
 * with one 3-core LITTLE cluster (cluster 0) and one 2-core big
 * cluster (cluster 1).  Power envelope calibrated to the paper's
 * reported maxima (~2 W LITTLE cluster, ~6 W big cluster, 8 W TDP).
 */
Chip tc2_chip();

/**
 * Generic homogeneous-topology builder for scalability studies
 * (Table 7): `num_clusters` clusters of `cores_per_cluster` cores.
 * Cluster i alternates between LITTLE-like and big-like types, with
 * max supplies spread across [350, 3000] PU as in the paper's setup.
 */
Chip synthetic_chip(int num_clusters, int cores_per_cluster);

/**
 * An Odroid-XU3-like octa-core big.LITTLE: 4 LITTLE + 4 big cores
 * (same core types and V-F tables as the TC2-like chip).  Useful for
 * what-if studies on a bigger mobile SoC.
 */
Chip octa_big_little_chip();

} // namespace ppm::hw

#endif // PPM_HW_PLATFORM_HH

#include "hw/platform.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ppm::hw {

const char*
core_class_name(CoreClass c)
{
    switch (c) {
      case CoreClass::kLittle:
        return "LITTLE";
      case CoreClass::kBig:
        return "big";
    }
    return "?";
}

Cluster::Cluster(ClusterId id, CoreTypeParams type, VfTable table,
                 std::vector<CoreId> cores)
    : id_(id), type_(std::move(type)), vf_(std::move(table)),
      cores_(std::move(cores))
{
    PPM_ASSERT(!cores_.empty(), "cluster must contain at least one core");
}

void
Cluster::set_level(int level)
{
    level_ = vf_.clamp_level(level);
}

bool
Cluster::step_level(int delta)
{
    const int next = vf_.clamp_level(level_ + delta);
    const bool changed = next != level_;
    level_ = next;
    return changed;
}

Chip::Chip(const std::vector<ClusterSpec>& specs)
{
    PPM_ASSERT(!specs.empty(), "chip must contain at least one cluster");
    CoreId next_core = 0;
    ClusterId next_cluster = 0;
    for (const auto& spec : specs) {
        PPM_ASSERT(spec.num_cores > 0, "cluster must have cores");
        std::vector<CoreId> ids;
        ids.reserve(static_cast<std::size_t>(spec.num_cores));
        for (int i = 0; i < spec.num_cores; ++i) {
            cores_.push_back(Core{next_core, next_cluster});
            ids.push_back(next_core);
            ++next_core;
        }
        clusters_.emplace_back(next_cluster, spec.type, spec.vf,
                               std::move(ids));
        ++next_cluster;
    }
    core_online_.assign(cores_.size(), 1);
}

void
Chip::set_core_online(CoreId c, bool on)
{
    PPM_ASSERT(c >= 0 && c < num_cores(), "core id out of range");
    core_online_[static_cast<std::size_t>(c)] = on ? 1 : 0;
}

Cluster&
Chip::cluster(ClusterId v)
{
    PPM_ASSERT(v >= 0 && v < num_clusters(), "cluster id out of range");
    return clusters_[static_cast<std::size_t>(v)];
}

const Cluster&
Chip::cluster(ClusterId v) const
{
    PPM_ASSERT(v >= 0 && v < num_clusters(), "cluster id out of range");
    return clusters_[static_cast<std::size_t>(v)];
}

const Core&
Chip::core(CoreId c) const
{
    PPM_ASSERT(c >= 0 && c < num_cores(), "core id out of range");
    return cores_[static_cast<std::size_t>(c)];
}

Pu
Chip::total_supply() const
{
    Pu total = 0.0;
    for (const auto& v : clusters_)
        total += v.supply();
    return total;
}

CoreTypeParams
little_core_params()
{
    // Calibrated so that the 3-core cluster peaks near the paper's
    // observed ~2 W: 3 x (0.55 dyn + 0.05 leak) + 0.15 uncore = 1.95 W.
    return CoreTypeParams{"Cortex-A7", CoreClass::kLittle,
                          /*ceff_nf=*/0.38,
                          /*leak_per_core_max=*/0.05,
                          /*uncore_power_max=*/0.15};
}

CoreTypeParams
big_core_params()
{
    // Calibrated so that the 2-core cluster peaks near the paper's
    // observed ~6 W: 2 x (2.70 dyn + 0.25 leak) + 0.30 uncore = 6.2 W.
    return CoreTypeParams{"Cortex-A15", CoreClass::kBig,
                          /*ceff_nf=*/1.33,
                          /*leak_per_core_max=*/0.25,
                          /*uncore_power_max=*/0.30};
}

Chip
tc2_chip()
{
    return Chip({Chip::ClusterSpec{little_core_params(), little_vf_table(), 3},
                 Chip::ClusterSpec{big_core_params(), big_vf_table(), 2}});
}

Chip
octa_big_little_chip()
{
    return Chip({Chip::ClusterSpec{little_core_params(), little_vf_table(), 4},
                 Chip::ClusterSpec{big_core_params(), big_vf_table(), 4}});
}

Chip
synthetic_chip(int num_clusters, int cores_per_cluster)
{
    PPM_ASSERT(num_clusters > 0 && cores_per_cluster > 0,
               "synthetic chip dimensions must be positive");
    std::vector<Chip::ClusterSpec> specs;
    specs.reserve(static_cast<std::size_t>(num_clusters));
    for (int v = 0; v < num_clusters; ++v) {
        const bool little = (v % 2) == 0;
        // Spread maximum supplies across [350, 3000] PU as in the
        // paper's scalability experiment.
        const double span = num_clusters > 1
            ? static_cast<double>(v) / (num_clusters - 1) : 0.0;
        const double max_mhz = 350.0 + span * (3000.0 - 350.0);
        const double min_mhz = std::max(100.0, max_mhz / 3.0);
        std::vector<VfPoint> pts;
        const int kLevels = 8;
        for (int l = 0; l < kLevels; ++l) {
            const double f = min_mhz
                + (max_mhz - min_mhz) * l / (kLevels - 1);
            const double volts = 0.9 + 0.4 * l / (kLevels - 1);
            pts.push_back({f, volts});
        }
        specs.push_back(Chip::ClusterSpec{
            little ? little_core_params() : big_core_params(),
            VfTable(std::move(pts)), cores_per_cluster});
    }
    return Chip(specs);
}

} // namespace ppm::hw

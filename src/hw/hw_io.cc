/**
 * @file
 * Snapshot serialization of the hardware layer's dynamic state.
 * Topology (clusters, cores, V-F tables, thermal parameters) is never
 * serialized: the restoring process rebuilds it from the same
 * configuration and only the mutable fields are overwritten.
 */

#include "common/logging.hh"
#include "hw/platform.hh"
#include "hw/sensors.hh"
#include "hw/thermal.hh"
#include "snapshot/archive.hh"

namespace ppm::hw {

void
Cluster::save(snap::Writer& w) const
{
    w.i32(level_);
    w.b(powered_);
}

void
Cluster::load(snap::Reader& r)
{
    level_ = r.i32();
    powered_ = r.b();
}

void
Chip::save(snap::Writer& w) const
{
    w.u64(clusters_.size());
    for (const Cluster& v : clusters_)
        v.save(w);
    w.charv(core_online_);
}

void
Chip::load(snap::Reader& r)
{
    const std::size_t n = static_cast<std::size_t>(r.u64());
    PPM_ASSERT(n == clusters_.size(),
               "snapshot topology mismatch: cluster count differs");
    for (Cluster& v : clusters_)
        v.load(r);
    r.charv(&core_online_);
    PPM_ASSERT(core_online_.size() == cores_.size(),
               "snapshot topology mismatch: core count differs");
}

void
SensorBank::save(snap::Writer& w) const
{
    w.f64v(instantaneous_);
    w.f64v(energy_);
    w.f64v(energy_at_mark_);
    w.i64v(elapsed_);
    w.i64v(elapsed_at_mark_);
}

void
SensorBank::load(snap::Reader& r)
{
    r.f64v(&instantaneous_);
    r.f64v(&energy_);
    r.f64v(&energy_at_mark_);
    r.i64v(&elapsed_);
    r.i64v(&elapsed_at_mark_);
}

void
ThermalModel::save(snap::Writer& w) const
{
    w.f64v(temp_);
    w.f64(peak_);
    w.f64(cycle_ref_);
    w.b(rising_);
    w.f64(cycle_threshold_);
    w.i64(static_cast<std::int64_t>(cycles_));
}

void
ThermalModel::load(snap::Reader& r)
{
    r.f64v(&temp_);
    peak_ = r.f64();
    cycle_ref_ = r.f64();
    rising_ = r.b();
    cycle_threshold_ = r.f64();
    cycles_ = static_cast<long>(r.i64());
}

} // namespace ppm::hw

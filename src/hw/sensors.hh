/**
 * @file
 * Power/energy sensor bank standing in for the TC2 board's hwmon
 * interface.  The simulation loop records per-cluster power each tick;
 * governors read instantaneous power or the average since their last
 * control epoch, exactly the granularity the paper's chip agent needs.
 */

#ifndef PPM_HW_SENSORS_HH
#define PPM_HW_SENSORS_HH

#include <vector>

#include "common/types.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::hw {

/** Per-cluster power and energy meters. */
class SensorBank
{
  public:
    /** @param num_clusters Number of cluster channels. */
    explicit SensorBank(int num_clusters);

    /**
     * Record that cluster `v` drew `watts` for `duration`.  Each
     * channel accumulates its own elapsed time, so channels may be
     * recorded in any order or at different rates without corrupting
     * one another's averaging windows.
     */
    void record(ClusterId v, Watts watts, SimTime duration);

    /**
     * Apply `n` ticks of constant power in one call: bit-identical to
     * n record() calls whose per-tick energy increment is
     * `energy_per_tick` (the caller hoists watts * to_seconds(tick)
     * out of the loop; the additions themselves stay per-tick because
     * floating-point accumulation does not associate).  Leaves the
     * instantaneous reading untouched -- the boundary record() that
     * preceded a quiescent interval already stored it.
     */
    void advance(ClusterId v, Joules energy_per_tick, SimTime tick,
                 long n);

    /** Most recent instantaneous power reading of cluster `v`. */
    Watts instantaneous(ClusterId v) const;

    /** Most recent instantaneous chip power (sum over clusters). */
    Watts instantaneous_chip() const;

    /** Cumulative energy of cluster `v` since construction. */
    Joules energy(ClusterId v) const;

    /** Cumulative chip energy. */
    Joules chip_energy() const;

    /**
     * Average power of cluster `v` since the last mark() (or since
     * construction).  Falls back to the instantaneous reading when no
     * time has elapsed.
     */
    Watts average_since_mark(ClusterId v) const;

    /** Average chip power since the last mark(). */
    Watts chip_average_since_mark() const;

    /** Start a new averaging window (called by a governor per epoch). */
    void mark();

    int num_clusters() const
    {
        return static_cast<int>(instantaneous_.size());
    }

    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    std::vector<Watts> instantaneous_;
    std::vector<Joules> energy_;
    std::vector<Joules> energy_at_mark_;
    // Elapsed time is tracked per channel: a caller that skips a
    // channel (or records one twice) only affects that channel's own
    // average_since_mark() denominator, never the others'.
    std::vector<SimTime> elapsed_;
    std::vector<SimTime> elapsed_at_mark_;
};

} // namespace ppm::hw

#endif // PPM_HW_SENSORS_HH

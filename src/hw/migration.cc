#include "hw/migration.hh"

#include <algorithm>

#include "common/logging.hh"

namespace ppm::hw {

MigrationModel::MigrationModel()
    : MigrationModel(/*intra_little=*/{71, 167},
                     /*intra_big=*/{54, 105},
                     /*little_to_big=*/{1880, 2160},
                     /*big_to_little=*/{3540, 3830})
{
}

MigrationModel::MigrationModel(Range intra_little, Range intra_big,
                               Range little_to_big, Range big_to_little)
    : intra_little_(intra_little), intra_big_(intra_big),
      little_to_big_(little_to_big), big_to_little_(big_to_little)
{
}

SimTime
MigrationModel::interpolate(const Range& r, const Cluster& src)
{
    const double fmin = src.vf().min_mhz();
    const double fmax = src.vf().max_mhz();
    const double f = src.powered() ? src.vf().mhz(src.level()) : fmin;
    const double x = fmax > fmin ? (f - fmin) / (fmax - fmin) : 1.0;
    const double cost = static_cast<double>(r.at_min_freq)
        + x * static_cast<double>(r.at_max_freq - r.at_min_freq);
    return static_cast<SimTime>(std::max(0.0, cost));
}

SimTime
MigrationModel::cost(const Chip& chip, CoreId from, CoreId to,
                     double scale) const
{
    if (from == to)
        return 0;
    if (scale != 1.0) {
        const SimTime base = cost(chip, from, to);
        return static_cast<SimTime>(static_cast<double>(base) *
                                    std::max(0.0, scale));
    }
    const ClusterId vf = chip.cluster_of(from);
    const ClusterId vt = chip.cluster_of(to);
    const Cluster& src = chip.cluster(vf);
    const CoreClass src_class = src.type().core_class;
    const CoreClass dst_class = chip.cluster(vt).type().core_class;

    if (vf == vt) {
        return interpolate(src_class == CoreClass::kBig ? intra_big_
                                                        : intra_little_,
                           src);
    }
    if (src_class == CoreClass::kLittle && dst_class == CoreClass::kBig)
        return interpolate(little_to_big_, src);
    if (src_class == CoreClass::kBig && dst_class == CoreClass::kLittle)
        return interpolate(big_to_little_, src);
    // Same class but different cluster: charge the intra-class range.
    return interpolate(src_class == CoreClass::kBig ? intra_big_
                                                    : intra_little_,
                       src);
}

} // namespace ppm::hw

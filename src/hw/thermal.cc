#include "hw/thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ppm::hw {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(std::move(params)),
      temp_(params_.nodes.size(), params_.ambient_c),
      peak_(params_.ambient_c), cycle_ref_(params_.ambient_c)
{
    PPM_ASSERT(!params_.nodes.empty(),
               "thermal model needs at least one node");
    for (const auto& n : params_.nodes) {
        PPM_ASSERT(n.resistance_k_per_w > 0.0 &&
                       n.capacitance_j_per_k > 0.0,
                   "thermal RC values must be positive");
    }
}

void
ThermalModel::set_cycle_threshold(double kelvin)
{
    PPM_ASSERT(kelvin > 0.0, "cycle threshold must be positive");
    cycle_threshold_ = kelvin;
}

void
ThermalModel::step(const std::vector<Watts>& cluster_power, SimTime dt)
{
    PPM_ASSERT(cluster_power.size() == temp_.size(),
               "power vector size mismatch");
    PPM_ASSERT(dt >= 0, "negative dt");
    const double dt_s = to_seconds(dt);
    for (std::size_t v = 0; v < temp_.size(); ++v) {
        const auto& n = params_.nodes[v];
        // Non-finite power (corrupted upstream) must not poison the
        // temperature state; treat it as zero draw.
        const double p = std::isfinite(cluster_power[v])
                             ? std::max(0.0, cluster_power[v])
                             : 0.0;
        const double target =
            params_.ambient_c + p * n.resistance_k_per_w;
        const double tau = n.resistance_k_per_w * n.capacitance_j_per_k;
        // Exact exponential step (stable for any dt).
        const double decay = std::exp(-dt_s / tau);
        temp_[v] = target + (temp_[v] - target) * decay;
    }

    observe_extremes(max_temperature());
}

void
ThermalModel::observe_extremes(double hottest)
{
    peak_ = std::max(peak_, hottest);

    // Peak/valley cycle counting on the hottest node.
    if (rising_) {
        if (hottest > cycle_ref_) {
            cycle_ref_ = hottest;
        } else if (cycle_ref_ - hottest >= cycle_threshold_) {
            rising_ = false;
            cycle_ref_ = hottest;
        }
    } else {
        if (hottest < cycle_ref_) {
            cycle_ref_ = hottest;
        } else if (hottest - cycle_ref_ >= cycle_threshold_) {
            rising_ = true;
            cycle_ref_ = hottest;
            ++cycles_;  // One full valley-to-rise completes a cycle.
        }
    }
}

void
ThermalModel::advance(const std::vector<Watts>& cluster_power,
                      SimTime dt, long n)
{
    PPM_ASSERT(cluster_power.size() == temp_.size(),
               "power vector size mismatch");
    PPM_ASSERT(dt >= 0 && n >= 0, "negative advance");
    const double dt_s = to_seconds(dt);
    adv_target_.resize(temp_.size());
    adv_decay_.resize(temp_.size());
    for (std::size_t v = 0; v < temp_.size(); ++v) {
        const auto& node = params_.nodes[v];
        const double p = std::isfinite(cluster_power[v])
                             ? std::max(0.0, cluster_power[v])
                             : 0.0;
        adv_target_[v] =
            params_.ambient_c + p * node.resistance_k_per_w;
        const double tau =
            node.resistance_k_per_w * node.capacitance_j_per_k;
        adv_decay_[v] = std::exp(-dt_s / tau);
    }
    for (long i = 0; i < n; ++i) {
        bool temps_changed = false;
        for (std::size_t v = 0; v < temp_.size(); ++v) {
            const double next =
                adv_target_[v] + (temp_[v] - adv_target_[v]) * adv_decay_[v];
            if (next != temp_[v] ||
                std::signbit(next) != std::signbit(temp_[v]))
                temps_changed = true;
            temp_[v] = next;
        }
        const double prev_peak = peak_;
        const double prev_ref = cycle_ref_;
        const bool prev_rising = rising_;
        const long prev_cycles = cycles_;
        observe_extremes(max_temperature());
        // Once the temperatures and the extremes detector jointly
        // stop changing, every remaining step is the identity; the
        // remaining (n - i - 1) iterations can be skipped exactly.
        if (!temps_changed && peak_ == prev_peak &&
            cycle_ref_ == prev_ref && rising_ == prev_rising &&
            cycles_ == prev_cycles)
            break;
    }
}

double
ThermalModel::temperature(ClusterId v) const
{
    PPM_ASSERT(v >= 0 && static_cast<std::size_t>(v) < temp_.size(),
               "cluster id out of range");
    return temp_[static_cast<std::size_t>(v)];
}

double
ThermalModel::max_temperature() const
{
    double m = params_.ambient_c;
    for (double t : temp_)
        m = std::max(m, t);
    return m;
}

ThermalParams
ThermalModel::tc2_defaults()
{
    ThermalParams p;
    p.ambient_c = 30.0;
    // LITTLE: ~2 W peak x 12 K/W -> ~54 deg C; tau 12 s.
    p.nodes.push_back({12.0, 1.0});
    // big: ~6.2 W peak x 8 K/W -> ~80 deg C; tau 10 s.
    p.nodes.push_back({8.0, 1.25});
    return p;
}

} // namespace ppm::hw

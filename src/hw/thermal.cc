#include "hw/thermal.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace ppm::hw {

ThermalModel::ThermalModel(ThermalParams params)
    : params_(std::move(params)),
      temp_(params_.nodes.size(), params_.ambient_c),
      peak_(params_.ambient_c), cycle_ref_(params_.ambient_c)
{
    PPM_ASSERT(!params_.nodes.empty(),
               "thermal model needs at least one node");
    for (const auto& n : params_.nodes) {
        PPM_ASSERT(n.resistance_k_per_w > 0.0 &&
                       n.capacitance_j_per_k > 0.0,
                   "thermal RC values must be positive");
    }
}

void
ThermalModel::set_cycle_threshold(double kelvin)
{
    PPM_ASSERT(kelvin > 0.0, "cycle threshold must be positive");
    cycle_threshold_ = kelvin;
}

void
ThermalModel::step(const std::vector<Watts>& cluster_power, SimTime dt)
{
    PPM_ASSERT(cluster_power.size() == temp_.size(),
               "power vector size mismatch");
    PPM_ASSERT(dt >= 0, "negative dt");
    const double dt_s = to_seconds(dt);
    for (std::size_t v = 0; v < temp_.size(); ++v) {
        const auto& n = params_.nodes[v];
        const double target =
            params_.ambient_c + cluster_power[v] * n.resistance_k_per_w;
        const double tau = n.resistance_k_per_w * n.capacitance_j_per_k;
        // Exact exponential step (stable for any dt).
        const double decay = std::exp(-dt_s / tau);
        temp_[v] = target + (temp_[v] - target) * decay;
    }

    const double hottest = max_temperature();
    peak_ = std::max(peak_, hottest);

    // Peak/valley cycle counting on the hottest node.
    if (rising_) {
        if (hottest > cycle_ref_) {
            cycle_ref_ = hottest;
        } else if (cycle_ref_ - hottest >= cycle_threshold_) {
            rising_ = false;
            cycle_ref_ = hottest;
        }
    } else {
        if (hottest < cycle_ref_) {
            cycle_ref_ = hottest;
        } else if (hottest - cycle_ref_ >= cycle_threshold_) {
            rising_ = true;
            cycle_ref_ = hottest;
            ++cycles_;  // One full valley-to-rise completes a cycle.
        }
    }
}

double
ThermalModel::temperature(ClusterId v) const
{
    PPM_ASSERT(v >= 0 && static_cast<std::size_t>(v) < temp_.size(),
               "cluster id out of range");
    return temp_[static_cast<std::size_t>(v)];
}

double
ThermalModel::max_temperature() const
{
    double m = params_.ambient_c;
    for (double t : temp_)
        m = std::max(m, t);
    return m;
}

ThermalParams
ThermalModel::tc2_defaults()
{
    ThermalParams p;
    p.ambient_c = 30.0;
    // LITTLE: ~2 W peak x 12 K/W -> ~54 deg C; tau 12 s.
    p.nodes.push_back({12.0, 1.0});
    // big: ~6.2 W peak x 8 K/W -> ~80 deg C; tau 10 s.
    p.nodes.push_back({8.0, 1.25});
    return p;
}

} // namespace ppm::hw

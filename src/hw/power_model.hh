/**
 * @file
 * Analytic power model of the heterogeneous chip.
 *
 * Per-core dynamic power follows the classic alpha-C-V^2-f law scaled
 * by utilization (clock gating removes dynamic power of idle cycles);
 * per-core leakage and cluster uncore power scale with V^2 and vanish
 * when the cluster is power gated.  The model stands in for the TC2
 * board's hwmon power sensors, which is the only power interface the
 * paper's framework observes.
 */

#ifndef PPM_HW_POWER_MODEL_HH
#define PPM_HW_POWER_MODEL_HH

#include <vector>

#include "common/types.hh"
#include "hw/platform.hh"

namespace ppm::hw {

/** Computes core / cluster / chip power from utilizations. */
class PowerModel
{
  public:
    /**
     * Dynamic + static power of one core of type `t` at (`mhz`, `volts`)
     * with busy fraction `util` in [0, 1].  `vmax` is the voltage at the
     * core's fastest level (leakage is specified there).
     */
    static Watts core_power(const CoreTypeParams& t, double mhz,
                            double volts, double vmax, double util);

    /**
     * Power of cluster `v` of `chip` given per-core utilizations
     * `util[i]` for the i-th core *of that cluster*.  Zero if gated.
     */
    static Watts cluster_power(const Chip& chip, ClusterId v,
                               const std::vector<double>& util);

    /**
     * Total chip power given utilizations indexed by *global* core id.
     */
    static Watts chip_power(const Chip& chip,
                            const std::vector<double>& util_by_core);

    /**
     * Upper bound on cluster power (all cores busy at the fastest
     * level).  Useful for TDP budgeting in governors.
     */
    static Watts cluster_max_power(const Chip& chip, ClusterId v);
};

} // namespace ppm::hw

#endif // PPM_HW_POWER_MODEL_HH

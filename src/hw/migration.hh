/**
 * @file
 * Task-migration cost model.
 *
 * The paper measures migration penalties on the TC2 board (Section 5.1):
 *   - within the big cluster:      54 - 105 us,
 *   - within the LITTLE cluster:   71 - 167 us,
 *   - LITTLE -> big:             1.88 - 2.16 ms,
 *   - big -> LITTLE:             3.54 - 3.83 ms,
 * each range spanning the cluster's frequency levels (faster clock ->
 * cheaper migration).  We reproduce those exact ranges by linear
 * interpolation over the source cluster's V-F range.
 */

#ifndef PPM_HW_MIGRATION_HH
#define PPM_HW_MIGRATION_HH

#include "common/types.hh"
#include "hw/platform.hh"

namespace ppm::hw {

/** Computes the latency of moving a task between two cores. */
class MigrationModel
{
  public:
    /** Cost bounds for one migration kind, in microseconds. */
    struct Range {
        SimTime at_max_freq;  ///< Cost when the source runs at fmax.
        SimTime at_min_freq;  ///< Cost when the source runs at fmin.
    };

    /** Construct with the paper's measured TC2 ranges. */
    MigrationModel();

    /** Construct with explicit ranges (for what-if studies). */
    MigrationModel(Range intra_little, Range intra_big,
                   Range little_to_big, Range big_to_little);

    /**
     * Latency of migrating a task from `from` to `to` on `chip`,
     * given current cluster frequencies.  Zero if `from == to`.
     * `scale` multiplies the base cost (slow-migration faults).
     */
    SimTime cost(const Chip& chip, CoreId from, CoreId to,
                 double scale = 1.0) const;

  private:
    /** Interpolate a range over the source cluster's frequency span. */
    static SimTime interpolate(const Range& r, const Cluster& src);

    Range intra_little_;
    Range intra_big_;
    Range little_to_big_;
    Range big_to_little_;
};

} // namespace ppm::hw

#endif // PPM_HW_MIGRATION_HH

/**
 * @file
 * Discrete voltage-frequency operating points of a cluster.
 *
 * Following the paper's platform (ARM big.LITTLE TC2), frequency -- and
 * therefore supply in Processing Units -- can only be changed at the
 * cluster level and only between a small set of discrete V-F pairs.
 */

#ifndef PPM_HW_VF_TABLE_HH
#define PPM_HW_VF_TABLE_HH

#include <vector>

#include "common/types.hh"

namespace ppm::hw {

/** One discrete operating point. */
struct VfPoint {
    double mhz;    ///< Clock frequency in MHz (== supply in PU).
    double volts;  ///< Supply voltage at this frequency.
};

/**
 * Ordered set of discrete V-F operating points for one cluster.
 * Levels are indexed 0 (slowest) .. levels()-1 (fastest).
 */
class VfTable
{
  public:
    /** Construct from points sorted by ascending frequency. */
    explicit VfTable(std::vector<VfPoint> points);

    /** Number of discrete levels. */
    int levels() const { return static_cast<int>(points_.size()); }

    /** Frequency in MHz at `level` (out-of-range levels clamp). */
    double mhz(int level) const;

    /** Voltage at `level` (out-of-range levels clamp). */
    double volts(int level) const;

    /** Supply in PU at `level` (numerically equal to MHz). */
    Pu supply(int level) const { return mhz(level); }

    /** Lowest frequency in MHz. */
    double min_mhz() const { return points_.front().mhz; }

    /** Highest frequency in MHz. */
    double max_mhz() const { return points_.back().mhz; }

    /** Maximum supply in PU. */
    Pu max_supply() const { return max_mhz(); }

    /**
     * Smallest level whose supply covers `demand` PU (the paper's
     * "round up the demand to the next supply value").  Clamped to the
     * fastest level if the demand exceeds the maximum supply.
     */
    int level_for_demand(Pu demand) const;

    /** `level + delta` clamped into the valid range. */
    int clamp_level(int level) const;

  private:
    std::vector<VfPoint> points_;
};

/** Default LITTLE-cluster (Cortex-A7-like) table: 350..1000 MHz. */
VfTable little_vf_table();

/** Default big-cluster (Cortex-A15-like) table: 500..1200 MHz. */
VfTable big_vf_table();

} // namespace ppm::hw

#endif // PPM_HW_VF_TABLE_HH

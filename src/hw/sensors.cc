#include "hw/sensors.hh"

#include "common/logging.hh"

namespace ppm::hw {

SensorBank::SensorBank(int num_clusters)
    : instantaneous_(static_cast<std::size_t>(num_clusters), 0.0),
      energy_(static_cast<std::size_t>(num_clusters), 0.0),
      energy_at_mark_(static_cast<std::size_t>(num_clusters), 0.0),
      elapsed_(static_cast<std::size_t>(num_clusters), 0),
      elapsed_at_mark_(static_cast<std::size_t>(num_clusters), 0)
{
    PPM_ASSERT(num_clusters > 0, "sensor bank needs at least one channel");
}

void
SensorBank::record(ClusterId v, Watts watts, SimTime duration)
{
    PPM_ASSERT(v >= 0 && v < num_clusters(), "cluster channel out of range");
    PPM_ASSERT(duration >= 0, "negative duration");
    auto idx = static_cast<std::size_t>(v);
    instantaneous_[idx] = watts;
    energy_[idx] += watts * to_seconds(duration);
    elapsed_[idx] += duration;
}

void
SensorBank::advance(ClusterId v, Joules energy_per_tick, SimTime tick,
                    long n)
{
    PPM_ASSERT(v >= 0 && v < num_clusters(), "cluster channel out of range");
    PPM_ASSERT(tick >= 0 && n >= 0, "negative advance");
    auto idx = static_cast<std::size_t>(v);
    for (long i = 0; i < n; ++i)
        energy_[idx] += energy_per_tick;
    elapsed_[idx] += n * tick;
}

Watts
SensorBank::instantaneous(ClusterId v) const
{
    PPM_ASSERT(v >= 0 && v < num_clusters(), "cluster channel out of range");
    return instantaneous_[static_cast<std::size_t>(v)];
}

Watts
SensorBank::instantaneous_chip() const
{
    Watts total = 0.0;
    for (Watts w : instantaneous_)
        total += w;
    return total;
}

Joules
SensorBank::energy(ClusterId v) const
{
    PPM_ASSERT(v >= 0 && v < num_clusters(), "cluster channel out of range");
    return energy_[static_cast<std::size_t>(v)];
}

Joules
SensorBank::chip_energy() const
{
    Joules total = 0.0;
    for (Joules e : energy_)
        total += e;
    return total;
}

Watts
SensorBank::average_since_mark(ClusterId v) const
{
    PPM_ASSERT(v >= 0 && v < num_clusters(), "cluster channel out of range");
    const auto idx = static_cast<std::size_t>(v);
    const SimTime dt = elapsed_[idx] - elapsed_at_mark_[idx];
    if (dt <= 0)
        return instantaneous(v);
    return (energy_[idx] - energy_at_mark_[idx]) / to_seconds(dt);
}

Watts
SensorBank::chip_average_since_mark() const
{
    Watts total = 0.0;
    for (ClusterId v = 0; v < num_clusters(); ++v)
        total += average_since_mark(v);
    return total;
}

void
SensorBank::mark()
{
    energy_at_mark_ = energy_;
    elapsed_at_mark_ = elapsed_;
}

} // namespace ppm::hw

/**
 * @file
 * First-order RC thermal model.
 *
 * The paper motivates both the TDP constraint and the tolerance
 * factor delta thermally (V-F thrashing causes thermal cycling, which
 * degrades reliability).  This model gives those claims a physical
 * readout: each cluster is an RC node whose temperature relaxes
 * toward ambient + P x R with time constant R x C.
 *
 *   dT/dt = (P * R - (T - T_ambient)) / (R * C)
 */

#ifndef PPM_HW_THERMAL_HH
#define PPM_HW_THERMAL_HH

#include <vector>

#include "common/types.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::hw {

/** Thermal parameters of the chip. */
struct ThermalParams {
    /** One RC node (per cluster). */
    struct Node {
        double resistance_k_per_w = 10.0;  ///< Junction-to-ambient R.
        double capacitance_j_per_k = 1.0;  ///< Lumped capacitance.
    };

    double ambient_c = 30.0;   ///< Ambient temperature (deg C).
    std::vector<Node> nodes;   ///< Per-cluster nodes.
};

/** Integrates per-cluster temperatures from power over time. */
class ThermalModel
{
  public:
    explicit ThermalModel(ThermalParams params);

    /**
     * Advance the model by `dt` with `cluster_power[v]` watts drawn
     * by each cluster during the step.
     */
    void step(const std::vector<Watts>& cluster_power, SimTime dt);

    /**
     * Advance the model by `n` steps of `dt` at constant power:
     * bit-identical to n step() calls (the per-node relaxation target
     * and decay factor are hoisted -- they are recomputed to the same
     * bits every step anyway).  Stops integrating early once the
     * temperatures and the peak/cycle detector reach their joint
     * fixed point, which for the exponential map is guaranteed to be
     * stable under further steps.
     */
    void advance(const std::vector<Watts>& cluster_power, SimTime dt,
                 long n);

    /** Current temperature of cluster `v` (deg C). */
    double temperature(ClusterId v) const;

    /** Hottest cluster right now. */
    double max_temperature() const;

    /** Hottest temperature seen since construction. */
    double peak_temperature() const { return peak_; }

    /**
     * Thermal cycles observed: completed temperature swings of at
     * least `cycle_threshold_k` (peak-to-valley), a proxy for the
     * thermal-cycling reliability stress of V-F thrashing.
     */
    long thermal_cycles() const { return cycles_; }

    /** Swing size that counts as a cycle (default 3 K). */
    void set_cycle_threshold(double kelvin);

    int num_nodes() const { return static_cast<int>(temp_.size()); }

    /**
     * Default calibration for the TC2-like chip: the big cluster
     * reaches ~80 deg C at its ~6 W peak, the LITTLE cluster ~55
     * deg C at ~2 W, with time constants of ~10 s.
     */
    static ThermalParams tc2_defaults();

    /** Dynamic state only (temperatures, peak/cycle detector). */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    /** Fold one step's hottest reading into peak/cycle tracking. */
    void observe_extremes(double hottest);

    ThermalParams params_;
    std::vector<double> temp_;
    double peak_;
    // Cycle detection on the hottest node's temperature.
    double cycle_ref_;
    bool rising_ = true;
    double cycle_threshold_ = 3.0;
    long cycles_ = 0;
    // Scratch for advance() (sized once; keeps the hot path
    // allocation-free).
    std::vector<double> adv_target_;
    std::vector<double> adv_decay_;
};

} // namespace ppm::hw

#endif // PPM_HW_THERMAL_HH

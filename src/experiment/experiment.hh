/**
 * @file
 * One-call experiment runner: the highest-level public API.
 *
 * Wires a platform, a workload and a named policy ("PPM", "HPM" or
 * "HL") into a Simulation and runs it.  Used by the command-line
 * driver, the benchmark harnesses and downstream code that just wants
 * "run workload X under policy Y with TDP Z".
 */

#ifndef PPM_EXPERIMENT_EXPERIMENT_HH
#define PPM_EXPERIMENT_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "metrics/recorder.hh"
#include "metrics/telemetry.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

namespace ppm {
class ThreadPool;
} // namespace ppm

namespace ppm::experiment {

/** Parameters of one policy run. */
struct RunParams {
    std::string policy = "PPM";       ///< "PPM", "HPM" or "HL".
    Watts tdp = 1e9;                  ///< TDP cap (1e9 = none).
    SimTime duration = 300 * kSecond; ///< Simulated time.
    std::uint64_t seed = 42;          ///< Workload phase seed.
    int priority = 1;                 ///< Priority for all tasks.
    bool trace = false;               ///< Record time series.
    bool online_speedup = false;      ///< PPM: learn speedups online.
    bool macro_step = true;           ///< Event-horizon time advance
                                      ///< (see SimConfig::macro_step);
                                      ///< false = per-tick loop.

    /**
     * Worker threads for PPM's parallel market clearing (see
     * PpmGovernorConfig::clearing_jobs).  1 = inline; results are
     * bit-identical for every value.  Ignored by the baselines.
     */
    int clearing_jobs = 1;

    /**
     * External shared worker pool for PPM's market clearing (see
     * PpmGovernorConfig::clearing_pool).  Not owned; overrides
     * `clearing_jobs`.  run_sweep() wires its cell-stepping pool in
     * here so an N-cell sweep keeps exactly one pool.
     */
    ThreadPool* clearing_pool = nullptr;

    /**
     * Incremental active-set clearing (PpmConfig::incremental).
     * Results are bit-identical on or off; off recomputes every
     * entry each round (debugging escape hatch, `--no-incremental`).
     * Ignored by the baselines.
     */
    bool incremental = true;

    /**
     * Extra telemetry sink (streaming CSV/JSONL) attached to the
     * simulation's TraceBus for the duration of the run.  Not owned;
     * must outlive the run.  Single-run only: multi-seed aggregation
     * (run_set_avg, sweeps) would interleave cells into one stream,
     * so those paths reject a non-null sink.
     */
    metrics::TraceSink* extra_sink = nullptr;

    /**
     * Fault-injection spec; faults.any() == false (the default) runs
     * a perfect platform.  Compiled into a deterministic FaultPlan
     * against the chip topology and run duration at run time.
     */
    fault::FaultSpec faults;
};

/** Result of one run: summary plus optional traces. */
struct RunResult {
    sim::RunSummary summary;
    metrics::TraceRecorder traces;
    /**
     * Host wall-clock seconds spent simulating this cell.  Diagnostic
     * only: it depends on machine load, so deterministic consumers
     * (the sweep reductions, the bench tables) must not print it into
     * their comparable output.
     */
    double wall_seconds = 0.0;
};

/**
 * Build the governor `policy` with TDP `tdp`.  `big_speedups` feeds
 * PPM's cross-core-type demand estimator (empty = defaults); ignored
 * by the baselines, as is `clearing_jobs` (PPM's market clearing
 * worker count).  fatal() on an unknown policy name.
 */
std::unique_ptr<sim::Governor>
make_governor(const std::string& policy, Watts tdp,
              const std::vector<double>& big_speedups,
              bool online_speedup = false, int clearing_jobs = 1,
              ThreadPool* clearing_pool = nullptr,
              bool incremental = true);

/** Run one of the paper's Table 6 sets on a fresh TC2-like chip. */
RunResult run_set(const workload::WorkloadSet& set,
                  const RunParams& params);

/**
 * Run explicit task specs on a fresh TC2-like chip; `big_speedups`
 * feeds PPM's demand estimator (empty = defaults).
 */
RunResult run_specs(const std::vector<workload::TaskSpec>& specs,
                    const std::vector<double>& big_speedups,
                    const RunParams& params);

/**
 * Seed of cell `index` on a multi-seed axis with base seed `base` and
 * spacing key `stride`.  Derived through mix64 (bijective), so
 * distinct indices can never share an RNG stream -- unlike the
 * historical `base + index * stride`, which collapsed the whole axis
 * onto one seed at stride 0 and could alias cells when
 * `index * stride` overflowed.  panic()s on stride == 0 or a negative
 * index.
 */
std::uint64_t cell_seed(std::uint64_t base, std::uint64_t stride,
                        int index);

/**
 * Reduce per-seed summaries into one cross-seed summary.  Aggregation
 * semantics, per field:
 *  - mean: any_below_miss, any_outside_miss, avg_power,
 *    avg_power_post_warmup, energy, over_tdp_fraction,
 *    over_tdp_post_warmup;
 *  - elementwise mean: task_below, task_outside (all inputs must have
 *    the same task count);
 *  - max: peak_temp_c (the thermal envelope is set by the worst seed);
 *  - sum-then-divide (rounded to long): migrations, vf_transitions,
 *    thermal_cycles.
 * The governor name is taken from the first summary.  panic()s on an
 * empty input or mismatched task counts.
 */
sim::RunSummary
aggregate_summaries(const std::vector<sim::RunSummary>& summaries);

/**
 * Run `set` `n_seeds` times (seed i = cell_seed(params.seed, 100, i))
 * and return the aggregate_summaries() reduction of the per-seed
 * runs.  Seeds run in parallel on up to `jobs` workers (0 = one per
 * hardware thread); the result is identical for every `jobs` value.
 */
sim::RunSummary run_set_avg(const workload::WorkloadSet& set,
                            RunParams params, int n_seeds = 3,
                            int jobs = 0, ThreadPool* pool = nullptr);

} // namespace ppm::experiment

#endif // PPM_EXPERIMENT_EXPERIMENT_HH

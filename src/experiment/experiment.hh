/**
 * @file
 * One-call experiment runner: the highest-level public API.
 *
 * Wires a platform, a workload and a named policy ("PPM", "HPM" or
 * "HL") into a Simulation and runs it.  Used by the command-line
 * driver, the benchmark harnesses and downstream code that just wants
 * "run workload X under policy Y with TDP Z".
 */

#ifndef PPM_EXPERIMENT_EXPERIMENT_HH
#define PPM_EXPERIMENT_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "metrics/recorder.hh"
#include "sim/simulation.hh"
#include "workload/sets.hh"

namespace ppm::experiment {

/** Parameters of one policy run. */
struct RunParams {
    std::string policy = "PPM";       ///< "PPM", "HPM" or "HL".
    Watts tdp = 1e9;                  ///< TDP cap (1e9 = none).
    SimTime duration = 300 * kSecond; ///< Simulated time.
    std::uint64_t seed = 42;          ///< Workload phase seed.
    int priority = 1;                 ///< Priority for all tasks.
    bool trace = false;               ///< Record time series.
    bool online_speedup = false;      ///< PPM: learn speedups online.
};

/** Result of one run: summary plus optional traces. */
struct RunResult {
    sim::RunSummary summary;
    metrics::TraceRecorder traces;
};

/**
 * Build the governor `policy` with TDP `tdp`.  `big_speedups` feeds
 * PPM's cross-core-type demand estimator (empty = defaults); ignored
 * by the baselines.  fatal() on an unknown policy name.
 */
std::unique_ptr<sim::Governor>
make_governor(const std::string& policy, Watts tdp,
              const std::vector<double>& big_speedups,
              bool online_speedup = false);

/** Run one of the paper's Table 6 sets on a fresh TC2-like chip. */
RunResult run_set(const workload::WorkloadSet& set,
                  const RunParams& params);

/**
 * Run explicit task specs on a fresh TC2-like chip; `big_speedups`
 * feeds PPM's demand estimator (empty = defaults).
 */
RunResult run_specs(const std::vector<workload::TaskSpec>& specs,
                    const std::vector<double>& big_speedups,
                    const RunParams& params);

/**
 * Run `set` `n_seeds` times (seeds params.seed, +100, +200, ...) and
 * return the summary with fractions and power averaged across runs.
 */
sim::RunSummary run_set_avg(const workload::WorkloadSet& set,
                            RunParams params, int n_seeds = 3);

} // namespace ppm::experiment

#endif // PPM_EXPERIMENT_EXPERIMENT_HH

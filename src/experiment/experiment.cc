#include "experiment/experiment.hh"

#include <algorithm>
#include <chrono>

#include "baselines/hl_governor.hh"
#include "baselines/hpm_governor.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "experiment/sweep.hh"
#include "hw/platform.hh"
#include "market/ppm_governor.hh"
#include "workload/benchmarks.hh"

namespace ppm::experiment {

std::unique_ptr<sim::Governor>
make_governor(const std::string& policy, Watts tdp,
              const std::vector<double>& big_speedups,
              bool online_speedup, int clearing_jobs,
              ThreadPool* clearing_pool, bool incremental)
{
    if (policy == "PPM") {
        market::PpmGovernorConfig cfg;
        cfg.market.w_tdp = tdp;
        cfg.market.w_th = market::derive_w_th(tdp);
        cfg.market.incremental = incremental;
        cfg.big_speedup = big_speedups;
        cfg.online_speedup = online_speedup;
        cfg.clearing_jobs = clearing_jobs;
        cfg.clearing_pool = clearing_pool;
        return std::make_unique<market::PpmGovernor>(cfg);
    }
    if (policy == "HPM") {
        baselines::HpmConfig cfg;
        cfg.tdp = tdp;
        return std::make_unique<baselines::HpmGovernor>(cfg);
    }
    if (policy == "HL") {
        baselines::HlConfig cfg;
        cfg.tdp = tdp;
        return std::make_unique<baselines::HlGovernor>(cfg);
    }
    fatal("unknown policy '%s' (use PPM, HPM or HL)", policy.c_str());
}

RunResult
run_specs(const std::vector<workload::TaskSpec>& specs,
          const std::vector<double>& big_speedups, const RunParams& params)
{
    sim::SimConfig sim_cfg;
    sim_cfg.duration = params.duration;
    sim_cfg.trace = params.trace;
    sim_cfg.tdp_for_metrics = params.tdp;
    sim_cfg.macro_step = params.macro_step;

    hw::Chip chip = hw::tc2_chip();
    if (params.faults.any()) {
        sim_cfg.faults = fault::FaultPlan::compile(
            params.faults, chip.num_clusters(), chip.num_cores(),
            sim_cfg.duration, sim_cfg.tick);
    }

    sim::Simulation simulation(
        std::move(chip), specs,
        make_governor(params.policy, params.tdp, big_speedups,
                      params.online_speedup, params.clearing_jobs,
                      params.clearing_pool, params.incremental),
        sim_cfg);
    if (params.extra_sink != nullptr)
        simulation.bus().add_sink(params.extra_sink);
    RunResult result;
    const auto start = std::chrono::steady_clock::now();
    result.summary = simulation.run();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (params.trace)
        result.traces = simulation.recorder();
    return result;
}

RunResult
run_set(const workload::WorkloadSet& set, const RunParams& params)
{
    const auto specs = workload::instantiate(set, params.seed,
                                             params.priority,
                                             params.duration + 100 * kSecond);
    std::vector<double> speedups;
    for (const auto& member : set.members) {
        speedups.push_back(
            workload::profile(member.bench, member.input).big_speedup);
    }
    return run_specs(specs, speedups, params);
}

std::uint64_t
cell_seed(std::uint64_t base, std::uint64_t stride, int index)
{
    PPM_ASSERT(stride >= 1, "seed stride must be >= 1");
    PPM_ASSERT(index >= 0, "seed index must be >= 0");
    // The index rides an odd-multiplier lane, which is injective mod
    // 2^64, so for a fixed (base, stride) every index maps to a
    // distinct mix64 input; mix64 is bijective, so the derived seeds
    // are distinct too -- no stride or index combination can alias
    // two cells onto one RNG stream.
    return mix64(base + mix64(stride) +
                 static_cast<std::uint64_t>(index) *
                     0x9e3779b97f4a7c15ULL);
}

sim::RunSummary
aggregate_summaries(const std::vector<sim::RunSummary>& summaries)
{
    PPM_ASSERT(!summaries.empty(), "need at least one summary");
    sim::RunSummary avg = summaries.front();
    for (std::size_t i = 1; i < summaries.size(); ++i) {
        const sim::RunSummary& s = summaries[i];
        PPM_ASSERT(s.task_below.size() == avg.task_below.size() &&
                       s.task_outside.size() == avg.task_outside.size(),
                   "summaries must cover the same task count");
        avg.any_below_miss += s.any_below_miss;
        avg.any_outside_miss += s.any_outside_miss;
        avg.avg_power += s.avg_power;
        avg.avg_power_post_warmup += s.avg_power_post_warmup;
        avg.energy += s.energy;
        avg.migrations += s.migrations;
        avg.vf_transitions += s.vf_transitions;
        avg.over_tdp_fraction += s.over_tdp_fraction;
        avg.over_tdp_post_warmup += s.over_tdp_post_warmup;
        // Worst seed sets the thermal envelope.
        avg.peak_temp_c = std::max(avg.peak_temp_c, s.peak_temp_c);
        avg.thermal_cycles += s.thermal_cycles;
        avg.faults_injected += s.faults_injected;
        avg.sensor_fallbacks += s.sensor_fallbacks;
        avg.fault_retries += s.fault_retries;
        avg.safe_mode_entries += s.safe_mode_entries;
        avg.watchdog_trips += s.watchdog_trips;
        avg.safe_mode_seconds += s.safe_mode_seconds;
        avg.over_tdp_during_fault += s.over_tdp_during_fault;
        avg.market_rounds += s.market_rounds;
        avg.market_task_slots += s.market_task_slots;
        avg.market_tasks_skipped += s.market_tasks_skipped;
        avg.market_core_slots += s.market_core_slots;
        avg.market_cores_skipped += s.market_cores_skipped;
        avg.market_rounds_early_exit += s.market_rounds_early_exit;
        for (std::size_t t = 0; t < avg.task_below.size(); ++t)
            avg.task_below[t] += s.task_below[t];
        for (std::size_t t = 0; t < avg.task_outside.size(); ++t)
            avg.task_outside[t] += s.task_outside[t];
    }
    const double n = static_cast<double>(summaries.size());
    avg.any_below_miss /= n;
    avg.any_outside_miss /= n;
    avg.avg_power /= n;
    avg.avg_power_post_warmup /= n;
    avg.energy /= n;
    avg.migrations = static_cast<long>(avg.migrations / n);
    avg.vf_transitions = static_cast<long>(avg.vf_transitions / n);
    avg.thermal_cycles = static_cast<long>(avg.thermal_cycles / n);
    avg.over_tdp_fraction /= n;
    avg.over_tdp_post_warmup /= n;
    avg.faults_injected = static_cast<long>(avg.faults_injected / n);
    avg.sensor_fallbacks = static_cast<long>(avg.sensor_fallbacks / n);
    avg.fault_retries = static_cast<long>(avg.fault_retries / n);
    avg.safe_mode_entries =
        static_cast<long>(avg.safe_mode_entries / n);
    avg.watchdog_trips = static_cast<long>(avg.watchdog_trips / n);
    avg.safe_mode_seconds /= n;
    avg.over_tdp_during_fault /= n;
    avg.market_rounds = static_cast<long>(avg.market_rounds / n);
    avg.market_task_slots = static_cast<long>(avg.market_task_slots / n);
    avg.market_tasks_skipped =
        static_cast<long>(avg.market_tasks_skipped / n);
    avg.market_core_slots = static_cast<long>(avg.market_core_slots / n);
    avg.market_cores_skipped =
        static_cast<long>(avg.market_cores_skipped / n);
    avg.market_rounds_early_exit =
        static_cast<long>(avg.market_rounds_early_exit / n);
    for (double& f : avg.task_below)
        f /= n;
    for (double& f : avg.task_outside)
        f /= n;
    return avg;
}

sim::RunSummary
run_set_avg(const workload::WorkloadSet& set, RunParams params,
            int n_seeds, int jobs, ThreadPool* pool)
{
    PPM_ASSERT(n_seeds >= 1, "need at least one seed");
    PPM_ASSERT(params.extra_sink == nullptr,
               "streaming sinks are single-run; seeds would interleave");
    std::vector<std::function<sim::RunSummary()>> cells;
    cells.reserve(static_cast<std::size_t>(n_seeds));
    for (int i = 0; i < n_seeds; ++i) {
        RunParams p = params;
        p.seed = cell_seed(params.seed, 100, i);
        // Seed cells share the caller's pool for clearing too (one
        // pool for the whole aggregation, never one per governor).
        p.clearing_pool = pool;
        cells.push_back(
            [&set, p]() { return run_set(set, p).summary; });
    }
    return aggregate_summaries(
        run_cells<sim::RunSummary>(std::move(cells), jobs, pool));
}

} // namespace ppm::experiment

/**
 * @file
 * Deterministic parallel experiment sweeps.
 *
 * Every figure and table of the paper's evaluation is a sweep over
 * (workload set x policy x seed) cells; each cell is one independent
 * Simulation.  This module enumerates the cells, runs them on a
 * ThreadPool, and reduces the results in a fixed cell order, so the
 * output is bit-identical regardless of worker count or completion
 * order.
 *
 * Determinism / thread-safety audit (why cells may run concurrently):
 *  - Each cell constructs its own Chip, Scheduler, SensorBank,
 *    ThermalModel, Governor and Rng; no simulation state is shared.
 *  - The workload tables (workload::all_profiles(),
 *    workload::standard_workload_sets()) and the platform parameter
 *    helpers are function-local statics: C++11 guarantees race-free
 *    one-time construction, and they are immutable afterwards.
 *  - The global log level (common/logging.cc) is an std::atomic, so
 *    workers may log while the main thread configures verbosity.
 *  - Host wall-clock timing (RunResult::wall_seconds) is the only
 *    nondeterministic output; reductions never consume it.
 */

#ifndef PPM_EXPERIMENT_SWEEP_HH
#define PPM_EXPERIMENT_SWEEP_HH

#include <functional>
#include <future>
#include <optional>
#include <utility>
#include <vector>

#include "common/thread_pool.hh"
#include "experiment/experiment.hh"

namespace ppm::experiment {

/**
 * Run arbitrary cell functions on up to `jobs` workers (0 = one per
 * hardware thread) and return their results *in input order*.  With
 * jobs == 1, or with a single cell, the cells run inline on the
 * calling thread (no pool is constructed) -- the serial fallback used
 * for debugging and determinism comparisons.  A cell's exception
 * propagates to the caller.
 *
 * When `pool` is non-null the cells run on that external pool instead
 * of a fresh one (`jobs` is ignored); a caller already *on* one of
 * that pool's workers runs its cells inline, exactly like a nested
 * for_chunks().  run_sweep() uses this to share one pool between cell
 * stepping and the cells' market clearing.
 *
 * Takes the cell vector by value and moves each closure to its
 * worker: cell closures capture whole RunParams/spec payloads, so
 * copying every std::function into the pool would reallocate all of
 * that per cell.  Callers that reuse their vector should pass a copy
 * explicitly.
 *
 * This is the generic layer under run_sweep(): benches whose cells
 * are custom governor configurations (the ablations) rather than
 * named policies build their own cell closures and reduce here.
 */
template <typename T>
std::vector<T>
run_cells(std::vector<std::function<T()>> cells, int jobs = 0,
          ThreadPool* pool = nullptr)
{
    std::vector<T> results;
    results.reserve(cells.size());
    const bool inline_run = cells.size() <= 1 ||
        (pool != nullptr
             ? pool->size() <= 1 || pool->on_worker_thread()
             : ThreadPool::resolve_jobs(jobs) == 1);
    if (inline_run) {
        for (auto& cell : cells)
            results.push_back(std::move(cell)());
        return results;
    }
    std::optional<ThreadPool> owned;
    if (pool == nullptr) {
        owned.emplace(jobs);
        pool = &*owned;
    }
    std::vector<std::future<T>> futures;
    futures.reserve(cells.size());
    for (auto& cell : cells)
        futures.push_back(pool->submit(std::move(cell)));
    // Reduce in submission order: completion order never leaks.
    for (auto& f : futures)
        results.push_back(f.get());
    return results;
}

/** A (set x policy x seed) sweep specification. */
struct SweepConfig {
    std::vector<workload::WorkloadSet> sets;  ///< Outermost axis.
    std::vector<std::string> policies;        ///< Middle axis.
    int n_seeds = 3;              ///< Innermost axis (>= 1).
    /**
     * Spacing key of the seed axis: seed i =
     * cell_seed(base.seed, seed_stride, i) (see experiment.hh).  Must
     * be >= 1 -- run_sweep() rejects 0, which under the historical
     * `base.seed + i * stride` rule silently collapsed every cell
     * onto one RNG stream.
     */
    std::uint64_t seed_stride = 100;
    RunParams base;               ///< Shared params (policy/seed overridden).
    int jobs = 0;                 ///< Workers; 0 = hardware threads.
};

/**
 * Results of a sweep, indexed (set, policy, seed) in the enumeration
 * order of SweepConfig.  Cell results are stored seed-major within
 * policy within set.
 */
class SweepResult
{
  public:
    SweepResult(int n_sets, int n_policies, int n_seeds,
                std::vector<RunResult> cells);

    int n_sets() const { return n_sets_; }
    int n_policies() const { return n_policies_; }
    int n_seeds() const { return n_seeds_; }

    /** Full result of one cell. */
    const RunResult& cell(int set, int policy, int seed) const;

    /** Summary of one cell. */
    const sim::RunSummary& summary(int set, int policy, int seed) const
    {
        return cell(set, policy, seed).summary;
    }

    /** aggregate_summaries() over the seed axis of one (set, policy). */
    sim::RunSummary averaged(int set, int policy) const;

    /** Sum of per-cell wall-clock seconds (diagnostic only). */
    double total_wall_seconds() const;

  private:
    int n_sets_;
    int n_policies_;
    int n_seeds_;
    std::vector<RunResult> cells_;
};

/**
 * Enumerate and run every (set x policy x seed) cell of `config`.
 * The reduction order is fixed by the config axes, so the returned
 * object -- and anything printed from it -- is bit-identical for any
 * `jobs` value.  Traces are only recorded if config.base.trace is set
 * (beware memory: one recorder per cell).
 */
SweepResult run_sweep(const SweepConfig& config);

} // namespace ppm::experiment

#endif // PPM_EXPERIMENT_SWEEP_HH

#include "experiment/sweep.hh"

#include <memory>

#include "common/logging.hh"

namespace ppm::experiment {

SweepResult::SweepResult(int n_sets, int n_policies, int n_seeds,
                         std::vector<RunResult> cells)
    : n_sets_(n_sets), n_policies_(n_policies), n_seeds_(n_seeds),
      cells_(std::move(cells))
{
    PPM_ASSERT(static_cast<std::size_t>(n_sets_) *
                       static_cast<std::size_t>(n_policies_) *
                       static_cast<std::size_t>(n_seeds_) ==
                   cells_.size(),
               "cell count must match the sweep dimensions");
}

const RunResult&
SweepResult::cell(int set, int policy, int seed) const
{
    PPM_ASSERT(set >= 0 && set < n_sets_, "set index out of range");
    PPM_ASSERT(policy >= 0 && policy < n_policies_,
               "policy index out of range");
    PPM_ASSERT(seed >= 0 && seed < n_seeds_, "seed index out of range");
    const std::size_t index =
        (static_cast<std::size_t>(set) *
             static_cast<std::size_t>(n_policies_) +
         static_cast<std::size_t>(policy)) *
            static_cast<std::size_t>(n_seeds_) +
        static_cast<std::size_t>(seed);
    return cells_[index];
}

sim::RunSummary
SweepResult::averaged(int set, int policy) const
{
    std::vector<sim::RunSummary> seeds;
    seeds.reserve(static_cast<std::size_t>(n_seeds_));
    for (int i = 0; i < n_seeds_; ++i)
        seeds.push_back(summary(set, policy, i));
    return aggregate_summaries(seeds);
}

double
SweepResult::total_wall_seconds() const
{
    double total = 0.0;
    for (const RunResult& c : cells_)
        total += c.wall_seconds;
    return total;
}

SweepResult
run_sweep(const SweepConfig& config)
{
    PPM_ASSERT(!config.sets.empty(), "sweep needs at least one set");
    PPM_ASSERT(!config.policies.empty(),
               "sweep needs at least one policy");
    PPM_ASSERT(config.n_seeds >= 1, "sweep needs at least one seed");
    PPM_ASSERT(config.seed_stride >= 1,
               "seed stride must be >= 1 (0 would alias every cell "
               "onto one RNG stream)");
    PPM_ASSERT(config.base.extra_sink == nullptr,
               "streaming sinks are single-run; cells would interleave");

    const std::size_t planned = config.sets.size() *
        config.policies.size() * static_cast<std::size_t>(config.n_seeds);

    // One pool for the whole sweep: it steps the cells AND serves
    // every cell's market clearing (a clearing round invoked from a
    // cell worker runs inline -- ThreadPool::on_worker_thread), so an
    // N-cell sweep on an M-core host never oversubscribes with N
    // pools.  No pool at all when the sweep would run inline anyway.
    std::unique_ptr<ThreadPool> shared;
    if (planned > 1 && ThreadPool::resolve_jobs(config.jobs) > 1)
        shared = std::make_unique<ThreadPool>(config.jobs);

    std::vector<std::function<RunResult()>> cells;
    cells.reserve(planned);
    for (const workload::WorkloadSet& set : config.sets) {
        for (const std::string& policy : config.policies) {
            for (int i = 0; i < config.n_seeds; ++i) {
                RunParams params = config.base;
                params.policy = policy;
                params.seed =
                    cell_seed(config.base.seed, config.seed_stride, i);
                params.clearing_pool = shared.get();
                cells.push_back([set, params]() {
                    return run_set(set, params);
                });
            }
        }
    }

    const std::size_t n_cells = cells.size();
    std::vector<RunResult> results =
        run_cells<RunResult>(std::move(cells), config.jobs, shared.get());
    SweepResult sweep(static_cast<int>(config.sets.size()),
                      static_cast<int>(config.policies.size()),
                      config.n_seeds, std::move(results));
    inform("sweep: %zu cells, %.2f s simulated wall-clock total",
           n_cells, sweep.total_wall_seconds());
    return sweep;
}

} // namespace ppm::experiment

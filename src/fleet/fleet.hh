/**
 * @file
 * Fleet-scale market federation: N independent per-chip economies
 * (each a full Simulation with its own Market-backed governor),
 * macro-stepped in parallel between supervisor epochs, with batched
 * cross-shard settlement at the epoch barriers.
 *
 * Execution model per epoch:
 *   1. every shard advances to the barrier via Simulation::run_until()
 *      -- fanned over a shared ThreadPool with for_chunks-style
 *      deterministic partitioning (chunk boundaries depend only on
 *      the chip count, never the worker count);
 *   2. at the barrier, the control thread gathers every chip's
 *      ChipSignal and the SupervisorMarket settles the fleet budget
 *      (one pass in chip-id order -- the only cross-shard reduction,
 *      so its floating-point association never varies);
 *   3. changed budgets are pushed down via Governor::set_power_budget
 *      (unchanged budgets are not re-applied, so a 1-chip fleet never
 *      touches its governor's exact configured thresholds);
 *   4. floating tasks whose arrival passed are admitted to the
 *      cheapest-price chip (ties -> lowest chip id);
 *   5. fleet.* telemetry is sampled onto the fleet bus in chip order.
 *
 * Determinism: shards are mutually independent between barriers and
 * everything at the barrier runs on the control thread in chip-id
 * order, so fleet output is byte-identical for every jobs value --
 * and a 1-chip fleet is bit-identical to calling Simulation::run()
 * directly (run_until() slicing provably changes nothing, and steps
 * 2-5 degenerate to pure observation).
 */

#ifndef PPM_FLEET_FLEET_HH
#define PPM_FLEET_FLEET_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hh"
#include "common/types.hh"
#include "fault/fault.hh"
#include "fleet/supervisor.hh"
#include "hw/platform.hh"
#include "metrics/telemetry.hh"
#include "sim/simulation.hh"
#include "workload/task.hh"

namespace ppm::fleet {

/** A task not pinned to any chip: placed by the supervisor at the
 *  first epoch barrier at or after its arrival. */
struct FloatingTask {
    workload::TaskSpec spec;

    /** Big-cluster speedup profile (0 = governor default). */
    double big_speedup = 0.0;

    /** Earliest admission time; actual admission happens at the
     *  first barrier >= arrival (tasks cannot land mid-epoch). */
    SimTime arrival = 0;

    /** Departure time (forever by default). */
    SimTime departure = sim::SimConfig::Lifetime::kForever;
};

/** Per-chip workload description. */
struct ChipWorkload {
    std::vector<workload::TaskSpec> specs;

    /** Optional per-task lifetimes (empty = whole run). */
    std::vector<sim::SimConfig::Lifetime> lifetimes;

    /** Optional explicit placement (empty = boot-cluster RR). */
    std::vector<CoreId> placement;
};

/** Configuration of a fleet run. */
struct FleetConfig {
    /** Number of chips (= shards). */
    int chips = 1;

    /** Supervisor epoch; must be a multiple of sim.tick. */
    SimTime epoch = 96 * kMillisecond;

    /** Supervisor market parameters (incl. the fleet TDP budget). */
    SupervisorConfig supervisor;

    /**
     * Per-chip SimConfig template.  placement/lifetimes inside it are
     * ignored (they come from `workloads`); everything else --
     * duration, tick, warmup, macro_step, trace, tdp_for_metrics,
     * faults -- applies to every shard.
     */
    sim::SimConfig sim;

    /** Platform factory, called once per chip id. */
    std::function<hw::Chip(int chip)> make_chip;

    /**
     * Governor factory: chip id plus the chip's initial power budget
     * (SupervisorMarket::initial_budget()).  The factory owns the
     * mapping from budget to governor thresholds, so tests can
     * reproduce an exact legacy configuration for chip 0.
     */
    std::function<std::unique_ptr<sim::Governor>(int chip, Watts budget)>
        make_governor;

    /** One workload per chip (size must equal `chips`). */
    std::vector<ChipWorkload> workloads;

    /** Fleet-placed tasks, admitted at epoch barriers. */
    std::vector<FloatingTask> floating;

    /**
     * Shard-stepping worker threads when no external pool is given:
     * 1 = inline (default), <= 0 = one per hardware thread.  The same
     * pool is attached to every shard's market for clearing (rounds
     * invoked from a shard worker clear inline -- see
     * ThreadPool::on_worker_thread), so an N-chip fleet runs on
     * exactly one pool.
     */
    int jobs = 1;

    /** External shared pool (not owned; overrides `jobs`). */
    ThreadPool* pool = nullptr;

    /**
     * Chip-scope fault schedule (chip-fail / chip-degrade /
     * chip-recover), compiled onto the epoch grid so every event
     * lands exactly on a settlement barrier.  Empty (the default)
     * disables the fleet fault machinery entirely: settlement,
     * placement and telemetry take the exact code paths of a
     * fault-free build, so existing runs stay byte-identical.
     */
    fault::FleetFaultPlan fleet_faults;

    /**
     * Per-chip deficit watchdog: a chip reporting a positive clearing
     * deficit for this many consecutive epochs is marked degraded
     * (its budget clamped by `watchdog_clamp`) -- persistent deficit
     * is a health signal, the fleet analogue of the market watchdog.
     * 0 (default) disables the watchdog.
     */
    int deficit_watchdog_epochs = 0;

    /** Budget clamp applied when the deficit watchdog trips. */
    double watchdog_clamp = 0.9;

    /**
     * Bounded placement retries per evacuated task before it parks in
     * the pending queue until the next recovery (backoff doubles per
     * failed attempt, starting at one epoch).
     */
    int evac_max_retries = 8;
};

/** Aggregate outcome of a fleet run. */
struct FleetResult {
    /**
     * Fleet-level summary.  For a 1-chip fleet this is chip 0's
     * RunSummary verbatim; otherwise: QoS/over-TDP fractions are
     * unweighted means over chips (every chip's duration is the
     * same), energy/migrations/V-F transitions/fault counters are
     * sums, average powers are sums (the fleet draws the sum of its
     * chips), peak temperature is the max, and the per-task vectors
     * concatenate in chip order.
     */
    sim::RunSummary combined;

    /** Per-chip summaries, indexed by chip id. */
    std::vector<sim::RunSummary> per_chip;

    /** Per-chip budgets after the last settlement. */
    std::vector<Watts> final_budgets;

    /** Supervisor epochs executed. */
    long supervisor_epochs = 0;

    /** Floating tasks admitted. */
    long admitted = 0;

    /** Chip id each floating task landed on (-1 = never admitted,
     *  arrival past the run end). */
    std::vector<int> placements;

    // Fleet fault-tolerance accounting (all zero / empty on runs
    // without chip-scope faults).  Conservation invariant:
    // evacuations == evac_landed + evac_pending_end -- no task is
    // lost or duplicated by chip failure.
    long chip_failures = 0;     ///< chip-fail events applied.
    long chip_recoveries = 0;   ///< chip-recover events applied.
    long evacuations = 0;       ///< Tasks pulled off failed chips.
    long evac_landed = 0;       ///< ...re-admitted on survivors.
    long evac_pending_end = 0;  ///< ...still queued at run end.
    long rejections = 0;        ///< Typed admission rejections.
    long fleet_watchdog_trips = 0;  ///< Deficit-watchdog trips.
    bool all_chips_failed = false;  ///< Whole fleet was down at once.

    /** Final per-chip health (0 = ok, 1 = degraded, 2 = failed). */
    std::vector<int> final_health;
};

/** The federated multi-chip economy. */
class Fleet
{
  public:
    explicit Fleet(FleetConfig cfg);
    ~Fleet();

    /**
     * Advance every shard one supervisor epoch and settle.  Returns
     * true while the fleet has time left (false from the epoch that
     * reaches the configured duration onwards).  Exposed so the
     * benchmark can meter exactly one epoch.
     */
    bool run_epoch();

    /** Run to completion and aggregate. */
    FleetResult run();

    /** Shard (per-chip simulation) `i`. */
    sim::Simulation& shard(int i);

    /** Number of chips. */
    int chips() const { return static_cast<int>(shards_.size()); }

    /** Current fleet time (last completed barrier). */
    SimTime now() const { return now_; }

    /**
     * The fleet-level telemetry bus, carrying the interned fleet.*
     * series sampled at every barrier: per chip
     * fleet.chip<i>.{power_w,budget_w,price,deficit} and fleet-wide
     * fleet.{power_w,budget_w}, plus the fleet.admitted counter.
     * Attach sinks before run().  Distinct from the per-shard buses
     * (shard(i).bus()), which carry the usual single-chip series.
     */
    metrics::TraceBus& bus() { return bus_; }

    /** The supervisor market (for inspection). */
    const SupervisorMarket& supervisor() const { return supervisor_; }

    /** Per-chip health (0 = ok, 1 = degraded, 2 = failed). */
    int chip_health(int i) const
    {
        return static_cast<int>(health_[static_cast<std::size_t>(i)]);
    }

    /** Evacuations still waiting for a chip that can take them. */
    long pending_evacuations() const
    {
        return static_cast<long>(pending_evac_.size());
    }

    /**
     * Serialize the complete fleet state between epochs: supervisor,
     * budgets, placements, health, the pending-evacuation queue, the
     * fleet bus, and every shard (each via Simulation::save).  load()
     * mirrors Simulation::load: call it on a freshly constructed
     * Fleet built from the same configuration; the restored fleet
     * continues byte-identically to the uninterrupted run.
     */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    /** One evacuated (or retrying) task awaiting placement. */
    struct PendingEvac {
        long seq = 0;           ///< Global drain order (FIFO).
        workload::TaskSpec spec;
        double big_speedup = 0.0;
        SimTime departure = sim::SimConfig::Lifetime::kForever;
        int retries_left = 0;
        SimTime next_try = 0;   ///< Barrier time of the next attempt.
        SimTime backoff = 0;    ///< Doubles per failed attempt.
    };

    /** What the fleet knows about a task it placed on a chip (enough
     *  to re-admit it elsewhere on evacuation). */
    struct RosterEntry {
        workload::TaskSpec spec;
        double big_speedup = 0.0;
    };

    /** Gather signals, settle, retarget budgets (chip-id order). */
    void settle_barrier();

    /** Admit due floating tasks to the cheapest chips. */
    void admit_floating();

    /** Sample the fleet.* series at the current barrier. */
    void sample_barrier();

    /** Apply due chip-fail/degrade/recover events (barrier time). */
    void apply_fleet_faults();

    /** Pull every live task off newly failed chip `i` into the
     *  pending queue (task-id order). */
    void evacuate_chip(std::size_t i);

    /** Update per-chip deficit streaks; trip the watchdog. */
    void run_deficit_watchdog();

    /** Try to place due pending evacuations (seq order). */
    void drain_pending();

    /** Admit `spec` on the cheapest active chip; kInvalidId target
     *  chip in `*chip_out` when nothing could take it. */
    bool place_task(const workload::TaskSpec& spec, double big_speedup,
                    SimTime departure, int* chip_out);

    FleetConfig cfg_;
    SupervisorMarket supervisor_;
    std::vector<std::unique_ptr<sim::Simulation>> shards_;
    std::unique_ptr<ThreadPool> owned_pool_;
    ThreadPool* pool_ = nullptr;  ///< Null = step shards inline.
    metrics::TraceBus bus_;

    /** Last budget pushed to each governor; settlements that do not
     *  move a chip's budget are not re-applied. */
    std::vector<Watts> budgets_;
    std::vector<ChipSignal> signals_;   ///< Barrier gather scratch.
    std::vector<int> placements_;       ///< Per floating task; -1 = not yet.
    SimTime now_ = 0;
    SimTime next_barrier_ = 0;
    long admitted_ = 0;
    bool done_ = false;

    // Fleet fault-tolerance runtime.  fault_handling_ latches at
    // construction (non-empty plan or watchdog enabled); when false,
    // every barrier takes the exact legacy code path.
    bool fault_handling_ = false;
    std::size_t next_fleet_event_ = 0;  ///< Cursor into the plan.
    std::vector<unsigned char> health_; ///< 0 ok / 1 degraded / 2 failed.
    std::vector<double> clamp_;         ///< Budget clamp (1.0 = none).
    std::vector<int> deficit_streak_;   ///< Consecutive deficit epochs.
    std::vector<std::vector<RosterEntry>> roster_;  ///< Per chip, by task id.
    std::vector<PendingEvac> pending_evac_;  ///< Sorted by seq.
    long evac_seq_ = 0;
    long chip_failures_ = 0;
    long chip_recoveries_ = 0;
    long evacuations_ = 0;
    long evac_landed_ = 0;
    long rejections_ = 0;
    long fleet_watchdog_trips_ = 0;
    bool all_failed_seen_ = false;
    std::vector<unsigned char> active_scratch_;  ///< health != failed.

    // Interned fleet.* handles (resolved at construction).
    std::vector<metrics::SeriesId> chip_power_ids_;
    std::vector<metrics::SeriesId> chip_budget_ids_;
    std::vector<metrics::SeriesId> chip_price_ids_;
    std::vector<metrics::SeriesId> chip_deficit_ids_;
    std::vector<metrics::SeriesId> chip_state_ids_;
    metrics::SeriesId fleet_power_id_ = 0;
    metrics::SeriesId fleet_budget_id_ = 0;
    metrics::SeriesId admitted_id_ = 0;
    metrics::SeriesId evacuations_id_ = 0;
    metrics::SeriesId evac_landed_id_ = 0;
    metrics::SeriesId evac_pending_id_ = 0;
    metrics::SeriesId rejections_id_ = 0;
    metrics::SeriesId chip_failures_id_ = 0;
    metrics::SeriesId chip_recoveries_id_ = 0;
    metrics::SeriesId watchdog_id_ = 0;
};

} // namespace ppm::fleet

#endif // PPM_FLEET_FLEET_HH

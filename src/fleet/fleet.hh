/**
 * @file
 * Fleet-scale market federation: N independent per-chip economies
 * (each a full Simulation with its own Market-backed governor),
 * macro-stepped in parallel between supervisor epochs, with batched
 * cross-shard settlement at the epoch barriers.
 *
 * Execution model per epoch:
 *   1. every shard advances to the barrier via Simulation::run_until()
 *      -- fanned over a shared ThreadPool with for_chunks-style
 *      deterministic partitioning (chunk boundaries depend only on
 *      the chip count, never the worker count);
 *   2. at the barrier, the control thread gathers every chip's
 *      ChipSignal and the SupervisorMarket settles the fleet budget
 *      (one pass in chip-id order -- the only cross-shard reduction,
 *      so its floating-point association never varies);
 *   3. changed budgets are pushed down via Governor::set_power_budget
 *      (unchanged budgets are not re-applied, so a 1-chip fleet never
 *      touches its governor's exact configured thresholds);
 *   4. floating tasks whose arrival passed are admitted to the
 *      cheapest-price chip (ties -> lowest chip id);
 *   5. fleet.* telemetry is sampled onto the fleet bus in chip order.
 *
 * Determinism: shards are mutually independent between barriers and
 * everything at the barrier runs on the control thread in chip-id
 * order, so fleet output is byte-identical for every jobs value --
 * and a 1-chip fleet is bit-identical to calling Simulation::run()
 * directly (run_until() slicing provably changes nothing, and steps
 * 2-5 degenerate to pure observation).
 */

#ifndef PPM_FLEET_FLEET_HH
#define PPM_FLEET_FLEET_HH

#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.hh"
#include "common/types.hh"
#include "fleet/supervisor.hh"
#include "hw/platform.hh"
#include "metrics/telemetry.hh"
#include "sim/simulation.hh"
#include "workload/task.hh"

namespace ppm::fleet {

/** A task not pinned to any chip: placed by the supervisor at the
 *  first epoch barrier at or after its arrival. */
struct FloatingTask {
    workload::TaskSpec spec;

    /** Big-cluster speedup profile (0 = governor default). */
    double big_speedup = 0.0;

    /** Earliest admission time; actual admission happens at the
     *  first barrier >= arrival (tasks cannot land mid-epoch). */
    SimTime arrival = 0;

    /** Departure time (forever by default). */
    SimTime departure = sim::SimConfig::Lifetime::kForever;
};

/** Per-chip workload description. */
struct ChipWorkload {
    std::vector<workload::TaskSpec> specs;

    /** Optional per-task lifetimes (empty = whole run). */
    std::vector<sim::SimConfig::Lifetime> lifetimes;

    /** Optional explicit placement (empty = boot-cluster RR). */
    std::vector<CoreId> placement;
};

/** Configuration of a fleet run. */
struct FleetConfig {
    /** Number of chips (= shards). */
    int chips = 1;

    /** Supervisor epoch; must be a multiple of sim.tick. */
    SimTime epoch = 96 * kMillisecond;

    /** Supervisor market parameters (incl. the fleet TDP budget). */
    SupervisorConfig supervisor;

    /**
     * Per-chip SimConfig template.  placement/lifetimes inside it are
     * ignored (they come from `workloads`); everything else --
     * duration, tick, warmup, macro_step, trace, tdp_for_metrics,
     * faults -- applies to every shard.
     */
    sim::SimConfig sim;

    /** Platform factory, called once per chip id. */
    std::function<hw::Chip(int chip)> make_chip;

    /**
     * Governor factory: chip id plus the chip's initial power budget
     * (SupervisorMarket::initial_budget()).  The factory owns the
     * mapping from budget to governor thresholds, so tests can
     * reproduce an exact legacy configuration for chip 0.
     */
    std::function<std::unique_ptr<sim::Governor>(int chip, Watts budget)>
        make_governor;

    /** One workload per chip (size must equal `chips`). */
    std::vector<ChipWorkload> workloads;

    /** Fleet-placed tasks, admitted at epoch barriers. */
    std::vector<FloatingTask> floating;

    /**
     * Shard-stepping worker threads when no external pool is given:
     * 1 = inline (default), <= 0 = one per hardware thread.  The same
     * pool is attached to every shard's market for clearing (rounds
     * invoked from a shard worker clear inline -- see
     * ThreadPool::on_worker_thread), so an N-chip fleet runs on
     * exactly one pool.
     */
    int jobs = 1;

    /** External shared pool (not owned; overrides `jobs`). */
    ThreadPool* pool = nullptr;
};

/** Aggregate outcome of a fleet run. */
struct FleetResult {
    /**
     * Fleet-level summary.  For a 1-chip fleet this is chip 0's
     * RunSummary verbatim; otherwise: QoS/over-TDP fractions are
     * unweighted means over chips (every chip's duration is the
     * same), energy/migrations/V-F transitions/fault counters are
     * sums, average powers are sums (the fleet draws the sum of its
     * chips), peak temperature is the max, and the per-task vectors
     * concatenate in chip order.
     */
    sim::RunSummary combined;

    /** Per-chip summaries, indexed by chip id. */
    std::vector<sim::RunSummary> per_chip;

    /** Per-chip budgets after the last settlement. */
    std::vector<Watts> final_budgets;

    /** Supervisor epochs executed. */
    long supervisor_epochs = 0;

    /** Floating tasks admitted. */
    long admitted = 0;

    /** Chip id each floating task landed on (-1 = never admitted,
     *  arrival past the run end). */
    std::vector<int> placements;
};

/** The federated multi-chip economy. */
class Fleet
{
  public:
    explicit Fleet(FleetConfig cfg);
    ~Fleet();

    /**
     * Advance every shard one supervisor epoch and settle.  Returns
     * true while the fleet has time left (false from the epoch that
     * reaches the configured duration onwards).  Exposed so the
     * benchmark can meter exactly one epoch.
     */
    bool run_epoch();

    /** Run to completion and aggregate. */
    FleetResult run();

    /** Shard (per-chip simulation) `i`. */
    sim::Simulation& shard(int i);

    /** Number of chips. */
    int chips() const { return static_cast<int>(shards_.size()); }

    /** Current fleet time (last completed barrier). */
    SimTime now() const { return now_; }

    /**
     * The fleet-level telemetry bus, carrying the interned fleet.*
     * series sampled at every barrier: per chip
     * fleet.chip<i>.{power_w,budget_w,price,deficit} and fleet-wide
     * fleet.{power_w,budget_w}, plus the fleet.admitted counter.
     * Attach sinks before run().  Distinct from the per-shard buses
     * (shard(i).bus()), which carry the usual single-chip series.
     */
    metrics::TraceBus& bus() { return bus_; }

    /** The supervisor market (for inspection). */
    const SupervisorMarket& supervisor() const { return supervisor_; }

  private:
    /** Gather signals, settle, retarget budgets (chip-id order). */
    void settle_barrier();

    /** Admit due floating tasks to the cheapest chips. */
    void admit_floating();

    /** Sample the fleet.* series at the current barrier. */
    void sample_barrier();

    FleetConfig cfg_;
    SupervisorMarket supervisor_;
    std::vector<std::unique_ptr<sim::Simulation>> shards_;
    std::unique_ptr<ThreadPool> owned_pool_;
    ThreadPool* pool_ = nullptr;  ///< Null = step shards inline.
    metrics::TraceBus bus_;

    /** Last budget pushed to each governor; settlements that do not
     *  move a chip's budget are not re-applied. */
    std::vector<Watts> budgets_;
    std::vector<ChipSignal> signals_;   ///< Barrier gather scratch.
    std::vector<int> placements_;       ///< Per floating task; -1 = not yet.
    SimTime now_ = 0;
    SimTime next_barrier_ = 0;
    long admitted_ = 0;
    bool done_ = false;

    // Interned fleet.* handles (resolved at construction).
    std::vector<metrics::SeriesId> chip_power_ids_;
    std::vector<metrics::SeriesId> chip_budget_ids_;
    std::vector<metrics::SeriesId> chip_price_ids_;
    std::vector<metrics::SeriesId> chip_deficit_ids_;
    metrics::SeriesId fleet_power_id_ = 0;
    metrics::SeriesId fleet_budget_id_ = 0;
    metrics::SeriesId admitted_id_ = 0;
};

} // namespace ppm::fleet

#endif // PPM_FLEET_FLEET_HH

/**
 * @file
 * The fleet-level power market: one tier above the paper's Chip Power
 * Agent.  Each supervisor epoch the chips report their marginal
 * utility of power -- instantaneous chip power plus the clearing
 * deficit of their local market (RoundReport::deficit, the same unmet
 * demand the chip agent's allowance update acts on) -- and the
 * supervisor runs one tatonnement step over per-chip power prices:
 * every chip's budget moves toward its demand-proportional share of
 * the fleet TDP, subject to a per-chip floor, and the per-chip price
 * (want / granted watts) steers cross-chip task placement toward the
 * cheapest chip.  This is the "performance-based pricing across
 * sites" framing of the related geo-distributed work, collapsed onto
 * one deterministic settlement pass in chip-id order.
 */

#ifndef PPM_FLEET_SUPERVISOR_HH
#define PPM_FLEET_SUPERVISOR_HH

#include <vector>

#include "common/types.hh"

namespace ppm::snap {
class Writer;
class Reader;
} // namespace ppm::snap

namespace ppm::fleet {

/** Parameters of the supervisor market. */
struct SupervisorConfig {
    /**
     * Fleet-wide TDP budget (watts).  Values >= 1e8 are the
     * "uncapped" sentinel (mirroring PpmConfig::w_tdp): the
     * supervisor observes prices but never retargets chip budgets.
     */
    Watts total_budget = 1e9;

    /**
     * Per-chip budget floor (watts).  No settlement starves a chip
     * below it (an unpowered chip cannot report demand and would
     * never recover), except when the fleet budget cannot cover the
     * floors -- then every chip gets the same even share.
     */
    Watts floor_w = 1.0;

    /**
     * Conversion gain from clearing deficit (PU of unmet demand) to
     * requested watts.  A chip's "want" is its measured power plus
     * gain * deficit: the watts it consumes now plus a first-order
     * estimate of the watts that would cure its unmet demand.
     */
    double deficit_gain = 0.001;
};

/** One chip's per-epoch report to the supervisor. */
struct ChipSignal {
    Watts power = 0.0;     ///< Instantaneous chip power at the barrier.
    double deficit = 0.0;  ///< Local clearing deficit (PU).
};

/**
 * The supervisor market mechanism.  Pure state machine: settle() is
 * the only mutator, runs in O(chips) with a single pass in chip-id
 * order, and is deterministic -- the fleet engine calls it on the
 * control thread at the epoch barrier, never from pool workers.
 */
class SupervisorMarket
{
  public:
    SupervisorMarket(SupervisorConfig cfg, int chips);

    /**
     * One tatonnement step over the reported signals (indexed by
     * chip id).  Updates budgets() and prices(); returns whether the
     * budgets were (re)computed this epoch -- false for an uncapped
     * fleet, whose budgets never move.
     *
     * Settlement: want_i = max(floor, power_i + gain * deficit_i).
     * A 1-chip fleet gets the whole budget verbatim (no
     * floor-plus-remainder decomposition, so the single-chip path
     * introduces no floating-point rewriting of the budget).  When
     * the floors alone exceed the budget, every chip gets the even
     * share B/n; otherwise each chip gets floor + remainder *
     * want_i / sum(want), which sums back to B up to roundoff.
     */
    bool settle(const std::vector<ChipSignal>& signals);

    /**
     * Health-aware settlement (fleet fault tolerance).  `active`
     * masks chips out of the economy entirely (0 = failed): a failed
     * chip's budget is withdrawn from settlement -- it receives the
     * quarantine floor and a sentinel price so placement never picks
     * it.  `clamp` multiplies a degraded chip's granted budget
     * (1.0 = healthy), floored at the per-chip floor.  Passing null
     * for both is exactly settle(): the masked path with every chip
     * active and every clamp at 1.0 runs the identical arithmetic,
     * so enabling fault handling on a run where nothing fails
     * changes no bits.
     *
     * Edge cases: exactly one active chip receives the full fleet
     * budget verbatim (zero floating-point rewriting, mirroring the
     * 1-chip rule); zero active chips put every chip at the floor.
     */
    bool settle(const std::vector<ChipSignal>& signals,
                const std::vector<unsigned char>* active,
                const std::vector<double>* clamp);

    /** Per-chip budgets after the last settle (watts). */
    const std::vector<Watts>& budgets() const { return budgets_; }

    /**
     * Per-chip power prices after the last settle: want_i divided by
     * the granted budget -- > 1 means the chip wants more than it
     * got.  For an uncapped fleet (power is free) the "price"
     * degenerates to the raw want in watts, so placement still
     * steers toward the least-loaded chip.
     */
    const std::vector<double>& prices() const { return prices_; }

    /** Fleet-wide price level sum(want)/B (0 while uncapped). */
    double lambda() const { return lambda_; }

    /** Settled epochs so far. */
    long epochs() const { return epochs_; }

    /** Initial per-chip budget (before any settle): B for one chip,
     *  the even share B/n otherwise, and the uncapped sentinel
     *  verbatim for uncapped fleets. */
    Watts initial_budget() const;

    /** Chip with the lowest price (ties -> lowest id); -1 before the
     *  first settle. */
    int cheapest_chip() const;

    /**
     * Cheapest chip among those with a non-zero `active` mask entry;
     * -1 before the first settle or when no chip is active.  Null
     * mask = all chips eligible (same as cheapest_chip()).
     */
    int cheapest_chip(const std::vector<unsigned char>* active) const;

    const SupervisorConfig& config() const { return cfg_; }

    /** Serialize budgets, prices, lambda and the epoch counter. */
    void save(snap::Writer& w) const;
    void load(snap::Reader& r);

  private:
    SupervisorConfig cfg_;
    std::vector<Watts> budgets_;
    std::vector<double> prices_;
    double lambda_ = 0.0;
    long epochs_ = 0;
};

} // namespace ppm::fleet

#endif // PPM_FLEET_SUPERVISOR_HH

/**
 * @file
 * Snapshot serialization of the fleet: the supervisor market, the
 * fault-tolerance runtime (health, clamps, pending evacuations,
 * rosters), the fleet telemetry bus, and every shard.  The fleet
 * fault plan itself is not serialized -- the restoring process
 * recompiles it from the same spec/seed/epoch, which by construction
 * yields the identical schedule; only the event cursor travels.
 */

#include "common/logging.hh"
#include "fleet/fleet.hh"
#include "snapshot/archive.hh"

namespace ppm::fleet {

void
SupervisorMarket::save(snap::Writer& w) const
{
    w.f64v(budgets_);
    w.f64v(prices_);
    w.f64(lambda_);
    w.i64(static_cast<std::int64_t>(epochs_));
}

void
SupervisorMarket::load(snap::Reader& r)
{
    r.f64v(&budgets_);
    r.f64v(&prices_);
    lambda_ = r.f64();
    epochs_ = static_cast<long>(r.i64());
}

void
Fleet::save(snap::Writer& w) const
{
    supervisor_.save(w);
    w.f64v(budgets_);
    w.i32v(placements_);
    w.i64(now_);
    w.i64(next_barrier_);
    w.i64(static_cast<std::int64_t>(admitted_));
    w.b(done_);

    // Fault-tolerance runtime.
    w.u64(next_fleet_event_);
    w.u8v(health_);
    w.f64v(clamp_);
    w.i32v(deficit_streak_);
    w.u64(roster_.size());
    for (const auto& chip_roster : roster_) {
        w.u64(chip_roster.size());
        for (const RosterEntry& e : chip_roster) {
            workload::save_task_spec(w, e.spec);
            w.f64(e.big_speedup);
        }
    }
    w.u64(pending_evac_.size());
    for (const PendingEvac& p : pending_evac_) {
        w.i64(static_cast<std::int64_t>(p.seq));
        workload::save_task_spec(w, p.spec);
        w.f64(p.big_speedup);
        w.i64(p.departure);
        w.i32(p.retries_left);
        w.i64(p.next_try);
        w.i64(p.backoff);
    }
    w.i64(static_cast<std::int64_t>(evac_seq_));
    w.i64(static_cast<std::int64_t>(chip_failures_));
    w.i64(static_cast<std::int64_t>(chip_recoveries_));
    w.i64(static_cast<std::int64_t>(evacuations_));
    w.i64(static_cast<std::int64_t>(evac_landed_));
    w.i64(static_cast<std::int64_t>(rejections_));
    w.i64(static_cast<std::int64_t>(fleet_watchdog_trips_));
    w.b(all_failed_seen_);

    bus_.save(w);

    w.u64(shards_.size());
    for (const auto& shard : shards_)
        shard->save(w);
}

void
Fleet::load(snap::Reader& r)
{
    supervisor_.load(r);
    r.f64v(&budgets_);
    r.i32v(&placements_);
    now_ = r.i64();
    next_barrier_ = r.i64();
    admitted_ = static_cast<long>(r.i64());
    done_ = r.b();

    next_fleet_event_ = static_cast<std::size_t>(r.u64());
    r.u8v(&health_);
    r.f64v(&clamp_);
    r.i32v(&deficit_streak_);
    const std::size_t n_rosters = static_cast<std::size_t>(r.u64());
    PPM_ASSERT(n_rosters == roster_.size(),
               "snapshot mismatch: fleet chip count differs");
    for (auto& chip_roster : roster_) {
        chip_roster.resize(static_cast<std::size_t>(r.u64()));
        for (RosterEntry& e : chip_roster) {
            e.spec = workload::load_task_spec(r);
            e.big_speedup = r.f64();
        }
    }
    pending_evac_.resize(static_cast<std::size_t>(r.u64()));
    for (PendingEvac& p : pending_evac_) {
        p.seq = static_cast<long>(r.i64());
        p.spec = workload::load_task_spec(r);
        p.big_speedup = r.f64();
        p.departure = r.i64();
        p.retries_left = r.i32();
        p.next_try = r.i64();
        p.backoff = r.i64();
    }
    evac_seq_ = static_cast<long>(r.i64());
    chip_failures_ = static_cast<long>(r.i64());
    chip_recoveries_ = static_cast<long>(r.i64());
    evacuations_ = static_cast<long>(r.i64());
    evac_landed_ = static_cast<long>(r.i64());
    rejections_ = static_cast<long>(r.i64());
    fleet_watchdog_trips_ = static_cast<long>(r.i64());
    all_failed_seen_ = r.b();

    bus_.load(r);

    const std::size_t n_shards = static_cast<std::size_t>(r.u64());
    PPM_ASSERT(n_shards == shards_.size(),
               "snapshot mismatch: shard count differs");
    for (auto& shard : shards_)
        shard->load(r);
}

} // namespace ppm::fleet

#include "fleet/fleet.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace ppm::fleet {

Fleet::Fleet(FleetConfig cfg)
    : cfg_(std::move(cfg)), supervisor_(cfg_.supervisor, cfg_.chips)
{
    PPM_ASSERT(cfg_.chips >= 1, "fleet needs at least one chip");
    PPM_ASSERT(cfg_.make_chip != nullptr, "fleet needs a chip factory");
    PPM_ASSERT(cfg_.make_governor != nullptr,
               "fleet needs a governor factory");
    PPM_ASSERT(cfg_.workloads.size() ==
                   static_cast<std::size_t>(cfg_.chips),
               "fleet needs one workload per chip");
    PPM_ASSERT(cfg_.epoch > 0 && cfg_.epoch % cfg_.sim.tick == 0,
               "supervisor epoch must be a positive multiple of the tick");
    PPM_ASSERT(cfg_.sim.duration > 0, "fleet duration must be positive");

    if (cfg_.pool != nullptr) {
        pool_ = cfg_.pool;
    } else if (cfg_.jobs != 1) {
        owned_pool_ = std::make_unique<ThreadPool>(cfg_.jobs);
        pool_ = owned_pool_.get();
    }

    const Watts initial = supervisor_.initial_budget();
    budgets_.assign(static_cast<std::size_t>(cfg_.chips), initial);
    signals_.assign(static_cast<std::size_t>(cfg_.chips), ChipSignal{});
    placements_.assign(cfg_.floating.size(), -1);

    shards_.reserve(static_cast<std::size_t>(cfg_.chips));
    for (int i = 0; i < cfg_.chips; ++i) {
        const auto& wl = cfg_.workloads[static_cast<std::size_t>(i)];
        PPM_ASSERT(!wl.specs.empty(),
                   "every chip needs at least one pinned task");
        sim::SimConfig sc = cfg_.sim;
        sc.placement = wl.placement;
        sc.lifetimes = wl.lifetimes;
        shards_.push_back(std::make_unique<sim::Simulation>(
            cfg_.make_chip(i), wl.specs, cfg_.make_governor(i, initial),
            sc));
        // Attach the shared pool to the shard's market via the
        // governor config, not here: the factory wires
        // PpmGovernorConfig::clearing_pool itself when clearing
        // should share the fleet pool.
    }

    next_barrier_ = cfg_.epoch;

    // Interned fleet.* handles; like Simulation, interning is
    // sink-independent, so handles stay valid for sinks attached
    // later (before run()).
    for (int i = 0; i < cfg_.chips; ++i) {
        const std::string p = "fleet.chip" + std::to_string(i) + ".";
        chip_power_ids_.push_back(bus_.intern(p + "power_w"));
        chip_budget_ids_.push_back(bus_.intern(p + "budget_w"));
        chip_price_ids_.push_back(bus_.intern(p + "price"));
        chip_deficit_ids_.push_back(bus_.intern(p + "deficit"));
    }
    fleet_power_id_ = bus_.intern("fleet.power_w");
    fleet_budget_id_ = bus_.intern("fleet.budget_w");
    admitted_id_ = bus_.intern("fleet.admitted");
}

Fleet::~Fleet() = default;

sim::Simulation&
Fleet::shard(int i)
{
    PPM_ASSERT(i >= 0 && i < chips(), "chip id out of range");
    return *shards_[static_cast<std::size_t>(i)];
}

void
Fleet::settle_barrier()
{
    // Gather in chip-id order on the control thread: both reads are
    // pure observations of the sharded state.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        signals_[i].power = shards_[i]->sensors().instantaneous_chip();
        signals_[i].deficit = shards_[i]->governor().power_deficit();
    }
    if (!supervisor_.settle(signals_))
        return;  // Uncapped fleet: budgets never move.
    const std::vector<Watts>& next = supervisor_.budgets();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        // Only push *changed* budgets: re-applying an identical
        // budget would still rewrite the governor's thresholds
        // through derive_w_th(), and a 1-chip fleet must leave its
        // governor's exact configured bits alone.
        if (next[i] == budgets_[i])
            continue;
        budgets_[i] = next[i];
        shards_[i]->governor().set_power_budget(next[i]);
    }
}

void
Fleet::admit_floating()
{
    for (std::size_t f = 0; f < cfg_.floating.size(); ++f) {
        if (placements_[f] != -1)
            continue;
        const FloatingTask& task = cfg_.floating[f];
        if (task.arrival > now_)
            continue;
        // Post-settle prices; within one barrier the prices do not
        // move, so a batch of simultaneous arrivals lands on the same
        // cheapest chip and the next settlement redistributes budget.
        int winner = supervisor_.cheapest_chip();
        if (winner < 0)
            winner = 0;  // Before the first settle: chip 0.
        shards_[static_cast<std::size_t>(winner)]->admit_task(
            task.spec, {now_, task.departure}, task.big_speedup);
        placements_[f] = winner;
        ++admitted_;
        bus_.count(admitted_id_);
    }
}

void
Fleet::sample_barrier()
{
    if (!bus_.enabled())
        return;
    Watts fleet_power = 0.0;
    Watts fleet_budget = 0.0;
    const std::vector<double>& prices = supervisor_.prices();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        bus_.sample(chip_power_ids_[i], now_, signals_[i].power);
        bus_.sample(chip_budget_ids_[i], now_, budgets_[i]);
        bus_.sample(chip_price_ids_[i], now_, prices[i]);
        bus_.sample(chip_deficit_ids_[i], now_, signals_[i].deficit);
        fleet_power += signals_[i].power;
        fleet_budget += budgets_[i];
    }
    bus_.sample(fleet_power_id_, now_, fleet_power);
    bus_.sample(fleet_budget_id_, now_, fleet_budget);
}

bool
Fleet::run_epoch()
{
    if (done_)
        return false;
    const SimTime stop = std::min(next_barrier_, cfg_.sim.duration);

    // Fan the shards out one per chunk; boundaries depend only on the
    // chip count, and each shard's state is disjoint, so any worker
    // count -- including none -- produces identical shard states at
    // the barrier.
    ThreadPool::for_chunks(
        pool_, shards_.size(), 1,
        [this, stop](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                shards_[i]->run_until(stop);
        });
    now_ = stop;

    // Batched cross-shard settlement, all on the control thread in
    // chip-id order.
    settle_barrier();
    admit_floating();
    sample_barrier();

    next_barrier_ += cfg_.epoch;
    done_ = now_ >= cfg_.sim.duration;
    return !done_;
}

FleetResult
Fleet::run()
{
    while (run_epoch()) {
    }
    FleetResult r;
    r.per_chip.reserve(shards_.size());
    for (auto& shard : shards_)
        r.per_chip.push_back(shard->finish());
    r.final_budgets = budgets_;
    r.supervisor_epochs = supervisor_.epochs();
    r.admitted = admitted_;
    r.placements = placements_;

    if (shards_.size() == 1) {
        // Verbatim: a 1-chip fleet IS its single simulation.
        r.combined = r.per_chip[0];
    } else {
        sim::RunSummary& c = r.combined;
        const double n = static_cast<double>(r.per_chip.size());
        c.governor = r.per_chip[0].governor;
        for (const sim::RunSummary& s : r.per_chip) {
            c.any_below_miss += s.any_below_miss / n;
            c.any_outside_miss += s.any_outside_miss / n;
            c.avg_power += s.avg_power;
            c.avg_power_post_warmup += s.avg_power_post_warmup;
            c.energy += s.energy;
            c.migrations += s.migrations;
            c.vf_transitions += s.vf_transitions;
            c.over_tdp_fraction += s.over_tdp_fraction / n;
            c.over_tdp_post_warmup += s.over_tdp_post_warmup / n;
            c.peak_temp_c = std::max(c.peak_temp_c, s.peak_temp_c);
            c.thermal_cycles += s.thermal_cycles;
            c.task_below.insert(c.task_below.end(),
                                s.task_below.begin(),
                                s.task_below.end());
            c.task_outside.insert(c.task_outside.end(),
                                  s.task_outside.begin(),
                                  s.task_outside.end());
            c.faults_injected += s.faults_injected;
            c.sensor_fallbacks += s.sensor_fallbacks;
            c.fault_retries += s.fault_retries;
            c.safe_mode_entries += s.safe_mode_entries;
            c.watchdog_trips += s.watchdog_trips;
            c.safe_mode_seconds += s.safe_mode_seconds;
            c.over_tdp_during_fault += s.over_tdp_during_fault / n;
            c.market_rounds += s.market_rounds;
            c.market_task_slots += s.market_task_slots;
            c.market_tasks_skipped += s.market_tasks_skipped;
            c.market_core_slots += s.market_core_slots;
            c.market_cores_skipped += s.market_cores_skipped;
            c.market_rounds_early_exit += s.market_rounds_early_exit;
        }
    }

    if (bus_.enabled()) {
        metrics::TraceEvent e("counters", now_);
        for (const auto& [name, value] : bus_.counters())
            e.set(name, static_cast<double>(value));
        bus_.event(e);
        bus_.flush();
    }
    return r;
}

} // namespace ppm::fleet

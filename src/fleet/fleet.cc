#include "fleet/fleet.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace ppm::fleet {

Fleet::Fleet(FleetConfig cfg)
    : cfg_(std::move(cfg)), supervisor_(cfg_.supervisor, cfg_.chips)
{
    PPM_ASSERT(cfg_.chips >= 1, "fleet needs at least one chip");
    PPM_ASSERT(cfg_.make_chip != nullptr, "fleet needs a chip factory");
    PPM_ASSERT(cfg_.make_governor != nullptr,
               "fleet needs a governor factory");
    PPM_ASSERT(cfg_.workloads.size() ==
                   static_cast<std::size_t>(cfg_.chips),
               "fleet needs one workload per chip");
    PPM_ASSERT(cfg_.epoch > 0 && cfg_.epoch % cfg_.sim.tick == 0,
               "supervisor epoch must be a positive multiple of the tick");
    PPM_ASSERT(cfg_.sim.duration > 0, "fleet duration must be positive");

    if (cfg_.pool != nullptr) {
        pool_ = cfg_.pool;
    } else if (cfg_.jobs != 1) {
        owned_pool_ = std::make_unique<ThreadPool>(cfg_.jobs);
        pool_ = owned_pool_.get();
    }

    const Watts initial = supervisor_.initial_budget();
    budgets_.assign(static_cast<std::size_t>(cfg_.chips), initial);
    signals_.assign(static_cast<std::size_t>(cfg_.chips), ChipSignal{});
    placements_.assign(cfg_.floating.size(), -1);

    // Fleet fault tolerance: latched once here.  When off, every
    // barrier takes the exact pre-existing code path, so fault-free
    // configurations stay byte-identical.
    fault_handling_ = !cfg_.fleet_faults.empty() ||
        cfg_.deficit_watchdog_epochs > 0;
    health_.assign(static_cast<std::size_t>(cfg_.chips), 0);
    clamp_.assign(static_cast<std::size_t>(cfg_.chips), 1.0);
    deficit_streak_.assign(static_cast<std::size_t>(cfg_.chips), 0);
    roster_.resize(static_cast<std::size_t>(cfg_.chips));
    for (int i = 0; i < cfg_.chips; ++i) {
        for (const auto& spec :
             cfg_.workloads[static_cast<std::size_t>(i)].specs)
            roster_[static_cast<std::size_t>(i)].push_back({spec, 0.0});
    }

    shards_.reserve(static_cast<std::size_t>(cfg_.chips));
    for (int i = 0; i < cfg_.chips; ++i) {
        const auto& wl = cfg_.workloads[static_cast<std::size_t>(i)];
        PPM_ASSERT(!wl.specs.empty(),
                   "every chip needs at least one pinned task");
        sim::SimConfig sc = cfg_.sim;
        sc.placement = wl.placement;
        sc.lifetimes = wl.lifetimes;
        shards_.push_back(std::make_unique<sim::Simulation>(
            cfg_.make_chip(i), wl.specs, cfg_.make_governor(i, initial),
            sc));
        // Attach the shared pool to the shard's market via the
        // governor config, not here: the factory wires
        // PpmGovernorConfig::clearing_pool itself when clearing
        // should share the fleet pool.
    }

    next_barrier_ = cfg_.epoch;

    // Interned fleet.* handles; like Simulation, interning is
    // sink-independent, so handles stay valid for sinks attached
    // later (before run()).
    for (int i = 0; i < cfg_.chips; ++i) {
        const std::string p = "fleet.chip" + std::to_string(i) + ".";
        chip_power_ids_.push_back(bus_.intern(p + "power_w"));
        chip_budget_ids_.push_back(bus_.intern(p + "budget_w"));
        chip_price_ids_.push_back(bus_.intern(p + "price"));
        chip_deficit_ids_.push_back(bus_.intern(p + "deficit"));
        chip_state_ids_.push_back(bus_.intern(p + "state"));
    }
    fleet_power_id_ = bus_.intern("fleet.power_w");
    fleet_budget_id_ = bus_.intern("fleet.budget_w");
    admitted_id_ = bus_.intern("fleet.admitted");
    evacuations_id_ = bus_.intern("fleet.evacuations");
    evac_landed_id_ = bus_.intern("fleet.evac_landed");
    evac_pending_id_ = bus_.intern("fleet.evac_pending");
    rejections_id_ = bus_.intern("fleet.rejections");
    chip_failures_id_ = bus_.intern("fleet.chip_failures");
    chip_recoveries_id_ = bus_.intern("fleet.chip_recoveries");
    watchdog_id_ = bus_.intern("fleet.watchdog_trips");
}

Fleet::~Fleet() = default;

sim::Simulation&
Fleet::shard(int i)
{
    PPM_ASSERT(i >= 0 && i < chips(), "chip id out of range");
    return *shards_[static_cast<std::size_t>(i)];
}

void
Fleet::settle_barrier()
{
    // Gather in chip-id order on the control thread: both reads are
    // pure observations of the sharded state.
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        signals_[i].power = shards_[i]->sensors().instantaneous_chip();
        signals_[i].deficit = shards_[i]->governor().power_deficit();
    }
    bool settled;
    if (fault_handling_) {
        // Health-aware settlement: failed chips are withdrawn (they
        // get the quarantine floor), degraded chips get their budget
        // clamped.  With every chip healthy this runs the identical
        // arithmetic to the legacy call.
        active_scratch_.resize(health_.size());
        for (std::size_t i = 0; i < health_.size(); ++i)
            active_scratch_[i] = health_[i] != 2 ? 1 : 0;
        settled = supervisor_.settle(signals_, &active_scratch_, &clamp_);
    } else {
        settled = supervisor_.settle(signals_);
    }
    if (!settled)
        return;  // Uncapped fleet: budgets never move.
    const std::vector<Watts>& next = supervisor_.budgets();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        // Only push *changed* budgets: re-applying an identical
        // budget would still rewrite the governor's thresholds
        // through derive_w_th(), and a 1-chip fleet must leave its
        // governor's exact configured bits alone.
        if (next[i] == budgets_[i])
            continue;
        budgets_[i] = next[i];
        shards_[i]->governor().set_power_budget(next[i]);
    }
}

void
Fleet::admit_floating()
{
    for (std::size_t f = 0; f < cfg_.floating.size(); ++f) {
        if (placements_[f] != -1)
            continue;
        const FloatingTask& task = cfg_.floating[f];
        if (task.arrival > now_)
            continue;
        if (fault_handling_) {
            // Health- and admission-aware placement; a rejected task
            // stays floating and retries at the next barrier.
            int chip = kInvalidId;
            if (place_task(task.spec, task.big_speedup, task.departure,
                           &chip)) {
                placements_[f] = chip;
                ++admitted_;
                bus_.count(admitted_id_);
            } else {
                ++rejections_;
                bus_.count(rejections_id_);
            }
            continue;
        }
        // Post-settle prices; within one barrier the prices do not
        // move, so a batch of simultaneous arrivals lands on the same
        // cheapest chip and the next settlement redistributes budget.
        int winner = supervisor_.cheapest_chip();
        if (winner < 0)
            winner = 0;  // Before the first settle: chip 0.
        shards_[static_cast<std::size_t>(winner)]->admit_task(
            task.spec, {now_, task.departure}, task.big_speedup);
        placements_[f] = winner;
        ++admitted_;
        bus_.count(admitted_id_);
    }
}

bool
Fleet::place_task(const workload::TaskSpec& spec, double big_speedup,
                  SimTime departure, int* chip_out)
{
    active_scratch_.resize(health_.size());
    for (std::size_t i = 0; i < health_.size(); ++i)
        active_scratch_[i] = health_[i] != 2 ? 1 : 0;
    int winner = supervisor_.cheapest_chip(&active_scratch_);
    if (winner < 0) {
        // Before the first settle: lowest-id surviving chip (the
        // all-healthy case degenerates to the legacy "chip 0").
        for (std::size_t i = 0; i < health_.size(); ++i) {
            if (health_[i] != 2) {
                winner = static_cast<int>(i);
                break;
            }
        }
    }
    if (winner < 0)
        return false;  // Whole fleet is down.
    sim::AdmitReject why = sim::AdmitReject::kNone;
    const TaskId id = shards_[static_cast<std::size_t>(winner)]
                          ->try_admit_task(spec, {now_, departure},
                                           big_speedup, kInvalidId, &why);
    if (id == kInvalidId)
        return false;  // Typed rejection already counted on the shard.
    roster_[static_cast<std::size_t>(winner)].push_back(
        {spec, big_speedup});
    if (chip_out != nullptr)
        *chip_out = winner;
    return true;
}

void
Fleet::apply_fleet_faults()
{
    const auto& events = cfg_.fleet_faults.events();
    while (next_fleet_event_ < events.size() &&
           events[next_fleet_event_].time <= now_) {
        const fault::FleetFaultEvent& ev = events[next_fleet_event_++];
        const auto i = static_cast<std::size_t>(ev.chip);
        PPM_ASSERT(i < health_.size(), "fleet fault names unknown chip");
        switch (ev.kind) {
        case fault::FleetFaultKind::kChipFail:
            if (health_[i] == 2)
                break;  // Already down.
            health_[i] = 2;
            ++chip_failures_;
            bus_.count(chip_failures_id_);
            evacuate_chip(i);
            break;
        case fault::FleetFaultKind::kChipDegrade:
            if (health_[i] == 2)
                break;  // Failure dominates.
            health_[i] = 1;
            clamp_[i] = ev.factor;
            break;
        case fault::FleetFaultKind::kChipRecover:
            if (health_[i] == 0)
                break;
            ++chip_recoveries_;
            bus_.count(chip_recoveries_id_);
            health_[i] = 0;
            clamp_[i] = 1.0;
            deficit_streak_[i] = 0;
            // Freed capacity: wake every parked evacuation for an
            // immediate retry (drained in seq order below).
            for (PendingEvac& p : pending_evac_) {
                p.retries_left = cfg_.evac_max_retries;
                p.next_try = now_;
                p.backoff = cfg_.epoch;
            }
            break;
        }
    }
    bool all_failed = !health_.empty();
    for (unsigned char h : health_) {
        if (h != 2)
            all_failed = false;
    }
    if (all_failed)
        all_failed_seen_ = true;
}

void
Fleet::evacuate_chip(std::size_t chip)
{
    // Pull every task still inside its lifetime window off the chip,
    // in task-id order: deterministic, and exactly the set of tasks
    // whose work would be lost.  The shard itself keeps simulating
    // (barrier-aligned) with an empty run queue and a floor budget.
    sim::Simulation& shard = *shards_[chip];
    const auto& entries = roster_[chip];
    for (TaskId t = 0; t < static_cast<TaskId>(entries.size()); ++t) {
        if (!shard.task_alive(t))
            continue;  // Departed, not yet arrived, or already evacuated.
        const auto& lives = shard.config().lifetimes;
        const SimTime departure = lives.empty()
            ? sim::SimConfig::Lifetime::kForever
            : lives[static_cast<std::size_t>(t)].departure;
        shard.set_task_departure(t, now_);
        ++evacuations_;
        bus_.count(evacuations_id_);
        PendingEvac p;
        p.seq = evac_seq_++;
        p.spec = entries[static_cast<std::size_t>(t)].spec;
        p.big_speedup = entries[static_cast<std::size_t>(t)].big_speedup;
        p.departure = departure;
        p.retries_left = cfg_.evac_max_retries;
        p.next_try = now_;
        p.backoff = cfg_.epoch;
        pending_evac_.push_back(p);
    }
}

void
Fleet::run_deficit_watchdog()
{
    if (cfg_.deficit_watchdog_epochs <= 0)
        return;
    for (std::size_t i = 0; i < health_.size(); ++i) {
        if (health_[i] == 2) {
            deficit_streak_[i] = 0;
            continue;
        }
        if (signals_[i].deficit > 0.0)
            ++deficit_streak_[i];
        else
            deficit_streak_[i] = 0;
        if (deficit_streak_[i] >= cfg_.deficit_watchdog_epochs &&
            health_[i] == 0) {
            // Persistent clearing deficit is a health signal: the
            // chip cannot clear what it already has, so clamp its
            // budget until it recovers (deficit drops) or a
            // chip-recover event clears the mark.
            health_[i] = 1;
            clamp_[i] = cfg_.watchdog_clamp;
            ++fleet_watchdog_trips_;
            bus_.count(watchdog_id_);
            deficit_streak_[i] = 0;
        }
    }
}

void
Fleet::drain_pending()
{
    // Seq order == task-id order within each evacuation batch; erase
    // keeps the vector sorted by seq.
    for (auto it = pending_evac_.begin(); it != pending_evac_.end();) {
        if (it->next_try > now_) {
            ++it;
            continue;
        }
        int chip = kInvalidId;
        if (place_task(it->spec, it->big_speedup, it->departure,
                       &chip)) {
            ++evac_landed_;
            bus_.count(evac_landed_id_);
            it = pending_evac_.erase(it);
            continue;
        }
        ++rejections_;
        bus_.count(rejections_id_);
        if (--it->retries_left <= 0) {
            // Bounded retries exhausted: park until the next
            // chip-recover event wakes the queue.
            it->next_try = sim::SimConfig::Lifetime::kForever;
        } else {
            it->next_try = now_ + it->backoff;
            it->backoff *= 2;  // Doubling backoff.
        }
        ++it;
    }
}

void
Fleet::sample_barrier()
{
    if (!bus_.enabled())
        return;
    Watts fleet_power = 0.0;
    Watts fleet_budget = 0.0;
    const std::vector<double>& prices = supervisor_.prices();
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        bus_.sample(chip_power_ids_[i], now_, signals_[i].power);
        bus_.sample(chip_budget_ids_[i], now_, budgets_[i]);
        bus_.sample(chip_price_ids_[i], now_, prices[i]);
        bus_.sample(chip_deficit_ids_[i], now_, signals_[i].deficit);
        fleet_power += signals_[i].power;
        fleet_budget += budgets_[i];
    }
    bus_.sample(fleet_power_id_, now_, fleet_power);
    bus_.sample(fleet_budget_id_, now_, fleet_budget);
    if (fault_handling_) {
        // Health telemetry only exists once the fault machinery is
        // on, so fault-free runs keep byte-identical traces.
        for (std::size_t i = 0; i < shards_.size(); ++i)
            bus_.sample(chip_state_ids_[i], now_,
                        static_cast<double>(health_[i]));
        bus_.sample(evac_pending_id_, now_,
                    static_cast<double>(pending_evac_.size()));
    }
}

bool
Fleet::run_epoch()
{
    if (done_)
        return false;
    const SimTime stop = std::min(next_barrier_, cfg_.sim.duration);

    // Fan the shards out one per chunk; boundaries depend only on the
    // chip count, and each shard's state is disjoint, so any worker
    // count -- including none -- produces identical shard states at
    // the barrier.
    ThreadPool::for_chunks(
        pool_, shards_.size(), 1,
        [this, stop](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i)
                shards_[i]->run_until(stop);
        });
    now_ = stop;

    // Batched cross-shard settlement, all on the control thread in
    // chip-id order.  Chip-scope faults land first (they are compiled
    // onto the barrier grid), so a failed chip's budget is withdrawn
    // from the very settlement at its failure barrier.
    if (fault_handling_)
        apply_fleet_faults();
    settle_barrier();
    if (fault_handling_) {
        run_deficit_watchdog();
        drain_pending();
    }
    admit_floating();
    sample_barrier();

    next_barrier_ += cfg_.epoch;
    done_ = now_ >= cfg_.sim.duration;
    return !done_;
}

FleetResult
Fleet::run()
{
    while (run_epoch()) {
    }
    FleetResult r;
    r.per_chip.reserve(shards_.size());
    for (auto& shard : shards_)
        r.per_chip.push_back(shard->finish());
    r.final_budgets = budgets_;
    r.supervisor_epochs = supervisor_.epochs();
    r.admitted = admitted_;
    r.placements = placements_;
    r.chip_failures = chip_failures_;
    r.chip_recoveries = chip_recoveries_;
    r.evacuations = evacuations_;
    r.evac_landed = evac_landed_;
    r.evac_pending_end = static_cast<long>(pending_evac_.size());
    r.rejections = rejections_;
    r.fleet_watchdog_trips = fleet_watchdog_trips_;
    r.all_chips_failed = all_failed_seen_;
    r.final_health.reserve(health_.size());
    for (unsigned char h : health_)
        r.final_health.push_back(static_cast<int>(h));

    if (shards_.size() == 1) {
        // Verbatim: a 1-chip fleet IS its single simulation.
        r.combined = r.per_chip[0];
    } else {
        sim::RunSummary& c = r.combined;
        const double n = static_cast<double>(r.per_chip.size());
        c.governor = r.per_chip[0].governor;
        for (const sim::RunSummary& s : r.per_chip) {
            c.any_below_miss += s.any_below_miss / n;
            c.any_outside_miss += s.any_outside_miss / n;
            c.avg_power += s.avg_power;
            c.avg_power_post_warmup += s.avg_power_post_warmup;
            c.energy += s.energy;
            c.migrations += s.migrations;
            c.vf_transitions += s.vf_transitions;
            c.over_tdp_fraction += s.over_tdp_fraction / n;
            c.over_tdp_post_warmup += s.over_tdp_post_warmup / n;
            c.peak_temp_c = std::max(c.peak_temp_c, s.peak_temp_c);
            c.thermal_cycles += s.thermal_cycles;
            c.task_below.insert(c.task_below.end(),
                                s.task_below.begin(),
                                s.task_below.end());
            c.task_outside.insert(c.task_outside.end(),
                                  s.task_outside.begin(),
                                  s.task_outside.end());
            c.faults_injected += s.faults_injected;
            c.sensor_fallbacks += s.sensor_fallbacks;
            c.fault_retries += s.fault_retries;
            c.safe_mode_entries += s.safe_mode_entries;
            c.watchdog_trips += s.watchdog_trips;
            c.safe_mode_seconds += s.safe_mode_seconds;
            c.over_tdp_during_fault += s.over_tdp_during_fault / n;
            c.market_rounds += s.market_rounds;
            c.market_task_slots += s.market_task_slots;
            c.market_tasks_skipped += s.market_tasks_skipped;
            c.market_core_slots += s.market_core_slots;
            c.market_cores_skipped += s.market_cores_skipped;
            c.market_rounds_early_exit += s.market_rounds_early_exit;
        }
    }

    if (bus_.enabled()) {
        metrics::TraceEvent e("counters", now_);
        for (const auto& [name, value] : bus_.counters())
            e.set(name, static_cast<double>(value));
        bus_.event(e);
        bus_.flush();
    }
    return r;
}

} // namespace ppm::fleet
